/**
 * @file
 * FR-FCFS request selection (Rixner et al., ISCA 2000), factored out of the
 * controller for testability: row-buffer-hit requests first, then oldest.
 *
 * The scheduler is incremental: requests live in a SchedQueue that buckets
 * them per bank (FIFO within a bank, global age via sequence numbers), and
 * per-bank row-hit statistics are cached and revalidated lazily against the
 * bank's open-row state. Column picks cost O(active banks) instead of
 * O(queue); row-prep picks walk the global age list but return at the first
 * eligible request, preserving the exact pick — and the exact order of
 * mitigation safety queries — of the original full-walk implementation.
 *
 * All per-bank state is sized from the device, so arbitrarily large
 * organizations (multi-rank DDR4 with > 64 flat banks) work; the old
 * stack-allocated kMaxBanks=64 scratch arrays (and their panic) are gone.
 */

#ifndef BH_MEM_SCHEDULER_HH
#define BH_MEM_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "dram/device.hh"
#include "mem/request.hh"

namespace bh
{

/**
 * Age-ordered request queue with per-bank buckets.
 *
 * Requests are stored in a slab of nodes linked into (a) one global list in
 * arrival order and (b) one per-bank list in arrival order. Handles are
 * stable slab indices; removal is O(1). A monotonically increasing sequence
 * number per request gives the global age relation across banks.
 */
class SchedQueue
{
  public:
    using Handle = std::uint32_t;
    static constexpr Handle kNone = 0xffffffffu;

    explicit SchedQueue(unsigned num_banks);

    /** Append a request (must have flatBank decoded); returns its handle. */
    Handle push(Request &&req);

    /** Unlink and return the request at `h`. */
    Request take(Handle h);

    Request &at(Handle h) { return nodes[h].req; }
    const Request &at(Handle h) const { return nodes[h].req; }
    std::uint64_t seqOf(Handle h) const { return nodes[h].seq; }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Global age-order iteration (oldest first). */
    Handle oldest() const { return head; }
    Handle next(Handle h) const { return nodes[h].next; }

    /** Per-bank age-order iteration (oldest first). */
    Handle bankOldest(unsigned fb) const { return banks[fb].head; }
    Handle bankNext(Handle h) const { return nodes[h].bankNext; }
    std::uint32_t bankCount(unsigned fb) const { return banks[fb].count; }

    /** Banks currently holding at least one request (unordered). */
    const std::vector<unsigned> &activeBanks() const { return active; }

    /** Row-hit statistics of one bank against its current open row. */
    struct BankHits
    {
        std::uint32_t hitCount = 0;     ///< requests matching the open row
        Handle oldestHit = kNone;       ///< oldest such request
    };

    /**
     * Hit statistics of bank `fb` against `bank`'s open-row state,
     * recomputed only when the bank's row state or request set changed
     * since the cached value. Only meaningful for open banks.
     */
    const BankHits &hitStats(unsigned fb, const Bank &bank);

  private:
    struct Node
    {
        Request req;
        std::uint64_t seq = 0;
        Handle prev = kNone, next = kNone;          ///< global age list
        Handle bankPrev = kNone, bankNext = kNone;  ///< per-bank age list
        unsigned bank = 0;
    };

    /** Per-bank bucket plus the lazily revalidated hit cache. */
    struct BankState
    {
        Handle head = kNone, tail = kNone;
        std::uint32_t count = 0;
        std::uint32_t activePos = 0xffffffffu;  ///< index into `active`
        std::uint64_t version = 0;      ///< bumped on push/take for the bank
        // Cache key: queue version + open-row state when computed.
        std::uint64_t cachedVersion = ~0ull;
        bool cachedOpen = false;
        RowId cachedRow = 0;
        BankHits hits;
    };

    std::vector<Node> nodes;
    Handle freeHead = kNone;
    Handle head = kNone, tail = kNone;
    std::size_t count = 0;
    std::uint64_t nextSeq = 0;
    std::vector<BankState> banks;
    std::vector<unsigned> active;
};

/**
 * FR-FCFS policy over SchedQueues. Holds per-bank scratch state sized from
 * the device (the controller owns one instance per channel).
 */
class FrFcfsScheduler
{
  public:
    /** Predicate deciding if a request's ACT may be issued (mitigation). */
    using ActFilter = std::function<bool(const Request &)>;

    /**
     * Predicate deciding if a bank's row-hit streak has been capped:
     * capped banks stop serving further row hits (and may be closed) so
     * one streaming thread cannot capture a bank indefinitely.
     */
    using StreakCapped = std::function<bool(unsigned bank)>;

    explicit FrFcfsScheduler(unsigned num_banks);

    /**
     * Pick the oldest row-buffer-hit request whose column command is legal
     * at `now`, or kNone. Hits to streak-capped banks are skipped when an
     * older conflicting request is waiting.
     */
    SchedQueue::Handle
    pickColumnReady(SchedQueue &queue, ReqType type, const DramDevice &dram,
                    Cycle now, const StreakCapped &capped);

    /**
     * Pick the oldest request that needs (and can start) row preparation:
     * an ACT on a closed bank or a PRE on a conflicting open row.
     *
     * Skips banks where a row-hit request is still pending (don't close
     * useful rows — unless the bank's streak is capped) and requests whose
     * ACT the mitigation blocks — this is how RowHammer-safe requests are
     * prioritized over unsafe ones (Section 3.1 of the paper). The
     * mitigation filter is evaluated in global age order, exactly as the
     * full-walk implementation did, so safety-query side effects (delay
     * accounting, blocked counters) are bit-compatible.
     */
    SchedQueue::Handle
    pickRowPrep(SchedQueue &queue, const DramDevice &dram, Cycle now,
                const ActFilter &act_allowed, const StreakCapped &capped);

    /**
     * Earliest future cycle at which a demand command for `queue` could
     * become issuable, assuming no intervening state change. Banks whose
     * ACT was already legal at the controller's last executed tick
     * (`last_tick_at`) yet went unissued are mitigation-blocked and
     * contribute `verdict_change_at` (the mitigation's next possible
     * verdict flip). Returns kNoEventCycle when the queue presents no
     * candidates. Conservative: may return a cycle at which nothing is
     * issuable yet, never one that skips over an issue opportunity.
     */
    Cycle nextDemandEventAt(SchedQueue &queue, ReqType type,
                            const DramDevice &dram, Cycle last_tick_at,
                            const StreakCapped &capped,
                            Cycle verdict_change_at);

  private:
    /**
     * Generation-stamped per-bank "already considered for prep" marks.
     * 64-bit so the generation can never wrap into a stale mark over
     * any realistic run length.
     */
    std::vector<std::uint64_t> prepMark;
    std::uint64_t prepGen = 0;
};

} // namespace bh

#endif // BH_MEM_SCHEDULER_HH
