/**
 * @file
 * FR-FCFS request selection (Rixner et al., ISCA 2000), factored out of the
 * controller for testability: row-buffer-hit requests first, then oldest.
 */

#ifndef BH_MEM_SCHEDULER_HH
#define BH_MEM_SCHEDULER_HH

#include <deque>
#include <functional>
#include <optional>

#include "dram/device.hh"
#include "mem/request.hh"

namespace bh
{

/** Stateless FR-FCFS policy over a request queue. */
class FrFcfsScheduler
{
  public:
    /** Predicate deciding if a request's ACT may be issued (mitigation). */
    using ActFilter = std::function<bool(const Request &)>;

    /**
     * Predicate deciding if a bank's row-hit streak has been capped:
     * capped banks stop serving further row hits (and may be closed) so
     * one streaming thread cannot capture a bank indefinitely.
     */
    using StreakCapped = std::function<bool(unsigned bank)>;

    /**
     * Pick the index of the oldest row-buffer-hit request whose column
     * command is legal at `now`, or nullopt. Hits to streak-capped banks
     * are skipped when an older conflicting request is waiting.
     */
    std::optional<std::size_t>
    pickColumnReady(const std::deque<Request> &queue, const DramDevice &dram,
                    Cycle now, const StreakCapped &capped) const;

    /**
     * Pick the oldest request that needs (and can start) row preparation:
     * an ACT on a closed bank or a PRE on a conflicting open row.
     *
     * Skips banks where a row-hit request is still pending (don't close
     * useful rows — unless the bank's streak is capped) and requests whose
     * ACT the mitigation blocks — this is how RowHammer-safe requests are
     * prioritized over unsafe ones (Section 3.1 of the paper).
     */
    std::optional<std::size_t>
    pickRowPrep(const std::deque<Request> &queue, const DramDevice &dram,
                Cycle now, const ActFilter &act_allowed,
                const StreakCapped &capped) const;
};

} // namespace bh

#endif // BH_MEM_SCHEDULER_HH
