/**
 * @file
 * RowHammer mitigation mechanism interface.
 *
 * The memory controller consults the installed mechanism before issuing a
 * demand row activation (proactive throttling, used by BlockHammer), informs
 * it of every demand activation and auto refresh, and reads per-thread
 * request quotas (AttackThrottler). Reactive-refresh mechanisms (PARA, CBT,
 * TWiCe, Graphene, ...) respond to onActivate() by scheduling victim-row
 * refreshes through the controller, which occupy DRAM banks like real
 * ACT+PRE pairs — so the performance and energy cost of reactive refresh is
 * modeled faithfully.
 */

#ifndef BH_MEM_MITIGATION_HH
#define BH_MEM_MITIGATION_HH

#include <string>

#include "common/stats.hh"
#include "common/trace_sink.hh"
#include "common/types.hh"

namespace bh
{

class MemController;

/** Abstract RowHammer mitigation mechanism plugged into the controller. */
class Mitigation
{
  public:
    virtual ~Mitigation() = default;

    /** Mechanism name for reports. */
    virtual std::string name() const = 0;

    /**
     * Is it RowHammer-safe to activate (bank, row) for `thread` at `now`?
     * Returning false blocks the activation; the controller will retry and
     * keeps issuing other, safe requests meanwhile.
     */
    virtual bool
    isActSafe(unsigned bank, RowId row, ThreadId thread, Cycle now)
    {
        (void)bank; (void)row; (void)thread; (void)now;
        return true;
    }

    /** A demand activation was issued. */
    virtual void
    onActivate(unsigned bank, RowId row, ThreadId thread, Cycle now)
    {
        (void)bank; (void)row; (void)thread; (void)now;
    }

    /** An all-bank auto refresh covered [first_row, first_row+num_rows). */
    virtual void
    onAutoRefresh(RowId first_row, unsigned num_rows, Cycle now)
    {
        (void)first_row; (void)num_rows; (void)now;
    }

    /** Per-cycle housekeeping (epoch clocks, pruning, ...). */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * Next cycle at which tick() performs time-driven housekeeping (an
     * epoch boundary, a counter-table reset, ...), or kNoEventCycle if
     * none is scheduled. The event-skipping driver never jumps past this,
     * so each boundary is observed by exactly one executed tick — just as
     * in cycle-by-cycle simulation.
     */
    virtual Cycle
    nextHousekeepingAt(Cycle now) const
    {
        (void)now;
        return kNoEventCycle;
    }

    /**
     * Earliest cycle at which an isActSafe() verdict could flip without
     * any new activation being issued (history entries aging out, epoch
     * clears). Mechanisms that never refuse activations keep the default.
     */
    virtual Cycle
    nextVerdictChangeAt(Cycle now) const
    {
        (void)now;
        return kNoEventCycle;
    }

    /**
     * The event-skipping driver eliminated `n` idle controller ticks that
     * would each have re-run the same safety queries as the last executed
     * tick. Mechanisms that keep per-query counters replay them here so
     * skipping stays bit-compatible with cycle-by-cycle simulation.
     */
    virtual void noteSkippedTicks(std::uint64_t n) { (void)n; }

    /**
     * Maximum in-flight read requests <thread, bank> may have; negative
     * means unlimited. Implements AttackThrottler-style quotas.
     */
    virtual int
    quota(ThreadId thread, unsigned bank) const
    {
        (void)thread; (void)bank;
        return -1;
    }

    /**
     * Maximum in-flight read requests `thread` may have across all banks
     * of this channel; negative means unlimited. Implements BreakHammer-
     * style whole-thread throttling, checked at the same lane admission
     * gate as quota() — a request must pass both.
     */
    virtual int
    threadQuota(ThreadId thread) const
    {
        (void)thread;
        return -1;
    }

    /** Wire up the owning controller (for victim-refresh scheduling). */
    virtual void setController(MemController *mc) { controller = mc; }

    /**
     * Publish mechanism counters into `stats` (call once after a run).
     * Mechanisms with internal counters not already mirrored in `stats`
     * override this; the default is a no-op.
     */
    virtual void syncStats() {}

    /** Trace identity; assigned by System when a trace is open. */
    void setTraceMeta(const TraceMeta &meta) { tmeta = meta; }
    const TraceMeta &traceMeta() const { return tmeta; }

    /** Mechanism-specific statistics. */
    StatSet stats;

  protected:
    MemController *controller = nullptr;
    TraceMeta tmeta;
};

/** No-op mechanism: the unprotected baseline system. */
class NullMitigation : public Mitigation
{
  public:
    std::string name() const override { return "Baseline"; }
};

} // namespace bh

#endif // BH_MEM_MITIGATION_HH
