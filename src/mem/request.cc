#include "mem/request.hh"

#include <atomic>

namespace bh
{

std::uint64_t
Request::nextId()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace bh
