/**
 * @file
 * Cycle-level DRAM memory controller for one channel.
 *
 * Models the paper's Table 5 controller: 64-entry read and write queues,
 * FR-FCFS scheduling, open-page row policy, write draining between
 * watermarks, periodic all-bank refresh, a victim-refresh side channel for
 * reactive mitigation mechanisms, and the BlockHammer safety-query hook in
 * front of every demand activation.
 *
 * For event-skipping simulation the controller answers nextEventAt()
 * (earliest future cycle at which it could issue a command or change
 * externally visible state, given no new requests) and replays the
 * per-tick side effects of skipped idle ticks through noteSkippedTicks(),
 * so a skipping run is bit-compatible with a cycle-by-cycle run.
 */

#ifndef BH_MEM_CONTROLLER_HH
#define BH_MEM_CONTROLLER_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/trace_sink.hh"
#include "dram/device.hh"
#include "dram/energy.hh"
#include "dram/hammer_observer.hh"
#include "mem/mitigation.hh"
#include "mem/request.hh"
#include "mem/scheduler.hh"

namespace bh
{

class SecurityOracle;

/** Controller tuning knobs. */
struct ControllerConfig
{
    unsigned readQueueSize = 64;
    unsigned writeQueueSize = 64;
    unsigned writeHighWatermark = 48;   ///< start draining writes
    unsigned writeLowWatermark = 16;    ///< stop draining writes
    /**
     * FR-FCFS-Cap: consecutive row hits a bank may serve while a
     * conflicting request waits, bounding streaming-thread bank capture.
     */
    unsigned rowHitCap = 8;
};

/**
 * A read completion the controller produced but has not yet delivered to
 * the requester. Multi-channel systems tick their channel lanes without
 * touching shared core/LLC state; completions are buffered here (with the
 * lane-local sequence number that makes cross-lane delivery order
 * deterministic) and invoked by the driver at cycle `done`, the cycle the
 * data semantically returns.
 */
struct DeferredCompletion
{
    Cycle done = 0;
    std::uint64_t seq = 0;          ///< lane-local, monotonic
    std::function<void(Cycle)> fn;
};

/** Per-thread row-buffer interaction counters. */
struct ThreadMemStats
{
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t activates = 0;
};

/** One memory channel's controller. */
class MemController
{
  public:
    MemController(DramDevice &device, const ControllerConfig &config,
                  Mitigation &mitigation, HammerObserver *hammer,
                  DramEnergyModel *energy);

    /** Try to accept a request; false if the target queue is full. */
    bool enqueue(Request req);

    /** Advance one cycle: refresh, victim refreshes, demand scheduling. */
    void tick(Cycle now);

    /**
     * Schedule a victim-row refresh (reactive mitigations). The refresh is
     * an ACT+PRE pair that occupies the bank; it is exempt from the
     * mitigation's own safety query to avoid self-feedback.
     */
    void scheduleVictimRefresh(unsigned flat_bank, RowId row);

    /** Pending victim refreshes not yet completed. */
    std::size_t pendingVictimRefreshes() const;

    /** Queue occupancy. */
    std::size_t readQueueDepth() const { return readQ.size(); }
    std::size_t writeQueueDepth() const { return writeQ.size(); }

    /** Queue-full admission checks (cheap pre-gate for submit retries). */
    bool readQueueFull() const { return readQ.size() >= cfg.readQueueSize; }
    bool writeQueueFull() const
    {
        return writeQ.size() >= cfg.writeQueueSize;
    }

    /** Account a submit rejected up front for a full queue. */
    void noteQueueFullReject() { ++numQueueFull; }

    /** In-flight (accepted, not yet serviced) reads for <thread, bank>. */
    int inflight(ThreadId thread, unsigned flat_bank) const;

    /** In-flight reads of `thread` summed across this channel's banks. */
    int inflightThread(ThreadId thread) const;

    /** Per-thread row-buffer statistics. */
    const ThreadMemStats &threadStats(ThreadId thread) const;

    /** Aggregate counters. */
    std::uint64_t demandActivations() const { return numActDemand; }
    std::uint64_t blockedActQueries() const { return numActBlocked; }
    std::uint64_t victimRefreshesDone() const { return numVictimDone; }
    std::uint64_t victimRefreshesScheduled() const
    {
        return numVictimScheduled;
    }
    std::uint64_t refreshes() const { return numRefreshes; }
    std::uint64_t rowHits() const { return numRowHits; }
    std::uint64_t rowMisses() const { return numRowMisses; }
    std::uint64_t rowConflicts() const { return numRowConflicts; }

    /**
     * Monotonic count of externally visible controller activity: issued
     * DRAM commands, completed victim-refresh ops, and accepted requests.
     * The event-skipping driver compares stamps across a cycle to decide
     * whether the system is quiescent.
     */
    std::uint64_t activityStamp() const { return numActions; }

    /**
     * True when the most recent tick() performed no externally visible
     * action AND no request arrived since it ran — the precondition for
     * treating that tick as representative of skipped idle ticks.
     */
    bool
    idleSinceLastTick() const
    {
        return numActions == stampAfterLastTick &&
            stampAfterLastTick == stampBeforeLastTick;
    }

    /**
     * Earliest cycle > `now` at which this controller could act (issue a
     * command, start a refresh, or see a mitigation verdict change),
     * assuming no new requests arrive. Conservative: never later than the
     * true next action, may be earlier. Only valid in an idle state (see
     * idleSinceLastTick()).
     */
    Cycle nextEventAt(Cycle now);

    /**
     * Replay the externally invisible side effects of `n` skipped idle
     * ticks: blocked-activation counters (exactly `n` times the last idle
     * tick's safety-query evaluations), the write-drain fairness toggle,
     * and the mitigation's own per-tick accounting.
     */
    void noteSkippedTicks(std::uint64_t n);

    /**
     * Enable/disable the internal idle-tick fast path (replaying a
     * provably identical idle tick instead of re-walking the queues).
     * On by default; the cycle-by-cycle reference mode turns it off so
     * `--skip off` exercises the original code path end to end.
     */
    void setFastIdleTicks(bool enabled) { fastIdleTicks = enabled; }

    /**
     * Divert read-completion callbacks into `sink` instead of invoking
     * them inline during tick(). Multi-channel lanes set this so their
     * ticks never touch shared core/LLC state (the driver delivers the
     * buffered completions at cycle `done`); nullptr (the single-channel
     * default) restores the inline legacy behavior.
     */
    void setCompletionSink(std::vector<DeferredCompletion> *sink)
    {
        completionSink = sink;
    }

    /**
     * Attach the end-to-end security oracle (see analysis/
     * security_oracle.hh). Observation-only: the oracle mirrors the
     * HammerObserver's activate/refresh notifications and can never
     * influence scheduling, so results are identical with or without
     * it. nullptr (the default) disables the hook.
     */
    void setSecurityOracle(SecurityOracle *oracle) { secOracle = oracle; }

    /** Publish counters into `stats` (call once after a run). */
    void syncStats();

    /**
     * Trace identity (pid = simulated system, tid = channel). Assigned
     * by System when a trace is open; observation-only.
     */
    void setTraceMeta(const TraceMeta &meta) { tmeta = meta; }
    const TraceMeta &traceMeta() const { return tmeta; }

    const DramDevice &device() const { return dram; }
    Mitigation &mitigation() { return mitig; }

    StatSet stats;

  private:
    /** Victim refresh progress per bank. */
    struct VictimOp
    {
        RowId row = 0;
        bool activated = false;
    };

    bool tryRefresh(Cycle now);
    bool tryVictimRefresh(Cycle now);
    bool tryDemand(Cycle now);
    void issueColumn(SchedQueue &queue, SchedQueue::Handle h, Cycle now);
    bool issuePrep(SchedQueue &queue, SchedQueue::Handle h, Cycle now);
    void noteInflight(ThreadId thread, unsigned bank, int delta);
    ThreadMemStats &threadStatsMutable(ThreadId thread);

    DramDevice &dram;
    ControllerConfig cfg;
    Mitigation &mitig;
    HammerObserver *hammer;
    SecurityOracle *secOracle = nullptr;
    DramEnergyModel *energy;
    FrFcfsScheduler scheduler;

    SchedQueue readQ;
    SchedQueue writeQ;
    std::vector<std::deque<VictimOp>> victimQ;  ///< per bank

    bool drainingWrites = false;
    bool drainToggle = false;
    Cycle nextRefreshAt = 0;
    bool refreshPending = false;

    std::vector<DeferredCompletion> *completionSink = nullptr;
    std::uint64_t completionSeq = 0;

    TraceMeta tmeta;

    // Cached bounded histograms (avoid a map lookup per request).
    Histogram *latencyHist;
    Histogram *readDepthHist;
    Histogram *writeDepthHist;

    std::vector<int> inflightCount;     ///< [thread * banks + bank]
    std::vector<int> inflightByThread;  ///< per-thread aggregate
    std::vector<unsigned> hitStreak;    ///< consecutive row hits per bank
    std::vector<ThreadMemStats> perThread;
    unsigned banks = 0;

    // Event-skipping bookkeeping (see activityStamp()).
    std::uint64_t numActions = 0;
    std::uint64_t stampBeforeLastTick = 0;
    std::uint64_t stampAfterLastTick = 0;
    Cycle lastTickAt = -1;
    bool lastTickReachedDemand = false;
    std::uint64_t lastTickBlockedEvals = 0;
    bool fastIdleTicks = true;
    bool idleTickValid = false;     ///< idleUntil holds a live bound
    Cycle idleUntil = 0;            ///< no controller event before this

    std::uint64_t numReads = 0;
    std::uint64_t numWrites = 0;
    std::uint64_t numQueueFull = 0;
    std::uint64_t numRowHits = 0;
    std::uint64_t numRowMisses = 0;
    std::uint64_t numRowConflicts = 0;
    std::uint64_t numActDemand = 0;
    std::uint64_t numActBlocked = 0;
    std::uint64_t numPreDemand = 0;
    std::uint64_t numVictimScheduled = 0;
    std::uint64_t numVictimDone = 0;
    std::uint64_t numRefreshes = 0;
};

} // namespace bh

#endif // BH_MEM_CONTROLLER_HH
