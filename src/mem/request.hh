/**
 * @file
 * Memory request type exchanged between cores, the LLC, and the memory
 * controller.
 */

#ifndef BH_MEM_REQUEST_HH
#define BH_MEM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "dram/org.hh"

namespace bh
{

/** Demand request kind. */
enum class ReqType
{
    kRead,
    kWrite,
};

/** A memory request at line granularity. */
struct Request
{
    Addr addr = 0;
    ReqType type = ReqType::kRead;
    ThreadId thread = kNoThread;
    Cycle arrival = 0;

    /** Decoded coordinates (filled by the memory system on submit). */
    DramCoord coord;

    /** Cached flat bank index (avoids re-deriving it on every scan). */
    unsigned flatBank = 0;

    /** Invoked with the completion cycle when data is returned (reads). */
    std::function<void(Cycle)> onComplete;

    /** Unique id for tracing/debugging. */
    std::uint64_t id = 0;

    // Scheduling bookkeeping (owned by the controller).
    bool rowHitAtIssue = false;
    bool neededPrecharge = false;

    /** Allocate a fresh request id. */
    static std::uint64_t nextId();
};

} // namespace bh

#endif // BH_MEM_REQUEST_HH
