#include "mem/scheduler.hh"

#include <array>

#include "common/log.hh"

namespace bh
{

namespace
{
/** Upper bound on banks per channel for stack-allocated scratch state. */
constexpr unsigned kMaxBanks = 64;
} // namespace

std::optional<std::size_t>
FrFcfsScheduler::pickColumnReady(const std::deque<Request> &queue,
                                 const DramDevice &dram, Cycle now,
                                 const StreakCapped &capped) const
{
    unsigned nbanks = dram.numBanks();
    if (nbanks > kMaxBanks)
        panic("FrFcfsScheduler supports at most %u banks", kMaxBanks);

    // A capped bank only stops serving hits if someone is waiting for a
    // different row in it; otherwise capping would just waste bandwidth.
    std::array<bool, kMaxBanks> conflict_waiting{};
    for (const auto &req : queue) {
        const Bank &bank = dram.bank(req.flatBank);
        if (bank.isOpen() && bank.openRow() != req.coord.row)
            conflict_waiting[req.flatBank] = true;
    }

    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Request &req = queue[i];
        unsigned fb = req.flatBank;
        const Bank &bank = dram.bank(fb);
        if (!bank.isOpen() || bank.openRow() != req.coord.row)
            continue;
        if (conflict_waiting[fb] && capped && capped(fb))
            continue;
        DramCommand cmd = (req.type == ReqType::kRead)
            ? DramCommand::kRd : DramCommand::kWr;
        if (dram.canIssue(cmd, fb, now))
            return i;
    }
    return std::nullopt;
}

std::optional<std::size_t>
FrFcfsScheduler::pickRowPrep(const std::deque<Request> &queue,
                             const DramDevice &dram, Cycle now,
                             const ActFilter &act_allowed,
                             const StreakCapped &capped) const
{
    unsigned nbanks = dram.numBanks();
    if (nbanks > kMaxBanks)
        panic("FrFcfsScheduler supports at most %u banks", kMaxBanks);

    // Banks that still have a pending row-hit request keep their row open
    // — unless their hit streak has been capped.
    std::array<bool, kMaxBanks> keep_open{};
    for (const auto &req : queue) {
        unsigned fb = req.flatBank;
        const Bank &bank = dram.bank(fb);
        if (bank.isOpen() && bank.openRow() == req.coord.row)
            keep_open[fb] = !(capped && capped(fb));
    }

    // Only the oldest request per bank may prepare that bank this cycle;
    // an unsafe (mitigation-blocked) oldest request does not stop a younger
    // safe request to the same bank from being considered.
    std::array<bool, kMaxBanks> prepared{};
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Request &req = queue[i];
        unsigned fb = req.flatBank;
        if (prepared[fb])
            continue;
        const Bank &bank = dram.bank(fb);
        if (bank.isOpen()) {
            if (bank.openRow() == req.coord.row)
                continue;   // column path will serve it
            if (keep_open[fb])
                continue;   // row reuse pending; don't close
            if (dram.canIssue(DramCommand::kPre, fb, now))
                return i;
            prepared[fb] = true;
        } else {
            if (!act_allowed(req))
                continue;   // blocked as RowHammer-unsafe; try younger ones
            if (dram.canIssue(DramCommand::kAct, fb, now))
                return i;
            prepared[fb] = true;
        }
    }
    return std::nullopt;
}

} // namespace bh
