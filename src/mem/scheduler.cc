#include "mem/scheduler.hh"

#include <algorithm>

#include "common/log.hh"

namespace bh
{

SchedQueue::SchedQueue(unsigned num_banks) : banks(num_banks)
{
}

SchedQueue::Handle
SchedQueue::push(Request &&req)
{
    Handle h;
    if (freeHead != kNone) {
        h = freeHead;
        freeHead = nodes[h].next;
        nodes[h].req = std::move(req);
    } else {
        h = static_cast<Handle>(nodes.size());
        nodes.push_back(Node{});
        nodes[h].req = std::move(req);
    }
    Node &n = nodes[h];
    n.seq = nextSeq++;
    n.bank = n.req.flatBank;
    if (n.bank >= banks.size())
        panic("SchedQueue: bank %u out of range (%zu banks)", n.bank,
              banks.size());

    // Global age list append.
    n.prev = tail;
    n.next = kNone;
    if (tail != kNone)
        nodes[tail].next = h;
    else
        head = h;
    tail = h;

    // Per-bank list append.
    BankState &b = banks[n.bank];
    n.bankPrev = b.tail;
    n.bankNext = kNone;
    if (b.tail != kNone)
        nodes[b.tail].bankNext = h;
    else
        b.head = h;
    b.tail = h;
    if (b.count++ == 0) {
        b.activePos = static_cast<std::uint32_t>(active.size());
        active.push_back(n.bank);
    }
    ++b.version;
    ++count;
    return h;
}

Request
SchedQueue::take(Handle h)
{
    Node &n = nodes[h];
    // Global list unlink.
    if (n.prev != kNone)
        nodes[n.prev].next = n.next;
    else
        head = n.next;
    if (n.next != kNone)
        nodes[n.next].prev = n.prev;
    else
        tail = n.prev;

    // Per-bank list unlink.
    BankState &b = banks[n.bank];
    if (n.bankPrev != kNone)
        nodes[n.bankPrev].bankNext = n.bankNext;
    else
        b.head = n.bankNext;
    if (n.bankNext != kNone)
        nodes[n.bankNext].bankPrev = n.bankPrev;
    else
        b.tail = n.bankPrev;
    if (--b.count == 0) {
        // Swap-remove from the active-bank list, fixing the moved bank's
        // back-pointer. Pick order never depends on this list's order
        // (min-seq scans), so the shuffle is invisible.
        unsigned moved = active.back();
        active[b.activePos] = moved;
        banks[moved].activePos = b.activePos;
        active.pop_back();
        b.activePos = 0xffffffffu;
    }
    ++b.version;
    --count;

    Request out = std::move(n.req);
    n.req = Request{};      // release the completion closure eagerly
    n.next = freeHead;
    freeHead = h;
    return out;
}

const SchedQueue::BankHits &
SchedQueue::hitStats(unsigned fb, const Bank &bank)
{
    BankState &b = banks[fb];
    bool open = bank.isOpen();
    RowId row = open ? bank.openRow() : 0;
    if (b.cachedVersion == b.version && b.cachedOpen == open &&
        (!open || b.cachedRow == row)) {
        return b.hits;
    }
    b.hits.hitCount = 0;
    b.hits.oldestHit = kNone;
    if (open) {
        for (Handle h = b.head; h != kNone; h = nodes[h].bankNext) {
            if (nodes[h].req.coord.row == row) {
                if (b.hits.oldestHit == kNone)
                    b.hits.oldestHit = h;
                ++b.hits.hitCount;
            }
        }
    }
    b.cachedVersion = b.version;
    b.cachedOpen = open;
    b.cachedRow = row;
    return b.hits;
}

FrFcfsScheduler::FrFcfsScheduler(unsigned num_banks)
    : prepMark(num_banks, 0)
{
}

SchedQueue::Handle
FrFcfsScheduler::pickColumnReady(SchedQueue &queue, ReqType type,
                                 const DramDevice &dram, Cycle now,
                                 const StreakCapped &capped)
{
    DramCommand cmd = (type == ReqType::kRead)
        ? DramCommand::kRd : DramCommand::kWr;
    // Rank-level column gate (tCCD, bus turnaround) applies to every bank.
    if (dram.columnEarliest(cmd) > now)
        return SchedQueue::kNone;

    SchedQueue::Handle best = SchedQueue::kNone;
    std::uint64_t best_seq = 0;
    for (unsigned fb : queue.activeBanks()) {
        const Bank &bank = dram.bank(fb);
        if (!bank.isOpen())
            continue;
        const auto &hits = queue.hitStats(fb, bank);
        if (hits.hitCount == 0)
            continue;
        // A capped bank only stops serving hits if someone is waiting for
        // a different row in it; otherwise capping would waste bandwidth.
        bool conflict_waiting = queue.bankCount(fb) > hits.hitCount;
        if (conflict_waiting && capped && capped(fb))
            continue;
        if (bank.earliest(cmd) > now)
            continue;
        std::uint64_t seq = queue.seqOf(hits.oldestHit);
        if (best == SchedQueue::kNone || seq < best_seq) {
            best = hits.oldestHit;
            best_seq = seq;
        }
    }
    return best;
}

SchedQueue::Handle
FrFcfsScheduler::pickRowPrep(SchedQueue &queue, const DramDevice &dram,
                             Cycle now, const ActFilter &act_allowed,
                             const StreakCapped &capped)
{
    if (queue.empty())
        return SchedQueue::kNone;
    ++prepGen;

    // Only the oldest request per bank may prepare that bank this cycle;
    // an unsafe (mitigation-blocked) oldest request does not stop a younger
    // safe request to the same bank from being considered.
    for (SchedQueue::Handle h = queue.oldest(); h != SchedQueue::kNone;
         h = queue.next(h)) {
        const Request &req = queue.at(h);
        unsigned fb = req.flatBank;
        if (prepMark[fb] == prepGen)
            continue;
        const Bank &bank = dram.bank(fb);
        if (bank.isOpen()) {
            if (bank.openRow() == req.coord.row)
                continue;   // column path will serve it
            // Banks with a pending row hit keep their row open — unless
            // their hit streak has been capped.
            const auto &hits = queue.hitStats(fb, bank);
            if (hits.hitCount > 0 && !(capped && capped(fb)))
                continue;   // row reuse pending; don't close
            if (dram.canIssue(DramCommand::kPre, fb, now))
                return h;
            prepMark[fb] = prepGen;
        } else {
            if (!act_allowed(req))
                continue;   // blocked as RowHammer-unsafe; try younger ones
            if (dram.canIssue(DramCommand::kAct, fb, now))
                return h;
            prepMark[fb] = prepGen;
        }
    }
    return SchedQueue::kNone;
}

Cycle
FrFcfsScheduler::nextDemandEventAt(SchedQueue &queue, ReqType type,
                                   const DramDevice &dram, Cycle last_tick_at,
                                   const StreakCapped &capped,
                                   Cycle verdict_change_at)
{
    DramCommand cmd = (type == ReqType::kRead)
        ? DramCommand::kRd : DramCommand::kWr;
    Cycle col_gate = dram.columnEarliest(cmd);
    Cycle best = kNoEventCycle;
    for (unsigned fb : queue.activeBanks()) {
        const Bank &bank = dram.bank(fb);
        if (bank.isOpen()) {
            const auto &hits = queue.hitStats(fb, bank);
            bool cap = capped && capped(fb);
            bool conflict = queue.bankCount(fb) > hits.hitCount;
            if (hits.hitCount > 0 && !(cap && conflict))
                best = std::min(best,
                                std::max(bank.earliest(cmd), col_gate));
            // A conflicting request may close the row unless a live (not
            // capped) hit keeps it open.
            if (conflict && !(hits.hitCount > 0 && !cap))
                best = std::min(best, bank.earliest(DramCommand::kPre));
        } else {
            Cycle act = dram.earliest(DramCommand::kAct, fb);
            // An ACT that was already legal at the last executed tick and
            // still was not issued is mitigation-blocked: its verdict can
            // only flip at the mitigation's next time-driven state change.
            // Later ACT-ready times are ordinary timing candidates (the
            // controller simply has not ticked since they became legal).
            best = std::min(best,
                            act > last_tick_at ? act : verdict_change_at);
        }
    }
    return best;
}

} // namespace bh
