/**
 * @file
 * Single-channel memory system: glues together address mapping, the DRAM
 * device, energy model, RowHammer failure oracle, the controller, and the
 * installed mitigation mechanism. Enforces AttackThrottler-style quotas at
 * the admission boundary.
 */

#ifndef BH_MEM_MEM_SYSTEM_HH
#define BH_MEM_MEM_SYSTEM_HH

#include <memory>

#include "dram/address_map.hh"
#include "mem/controller.hh"

namespace bh
{

/** Aggregate configuration for a memory system instance. */
struct MemSystemConfig
{
    DramOrg org = DramOrg::paperConfig();
    DramTimings timings = DramTimings::ddr4();
    MapScheme scheme = MapScheme::kMop;
    ControllerConfig ctrl;
    HammerConfig hammer;
    bool enableHammerObserver = true;
    bool enableEnergy = true;
};

/** Why a submit() was rejected. */
enum class SubmitResult
{
    kAccepted,
    kQueueFull,
    kQuotaExceeded,
};

/** The full memory subsystem behind the LLC. */
class MemSystem
{
  public:
    MemSystem(const MemSystemConfig &config,
              std::unique_ptr<Mitigation> mitigation);

    /** Decode, check quota, and enqueue a request. */
    SubmitResult submit(Request req);

    /** Would a request of `type` be rejected for a full queue right now? */
    bool queueFull(ReqType type) const;

    /** Advance one cycle. */
    void tick(Cycle now) { ctrl->tick(now); }

    /** Total DRAM energy in Joules up to `now`. */
    double totalEnergy(Cycle now);

    MemController &controller() { return *ctrl; }
    const MemController &controller() const { return *ctrl; }
    DramDevice &device() { return *dram; }
    const AddressMapper &mapper() const { return *map; }
    Mitigation &mitigation() { return *mitig; }
    HammerObserver *hammerObserver() { return hammer.get(); }
    DramEnergyModel *energyModel() { return energy.get(); }

    /** Number of rejected submissions due to quota (throttling pressure). */
    std::uint64_t quotaRejects() const { return numQuotaRejects; }

  private:
    MemSystemConfig cfg;
    std::unique_ptr<AddressMapper> map;
    std::unique_ptr<DramDevice> dram;
    std::unique_ptr<DramEnergyModel> energy;
    std::unique_ptr<HammerObserver> hammer;
    std::unique_ptr<Mitigation> mitig;
    std::unique_ptr<MemController> ctrl;
    std::uint64_t numQuotaRejects = 0;
};

} // namespace bh

#endif // BH_MEM_MEM_SYSTEM_HH
