/**
 * @file
 * Multi-channel memory system: one channel lane per DRAM channel, each
 * with its own controller, DRAM device, scheduler queues, energy model,
 * RowHammer failure oracle, and mitigation-mechanism instance (the paper
 * evaluates one BlockHammer instance per channel, Table 5). The address
 * mapper steers requests to lanes by their channel bits; admission
 * (AttackThrottler quotas, queue-full gating) is checked against the
 * target lane.
 *
 * Lanes are self-contained: a lane's tick touches only lane-local state,
 * so the driver may tick different lanes on different threads. Read
 * completions are buffered per lane (see DeferredCompletion) and the
 * driver delivers them to cores/the LLC at cycle `done`, in
 * (done, channel, lane-sequence) order — byte-identical results for any
 * worker count. Single-channel systems keep the legacy inline-callback
 * path bit-for-bit.
 */

#ifndef BH_MEM_MEM_SYSTEM_HH
#define BH_MEM_MEM_SYSTEM_HH

#include <memory>
#include <queue>
#include <vector>

#include "analysis/security_oracle.hh"
#include "dram/address_map.hh"
#include "mem/controller.hh"

namespace bh
{

/** Aggregate configuration for a memory system instance. */
struct MemSystemConfig
{
    DramOrg org = DramOrg::paperConfig();
    DramTimings timings = DramTimings::ddr4();
    MapScheme scheme = MapScheme::kMop;
    ControllerConfig ctrl;
    HammerConfig hammer;
    bool enableHammerObserver = true;
    bool enableEnergy = true;
    /**
     * Attach a per-channel SecurityOracle (sliding-tREFW-window per-row
     * ACT counting; see analysis/security_oracle.hh). Observation-only
     * and off by default: enabling it cannot change simulation results,
     * only record the security verdict. The oracle derives its
     * threshold/window from `hammer.nRH` and `timings.tREFW`.
     */
    bool enableSecurityOracle = false;
};

/** Why a submit() was rejected. */
enum class SubmitResult
{
    kAccepted,
    kQueueFull,
    kQuotaExceeded,
};

/** The full memory subsystem behind the LLC. */
class MemSystem
{
  public:
    /**
     * Multi-channel constructor: one mitigation instance per channel
     * (`mitigations.size()` must equal `config.org.channels`).
     */
    MemSystem(const MemSystemConfig &config,
              std::vector<std::unique_ptr<Mitigation>> mitigations);

    /** Single-channel convenience constructor (org.channels must be 1). */
    MemSystem(const MemSystemConfig &config,
              std::unique_ptr<Mitigation> mitigation);

    /** Decode, check quota, and enqueue a request on its channel lane. */
    SubmitResult submit(Request req);

    /** Would a request of `type` to `addr` bounce off a full queue? */
    bool queueFull(ReqType type, Addr addr) const;

    /** Single-channel queue-full check (fatal on multi-channel systems). */
    bool queueFull(ReqType type) const;

    /** Advance every lane one memory-controller cycle (serially). */
    void tick(Cycle now);

    /** Total DRAM energy in Joules across all lanes up to `now`. */
    double totalEnergy(Cycle now);

    /** Number of channel lanes. */
    unsigned channels() const
    {
        return static_cast<unsigned>(lanes.size());
    }

    /** Per-channel component access. */
    MemController &controller(unsigned ch) { return *lanes[ch].ctrl; }
    const MemController &controller(unsigned ch) const
    {
        return *lanes[ch].ctrl;
    }
    DramDevice &device(unsigned ch) { return *lanes[ch].dram; }
    Mitigation &mitigation(unsigned ch) { return *lanes[ch].mitig; }
    HammerObserver *hammerObserver(unsigned ch)
    {
        return lanes[ch].hammer.get();
    }
    SecurityOracle *securityOracle(unsigned ch)
    {
        return lanes[ch].oracle.get();
    }
    DramEnergyModel *energyModel(unsigned ch)
    {
        return lanes[ch].energy.get();
    }

    /**
     * Single-channel convenience accessors: existing single-channel
     * tests/tools read naturally; calling them on a multi-channel system
     * is a bug and fails loudly.
     */
    MemController &controller() { return *soleLane().ctrl; }
    const MemController &controller() const { return *soleLane().ctrl; }
    DramDevice &device() { return *soleLane().dram; }
    Mitigation &mitigation() { return *soleLane().mitig; }
    HammerObserver *hammerObserver() { return soleLane().hammer.get(); }
    SecurityOracle *securityOracle() { return soleLane().oracle.get(); }
    DramEnergyModel *energyModel() { return soleLane().energy.get(); }

    const AddressMapper &mapper() const { return *map; }

    /** Number of rejected submissions due to quota (throttling pressure). */
    std::uint64_t quotaRejects() const { return numQuotaRejects; }

    // ---- driver hooks (System::run) ------------------------------------

    /** Sum of every lane's activity stamp (quiescence check). */
    std::uint64_t activityStamp() const;

    /** True when every lane's last tick was idle (see MemController). */
    bool allIdleSinceLastTick() const;

    /** Min over lanes of the controller's next-event bound. */
    Cycle nextEventAt(Cycle now);

    /** Replay `n` skipped idle ticks on every lane. */
    void noteSkippedTicks(std::uint64_t n);

    /**
     * Move the per-lane completion buffers into the delivery heap, in
     * channel order. Call after lane ticks (serial or at a chunk
     * barrier); multi-channel only.
     */
    void flushCompletions();

    /** Invoke every buffered completion with done <= now, in order. */
    void deliverCompletionsDue(Cycle now);

    /** Earliest pending delivery, or kNoEventCycle when none. */
    Cycle nextCompletionAt() const;

    /**
     * Lower bound on (completion cycle - issue cycle) of any read or
     * write the controllers can complete: a chunk of lane ticks whose
     * length stays below this bound can never delay a delivery past its
     * due cycle.
     */
    Cycle minCompletionLatency() const;

  private:
    /** Everything one memory channel owns. */
    struct Lane
    {
        std::unique_ptr<DramDevice> dram;
        std::unique_ptr<DramEnergyModel> energy;
        std::unique_ptr<HammerObserver> hammer;
        std::unique_ptr<SecurityOracle> oracle;
        std::unique_ptr<Mitigation> mitig;
        std::unique_ptr<MemController> ctrl;
        std::vector<DeferredCompletion> completions;
    };

    Lane &
    soleLane()
    {
        if (lanes.size() != 1)
            panic("single-channel MemSystem accessor used on a %zu-channel "
                  "system; pass a channel index",
                  lanes.size());
        return lanes[0];
    }

    const Lane &
    soleLane() const
    {
        return const_cast<MemSystem *>(this)->soleLane();
    }

    /** Delivery-heap entry: ordered by (done, channel, lane seq). */
    struct PendingDelivery
    {
        Cycle done = 0;
        unsigned channel = 0;
        std::uint64_t seq = 0;
        std::shared_ptr<std::function<void(Cycle)>> fn;

        bool
        operator>(const PendingDelivery &o) const
        {
            if (done != o.done)
                return done > o.done;
            if (channel != o.channel)
                return channel > o.channel;
            return seq > o.seq;
        }
    };

    MemSystemConfig cfg;
    std::unique_ptr<AddressMapper> map;
    std::vector<Lane> lanes;
    std::priority_queue<PendingDelivery, std::vector<PendingDelivery>,
                        std::greater<PendingDelivery>> pendingDeliveries;
    std::uint64_t numQuotaRejects = 0;
};

} // namespace bh

#endif // BH_MEM_MEM_SYSTEM_HH
