#include "mem/mem_system.hh"

namespace bh
{

MemSystem::MemSystem(const MemSystemConfig &config,
                     std::unique_ptr<Mitigation> mitigation)
    : cfg(config), mitig(std::move(mitigation))
{
    map = std::make_unique<AddressMapper>(cfg.org, cfg.scheme);
    dram = std::make_unique<DramDevice>(cfg.org, cfg.timings);
    if (cfg.enableEnergy)
        energy = std::make_unique<DramEnergyModel>(cfg.timings);
    if (cfg.enableHammerObserver)
        hammer = std::make_unique<HammerObserver>(cfg.org, cfg.hammer);
    ctrl = std::make_unique<MemController>(*dram, cfg.ctrl, *mitig,
                                           hammer.get(), energy.get());
}

bool
MemSystem::queueFull(ReqType type) const
{
    return type == ReqType::kRead ? ctrl->readQueueFull()
                                  : ctrl->writeQueueFull();
}

SubmitResult
MemSystem::submit(Request req)
{
    // Cheap pre-gate: a full target queue rejects regardless of address
    // decode or quota state, and stalled cores re-submit every cycle.
    if (queueFull(req.type)) {
        ctrl->noteQueueFullReject();
        return SubmitResult::kQueueFull;
    }

    req.coord = map->decode(req.addr);
    req.flatBank = req.coord.flatBank(cfg.org);
    unsigned fb = req.flatBank;

    // AttackThrottler quota: reject new reads for <thread, bank> pairs
    // whose in-flight count has reached the mechanism's quota.
    if (req.type == ReqType::kRead && req.thread >= 0) {
        int q = mitig->quota(req.thread, fb);
        if (q >= 0 && ctrl->inflight(req.thread, fb) >= q) {
            ++numQuotaRejects;
            return SubmitResult::kQuotaExceeded;
        }
    }
    if (!ctrl->enqueue(std::move(req)))
        return SubmitResult::kQueueFull;
    return SubmitResult::kAccepted;
}

double
MemSystem::totalEnergy(Cycle now)
{
    return energy ? energy->totalEnergy(now) : 0.0;
}

} // namespace bh
