#include "mem/mem_system.hh"

#include <algorithm>

#include "common/log.hh"

namespace bh
{

MemSystem::MemSystem(const MemSystemConfig &config,
                     std::vector<std::unique_ptr<Mitigation>> mitigations)
    : cfg(config)
{
    cfg.org.validated();
    if (mitigations.size() != cfg.org.channels)
        fatal("MemSystem: %zu mitigation instance(s) for %u channel(s) "
              "(the paper instantiates one per channel)",
              mitigations.size(), cfg.org.channels);
    map = std::make_unique<AddressMapper>(cfg.org, cfg.scheme);

    // Each lane's device/observer spans one channel's banks: geometry is
    // the per-channel organization.
    DramOrg lane_org = cfg.org;
    lane_org.channels = 1;

    lanes.resize(cfg.org.channels);
    bool multi = lanes.size() > 1;
    for (unsigned ch = 0; ch < lanes.size(); ++ch) {
        Lane &lane = lanes[ch];
        lane.dram = std::make_unique<DramDevice>(lane_org, cfg.timings);
        if (cfg.enableEnergy)
            lane.energy = std::make_unique<DramEnergyModel>(cfg.timings);
        if (cfg.enableHammerObserver)
            lane.hammer = std::make_unique<HammerObserver>(lane_org,
                                                           cfg.hammer);
        if (cfg.enableSecurityOracle) {
            SecurityOracleConfig oracle_cfg;
            oracle_cfg.nRH = cfg.hammer.nRH;
            oracle_cfg.windowCycles = cfg.timings.tREFW;
            lane.oracle = std::make_unique<SecurityOracle>(lane_org,
                                                           oracle_cfg);
        }
        lane.mitig = std::move(mitigations[ch]);
        lane.ctrl = std::make_unique<MemController>(
            *lane.dram, cfg.ctrl, *lane.mitig, lane.hammer.get(),
            lane.energy.get());
        if (lane.oracle)
            lane.ctrl->setSecurityOracle(lane.oracle.get());
        // Multi-channel lanes must not touch shared core/LLC state from
        // inside a tick; completions are buffered and delivered by the
        // driver at cycle `done`. Single-channel keeps the legacy inline
        // invocation bit-for-bit.
        if (multi)
            lane.ctrl->setCompletionSink(&lane.completions);
    }
}

namespace
{

std::vector<std::unique_ptr<Mitigation>>
singleton(std::unique_ptr<Mitigation> mitigation)
{
    std::vector<std::unique_ptr<Mitigation>> v;
    v.push_back(std::move(mitigation));
    return v;
}

} // namespace

MemSystem::MemSystem(const MemSystemConfig &config,
                     std::unique_ptr<Mitigation> mitigation)
    : MemSystem(config, singleton(std::move(mitigation)))
{
    // A multi-channel config fatals in the delegated constructor: one
    // mitigation instance cannot serve N channels.
}

bool
MemSystem::queueFull(ReqType type, Addr addr) const
{
    const Lane &lane = lanes[map->channelOf(addr)];
    return type == ReqType::kRead ? lane.ctrl->readQueueFull()
                                  : lane.ctrl->writeQueueFull();
}

bool
MemSystem::queueFull(ReqType type) const
{
    const Lane &lane = soleLane();
    return type == ReqType::kRead ? lane.ctrl->readQueueFull()
                                  : lane.ctrl->writeQueueFull();
}

SubmitResult
MemSystem::submit(Request req)
{
    req.coord = map->decode(req.addr);
    req.flatBank = req.coord.flatBank(cfg.org);
    Lane &lane = lanes[req.coord.channel];

    // Cheap pre-gate: a full target queue rejects regardless of quota
    // state, and stalled cores re-submit every cycle.
    bool full = req.type == ReqType::kRead ? lane.ctrl->readQueueFull()
                                           : lane.ctrl->writeQueueFull();
    if (full) {
        lane.ctrl->noteQueueFullReject();
        if (TraceSink::on()) {
            TraceSink::instant(
                "queue", "queue_full", lane.ctrl->traceMeta(),
                req.arrival,
                {{"thread", static_cast<std::int64_t>(req.thread)},
                 {"read",
                  static_cast<std::int64_t>(
                      req.type == ReqType::kRead ? 1 : 0)}});
        }
        return SubmitResult::kQueueFull;
    }

    unsigned fb = req.flatBank;

    // AttackThrottler quota: reject new reads for <thread, bank> pairs
    // whose in-flight count has reached the lane mechanism's quota.
    if (req.type == ReqType::kRead && req.thread >= 0) {
        int q = lane.mitig->quota(req.thread, fb);
        if (q >= 0 && lane.ctrl->inflight(req.thread, fb) >= q) {
            ++numQuotaRejects;
            if (TraceSink::on()) {
                TraceSink::instant(
                    "queue", "quota_reject", lane.ctrl->traceMeta(),
                    req.arrival,
                    {{"thread", static_cast<std::int64_t>(req.thread)},
                     {"bank", static_cast<std::int64_t>(fb)},
                     {"quota", static_cast<std::int64_t>(q)}});
            }
            return SubmitResult::kQuotaExceeded;
        }
        // BreakHammer-style whole-thread quota: a suspect thread is
        // capped on its channel-wide in-flight reads regardless of the
        // bank it targets. Checked at the same gate as the per-bank
        // quota; in-flight accounting only moves inside a successful
        // enqueue (and back at service), so a rejection here — or a
        // queue-full rejection above — can never leak a quota slot.
        int tq = lane.mitig->threadQuota(req.thread);
        if (tq >= 0 && lane.ctrl->inflightThread(req.thread) >= tq) {
            ++numQuotaRejects;
            if (TraceSink::on()) {
                TraceSink::instant(
                    "queue", "thread_quota_reject", lane.ctrl->traceMeta(),
                    req.arrival,
                    {{"thread", static_cast<std::int64_t>(req.thread)},
                     {"quota", static_cast<std::int64_t>(tq)}});
            }
            return SubmitResult::kQuotaExceeded;
        }
    }
    if (!lane.ctrl->enqueue(std::move(req)))
        return SubmitResult::kQueueFull;
    return SubmitResult::kAccepted;
}

void
MemSystem::tick(Cycle now)
{
    for (auto &lane : lanes)
        lane.ctrl->tick(now);
    if (lanes.size() > 1)
        flushCompletions();
}

double
MemSystem::totalEnergy(Cycle now)
{
    double total = 0.0;
    for (auto &lane : lanes)
        if (lane.energy)
            total += lane.energy->totalEnergy(now);
    return total;
}

std::uint64_t
MemSystem::activityStamp() const
{
    std::uint64_t s = 0;
    for (const auto &lane : lanes)
        s += lane.ctrl->activityStamp();
    return s;
}

bool
MemSystem::allIdleSinceLastTick() const
{
    for (const auto &lane : lanes)
        if (!lane.ctrl->idleSinceLastTick())
            return false;
    return true;
}

Cycle
MemSystem::nextEventAt(Cycle now)
{
    Cycle best = kNoEventCycle;
    for (auto &lane : lanes)
        best = std::min(best, lane.ctrl->nextEventAt(now));
    return best;
}

void
MemSystem::noteSkippedTicks(std::uint64_t n)
{
    for (auto &lane : lanes)
        lane.ctrl->noteSkippedTicks(n);
}

void
MemSystem::flushCompletions()
{
    for (unsigned ch = 0; ch < lanes.size(); ++ch) {
        for (auto &dc : lanes[ch].completions) {
            pendingDeliveries.push(PendingDelivery{
                dc.done, ch, dc.seq,
                std::make_shared<std::function<void(Cycle)>>(
                    std::move(dc.fn))});
        }
        lanes[ch].completions.clear();
    }
}

void
MemSystem::deliverCompletionsDue(Cycle now)
{
    while (!pendingDeliveries.empty() &&
           pendingDeliveries.top().done <= now) {
        PendingDelivery d = pendingDeliveries.top();
        pendingDeliveries.pop();
        // The callback may submit new requests (LLC writebacks); lanes
        // only observe them at their next tick, regardless of execution
        // strategy, so delivery order fully determines the outcome.
        (*d.fn)(d.done);
    }
}

Cycle
MemSystem::nextCompletionAt() const
{
    return pendingDeliveries.empty() ? kNoEventCycle
                                     : pendingDeliveries.top().done;
}

Cycle
MemSystem::minCompletionLatency() const
{
    return std::min(cfg.timings.tCL, cfg.timings.tCWL) + cfg.timings.tBL;
}

} // namespace bh
