#include "mem/controller.hh"

#include <algorithm>

#include "analysis/security_oracle.hh"
#include "common/log.hh"

namespace bh
{

MemController::MemController(DramDevice &device, const ControllerConfig &config,
                             Mitigation &mitigation, HammerObserver *hammer_obs,
                             DramEnergyModel *energy_model)
    : dram(device), cfg(config), mitig(mitigation), hammer(hammer_obs),
      energy(energy_model), scheduler(device.numBanks()),
      readQ(device.numBanks()), writeQ(device.numBanks()),
      victimQ(device.numBanks()),
      nextRefreshAt(device.timings().tREFI),
      hitStreak(device.numBanks(), 0),
      banks(device.numBanks())
{
    mitig.setController(this);
    // Bounded reservoirs: per-request series must not grow with run
    // length. Seeded, so retained subsets are reproducible.
    latencyHist = &stats.hist("mc.latency", 4096);
    readDepthHist = &stats.hist("mc.read_queue_depth", 4096);
    writeDepthHist = &stats.hist("mc.write_queue_depth", 4096);
}

bool
MemController::enqueue(Request req)
{
    auto &queue = (req.type == ReqType::kRead) ? readQ : writeQ;
    auto cap = (req.type == ReqType::kRead)
        ? cfg.readQueueSize : cfg.writeQueueSize;
    if (queue.size() >= cap) {
        ++numQueueFull;
        return false;
    }
    req.rowHitAtIssue = true;
    req.neededPrecharge = false;
    unsigned fb = req.flatBank;
    if (req.type == ReqType::kRead) {
        noteInflight(req.thread, fb, +1);
        ++numReads;
        if (req.thread >= 0)
            ++threadStatsMutable(req.thread).reads;
    } else {
        ++numWrites;
        if (req.thread >= 0)
            ++threadStatsMutable(req.thread).writes;
    }
    // Depth is sampled per accepted request (event-driven, never per
    // tick), so the series is identical across skip modes and thread
    // counts.
    readDepthHist->add(static_cast<std::int64_t>(readQ.size()) +
                       (req.type == ReqType::kRead ? 1 : 0));
    writeDepthHist->add(static_cast<std::int64_t>(writeQ.size()) +
                        (req.type == ReqType::kWrite ? 1 : 0));
    Cycle arrival = req.arrival;
    queue.push(std::move(req));
    ++numActions;
    if (TraceSink::on()) {
        TraceSink::counter("queue", "depth", tmeta, arrival,
                           {{"read",
                             static_cast<std::int64_t>(readQ.size())},
                            {"write",
                             static_cast<std::int64_t>(writeQ.size())}});
    }
    return true;
}

void
MemController::tick(Cycle now)
{
    // Idle fast path: if the last executed tick did nothing, nothing has
    // arrived since, and no timing/mitigation event matures before `now`,
    // this tick is an exact repeat of the last one — replay its (purely
    // internal) bookkeeping instead of re-walking the queues. Disabled in
    // cycle-by-cycle reference mode.
    if (fastIdleTicks && idleTickValid && now < idleUntil &&
        idleSinceLastTick()) {
        noteSkippedTicks(1);
        return;
    }
    idleTickValid = false;

    stampBeforeLastTick = numActions;
    lastTickAt = now;
    lastTickReachedDemand = false;
    std::uint64_t blocked_before = numActBlocked;

    mitig.tick(now);

    if (!refreshPending && now >= nextRefreshAt)
        refreshPending = true;

    // At most one command per cycle on the command bus.
    if (!tryRefresh(now) && !refreshPending) {
        // While refresh is pending, all effort goes to closing banks.
        if (!tryVictimRefresh(now)) {
            lastTickReachedDemand = true;
            tryDemand(now);
        }
    }

    lastTickBlockedEvals = numActBlocked - blocked_before;
    stampAfterLastTick = numActions;

    if (fastIdleTicks && stampAfterLastTick == stampBeforeLastTick) {
        idleUntil = nextEventAt(now);
        idleTickValid = true;
    }
}

bool
MemController::tryRefresh(Cycle now)
{
    if (!refreshPending)
        return false;

    // Close any open bank as soon as legal (one PRE per cycle).
    for (unsigned fb = 0; fb < banks; ++fb) {
        if (dram.bank(fb).isOpen() &&
            dram.canIssue(DramCommand::kPre, fb, now)) {
            dram.issue(DramCommand::kPre, fb, 0, now);
            ++numActions;
            if (energy)
                energy->onOpenBankCount(dram.openBankCount(), now);
            return true;
        }
    }
    if (dram.anyBankOpen())
        return false;

    Cycle e = dram.earliestRefresh();
    if (e < 0 || now < e)
        return false;

    auto range = dram.issueRefresh(now);
    ++numActions;
    if (TraceSink::on()) {
        TraceSink::instant("mem", "refresh", tmeta, now,
                           {{"first_row",
                             static_cast<std::int64_t>(range.firstRow)},
                            {"rows",
                             static_cast<std::int64_t>(range.numRows)}});
    }
    if (energy)
        energy->onCommand(DramCommand::kRef, now);
    if (hammer)
        hammer->onAutoRefresh(range.firstRow, range.numRows);
    if (secOracle)
        secOracle->onAutoRefresh(range.firstRow, range.numRows);
    mitig.onAutoRefresh(range.firstRow, range.numRows, now);
    nextRefreshAt += dram.timings().tREFI;
    refreshPending = false;
    ++numRefreshes;
    return true;
}

bool
MemController::tryVictimRefresh(Cycle now)
{
    for (unsigned fb = 0; fb < banks; ++fb) {
        auto &ops = victimQ[fb];
        if (ops.empty())
            continue;
        VictimOp &op = ops.front();
        if (!op.activated) {
            if (dram.bank(fb).isOpen()) {
                if (dram.canIssue(DramCommand::kPre, fb, now)) {
                    dram.issue(DramCommand::kPre, fb, 0, now);
                    ++numActions;
                    if (energy)
                        energy->onOpenBankCount(dram.openBankCount(), now);
                    return true;
                }
                continue;
            }
            if (dram.canIssue(DramCommand::kAct, fb, now)) {
                dram.issue(DramCommand::kAct, fb, op.row, now);
                ++numActions;
                if (TraceSink::on()) {
                    TraceSink::instant(
                        "mem", "victim_act", tmeta, now,
                        {{"bank", static_cast<std::int64_t>(fb)},
                         {"row", static_cast<std::int64_t>(op.row)}});
                }
                if (energy) {
                    energy->onCommand(DramCommand::kAct, now);
                    energy->onOpenBankCount(dram.openBankCount(), now);
                }
                if (hammer) {
                    // Victim refreshes restore the row's charge. Like the
                    // paper's Ramulator model (and all baseline papers) we
                    // do not feed the refresh ACT back into the disturbance
                    // model; see DESIGN.md "refresh-induced disturbance".
                    hammer->onRowRefresh(fb, op.row);
                }
                if (secOracle)
                    secOracle->onRowRefresh(fb, op.row);
                op.activated = true;
                return true;
            }
        } else {
            // The refresh's row-restore completed at ACT time; the PRE is
            // cleanup. Another path (refresh drain, demand precharge) may
            // have already closed — or even re-opened — the bank.
            if (!dram.bank(fb).isOpen() ||
                dram.bank(fb).openRow() != op.row) {
                ops.pop_front();
                ++numVictimDone;
                ++numActions;
                continue;
            }
            if (dram.canIssue(DramCommand::kPre, fb, now)) {
                dram.issue(DramCommand::kPre, fb, 0, now);
                ++numActions;
                if (energy)
                    energy->onOpenBankCount(dram.openBankCount(), now);
                ops.pop_front();
                ++numVictimDone;
                return true;
            }
        }
    }
    return false;
}

bool
MemController::tryDemand(Cycle now)
{
    // Write drain hysteresis.
    if (drainingWrites) {
        if (writeQ.size() <= cfg.writeLowWatermark)
            drainingWrites = false;
    } else {
        if (writeQ.size() >= cfg.writeHighWatermark)
            drainingWrites = true;
    }
    // While draining, alternate read/write priority so a sustained write
    // flood (e.g., a non-temporal copy) cannot monopolize the command bus
    // and starve readers.
    drainToggle = !drainToggle;
    bool serve_writes = (drainingWrites && drainToggle) || readQ.empty();
    auto &primary = serve_writes ? writeQ : readQ;
    auto &secondary = serve_writes ? readQ : writeQ;
    ReqType primary_type = serve_writes ? ReqType::kWrite : ReqType::kRead;
    ReqType secondary_type = serve_writes ? ReqType::kRead : ReqType::kWrite;

    auto capped = [&](unsigned bank) {
        return hitStreak[bank] >= cfg.rowHitCap;
    };
    // 1. Row-buffer hits from the primary queue.
    if (auto h = scheduler.pickColumnReady(primary, primary_type, dram, now,
                                           capped);
        h != SchedQueue::kNone) {
        issueColumn(primary, h, now);
        return true;
    }
    // 2. Opportunistic hits from the secondary queue.
    if (auto h = scheduler.pickColumnReady(secondary, secondary_type, dram,
                                           now, capped);
        h != SchedQueue::kNone) {
        issueColumn(secondary, h, now);
        return true;
    }
    // 3. Row preparation, honoring the mitigation's safety verdict.
    auto act_filter = [&](const Request &req) {
        unsigned fb = req.flatBank;
        bool safe = mitig.isActSafe(fb, req.coord.row, req.thread, now);
        if (!safe)
            ++numActBlocked;
        return safe;
    };
    if (auto h = scheduler.pickRowPrep(primary, dram, now, act_filter,
                                       capped);
        h != SchedQueue::kNone) {
        if (issuePrep(primary, h, now))
            return true;
    }
    if (auto h = scheduler.pickRowPrep(secondary, dram, now, act_filter,
                                       capped);
        h != SchedQueue::kNone) {
        if (issuePrep(secondary, h, now))
            return true;
    }
    return false;
}

void
MemController::issueColumn(SchedQueue &queue, SchedQueue::Handle h,
                           Cycle now)
{
    Request req = queue.take(h);
    ++numActions;
    unsigned fb = req.flatBank;
    DramCommand cmd = (req.type == ReqType::kRead)
        ? DramCommand::kRd : DramCommand::kWr;
    dram.issue(cmd, fb, req.coord.row, now);
    if (energy)
        energy->onCommand(cmd, now);

    // Row-hit streak accounting for FR-FCFS-Cap.
    if (req.rowHitAtIssue && !req.neededPrecharge)
        ++hitStreak[fb];

    // Row-buffer interaction classification at first (only) service.
    if (req.neededPrecharge) {
        ++numRowConflicts;
        if (req.thread >= 0)
            ++threadStatsMutable(req.thread).rowConflicts;
    } else if (req.rowHitAtIssue) {
        ++numRowHits;
        if (req.thread >= 0)
            ++threadStatsMutable(req.thread).rowHits;
    } else {
        ++numRowMisses;
        if (req.thread >= 0)
            ++threadStatsMutable(req.thread).rowMisses;
    }

    const auto &t = dram.timings();
    Cycle done = (req.type == ReqType::kRead)
        ? now + t.tCL + t.tBL
        : now + t.tCWL + t.tBL;
    if (req.type == ReqType::kRead)
        noteInflight(req.thread, fb, -1);
    latencyHist->add(static_cast<std::int64_t>(done - req.arrival));
    if (req.onComplete) {
        if (completionSink) {
            completionSink->push_back(DeferredCompletion{
                done, completionSeq++, std::move(req.onComplete)});
        } else {
            req.onComplete(done);
        }
    }
}

bool
MemController::issuePrep(SchedQueue &queue, SchedQueue::Handle h, Cycle now)
{
    Request &req = queue.at(h);
    unsigned fb = req.flatBank;
    const Bank &bank = dram.bank(fb);
    if (bank.isOpen()) {
        dram.issue(DramCommand::kPre, fb, 0, now);
        ++numActions;
        if (TraceSink::on()) {
            TraceSink::instant("mem", "pre", tmeta, now,
                               {{"bank", static_cast<std::int64_t>(fb)}});
        }
        if (energy)
            energy->onOpenBankCount(dram.openBankCount(), now);
        req.neededPrecharge = true;
        ++numPreDemand;
        return true;
    }
    dram.issue(DramCommand::kAct, fb, req.coord.row, now);
    ++numActions;
    if (TraceSink::on()) {
        TraceSink::instant("mem", "act", tmeta, now,
                           {{"bank", static_cast<std::int64_t>(fb)},
                            {"row",
                             static_cast<std::int64_t>(req.coord.row)},
                            {"thread",
                             static_cast<std::int64_t>(req.thread)}});
    }
    hitStreak[fb] = 0;
    if (energy) {
        energy->onCommand(DramCommand::kAct, now);
        energy->onOpenBankCount(dram.openBankCount(), now);
    }
    if (hammer)
        hammer->onActivate(fb, req.coord.row, now);
    if (secOracle)
        secOracle->onActivate(fb, req.coord.row, now);
    mitig.onActivate(fb, req.coord.row, req.thread, now);
    req.rowHitAtIssue = false;
    ++numActDemand;
    if (req.thread >= 0)
        ++threadStatsMutable(req.thread).activates;
    return true;
}

void
MemController::scheduleVictimRefresh(unsigned flat_bank, RowId row)
{
    victimQ[flat_bank].push_back(VictimOp{row, false});
    ++numVictimScheduled;
    ++numActions;
}

std::size_t
MemController::pendingVictimRefreshes() const
{
    std::size_t n = 0;
    for (const auto &q : victimQ)
        n += q.size();
    return n;
}

Cycle
MemController::nextEventAt(Cycle now)
{
    // While the idle analysis from the last executed tick still holds,
    // its bound is the answer (the skip driver asks every quiet cycle).
    if (idleTickValid && now < idleUntil && idleSinceLastTick())
        return idleUntil;

    // The mitigation's epoch/reset boundaries bound every skip so that at
    // most one boundary is crossed per executed tick (its catch-up logic
    // then matches the cycle-by-cycle path exactly).
    Cycle best = mitig.nextHousekeepingAt(now);

    if (refreshPending) {
        // Refresh drain gates everything else: the next actions are PREs
        // on open banks, then the REF itself.
        if (dram.anyBankOpen()) {
            for (unsigned fb = 0; fb < banks; ++fb)
                if (dram.bank(fb).isOpen())
                    best = std::min(best,
                                    dram.bank(fb).earliest(DramCommand::kPre));
        } else {
            best = std::min(best, std::max<Cycle>(dram.earliestRefresh(), 0));
        }
        return std::max(best, now);
    }

    best = std::min(best, nextRefreshAt);

    // Victim-refresh candidates. Completed ops whose bank moved on are
    // popped eagerly by the preceding tick, so pending ops wait on timing.
    for (unsigned fb = 0; fb < banks; ++fb) {
        const auto &ops = victimQ[fb];
        if (ops.empty())
            continue;
        const VictimOp &op = ops.front();
        if (!op.activated) {
            best = std::min(best, dram.bank(fb).isOpen()
                            ? dram.bank(fb).earliest(DramCommand::kPre)
                            : dram.earliest(DramCommand::kAct, fb));
        } else {
            best = std::min(best,
                            dram.bank(fb).earliest(DramCommand::kPre));
        }
    }

    // Demand candidates from both queues (either can serve any tick).
    auto capped = [&](unsigned bank) {
        return hitStreak[bank] >= cfg.rowHitCap;
    };
    Cycle verdict = mitig.nextVerdictChangeAt(now);
    // Any unsafe verdict in the last tick makes the per-tick blocked
    // counters verdict-dependent: even if no command can issue earlier, a
    // verdict flip changes what the skipped ticks would have counted.
    if (lastTickBlockedEvals > 0)
        best = std::min(best, verdict);
    best = std::min(best, scheduler.nextDemandEventAt(
        readQ, ReqType::kRead, dram, lastTickAt, capped, verdict));
    best = std::min(best, scheduler.nextDemandEventAt(
        writeQ, ReqType::kWrite, dram, lastTickAt, capped, verdict));
    return std::max(best, now);
}

void
MemController::noteSkippedTicks(std::uint64_t n)
{
    if (lastTickReachedDemand) {
        // Each skipped tick would have re-evaluated the same mitigation
        // safety queries and flipped the drain fairness toggle once.
        numActBlocked += lastTickBlockedEvals * n;
        if (n & 1)
            drainToggle = !drainToggle;
    }
    mitig.noteSkippedTicks(n);
}

int
MemController::inflight(ThreadId thread, unsigned flat_bank) const
{
    if (thread < 0)
        return 0;
    std::size_t i = static_cast<std::size_t>(thread) * banks + flat_bank;
    if (i >= inflightCount.size())
        return 0;
    return inflightCount[i];
}

int
MemController::inflightThread(ThreadId thread) const
{
    if (thread < 0 ||
        static_cast<std::size_t>(thread) >= inflightByThread.size()) {
        return 0;
    }
    return inflightByThread[static_cast<std::size_t>(thread)];
}

const ThreadMemStats &
MemController::threadStats(ThreadId thread) const
{
    static const ThreadMemStats empty;
    if (thread < 0 ||
        static_cast<std::size_t>(thread) >= perThread.size()) {
        return empty;
    }
    return perThread[static_cast<std::size_t>(thread)];
}

ThreadMemStats &
MemController::threadStatsMutable(ThreadId thread)
{
    auto i = static_cast<std::size_t>(thread);
    if (i >= perThread.size())
        perThread.resize(i + 1);
    return perThread[i];
}

void
MemController::noteInflight(ThreadId thread, unsigned bank, int delta)
{
    if (thread < 0)
        return;
    std::size_t i = static_cast<std::size_t>(thread) * banks + bank;
    if (i >= inflightCount.size())
        inflightCount.resize(i + 1, 0);
    inflightCount[i] += delta;
    auto t = static_cast<std::size_t>(thread);
    if (t >= inflightByThread.size())
        inflightByThread.resize(t + 1, 0);
    inflightByThread[t] += delta;
}

void
MemController::syncStats()
{
    stats.inc("mc.reads", numReads);
    stats.inc("mc.writes", numWrites);
    stats.inc("mc.queue_full", numQueueFull);
    stats.inc("mc.row_hit", numRowHits);
    stats.inc("mc.row_miss", numRowMisses);
    stats.inc("mc.row_conflict", numRowConflicts);
    stats.inc("mc.act_demand", numActDemand);
    stats.inc("mc.act_blocked", numActBlocked);
    stats.inc("mc.pre_demand", numPreDemand);
    stats.inc("mc.victim_refresh_scheduled", numVictimScheduled);
    stats.inc("mc.victim_refresh_done", numVictimDone);
    stats.inc("mc.refreshes", numRefreshes);
    std::uint64_t classified = numRowHits + numRowMisses + numRowConflicts;
    stats.set("mc.row_hit_rate",
              classified ? static_cast<double>(numRowHits) /
                      static_cast<double>(classified)
                         : 0.0);
}

} // namespace bh
