#include "mitigations/breakhammer.hh"

#include <algorithm>
#include <cmath>

#include "mem/controller.hh"

namespace bh
{

BreakHammer::BreakHammer(std::unique_ptr<Mitigation> base_mech,
                         const MitigationSettings &settings)
    : base(std::move(base_mech)), cfg(settings),
      epoch(std::max<Cycle>(1, settings.timings.tREFW / 2)),
      nextEpochAt(std::max<Cycle>(1, settings.timings.tREFW / 2))
{
    // Score normalization: a tracker triggers at most once per T
    // aggressor activations (T = half the effective budget, the ladder
    // every tracker here derives), and one bank absorbs at most
    // W = tREFW / tRC activations per window. A thread blamed for half
    // a bank's worst-case trigger rate is certainly hammering; benign
    // threads trigger preventive refreshes rarely if ever.
    auto w = static_cast<double>(
        cfg.timings.tREFW / std::max<Cycle>(1, cfg.timings.tRC));
    double t = std::max<std::uint32_t>(1, cfg.effectiveNRH() / 2);
    blameDenom = std::max(4.0, w / (2.0 * t));
    // Scores never need to exceed ~2 (quota is 0 from 1 up), so
    // saturating counters suffice, mirroring AttackThrottler.
    counterMax = static_cast<std::uint32_t>(std::ceil(2.0 * blameDenom));
    counters[0].assign(cfg.threads, 0);
    counters[1].assign(cfg.threads, 0);
}

void
BreakHammer::setController(MemController *mc)
{
    Mitigation::setController(mc);
    base->setController(mc);
}

void
BreakHammer::blame(ThreadId thread, std::uint64_t triggers)
{
    if (thread < 0 || static_cast<unsigned>(thread) >= cfg.threads)
        return;
    numBlamed += triggers;
    auto i = static_cast<std::size_t>(thread);
    for (auto &side : counters) {
        std::uint64_t v = side[i] + triggers;
        side[i] = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(v, counterMax));
    }
}

void
BreakHammer::onActivate(unsigned bank, RowId row, ThreadId thread,
                        Cycle now)
{
    // The blame signal: victim refreshes the base schedules while
    // digesting this activation. onActivate never runs during skipped
    // idle ticks, so the scores need no skip-replay bookkeeping.
    std::uint64_t before = controller->victimRefreshesScheduled();
    base->onActivate(bank, row, thread, now);
    std::uint64_t delta = controller->victimRefreshesScheduled() - before;
    if (delta > 0) {
        // Refreshes -> trigger events: one trigger fans out to
        // 2 * blastRadius victims per affected bank, and a wide fan-out
        // (ABACuS refreshing every bank) is proportionally more blame.
        std::uint64_t fan = 2ull * std::max(1u, cfg.blastRadius);
        blame(thread, (delta + fan - 1) / fan);
        if (TraceSink::on()) {
            TraceSink::instant(
                "mitig", "breakhammer_blame", tmeta, now,
                {{"thread", static_cast<std::int64_t>(thread)},
                 {"refreshes", static_cast<std::int64_t>(delta)}});
        }
    }
}

void
BreakHammer::tick(Cycle now)
{
    base->tick(now);
    while (now >= nextEpochAt) {
        for (std::size_t t = 0; t < counters[active].size(); ++t)
            if (static_cast<double>(counters[active][t]) >= blameDenom)
                ++numThrottledEpochs;
        // Clear the active side and swap: the passive side, which kept
        // accumulating, becomes authoritative (AttackThrottler's
        // time-interleaved discipline).
        std::fill(counters[active].begin(), counters[active].end(), 0);
        active = 1 - active;
        nextEpochAt += epoch;
    }
}

Cycle
BreakHammer::nextHousekeepingAt(Cycle now) const
{
    return std::min(base->nextHousekeepingAt(now), nextEpochAt);
}

double
BreakHammer::score(ThreadId thread) const
{
    if (thread < 0 || static_cast<unsigned>(thread) >= cfg.threads)
        return 0.0;
    return static_cast<double>(
               counters[active][static_cast<std::size_t>(thread)]) /
        blameDenom;
}

std::uint32_t
BreakHammer::blamedTriggers(ThreadId thread) const
{
    if (thread < 0 || static_cast<unsigned>(thread) >= cfg.threads)
        return 0;
    return counters[active][static_cast<std::size_t>(thread)];
}

int
BreakHammer::threadQuota(ThreadId thread) const
{
    double r = score(thread);
    if (r <= 0.0)
        return -1;      // benign: unlimited
    if (r >= 1.0)
        return 0;       // certain attacker: starve entirely
    double q = static_cast<double>(baseQuota) * (1.0 - r);
    return std::max(0, static_cast<int>(std::floor(q)));
}

void
BreakHammer::syncStats()
{
    base->syncStats();
    // Re-export the wrapped mechanism's counters and scalars so a
    // composed report reads like the base's (histograms stay with the
    // base; no wrapped mechanism publishes any today).
    for (const auto &kv : base->stats.counters())
        stats.inc(kv.first, kv.second);
    for (const auto &kv : base->stats.scalars())
        stats.set(kv.first, kv.second);
    // Publish the throttler's own counters only once it ever blamed a
    // thread: an inert wrapper must leave the wrapped system's report
    // bytes untouched (the breakhammer+baseline == baseline identity).
    if (numBlamed > 0) {
        stats.inc("bkh.blamed_triggers", numBlamed);
        stats.inc("bkh.throttled_thread_epochs", numThrottledEpochs);
    }
}

} // namespace bh
