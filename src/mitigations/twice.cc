#include "mitigations/twice.hh"

#include <algorithm>

#include "common/ordered.hh"
#include "mem/controller.hh"

namespace bh
{

Twice::Twice(const MitigationSettings &settings)
    : cfg(settings), tables(settings.banks)
{
    // Refresh threshold: half the effective budget so the combined
    // disturbance of both aggressors around a victim stays below N_RH.
    thRH = std::max<std::uint32_t>(1, cfg.effectiveNRH() / 2);
    // A row that cannot accumulate thRH activations by the end of the
    // window is prunable: it must gain at least thRH / (tREFW / tREFI)
    // per interval to stay on track.
    double intervals = static_cast<double>(cfg.timings.tREFW) /
        static_cast<double>(cfg.timings.tREFI);
    thPRU = static_cast<double>(thRH) / intervals;
}

void
Twice::onActivate(unsigned bank, RowId row, ThreadId, Cycle now)
{
    auto &table = tables[bank];
    Entry &e = table[row];
    ++e.count;
    if (e.count >= thRH) {
        if (TraceSink::on()) {
            TraceSink::instant("mitig", "twice_refresh", tmeta, now,
                               {{"bank", static_cast<std::int64_t>(bank)},
                                {"row",
                                 static_cast<std::int64_t>(row)}});
        }
        for (unsigned k = 1; k <= cfg.blastRadius; ++k) {
            for (int dir : {-1, 1}) {
                std::int64_t victim = static_cast<std::int64_t>(row) +
                    dir * static_cast<int>(k);
                if (victim < 0 ||
                    victim >= static_cast<std::int64_t>(cfg.rowsPerBank))
                    continue;
                controller->scheduleVictimRefresh(
                    bank, static_cast<RowId>(victim));
                ++numRefreshes;
            }
        }
        table.erase(row);
    }
    peakEntries = std::max(peakEntries, tableEntries());
}

void
Twice::onAutoRefresh(RowId, unsigned, Cycle)
{
    // Pruning interval: drop entries whose count trails the pace needed
    // to ever reach thRH within the window. Sorted-key walk (rule R2):
    // the keep/drop decision is per-entry, so the order cannot change
    // the surviving set.
    for (auto &table : tables) {
        for (RowId row : sortedMapKeys(table)) {
            auto it = table.find(row);
            Entry &e = it->second;
            ++e.life;
            double pace = thPRU * static_cast<double>(e.life);
            if (static_cast<double>(e.count) < pace) {
                table.erase(it);
                ++numPruned;
            }
        }
    }
}

std::size_t
Twice::tableEntries() const
{
    std::size_t n = 0;
    for (const auto &table : tables)
        n += table.size();
    return n;
}

} // namespace bh
