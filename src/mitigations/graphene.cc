#include "mitigations/graphene.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/ordered.hh"
#include "mem/controller.hh"

namespace bh
{

Graphene::Graphene(const MitigationSettings &settings)
    : cfg(settings), tables(settings.banks),
      nextReset(settings.timings.tREFW)
{
    // T: refresh the neighbors every T activations of a tracked row; half
    // the effective budget keeps double-sided disturbance below N_RH.
    thT = std::max<std::uint32_t>(1, cfg.effectiveNRH() / 2);
    // W: most activations one bank can absorb in a window (tRC-limited).
    auto w = static_cast<std::uint64_t>(
        cfg.timings.tREFW / std::max<Cycle>(1, cfg.timings.tRC));
    numEntries = static_cast<unsigned>(ceilDiv(
        static_cast<std::int64_t>(w), static_cast<std::int64_t>(thT))) + 1;
}

void
Graphene::refreshNeighbors(unsigned bank, RowId row, Cycle now)
{
    if (TraceSink::on()) {
        TraceSink::instant("mitig", "graphene_refresh", tmeta, now,
                           {{"bank", static_cast<std::int64_t>(bank)},
                            {"row", static_cast<std::int64_t>(row)}});
    }
    for (unsigned k = 1; k <= cfg.blastRadius; ++k) {
        for (int dir : {-1, 1}) {
            std::int64_t victim = static_cast<std::int64_t>(row) +
                dir * static_cast<int>(k);
            if (victim < 0 ||
                victim >= static_cast<std::int64_t>(cfg.rowsPerBank))
                continue;
            controller->scheduleVictimRefresh(bank,
                                              static_cast<RowId>(victim));
            ++numRefreshes;
        }
    }
}

void
Graphene::onActivate(unsigned bank, RowId row, ThreadId, Cycle now)
{
    auto &table = tables[bank];
    auto it = table.counts.find(row);
    if (it != table.counts.end()) {
        ++it->second;
        if (it->second % thT == 0)
            refreshNeighbors(bank, row, now);
        return;
    }
    if (table.counts.size() < numEntries) {
        table.counts.emplace(row, 1);
        return;
    }
    // Table full: Misra-Gries spillover. The minimum scan walks in
    // sorted-key order (rule R2), making the tie-break deterministic
    // across stdlibs: among equal-count entries the lowest row wins.
    ++table.spillover;
    RowId minRow = 0;
    std::uint32_t minCount = 0;
    bool haveMin = false;
    for (const auto &item : sortedItems(table.counts)) {
        if (!haveMin || item.second < minCount) {
            minRow = item.first;
            minCount = item.second;
            haveMin = true;
        }
    }
    if (haveMin && table.spillover >= minCount) {
        // The new row takes over the minimum entry with count
        // spillover + 1; the displaced count becomes the new spillover.
        table.counts.erase(minRow);
        table.counts.emplace(row, table.spillover + 1);
        table.spillover = minCount;
        auto &cnt = table.counts[row];
        if (cnt >= thT && cnt % thT == 0)
            refreshNeighbors(bank, row, now);
    }
}

void
Graphene::tick(Cycle now)
{
    if (now >= nextReset) {
        for (auto &table : tables) {
            table.counts.clear();
            table.spillover = 0;
        }
        nextReset += cfg.timings.tREFW;
    }
}

} // namespace bh
