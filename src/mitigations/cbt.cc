#include "mitigations/cbt.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "mem/controller.hh"

namespace bh
{

Cbt::Cbt(const MitigationSettings &settings, unsigned levels,
         unsigned max_counters)
    : cfg(settings), numLevels(levels), maxCounters(max_counters),
      trees(settings.banks), nextReset(settings.timings.tREFW)
{
    // Auto-scaling: one extra tree level (and 2x counters) per halving of
    // the RowHammer threshold below 32K, so leaf regions shrink as the
    // trigger thresholds do.
    if (numLevels == 0) {
        numLevels = 6;
        for (std::uint32_t t = 32768; t > cfg.nRH && numLevels < 16; t /= 2)
            ++numLevels;
    }
    if (maxCounters == 0) {
        maxCounters = 125;
        for (std::uint32_t t = 32768; t > cfg.nRH; t /= 2)
            maxCounters *= 2;
    }
    // Exponential thresholds doubling per level (the paper describes
    // 1K -> N_RH for N_RH = 32K). Children restart counting at zero on a
    // split, so a single row can consume at most sum(T_l) activations
    // before its leaf region is refreshed; the leaf threshold is chosen
    // so that the path sum stays within the effective per-aggressor
    // budget: sum(T5 / 2^k) < 2 * T5 = effectiveNRH.
    double top = static_cast<double>(
        std::max<std::uint32_t>(2, cfg.effectiveNRH() / 2));
    levelThr.resize(numLevels);
    for (unsigned l = 0; l < numLevels; ++l) {
        double t = top / std::pow(2.0, static_cast<double>(
            numLevels - 1 - l));
        levelThr[l] = std::max<std::uint32_t>(
            2, static_cast<std::uint32_t>(std::llround(t)));
    }
    for (auto &tree : trees)
        resetBank(tree);
}

void
Cbt::resetBank(BankTree &tree)
{
    tree.regions.clear();
    tree.regions.push_back(Region{0, cfg.rowsPerBank, 0, 0});
}

void
Cbt::refreshRegion(unsigned bank, const Region &region)
{
    for (RowId r = region.lo; r < region.hi; ++r)
        controller->scheduleVictimRefresh(bank, r);
    ++numRegionRefreshes;
    numRowsRefreshed += region.hi - region.lo;
}

void
Cbt::onActivate(unsigned bank, RowId row, ThreadId, Cycle now)
{
    auto &tree = trees[bank];
    // Find the region containing `row` (regions are sorted and disjoint).
    auto it = std::upper_bound(
        tree.regions.begin(), tree.regions.end(), row,
        [](RowId r, const Region &reg) { return r < reg.lo; });
    if (it == tree.regions.begin())
        panic("CBT region cover broken");
    --it;

    ++it->count;
    if (it->count < levelThr[it->level])
        return;

    bool can_split = it->level + 1 < numLevels &&
        tree.regions.size() < maxCounters &&
        (it->hi - it->lo) >= 2;
    if (can_split) {
        // Split: children restart at zero; the per-level threshold ladder
        // (not count inheritance) bounds any single row's headroom.
        Region left{it->lo, it->lo + (it->hi - it->lo) / 2,
                    it->level + 1, 0};
        Region right{left.hi, it->hi, it->level + 1, 0};
        *it = left;
        tree.regions.insert(it + 1, right);
    } else {
        // Deepest level (or out of counters): refresh the whole region.
        if (TraceSink::on()) {
            TraceSink::instant(
                "mitig", "cbt_region_refresh", tmeta, now,
                {{"bank", static_cast<std::int64_t>(bank)},
                 {"first_row", static_cast<std::int64_t>(it->lo)},
                 {"rows",
                  static_cast<std::int64_t>(it->hi - it->lo)}});
        }
        refreshRegion(bank, *it);
        it->count = 0;
    }
}

void
Cbt::tick(Cycle now)
{
    // All counters reset each refresh window; the tree collapses.
    if (now >= nextReset) {
        for (auto &tree : trees)
            resetBank(tree);
        nextReset += cfg.timings.tREFW;
    }
}

} // namespace bh
