/**
 * @file
 * DAPPER: a performance-attack-resilient aggressor tracker.
 *
 * Tracker-based mitigations export a denial-of-service lever: an
 * attacker who knows the trigger threshold can force a preventive
 * refresh per T activations from every bank at once, turning the
 * defense itself into a bandwidth attack on co-running victims
 * (a *performance attack*, the failure mode the DAPPER line of work
 * targets). This tracker bounds that lever: per-bank Misra-Gries
 * tracking runs at a lowered trigger threshold, but trigger events do
 * not refresh immediately — they enter a FIFO drained at a fixed
 * budgeted rate (a small batch per tREFI). The preventive-refresh
 * bandwidth an attacker can force is therefore capped by construction;
 * triggers beyond the budget are deferred, never dropped. The lowered
 * threshold buys back the deferral latency for ordinary aggressor
 * patterns, while saturation attacks degrade the mitigation's
 * *latency*, not the victims' bandwidth.
 */

#ifndef BH_MITIGATIONS_DAPPER_HH
#define BH_MITIGATIONS_DAPPER_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "mem/mitigation.hh"
#include "mitigations/settings.hh"

namespace bh
{

/** DAPPER mechanism: budgeted-refresh Misra-Gries tracker. */
class Dapper : public Mitigation
{
  public:
    explicit Dapper(const MitigationSettings &settings);

    std::string name() const override { return "DAPPER"; }

    void onActivate(unsigned bank, RowId row, ThreadId thread,
                    Cycle now) override;
    void tick(Cycle now) override;
    Cycle nextHousekeepingAt(Cycle now) const override;
    void syncStats() override;

    std::uint64_t refreshesIssued() const { return numRefreshes; }
    std::uint64_t triggerEvents() const { return numTriggers; }
    std::uint64_t deferredTriggers() const { return numDeferred; }
    std::size_t pendingTriggers() const { return pending.size(); }
    std::uint32_t threshold() const { return thT; }
    unsigned tableSize() const { return numEntries; }
    Cycle drainInterval() const { return drainEvery; }
    unsigned drainBatch() const { return batch; }

  private:
    struct BankTable
    {
        std::unordered_map<RowId, std::uint32_t> counts;
        std::uint32_t spillover = 0;
    };

    /** One owed preventive refresh batch (a trigger event). */
    struct Trigger
    {
        unsigned bank = 0;
        RowId row = 0;
    };

    void noteTrigger(unsigned bank, RowId row, Cycle now);
    void refreshNeighbors(unsigned bank, RowId row);

    MitigationSettings cfg;
    std::uint32_t thT = 0;          ///< Misra-Gries trigger threshold
    unsigned numEntries = 0;        ///< table entries per bank
    std::vector<BankTable> tables;
    std::deque<Trigger> pending;    ///< owed refreshes, FIFO
    Cycle drainEvery = 1;           ///< budget interval (from tREFI)
    unsigned batch = 1;             ///< triggers served per interval
    Cycle nextDrainAt = 0;
    Cycle nextReset = 0;
    std::uint64_t numTriggers = 0;
    std::uint64_t numDeferred = 0;
    std::uint64_t numRefreshes = 0;
};

} // namespace bh

#endif // BH_MITIGATIONS_DAPPER_HH
