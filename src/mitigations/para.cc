#include "mitigations/para.hh"

#include <cmath>

#include "mem/controller.hh"

namespace bh
{

Para::Para(const MitigationSettings &settings)
    : cfg(settings), p(solveProbability(settings.effectiveNRH())),
      rng(settings.seed ^ 0x9a7a5ull)
{
}

double
Para::solveProbability(std::uint32_t effective_nrh, double failure_target)
{
    // (1 - p/2)^N <= target  =>  p = 2 * (1 - target^(1/N)).
    double n = static_cast<double>(effective_nrh);
    double per_act = std::pow(failure_target, 1.0 / n);
    return std::min(1.0, 2.0 * (1.0 - per_act));
}

void
Para::onActivate(unsigned bank, RowId row, ThreadId, Cycle now)
{
    if (!rng.chance(p))
        return;
    // Refresh one neighbor, chosen uniformly from either side within the
    // blast radius (distance-1 neighbors dominate the disturbance).
    int dir = rng.chance(0.5) ? 1 : -1;
    unsigned dist = 1 + static_cast<unsigned>(rng.below(cfg.blastRadius));
    std::int64_t victim = static_cast<std::int64_t>(row) +
        dir * static_cast<int>(dist);
    if (victim < 0 || victim >= static_cast<std::int64_t>(cfg.rowsPerBank))
        return;
    controller->scheduleVictimRefresh(bank, static_cast<RowId>(victim));
    ++numRefreshes;
    if (TraceSink::on()) {
        TraceSink::instant("mitig", "para_refresh", tmeta, now,
                           {{"bank", static_cast<std::int64_t>(bank)},
                            {"victim", victim}});
    }
}

} // namespace bh
