/**
 * @file
 * TWiCe: Time Window Counters (Lee et al., ISCA 2019).
 *
 * A per-bank table tracks each candidate aggressor row's activation count
 * and lifetime. At every pruning interval (tREFI), entries whose count
 * cannot possibly reach the RowHammer budget within the refresh window are
 * dropped, keeping the table small. When a count reaches the refresh
 * threshold, the row's neighbors are refreshed and the entry resets.
 *
 * We model TWiCe-ideal (as Kim et al. ISCA'20 and the BlockHammer paper
 * do for scalability studies): the pruning latency issue of the original
 * design is assumed solved.
 */

#ifndef BH_MITIGATIONS_TWICE_HH
#define BH_MITIGATIONS_TWICE_HH

#include <unordered_map>
#include <vector>

#include "mem/mitigation.hh"
#include "mitigations/settings.hh"

namespace bh
{

/** TWiCe mechanism. */
class Twice : public Mitigation
{
  public:
    explicit Twice(const MitigationSettings &settings);

    std::string name() const override { return "TWiCe"; }

    void onActivate(unsigned bank, RowId row, ThreadId thread,
                    Cycle now) override;
    void onAutoRefresh(RowId first_row, unsigned num_rows,
                       Cycle now) override;

    std::uint64_t refreshesIssued() const { return numRefreshes; }
    std::uint64_t pruned() const { return numPruned; }

    /** Current table occupancy across banks (area model input). */
    std::size_t tableEntries() const;

    /** Peak table occupancy observed. */
    std::size_t peakTableEntries() const { return peakEntries; }

    std::uint32_t refreshThreshold() const { return thRH; }
    double pruneThreshold() const { return thPRU; }

  private:
    struct Entry
    {
        std::uint32_t count = 0;
        std::uint32_t life = 0;     ///< pruning intervals survived
    };

    MitigationSettings cfg;
    std::uint32_t thRH = 0;  ///< refresh neighbors at this count
    double thPRU = 0.0;      ///< minimum count growth per interval
    std::vector<std::unordered_map<RowId, Entry>> tables;
    std::size_t peakEntries = 0;
    std::uint64_t numRefreshes = 0;
    std::uint64_t numPruned = 0;
};

} // namespace bh

#endif // BH_MITIGATIONS_TWICE_HH
