/**
 * @file
 * Factory constructing any evaluated mitigation mechanism by name:
 * Baseline (none), PARA, PRoHIT, MRLoc, CBT, TWiCe, Graphene,
 * BlockHammer, and BlockHammer-Observe (Section 3.2.1's observe-only
 * mode).
 */

#ifndef BH_MITIGATIONS_FACTORY_HH
#define BH_MITIGATIONS_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/mitigation.hh"
#include "mitigations/settings.hh"

namespace bh
{

/** All mechanism names the factory accepts. */
const std::vector<std::string> &mitigationNames();

/** The paper's comparison set (Figure 4/5 order). */
const std::vector<std::string> &paperMechanisms();

/** Construct a mechanism by name; fatal() on unknown names. */
std::unique_ptr<Mitigation> makeMitigation(const std::string &name,
                                           const MitigationSettings &settings);

} // namespace bh

#endif // BH_MITIGATIONS_FACTORY_HH
