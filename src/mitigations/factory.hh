/**
 * @file
 * Factory constructing any evaluated mitigation mechanism by name:
 * Baseline (none), PARA, PRoHIT, MRLoc, CBT, TWiCe, Graphene,
 * BlockHammer, BlockHammer-Observe (Section 3.2.1's observe-only
 * mode), the post-BlockHammer successors ABACuS and DAPPER, and the
 * composable "BreakHammer+<base>" suspect-thread throttler, which
 * stacks on any other constructible mechanism.
 */

#ifndef BH_MITIGATIONS_FACTORY_HH
#define BH_MITIGATIONS_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/mitigation.hh"
#include "mitigations/settings.hh"

namespace bh
{

/** All mechanism names the factory accepts. */
const std::vector<std::string> &mitigationNames();

/** The paper's comparison set (Figure 4/5 order). */
const std::vector<std::string> &paperMechanisms();

/**
 * The post-paper "mitigation zoo" additions (ABACuS, DAPPER, and the
 * BreakHammer+Graphene composition), appended after paperMechanisms()
 * by every sweep grid so existing cell indices stay stable. Frozen
 * paperMechanisms() plus this list is the factory-derived source of
 * truth for sweep and verdict coverage — a mechanism added here can
 * never be silently skipped by a grid that derives from it.
 */
const std::vector<std::string> &zooMechanisms();

/** Construct a mechanism by name; fatal() on unknown names. */
std::unique_ptr<Mitigation> makeMitigation(const std::string &name,
                                           const MitigationSettings &settings);

} // namespace bh

#endif // BH_MITIGATIONS_FACTORY_HH
