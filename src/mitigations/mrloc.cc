#include "mitigations/mrloc.hh"

#include <algorithm>

#include "common/ordered.hh"
#include "mem/controller.hh"
#include "mitigations/para.hh"

namespace bh
{

MrLoc::MrLoc(const MitigationSettings &settings)
    : cfg(settings),
      pBase(Para::solveProbability(settings.effectiveNRH())),
      rng(settings.seed ^ 0x3310cull)
{
}

void
MrLoc::onActivate(unsigned bank, RowId row, ThreadId, Cycle now)
{
    for (int dir : {-1, 1}) {
        std::int64_t victim = static_cast<std::int64_t>(row) + dir;
        if (victim < 0 || victim >= static_cast<std::int64_t>(cfg.rowsPerBank))
            continue;
        std::uint64_t k = key(bank, static_cast<RowId>(victim));

        // Locality: distance (in enqueue operations) since the victim's
        // last appearance in the queue; absent victims get the base rate.
        // Tracked with sequence numbers — behaviorally identical to
        // searching the hardware FIFO, but O(1) in simulation.
        double p = pBase * 0.5;     // per-side base (PARA splits sides)
        auto it = lastSeen.find(k);
        if (it != lastSeen.end()) {
            std::uint64_t dist = seqNo - it->second;
            if (dist < kQueueSize) {
                double locality = 1.0 -
                    static_cast<double>(dist) /
                    static_cast<double>(kQueueSize);
                p = std::min(1.0, pBase * 0.5 * (1.0 + 3.0 * locality));
            }
        }
        if (rng.chance(p)) {
            controller->scheduleVictimRefresh(bank,
                                              static_cast<RowId>(victim));
            ++numRefreshes;
            if (TraceSink::on()) {
                TraceSink::instant(
                    "mitig", "mrloc_refresh", tmeta, now,
                    {{"bank", static_cast<std::int64_t>(bank)},
                     {"victim", victim}});
            }
        }
        lastSeen[k] = seqNo++;

        // Bound the shadow map like the hardware FIFO bounds its storage.
        // Sorted-key walk: which entries get dropped is per-entry, but
        // rule R2 bans raw unordered iteration everywhere.
        if (lastSeen.size() > 8 * kQueueSize) {
            for (std::uint64_t stale : sortedMapKeys(lastSeen)) {
                auto e = lastSeen.find(stale);
                if (seqNo - e->second >= kQueueSize)
                    lastSeen.erase(e);
            }
        }
    }
}

} // namespace bh
