/**
 * @file
 * Shared configuration for all baseline RowHammer mitigation mechanisms.
 *
 * Every mechanism is configured for the double-sided attack model the
 * paper evaluates (Section 7): two aggressors around a victim means each
 * aggressor only needs N_RH/2 activations, so mechanisms derive their
 * internal trigger thresholds from the halved, effective threshold.
 */

#ifndef BH_MITIGATIONS_SETTINGS_HH
#define BH_MITIGATIONS_SETTINGS_HH

#include <cstdint>

#include "dram/timing.hh"

namespace bh
{

/** Parameters common to all mitigation mechanisms. */
struct MitigationSettings
{
    std::uint32_t nRH = 32768;  ///< full single-aggressor threshold
    unsigned blastRadius = 1;   ///< rows refreshed on each side of a trigger
    DramTimings timings = DramTimings::ddr4();
    unsigned banks = 16;
    unsigned rowsPerBank = 65536;
    unsigned threads = 8;
    std::uint64_t seed = 1;

    /** Effective per-aggressor budget under double-sided attacks. */
    std::uint32_t effectiveNRH() const { return nRH / 2; }
};

} // namespace bh

#endif // BH_MITIGATIONS_SETTINGS_HH
