/**
 * @file
 * BreakHammer-style composable suspect-thread throttler.
 *
 * BlockHammer's AttackThrottler generalizes: *any* tracker-based
 * mitigation emits a blame signal for free — the preventive refreshes
 * it schedules. This wrapper stacks on an arbitrary base mechanism and
 * attributes every victim refresh the base schedules from inside
 * onActivate() to the thread whose activation triggered it, feeding
 * RHLI-style per-thread scores (two time-interleaved saturating
 * counters, cleared and swapped every half refresh window, exactly the
 * AttackThrottler discipline). A thread whose score approaches 1 has
 * its channel-wide in-flight read quota shrunk to zero at the lane
 * admission gate (Mitigation::threadQuota), starving the suspect
 * without touching the base mechanism's own protection.
 *
 * Composition is observation-only until a thread becomes suspect: all
 * Mitigation hooks forward to the base, and with zero blame every
 * threadQuota() answer is "unlimited" — `BreakHammer+Baseline` runs
 * byte-identical to `Baseline` (tests pin this identity).
 *
 * Blame is only collected around onActivate(), which never runs during
 * skipped idle ticks, so scores are byte-identical across --skip
 * modes with no replay bookkeeping. Bases that defer their refreshes
 * to tick-time (DAPPER) or throttle instead of refreshing (BlockHammer)
 * emit no onActivate-time triggers and gain no throttling from this
 * wrapper — compose it with reactive trackers (Graphene, TWiCe, CBT,
 * PARA, ABACuS).
 */

#ifndef BH_MITIGATIONS_BREAKHAMMER_HH
#define BH_MITIGATIONS_BREAKHAMMER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/mitigation.hh"
#include "mitigations/settings.hh"

namespace bh
{

/** Suspect-thread throttler stackable on any base mechanism. */
class BreakHammer : public Mitigation
{
  public:
    BreakHammer(std::unique_ptr<Mitigation> base_mech,
                const MitigationSettings &settings);

    std::string name() const override
    {
        return "BreakHammer+" + base->name();
    }

    bool isActSafe(unsigned bank, RowId row, ThreadId thread,
                   Cycle now) override
    {
        return base->isActSafe(bank, row, thread, now);
    }

    void onActivate(unsigned bank, RowId row, ThreadId thread,
                    Cycle now) override;
    void onAutoRefresh(RowId first_row, unsigned num_rows,
                       Cycle now) override
    {
        base->onAutoRefresh(first_row, num_rows, now);
    }

    void tick(Cycle now) override;
    Cycle nextHousekeepingAt(Cycle now) const override;
    Cycle nextVerdictChangeAt(Cycle now) const override
    {
        return base->nextVerdictChangeAt(now);
    }
    void noteSkippedTicks(std::uint64_t n) override
    {
        base->noteSkippedTicks(n);
    }

    int quota(ThreadId thread, unsigned bank) const override
    {
        return base->quota(thread, bank);
    }
    int threadQuota(ThreadId thread) const override;

    void setController(MemController *mc) override;
    void syncStats() override;

    /** Normalized blame score of `thread` (the RHLI analogue). */
    double score(ThreadId thread) const;

    /** Trigger events blamed on `thread` in the active epoch. */
    std::uint32_t blamedTriggers(ThreadId thread) const;

    std::uint64_t totalBlamed() const { return numBlamed; }
    const Mitigation &baseMechanism() const { return *base; }

  private:
    void blame(ThreadId thread, std::uint64_t triggers);

    std::unique_ptr<Mitigation> base;
    MitigationSettings cfg;
    double blameDenom = 1.0;        ///< score-1 trigger count
    std::uint32_t counterMax = 0;   ///< saturation (scores cap near 2)
    int baseQuota = 4;              ///< in-flight reads at score -> 0+
    Cycle epoch = 1;                ///< counter half-life (tREFW / 2)
    Cycle nextEpochAt = 0;
    unsigned active = 0;
    std::vector<std::uint32_t> counters[2];     ///< per thread
    std::uint64_t numBlamed = 0;
    std::uint64_t numThrottledEpochs = 0;
};

} // namespace bh

#endif // BH_MITIGATIONS_BREAKHAMMER_HH
