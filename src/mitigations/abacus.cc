#include "mitigations/abacus.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/log.hh"
#include "common/ordered.hh"
#include "mem/controller.hh"

namespace bh
{

Abacus::Abacus(const MitigationSettings &settings)
    : cfg(settings), nextReset(settings.timings.tREFW)
{
    if (cfg.banks > 64)
        fatal("ABACuS SAV models at most 64 banks (%u configured)",
              cfg.banks);
    // Same trigger ladder as Graphene: neighbors refresh every T
    // activations of a tracked row, T = half the effective budget.
    thT = std::max<std::uint32_t>(1, cfg.effectiveNRH() / 2);
    // The RAC tracks the maximum per-bank activation count of a row
    // address, so one bank's window budget W bounds any RAC; the shared
    // table needs only ceil(W / T) + 1 entries for the whole rank —
    // ABACuS's headline saving over per-bank trackers.
    auto w = static_cast<std::uint64_t>(
        cfg.timings.tREFW / std::max<Cycle>(1, cfg.timings.tRC));
    numEntries = static_cast<unsigned>(ceilDiv(
        static_cast<std::int64_t>(w), static_cast<std::int64_t>(thT))) + 1;
}

std::uint32_t
Abacus::rac(RowId row) const
{
    auto it = table.find(row);
    return it == table.end() ? 0 : it->second.rac;
}

std::uint64_t
Abacus::sav(RowId row) const
{
    auto it = table.find(row);
    return it == table.end() ? 0 : it->second.sav;
}

void
Abacus::refreshNeighborsAllBanks(RowId row, Cycle now)
{
    ++numTriggers;
    if (TraceSink::on()) {
        TraceSink::instant("mitig", "abacus_refresh", tmeta, now,
                           {{"row", static_cast<std::int64_t>(row)}});
    }
    // The shared counter cannot attribute the activations to one bank,
    // so every bank's neighbors are refreshed (the counter's saving is
    // paid back in refresh fan-out, cheap because triggers are rare).
    for (unsigned bank = 0; bank < cfg.banks; ++bank) {
        for (unsigned k = 1; k <= cfg.blastRadius; ++k) {
            for (int dir : {-1, 1}) {
                std::int64_t victim = static_cast<std::int64_t>(row) +
                    dir * static_cast<int>(k);
                if (victim < 0 ||
                    victim >= static_cast<std::int64_t>(cfg.rowsPerBank))
                    continue;
                controller->scheduleVictimRefresh(
                    bank, static_cast<RowId>(victim));
                ++numRefreshes;
            }
        }
    }
}

void
Abacus::onActivate(unsigned bank, RowId row, ThreadId, Cycle now)
{
    std::uint64_t bit = 1ull << bank;
    auto it = table.find(row);
    if (it != table.end()) {
        Entry &e = it->second;
        if (e.sav & bit) {
            // The sibling already activated since the last RAC bump:
            // a new per-bank activation round starts at this address.
            ++e.rac;
            e.sav = bit;
            if (e.rac % thT == 0)
                refreshNeighborsAllBanks(row, now);
        } else {
            e.sav |= bit;
        }
        return;
    }
    if (table.size() < numEntries) {
        Entry e;
        e.sav = bit;
        table.emplace(row, e);
        return;
    }
    // Table full: Misra-Gries spillover over the RACs. The minimum scan
    // walks in sorted-key order (rule R2) so the tie-break is
    // deterministic across stdlibs: among equal-RAC entries the lowest
    // row address is displaced.
    ++spillover;
    RowId minRow = 0;
    std::uint32_t minRac = 0;
    bool haveMin = false;
    for (RowId r : sortedMapKeys(table)) {
        std::uint32_t c = table.find(r)->second.rac;
        if (!haveMin || c < minRac) {
            minRow = r;
            minRac = c;
            haveMin = true;
        }
    }
    if (haveMin && spillover >= minRac) {
        table.erase(minRow);
        Entry e;
        e.rac = spillover + 1;
        e.sav = bit;
        spillover = minRac;
        table.emplace(row, e);
        if (e.rac >= thT && e.rac % thT == 0)
            refreshNeighborsAllBanks(row, now);
    }
}

void
Abacus::tick(Cycle now)
{
    if (now >= nextReset) {
        table.clear();
        spillover = 0;
        nextReset += cfg.timings.tREFW;
    }
}

void
Abacus::syncStats()
{
    stats.inc("abacus.triggers", numTriggers);
    stats.inc("abacus.victim_refreshes", numRefreshes);
}

} // namespace bh
