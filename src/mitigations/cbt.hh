/**
 * @file
 * CBT: Counter-Based adaptive Tree (Seyedzadeh et al., ISCA 2018).
 *
 * A per-bank binary tree of counters over row-address regions. Every
 * activation increments the counter of the (unique) leaf region containing
 * the row. When a region's count crosses its level threshold, the region
 * splits in half (children conservatively inherit the parent count, so no
 * aggressor is under-counted). When a deepest-level region crosses the
 * final threshold, all rows of the region are refreshed and its counter
 * resets. Thresholds grow exponentially from T0 to the effective
 * RowHammer budget across levels; counters reset every refresh window.
 * Configured as the paper evaluates it: 6 levels, 125 counters per bank.
 */

#ifndef BH_MITIGATIONS_CBT_HH
#define BH_MITIGATIONS_CBT_HH

#include <vector>

#include "mem/mitigation.hh"
#include "mitigations/settings.hh"

namespace bh
{

/** CBT mechanism. */
class Cbt : public Mitigation
{
  public:
    /**
     * @param levels tree depth; 0 = auto (6 at N_RH=32K, deepening as the
     *        threshold shrinks so leaf regions stay proportionate — the
     *        scaling behavior Table 4 charges CBT for)
     * @param max_counters counter budget per bank; 0 = auto (125 at 32K)
     */
    explicit Cbt(const MitigationSettings &settings, unsigned levels = 0,
                 unsigned max_counters = 0);

    std::string name() const override { return "CBT"; }

    void onActivate(unsigned bank, RowId row, ThreadId thread,
                    Cycle now) override;
    void tick(Cycle now) override;
    Cycle nextHousekeepingAt(Cycle) const override { return nextReset; }

    std::uint64_t regionRefreshes() const { return numRegionRefreshes; }
    std::uint64_t rowsRefreshed() const { return numRowsRefreshed; }

    /** Level thresholds (exposed for tests). */
    const std::vector<std::uint32_t> &thresholds() const { return levelThr; }

  private:
    /** One disjoint row-region with a counter. */
    struct Region
    {
        RowId lo = 0;       ///< inclusive
        RowId hi = 0;       ///< exclusive
        unsigned level = 0;
        std::uint32_t count = 0;
    };

    struct BankTree
    {
        std::vector<Region> regions;    ///< sorted by lo, disjoint cover
    };

    void resetBank(BankTree &tree);
    void refreshRegion(unsigned bank, const Region &region);

    MitigationSettings cfg;
    unsigned numLevels = 0;
    unsigned maxCounters = 0;
    std::vector<std::uint32_t> levelThr;
    std::vector<BankTree> trees;
    Cycle nextReset = 0;
    std::uint64_t numRegionRefreshes = 0;
    std::uint64_t numRowsRefreshed = 0;
};

} // namespace bh

#endif // BH_MITIGATIONS_CBT_HH
