/**
 * @file
 * PRoHIT: Probabilistic Row-Hammering Inhibition Table (Son et al.,
 * DAC 2017).
 *
 * Maintains per-bank hot/cold queues of recently-aggressive rows with
 * probabilistic insertion and promotion; whenever an auto-refresh command
 * arrives, the neighbors of the hottest tracked aggressor are refreshed
 * and the entry retires. We use the paper's default probabilities
 * (insert 1/16, promote-on-hit) as the original reports them; PRoHIT
 * provides no scaling rule for other thresholds (Table 4 footnote).
 */

#ifndef BH_MITIGATIONS_PROHIT_HH
#define BH_MITIGATIONS_PROHIT_HH

#include <vector>

#include "common/rng.hh"
#include "mem/mitigation.hh"
#include "mitigations/settings.hh"

namespace bh
{

/** PRoHIT mechanism. */
class Prohit : public Mitigation
{
  public:
    explicit Prohit(const MitigationSettings &settings);

    std::string name() const override { return "PRoHIT"; }

    void onActivate(unsigned bank, RowId row, ThreadId thread,
                    Cycle now) override;
    void onAutoRefresh(RowId first_row, unsigned num_rows,
                       Cycle now) override;

    std::uint64_t refreshesIssued() const { return numRefreshes; }

    /** Paper defaults. */
    static constexpr unsigned kHotEntries = 4;
    static constexpr unsigned kColdEntries = 4;
    static constexpr double kInsertProb = 1.0 / 16.0;

  private:
    struct BankTable
    {
        std::vector<RowId> hot;     ///< index 0 = hottest
        std::vector<RowId> cold;    ///< index 0 = warmest cold entry
    };

    void touch(BankTable &table, RowId row);

    MitigationSettings cfg;
    Rng rng;
    std::vector<BankTable> tables;
    std::uint64_t numRefreshes = 0;
};

} // namespace bh

#endif // BH_MITIGATIONS_PROHIT_HH
