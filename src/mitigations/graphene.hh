/**
 * @file
 * Graphene (Park et al., MICRO 2020): Misra-Gries frequent-element
 * tracking of aggressor rows.
 *
 * Each bank keeps a small table of (row, count) pairs plus a spillover
 * counter. Table hits increment the row's count; misses increment the
 * spillover counter and displace the minimum entry once the spillover
 * matches it (the classic Misra-Gries summary, which guarantees any row
 * activated more than T times in a window is in the table). Every time a
 * tracked count crosses a multiple of T, the row's neighbors are
 * refreshed. The table resets every window; the table size is
 * ceil(W / T) with W the maximum activations per window.
 */

#ifndef BH_MITIGATIONS_GRAPHENE_HH
#define BH_MITIGATIONS_GRAPHENE_HH

#include <unordered_map>
#include <vector>

#include "mem/mitigation.hh"
#include "mitigations/settings.hh"

namespace bh
{

/** Graphene mechanism. */
class Graphene : public Mitigation
{
  public:
    explicit Graphene(const MitigationSettings &settings);

    std::string name() const override { return "Graphene"; }

    void onActivate(unsigned bank, RowId row, ThreadId thread,
                    Cycle now) override;
    void tick(Cycle now) override;
    Cycle nextHousekeepingAt(Cycle) const override { return nextReset; }

    std::uint64_t refreshesIssued() const { return numRefreshes; }
    std::uint32_t threshold() const { return thT; }
    unsigned tableSize() const { return numEntries; }

  private:
    struct BankTable
    {
        std::unordered_map<RowId, std::uint32_t> counts;
        std::uint32_t spillover = 0;
    };

    void refreshNeighbors(unsigned bank, RowId row, Cycle now);

    MitigationSettings cfg;
    std::uint32_t thT = 0;      ///< Misra-Gries threshold T
    unsigned numEntries = 0;    ///< table entries per bank
    std::vector<BankTable> tables;
    Cycle nextReset = 0;
    std::uint64_t numRefreshes = 0;
};

} // namespace bh

#endif // BH_MITIGATIONS_GRAPHENE_HH
