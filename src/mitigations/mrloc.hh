/**
 * @file
 * MRLoc: Mitigating Row-hammering based on memory Locality (You & Yang,
 * DAC 2019).
 *
 * Extends PARA with temporal locality: potential victims enter a FIFO
 * queue on every activation, and the refresh probability for a victim
 * grows with how recently it was enqueued before (high locality = likely
 * under attack). We implement the paper's published structure with its
 * empirically-determined parameters expressed as a queue size and a
 * locality-weighted probability around the PARA-equivalent base rate.
 */

#ifndef BH_MITIGATIONS_MRLOC_HH
#define BH_MITIGATIONS_MRLOC_HH

#include <unordered_map>

#include "common/rng.hh"
#include "mem/mitigation.hh"
#include "mitigations/settings.hh"

namespace bh
{

/** MRLoc mechanism. */
class MrLoc : public Mitigation
{
  public:
    explicit MrLoc(const MitigationSettings &settings);

    std::string name() const override { return "MRLoc"; }

    void onActivate(unsigned bank, RowId row, ThreadId thread,
                    Cycle now) override;

    std::uint64_t refreshesIssued() const { return numRefreshes; }
    double baseProbability() const { return pBase; }

    static constexpr unsigned kQueueSize = 1024;

  private:
    std::uint64_t
    key(unsigned bank, RowId row) const
    {
        return (static_cast<std::uint64_t>(bank) << 32) | row;
    }

    MitigationSettings cfg;
    double pBase = 0.0;
    Rng rng;
    /** Victim locality queue, tracked as last-enqueue sequence numbers. */
    std::unordered_map<std::uint64_t, std::uint64_t> lastSeen;
    std::uint64_t seqNo = 0;
    std::uint64_t numRefreshes = 0;
};

} // namespace bh

#endif // BH_MITIGATIONS_MRLOC_HH
