#include "mitigations/dapper.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/ordered.hh"
#include "mem/controller.hh"

namespace bh
{

Dapper::Dapper(const MitigationSettings &settings)
    : cfg(settings), tables(settings.banks),
      nextReset(settings.timings.tREFW)
{
    // Lowered trigger threshold (a quarter of the effective budget,
    // half of Graphene's T): triggers fire earlier to absorb the
    // worst-case deferral latency of the drain budget below.
    thT = std::max<std::uint32_t>(1, cfg.effectiveNRH() / 4);
    auto w = static_cast<std::uint64_t>(
        cfg.timings.tREFW / std::max<Cycle>(1, cfg.timings.tRC));
    numEntries = static_cast<unsigned>(ceilDiv(
        static_cast<std::int64_t>(w), static_cast<std::int64_t>(thT))) + 1;
    // Preventive-refresh budget: one small batch per tREFI, the cadence
    // the controller already reserves for refresh work. This caps the
    // mitigation bandwidth any access pattern can force.
    drainEvery = std::max<Cycle>(1, cfg.timings.tREFI);
    batch = std::max(1u, cfg.banks / 4);
    nextDrainAt = drainEvery;
}

void
Dapper::refreshNeighbors(unsigned bank, RowId row)
{
    for (unsigned k = 1; k <= cfg.blastRadius; ++k) {
        for (int dir : {-1, 1}) {
            std::int64_t victim = static_cast<std::int64_t>(row) +
                dir * static_cast<int>(k);
            if (victim < 0 ||
                victim >= static_cast<std::int64_t>(cfg.rowsPerBank))
                continue;
            controller->scheduleVictimRefresh(bank,
                                              static_cast<RowId>(victim));
            ++numRefreshes;
        }
    }
}

void
Dapper::noteTrigger(unsigned bank, RowId row, Cycle now)
{
    ++numTriggers;
    // A trigger that finds a backlog waits more than one budget slot:
    // that is the deferral the budget trades for bounded bandwidth.
    if (!pending.empty())
        ++numDeferred;
    if (TraceSink::on()) {
        TraceSink::instant("mitig", "dapper_trigger", tmeta, now,
                           {{"bank", static_cast<std::int64_t>(bank)},
                            {"row", static_cast<std::int64_t>(row)},
                            {"queued",
                             static_cast<std::int64_t>(pending.size())}});
    }
    pending.push_back(Trigger{bank, row});
}

void
Dapper::onActivate(unsigned bank, RowId row, ThreadId, Cycle now)
{
    auto &table = tables[bank];
    auto it = table.counts.find(row);
    if (it != table.counts.end()) {
        ++it->second;
        if (it->second % thT == 0)
            noteTrigger(bank, row, now);
        return;
    }
    if (table.counts.size() < numEntries) {
        table.counts.emplace(row, 1);
        return;
    }
    // Misra-Gries spillover, same sorted-key min scan as Graphene
    // (rule R2: deterministic tie-break across stdlibs).
    ++table.spillover;
    RowId minRow = 0;
    std::uint32_t minCount = 0;
    bool haveMin = false;
    for (const auto &item : sortedItems(table.counts)) {
        if (!haveMin || item.second < minCount) {
            minRow = item.first;
            minCount = item.second;
            haveMin = true;
        }
    }
    if (haveMin && table.spillover >= minCount) {
        table.counts.erase(minRow);
        table.counts.emplace(row, table.spillover + 1);
        table.spillover = minCount;
        auto &cnt = table.counts[row];
        if (cnt >= thT && cnt % thT == 0)
            noteTrigger(bank, row, now);
    }
}

void
Dapper::tick(Cycle now)
{
    if (now >= nextReset) {
        for (auto &table : tables) {
            table.counts.clear();
            table.spillover = 0;
        }
        nextReset += cfg.timings.tREFW;
        // Owed refreshes survive the window reset: the budget defers,
        // it never forgets.
    }
    // Drain on a fixed cycle grid. With pending work the grid is a
    // housekeeping boundary (never skipped over); with an empty queue
    // the loop just catches the grid up, so skipped idle spans leave
    // the same state a cycle-by-cycle run reaches.
    while (now >= nextDrainAt) {
        for (unsigned i = 0; i < batch && !pending.empty(); ++i) {
            Trigger t = pending.front();
            pending.pop_front();
            refreshNeighbors(t.bank, t.row);
        }
        nextDrainAt += drainEvery;
    }
}

Cycle
Dapper::nextHousekeepingAt(Cycle) const
{
    if (pending.empty())
        return nextReset;
    return std::min(nextReset, nextDrainAt);
}

void
Dapper::syncStats()
{
    stats.inc("dapper.triggers", numTriggers);
    stats.inc("dapper.deferred", numDeferred);
    stats.inc("dapper.victim_refreshes", numRefreshes);
    stats.inc("dapper.pending_at_end",
              static_cast<std::uint64_t>(pending.size()));
}

} // namespace bh
