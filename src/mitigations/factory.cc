#include "mitigations/factory.hh"

#include "blockhammer/blockhammer.hh"
#include "common/log.hh"
#include "mitigations/cbt.hh"
#include "mitigations/graphene.hh"
#include "mitigations/mrloc.hh"
#include "mitigations/para.hh"
#include "mitigations/prohit.hh"
#include "mitigations/twice.hh"

namespace bh
{

const std::vector<std::string> &
mitigationNames()
{
    static const std::vector<std::string> names = {
        "Baseline", "PARA", "PRoHIT", "MRLoc", "CBT", "TWiCe", "Graphene",
        "BlockHammer", "BlockHammer-Observe",
    };
    return names;
}

const std::vector<std::string> &
paperMechanisms()
{
    static const std::vector<std::string> names = {
        "PARA", "PRoHIT", "MRLoc", "CBT", "TWiCe", "Graphene", "BlockHammer",
    };
    return names;
}

std::unique_ptr<Mitigation>
makeMitigation(const std::string &name, const MitigationSettings &settings)
{
    if (name == "Baseline")
        return std::make_unique<NullMitigation>();
    if (name == "PARA")
        return std::make_unique<Para>(settings);
    if (name == "PRoHIT")
        return std::make_unique<Prohit>(settings);
    if (name == "MRLoc")
        return std::make_unique<MrLoc>(settings);
    if (name == "CBT")
        return std::make_unique<Cbt>(settings);
    if (name == "TWiCe")
        return std::make_unique<Twice>(settings);
    if (name == "Graphene")
        return std::make_unique<Graphene>(settings);
    if (name == "BlockHammer" || name == "BlockHammer-Observe") {
        auto cfg = BlockHammerConfig::forThreshold(
            settings.nRH, settings.timings, settings.banks,
            settings.threads);
        cfg.seed = settings.seed;
        cfg.observeOnly = (name == "BlockHammer-Observe");
        return std::make_unique<BlockHammer>(cfg);
    }
    fatal("unknown mitigation mechanism '%s'", name.c_str());
}

} // namespace bh
