#include "mitigations/factory.hh"

#include "blockhammer/blockhammer.hh"
#include "common/log.hh"
#include "mitigations/abacus.hh"
#include "mitigations/breakhammer.hh"
#include "mitigations/cbt.hh"
#include "mitigations/dapper.hh"
#include "mitigations/graphene.hh"
#include "mitigations/mrloc.hh"
#include "mitigations/para.hh"
#include "mitigations/prohit.hh"
#include "mitigations/twice.hh"

namespace bh
{

namespace
{

/** The composable-throttler name prefix: "BreakHammer+<base>". */
const char *const kBreakHammerPrefix = "BreakHammer+";

bool
isBreakHammerName(const std::string &name, std::string &base_name)
{
    const std::string prefix = kBreakHammerPrefix;
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0)
        return false;
    base_name = name.substr(prefix.size());
    return true;
}

} // namespace

const std::vector<std::string> &
mitigationNames()
{
    static const std::vector<std::string> names = {
        "Baseline", "PARA", "PRoHIT", "MRLoc", "CBT", "TWiCe", "Graphene",
        "BlockHammer", "BlockHammer-Observe",
        "ABACuS", "DAPPER", "BreakHammer+Graphene",
    };
    return names;
}

const std::vector<std::string> &
paperMechanisms()
{
    static const std::vector<std::string> names = {
        "PARA", "PRoHIT", "MRLoc", "CBT", "TWiCe", "Graphene", "BlockHammer",
    };
    return names;
}

const std::vector<std::string> &
zooMechanisms()
{
    // The post-BlockHammer successors (PAPERS.md): evaluated alongside
    // the paper's comparison set by every sweep that derives its grid
    // from the factory. BreakHammer composes on any base; the grids
    // evaluate the Graphene composition, the strongest tracker in tree.
    static const std::vector<std::string> names = {
        "ABACuS", "DAPPER", "BreakHammer+Graphene",
    };
    return names;
}

std::unique_ptr<Mitigation>
makeMitigation(const std::string &name, const MitigationSettings &settings)
{
    if (name == "Baseline")
        return std::make_unique<NullMitigation>();
    if (name == "PARA")
        return std::make_unique<Para>(settings);
    if (name == "PRoHIT")
        return std::make_unique<Prohit>(settings);
    if (name == "MRLoc")
        return std::make_unique<MrLoc>(settings);
    if (name == "CBT")
        return std::make_unique<Cbt>(settings);
    if (name == "TWiCe")
        return std::make_unique<Twice>(settings);
    if (name == "Graphene")
        return std::make_unique<Graphene>(settings);
    if (name == "ABACuS")
        return std::make_unique<Abacus>(settings);
    if (name == "DAPPER")
        return std::make_unique<Dapper>(settings);
    if (name == "BlockHammer" || name == "BlockHammer-Observe") {
        auto cfg = BlockHammerConfig::forThreshold(
            settings.nRH, settings.timings, settings.banks,
            settings.threads);
        cfg.seed = settings.seed;
        cfg.observeOnly = (name == "BlockHammer-Observe");
        return std::make_unique<BlockHammer>(cfg);
    }
    std::string base_name;
    if (isBreakHammerName(name, base_name)) {
        // Recurse: any constructible mechanism can be the base, so
        // "BreakHammer+<unknown>" reports the unknown base by name.
        return std::make_unique<BreakHammer>(
            makeMitigation(base_name, settings), settings);
    }
    std::string known;
    for (const auto &n : mitigationNames())
        known += (known.empty() ? "" : ", ") + n;
    fatal("unknown mitigation mechanism '%s' (valid: %s, or "
          "BreakHammer+<mechanism>)",
          name.c_str(), known.c_str());
}

} // namespace bh
