#include "mitigations/prohit.hh"

#include <algorithm>

#include "mem/controller.hh"

namespace bh
{

Prohit::Prohit(const MitigationSettings &settings)
    : cfg(settings), rng(settings.seed ^ 0x9c0417ull),
      tables(settings.banks)
{
}

void
Prohit::touch(BankTable &table, RowId row)
{
    // Hit in the hot queue: promote one position toward the head.
    auto hot_it = std::find(table.hot.begin(), table.hot.end(), row);
    if (hot_it != table.hot.end()) {
        if (hot_it != table.hot.begin())
            std::iter_swap(hot_it, hot_it - 1);
        return;
    }
    // Hit in the cold queue: promote toward / into the hot queue.
    auto cold_it = std::find(table.cold.begin(), table.cold.end(), row);
    if (cold_it != table.cold.end()) {
        if (cold_it != table.cold.begin()) {
            std::iter_swap(cold_it, cold_it - 1);
        } else {
            // Head of cold: move into the hot queue's tail.
            table.cold.erase(cold_it);
            if (table.hot.size() >= kHotEntries) {
                // Demote the hot tail back to cold.
                table.cold.insert(table.cold.begin(), table.hot.back());
                table.hot.pop_back();
            }
            table.hot.push_back(row);
        }
        return;
    }
    // Miss: probabilistic insertion at the cold tail.
    if (!rng.chance(kInsertProb))
        return;
    if (table.cold.size() >= kColdEntries)
        table.cold.pop_back();
    table.cold.push_back(row);
}

void
Prohit::onActivate(unsigned bank, RowId row, ThreadId, Cycle)
{
    touch(tables[bank], row);
}

void
Prohit::onAutoRefresh(RowId, unsigned, Cycle now)
{
    // Piggyback on each periodic refresh: serve the hottest entry of every
    // bank by refreshing its neighbors.
    for (unsigned b = 0; b < cfg.banks; ++b) {
        auto &table = tables[b];
        if (table.hot.empty())
            continue;
        RowId aggressor = table.hot.front();
        table.hot.erase(table.hot.begin());
        if (TraceSink::on()) {
            TraceSink::instant(
                "mitig", "prohit_refresh", tmeta, now,
                {{"bank", static_cast<std::int64_t>(b)},
                 {"row", static_cast<std::int64_t>(aggressor)}});
        }
        for (unsigned k = 1; k <= cfg.blastRadius; ++k) {
            for (int dir : {-1, 1}) {
                std::int64_t victim = static_cast<std::int64_t>(aggressor) +
                    dir * static_cast<int>(k);
                if (victim < 0 ||
                    victim >= static_cast<std::int64_t>(cfg.rowsPerBank))
                    continue;
                controller->scheduleVictimRefresh(
                    b, static_cast<RowId>(victim));
                ++numRefreshes;
            }
        }
    }
}

} // namespace bh
