/**
 * @file
 * PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).
 *
 * On every activation, with probability p the controller refreshes one of
 * the two adjacent rows (chosen uniformly). p is solved so the chance
 * that a victim survives N_RH/2 aggressor activations without a refresh
 * stays below the 1e-15 consumer reliability target the paper uses:
 * (1 - p/2)^(N_RH/2) <= 1e-15.
 */

#ifndef BH_MITIGATIONS_PARA_HH
#define BH_MITIGATIONS_PARA_HH

#include "common/rng.hh"
#include "mem/mitigation.hh"
#include "mitigations/settings.hh"

namespace bh
{

/** PARA mechanism. */
class Para : public Mitigation
{
  public:
    explicit Para(const MitigationSettings &settings);

    std::string name() const override { return "PARA"; }

    void onActivate(unsigned bank, RowId row, ThreadId thread,
                    Cycle now) override;

    /** The solved refresh probability. */
    double probability() const { return p; }

    /** Solve p for a given threshold and failure target. */
    static double solveProbability(std::uint32_t effective_nrh,
                                   double failure_target = 1e-15);

    std::uint64_t refreshesIssued() const { return numRefreshes; }

  private:
    MitigationSettings cfg;
    double p = 0.0;
    Rng rng;
    std::uint64_t numRefreshes = 0;
};

} // namespace bh

#endif // BH_MITIGATIONS_PARA_HH
