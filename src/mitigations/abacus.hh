/**
 * @file
 * ABACuS (Olgun et al., USENIX Security 2024): all-bank shared
 * activation counters.
 *
 * ABACuS exploits the bank-level parallelism of modern workloads (and
 * attacks): the same row address tends to be activated in many banks
 * close together in time, so one shared counter per row *address* can
 * stand in for per-bank counters at a fraction of the storage. Each
 * table entry keeps a Row Activation Counter (RAC) and a Sibling
 * Activation Vector (SAV, one bit per bank). An activation of row R in
 * bank B sets SAV[B]; if SAV[B] was already set, the row address has
 * started a new activation round across its siblings, so RAC increments
 * and the SAV collapses to just {B}. Every time a RAC crosses a
 * multiple of the trigger threshold, the neighbors of R are refreshed
 * in every bank (the shared counter cannot tell which sibling is under
 * attack). Misses run the same Misra-Gries spillover discipline as
 * Graphene, and the whole table resets every refresh window.
 */

#ifndef BH_MITIGATIONS_ABACUS_HH
#define BH_MITIGATIONS_ABACUS_HH

#include <cstdint>
#include <unordered_map>

#include "mem/mitigation.hh"
#include "mitigations/settings.hh"

namespace bh
{

/** ABACuS mechanism: one shared (RAC, SAV) table for all banks. */
class Abacus : public Mitigation
{
  public:
    explicit Abacus(const MitigationSettings &settings);

    std::string name() const override { return "ABACuS"; }

    void onActivate(unsigned bank, RowId row, ThreadId thread,
                    Cycle now) override;
    void tick(Cycle now) override;
    Cycle nextHousekeepingAt(Cycle) const override { return nextReset; }
    void syncStats() override;

    std::uint64_t refreshesIssued() const { return numRefreshes; }
    std::uint64_t triggerEvents() const { return numTriggers; }
    std::uint32_t threshold() const { return thT; }
    unsigned tableSize() const { return numEntries; }

    /** RAC of a tracked row address (0 when untracked); for tests. */
    std::uint32_t rac(RowId row) const;

    /** SAV of a tracked row address (0 when untracked); for tests. */
    std::uint64_t sav(RowId row) const;

  private:
    struct Entry
    {
        std::uint32_t rac = 0;      ///< shared activation counter
        std::uint64_t sav = 0;      ///< sibling activation bits, one/bank
    };

    void refreshNeighborsAllBanks(RowId row, Cycle now);

    MitigationSettings cfg;
    std::uint32_t thT = 0;          ///< RAC trigger threshold
    unsigned numEntries = 0;        ///< shared-table entries (whole rank)
    std::unordered_map<RowId, Entry> table;
    std::uint32_t spillover = 0;    ///< Misra-Gries spillover counter
    Cycle nextReset = 0;
    std::uint64_t numTriggers = 0;
    std::uint64_t numRefreshes = 0;
};

} // namespace bh

#endif // BH_MITIGATIONS_ABACUS_HH
