/**
 * @file
 * Result-aggregation subsystem for sharded bh_bench runs.
 *
 * Every BENCH_*.json carries a run manifest (experiment, scale, shard
 * spec, cell counts, a grid fingerprint, and a digest per recorded sweep
 * cell). This module loads such reports, validates their manifests,
 * merges the per-cell payloads of N shards by global cell index with
 * cross-shard conflict detection — overlapping cells must be
 * byte-identical, edited cells fail their digest — and provides the
 * structural diff (with per-field numeric tolerance) used for golden-file
 * CI gating via the bh_collect CLI.
 *
 * The library is simulation-free: reconstructing a full report from
 * merged cells (replay) needs the experiment registry and lives in
 * bh_collect; everything here operates on JSON documents alone.
 */

#ifndef BH_REPORT_REPORT_HH
#define BH_REPORT_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"

namespace bh
{

/** Version stamped into (and required of) every run manifest. */
constexpr int kBenchFormatVersion = 1;

/** FNV-1a 64-bit hash, the digest/fingerprint primitive. */
std::uint64_t fnv1a64(const std::string &data,
                      std::uint64_t seed = 1469598103934665603ull);

/** Fixed-width lowercase hex encoding of a 64-bit hash. */
std::string hex64(std::uint64_t value);

/**
 * Digest of one sweep-cell payload, as recorded in (and validated
 * against) the run manifest. Hashes the payload's serialized bytes
 * minus its top-level "stats" key: stats snapshots are deterministic
 * observability data, excluded so payloads with and without them (and
 * goldens predating the `stats` export) digest identically.
 */
std::string cellDigest(const Json &payload);

/** Parsed run manifest of one BENCH_*.json. */
struct RunManifest
{
    int formatVersion = kBenchFormatVersion;
    std::string experiment;
    double scale = 1.0;
    /**
     * DRAM channels per simulated system. Optional in the document
     * (omitted, meaning 1, by single-channel runs — which therefore stay
     * byte-identical to reports from older binaries); the grid
     * fingerprint separates differently-channeled grids regardless.
     */
    unsigned channels = 1;
    /**
     * Attack-pattern filter of the run (bh_bench --attack). Optional in
     * the document like `channels`: absent means unfiltered, and the
     * fingerprint separates differently filtered grids regardless.
     */
    std::string attackFilter;
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    bool partial = false;           ///< cells only, aggregation skipped
    std::uint64_t cellTotal = 0;    ///< grid size of the full experiment
    std::uint64_t cellsRun = 0;     ///< cells recorded in this file
    std::string fingerprint;        ///< grid identity hash (hex)

    struct Phase
    {
        std::string label;
        std::uint64_t firstCell = 0;
        std::uint64_t count = 0;
    };
    std::vector<Phase> phases;

    /** Phase label owning a global cell index ("?" when out of range). */
    std::string phaseOf(std::uint64_t cell) const;
};

/** One loaded BENCH_*.json: raw document plus its parsed manifest. */
struct LoadedReport
{
    std::string path;   ///< diagnostics label (file path or test name)
    Json doc;
    RunManifest manifest;
};

/** Extract and validate the manifest of a parsed report document. */
bool parseManifest(const Json &doc, RunManifest &out, std::string &err);

/** Parse report text (label names it in errors) and its manifest. */
bool loadReportText(const std::string &text, const std::string &label,
                    LoadedReport &out, std::string &err);

/** Read, parse, and manifest-validate one report file. */
bool loadReportFile(const std::string &path, LoadedReport &out,
                    std::string &err);

/** Outcome of merging N shard reports of one experiment. */
struct MergeResult
{
    /**
     * True when the inputs are partial shard outputs: `cells` holds the
     * complete merged cell payloads and the caller must replay the
     * experiment's aggregation over them (bh_collect does this through
     * the bench registry). False when every input is a complete report:
     * `merged` is ready to write as-is.
     */
    bool needsReplay = false;
    Json merged;            ///< complete normalized report (!needsReplay)
    Json cells;             ///< merged cells, keys ascending (needsReplay)
    RunManifest manifest;   ///< validated common manifest of the inputs
};

/**
 * Validate and merge shard reports:
 *  - manifests must agree on format version, experiment, scale, grid
 *    fingerprint, and cell total;
 *  - each input's cells must be owned by its shard spec and match their
 *    manifest digests (an edited cell fails loudly, naming the cell);
 *  - cells present in several inputs must be byte-identical
 *    (cross-machine determinism check);
 *  - the union must cover every cell of the grid.
 *
 * Returns false with a diagnostic in `err` on any violation.
 */
bool mergeReports(const std::vector<LoadedReport> &inputs, MergeResult &out,
                  std::string &err);

/**
 * Rewrite a complete report's manifest shard spec to the canonical
 * unsharded form (shard 0/1), making complete shard outputs of cell-free
 * experiments byte-comparable to an unsharded run.
 */
void normalizeToUnsharded(Json &doc);

/**
 * Coverage summary of one experiment grid across a set of shard reports
 * (the `bh_collect status` view): which shards exist, which global cells
 * are covered, and which are still missing.
 */
struct GridStatus
{
    std::string experiment;
    double scale = 1.0;
    std::string fingerprint;
    std::uint64_t cellTotal = 0;
    std::uint64_t cellsCovered = 0;
    /** Shard specs seen, as "I/N" strings (sorted, deduplicated). */
    std::vector<std::string> shards;
    /** Input files contributing to this grid. */
    std::vector<std::string> paths;
    /** Missing global cell indices (capped at kMaxListedMissing). */
    std::vector<std::uint64_t> missingCells;
    static constexpr std::size_t kMaxListedMissing = 16;

    bool complete() const { return cellsCovered == cellTotal; }
};

/**
 * Group loaded reports by (experiment, scale, fingerprint) and compute
 * each grid's shard/cell coverage. Reports of different grids coexist;
 * results are sorted by experiment name then fingerprint. Analytic
 * experiments (cellTotal 0) are complete by definition.
 */
std::vector<GridStatus> gridStatus(const std::vector<LoadedReport> &inputs);

/** Options for the structural diff. */
struct DiffOptions
{
    double absTol = 0.0;        ///< absolute tolerance for numeric fields
    double relTol = 0.0;        ///< relative tolerance for numeric fields
    /** Subtrees to skip, dotted; a "*" segment matches one segment. */
    std::vector<std::string> ignorePaths;
    std::size_t maxDiffs = 1000;            ///< stop reporting after this
};

/**
 * Structural diff of two JSON documents. Objects compare by key (order
 * ignored), arrays by index, numbers within absTol/relTol (Int and
 * Double interchangeable), everything else exactly. Returns one
 * human-readable "path: difference" line per mismatch, empty when the
 * documents agree within tolerance.
 */
std::vector<std::string> structuralDiff(const Json &a, const Json &b,
                                        const DiffOptions &opts);

} // namespace bh

#endif // BH_REPORT_REPORT_HH
