#include "report/report.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/log.hh"

namespace bh
{

std::uint64_t
fnv1a64(const std::string &data, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (unsigned char c : data) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
cellDigest(const Json &payload)
{
    if (payload.type() == Json::Type::Object &&
        payload.find("stats")) {
        Json stripped = Json::object();
        for (const auto &kv : payload.objectItems())
            if (kv.first != "stats")
                stripped[kv.first] = kv.second;
        return hex64(fnv1a64(stripped.dump()));
    }
    return hex64(fnv1a64(payload.dump()));
}

std::string
hex64(std::uint64_t value)
{
    return strfmt("%016llx", static_cast<unsigned long long>(value));
}

std::string
RunManifest::phaseOf(std::uint64_t cell) const
{
    for (const Phase &p : phases)
        if (cell >= p.firstCell && cell < p.firstCell + p.count)
            return p.label;
    return "?";
}

namespace
{

/** Fetch a required member of `obj` with the given type predicate. */
const Json *
member(const Json &obj, const char *key, Json::Type type, std::string &err)
{
    const Json *j = obj.find(key);
    if (!j) {
        err = strfmt("manifest is missing '%s'", key);
        return nullptr;
    }
    bool numeric_ok = type == Json::Type::Int &&
        j->type() == Json::Type::Double;
    if (j->type() != type && !numeric_ok) {
        err = strfmt("manifest member '%s' has the wrong type", key);
        return nullptr;
    }
    return j;
}

} // namespace

bool
parseManifest(const Json &doc, RunManifest &out, std::string &err)
{
    const Json *m = doc.find("manifest");
    if (!m || m->type() != Json::Type::Object) {
        err = "document has no run manifest (not written by bh_bench?)";
        return false;
    }

    const Json *v;
    if (!(v = member(*m, "format_version", Json::Type::Int, err)))
        return false;
    out.formatVersion = static_cast<int>(v->asInt());
    if (out.formatVersion != kBenchFormatVersion) {
        err = strfmt("unsupported manifest format version %d (expected %d)",
                     out.formatVersion, kBenchFormatVersion);
        return false;
    }
    if (!(v = member(*m, "experiment", Json::Type::String, err)))
        return false;
    out.experiment = v->asString();
    if (!(v = m->find("scale")) ||
        (v->type() != Json::Type::Double && v->type() != Json::Type::Int)) {
        err = "manifest member 'scale' missing or non-numeric";
        return false;
    }
    out.scale = v->asDouble();
    out.channels = 1;
    if ((v = m->find("channels"))) {
        if (v->type() != Json::Type::Int || v->asInt() < 1) {
            err = "manifest member 'channels' is not a positive integer";
            return false;
        }
        out.channels = static_cast<unsigned>(v->asInt());
    }
    out.attackFilter.clear();
    if ((v = m->find("attack_filter"))) {
        if (v->type() != Json::Type::String) {
            err = "manifest member 'attack_filter' is not a string";
            return false;
        }
        out.attackFilter = v->asString();
    }
    if (!(v = member(*m, "shard_index", Json::Type::Int, err)))
        return false;
    out.shardIndex = static_cast<unsigned>(v->asInt());
    if (!(v = member(*m, "shard_count", Json::Type::Int, err)))
        return false;
    out.shardCount = static_cast<unsigned>(v->asInt());
    if (out.shardCount < 1 || out.shardIndex >= out.shardCount) {
        err = strfmt("invalid shard spec %u/%u", out.shardIndex,
                     out.shardCount);
        return false;
    }
    if (!(v = member(*m, "partial", Json::Type::Bool, err)))
        return false;
    out.partial = v->asBool();
    if (!(v = member(*m, "cell_total", Json::Type::Int, err)))
        return false;
    out.cellTotal = static_cast<std::uint64_t>(v->asInt());
    if (!(v = member(*m, "cells_run", Json::Type::Int, err)))
        return false;
    out.cellsRun = static_cast<std::uint64_t>(v->asInt());
    if (!(v = member(*m, "fingerprint", Json::Type::String, err)))
        return false;
    out.fingerprint = v->asString();

    out.phases.clear();
    if (!(v = member(*m, "phases", Json::Type::Array, err)))
        return false;
    for (std::size_t i = 0; i < v->size(); ++i) {
        const Json &p = v->at(i);
        const Json *label = p.find("label");
        const Json *first = p.find("first_cell");
        const Json *count = p.find("count");
        if (!label || label->type() != Json::Type::String ||
            !first || first->type() != Json::Type::Int ||
            !count || count->type() != Json::Type::Int) {
            err = strfmt("manifest phase %zu is malformed", i);
            return false;
        }
        out.phases.push_back(
            {label->asString(), static_cast<std::uint64_t>(first->asInt()),
             static_cast<std::uint64_t>(count->asInt())});
    }
    return true;
}

bool
loadReportText(const std::string &text, const std::string &label,
               LoadedReport &out, std::string &err)
{
    out.path = label;
    std::string parse_err;
    if (!Json::parse(text, out.doc, &parse_err)) {
        err = strfmt("%s: JSON parse error: %s", label.c_str(),
                     parse_err.c_str());
        return false;
    }
    std::string manifest_err;
    if (!parseManifest(out.doc, out.manifest, manifest_err)) {
        err = strfmt("%s: %s", label.c_str(), manifest_err.c_str());
        return false;
    }
    return true;
}

bool
loadReportFile(const std::string &path, LoadedReport &out, std::string &err)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        err = strfmt("cannot open %s", path.c_str());
        return false;
    }
    std::ostringstream text;
    text << f.rdbuf();
    return loadReportText(text.str(), path, out, err);
}

namespace
{

/** Cells object of a report (empty object when absent). */
const Json &
cellsOf(const Json &doc)
{
    static const Json empty = Json::object();
    const Json *cells = doc.find("cells");
    return cells && cells->type() == Json::Type::Object ? *cells : empty;
}

/** Parse a cells-object key ("17") into a global cell index. */
bool
cellKey(const std::string &key, std::uint64_t &out)
{
    if (key.empty() ||
        key.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = std::strtoull(key.c_str(), nullptr, 10);
    return true;
}

/**
 * Validate one input's cells against its own manifest: shard ownership,
 * recorded count, and the per-cell digests that make any post-run edit
 * of a payload fail loudly.
 */
bool
validateCells(const LoadedReport &in, std::string &err)
{
    const RunManifest &m = in.manifest;
    const Json &cells = cellsOf(in.doc);
    const Json *manifest = in.doc.find("manifest");
    const Json *digests = manifest ? manifest->find("cell_digests") : nullptr;
    if (!digests || digests->type() != Json::Type::Object) {
        err = strfmt("%s: manifest has no cell_digests", in.path.c_str());
        return false;
    }

    if (cells.size() != m.cellsRun) {
        err = strfmt("%s: manifest says %llu cells run but %zu recorded",
                     in.path.c_str(),
                     static_cast<unsigned long long>(m.cellsRun),
                     cells.size());
        return false;
    }
    if (digests->size() != cells.size()) {
        err = strfmt("%s: %zu cell digests for %zu cells", in.path.c_str(),
                     digests->size(), cells.size());
        return false;
    }

    for (const auto &kv : cells.objectItems()) {
        std::uint64_t g;
        if (!cellKey(kv.first, g) || g >= m.cellTotal) {
            err = strfmt("%s: invalid cell key '%s'", in.path.c_str(),
                         kv.first.c_str());
            return false;
        }
        if (g % m.shardCount != m.shardIndex) {
            err = strfmt("%s: cell %llu (phase \"%s\") is not owned by "
                         "shard %u/%u",
                         in.path.c_str(), static_cast<unsigned long long>(g),
                         m.phaseOf(g).c_str(), m.shardIndex, m.shardCount);
            return false;
        }
        const Json *want = digests->find(kv.first);
        if (!want) {
            err = strfmt("%s: cell %llu has no digest", in.path.c_str(),
                         static_cast<unsigned long long>(g));
            return false;
        }
        std::string got = cellDigest(kv.second);
        if (want->asString() != got) {
            err = strfmt("%s: conflict: cell %llu (phase \"%s\") does not "
                         "match its manifest digest (%s recorded, payload "
                         "hashes to %s) — corrupted or hand-edited shard",
                         in.path.c_str(), static_cast<unsigned long long>(g),
                         m.phaseOf(g).c_str(), want->asString().c_str(),
                         got.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

void
normalizeToUnsharded(Json &doc)
{
    Json &manifest = doc["manifest"];
    manifest["shard_index"] = 0;
    manifest["shard_count"] = 1;
}

bool
mergeReports(const std::vector<LoadedReport> &inputs, MergeResult &out,
             std::string &err)
{
    if (inputs.empty()) {
        err = "no input reports to merge";
        return false;
    }

    const RunManifest &ref = inputs.front().manifest;
    bool any_partial = false;
    for (const LoadedReport &in : inputs) {
        const RunManifest &m = in.manifest;
        if (m.experiment != ref.experiment) {
            err = strfmt("%s: experiment '%s' does not match '%s' (%s)",
                         in.path.c_str(), m.experiment.c_str(),
                         ref.experiment.c_str(),
                         inputs.front().path.c_str());
            return false;
        }
        if (m.scale != ref.scale) {
            err = strfmt("%s: scale %s does not match %s", in.path.c_str(),
                         Json::formatDouble(m.scale).c_str(),
                         Json::formatDouble(ref.scale).c_str());
            return false;
        }
        if (m.fingerprint != ref.fingerprint) {
            err = strfmt("%s: grid fingerprint %s does not match %s — "
                         "shards were produced by different configurations "
                         "or binary versions",
                         in.path.c_str(), m.fingerprint.c_str(),
                         ref.fingerprint.c_str());
            return false;
        }
        if (m.cellTotal != ref.cellTotal) {
            err = strfmt("%s: cell total %llu does not match %llu",
                         in.path.c_str(),
                         static_cast<unsigned long long>(m.cellTotal),
                         static_cast<unsigned long long>(ref.cellTotal));
            return false;
        }
        if (!validateCells(in, err))
            return false;
        any_partial = any_partial || m.partial;
    }

    // Union the cells by global index; overlapping cells (the same cell
    // run on several machines) must agree byte for byte.
    struct Owned
    {
        const Json *payload;
        const LoadedReport *source;
        std::string dump;
    };
    std::map<std::uint64_t, Owned> merged;
    for (const LoadedReport &in : inputs) {
        for (const auto &kv : cellsOf(in.doc).objectItems()) {
            std::uint64_t g = 0;
            cellKey(kv.first, g);
            std::string dump = kv.second.dump();
            auto it = merged.find(g);
            if (it == merged.end()) {
                merged.emplace(g, Owned{&kv.second, &in, std::move(dump)});
            } else if (it->second.dump != dump) {
                err = strfmt("conflict: cell %llu (phase \"%s\") differs "
                             "between %s and %s — runs are not "
                             "deterministic across these shards",
                             static_cast<unsigned long long>(g),
                             ref.phaseOf(g).c_str(),
                             it->second.source->path.c_str(),
                             in.path.c_str());
                return false;
            }
        }
    }

    // Coverage: every cell of the grid must be present somewhere.
    std::vector<std::uint64_t> missing;
    for (std::uint64_t g = 0; g < ref.cellTotal; ++g)
        if (!merged.count(g)) {
            missing.push_back(g);
            if (missing.size() > 8)
                break;
        }
    if (!missing.empty()) {
        std::string list;
        for (std::size_t i = 0; i < missing.size() && i < 8; ++i)
            list += strfmt("%s%llu", i ? ", " : "",
                           static_cast<unsigned long long>(missing[i]));
        if (missing.size() > 8)
            list += ", ...";
        err = strfmt("incomplete merge: %llu of %llu cells covered; "
                     "missing cell(s) %s — run the absent shard(s) first",
                     static_cast<unsigned long long>(merged.size()),
                     static_cast<unsigned long long>(ref.cellTotal),
                     list.c_str());
        return false;
    }

    out.manifest = ref;
    out.manifest.shardIndex = 0;
    out.manifest.shardCount = 1;
    out.manifest.partial = false;
    out.manifest.cellsRun = ref.cellTotal;

    if (!any_partial) {
        // Every input is a complete report (cell-free experiments run
        // whole in every shard; or re-runs of a full grid). They must be
        // identical once the shard spec is normalized away — the
        // cross-machine determinism check for aggregate content.
        Json first = inputs.front().doc;
        normalizeToUnsharded(first);
        std::string first_dump = first.dump();
        for (std::size_t i = 1; i < inputs.size(); ++i) {
            Json other = inputs[i].doc;
            normalizeToUnsharded(other);
            if (other.dump() != first_dump) {
                err = strfmt("conflict: complete reports %s and %s differ "
                             "outside their shard spec — runs are not "
                             "deterministic across these machines",
                             inputs.front().path.c_str(),
                             inputs[i].path.c_str());
                return false;
            }
        }
        out.needsReplay = false;
        out.merged = std::move(first);
        out.cells = Json::object();
        return true;
    }

    out.needsReplay = true;
    out.merged = Json();
    out.cells = Json::object();
    for (const auto &kv : merged)
        out.cells[std::to_string(kv.first)] = *kv.second.payload;
    return true;
}

namespace
{

const char *
typeName(Json::Type t)
{
    switch (t) {
        case Json::Type::Null: return "null";
        case Json::Type::Bool: return "bool";
        case Json::Type::Int: return "number";
        case Json::Type::Double: return "number";
        case Json::Type::String: return "string";
        case Json::Type::Array: return "array";
        case Json::Type::Object: return "object";
    }
    return "?";
}

bool
isNumber(const Json &j)
{
    return j.type() == Json::Type::Int || j.type() == Json::Type::Double;
}

struct DiffWalker
{
    const DiffOptions &opts;
    std::vector<std::string> out;
    bool truncated = false;

    bool
    full()
    {
        if (out.size() >= opts.maxDiffs) {
            if (!truncated) {
                truncated = true;
                out.push_back("... (diff list truncated)");
            }
            return true;
        }
        return false;
    }

    /**
     * True when `path` matches any ignore pattern. Patterns are dotted
     * paths; a "*" segment matches exactly one path segment, so
     * "cells.*.stats" skips the stats subtree of every cell.
     */
    bool
    ignored(const std::string &path) const
    {
        auto split = [](const std::string &s) {
            std::vector<std::string> segs;
            std::size_t start = 0;
            while (true) {
                std::size_t dot = s.find('.', start);
                segs.push_back(s.substr(start, dot - start));
                if (dot == std::string::npos)
                    break;
                start = dot + 1;
            }
            return segs;
        };
        std::vector<std::string> p = split(path);
        for (const auto &pattern : opts.ignorePaths) {
            std::vector<std::string> q = split(pattern);
            if (q.size() != p.size())
                continue;
            bool match = true;
            for (std::size_t i = 0; i < q.size(); ++i)
                if (q[i] != "*" && q[i] != p[i]) {
                    match = false;
                    break;
                }
            if (match)
                return true;
        }
        return false;
    }

    static std::string
    join(const std::string &path, const std::string &key)
    {
        return path.empty() ? key : path + "." + key;
    }

    void
    report(const std::string &path, const std::string &msg)
    {
        if (!full())
            out.push_back((path.empty() ? "(root)" : path) + ": " + msg);
    }

    void
    compare(const Json &a, const Json &b, const std::string &path)
    {
        if (full() || ignored(path))
            return;

        if (isNumber(a) && isNumber(b)) {
            double x = a.asDouble(), y = b.asDouble();
            if (x == y)
                return;
            double tol = opts.absTol +
                opts.relTol * std::max(std::fabs(x), std::fabs(y));
            if (std::fabs(x - y) <= tol)
                return;
            report(path, strfmt("%s vs %s",
                                Json::formatDouble(x).c_str(),
                                Json::formatDouble(y).c_str()));
            return;
        }
        if (a.type() != b.type()) {
            report(path, strfmt("type mismatch: %s vs %s",
                                typeName(a.type()), typeName(b.type())));
            return;
        }
        switch (a.type()) {
            case Json::Type::Null:
                return;
            case Json::Type::Bool:
                if (a.asBool() != b.asBool())
                    report(path, strfmt("%s vs %s",
                                        a.asBool() ? "true" : "false",
                                        b.asBool() ? "true" : "false"));
                return;
            case Json::Type::String:
                if (a.asString() != b.asString())
                    report(path, strfmt("\"%s\" vs \"%s\"",
                                        a.asString().c_str(),
                                        b.asString().c_str()));
                return;
            case Json::Type::Array: {
                if (a.size() != b.size())
                    report(path, strfmt("array length %zu vs %zu", a.size(),
                                        b.size()));
                std::size_t n = std::min(a.size(), b.size());
                for (std::size_t i = 0; i < n && !full(); ++i)
                    compare(a.at(i), b.at(i), join(path, std::to_string(i)));
                return;
            }
            case Json::Type::Object: {
                for (const auto &kv : a.objectItems()) {
                    if (full())
                        return;
                    std::string child = join(path, kv.first);
                    if (ignored(child))
                        continue;
                    const Json *other = b.find(kv.first);
                    if (!other)
                        report(child, "only in first document");
                    else
                        compare(kv.second, *other, child);
                }
                for (const auto &kv : b.objectItems()) {
                    if (full())
                        return;
                    std::string child = join(path, kv.first);
                    if (!a.find(kv.first) && !ignored(child))
                        report(child, "only in second document");
                }
                return;
            }
            default:
                return;     // numbers handled above
        }
    }
};

} // namespace

std::vector<std::string>
structuralDiff(const Json &a, const Json &b, const DiffOptions &opts)
{
    DiffWalker walker{opts, {}, false};
    walker.compare(a, b, "");
    return walker.out;
}

std::vector<GridStatus>
gridStatus(const std::vector<LoadedReport> &inputs)
{
    // Group by grid identity; the fingerprint already folds in the
    // experiment, scale, and cell space, but keeping the readable keys
    // makes mismatched-binary shards show up as two distinct grids.
    using Key = std::pair<std::string, std::string>;   // experiment, fp
    std::map<Key, std::vector<const LoadedReport *>> groups;
    for (const LoadedReport &in : inputs)
        groups[{in.manifest.experiment, in.manifest.fingerprint}]
            .push_back(&in);

    std::vector<GridStatus> out;
    for (const auto &kv : groups) {
        GridStatus g;
        g.experiment = kv.first.first;
        g.fingerprint = kv.first.second;
        std::set<std::string> shard_specs;
        std::set<std::uint64_t> covered;
        for (const LoadedReport *in : kv.second) {
            const RunManifest &m = in->manifest;
            g.scale = m.scale;
            g.cellTotal = std::max(g.cellTotal, m.cellTotal);
            g.paths.push_back(in->path);
            shard_specs.insert(strfmt("%u/%u", m.shardIndex, m.shardCount));
            const Json *cells = in->doc.find("cells");
            if (cells && cells->type() == Json::Type::Object) {
                for (const auto &cell : cells->objectItems()) {
                    std::uint64_t idx =
                        std::strtoull(cell.first.c_str(), nullptr, 10);
                    covered.insert(idx);
                }
            }
        }
        g.shards.assign(shard_specs.begin(), shard_specs.end());
        g.cellsCovered = covered.size();
        for (std::uint64_t c = 0; c < g.cellTotal; ++c) {
            if (covered.count(c))
                continue;
            if (g.missingCells.size() >= GridStatus::kMaxListedMissing)
                break;
            g.missingCells.push_back(c);
        }
        out.push_back(std::move(g));
    }
    return out;
}

} // namespace bh
