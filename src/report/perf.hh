/**
 * @file
 * Performance-trajectory gate over bh_bench self-profiles.
 *
 * Every bh_bench run writes a BENCH_perf.json sidecar: wall-clock and
 * simulated-cycle counts per experiment, phase, and cell. This module
 * compares such a measurement against a checked-in golden of reference
 * simulation rates (simulated cycles per wall-clock second) and fails
 * when an experiment has slowed below a tolerance band — the CI tripwire
 * for accidental simulator slowdowns that byte-identical outputs cannot
 * catch.
 *
 * The band is deliberately wide (default min_ratio 0.2: a gated
 * experiment may run at one fifth of the golden rate before failing)
 * because CI machines vary; the gate exists to catch order-of-magnitude
 * regressions, not percent-level noise.
 */

#ifndef BH_REPORT_PERF_HH
#define BH_REPORT_PERF_HH

#include <string>
#include <vector>

#include "common/json.hh"

namespace bh
{

/** Outcome of gating one measurement against a perf golden. */
struct PerfGateResult
{
    bool pass = false;
    /** One human-readable verdict line per golden entry (plus errors). */
    std::vector<std::string> lines;
};

/**
 * Gate `measured` (a BENCH_perf.json document) against `golden`, whose
 * "entries" array holds objects of the form
 *
 *   { "experiment": "fig4", "scale": 4, "ref_cps": 2.0e8,
 *     "min_ratio": 0.2 }
 *
 * An entry applies when the measurement was taken at the entry's scale;
 * non-matching entries are reported as skipped. Each applicable entry
 * requires measured cycles-per-second >= ref_cps * min_ratio (the
 * override, when > 0, replaces every entry's min_ratio). The gate fails
 * if any applicable entry fails, if an applicable experiment is missing
 * from the measurement, or if no entry applied at all — a scale mismatch
 * must not produce a vacuous pass.
 */
PerfGateResult perfGate(const Json &golden, const Json &measured,
                        double minRatioOverride = 0.0);

} // namespace bh

#endif // BH_REPORT_PERF_HH
