#include "report/perf.hh"

#include <cmath>

#include "common/log.hh"

namespace bh
{

namespace
{

double
numField(const Json &obj, const char *key, double fallback = 0.0)
{
    const Json *v = obj.find(key);
    return v ? v->asDouble() : fallback;
}

} // namespace

PerfGateResult
perfGate(const Json &golden, const Json &measured, double minRatioOverride)
{
    PerfGateResult res;
    res.pass = true;

    const Json *entries = golden.find("entries");
    if (!entries || entries->type() != Json::Type::Array ||
        entries->size() == 0) {
        res.pass = false;
        res.lines.push_back("golden has no \"entries\" array");
        return res;
    }
    const Json *experiments = measured.find("experiments");
    if (!experiments || experiments->type() != Json::Type::Object) {
        res.pass = false;
        res.lines.push_back("measurement has no \"experiments\" object");
        return res;
    }
    double measured_scale = numField(measured, "scale", -1.0);

    std::size_t applied = 0;
    for (std::size_t i = 0; i < entries->size(); ++i) {
        const Json &e = entries->at(i);
        const Json *name = e.find("experiment");
        if (!name) {
            res.pass = false;
            res.lines.push_back(strfmt("entry %zu: no \"experiment\"", i));
            continue;
        }
        double want_scale = numField(e, "scale", 1.0);
        if (std::fabs(want_scale - measured_scale) > 1e-9) {
            res.lines.push_back(strfmt(
                "%s: skipped (golden scale %s, measured %s)",
                name->asString().c_str(),
                Json::formatDouble(want_scale).c_str(),
                Json::formatDouble(measured_scale).c_str()));
            continue;
        }
        ++applied;

        const Json *m = experiments->find(name->asString());
        if (!m) {
            res.pass = false;
            res.lines.push_back(strfmt("%s: FAIL (not in measurement)",
                                       name->asString().c_str()));
            continue;
        }
        double wall_s = numField(*m, "wall_s");
        double sim_cycles = numField(*m, "sim_cycles");
        double cps = wall_s > 0.0 ? sim_cycles / wall_s : 0.0;
        double ref_cps = numField(e, "ref_cps");
        double min_ratio = minRatioOverride > 0.0
            ? minRatioOverride : numField(e, "min_ratio", 0.2);
        double floor = ref_cps * min_ratio;
        bool ok = cps >= floor;
        if (!ok)
            res.pass = false;
        res.lines.push_back(strfmt(
            "%s: %s (%.3g sim cycles/s, floor %.3g = ref %.3g x %.2g)",
            name->asString().c_str(), ok ? "ok" : "FAIL",
            cps, floor, ref_cps, min_ratio));
    }
    if (applied == 0) {
        // Every entry skipped: refuse to pass vacuously.
        res.pass = false;
        res.lines.push_back(strfmt(
            "no golden entry applies at measured scale %s",
            Json::formatDouble(measured_scale).c_str()));
    }
    return res;
}

} // namespace bh
