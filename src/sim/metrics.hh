/**
 * @file
 * Multiprogrammed-workload performance metrics (Section 7 of the paper):
 * weighted speedup (system throughput), harmonic speedup (job turnaround),
 * and maximum slowdown (fairness). Computed over benign threads only.
 */

#ifndef BH_SIM_METRICS_HH
#define BH_SIM_METRICS_HH

#include <vector>

namespace bh
{

/** The paper's three performance metrics. */
struct MultiProgMetrics
{
    double weightedSpeedup = 0.0;
    double harmonicSpeedup = 0.0;
    double maxSlowdown = 0.0;
};

/**
 * Compute metrics from per-thread IPCs in the shared run and each thread's
 * IPC when running alone on the baseline system. Vectors must be the same
 * length (benign threads only).
 *
 * `min_ipc` is the smallest IPC the measurement window can resolve (one
 * retired instruction per window). A memory-bound thread that retires
 * nothing in a short window measures IPC 0, which used to make its
 * speedup/slowdown terms degenerate; clamping both IPCs to the window
 * resolution bounds the slowdown at what the window could observe
 * instead of dropping the thread. Pass 0 to keep the legacy behavior
 * (warn and skip degenerate threads).
 */
MultiProgMetrics computeMetrics(const std::vector<double> &shared_ipc,
                                const std::vector<double> &alone_ipc,
                                double min_ipc = 0.0);

/** Geometric mean helper for normalized comparisons. */
double geomean(const std::vector<double> &values);

} // namespace bh

#endif // BH_SIM_METRICS_HH
