#include "sim/experiment.hh"

#include <algorithm>
#include <map>
#include <mutex>
#include <tuple>

#include "common/log.hh"
#include "workloads/fuzz_patterns.hh"

namespace bh
{

ExperimentConfig
ExperimentConfig::paperScale()
{
    ExperimentConfig cfg;
    cfg.nRH = 32768;
    cfg.refwMs = 64.0;
    cfg.runCycles = 32'000'000;
    return cfg;
}

DramTimings
ExperimentConfig::timings() const
{
    DramTimingNs ns;
    ns.tREFW = refwMs * 1e6;
    // tREFI and tRFC stay at their physical DDR4 values so the refresh
    // duty cycle (~4.5%) and row-buffer residency are realistic; each REF
    // simply sweeps proportionally more rows in a compressed window.
    return DramTimings::fromNs(ns);
}

MitigationSettings
ExperimentConfig::mitigationSettings(unsigned channel) const
{
    MitigationSettings s;
    s.nRH = nRH;
    s.blastRadius = 1;
    s.timings = timings();
    s.banks = 16;
    s.rowsPerBank = 65536;
    s.threads = threads;
    // Channel 0 keeps the raw seed (bit-stable single-channel runs);
    // other channels' probabilistic mechanisms draw decorrelated streams.
    s.seed = seed + channel * 0x9e3779b97f4a7c15ull;
    return s;
}

AttackEnv
ExperimentConfig::attackEnv() const
{
    DramTimings t = timings();
    AttackEnv env;
    env.nRH = nRH;
    env.nBL = std::max<std::uint32_t>(1, nRH / 4);
    env.windowCycles = t.tREFW;
    env.tRC = t.tRC;
    env.issueWidth = CoreConfig{}.issueWidth;
    env.seed = seed;
    return env;
}

std::unique_ptr<System>
buildSystem(const ExperimentConfig &config, const MixSpec &mix)
{
    if (mix.apps.size() != config.threads)
        fatal("mix '%s' has %zu apps for %u threads", mix.name.c_str(),
              mix.apps.size(), config.threads);

    SystemConfig sys_cfg;
    sys_cfg.threads = config.threads;
    sys_cfg.skip = config.skip;
    sys_cfg.mem.org = DramOrg::paperConfig(config.channels);
    sys_cfg.mem.timings = config.timings();
    sys_cfg.mem.hammer.nRH = config.nRH;
    sys_cfg.mem.hammer.blastRadius = 1;     // double-sided attack model
    sys_cfg.mem.enableHammerObserver = config.hammerObserver;
    sys_cfg.mem.enableSecurityOracle = config.securityOracle;
    sys_cfg.channelThreads = config.channelThreads;

    auto system = std::make_unique<System>(
        sys_cfg, [&config](unsigned ch) {
            return makeMitigation(config.mechanism,
                                  config.mitigationSettings(ch));
        });

    AttackEnv env = config.attackEnv();
    for (unsigned slot = 0; slot < config.threads; ++slot) {
        auto trace = makeTrace(mix.apps[slot], slot, config.threads,
                               system->mem().mapper(), config.seed,
                               config.attack, &env);
        if (isAttackApp(mix.apps[slot])) {
            // A real attacker runs two dependent access chains per hammered
            // bank (one per aggressor row), keeping each bank's ACT
            // pipeline busy; more parallelism per row would only let
            // FR-FCFS coalesce requests into row hits without extra
            // activations.
            CoreConfig attacker = sys_cfg.core;
            unsigned outstanding = 2 * config.attack.numBanks;
            if (mix.apps[slot].rfind(kFuzzPatternPrefix, 0) == 0) {
                AttackPatternSpec spec;
                if (fuzzSpecForApp(mix.apps[slot], spec))
                    outstanding = spec.maxOutstanding();
            } else if (mix.apps[slot] != kAttackAppName) {
                const AttackPatternSpec *spec = findAttackPattern(
                    mix.apps[slot].substr(kAttackPatternPrefix.size()));
                if (spec)
                    outstanding = spec->maxOutstanding();
            }
            attacker.maxOutstandingMem = outstanding;
            system->setTrace(slot, std::move(trace), attacker);
        } else {
            system->setTrace(slot, std::move(trace));
        }
    }
    return system;
}

RunResult
runExperiment(const ExperimentConfig &config, const MixSpec &mix)
{
    auto system = buildSystem(config, mix);
    if (config.warmupCycles > 0)
        system->run(config.warmupCycles);
    system->startMeasurement();
    system->run(config.runCycles);

    RunResult res;
    res.mechanism = config.mechanism;
    res.mixName = mix.name;
    for (unsigned t = 0; t < config.threads; ++t) {
        res.ipc.push_back(system->ipc(t));
        res.isAttack.push_back(isAttackApp(mix.apps[t]));
    }
    res.energyJ = system->energy();
    // Merge per-channel state deterministically by channel index: counters
    // and flips sum; the per-row activation bound is a maximum.
    MemSystem &mem = system->mem();
    for (unsigned ch = 0; ch < mem.channels(); ++ch) {
        if (auto *hammer = mem.hammerObserver(ch)) {
            res.bitFlips += hammer->bitFlips().size();
            res.maxRowActs = std::max(res.maxRowActs,
                                      hammer->maxRowActivations());
        }
        if (auto *oracle = mem.securityOracle(ch)) {
            // Channels are distinct physical row arrays: margins and
            // window counts take the worst lane (never a sum across
            // aliased (bank, row) coordinates); violating-row counts
            // add up because each lane's rows are physically distinct.
            res.secMargin = std::max(res.secMargin, oracle->margin());
            res.secMaxWindowActs = std::max(res.secMaxWindowActs,
                                            oracle->maxWindowActs());
            res.secFirstViolation = std::min(res.secFirstViolation,
                                             oracle->firstViolationCycle());
            res.secViolatingRows += oracle->violatingRows();
        }
        auto &mc = mem.controller(ch);
        res.demandActs += mc.demandActivations();
        res.blockedActs += mc.blockedActQueries();
        res.victimRefreshes += mc.victimRefreshesDone();
        res.rowHits += mc.rowHits();
        res.rowMisses += mc.rowMisses();
        res.rowConflicts += mc.rowConflicts();

        // Per-lane StatSet snapshot. Everything in it is event-driven
        // or skip-replayed, so the export is identical for any
        // jobs/channel-threads/skip setting.
        mc.syncStats();
        mc.mitigation().syncStats();
        Json lane = mc.stats.toJson();
        Json mitig = mc.mitigation().stats.toJson();
        if (mitig.objectItems().size() > 0)
            lane["mitigation"] = mitig;
        res.stats["ch" + std::to_string(ch)] = lane;
    }
    return res;
}

std::vector<double>
RunResult::benignIpc() const
{
    std::vector<double> out;
    for (std::size_t i = 0; i < ipc.size(); ++i)
        if (!isAttack[i])
            out.push_back(ipc[i]);
    return out;
}

double
aloneIpc(const ExperimentConfig &config, const std::string &app)
{
    using Key = std::tuple<std::string, Cycle, Cycle, std::uint64_t, double,
                           unsigned>;
    // Guarded for the parallel runner: concurrent cells may race to fill
    // the same key; both compute the same deterministic value, so the
    // lock only protects the map structure, not the result.
    static std::mutex cacheMutex;
    static std::map<Key, double> cache;
    // channelThreads is deliberately absent: it cannot change results.
    Key key{app, config.runCycles, config.warmupCycles, config.seed,
            config.refwMs, config.channels};
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        if (auto it = cache.find(key); it != cache.end())
            return it->second;
    }

    ExperimentConfig alone = config;
    alone.mechanism = "Baseline";
    alone.threads = 1;
    alone.hammerObserver = false;   // speed: oracle not needed here

    MixSpec mix;
    mix.name = "alone-" + app;
    mix.apps = {app};
    RunResult res = runExperiment(alone, mix);
    std::lock_guard<std::mutex> lock(cacheMutex);
    cache[key] = res.ipc[0];
    return res.ipc[0];
}

MultiProgMetrics
metricsAgainstAlone(const ExperimentConfig &config, const MixSpec &mix,
                    const RunResult &result)
{
    std::vector<double> shared;
    std::vector<double> alone;
    for (unsigned t = 0; t < config.threads; ++t) {
        if (isAttackApp(mix.apps[t]))
            continue;   // the attack's own performance is not a metric
        shared.push_back(result.ipc[t]);
        alone.push_back(aloneIpc(config, mix.apps[t]));
    }
    // The window resolves at best one retired instruction per runCycles:
    // clamp to that floor so memory-bound apps that round to 0 IPC in
    // short (low --scale) windows contribute a bounded slowdown instead
    // of a degenerate-IPC warning.
    double min_ipc = config.runCycles > 0
        ? 1.0 / static_cast<double>(config.runCycles) : 0.0;
    return computeMetrics(shared, alone, min_ipc);
}

} // namespace bh
