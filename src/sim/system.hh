/**
 * @file
 * Full-system composition: N trace-driven cores sharing an LLC in front
 * of a multi-channel memory system with one RowHammer mitigation
 * instance per channel (the paper's Table 5 configuration is the
 * single-channel special case).
 *
 * The driver loop supports event skipping: when a cycle passes with no
 * component making progress, the system queries every component for its
 * next possible event and jumps there in one step, replaying the (few,
 * externally invisible) per-tick counters of the eliminated cycles. A
 * skipping run is bit-compatible with a cycle-by-cycle run; SkipMode
 * kVerify executes cycle-by-cycle while asserting every skip claim.
 *
 * Multi-channel systems additionally exploit deterministic intra-cell
 * parallelism: while every core and the LLC are provably quiet, the
 * per-channel lanes tick independently over barrier-synced chunks —
 * optionally on a worker pool (SystemConfig::channelThreads) — with
 * completions delivered at their semantic completion cycle in
 * (cycle, channel, lane-order). Chunk boundaries are derived from
 * simulation state only, so output is byte-identical for any
 * channelThreads value, including 1, and for chunked vs cycle-by-cycle
 * execution (see DESIGN.md, "channel lanes").
 */

#ifndef BH_SIM_SYSTEM_HH
#define BH_SIM_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/core.hh"
#include "sim/channel_pool.hh"
#include "workloads/mixes.hh"

namespace bh
{

/**
 * Simulated cycles executed by System::run on the calling thread since
 * its last reset — skipped and chunked cycles included, since they are
 * simulated time. Bench workers reset, run a cell, then read this to
 * compute per-cell cycles/sec (BENCH_perf.json).
 */
std::uint64_t simCyclesThisThread();
void resetSimCyclesThisThread();

/** Simulated cycles executed process-wide (all threads, all systems). */
std::uint64_t simCyclesTotal();

/** How System::run advances simulated time. */
enum class SkipMode
{
    kCycleByCycle,  ///< tick every cycle (the reference behavior)
    kEventSkip,     ///< jump over provably idle stretches (default)
    kVerify,        ///< tick every cycle, assert every skip claim
};

/** Builds the mitigation instance of one memory channel. */
using MitigationFactory =
    std::function<std::unique_ptr<Mitigation>(unsigned channel)>;

/** Aggregate system configuration. */
struct SystemConfig
{
    unsigned threads = 8;
    CoreConfig core;
    LlcConfig llc;
    MemSystemConfig mem;
    bool useLlc = true;
    /** Memory controller clock divider relative to the CPU clock. */
    unsigned mcClockDivider = 2;
    /** Time-advance strategy (see SkipMode). */
    SkipMode skip = SkipMode::kEventSkip;
    /**
     * Worker threads ticking channel lanes (1 = all lanes on the driver
     * thread). Purely an execution knob: results are byte-identical for
     * any value.
     */
    unsigned channelThreads = 1;
};

/** A complete simulated system instance. */
class System
{
  public:
    /** One mitigation instance per channel, built by `factory`. */
    System(const SystemConfig &config, const MitigationFactory &factory);

    /** Single-channel convenience constructor (mem.org.channels == 1). */
    System(const SystemConfig &config, std::unique_ptr<Mitigation> mitigation);

    /** Install the trace for one core slot (must precede run()). */
    void setTrace(unsigned slot, std::unique_ptr<TraceSource> trace);

    /**
     * Install a trace with a per-core configuration override (e.g., an
     * attacker modeled as one dependent access chain per bank).
     */
    void setTrace(unsigned slot, std::unique_ptr<TraceSource> trace,
                  const CoreConfig &core_cfg);

    /** Run for `cycles` more cycles. */
    void run(Cycle cycles);

    /** Current simulation time. */
    Cycle now() const { return currentCycle; }

    /**
     * Mark the start of the measurement window: IPC and energy report
     * deltas from this point, excluding cache/blacklist warmup (the paper
     * fast-forwards 100M instructions before measuring).
     */
    void startMeasurement();

    /** IPC of one thread over the measurement window. */
    double ipc(unsigned slot) const;

    /** Cycles eliminated by event skipping so far (diagnostics). */
    std::uint64_t skippedCycles() const { return numSkipped; }

    /** Core-quiet cycles covered by lane chunks so far (diagnostics). */
    std::uint64_t chunkedCycles() const { return numChunked; }

    Core &core(unsigned slot) { return *cores[slot]; }
    const Core &core(unsigned slot) const { return *cores[slot]; }
    Llc *llc() { return llcPtr.get(); }
    MemSystem &mem() { return *memSys; }
    const MemSystem &mem() const { return *memSys; }
    unsigned threads() const { return cfg.threads; }

    /** DRAM energy over the measurement window (J). */
    double
    energy()
    {
        return memSys->totalEnergy(currentCycle) - energyAtMeasureStart;
    }

  private:
    /** Combined progress stamp over every component (quiescence check). */
    std::uint64_t progressStamp() const;

    /** Earliest cycle in (now, end] at which any component can act. */
    Cycle nextEventAt(Cycle end);

    /**
     * Latest cycle <= `end` up to which every core and the LLC provably
     * stay no-ops while only channel lanes tick (currentCycle when no
     * such chunk exists). Derived from simulation state only.
     */
    Cycle chunkTargetAt(Cycle end) const;

    /** Tick all lanes over [currentCycle, target) and jump there. */
    void runLaneChunk(Cycle target);

    SystemConfig cfg;
    std::unique_ptr<MemSystem> memSys;
    std::unique_ptr<Llc> llcPtr;
    std::unique_ptr<ChannelPool> lanePool;  ///< channelThreads > 1 only
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<std::unique_ptr<Core>> cores;
    Cycle currentCycle = 0;
    Cycle measureStart = 0;
    double energyAtMeasureStart = 0.0;
    std::vector<std::uint64_t> retiredAtMeasureStart;
    std::uint64_t numSkipped = 0;
    std::uint64_t numChunked = 0;
    Cycle verifiedQuietUntil = 0;   ///< kVerify: active skip claim bound
    TraceMeta driverMeta;           ///< tid = channel count (driver row)
};

} // namespace bh

#endif // BH_SIM_SYSTEM_HH
