/**
 * @file
 * Full-system composition: N trace-driven cores sharing an LLC in front of
 * one DRAM channel with an installed RowHammer mitigation mechanism
 * (the paper's Table 5 configuration).
 */

#ifndef BH_SIM_SYSTEM_HH
#define BH_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/core.hh"
#include "workloads/mixes.hh"

namespace bh
{

/** Aggregate system configuration. */
struct SystemConfig
{
    unsigned threads = 8;
    CoreConfig core;
    LlcConfig llc;
    MemSystemConfig mem;
    bool useLlc = true;
    /** Memory controller clock divider relative to the CPU clock. */
    unsigned mcClockDivider = 2;
};

/** A complete simulated system instance. */
class System
{
  public:
    System(const SystemConfig &config, std::unique_ptr<Mitigation> mitigation);

    /** Install the trace for one core slot (must precede run()). */
    void setTrace(unsigned slot, std::unique_ptr<TraceSource> trace);

    /**
     * Install a trace with a per-core configuration override (e.g., an
     * attacker modeled as one dependent access chain per bank).
     */
    void setTrace(unsigned slot, std::unique_ptr<TraceSource> trace,
                  const CoreConfig &core_cfg);

    /** Run for `cycles` more cycles. */
    void run(Cycle cycles);

    /** Current simulation time. */
    Cycle now() const { return currentCycle; }

    /**
     * Mark the start of the measurement window: IPC and energy report
     * deltas from this point, excluding cache/blacklist warmup (the paper
     * fast-forwards 100M instructions before measuring).
     */
    void startMeasurement();

    /** IPC of one thread over the measurement window. */
    double ipc(unsigned slot) const;

    Core &core(unsigned slot) { return *cores[slot]; }
    const Core &core(unsigned slot) const { return *cores[slot]; }
    Llc *llc() { return llcPtr.get(); }
    MemSystem &mem() { return *memSys; }
    const MemSystem &mem() const { return *memSys; }
    unsigned threads() const { return cfg.threads; }

    /** DRAM energy over the measurement window (J). */
    double
    energy()
    {
        return memSys->totalEnergy(currentCycle) - energyAtMeasureStart;
    }

  private:
    SystemConfig cfg;
    std::unique_ptr<MemSystem> memSys;
    std::unique_ptr<Llc> llcPtr;
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<std::unique_ptr<Core>> cores;
    Cycle currentCycle = 0;
    Cycle measureStart = 0;
    double energyAtMeasureStart = 0.0;
    std::vector<std::uint64_t> retiredAtMeasureStart;
};

} // namespace bh

#endif // BH_SIM_SYSTEM_HH
