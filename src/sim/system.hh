/**
 * @file
 * Full-system composition: N trace-driven cores sharing an LLC in front of
 * one DRAM channel with an installed RowHammer mitigation mechanism
 * (the paper's Table 5 configuration).
 *
 * The driver loop supports event skipping: when a cycle passes with no
 * component making progress, the system queries every component for its
 * next possible event and jumps there in one step, replaying the (few,
 * externally invisible) per-tick counters of the eliminated cycles. A
 * skipping run is bit-compatible with a cycle-by-cycle run; SkipMode
 * kVerify executes cycle-by-cycle while asserting every skip claim.
 */

#ifndef BH_SIM_SYSTEM_HH
#define BH_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/core.hh"
#include "workloads/mixes.hh"

namespace bh
{

/** How System::run advances simulated time. */
enum class SkipMode
{
    kCycleByCycle,  ///< tick every cycle (the reference behavior)
    kEventSkip,     ///< jump over provably idle stretches (default)
    kVerify,        ///< tick every cycle, assert every skip claim
};

/** Aggregate system configuration. */
struct SystemConfig
{
    unsigned threads = 8;
    CoreConfig core;
    LlcConfig llc;
    MemSystemConfig mem;
    bool useLlc = true;
    /** Memory controller clock divider relative to the CPU clock. */
    unsigned mcClockDivider = 2;
    /** Time-advance strategy (see SkipMode). */
    SkipMode skip = SkipMode::kEventSkip;
};

/** A complete simulated system instance. */
class System
{
  public:
    System(const SystemConfig &config, std::unique_ptr<Mitigation> mitigation);

    /** Install the trace for one core slot (must precede run()). */
    void setTrace(unsigned slot, std::unique_ptr<TraceSource> trace);

    /**
     * Install a trace with a per-core configuration override (e.g., an
     * attacker modeled as one dependent access chain per bank).
     */
    void setTrace(unsigned slot, std::unique_ptr<TraceSource> trace,
                  const CoreConfig &core_cfg);

    /** Run for `cycles` more cycles. */
    void run(Cycle cycles);

    /** Current simulation time. */
    Cycle now() const { return currentCycle; }

    /**
     * Mark the start of the measurement window: IPC and energy report
     * deltas from this point, excluding cache/blacklist warmup (the paper
     * fast-forwards 100M instructions before measuring).
     */
    void startMeasurement();

    /** IPC of one thread over the measurement window. */
    double ipc(unsigned slot) const;

    /** Cycles eliminated by event skipping so far (diagnostics). */
    std::uint64_t skippedCycles() const { return numSkipped; }

    Core &core(unsigned slot) { return *cores[slot]; }
    const Core &core(unsigned slot) const { return *cores[slot]; }
    Llc *llc() { return llcPtr.get(); }
    MemSystem &mem() { return *memSys; }
    const MemSystem &mem() const { return *memSys; }
    unsigned threads() const { return cfg.threads; }

    /** DRAM energy over the measurement window (J). */
    double
    energy()
    {
        return memSys->totalEnergy(currentCycle) - energyAtMeasureStart;
    }

  private:
    /** Combined progress stamp over every component (quiescence check). */
    std::uint64_t progressStamp() const;

    /** Earliest cycle in (now, end] at which any component can act. */
    Cycle nextEventAt(Cycle end);

    SystemConfig cfg;
    std::unique_ptr<MemSystem> memSys;
    std::unique_ptr<Llc> llcPtr;
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<std::unique_ptr<Core>> cores;
    Cycle currentCycle = 0;
    Cycle measureStart = 0;
    double energyAtMeasureStart = 0.0;
    std::vector<std::uint64_t> retiredAtMeasureStart;
    std::uint64_t numSkipped = 0;
    Cycle verifiedQuietUntil = 0;   ///< kVerify: active skip claim bound
};

} // namespace bh

#endif // BH_SIM_SYSTEM_HH
