#include "sim/channel_pool.hh"

namespace bh
{

ChannelPool::ChannelPool(unsigned threads)
    : numThreads(threads < 1 ? 1 : threads)
{
    for (unsigned t = 1; t < numThreads; ++t)
        workers.emplace_back([this] { workerLoop(); });
}

ChannelPool::~ChannelPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    wakeCv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ChannelPool::run(unsigned n, const std::function<void(unsigned)> &fn)
{
    if (n == 0)
        return;
    if (numThreads <= 1 || n == 1) {
        for (unsigned i = 0; i < n; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mtx);
        roundFn = &fn;
        roundItems = n;
        nextItem = 0;
        itemsDone = 0;
        ++round;
    }
    wakeCv.notify_all();

    // The dispatching thread claims items too, then waits out the tail.
    for (;;) {
        unsigned i;
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (nextItem >= roundItems)
                break;
            i = nextItem++;
        }
        fn(i);
        std::lock_guard<std::mutex> lock(mtx);
        ++itemsDone;
    }

    std::unique_lock<std::mutex> lock(mtx);
    doneCv.wait(lock, [this] { return itemsDone == roundItems; });
    roundFn = nullptr;
}

void
ChannelPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(unsigned)> *fn = nullptr;
        {
            std::unique_lock<std::mutex> lock(mtx);
            wakeCv.wait(lock, [&] {
                return stopping || (round != seen && roundFn);
            });
            if (stopping)
                return;
            seen = round;
            fn = roundFn;
        }
        for (;;) {
            unsigned i;
            {
                std::lock_guard<std::mutex> lock(mtx);
                if (round != seen || nextItem >= roundItems)
                    break;
                i = nextItem++;
            }
            (*fn)(i);
            std::lock_guard<std::mutex> lock(mtx);
            bool all = ++itemsDone == roundItems;
            if (all)
                doneCv.notify_all();
        }
    }
}

} // namespace bh
