#include "sim/runner.hh"

namespace bh
{

Runner::Runner(unsigned jobs)
{
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    numJobs = jobs;
    // jobs == 1 runs cells inline in forEach: exact same code path a
    // debugger or profiler wants, and the reference for determinism tests.
    if (numJobs > 1) {
        workers.reserve(numJobs);
        for (unsigned i = 0; i < numJobs; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }
}

Runner::~Runner()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
Runner::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock, [this] { return stopping || !tasks.empty(); });
            if (tasks.empty())
                return;     // stopping and drained
            task = std::move(tasks.front());
            tasks.pop();
        }
        task();
    }
}

void
Runner::forEach(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (numJobs == 1) {
        // Same exception contract as the pooled path: every cell runs,
        // the first error is rethrown at the end.
        std::exception_ptr first_error;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        if (first_error)
            std::rethrow_exception(first_error);
        return;
    }

    struct Batch
    {
        std::mutex m;
        std::condition_variable done;
        std::size_t remaining = 0;
        std::exception_ptr firstError;
    } batch;
    batch.remaining = n;

    {
        std::lock_guard<std::mutex> lock(mtx);
        for (std::size_t i = 0; i < n; ++i) {
            tasks.push([&batch, &fn, i] {
                std::exception_ptr err;
                try {
                    fn(i);
                } catch (...) {
                    err = std::current_exception();
                }
                std::lock_guard<std::mutex> l(batch.m);
                if (err && !batch.firstError)
                    batch.firstError = err;
                if (--batch.remaining == 0)
                    batch.done.notify_all();
            });
        }
    }
    cv.notify_all();

    std::unique_lock<std::mutex> lock(batch.m);
    batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
    if (batch.firstError)
        std::rethrow_exception(batch.firstError);
}

std::uint64_t
Runner::cellSeed(std::uint64_t base, std::uint64_t cell)
{
    std::uint64_t z = base + (cell + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace bh
