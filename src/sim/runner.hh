/**
 * @file
 * Parallel experiment runner: a persistent thread pool that executes
 * independent sweep cells (workload x mitigation x N_RH) concurrently.
 *
 * Determinism contract: results are collected by cell index, and each
 * cell must be self-deterministic — any randomness it uses has to come
 * from values fixed by the cell's identity (a seed baked into its
 * config, or cellSeed(base, index) for ad-hoc streams), never from
 * execution order or shared RNG state. The existing experiments bake
 * fixed seeds into their ExperimentConfigs; cellSeed is the helper for
 * sweeps that need a distinct stream per cell. Cells must not share
 * mutable state beyond what the simulator already guards (see
 * aloneIpc's memo table).
 */

#ifndef BH_SIM_RUNNER_HH
#define BH_SIM_RUNNER_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bh
{

/** Fixed-size thread pool with index-ordered fork/join helpers. */
class Runner
{
  public:
    /** @param jobs worker count; 0 = hardware concurrency, 1 = inline. */
    explicit Runner(unsigned jobs = 0);
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** Number of workers this pool runs (>= 1). */
    unsigned jobs() const { return numJobs; }

    /**
     * Execute fn(0..n-1), blocking until all cells finish. Cells run
     * concurrently across the pool; any exception is rethrown here (the
     * remaining cells still run to completion).
     */
    void forEach(std::size_t n, const std::function<void(std::size_t)> &fn);

    /** forEach that collects fn(i) into a vector indexed by cell. */
    template <typename T>
    std::vector<T>
    map(std::size_t n, const std::function<T(std::size_t)> &fn)
    {
        std::vector<T> out(n);
        forEach(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Deterministic per-cell seed: a SplitMix64-style mix of the base
     * seed and the cell index. Stable across platforms and job counts.
     *
     * The bench layer folds this function into every run manifest's
     * grid fingerprint (see runBench), so changing the mix makes
     * bh_collect refuse to merge shards produced by older binaries
     * instead of silently combining differently-seeded cells.
     */
    static std::uint64_t cellSeed(std::uint64_t base, std::uint64_t cell);

  private:
    void workerLoop();

    unsigned numJobs = 0;
    std::vector<std::thread> workers;
    std::queue<std::function<void()>> tasks;
    std::mutex mtx;
    std::condition_variable cv;
    bool stopping = false;
};

} // namespace bh

#endif // BH_SIM_RUNNER_HH
