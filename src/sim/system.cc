#include "sim/system.hh"

#include <algorithm>
#include <atomic>

#include "common/log.hh"
#include "common/trace_sink.hh"

namespace bh
{

namespace
{

thread_local std::uint64_t tlsSimCycles = 0;
std::atomic<std::uint64_t> allSimCycles{0};

std::vector<std::unique_ptr<Mitigation>>
buildPerChannel(const SystemConfig &cfg, const MitigationFactory &factory)
{
    std::vector<std::unique_ptr<Mitigation>> v;
    for (unsigned ch = 0; ch < cfg.mem.org.channels; ++ch)
        v.push_back(factory(ch));
    return v;
}

} // namespace

std::uint64_t
simCyclesThisThread()
{
    return tlsSimCycles;
}

void
resetSimCyclesThisThread()
{
    tlsSimCycles = 0;
}

std::uint64_t
simCyclesTotal()
{
    return allSimCycles.load(std::memory_order_relaxed);
}

System::System(const SystemConfig &config, const MitigationFactory &factory)
    : cfg(config)
{
    memSys = std::make_unique<MemSystem>(
        cfg.mem, buildPerChannel(cfg, factory));
    // --skip off is the end-to-end reference: no fast paths anywhere.
    for (unsigned ch = 0; ch < memSys->channels(); ++ch)
        memSys->controller(ch).setFastIdleTicks(
            cfg.skip != SkipMode::kCycleByCycle);
    if (cfg.channelThreads > 1 && memSys->channels() > 1)
        lanePool = std::make_unique<ChannelPool>(
            std::min(cfg.channelThreads, memSys->channels()));
    if (cfg.useLlc)
        llcPtr = std::make_unique<Llc>(cfg.llc, *memSys);
    traces.resize(cfg.threads);
    cores.resize(cfg.threads);
    // Trace identity: one pid per simulated system, one tid per channel
    // lane, tid == channel count for driver-level spans. Assignment is
    // observation-only — simulation state never depends on it.
    if (TraceSink::on()) {
        std::uint32_t pid = TraceSink::newPid();
        for (unsigned ch = 0; ch < memSys->channels(); ++ch) {
            TraceMeta meta{pid, ch};
            memSys->controller(ch).setTraceMeta(meta);
            memSys->controller(ch).mitigation().setTraceMeta(meta);
        }
        driverMeta = TraceMeta{pid, memSys->channels()};
    }
}

System::System(const SystemConfig &config,
               std::unique_ptr<Mitigation> mitigation)
    : System(config,
             [&mitigation](unsigned ch) {
                 if (ch != 0 || !mitigation)
                     fatal("System: a multi-channel system needs a "
                           "MitigationFactory (one instance per channel)");
                 return std::move(mitigation);
             })
{
}

void
System::setTrace(unsigned slot, std::unique_ptr<TraceSource> trace)
{
    setTrace(slot, std::move(trace), cfg.core);
}

void
System::setTrace(unsigned slot, std::unique_ptr<TraceSource> trace,
                 const CoreConfig &core_cfg)
{
    if (slot >= cfg.threads)
        fatal("trace slot %u out of range", slot);
    traces[slot] = std::move(trace);
    cores[slot] = std::make_unique<Core>(
        core_cfg, static_cast<ThreadId>(slot), *traces[slot],
        llcPtr.get(), *memSys);
}

std::uint64_t
System::progressStamp() const
{
    std::uint64_t s = memSys->activityStamp();
    for (const auto &core : cores)
        s += core->progressStamp();
    if (llcPtr)
        s += llcPtr->writebacks();
    return s;
}

Cycle
System::nextEventAt(Cycle end)
{
    Cycle target = end;
    for (const auto &core : cores) {
        Cycle e = core->nextEventAt();
        if (e != kNoEventCycle)
            target = std::min(target, e);
    }
    // A pending completion delivery is an event: its callback mutates
    // core/LLC state at exactly its due cycle (multi-channel only; the
    // single-channel heap is always empty).
    Cycle due = memSys->nextCompletionAt();
    if (due != kNoEventCycle)
        target = std::min(target, due);
    // Controllers only act on their own clock: align their event up to
    // the next controller tick. (Core events stay cycle-exact.)
    Cycle divider = std::max<Cycle>(1, cfg.mcClockDivider);
    Cycle mc = memSys->nextEventAt(currentCycle);
    if (mc != kNoEventCycle) {
        Cycle aligned = ((mc + divider - 1) / divider) * divider;
        target = std::min(target, aligned);
    }
    return std::max(target, currentCycle);
}

Cycle
System::chunkTargetAt(Cycle end) const
{
    // Every core and the LLC must be provably quiet: their ticks over the
    // chunk are no-ops given no completion delivery, so only lanes run.
    for (const auto &core : cores)
        if (!core->quietTick())
            return currentCycle;
    if (llcPtr && !llcPtr->quiet())
        return currentCycle;

    Cycle target = end;
    // A core wakes on its own at its window head's known completion time.
    for (const auto &core : cores) {
        Cycle e = core->nextEventAt();
        if (e != kNoEventCycle)
            target = std::min(target, e);
    }
    // Already-buffered completions must be delivered at their due cycle.
    Cycle due = memSys->nextCompletionAt();
    if (due != kNoEventCycle)
        target = std::min(target, due);
    // Completions produced inside the chunk complete no earlier than
    // first-lane-tick + minCompletionLatency; ending the chunk there
    // guarantees no delivery ever lands mid-chunk.
    Cycle divider = std::max<Cycle>(1, cfg.mcClockDivider);
    Cycle first_mc = ((currentCycle + divider - 1) / divider) * divider;
    target = std::min(target, first_mc + memSys->minCompletionLatency());
    return std::max(target, currentCycle);
}

void
System::runLaneChunk(Cycle target)
{
    Cycle chunkStart = currentCycle;
    Cycle divider = std::max<Cycle>(1, cfg.mcClockDivider);
    Cycle first_mc = ((currentCycle + divider - 1) / divider) * divider;
    unsigned channels = memSys->channels();
    if (first_mc < target) {
        std::uint64_t mc_ticks = static_cast<std::uint64_t>(
            (target - first_mc + divider - 1) / divider);
        auto tick_lane = [&](unsigned ch) {
            MemController &ctrl = memSys->controller(ch);
            Cycle c = first_mc;
            while (c < target) {
                ctrl.tick(c);
                c += divider;
                // A lane that just went idle replays the rest of its
                // provably quiet ticks in one batched step — the same
                // per-tick bookkeeping its internal fast path would do,
                // so chunked and cycle-by-cycle stay bit-identical.
                if (c >= target || !ctrl.idleSinceLastTick())
                    continue;
                Cycle bound = ctrl.nextEventAt(c - divider);
                Cycle resume = ((bound + divider - 1) / divider) * divider;
                Cycle stop = std::min(resume, target);
                if (stop <= c)
                    continue;
                std::uint64_t k = static_cast<std::uint64_t>(
                    (stop - c + divider - 1) / divider);
                ctrl.noteSkippedTicks(k);
                c += static_cast<Cycle>(k) * divider;
            }
        };
        // The pool is a pure execution strategy: lane work is
        // data-independent, so inline and pooled rounds are identical.
        // Tiny chunks skip the wake-up cost.
        if (lanePool && mc_ticks * channels >= 32) {
            lanePool->run(channels, tick_lane);
        } else {
            for (unsigned ch = 0; ch < channels; ++ch)
                tick_lane(ch);
        }
        memSys->flushCompletions();
    }
    // Quiet cores skip their ticks; delivery-bound stalled cores would
    // have re-attempted (and failed) the same issue every cycle — replay
    // that stall accounting exactly as the full-idle skip does.
    std::uint64_t k_cpu = static_cast<std::uint64_t>(target - currentCycle);
    for (auto &core : cores)
        core->noteSkippedCycles(k_cpu);
    numChunked += k_cpu;
    currentCycle = target;
    if (TraceSink::on()) {
        TraceSink::complete(
            "lane", "chunk", driverMeta, chunkStart, target - chunkStart,
            {{"channels", static_cast<std::int64_t>(channels)}});
    }
}

void
System::run(Cycle cycles)
{
    for (unsigned t = 0; t < cfg.threads; ++t)
        if (!cores[t])
            fatal("core slot %u has no trace installed", t);

    // Perf telemetry: all of [currentCycle, end) is simulated time, no
    // matter how it is covered (executed, chunked, or skipped).
    tlsSimCycles += static_cast<std::uint64_t>(cycles);
    allSimCycles.fetch_add(static_cast<std::uint64_t>(cycles),
                           std::memory_order_relaxed);

    Cycle end = currentCycle + cycles;
    Cycle divider = std::max<Cycle>(1, cfg.mcClockDivider);
    unsigned n = static_cast<unsigned>(cores.size());
    bool track = cfg.skip != SkipMode::kCycleByCycle;
    bool multi = memSys->channels() > 1;
    while (currentCycle < end) {
        // Completions due this cycle mutate core/LLC state before any
        // component ticks (multi-channel; single-channel delivers inline
        // at issue, the legacy path).
        if (multi)
            memSys->deliverCompletionsDue(currentCycle);
        std::uint64_t before = track ? progressStamp() : 0;
        // Rotate the tick order so no core gets a systematic head start
        // when racing for shared queue slots.
        unsigned first = static_cast<unsigned>(currentCycle) % n;
        for (unsigned i = 0; i < n; ++i)
            cores[(first + i) % n]->tick(currentCycle);
        if (llcPtr)
            llcPtr->tick(currentCycle);
        if (currentCycle % divider == 0)
            memSys->tick(currentCycle);
        Cycle ticked = currentCycle;
        ++currentCycle;

        if (!track)
            continue;
        bool progressed = progressStamp() != before;
        bool idle = !progressed && memSys->allIdleSinceLastTick();

        if (cfg.skip == SkipMode::kVerify) {
            // Cross-check: any progress inside a previously claimed quiet
            // region falsifies the skip analysis.
            if (progressed && ticked < verifiedQuietUntil)
                panic("event-skip verify: progress at cycle %lld inside a "
                      "region claimed quiet until %lld",
                      static_cast<long long>(ticked),
                      static_cast<long long>(verifiedQuietUntil));
            if (idle)
                verifiedQuietUntil =
                    std::max(verifiedQuietUntil, nextEventAt(end));
            continue;
        }

        if (!idle) {
            // Lanes busy, but cores/LLC quiet? Tick lanes alone over a
            // barrier-synced chunk (bit-exact to cycle-by-cycle: see
            // chunkTargetAt). Meaningless for one channel, where the
            // whole cycle is the lane tick.
            if (multi) {
                Cycle target = chunkTargetAt(end);
                if (target > currentCycle)
                    runLaneChunk(target);
            }
            continue;
        }
        Cycle target = nextEventAt(end);
        if (target <= currentCycle)
            continue;

        // Jump. Replay the per-tick counters the eliminated cycles would
        // have produced: each skipped controller tick repeats the last
        // executed (idle) tick's bookkeeping; stalled cores accrue their
        // per-cycle stall accounting.
        std::uint64_t k_cpu =
            static_cast<std::uint64_t>(target - currentCycle);
        auto mc_ticks_before = [&](Cycle c) {
            return static_cast<std::uint64_t>((c + divider - 1) / divider);
        };
        std::uint64_t k_mc =
            mc_ticks_before(target) - mc_ticks_before(currentCycle);
        for (auto &core : cores)
            core->noteSkippedCycles(k_cpu);
        if (k_mc > 0)
            memSys->noteSkippedTicks(k_mc);
        numSkipped += k_cpu;
        if (TraceSink::on()) {
            TraceSink::complete(
                "skip", "jump", driverMeta, currentCycle,
                target - currentCycle,
                {{"mc_ticks", static_cast<std::int64_t>(k_mc)}});
        }
        currentCycle = target;
    }
}

void
System::startMeasurement()
{
    measureStart = currentCycle;
    energyAtMeasureStart = memSys->totalEnergy(currentCycle);
    retiredAtMeasureStart.clear();
    for (auto &core : cores)
        retiredAtMeasureStart.push_back(core ? core->retired() : 0);
}

double
System::ipc(unsigned slot) const
{
    Cycle window = currentCycle - measureStart;
    if (window <= 0)
        return 0.0;
    std::uint64_t base = slot < retiredAtMeasureStart.size()
        ? retiredAtMeasureStart[slot] : 0;
    return static_cast<double>(cores[slot]->retired() - base) /
        static_cast<double>(window);
}

} // namespace bh
