#include "sim/system.hh"

#include "common/log.hh"

namespace bh
{

System::System(const SystemConfig &config,
               std::unique_ptr<Mitigation> mitigation)
    : cfg(config)
{
    memSys = std::make_unique<MemSystem>(cfg.mem, std::move(mitigation));
    if (cfg.useLlc)
        llcPtr = std::make_unique<Llc>(cfg.llc, *memSys);
    traces.resize(cfg.threads);
    cores.resize(cfg.threads);
}

void
System::setTrace(unsigned slot, std::unique_ptr<TraceSource> trace)
{
    setTrace(slot, std::move(trace), cfg.core);
}

void
System::setTrace(unsigned slot, std::unique_ptr<TraceSource> trace,
                 const CoreConfig &core_cfg)
{
    if (slot >= cfg.threads)
        fatal("trace slot %u out of range", slot);
    traces[slot] = std::move(trace);
    cores[slot] = std::make_unique<Core>(
        core_cfg, static_cast<ThreadId>(slot), *traces[slot],
        llcPtr.get(), *memSys);
}

void
System::run(Cycle cycles)
{
    for (unsigned t = 0; t < cfg.threads; ++t)
        if (!cores[t])
            fatal("core slot %u has no trace installed", t);

    Cycle end = currentCycle + cycles;
    unsigned divider = std::max(1u, cfg.mcClockDivider);
    unsigned n = static_cast<unsigned>(cores.size());
    for (; currentCycle < end; ++currentCycle) {
        // Rotate the tick order so no core gets a systematic head start
        // when racing for shared queue slots.
        unsigned first = static_cast<unsigned>(currentCycle) % n;
        for (unsigned i = 0; i < n; ++i)
            cores[(first + i) % n]->tick(currentCycle);
        if (llcPtr)
            llcPtr->tick(currentCycle);
        if (currentCycle % divider == 0)
            memSys->tick(currentCycle);
    }
}

void
System::startMeasurement()
{
    measureStart = currentCycle;
    energyAtMeasureStart = memSys->totalEnergy(currentCycle);
    retiredAtMeasureStart.clear();
    for (auto &core : cores)
        retiredAtMeasureStart.push_back(core ? core->retired() : 0);
}

double
System::ipc(unsigned slot) const
{
    Cycle window = currentCycle - measureStart;
    if (window <= 0)
        return 0.0;
    std::uint64_t base = slot < retiredAtMeasureStart.size()
        ? retiredAtMeasureStart[slot] : 0;
    return static_cast<double>(cores[slot]->retired() - base) /
        static_cast<double>(window);
}

} // namespace bh
