#include "sim/system.hh"

#include <algorithm>

#include "common/log.hh"

namespace bh
{

System::System(const SystemConfig &config,
               std::unique_ptr<Mitigation> mitigation)
    : cfg(config)
{
    memSys = std::make_unique<MemSystem>(cfg.mem, std::move(mitigation));
    // --skip off is the end-to-end reference: no fast paths anywhere.
    memSys->controller().setFastIdleTicks(
        cfg.skip != SkipMode::kCycleByCycle);
    if (cfg.useLlc)
        llcPtr = std::make_unique<Llc>(cfg.llc, *memSys);
    traces.resize(cfg.threads);
    cores.resize(cfg.threads);
}

void
System::setTrace(unsigned slot, std::unique_ptr<TraceSource> trace)
{
    setTrace(slot, std::move(trace), cfg.core);
}

void
System::setTrace(unsigned slot, std::unique_ptr<TraceSource> trace,
                 const CoreConfig &core_cfg)
{
    if (slot >= cfg.threads)
        fatal("trace slot %u out of range", slot);
    traces[slot] = std::move(trace);
    cores[slot] = std::make_unique<Core>(
        core_cfg, static_cast<ThreadId>(slot), *traces[slot],
        llcPtr.get(), *memSys);
}

std::uint64_t
System::progressStamp() const
{
    std::uint64_t s = memSys->controller().activityStamp();
    for (const auto &core : cores)
        s += core->progressStamp();
    if (llcPtr)
        s += llcPtr->writebacks();
    return s;
}

Cycle
System::nextEventAt(Cycle end)
{
    Cycle target = end;
    for (const auto &core : cores) {
        Cycle e = core->nextEventAt();
        if (e != kNoEventCycle)
            target = std::min(target, e);
    }
    // The controller only acts on its own clock: align its event up to
    // the next controller tick. (Core events stay cycle-exact.)
    Cycle divider = std::max<Cycle>(1, cfg.mcClockDivider);
    Cycle mc = memSys->controller().nextEventAt(currentCycle);
    if (mc != kNoEventCycle) {
        Cycle aligned = ((mc + divider - 1) / divider) * divider;
        target = std::min(target, aligned);
    }
    return std::max(target, currentCycle);
}

void
System::run(Cycle cycles)
{
    for (unsigned t = 0; t < cfg.threads; ++t)
        if (!cores[t])
            fatal("core slot %u has no trace installed", t);

    Cycle end = currentCycle + cycles;
    Cycle divider = std::max<Cycle>(1, cfg.mcClockDivider);
    unsigned n = static_cast<unsigned>(cores.size());
    bool track = cfg.skip != SkipMode::kCycleByCycle;
    while (currentCycle < end) {
        std::uint64_t before = track ? progressStamp() : 0;
        // Rotate the tick order so no core gets a systematic head start
        // when racing for shared queue slots.
        unsigned first = static_cast<unsigned>(currentCycle) % n;
        for (unsigned i = 0; i < n; ++i)
            cores[(first + i) % n]->tick(currentCycle);
        if (llcPtr)
            llcPtr->tick(currentCycle);
        if (currentCycle % divider == 0)
            memSys->tick(currentCycle);
        Cycle ticked = currentCycle;
        ++currentCycle;

        if (!track)
            continue;
        bool progressed = progressStamp() != before;
        bool idle = !progressed &&
            memSys->controller().idleSinceLastTick();

        if (cfg.skip == SkipMode::kVerify) {
            // Cross-check: any progress inside a previously claimed quiet
            // region falsifies the skip analysis.
            if (progressed && ticked < verifiedQuietUntil)
                panic("event-skip verify: progress at cycle %lld inside a "
                      "region claimed quiet until %lld",
                      static_cast<long long>(ticked),
                      static_cast<long long>(verifiedQuietUntil));
            if (idle)
                verifiedQuietUntil =
                    std::max(verifiedQuietUntil, nextEventAt(end));
            continue;
        }

        if (!idle)
            continue;
        Cycle target = nextEventAt(end);
        if (target <= currentCycle)
            continue;

        // Jump. Replay the per-tick counters the eliminated cycles would
        // have produced: each skipped controller tick repeats the last
        // executed (idle) tick's bookkeeping; stalled cores accrue their
        // per-cycle stall accounting.
        std::uint64_t k_cpu =
            static_cast<std::uint64_t>(target - currentCycle);
        auto mc_ticks_before = [&](Cycle c) {
            return static_cast<std::uint64_t>((c + divider - 1) / divider);
        };
        std::uint64_t k_mc =
            mc_ticks_before(target) - mc_ticks_before(currentCycle);
        for (auto &core : cores)
            core->noteSkippedCycles(k_cpu);
        if (k_mc > 0)
            memSys->controller().noteSkippedTicks(k_mc);
        numSkipped += k_cpu;
        currentCycle = target;
    }
}

void
System::startMeasurement()
{
    measureStart = currentCycle;
    energyAtMeasureStart = memSys->totalEnergy(currentCycle);
    retiredAtMeasureStart.clear();
    for (auto &core : cores)
        retiredAtMeasureStart.push_back(core ? core->retired() : 0);
}

double
System::ipc(unsigned slot) const
{
    Cycle window = currentCycle - measureStart;
    if (window <= 0)
        return 0.0;
    std::uint64_t base = slot < retiredAtMeasureStart.size()
        ? retiredAtMeasureStart[slot] : 0;
    return static_cast<double>(cores[slot]->retired() - base) /
        static_cast<double>(window);
}

} // namespace bh
