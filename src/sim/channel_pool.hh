/**
 * @file
 * Small persistent worker pool that ticks channel lanes concurrently
 * inside one simulated system.
 *
 * Unlike the cell-level Runner (one task queue feeding long-lived bench
 * cells), this pool is built for very frequent, very short fork/join
 * rounds: System::run dispatches one round per chunk of lane ticks and
 * blocks on the barrier. Determinism does not depend on this pool at
 * all — lane work is data-independent and results are identical whether
 * a round runs here or inline — so the driver is free to bypass the pool
 * for chunks too small to amortize the wake-up cost.
 */

#ifndef BH_SIM_CHANNEL_POOL_HH
#define BH_SIM_CHANNEL_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bh
{

/** Fork/join pool for per-channel lane work. */
class ChannelPool
{
  public:
    /** @param threads worker count; <= 1 means run() executes inline. */
    explicit ChannelPool(unsigned threads);
    ~ChannelPool();

    ChannelPool(const ChannelPool &) = delete;
    ChannelPool &operator=(const ChannelPool &) = delete;

    /** Number of threads participating in a round (>= 1). */
    unsigned threads() const { return numThreads; }

    /**
     * Execute fn(0..n-1) across the pool (the calling thread works too)
     * and return once all n items completed. fn must not touch shared
     * mutable state across items.
     */
    void run(unsigned n, const std::function<void(unsigned)> &fn);

  private:
    void workerLoop();

    unsigned numThreads = 0;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wakeCv;     ///< workers wait for a round
    std::condition_variable doneCv;     ///< run() waits for the barrier
    std::uint64_t round = 0;            ///< bumped per run() dispatch
    unsigned roundItems = 0;
    unsigned nextItem = 0;              ///< next unclaimed item
    unsigned itemsDone = 0;
    const std::function<void(unsigned)> *roundFn = nullptr;
    bool stopping = false;
};

} // namespace bh

#endif // BH_SIM_CHANNEL_POOL_HH
