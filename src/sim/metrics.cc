#include "sim/metrics.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace bh
{

MultiProgMetrics
computeMetrics(const std::vector<double> &shared_ipc,
               const std::vector<double> &alone_ipc, double min_ipc)
{
    if (shared_ipc.size() != alone_ipc.size())
        panic("metric vectors differ in length");
    if (shared_ipc.empty())
        return MultiProgMetrics{};

    MultiProgMetrics m;
    double hs_denom = 0.0;
    for (std::size_t i = 0; i < shared_ipc.size(); ++i) {
        double alone = std::max(alone_ipc[i], min_ipc);
        double shared = std::max(shared_ipc[i], min_ipc);
        if (alone <= 0.0 || shared <= 0.0) {
            warn("degenerate IPC in metrics (alone=%f shared=%f)",
                 alone, shared);
            continue;
        }
        double speedup = shared / alone;
        double slowdown = alone / shared;
        m.weightedSpeedup += speedup;
        hs_denom += slowdown;
        m.maxSlowdown = std::max(m.maxSlowdown, slowdown);
    }
    auto n = static_cast<double>(shared_ipc.size());
    m.harmonicSpeedup = hs_denom > 0.0 ? n / hs_denom : 0.0;
    return m;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(std::max(v, 1e-12));
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace bh
