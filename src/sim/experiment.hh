/**
 * @file
 * Experiment harness shared by benches and integration tests: builds a
 * system for (mechanism, mix, RowHammer threshold), runs it, and collects
 * the metrics the paper reports. Includes the time-compressed evaluation
 * configuration (see DESIGN.md): all window-relative ratios (N_BL/N_RH,
 * tCBF/tREFW, mechanism trigger thresholds) follow the paper; the
 * absolute window is shrunk so the full blacklisting/throttling dynamics
 * unfold within bench-scale runs.
 */

#ifndef BH_SIM_EXPERIMENT_HH
#define BH_SIM_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"
#include "mitigations/factory.hh"
#include "sim/metrics.hh"
#include "sim/system.hh"

namespace bh
{

/** One experiment's configuration. */
struct ExperimentConfig
{
    std::string mechanism = "Baseline";
    std::uint32_t nRH = 2048;       ///< compressed default (paper: 32K)
    Cycle runCycles = 3'200'000;    ///< measurement window: 1 ms at 3.2 GHz
    Cycle warmupCycles = 800'000;   ///< cache/blacklist warmup before it
    unsigned threads = 8;
    double refwMs = 1.0;            ///< compressed tREFW (paper: 64 ms)
    std::uint64_t seed = 1;
    bool hammerObserver = true;
    /**
     * DRAM channels (power of two). Each channel gets its own controller,
     * device, energy/hammer models, and mitigation instance (Table 5
     * evaluates BlockHammer per channel).
     */
    unsigned channels = 1;
    /**
     * Worker threads ticking channel lanes inside this one run. Purely an
     * execution knob: results are byte-identical for any value.
     */
    unsigned channelThreads = 1;
    /**
     * Time-advance strategy. Event skipping is bit-compatible with
     * cycle-by-cycle simulation (kVerify asserts that); results never
     * depend on this knob.
     */
    SkipMode skip = SkipMode::kEventSkip;
    AttackParams attack;
    /**
     * Attach the per-channel SecurityOracle (sliding-tREFW-window
     * per-row ACT counts; observation-only, results unchanged) and
     * collect its verdict into RunResult::sec*.
     */
    bool securityOracle = false;

    /** Paper-scale configuration (for security/analysis runs). */
    static ExperimentConfig paperScale();

    /** DRAM timings with the compressed refresh window. */
    DramTimings timings() const;

    /**
     * Threshold/timing environment "attack:<pattern>" mix slots resolve
     * their pacing and declared ACT envelopes against (N_BL follows the
     * paper's N_BL = N_RH / 4).
     */
    AttackEnv attackEnv() const;

    /**
     * Mitigation settings consistent with this experiment, for one
     * channel's instance. Channel 0 keeps the experiment seed (so
     * single-channel runs are bit-stable vs older binaries); further
     * channels get decorrelated derived seeds.
     */
    MitigationSettings mitigationSettings(unsigned channel = 0) const;
};

/** Collected results of one run. */
struct RunResult
{
    std::string mechanism;
    std::string mixName;
    std::vector<double> ipc;            ///< per thread
    std::vector<bool> isAttack;         ///< per thread
    double energyJ = 0.0;
    std::uint64_t bitFlips = 0;
    std::uint64_t maxRowActs = 0;       ///< max per-row acts between refreshes
    std::uint64_t demandActs = 0;
    std::uint64_t blockedActs = 0;
    std::uint64_t victimRefreshes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowConflicts = 0;

    // SecurityOracle verdict (ExperimentConfig::securityOracle runs
    // only; zero/none otherwise). Channel-merged: counts and margins
    // take the worst lane, the violation cycle the earliest.
    double secMargin = 0.0;             ///< max window ACTs / N_RH
    std::uint64_t secMaxWindowActs = 0; ///< worst sliding-window count
    Cycle secFirstViolation = kNoEventCycle;    ///< earliest breach
    std::uint64_t secViolatingRows = 0; ///< distinct rows >= N_RH

    /** True when the activation-bounding guarantee held end to end. */
    bool secSafe() const { return secMargin < 1.0; }

    /**
     * Per-lane StatSet snapshots: {"ch0": {mc..., mitig...}, ...}.
     * Deterministic (event-driven samples and skip-replayed counters
     * only), so cell payloads carrying it stay byte-identical across
     * jobs/threads/skip settings — but it is excluded from cell digests
     * (see report.hh cellDigest) to keep old goldens valid.
     */
    Json stats = Json::object();

    /** IPCs of benign threads only. */
    std::vector<double> benignIpc() const;
};

/** Build a fully-wired system for a mix (traces installed). */
std::unique_ptr<System> buildSystem(const ExperimentConfig &config,
                                    const MixSpec &mix);

/** Run one (mechanism, mix) experiment. */
RunResult runExperiment(const ExperimentConfig &config, const MixSpec &mix);

/**
 * Per-app alone-run IPC on the Baseline system (the denominator of the
 * paper's speedup metrics), memoized per (app, cycles, seed).
 */
double aloneIpc(const ExperimentConfig &config, const std::string &app);

/** Benign-thread metrics of a run against alone-run IPCs. */
MultiProgMetrics metricsAgainstAlone(const ExperimentConfig &config,
                                     const MixSpec &mix,
                                     const RunResult &result);

} // namespace bh

#endif // BH_SIM_EXPERIMENT_HH
