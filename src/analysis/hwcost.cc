#include "analysis/hwcost.hh"

#include <algorithm>
#include <cmath>

#include "blockhammer/config.hh"
#include "common/bitutils.hh"
#include "common/log.hh"

namespace bh
{

HwCostModel::HwCostModel(const TechParams &params, unsigned banks_count,
                         unsigned threads_count, unsigned channels_count)
    : tech(params), banks(banks_count), threads(threads_count),
      channels(channels_count)
{
}

Storage
HwCostModel::blockHammerDcbf(std::uint32_t n_rh) const
{
    auto cfg = BlockHammerConfig::forThreshold(n_rh, DramTimings::ddr4(),
                                               banks, threads);
    // Two filters per bank; counters sized to reach N_BL.
    double counter_bits = ceilLog2(cfg.nBL) + 1;
    double bits = 2.0 * cfg.cbf.numCounters * counter_bits * banks;
    return Storage{bits, 0.0};
}

Storage
HwCostModel::blockHammerHistory(std::uint32_t n_rh,
                                const DramTimings &timings) const
{
    auto cfg = BlockHammerConfig::forThreshold(n_rh, timings, banks, threads);
    double entries = cfg.historyEntries();
    // Each entry: row id in CAM (searched), timestamp + valid in SRAM.
    double row_id_bits = ceilLog2(65536) + ceilLog2(banks);  // 20
    double sram_bits = entries * (11.0 + 1.0);               // ts + valid
    double cam_bits = entries * row_id_bits;
    return Storage{sram_bits, cam_bits};
}

Storage
HwCostModel::blockHammerThrottler(std::uint32_t n_rh) const
{
    auto cfg = BlockHammerConfig::forThreshold(n_rh, DramTimings::ddr4(),
                                               banks, threads);
    double counter_bits = ceilLog2(cfg.throttlerCounterMax()) + 1;
    double bits = 2.0 * threads * banks * counter_bits;
    return Storage{bits, 0.0};
}

HwCost
HwCostModel::toCost(const std::string &name, const Storage &s) const
{
    HwCost c;
    c.mechanism = name;
    c.sramKiB = s.sramBits / 8.0 / 1024.0;
    c.camKiB = s.camBits / 8.0 / 1024.0;
    double area_um2 = s.sramBits * tech.sramAreaUm2PerBit +
        s.camBits * tech.camAreaUm2PerBit;
    c.areaMm2 = area_um2 * 1e-6;
    // One mechanism instance per memory channel.
    c.cpuAreaPct = 100.0 * (c.areaMm2 * channels) / tech.cpuDieMm2;
    c.accessEnergyPj =
        tech.accessEnergyPjPerSqrtBit * std::sqrt(s.sramBits) +
        tech.accessEnergyPjPerSqrtBit * tech.camEnergyFactor *
        std::sqrt(s.camBits);
    c.staticPowerMw = (s.sramBits * tech.staticPowerNwPerBit +
                       s.camBits * tech.staticPowerNwPerBit *
                       tech.camPowerFactor) * 1e-6;
    return c;
}

std::optional<HwCost>
HwCostModel::costFor(const std::string &mechanism, std::uint32_t n_rh,
                     const DramTimings &timings) const
{
    double scale32k = 32768.0 / static_cast<double>(n_rh);

    if (mechanism == "BlockHammer") {
        Storage total;
        for (const Storage &s : {blockHammerDcbf(n_rh),
                                 blockHammerHistory(n_rh, timings),
                                 blockHammerThrottler(n_rh)}) {
            total.sramBits += s.sramBits;
            total.camBits += s.camBits;
        }
        return toCost(mechanism, total);
    }
    if (mechanism == "PARA") {
        // Probabilistic: a probability register and an LFSR; no tables.
        HwCost c = toCost(mechanism, Storage{64.0, 0.0});
        return c;
    }
    if (mechanism == "PRoHIT") {
        // Fixed design point (the paper reports N_RH = 2K parameters and
        // no scaling methodology).
        if (n_rh < 2048)
            return std::nullopt;
        HwCost c = toCost(mechanism, Storage{0.0, 0.22 * 8.0 * 1024.0});
        c.scalable = false;
        return c;
    }
    if (mechanism == "MRLoc") {
        if (n_rh < 2048)
            return std::nullopt;
        HwCost c = toCost(mechanism, Storage{0.0, 0.47 * 8.0 * 1024.0});
        c.scalable = false;
        return c;
    }
    if (mechanism == "CBT") {
        // 125 counters per bank at 32K; counter count grows inversely
        // with the threshold (deeper trees / more regions).
        double sram_kib = 16.0 * scale32k;
        double cam_kib = 8.5 * scale32k;
        return toCost(mechanism, Storage{sram_kib * 8192.0,
                                         cam_kib * 8192.0});
    }
    if (mechanism == "TWiCe") {
        // Table entries scale with the maximum concurrently-tracked rows,
        // inversely proportional to the threshold.
        double sram_kib = 23.10 * scale32k;
        double cam_kib = 14.02 * scale32k;
        return toCost(mechanism, Storage{sram_kib * 8192.0,
                                         cam_kib * 8192.0});
    }
    if (mechanism == "Graphene") {
        // Misra-Gries: ceil(W / T) CAM entries per bank; W fixed by tRC.
        double cam_kib = 5.22 * scale32k;
        return toCost(mechanism, Storage{0.0, cam_kib * 8192.0});
    }
    if (mechanism == "ABACuS") {
        // One shared (RAC, SAV) table for the whole rank: ceil(W/T) + 1
        // entries with T = N_RH/4 (mitigations/abacus.cc), each a
        // searched row address plus an SRAM RAC and one SAV bit per
        // bank — the per-bank-free sizing that is ABACuS's point.
        double w = static_cast<double>(timings.tREFW) /
            static_cast<double>(std::max<Cycle>(1, timings.tRC));
        double t = std::max(1.0, static_cast<double>(n_rh) / 4.0);
        double entries = std::ceil(w / t) + 1.0;
        double rac_bits = ceilLog2(static_cast<std::uint64_t>(w) + 1) + 1;
        double sram_bits = entries * (rac_bits + banks + 1.0);
        double cam_bits = entries * ceilLog2(65536);
        return toCost(mechanism, Storage{sram_bits, cam_bits});
    }
    if (mechanism == "DAPPER") {
        // Per-bank Misra-Gries at the lowered T = N_RH/8 plus the
        // budgeted-refresh FIFO (mitigations/dapper.cc).
        double w = static_cast<double>(timings.tREFW) /
            static_cast<double>(std::max<Cycle>(1, timings.tRC));
        double t = std::max(1.0, static_cast<double>(n_rh) / 8.0);
        double entries = std::ceil(w / t) + 1.0;
        double cnt_bits = ceilLog2(static_cast<std::uint64_t>(w) + 1) + 1;
        double sram_bits = entries * banks * (cnt_bits + 1.0);
        double cam_bits = entries * banks * ceilLog2(65536);
        double fifo_bits = 64.0 * (ceilLog2(65536) + ceilLog2(banks));
        return toCost(mechanism, Storage{sram_bits + fifo_bits, cam_bits});
    }
    {
        // Composable throttler: the wrapped base's storage plus two
        // time-interleaved per-thread blame counters.
        const std::string prefix = "BreakHammer+";
        if (mechanism.size() > prefix.size() &&
            mechanism.compare(0, prefix.size(), prefix) == 0) {
            auto base = costFor(mechanism.substr(prefix.size()), n_rh,
                                timings);
            if (!base)
                return std::nullopt;    // design-point gap propagates
            double w = static_cast<double>(timings.tREFW) /
                static_cast<double>(std::max<Cycle>(1, timings.tRC));
            double t = std::max(1.0, static_cast<double>(n_rh) / 4.0);
            double denom = std::max(4.0, w / (2.0 * t));
            double counter_bits = ceilLog2(static_cast<std::uint64_t>(
                std::ceil(2.0 * denom)) + 1) + 1;
            Storage throttler{2.0 * threads * counter_bits, 0.0};
            HwCost c = toCost(mechanism,
                              Storage{base->sramKiB * 8192.0 +
                                          throttler.sramBits,
                                      base->camKiB * 8192.0});
            c.scalable = base->scalable;
            return c;
        }
    }
    if (mechanism == "Baseline")
        return toCost(mechanism, Storage{0.0, 0.0});
    // Unknown names fail loudly: a silent nullopt here once let a
    // sweep print zero-cost "x" rows for a misspelled mechanism.
    fatal("no hardware cost model for mechanism '%s' (known design-point "
          "gaps return empty rows; unknown names are a bug)",
          mechanism.c_str());
}

} // namespace bh
