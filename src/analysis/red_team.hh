/**
 * @file
 * Red-team search driver: adversarial evolutionary search over the
 * frequency-domain fuzz-pattern space against one deployed mitigation.
 *
 * Methodology (Blacksmith-style, adapted to a deterministic simulator —
 * see DESIGN.md "Security verification"):
 *
 *   1. *Generate*: sample a population of FuzzPatternParams vectors
 *      uniformly from the FuzzSpace bounds.
 *   2. *Evaluate*: run each pattern through the normal experiment
 *      harness (one attacker thread + the security benign trio) with the
 *      SecurityOracle attached, scoring by the measured disturbance
 *      margin, then ground-truth bit flips, then the raw window peak.
 *   3. *Select & mutate*: keep the top `survivors`, refill the
 *      population with their mutations, and iterate for `generations`.
 *
 * Determinism contract: the whole chain draws from ONE SplitMix64
 * stream seeded with RedTeamConfig::seed, evaluations are memoized by
 * serialized pattern (an elitist survivor is never re-simulated), and
 * ties are broken by the serialized string — so a (config, seed) pair
 * fully determines every pattern tried, every score, and the final
 * best. Each search chain is self-contained ("island model"): the
 * bench-level fuzz experiment runs one chain per (mechanism, island)
 * sweep cell, which keeps cells independent and lets the fuzz grid
 * shard/--resume/--list like any other experiment.
 */

#ifndef BH_ANALYSIS_RED_TEAM_HH
#define BH_ANALYSIS_RED_TEAM_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workloads/fuzz_patterns.hh"

namespace bh
{

/** One red-team search chain's configuration. */
struct RedTeamConfig
{
    /**
     * Experiment the patterns are evaluated under. Must have the
     * SecurityOracle enabled and one thread more than `benignApps` (the
     * attacker takes slot 0). Use the bench layer's securityConfig so a
     * found pattern replays under exactly the finding conditions.
     */
    ExperimentConfig base;
    /** Benign co-runner apps filling threads 1..N-1 of every mix. */
    std::vector<std::string> benignApps;
    /** Search-space bounds patterns are sampled from / mutated within. */
    FuzzSpace space;
    unsigned population = 6;    ///< patterns evaluated per generation
    unsigned generations = 4;   ///< selection/mutation rounds
    unsigned survivors = 2;     ///< elites kept (and mutated) per round
    /** Master seed of the chain: the single RNG stream every sample and
     *  mutation draws from, and the provenance seed stamped into every
     *  pattern this chain emits. */
    std::uint64_t seed = 1;
};

/** One evaluated pattern with its oracle verdict. */
struct RedTeamAttempt
{
    FuzzPatternParams params;
    std::string serialized;     ///< replayable form (pattern identity)
    unsigned generation = 0;    ///< round it was first evaluated in
    double margin = 0.0;        ///< max window ACTs / N_RH
    std::uint64_t maxWindowActs = 0;
    std::uint64_t bitFlips = 0;
    std::uint64_t blockedActs = 0;
    double attackIpc = 0.0;
};

/**
 * Attack-strength order: higher disturbance margin first, then more
 * ground-truth bit flips, then the higher raw window peak; final
 * tie-break on the serialized string keeps sorts deterministic.
 */
bool strongerAttempt(const RedTeamAttempt &a, const RedTeamAttempt &b);

/** Outcome of one search chain. */
struct RedTeamResult
{
    RedTeamAttempt best;        ///< strongest pattern ever evaluated
    std::vector<RedTeamAttempt> generationBest;     ///< per round
    unsigned evaluations = 0;   ///< simulations actually run
    unsigned memoHits = 0;      ///< re-scored patterns served from memo
};

/** Run one deterministic search chain (see the file comment). */
RedTeamResult redTeamSearch(const RedTeamConfig &cfg);

} // namespace bh

#endif // BH_ANALYSIS_RED_TEAM_HH
