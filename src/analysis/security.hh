/**
 * @file
 * Security analysis of BlockHammer (Section 5, Tables 2 and 3).
 *
 * Models every possible per-epoch activation pattern of an aggressor row
 * under RowBlocker (the five epoch types T0-T4), derives the maximum
 * activation count each epoch type admits, and exhaustively searches for
 * an epoch sequence that would accumulate N_RH activations within a
 * refresh window while satisfying the type-transition constraints. The
 * paper uses an analytical solver (WolframAlpha) for this search; we
 * enumerate — the window only spans a handful of epochs.
 */

#ifndef BH_ANALYSIS_SECURITY_HH
#define BH_ANALYSIS_SECURITY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "blockhammer/config.hh"

namespace bh
{

/** Epoch types of Table 2. */
enum class EpochType
{
    T0, T1, T2, T3, T4,
};

/** Table 2 row: activation bounds of one epoch type. */
struct EpochBound
{
    EpochType type;
    std::string descrPrev;      ///< N_{ep-1} range
    std::string descrCur;       ///< N_ep range
    std::int64_t nepMax = 0;    ///< maximum N_ep
};

/** Result of the attack-feasibility search. */
struct FeasibilityResult
{
    bool attackPossible = false;
    /** Largest activation count any epoch sequence can reach in tREFW. */
    std::int64_t maxActsInWindow = 0;
    /** The bound the attack must beat (N_RH). */
    std::int64_t nRH = 0;
    /** N_RH* (the derated budget RowBlocker enforces). */
    std::int64_t nRHStar = 0;
    /** Best sequence found (epoch types). */
    std::vector<EpochType> bestSequence;
};

/** Section 5 analyzer. */
class SecurityAnalyzer
{
  public:
    explicit SecurityAnalyzer(const BlockHammerConfig &config);

    /** Table 2: per-type maximum activation counts. */
    std::vector<EpochBound> epochBounds() const;

    /**
     * Exhaustive feasibility search over epoch sequences spanning one
     * refresh window (Table 3's constraint system). Uses exact dynamic
     * maximization: each epoch's capacity depends on the activation count
     * carried in from the previous epoch through the active CBF.
     */
    FeasibilityResult analyze() const;

    /** Maximum activations in one epoch given the previous epoch's count. */
    std::int64_t epochCapacity(std::int64_t prev_epoch_acts) const;

    /** Epoch length tCBF/2 in cycles. */
    Cycle epochLength() const { return tEp; }

  private:
    BlockHammerConfig cfg;
    Cycle tEp = 0;
    Cycle tDelay = 0;
};

const char *epochTypeName(EpochType type);

} // namespace bh

#endif // BH_ANALYSIS_SECURITY_HH
