/**
 * @file
 * Hardware cost model (Section 6.1 / Table 4 substitute).
 *
 * The paper uses CACTI 6.0 and Synopsys DC, neither available offline.
 * We model storage structures analytically: each mechanism's SRAM and CAM
 * bit counts are derived from its actual configured geometry at a given
 * RowHammer threshold, and converted to area / access energy / static
 * power with per-bit technology constants calibrated against the paper's
 * published BlockHammer N_RH=32K data point (0.14 mm^2, 20.30 pJ,
 * 22.27 mW). Relative scaling across mechanisms and thresholds — the
 * claim Table 4 supports — then follows from the storage math.
 */

#ifndef BH_ANALYSIS_HWCOST_HH
#define BH_ANALYSIS_HWCOST_HH

#include <optional>
#include <string>
#include <vector>

#include "dram/timing.hh"

namespace bh
{

/** Technology constants (65 nm, calibrated; see file comment). */
struct TechParams
{
    double sramAreaUm2PerBit = 0.28;
    double camAreaUm2PerBit = 0.56;     ///< CAM cell ~2x SRAM cell
    double accessEnergyPjPerSqrtBit = 0.0289;
    double camEnergyFactor = 2.0;       ///< parallel match lines
    double staticPowerNwPerBit = 50.4;
    double camPowerFactor = 1.6;
    double cpuDieMm2 = 917.0;           ///< 28-core Xeon reference die
};

/** Cost breakdown of one mechanism's metadata. */
struct HwCost
{
    std::string mechanism;
    double sramKiB = 0.0;
    double camKiB = 0.0;
    double areaMm2 = 0.0;
    double cpuAreaPct = 0.0;
    double accessEnergyPj = 0.0;
    double staticPowerMw = 0.0;
    bool scalable = true;   ///< false: fixed design point (PRoHIT, MRLoc)
};

/** Per-rank storage requirement of a structure. */
struct Storage
{
    double sramBits = 0.0;
    double camBits = 0.0;
};

/** Analytical area/energy/power model. */
class HwCostModel
{
  public:
    /**
     * Storage models are per channel (one mechanism instance per memory
     * channel, Table 5); `channels` scales the whole-CPU area percentage.
     * The default of 4 matches the paper's Xeon reference point.
     */
    explicit HwCostModel(const TechParams &params = TechParams{},
                         unsigned banks = 16, unsigned threads = 8,
                         unsigned channels = 4);

    /**
     * Cost of `mechanism` configured for threshold `n_rh` under `timings`.
     * Returns nullopt for mechanisms that cannot be configured at the
     * requested threshold (PRoHIT/MRLoc away from their design point,
     * and BreakHammer compositions over them). A name with no cost
     * model at all is fatal(): unknown mechanisms must fail loudly, not
     * produce zero-cost rows.
     */
    std::optional<HwCost> costFor(const std::string &mechanism,
                                  std::uint32_t n_rh,
                                  const DramTimings &timings) const;

    /** Storage of BlockHammer's individual components (Table 4 rows). */
    Storage blockHammerDcbf(std::uint32_t n_rh) const;
    Storage blockHammerHistory(std::uint32_t n_rh,
                               const DramTimings &timings) const;
    Storage blockHammerThrottler(std::uint32_t n_rh) const;

    /** Convert storage to cost via the technology constants. */
    HwCost toCost(const std::string &name, const Storage &storage) const;

    const TechParams &params() const { return tech; }

  private:
    TechParams tech;
    unsigned banks = 0;
    unsigned threads = 0;
    unsigned channels = 0;
};

} // namespace bh

#endif // BH_ANALYSIS_HWCOST_HH
