/**
 * @file
 * End-to-end security-verification oracle for the paper's central claim
 * (Sections 5 and 8.2): under BlockHammer, no DRAM row is ever
 * activated N_RH times within any time window of length tREFW.
 *
 * The oracle observes every demand activation a memory channel issues
 * and maintains, per (bank, row), the activation count inside a
 * *sliding* tREFW window. Sliding windows are strictly stronger than
 * the between-refresh counters the HammerObserver keeps: an attack that
 * hammers N_RH/2 times just before a row's refresh and N_RH/2 just
 * after shows only N_RH/2 per refresh interval, yet a victim whose own
 * refresh sits half a window out of phase absorbs the full N_RH of
 * disturbance. A row's own refresh therefore does NOT reset its sliding
 * count (the straddle case); it only resets the secondary
 * between-own-refresh counter the oracle also tracks for comparison.
 *
 * The verdict of a run is its *disturbance margin*: the maximum sliding
 * window count any row ever reached, divided by N_RH. margin < 1 means
 * the activation-bounding guarantee held; margin >= 1 records the first
 * violation cycle. Mechanisms that protect by refreshing victims
 * instead of throttling aggressors (PARA, PRoHIT, MRLoc) legitimately
 * run at margin >= 1 with zero bit-flips — the bench/secsweep
 * experiment reports both so the two defense classes are
 * distinguishable as data.
 */

#ifndef BH_ANALYSIS_SECURITY_ORACLE_HH
#define BH_ANALYSIS_SECURITY_ORACLE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "dram/org.hh"

namespace bh
{

/** Oracle configuration: the claim's threshold and window. */
struct SecurityOracleConfig
{
    std::uint32_t nRH = 32768;      ///< RowHammer threshold N_RH
    Cycle windowCycles = 0;         ///< tREFW in CPU cycles (> 0)
};

/** Peak sliding-window observation of a run. */
struct OraclePeak
{
    std::uint64_t acts = 0;         ///< max window count reached
    unsigned bank = 0;
    RowId row = 0;
    Cycle cycle = 0;                ///< when the max was reached
};

/** Sliding-window per-row activation counter for one memory channel. */
class SecurityOracle
{
  public:
    SecurityOracle(const DramOrg &org, const SecurityOracleConfig &config);

    /** Record a demand activation of (bank, row) at `now`. */
    void onActivate(unsigned bank, RowId row, Cycle now);

    /** Record a refresh of one row (resets the between-refresh count). */
    void onRowRefresh(unsigned bank, RowId row);

    /** Record an auto-refresh sweep of a row range in every bank. */
    void onAutoRefresh(RowId first_row, unsigned num_rows);

    /** Max sliding-window count any row ever reached. */
    std::uint64_t maxWindowActs() const { return peakState.acts; }

    /** maxWindowActs / N_RH — the security verdict (>= 1 = violated). */
    double
    margin() const
    {
        return static_cast<double>(peakState.acts) / cfg.nRH;
    }

    /** Where and when the peak was observed. */
    const OraclePeak &peak() const { return peakState; }

    /** First cycle any row's window count reached N_RH (kNoEventCycle
     *  when the bound held for the whole run). */
    Cycle firstViolationCycle() const { return firstViolation; }

    /** Distinct rows whose window count ever reached N_RH. */
    std::uint64_t violatingRows() const { return numViolatingRows; }

    /** Max activations any row received between its own refreshes (the
     *  weaker, refresh-aligned counter; see file comment). */
    std::uint64_t maxActsBetweenRefreshes() const { return maxSinceRefresh; }

    /** Total activations observed. */
    std::uint64_t activationCount() const { return acts; }

    /** Current window count of one row at `now` (test introspection;
     *  prunes expired activations as a side effect). */
    std::uint32_t currentWindowActs(unsigned bank, RowId row, Cycle now);

    /** Activations of one row since its own last refresh. */
    std::uint32_t
    actsSinceRefresh(unsigned bank, RowId row) const
    {
        return sinceRefresh[index(bank, row)];
    }

    const SecurityOracleConfig &config() const { return cfg; }

  private:
    struct RowState
    {
        std::deque<Cycle> window;       ///< act cycles, oldest first
        bool violated = false;
    };

    std::size_t
    index(unsigned bank, RowId row) const
    {
        return static_cast<std::size_t>(bank) * rows + row;
    }

    // bh-lint: allow(observer-const) private helper mutating the oracle's own window state, not an observer hook
    void prune(RowState &state, Cycle now);

    SecurityOracleConfig cfg;
    unsigned rows = 0;
    unsigned banks = 0;
    /** Sparse per-row sliding windows, keyed by flat (bank, row). */
    std::unordered_map<std::size_t, RowState> touched;
    /** Dense between-own-refresh counters (reset on refresh). */
    std::vector<std::uint32_t> sinceRefresh;
    OraclePeak peakState;
    Cycle firstViolation = kNoEventCycle;
    std::uint64_t numViolatingRows = 0;
    std::uint64_t maxSinceRefresh = 0;
    std::uint64_t acts = 0;
};

} // namespace bh

#endif // BH_ANALYSIS_SECURITY_ORACLE_HH
