#include "analysis/security.hh"

#include <algorithm>

#include "common/log.hh"

namespace bh
{

const char *
epochTypeName(EpochType type)
{
    switch (type) {
      case EpochType::T0: return "T0";
      case EpochType::T1: return "T1";
      case EpochType::T2: return "T2";
      case EpochType::T3: return "T3";
      case EpochType::T4: return "T4";
    }
    return "?";
}

SecurityAnalyzer::SecurityAnalyzer(const BlockHammerConfig &config)
    : cfg(config), tEp(config.tCBF / 2), tDelay(config.tDelay())
{
}

std::int64_t
SecurityAnalyzer::epochCapacity(std::int64_t prev_epoch_acts) const
{
    std::int64_t nbl = cfg.nBL;
    if (prev_epoch_acts >= nbl) {
        // Blacklisted from the start: one activation per tDelay.
        return tEp / tDelay + 1;
    }
    // Free (un-blacklisted) activations until the active CBF, which also
    // saw the previous epoch, reaches N_BL; then tDelay pacing.
    std::int64_t free_acts = nbl - prev_epoch_acts;
    std::int64_t fastest_free = tEp / cfg.tRC + 1;
    if (free_acts >= fastest_free)
        return fastest_free;    // epoch too short to even get blacklisted
    Cycle remaining = tEp - free_acts * cfg.tRC;
    return free_acts + remaining / tDelay + 1;
}

std::vector<EpochBound>
SecurityAnalyzer::epochBounds() const
{
    std::int64_t nbl = cfg.nBL;
    double rc_ratio = 1.0 - static_cast<double>(cfg.tRC) /
        static_cast<double>(tDelay);
    auto t2max = static_cast<std::int64_t>(
        static_cast<double>(tEp) / static_cast<double>(tDelay) +
        rc_ratio * static_cast<double>(nbl));
    return {
        {EpochType::T0, "< N_BL", "N_ep < N_BL*", nbl - 1},
        {EpochType::T1, "< N_BL", "N_BL* <= N_ep < N_BL", nbl - 1},
        {EpochType::T2, "< N_BL", "N_ep >= N_BL", t2max},
        {EpochType::T3, ">= N_BL", "N_ep < N_BL", nbl - 1},
        {EpochType::T4, ">= N_BL", "N_ep >= N_BL", tEp / tDelay},
    };
}

FeasibilityResult
SecurityAnalyzer::analyze() const
{
    // A tREFW window can overlap at most floor(tREFW/tEp) + 1 epochs;
    // granting the attacker that many *full* epochs upper-bounds what any
    // alignment of the window can admit.
    auto epochs = static_cast<std::size_t>(cfg.tREFW / tEp + 1);
    std::int64_t nbl = cfg.nBL;

    // DP over the carried state: the previous epoch's activation count,
    // clamped to N_BL (all counts >= N_BL behave identically because the
    // active CBF blacklists immediately). States 0..N_BL.
    std::size_t states = static_cast<std::size_t>(nbl) + 1;
    std::vector<std::int64_t> value(states, 0);     // V(epoch e+1, state)
    std::vector<std::vector<std::int64_t>> choice(
        epochs, std::vector<std::int64_t>(states, 0));

    for (std::size_t e = epochs; e-- > 0;) {
        // prefix_best[s] = max over s' <= s of (s' + V(e+1, s')).
        std::vector<std::int64_t> prefix_best(states);
        std::int64_t best = 0;
        for (std::size_t s = 0; s < states; ++s) {
            best = std::max(best, static_cast<std::int64_t>(s) + value[s]);
            prefix_best[s] = best;
        }
        std::vector<std::int64_t> next_value(states);
        for (std::size_t prev = 0; prev < states; ++prev) {
            std::int64_t cap = epochCapacity(static_cast<std::int64_t>(prev));
            // Option A: stay below N_BL this epoch (next state = N_ep).
            std::int64_t below_cap =
                std::min<std::int64_t>(cap, nbl - 1);
            std::int64_t best_total = prefix_best[
                static_cast<std::size_t>(std::max<std::int64_t>(0, below_cap))];
            std::int64_t best_choice = below_cap;
            // Option B: blast through N_BL (next state = N_BL).
            if (cap >= nbl) {
                std::int64_t total = cap + value[static_cast<std::size_t>(nbl)];
                if (total > best_total) {
                    best_total = total;
                    best_choice = cap;
                }
            }
            next_value[prev] = best_total;
            choice[e][prev] = best_choice;
        }
        value = std::move(next_value);
    }

    FeasibilityResult res;
    res.nRH = cfg.nRH;
    res.nRHStar = cfg.nRHStar();
    res.maxActsInWindow = value[0];     // rows start untracked
    res.attackPossible = res.maxActsInWindow >= res.nRH;

    // Reconstruct the best sequence and classify epoch types.
    std::int64_t prev = 0;
    for (std::size_t e = 0; e < epochs; ++e) {
        std::int64_t nep = choice[e][static_cast<std::size_t>(prev)];
        EpochType type;
        if (prev < nbl) {
            if (nep >= nbl)
                type = EpochType::T2;
            else if (nep + prev >= nbl)
                type = EpochType::T1;
            else
                type = EpochType::T0;
        } else {
            type = (nep >= nbl) ? EpochType::T4 : EpochType::T3;
        }
        res.bestSequence.push_back(type);
        prev = std::min<std::int64_t>(nep, nbl);
    }
    return res;
}

} // namespace bh
