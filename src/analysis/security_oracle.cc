#include "analysis/security_oracle.hh"

#include "common/log.hh"

namespace bh
{

SecurityOracle::SecurityOracle(const DramOrg &org,
                               const SecurityOracleConfig &config)
    : cfg(config), rows(org.rowsPerBank), banks(org.banksPerChannel())
{
    if (cfg.windowCycles <= 0)
        fatal("SecurityOracle: windowCycles must be positive");
    if (cfg.nRH == 0)
        fatal("SecurityOracle: nRH must be positive");
    sinceRefresh.assign(static_cast<std::size_t>(banks) * rows, 0);
}

void
SecurityOracle::prune(RowState &state, Cycle now)
{
    // The window is (now - tREFW, now]: an activation exactly tREFW ago
    // has left the window of an activation happening now.
    Cycle horizon = now - cfg.windowCycles;
    while (!state.window.empty() && state.window.front() <= horizon)
        state.window.pop_front();
}

void
SecurityOracle::onActivate(unsigned bank, RowId row, Cycle now)
{
    ++acts;
    std::size_t i = index(bank, row);

    auto &since = sinceRefresh[i];
    ++since;
    maxSinceRefresh = std::max<std::uint64_t>(maxSinceRefresh, since);

    RowState &state = touched[i];
    state.window.push_back(now);
    prune(state, now);
    auto count = static_cast<std::uint64_t>(state.window.size());
    if (count > peakState.acts)
        peakState = OraclePeak{count, bank, row, now};
    if (count >= cfg.nRH) {
        if (firstViolation == kNoEventCycle)
            firstViolation = now;
        if (!state.violated) {
            state.violated = true;
            ++numViolatingRows;
        }
    }
}

void
SecurityOracle::onRowRefresh(unsigned bank, RowId row)
{
    // Refreshing a row restores its victims' charge but does not erase
    // the activations it already issued: the sliding window is left
    // intact (straddle attacks must remain visible); only the
    // refresh-aligned counter resets.
    sinceRefresh[index(bank, row)] = 0;
}

void
SecurityOracle::onAutoRefresh(RowId first_row, unsigned num_rows)
{
    for (unsigned b = 0; b < banks; ++b)
        for (unsigned r = 0; r < num_rows; ++r)
            onRowRefresh(b, static_cast<RowId>((first_row + r) % rows));
}

std::uint32_t
SecurityOracle::currentWindowActs(unsigned bank, RowId row, Cycle now)
{
    auto it = touched.find(index(bank, row));
    if (it == touched.end())
        return 0;
    prune(it->second, now);
    return static_cast<std::uint32_t>(it->second.window.size());
}

} // namespace bh
