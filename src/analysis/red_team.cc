#include "analysis/red_team.hh"

#include <algorithm>
#include <map>

#include "common/log.hh"
#include "common/rng.hh"

namespace bh
{

bool
strongerAttempt(const RedTeamAttempt &a, const RedTeamAttempt &b)
{
    if (a.margin != b.margin)
        return a.margin > b.margin;
    if (a.bitFlips != b.bitFlips)
        return a.bitFlips > b.bitFlips;
    if (a.maxWindowActs != b.maxWindowActs)
        return a.maxWindowActs > b.maxWindowActs;
    return a.serialized < b.serialized;
}

RedTeamResult
redTeamSearch(const RedTeamConfig &cfg)
{
    if (!cfg.base.securityOracle)
        fatal("redTeamSearch: the base config must enable the "
              "SecurityOracle (there is no score without it)");
    if (cfg.base.threads != cfg.benignApps.size() + 1)
        fatal("redTeamSearch: %u threads for 1 attacker + %zu benign apps",
              cfg.base.threads, cfg.benignApps.size());
    if (cfg.population == 0 || cfg.generations == 0)
        fatal("redTeamSearch: population and generations must be positive");
    unsigned survivors =
        std::max(1u, std::min(cfg.survivors, cfg.population));

    Rng rng(cfg.seed);
    RedTeamResult result;
    std::map<std::string, RedTeamAttempt> memo;

    auto evaluate = [&](FuzzPatternParams params,
                        unsigned gen) -> RedTeamAttempt {
        // Stamp the chain seed as provenance before serializing: the
        // serialized string is the pattern's permanent identity and
        // must name the lineage it came from.
        params.seed = cfg.seed;
        std::string ser = serializeFuzzPattern(params);
        auto it = memo.find(ser);
        if (it != memo.end()) {
            ++result.memoHits;
            return it->second;
        }
        MixSpec mix = {};
        mix.name = "redteam";
        mix.apps.push_back(kFuzzPatternPrefix + ser);
        for (const auto &app : cfg.benignApps)
            mix.apps.push_back(app);
        RunResult res = runExperiment(cfg.base, mix);

        RedTeamAttempt at;
        at.params = params;
        at.serialized = ser;
        at.generation = gen;
        at.margin = res.secMargin;
        at.maxWindowActs = res.secMaxWindowActs;
        at.bitFlips = res.bitFlips;
        at.blockedActs = res.blockedActs;
        at.attackIpc = res.ipc.empty() ? 0.0 : res.ipc[0];
        ++result.evaluations;
        memo.emplace(ser, at);
        return at;
    };

    std::vector<RedTeamAttempt> pop;
    for (unsigned gen = 0; gen < cfg.generations; ++gen) {
        std::vector<FuzzPatternParams> cand;
        if (gen == 0) {
            for (unsigned i = 0; i < cfg.population; ++i)
                cand.push_back(sampleFuzzPattern(cfg.space, rng));
        } else {
            // Elitist refill: survivors carry over verbatim (memoized,
            // so they cost nothing to "re-evaluate"), the rest of the
            // population are their mutations, parents round-robin.
            std::sort(pop.begin(), pop.end(), strongerAttempt);
            for (unsigned s = 0; s < survivors; ++s)
                cand.push_back(pop[s].params);
            while (cand.size() < cfg.population) {
                const FuzzPatternParams &parent =
                    pop[(cand.size() - survivors) % survivors].params;
                cand.push_back(
                    mutateFuzzPattern(parent, cfg.space, rng));
            }
        }

        std::vector<RedTeamAttempt> evals;
        for (const auto &params : cand)
            evals.push_back(evaluate(params, gen));
        std::sort(evals.begin(), evals.end(), strongerAttempt);
        result.generationBest.push_back(evals.front());
        pop = std::move(evals);
    }

    result.best = result.generationBest.front();
    for (const auto &at : result.generationBest)
        if (strongerAttempt(at, result.best))
            result.best = at;
    return result;
}

} // namespace bh
