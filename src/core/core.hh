/**
 * @file
 * Simplified out-of-order core (Table 5: 3.2 GHz, 4-wide issue, 128-entry
 * instruction window). Non-memory instructions execute in one cycle;
 * memory operations access the shared LLC (or bypass it) and block
 * retirement until their data returns, bounding memory-level parallelism
 * by the window size exactly as Ramulator's trace CPU does.
 */

#ifndef BH_CORE_CORE_HH
#define BH_CORE_CORE_HH

#include <deque>
#include <memory>

#include "cache/llc.hh"
#include "core/trace.hh"

namespace bh
{

/** Core configuration. */
struct CoreConfig
{
    unsigned issueWidth = 4;
    unsigned retireWidth = 4;
    unsigned windowSize = 128;
    /** Per-core outstanding memory requests (L1 MSHR-equivalent). */
    unsigned maxOutstandingMem = 48;
};

/** One hardware thread executing a trace. */
class Core
{
  public:
    /**
     * @param thread this core's thread id
     * @param trace instruction stream (not owned)
     * @param llc shared cache, or nullptr for cacheless configs
     * @param mem memory system for bypass accesses
     */
    Core(const CoreConfig &config, ThreadId thread, TraceSource &trace,
         Llc *llc, MemSystem &mem);

    /** Advance one cycle. */
    void tick(Cycle now);

    /** Instructions retired so far. */
    std::uint64_t retired() const { return instrRetired; }

    /** Memory operations issued so far. */
    std::uint64_t memOps() const { return numMemOps; }

    /** Cycles the core could not issue due to resource rejection. */
    std::uint64_t stallCycles() const { return numStallCycles; }

    /** True if the trace ended and all work drained. */
    bool done() const { return traceEnded && pending.empty(); }

    ThreadId threadId() const { return thread; }

  private:
    /** An in-flight memory instruction, ordered by window position. */
    struct MemOp
    {
        std::uint64_t pos;              ///< instruction index in the window
        std::shared_ptr<Cycle> doneAt;  ///< -1 while outstanding
    };

    bool issueMemOp(Cycle now);

    CoreConfig cfg;
    ThreadId thread;
    TraceSource &trace;
    Llc *llc;
    MemSystem &mem;

    std::uint64_t instrIssued = 0;
    std::uint64_t instrRetired = 0;
    std::uint64_t numMemOps = 0;
    std::uint64_t numStallCycles = 0;

    std::uint32_t pendingBubbles = 0;
    bool havePendingMem = false;
    TraceEntry pendingMem;
    bool traceEnded = false;

    std::deque<MemOp> pending;
};

} // namespace bh

#endif // BH_CORE_CORE_HH
