/**
 * @file
 * Simplified out-of-order core (Table 5: 3.2 GHz, 4-wide issue, 128-entry
 * instruction window). Non-memory instructions execute in one cycle;
 * memory operations access the shared LLC (or bypass it) and block
 * retirement until their data returns, bounding memory-level parallelism
 * by the window size exactly as Ramulator's trace CPU does.
 */

#ifndef BH_CORE_CORE_HH
#define BH_CORE_CORE_HH

#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "cache/llc.hh"
#include "core/trace.hh"

namespace bh
{

/** Core configuration. */
struct CoreConfig
{
    unsigned issueWidth = 4;
    unsigned retireWidth = 4;
    unsigned windowSize = 128;
    /** Per-core outstanding memory requests (L1 MSHR-equivalent). */
    unsigned maxOutstandingMem = 48;
};

/** One hardware thread executing a trace. */
class Core
{
  public:
    /**
     * @param thread this core's thread id
     * @param trace instruction stream (not owned)
     * @param llc shared cache, or nullptr for cacheless configs
     * @param mem memory system for bypass accesses
     */
    Core(const CoreConfig &config, ThreadId thread, TraceSource &trace,
         Llc *llc, MemSystem &mem);

    /** Advance one cycle. */
    void tick(Cycle now);

    /** Instructions retired so far. */
    std::uint64_t retired() const { return instrRetired; }

    /** Memory operations issued so far. */
    std::uint64_t memOps() const { return numMemOps; }

    /** Cycles the core could not issue due to resource rejection. */
    std::uint64_t stallCycles() const { return numStallCycles; }

    /**
     * Monotonic progress stamp: changes whenever the core retires or
     * issues anything. A tick that leaves the stamp unchanged was a
     * no-op, and the core stays a no-op until nextEventAt() (or an
     * external state change re-enables a rejected memory issue).
     */
    std::uint64_t
    progressStamp() const
    {
        return instrIssued + instrRetired + numMemOps;
    }

    /**
     * Cycle at which this blocked core can make progress on its own: the
     * completion time of the window-head memory op when known. Returns
     * kNoEventCycle when the wake-up depends on another component (a
     * memory issue slot freeing, a quota lifting) — those are bounded by
     * that component's own nextEventAt.
     */
    Cycle nextEventAt() const;

    /**
     * The event-skipping driver eliminated `n` cycles in which this core
     * would have re-attempted (and failed) the same memory issue.
     */
    void
    noteSkippedCycles(std::uint64_t n)
    {
        if (lastTickStalled)
            numStallCycles += n;
    }

    /**
     * True when the last tick was provably repeatable: re-running it
     * changes nothing (beyond replayable stall accounting) until
     * nextEventAt() or an external completion delivery. Queue-full
     * retries probe controller state every cycle and are never quiet
     * while controllers are active; MLP/MSHR-bound stalls are, because
     * they clear only by time or at a delivery boundary.
     */
    bool quietTick() const { return lastTickQuiet; }

    /** True if the trace ended and all work drained. */
    bool done() const { return traceEnded && pending.empty(); }

    ThreadId threadId() const { return thread; }

  private:
    /**
     * Completion state of one memory instruction, shared with the
     * completion callback registered at the LLC / memory system.
     * `counted` marks ops currently included in `outstandingUnknown`.
     */
    struct MemSlot
    {
        Cycle done = -1;        ///< -1 while the completion time is unknown
        bool counted = false;
    };

    /** An in-flight memory instruction, ordered by window position. */
    struct MemOp
    {
        std::uint64_t pos = 0;          ///< instruction index in the window
        std::shared_ptr<MemSlot> slot;
    };

    /**
     * O(1) memory-level-parallelism accounting (replaces scanning
     * `pending` on every issue attempt): ops with unknown completion
     * times are counted directly; known times sit in a min-heap and
     * drop out as simulated time passes them. Owned via shared_ptr so
     * completion callbacks parked in the LLC or controller can never
     * dangle, even if the Core is replaced with ops in flight.
     */
    struct MlpState
    {
        unsigned unknown = 0;
        std::priority_queue<Cycle, std::vector<Cycle>,
                            std::greater<Cycle>> knownDone;

        /** Ops past their completion time leave the outstanding set. */
        unsigned
        outstandingAt(Cycle now)
        {
            while (!knownDone.empty() && knownDone.top() <= now)
                knownDone.pop();
            return unknown + static_cast<unsigned>(knownDone.size());
        }
    };

    bool issueMemOp(Cycle now);

    CoreConfig cfg;
    ThreadId thread = 0;
    TraceSource &trace;
    Llc *llc;
    MemSystem &mem;

    std::uint64_t instrIssued = 0;
    std::uint64_t instrRetired = 0;
    std::uint64_t numMemOps = 0;
    std::uint64_t numStallCycles = 0;

    std::uint32_t pendingBubbles = 0;
    bool havePendingMem = false;
    TraceEntry pendingMem;
    bool traceEnded = false;
    bool lastTickStalled = false;
    bool lastTickQuiet = false;
    bool stallDeliveryBound = false;    ///< last rejection clears only at
                                        ///< a known time or a delivery
    std::shared_ptr<MemSlot> retrySlot;     ///< completion slot, reused
                                            ///< across rejected attempts

    std::deque<MemOp> pending;
    std::shared_ptr<MlpState> mlp = std::make_shared<MlpState>();
};

} // namespace bh

#endif // BH_CORE_CORE_HH
