/**
 * @file
 * Instruction-trace abstraction consumed by the core model.
 *
 * A trace entry compresses a run of non-memory instructions ("bubbles")
 * followed by at most one memory operation, the representation Ramulator's
 * trace CPU uses. Synthetic workload generators implement TraceSource.
 */

#ifndef BH_CORE_TRACE_HH
#define BH_CORE_TRACE_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace bh
{

/** One compressed trace record. */
struct TraceEntry
{
    std::uint32_t bubbles = 0;  ///< non-memory instructions before the op
    bool isMem = false;
    bool isWrite = false;
    bool bypassCache = false;   ///< non-temporal / clflush-style access
    Addr addr = 0;
};

/** Infinite (or finite) stream of trace entries. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next entry; returns false at end-of-trace. */
    virtual bool next(TraceEntry &entry) = 0;

    /** Restart the stream from the beginning (deterministic sources). */
    virtual void reset() = 0;
};

} // namespace bh

#endif // BH_CORE_TRACE_HH
