#include "core/core.hh"

#include <algorithm>

namespace bh
{

Core::Core(const CoreConfig &config, ThreadId thread_id, TraceSource &trace_src,
           Llc *llc_ptr, MemSystem &mem_system)
    : cfg(config), thread(thread_id), trace(trace_src), llc(llc_ptr),
      mem(mem_system)
{
}

void
Core::tick(Cycle now)
{
    std::uint64_t stamp_at_entry = progressStamp();

    // Retire in order, up to retireWidth per cycle. A memory instruction at
    // the window head blocks retirement until its data has returned.
    // Runs of non-memory instructions retire in one arithmetic step.
    for (unsigned r = 0; r < cfg.retireWidth;) {
        if (instrRetired >= instrIssued)
            break;
        if (!pending.empty() && pending.front().pos == instrRetired) {
            Cycle done = pending.front().slot->done;
            if (done < 0 || done > now)
                break;
            pending.pop_front();
            ++instrRetired;
            ++r;
            continue;
        }
        std::uint64_t stop = pending.empty()
            ? instrIssued : pending.front().pos;
        std::uint64_t k = std::min<std::uint64_t>(
            cfg.retireWidth - r, std::min(instrIssued, stop) - instrRetired);
        instrRetired += k;
        r += static_cast<unsigned>(k);
    }

    // Issue in order, up to issueWidth per cycle, bounded by the window.
    // Bubble runs issue in one arithmetic step.
    bool stalled = false;
    bool fetched = false;
    for (unsigned w = 0; w < cfg.issueWidth;) {
        std::uint64_t room = cfg.windowSize - (instrIssued - instrRetired);
        if (room == 0)
            break;
        if (pendingBubbles > 0) {
            std::uint64_t k = std::min<std::uint64_t>(
                {pendingBubbles, cfg.issueWidth - w, room});
            pendingBubbles -= static_cast<std::uint32_t>(k);
            instrIssued += k;
            w += static_cast<unsigned>(k);
            continue;
        }
        if (havePendingMem) {
            if (!issueMemOp(now)) {
                stalled = true;
                break;      // resource rejection; retry next cycle
            }
            havePendingMem = false;
            ++instrIssued;
            ++w;
            continue;
        }
        if (traceEnded)
            break;
        TraceEntry entry;
        if (!trace.next(entry)) {
            traceEnded = true;
            break;
        }
        pendingBubbles = entry.bubbles;
        if (entry.isMem) {
            havePendingMem = true;
            pendingMem = entry;
        }
        fetched = true;
        ++w;    // the fetch consumes this issue slot
    }
    lastTickStalled = stalled;
    if (stalled)
        ++numStallCycles;
    // Quiet means repeating this tick stays behavior-identical until
    // nextEventAt() or a completion delivery: nothing retired, issued,
    // or fetched (fetches mutate state without moving the stamp), and
    // any stall is delivery-bound — queue-full stalls probe lane state
    // that can change on any controller tick, so they must re-run every
    // cycle. This is the precondition for the chunked multi-channel
    // driver to replace core ticks with noteSkippedCycles().
    lastTickQuiet = !fetched && progressStamp() == stamp_at_entry &&
        (!stalled || stallDeliveryBound);
}

Cycle
Core::nextEventAt() const
{
    Cycle best = kNoEventCycle;
    // In-order retirement: only the window head matters. Its completion
    // time is known once the memory system has issued the access.
    if (!pending.empty() && pending.front().pos == instrRetired) {
        Cycle done = pending.front().slot->done;
        if (done >= 0)
            best = done;
    }
    // A rejected memory issue can also unblock by time alone: the
    // MSHR-style outstanding bound drops when any in-flight op reaches
    // its completion time.
    if (lastTickStalled && !mlp->knownDone.empty())
        best = std::min(best, mlp->knownDone.top());
    return best;
}

bool
Core::issueMemOp(Cycle now)
{
    // L1-MSHR-style bound on memory-level parallelism. The bound drops
    // by time alone (knownDone) or at a completion delivery — both
    // boundaries the chunked driver observes, so this stall flavor is
    // chunk-safe.
    stallDeliveryBound = true;
    if (mlp->outstandingAt(now) >= cfg.maxOutstandingMem)
        return false;

    // Reuse the completion slot across retries of the same rejected op.
    if (!retrySlot)
        retrySlot = std::make_shared<MemSlot>();
    std::shared_ptr<MemSlot> slot = retrySlot;
    auto on_done = [state = mlp, slot](Cycle done) {
        slot->done = done;
        if (slot->counted) {
            slot->counted = false;
            --state->unknown;
        }
        state->knownDone.push(done);
    };

    // Past the MLP gate, rejections hinge on queue/quota state a channel
    // lane can change on any tick: the core must retry every cycle.
    stallDeliveryBound = false;

    if (pendingMem.bypassCache || !llc) {
        // Cheap pre-gate: a full target queue rejects the submit anyway.
        if (mem.queueFull(pendingMem.isWrite ? ReqType::kWrite
                                             : ReqType::kRead,
                          pendingMem.addr))
            return false;
        Request req;
        req.addr = pendingMem.addr;
        req.type = pendingMem.isWrite ? ReqType::kWrite : ReqType::kRead;
        req.thread = thread;
        req.arrival = now;
        req.id = Request::nextId();
        if (pendingMem.isWrite) {
            // Posted write: completes once accepted.
            if (mem.submit(std::move(req)) != SubmitResult::kAccepted)
                return false;
            slot->done = now + 1;
            mlp->knownDone.push(slot->done);
        } else {
            req.onComplete = on_done;
            if (mem.submit(std::move(req)) != SubmitResult::kAccepted)
                return false;
        }
    } else {
        if (pendingMem.isWrite) {
            // Stores are posted: retire once the LLC accepts them.
            LlcResult res = llc->access(pendingMem.addr, true, thread, now,
                                        nullptr);
            if (res == LlcResult::kReject) {
                stallDeliveryBound = true;
                return false;
            }
            if (res == LlcResult::kRejectQueueFull)
                return false;
            slot->done = now + 1;
            mlp->knownDone.push(slot->done);
        } else {
            LlcResult res = llc->access(pendingMem.addr, false, thread, now,
                                        on_done);
            if (res == LlcResult::kReject) {
                stallDeliveryBound = true;
                return false;
            }
            if (res == LlcResult::kRejectQueueFull)
                return false;
        }
    }
    // Completion still unknown (no callback fired yet): count the op as
    // outstanding until its time arrives.
    if (slot->done < 0) {
        slot->counted = true;
        ++mlp->unknown;
    }
    pending.push_back(MemOp{instrIssued, std::move(slot)});
    retrySlot.reset();      // consumed; next op gets a fresh slot
    ++numMemOps;
    return true;
}

} // namespace bh
