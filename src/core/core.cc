#include "core/core.hh"

namespace bh
{

Core::Core(const CoreConfig &config, ThreadId thread_id, TraceSource &trace_src,
           Llc *llc_ptr, MemSystem &mem_system)
    : cfg(config), thread(thread_id), trace(trace_src), llc(llc_ptr),
      mem(mem_system)
{
}

void
Core::tick(Cycle now)
{
    // Retire in order, up to retireWidth per cycle. A memory instruction at
    // the window head blocks retirement until its data has returned.
    for (unsigned r = 0; r < cfg.retireWidth; ++r) {
        if (instrRetired >= instrIssued)
            break;
        if (!pending.empty() && pending.front().pos == instrRetired) {
            Cycle done = *pending.front().doneAt;
            if (done < 0 || done > now)
                break;
            pending.pop_front();
        }
        ++instrRetired;
    }

    // Issue in order, up to issueWidth per cycle, bounded by the window.
    bool stalled = false;
    for (unsigned w = 0; w < cfg.issueWidth; ++w) {
        if (instrIssued - instrRetired >= cfg.windowSize)
            break;
        if (pendingBubbles > 0) {
            --pendingBubbles;
            ++instrIssued;
            continue;
        }
        if (havePendingMem) {
            if (!issueMemOp(now)) {
                stalled = true;
                break;      // resource rejection; retry next cycle
            }
            havePendingMem = false;
            ++instrIssued;
            continue;
        }
        TraceEntry entry;
        if (!trace.next(entry)) {
            traceEnded = true;
            break;
        }
        pendingBubbles = entry.bubbles;
        if (entry.isMem) {
            havePendingMem = true;
            pendingMem = entry;
        }
        if (pendingBubbles == 0 && !entry.isMem)
            continue;       // empty record, fetch again next slot
    }
    if (stalled)
        ++numStallCycles;
}

bool
Core::issueMemOp(Cycle now)
{
    // L1-MSHR-style bound on memory-level parallelism.
    unsigned outstanding = 0;
    for (const auto &op : pending)
        if (*op.doneAt < 0 || *op.doneAt > now)
            ++outstanding;
    if (outstanding >= cfg.maxOutstandingMem)
        return false;

    auto done_at = std::make_shared<Cycle>(-1);
    auto on_done = [done_at](Cycle done) { *done_at = done; };

    if (pendingMem.bypassCache || !llc) {
        Request req;
        req.addr = pendingMem.addr;
        req.type = pendingMem.isWrite ? ReqType::kWrite : ReqType::kRead;
        req.thread = thread;
        req.arrival = now;
        req.id = Request::nextId();
        if (pendingMem.isWrite) {
            // Posted write: completes once accepted.
            if (mem.submit(std::move(req)) != SubmitResult::kAccepted)
                return false;
            *done_at = now + 1;
        } else {
            req.onComplete = on_done;
            if (mem.submit(std::move(req)) != SubmitResult::kAccepted)
                return false;
        }
    } else {
        if (pendingMem.isWrite) {
            // Stores are posted: retire once the LLC accepts them.
            LlcResult res = llc->access(pendingMem.addr, true, thread, now,
                                        nullptr);
            if (res == LlcResult::kReject)
                return false;
            *done_at = now + 1;
        } else {
            LlcResult res = llc->access(pendingMem.addr, false, thread, now,
                                        on_done);
            if (res == LlcResult::kReject)
                return false;
        }
    }
    pending.push_back(MemOp{instrIssued, done_at});
    ++numMemOps;
    return true;
}

} // namespace bh
