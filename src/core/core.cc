#include "core/core.hh"

#include <algorithm>

namespace bh
{

Core::Core(const CoreConfig &config, ThreadId thread_id, TraceSource &trace_src,
           Llc *llc_ptr, MemSystem &mem_system)
    : cfg(config), thread(thread_id), trace(trace_src), llc(llc_ptr),
      mem(mem_system)
{
}

void
Core::tick(Cycle now)
{
    // Retire in order, up to retireWidth per cycle. A memory instruction at
    // the window head blocks retirement until its data has returned.
    // Runs of non-memory instructions retire in one arithmetic step.
    for (unsigned r = 0; r < cfg.retireWidth;) {
        if (instrRetired >= instrIssued)
            break;
        if (!pending.empty() && pending.front().pos == instrRetired) {
            Cycle done = pending.front().slot->done;
            if (done < 0 || done > now)
                break;
            pending.pop_front();
            ++instrRetired;
            ++r;
            continue;
        }
        std::uint64_t stop = pending.empty()
            ? instrIssued : pending.front().pos;
        std::uint64_t k = std::min<std::uint64_t>(
            cfg.retireWidth - r, std::min(instrIssued, stop) - instrRetired);
        instrRetired += k;
        r += static_cast<unsigned>(k);
    }

    // Issue in order, up to issueWidth per cycle, bounded by the window.
    // Bubble runs issue in one arithmetic step.
    bool stalled = false;
    for (unsigned w = 0; w < cfg.issueWidth;) {
        std::uint64_t room = cfg.windowSize - (instrIssued - instrRetired);
        if (room == 0)
            break;
        if (pendingBubbles > 0) {
            std::uint64_t k = std::min<std::uint64_t>(
                {pendingBubbles, cfg.issueWidth - w, room});
            pendingBubbles -= static_cast<std::uint32_t>(k);
            instrIssued += k;
            w += static_cast<unsigned>(k);
            continue;
        }
        if (havePendingMem) {
            if (!issueMemOp(now)) {
                stalled = true;
                break;      // resource rejection; retry next cycle
            }
            havePendingMem = false;
            ++instrIssued;
            ++w;
            continue;
        }
        if (traceEnded)
            break;
        TraceEntry entry;
        if (!trace.next(entry)) {
            traceEnded = true;
            break;
        }
        pendingBubbles = entry.bubbles;
        if (entry.isMem) {
            havePendingMem = true;
            pendingMem = entry;
        }
        ++w;    // the fetch consumes this issue slot
    }
    lastTickStalled = stalled;
    if (stalled)
        ++numStallCycles;
}

Cycle
Core::nextEventAt() const
{
    Cycle best = kNoEventCycle;
    // In-order retirement: only the window head matters. Its completion
    // time is known once the memory system has issued the access.
    if (!pending.empty() && pending.front().pos == instrRetired) {
        Cycle done = pending.front().slot->done;
        if (done >= 0)
            best = done;
    }
    // A rejected memory issue can also unblock by time alone: the
    // MSHR-style outstanding bound drops when any in-flight op reaches
    // its completion time.
    if (lastTickStalled && !mlp->knownDone.empty())
        best = std::min(best, mlp->knownDone.top());
    return best;
}

bool
Core::issueMemOp(Cycle now)
{
    // L1-MSHR-style bound on memory-level parallelism.
    if (mlp->outstandingAt(now) >= cfg.maxOutstandingMem)
        return false;

    // Reuse the completion slot across retries of the same rejected op.
    if (!retrySlot)
        retrySlot = std::make_shared<MemSlot>();
    std::shared_ptr<MemSlot> slot = retrySlot;
    auto on_done = [state = mlp, slot](Cycle done) {
        slot->done = done;
        if (slot->counted) {
            slot->counted = false;
            --state->unknown;
        }
        state->knownDone.push(done);
    };

    if (pendingMem.bypassCache || !llc) {
        // Cheap pre-gate: a full target queue rejects the submit anyway.
        if (mem.queueFull(pendingMem.isWrite ? ReqType::kWrite
                                             : ReqType::kRead))
            return false;
        Request req;
        req.addr = pendingMem.addr;
        req.type = pendingMem.isWrite ? ReqType::kWrite : ReqType::kRead;
        req.thread = thread;
        req.arrival = now;
        req.id = Request::nextId();
        if (pendingMem.isWrite) {
            // Posted write: completes once accepted.
            if (mem.submit(std::move(req)) != SubmitResult::kAccepted)
                return false;
            slot->done = now + 1;
            mlp->knownDone.push(slot->done);
        } else {
            req.onComplete = on_done;
            if (mem.submit(std::move(req)) != SubmitResult::kAccepted)
                return false;
        }
    } else {
        if (pendingMem.isWrite) {
            // Stores are posted: retire once the LLC accepts them.
            LlcResult res = llc->access(pendingMem.addr, true, thread, now,
                                        nullptr);
            if (res == LlcResult::kReject)
                return false;
            slot->done = now + 1;
            mlp->knownDone.push(slot->done);
        } else {
            LlcResult res = llc->access(pendingMem.addr, false, thread, now,
                                        on_done);
            if (res == LlcResult::kReject)
                return false;
        }
    }
    // Completion still unknown (no callback fired yet): count the op as
    // outstanding until its time arrives.
    if (slot->done < 0) {
        slot->counted = true;
        ++mlp->unknown;
    }
    pending.push_back(MemOp{instrIssued, std::move(slot)});
    retrySlot.reset();      // consumed; next op gets a fresh slot
    ++numMemOps;
    return true;
}

} // namespace bh
