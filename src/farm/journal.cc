#include "farm/journal.hh"

#include "common/fsio.hh"
#include "common/json.hh"
#include "common/log.hh"

namespace bh
{

void
journalAppend(const std::string &journal_path, const JournalEvent &ev)
{
    Json line = Json::object();
    line["t"] = ev.unixTime;
    line["ev"] = ev.event;
    line["cell"] = ev.cell;
    line["worker"] = ev.worker;
    if (ev.attempt > 0)
        line["attempt"] = ev.attempt;
    if (!ev.detail.empty())
        line["detail"] = ev.detail;
    std::string err;
    if (!appendLine(journal_path, line.dump(), err))
        warn("farm journal append failed: %s", err.c_str());
}

std::vector<JournalEvent>
journalRead(const std::string &journal_path, std::size_t *skipped)
{
    std::vector<JournalEvent> out;
    if (skipped)
        *skipped = 0;
    std::string text, err;
    if (!readFile(journal_path, text, err))
        return out;

    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        std::string line = text.substr(
            pos, nl == std::string::npos ? std::string::npos : nl - pos);
        pos = nl == std::string::npos ? text.size() : nl + 1;
        if (line.empty())
            continue;
        Json doc;
        const Json *ev_field = nullptr;
        if (!Json::parse(line, doc) ||
            doc.type() != Json::Type::Object ||
            !(ev_field = doc.find("ev"))) {
            // Torn tail of a killed writer, or garbage: audit data only,
            // so skip and count rather than fail.
            if (skipped)
                ++*skipped;
            continue;
        }
        JournalEvent ev;
        ev.event = ev_field->asString();
        if (const Json *v = doc.find("t"))
            ev.unixTime = v->asDouble();
        if (const Json *v = doc.find("cell"))
            ev.cell = static_cast<std::uint64_t>(v->asInt());
        if (const Json *v = doc.find("worker"))
            ev.worker = v->asString();
        if (const Json *v = doc.find("attempt"))
            ev.attempt = static_cast<unsigned>(v->asInt());
        if (const Json *v = doc.find("detail"))
            ev.detail = v->asString();
        out.push_back(std::move(ev));
    }
    return out;
}

} // namespace bh
