/**
 * @file
 * Append-only lease journal of a farm directory.
 *
 * One JSON object per line in `journal.jsonl`, appended with a single
 * O_APPEND write so concurrent workers never interleave within a line.
 * The journal is the farm's audit trail — claim/steal/commit/fail/
 * poison history with timestamps and attempt counts — and what `bh_farm
 * status` and the crash/recovery tests read to reconstruct what
 * happened. It is deliberately NOT the state of record: the lease,
 * done, fail, and poison files are (each updated crash-safely), so a
 * torn final journal line after a worker SIGKILL costs nothing. The
 * reader skips malformed lines for exactly that reason.
 */

#ifndef BH_FARM_JOURNAL_HH
#define BH_FARM_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bh
{

/** One journal line. */
struct JournalEvent
{
    double unixTime = 0.0;
    std::string event;      ///< "claim", "steal", "done", "fail", ...
    std::uint64_t cell = 0;
    std::string worker;
    unsigned attempt = 0;
    std::string detail;     ///< free-form reason ("watchdog after 2.0 s")
};

/** Append one event to `journal_path` (best effort; warns on IO error). */
void journalAppend(const std::string &journal_path, const JournalEvent &ev);

/**
 * Read every well-formed event of `journal_path` in append order.
 * Malformed or torn lines (a crashed writer's last line) are skipped;
 * `skipped` (optional) counts them. A missing file is an empty journal.
 */
std::vector<JournalEvent> journalRead(const std::string &journal_path,
                                      std::size_t *skipped = nullptr);

} // namespace bh

#endif // BH_FARM_JOURNAL_HH
