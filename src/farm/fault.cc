#include "farm/fault.hh"

#include <algorithm>

#include "common/fsio.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace bh
{

namespace
{

const FaultKind kAllKinds[] = {
    FaultKind::kKillMidCell,   FaultKind::kTruncateWrite,
    FaultKind::kCorruptJson,   FaultKind::kStaleLease,
    FaultKind::kDoubleClaim,
};

bool
kindFromName(const std::string &name, FaultKind &out)
{
    for (FaultKind kind : kAllKinds) {
        if (name == faultKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kKillMidCell:
        return "kill";
      case FaultKind::kTruncateWrite:
        return "truncate";
      case FaultKind::kCorruptJson:
        return "corrupt";
      case FaultKind::kStaleLease:
        return "stale";
      case FaultKind::kDoubleClaim:
        return "dup";
    }
    return "?";
}

bool
FaultPlan::armed(FaultKind kind, std::uint64_t cell) const
{
    for (const Fault &f : faults)
        if (f.kind == kind && f.cell == cell)
            return true;
    return false;
}

std::string
FaultPlan::serialize() const
{
    std::string out;
    for (const Fault &f : faults) {
        if (!out.empty())
            out += ",";
        out += strfmt("%s@%llu", faultKindName(f.kind),
                      static_cast<unsigned long long>(f.cell));
    }
    return out;
}

bool
FaultPlan::parse(const std::string &spec, std::uint64_t cell_total,
                 FaultPlan &out, std::string &err)
{
    out.faults.clear();
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string item = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
        if (item.empty())
            continue;

        if (item.rfind("random:", 0) == 0) {
            // random:<seed>:<count> — deterministic expansion over the
            // grid; every kind is eligible for every cell.
            unsigned long long seed = 0, count = 0;
            if (std::sscanf(item.c_str(), "random:%llu:%llu", &seed,
                            &count) != 2 || count == 0 || count > 4096) {
                err = "malformed random fault spec '" + item +
                      "' (want random:<seed>:<count>)";
                return false;
            }
            if (cell_total == 0) {
                err = "random fault spec needs a non-empty cell grid";
                return false;
            }
            Rng rng(seed);
            for (unsigned long long i = 0; i < count; ++i) {
                Fault f;
                f.kind = kAllKinds[rng.below(std::size(kAllKinds))];
                f.cell = rng.below(cell_total);
                out.faults.push_back(f);
            }
            continue;
        }

        std::size_t at = item.find('@');
        if (at == std::string::npos || at == 0 || at + 1 >= item.size()) {
            err = "malformed fault '" + item + "' (want <kind>@<cell>)";
            return false;
        }
        Fault f;
        if (!kindFromName(item.substr(0, at), f.kind)) {
            err = "unknown fault kind '" + item.substr(0, at) +
                  "' (kill, truncate, corrupt, stale, dup)";
            return false;
        }
        char *end = nullptr;
        const std::string cell_str = item.substr(at + 1);
        f.cell = std::strtoull(cell_str.c_str(), &end, 10);
        if (!end || *end != '\0') {
            err = "malformed fault cell '" + cell_str + "'";
            return false;
        }
        if (cell_total > 0 && f.cell >= cell_total) {
            err = strfmt("fault cell %llu outside the %llu-cell grid",
                         static_cast<unsigned long long>(f.cell),
                         static_cast<unsigned long long>(cell_total));
            return false;
        }
        out.faults.push_back(f);
    }

    // Canonicalize: sorted, deduplicated — the random expansion may
    // collide, and serialize() should be order-independent.
    std::sort(out.faults.begin(), out.faults.end(),
              [](const Fault &a, const Fault &b) {
                  if (a.cell != b.cell)
                      return a.cell < b.cell;
                  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              });
    out.faults.erase(
        std::unique(out.faults.begin(), out.faults.end(),
                    [](const Fault &a, const Fault &b) {
                        return a.kind == b.kind && a.cell == b.cell;
                    }),
        out.faults.end());
    return true;
}

bool
consumeFault(const std::string &fault_dir, FaultKind kind,
             std::uint64_t cell)
{
    std::string marker = fault_dir + "/" +
        strfmt("%s_at_%llu.fired", faultKindName(kind),
               static_cast<unsigned long long>(cell));
    std::string err;
    return createExclusive(marker, "fired\n", err);
}

} // namespace bh
