/**
 * @file
 * bh_farm: a filesystem-based, fault-tolerant work-stealing coordinator
 * for bh_bench sweep grids.
 *
 * A farm directory owns one experiment grid (identified by the same
 * grid fingerprint the shard/merge layer uses). Worker processes lease
 * cells through atomically-claimed lease files, run them, and commit
 * results with crash-safe writes; dead or hung workers are detected by
 * heartbeat timestamps and per-cell wall-clock budgets, their leases
 * stolen and re-leased with capped exponential backoff, and a cell that
 * keeps failing is quarantined as poisoned after K attempts instead of
 * retried forever. All state transitions go through temp+fsync+rename
 * (or exclusive link) so a SIGKILL at any instruction leaves the
 * directory resumable; an append-only journal records the history.
 *
 * Layering: this library is simulation-free — it schedules opaque cell
 * indices and stores opaque JSON payloads. The bh_farm CLI plugs in the
 * bench registry as the cell runner and reuses report-layer merging, so
 * the merged output is byte-identical to an unsharded bh_bench run no
 * matter how many crashes, retries, or duplicate executions occurred.
 *
 * Disk layout of a farm directory:
 *
 *   farm.json          grid spec + policy (written once by init)
 *   journal.jsonl      append-only event history (audit, not state)
 *   leases/            cell_N.json / vcell_N.json exclusive lease files
 *   done/              cell_N.json committed {cell, digest, payload}
 *   verify/            cell_N.json digest-agreement markers
 *   fails/             cell_N.json attempt counts + backoff deadlines
 *   poison/            cell_N.json cells quarantined after K failures
 *   workers/           <worker>.json heartbeat timestamps
 *   faults/            fired fault-injection markers (FaultPlan)
 */

#ifndef BH_FARM_FARM_HH
#define BH_FARM_FARM_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "farm/clock.hh"
#include "farm/fault.hh"

namespace bh
{

/** Retry/lease policy of a farm (persisted in farm.json). */
struct FarmPolicy
{
    /** Failures before a cell is poisoned (never retried again). */
    unsigned maxAttempts = 3;
    /**
     * Per-cell wall-clock budget in seconds; a cell still running at
     * the deadline is failed by the worker's watchdog. <= 0 disables.
     */
    double cellBudgetS = 600.0;
    /**
     * A lease is stale when its owner's heartbeat is older than this,
     * or the lease itself is older than cellBudgetS + this (backstop
     * for abandoned leases of live workers).
     */
    double staleAfterS = 60.0;
    /** Exponential backoff after a failure: base * 2^(attempts-1). */
    double backoffBaseS = 0.5;
    /** Backoff ceiling in seconds. */
    double backoffCapS = 30.0;
    /**
     * Planned double execution: every cell with fnv1a64(fingerprint +
     * ":" + cell) % verifyEvery == 0 is run a second time by another
     * lease and its digest must agree with the committed one. 0 = off;
     * 1 = verify every cell.
     */
    unsigned verifyEvery = 0;
    /** Watchdog/heartbeat wait slice in seconds (test knob). */
    double watchdogSliceS = 1.0;
};

/** Grid identity + policy of a farm directory. */
struct FarmSpec
{
    std::string experiment;
    double scale = 1.0;
    unsigned channels = 1;
    unsigned channelThreads = 1;
    std::string attackFilter;
    std::string fingerprint;        ///< bench grid fingerprint (hex)
    std::uint64_t cellTotal = 0;
    FarmPolicy policy;

    Json toJson() const;
    static bool fromJson(const Json &doc, FarmSpec &out, std::string &err);
};

/** File/directory layout of a farm directory. */
struct FarmPaths
{
    std::string root;

    explicit FarmPaths(std::string root_dir = ".")
        : root(std::move(root_dir))
    {}

    std::string specFile() const { return root + "/farm.json"; }
    std::string journalFile() const { return root + "/journal.jsonl"; }
    std::string leaseDir() const { return root + "/leases"; }
    std::string doneDir() const { return root + "/done"; }
    std::string verifyDir() const { return root + "/verify"; }
    std::string failDir() const { return root + "/fails"; }
    std::string poisonDir() const { return root + "/poison"; }
    std::string workerDir() const { return root + "/workers"; }
    std::string faultDir() const { return root + "/faults"; }

    std::string leaseFile(std::uint64_t cell, bool verify) const;
    std::string doneFile(std::uint64_t cell) const;
    std::string verifyFile(std::uint64_t cell) const;
    std::string failFile(std::uint64_t cell) const;
    std::string poisonFile(std::uint64_t cell) const;
    std::string heartbeatFile(const std::string &worker) const;
};

/** Aggregate view of a farm's progress (one disk scan). */
struct FarmStatus
{
    std::uint64_t cellTotal = 0;
    std::uint64_t doneCells = 0;        ///< valid committed results
    std::uint64_t verifyWanted = 0;     ///< cells selected for re-execution
    std::uint64_t verifiedCells = 0;    ///< double-executions that agreed
    std::uint64_t activeLeases = 0;
    std::uint64_t staleLeases = 0;
    std::uint64_t backoffCells = 0;     ///< failed, waiting for retry
    std::uint64_t pendingCells = 0;     ///< never started / needs rerun
    std::vector<std::uint64_t> poisoned;    ///< sorted cell indices
    std::uint64_t journalCorruptEvents = 0; ///< quarantines ever journaled

    /** Grid fully computed (and verified where selected), no poison. */
    bool complete = false;
};

/**
 * One farm directory handle. Farm objects hold no protocol state in
 * memory beyond the spec — every operation reads and mutates the
 * directory, which is what makes coordinator/worker restart trivial.
 * Not thread-safe; give each thread (or process) its own Farm.
 */
class Farm
{
  public:
    /**
     * Create a farm directory: subdirectories plus farm.json. Fails if
     * the directory already holds a farm of a different grid; re-init
     * of the identical grid is a no-op (resume-friendly).
     */
    static bool init(const std::string &dir, const FarmSpec &spec,
                     FarmClock &clock, std::string &err);

    /** Open an existing farm directory (recreates missing subdirs). */
    static bool open(const std::string &dir, FarmClock &clock, Farm &out,
                     std::string &err);

    Farm() = default;

    const FarmSpec &spec() const { return spec_; }
    const FarmPaths &paths() const { return paths_; }

    /** True when `cell` is selected for planned double execution. */
    bool verifySelected(std::uint64_t cell) const;

    /** Refresh this worker's heartbeat file (crash-safe write). */
    void heartbeat(const std::string &worker);

    /** A claimed unit of work. */
    struct Claim
    {
        std::uint64_t cell = 0;
        unsigned attempt = 1;   ///< 1 + recorded failures at claim time
        bool verify = false;    ///< digest-agreement re-execution
        /**
         * Double-claim fault: this claim holds no lease file (it models
         * a spuriously doubled exclusive claim) and must not release
         * the legitimate owner's lease on commit.
         */
        bool ghost = false;
    };

    /** Scheduling decision of one pickWork call. */
    enum class Pick
    {
        kClaimed,   ///< `claim` holds work; call runClaim
        kWait,      ///< work exists but is leased out or backing off
        kComplete,  ///< grid fully done (+ verified), nothing poisoned
        kStuck      ///< only poisoned cells remain: farm cannot finish
    };

    /**
     * Scan the directory and claim the lowest-indexed runnable cell.
     * Steals stale leases (recording the failure with backoff, not
     * claiming immediately), quarantines corrupt committed results, and
     * poisons cells that exhausted their attempts — whichever worker
     * scans first performs the repair. On kWait, `wait_hint_s` (when
     * non-null) receives a suggested sleep before rescanning.
     */
    Pick pickWork(const std::string &worker, const FaultPlan &faults,
                  Claim &claim, double *wait_hint_s = nullptr);

    /** What happened to one claim. */
    enum class RunOutcome
    {
        kCommitted,         ///< result committed (possibly fault-mangled)
        kDupAgree,          ///< another commit beat us; digests agree
        kDupMismatch,       ///< digest disagreement: cell flagged + reset
        kFailed,            ///< runner threw; failure recorded + backoff
        kWatchdog,          ///< cell exceeded its wall-clock budget
        kKilled,            ///< kill fault fired: caller must die NOW
        kVerifyOk,          ///< double execution agreed
        kVerifyMismatch,    ///< double execution disagreed: cell reset
        kVerifyMoot         ///< committed result vanished before compare
    };

    /**
     * Execute one claim through `runner` (cell index -> payload JSON)
     * under the per-cell watchdog, then commit/compare/record per the
     * outcome table above. `runner` runs on a helper thread; if the
     * watchdog fires, the thread is left running and the caller should
     * exit the process (CLI) or unblock the runner and join via
     * strayThread() (tests). `detail` receives a human-readable reason
     * for failure outcomes.
     */
    RunOutcome runClaim(const std::string &worker, const Claim &claim,
                        const std::function<Json(std::uint64_t)> &runner,
                        const FaultPlan &faults, std::string &detail);

    /** Aggregate progress scan (also performs the repairs pickWork does). */
    FarmStatus status(const std::string &worker = "status");

    /**
     * Collect every committed payload into an object keyed by cell
     * index ("0".."N-1", ascending). Fails (with a diagnostic) unless
     * the farm is complete. The digests recorded at commit time are
     * revalidated against the payload bytes.
     */
    bool collectCells(Json &cells, std::string &err);

    /**
     * The runner thread a fired watchdog abandoned (joinable at most
     * once, after the runner has been unblocked). Tests use this to
     * stay leak-clean; the CLI never calls it and _Exits instead.
     */
    std::thread &strayThread() { return stray_; }

  private:
    struct LeaseInfo
    {
        std::uint64_t cell = 0;
        std::string worker;
        unsigned attempt = 1;
        double claimUnix = 0.0;
        bool verify = false;
    };

    struct FailInfo
    {
        std::uint64_t cell = 0;
        unsigned attempts = 0;
        double lastFailUnix = 0.0;
        double nextRetryUnix = 0.0;
        std::vector<std::string> reasons;
    };

    /** Per-cell disk state assembled by scan(). */
    struct CellView
    {
        bool done = false;              ///< valid committed result
        std::string doneDigest;
        bool verified = false;
        bool poisoned = false;
        bool hasLease = false;
        LeaseInfo lease;
        bool hasVerifyLease = false;
        LeaseInfo verifyLease;
        bool hasFail = false;
        FailInfo fail;
    };

    std::map<std::uint64_t, CellView> scan(const std::string &worker);

    bool leaseStale(const LeaseInfo &lease, double now) const;
    void stealLease(const std::string &worker, const LeaseInfo &lease,
                    bool verify);
    void recordFailure(const std::string &worker, std::uint64_t cell,
                       const std::string &reason);
    void journal(const std::string &event, std::uint64_t cell,
                 const std::string &worker, unsigned attempt = 0,
                 const std::string &detail = "");
    bool runWithWatchdog(const std::string &worker,
                         const std::function<Json(std::uint64_t)> &runner,
                         std::uint64_t cell, Json &payload,
                         std::string &detail);
    RunOutcome commitCell(const std::string &worker, const Claim &claim,
                          const Json &payload, const FaultPlan &faults,
                          std::string &detail);
    RunOutcome verifyCell(const std::string &worker, const Claim &claim,
                          const Json &payload, std::string &detail);

    FarmSpec spec_;
    FarmPaths paths_;
    FarmClock *clock_ = nullptr;
    std::thread stray_;
};

} // namespace bh

#endif // BH_FARM_FARM_HH
