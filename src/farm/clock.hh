/**
 * @file
 * Injectable wall-clock for the farm's lease/heartbeat protocol.
 *
 * All farm timestamps (lease claims, heartbeats, backoff deadlines) are
 * unix seconds produced by a FarmClock, never read ad hoc — so the unit
 * tests drive every staleness and backoff path with a FakeFarmClock and
 * zero real sleeping, and the single real-clock read in the tree stays
 * annotated and auditable. Farm timing is operational state (which host
 * runs which cell, when); it never feeds simulation results, which stay
 * byte-deterministic regardless of scheduling.
 */

#ifndef BH_FARM_CLOCK_HH
#define BH_FARM_CLOCK_HH

#include <atomic>
#include <chrono>

namespace bh
{

/** Source of unix-epoch timestamps (seconds) for farm bookkeeping. */
class FarmClock
{
  public:
    virtual ~FarmClock() = default;

    /** Current unix time in seconds. */
    virtual double nowUnix() = 0;
};

/** The real system clock, for the bh_farm CLI. */
class SystemFarmClock : public FarmClock
{
  public:
    double
    nowUnix() override
    {
        // bh-lint: allow(nondet) farm lease/heartbeat timing sidecar; never feeds simulation state
        auto now = std::chrono::system_clock::now().time_since_epoch();
        return std::chrono::duration<double>(now).count();
    }
};

/**
 * Deterministic clock for tests: advances only when told to. Atomic so
 * a test's cell runner (on the watchdog helper thread) can advance time
 * while the watchdog loop reads it.
 */
class FakeFarmClock : public FarmClock
{
  public:
    explicit FakeFarmClock(double start = 1'000'000.0) : t(start) {}

    double nowUnix() override { return t.load(); }

    void
    advance(double seconds)
    {
        t.store(t.load() + seconds);
    }

    void set(double unix_s) { t.store(unix_s); }

  private:
    std::atomic<double> t{0.0};
};

} // namespace bh

#endif // BH_FARM_CLOCK_HH
