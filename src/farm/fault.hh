/**
 * @file
 * Deterministic fault injection for the bh_farm crash paths.
 *
 * A FaultPlan is a set of (kind, cell) faults, parsed from a spec string
 * (CLI --fault-plan or the BH_FARM_FAULTS environment hook) or expanded
 * deterministically from a seed. Each fault fires at most once per farm
 * directory, across however many worker processes share it: firing is
 * an exclusive marker-file creation, so a worker respawned after a
 * kill fault does not die again on the same cell. Tests and CI use the
 * plan to exercise every recovery path on purpose:
 *
 *   kill@C      worker dies (SIGKILL-equivalent) after computing cell C,
 *               before committing it — lease left behind, no output
 *   truncate@C  cell C's result file is written torn (prefix only),
 *               simulating a crash mid-write without atomic rename
 *   corrupt@C   cell C's result file is written with mangled JSON
 *   stale@C     the worker claims cell C, then silently abandons the
 *               lease without running or releasing it
 *   dup@C       double-claim race: the worker runs cell C ignoring the
 *               lease protocol, as if an exclusive claim spuriously
 *               succeeded twice — exercising the digest-agreement check
 */

#ifndef BH_FARM_FAULT_HH
#define BH_FARM_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bh
{

/** Crash-path selector; see file comment for per-kind semantics. */
enum class FaultKind
{
    kKillMidCell,
    kTruncateWrite,
    kCorruptJson,
    kStaleLease,
    kDoubleClaim,
};

/** Spec token for a kind ("kill", "truncate", "corrupt", "stale", "dup"). */
const char *faultKindName(FaultKind kind);

/** Parsed, deterministic set of injected faults. */
struct FaultPlan
{
    struct Fault
    {
        FaultKind kind = FaultKind::kKillMidCell;
        std::uint64_t cell = 0;
    };
    std::vector<Fault> faults;

    bool empty() const { return faults.empty(); }

    /** True when the plan contains (kind, cell). */
    bool armed(FaultKind kind, std::uint64_t cell) const;

    /** Canonical spec string ("kill@3,corrupt@5"; empty plan -> ""). */
    std::string serialize() const;

    /**
     * Parse a spec: comma-separated `<kind>@<cell>` entries, or
     * `random:<seed>:<count>` which expands to `count` deterministic
     * (kind, cell) pairs drawn from the plan's Rng over a grid of
     * `cell_total` cells (duplicates collapse). Returns false with a
     * diagnostic on malformed specs or cells outside the grid.
     */
    static bool parse(const std::string &spec, std::uint64_t cell_total,
                      FaultPlan &out, std::string &err);
};

/**
 * Fire (kind, cell) at most once per farm: atomically create its marker
 * file under `fault_dir`. Returns true exactly once across all callers
 * sharing the directory — the caller that wins injects the fault.
 */
bool consumeFault(const std::string &fault_dir, FaultKind kind,
                  std::uint64_t cell);

} // namespace bh

#endif // BH_FARM_FAULT_HH
