#include "farm/farm.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>

#include "common/fsio.hh"
#include "common/log.hh"
#include "farm/journal.hh"
#include "report/report.hh"

namespace fs = std::filesystem;

namespace bh
{

namespace
{

/** cell_%llu with fixed width so directory listings sort numerically. */
std::string
cellName(std::uint64_t cell)
{
    return strfmt("cell_%08llu.json", static_cast<unsigned long long>(cell));
}

/** Parse the cell index out of a cell_NNNNNNNN.json file name. */
bool
cellOfName(const std::string &name, const char *prefix, std::uint64_t &out)
{
    std::size_t plen = std::string(prefix).size();
    if (name.rfind(prefix, 0) != 0 || name.size() <= plen + 5 ||
        name.compare(name.size() - 5, 5, ".json") != 0)
        return false;
    char *end = nullptr;
    out = std::strtoull(name.c_str() + plen, &end, 10);
    return end && *end == '.';
}

/** Load + parse a small JSON state file; false on any problem. */
bool
loadJsonFile(const std::string &path, Json &out)
{
    std::string text, err;
    if (!readFile(path, text, err))
        return false;
    return Json::parse(text, out) && out.type() == Json::Type::Object;
}

double
numField(const Json &doc, const char *key, double fallback = 0.0)
{
    const Json *v = doc.find(key);
    return v ? v->asDouble() : fallback;
}

std::string
strField(const Json &doc, const char *key)
{
    const Json *v = doc.find(key);
    return v ? v->asString() : std::string();
}

} // namespace

Json
FarmSpec::toJson() const
{
    Json doc = Json::object();
    doc["format"] = 1;
    doc["experiment"] = experiment;
    doc["scale"] = scale;
    doc["channels"] = channels;
    doc["channel_threads"] = channelThreads;
    doc["attack_filter"] = attackFilter;
    doc["fingerprint"] = fingerprint;
    doc["cell_total"] = cellTotal;
    Json pol = Json::object();
    pol["max_attempts"] = policy.maxAttempts;
    pol["cell_budget_s"] = policy.cellBudgetS;
    pol["stale_after_s"] = policy.staleAfterS;
    pol["backoff_base_s"] = policy.backoffBaseS;
    pol["backoff_cap_s"] = policy.backoffCapS;
    pol["verify_every"] = policy.verifyEvery;
    pol["watchdog_slice_s"] = policy.watchdogSliceS;
    doc["policy"] = std::move(pol);
    return doc;
}

bool
FarmSpec::fromJson(const Json &doc, FarmSpec &out, std::string &err)
{
    const Json *fmt = doc.find("format");
    if (!fmt || fmt->asInt() != 1) {
        err = "farm.json: missing or unsupported format version";
        return false;
    }
    out.experiment = strField(doc, "experiment");
    out.scale = numField(doc, "scale", 1.0);
    out.channels = static_cast<unsigned>(numField(doc, "channels", 1));
    out.channelThreads =
        static_cast<unsigned>(numField(doc, "channel_threads", 1));
    out.attackFilter = strField(doc, "attack_filter");
    out.fingerprint = strField(doc, "fingerprint");
    out.cellTotal =
        static_cast<std::uint64_t>(numField(doc, "cell_total", 0));
    if (out.experiment.empty() || out.fingerprint.empty() ||
        out.cellTotal == 0) {
        err = "farm.json: experiment, fingerprint, and a non-empty cell "
              "grid are required";
        return false;
    }
    const Json *pol = doc.find("policy");
    if (pol) {
        out.policy.maxAttempts =
            static_cast<unsigned>(numField(*pol, "max_attempts", 3));
        out.policy.cellBudgetS = numField(*pol, "cell_budget_s", 600.0);
        out.policy.staleAfterS = numField(*pol, "stale_after_s", 60.0);
        out.policy.backoffBaseS = numField(*pol, "backoff_base_s", 0.5);
        out.policy.backoffCapS = numField(*pol, "backoff_cap_s", 30.0);
        out.policy.verifyEvery =
            static_cast<unsigned>(numField(*pol, "verify_every", 0));
        out.policy.watchdogSliceS =
            numField(*pol, "watchdog_slice_s", 1.0);
    }
    if (out.policy.maxAttempts == 0) {
        err = "farm.json: max_attempts must be >= 1";
        return false;
    }
    return true;
}

std::string
FarmPaths::leaseFile(std::uint64_t cell, bool verify) const
{
    return leaseDir() + "/" + (verify ? "v" : "") + cellName(cell);
}

std::string
FarmPaths::doneFile(std::uint64_t cell) const
{
    return doneDir() + "/" + cellName(cell);
}

std::string
FarmPaths::verifyFile(std::uint64_t cell) const
{
    return verifyDir() + "/" + cellName(cell);
}

std::string
FarmPaths::failFile(std::uint64_t cell) const
{
    return failDir() + "/" + cellName(cell);
}

std::string
FarmPaths::poisonFile(std::uint64_t cell) const
{
    return poisonDir() + "/" + cellName(cell);
}

std::string
FarmPaths::heartbeatFile(const std::string &worker) const
{
    return workerDir() + "/" + worker + ".json";
}

bool
Farm::init(const std::string &dir, const FarmSpec &spec, FarmClock &clock,
           std::string &err)
{
    FarmPaths paths(dir);
    std::error_code ec;
    for (const std::string &d :
         {paths.root, paths.leaseDir(), paths.doneDir(), paths.verifyDir(),
          paths.failDir(), paths.poisonDir(), paths.workerDir(),
          paths.faultDir()}) {
        fs::create_directories(d, ec);
        if (ec) {
            err = d + ": " + ec.message();
            return false;
        }
    }

    Json existing;
    if (loadJsonFile(paths.specFile(), existing)) {
        // Re-init over a live farm is only a no-op for the same grid;
        // anything else would silently mix incompatible cells.
        FarmSpec prior;
        std::string perr;
        if (!FarmSpec::fromJson(existing, prior, perr) ||
            prior.fingerprint != spec.fingerprint ||
            prior.experiment != spec.experiment) {
            err = dir + " already holds a different farm (experiment " +
                  (perr.empty() ? prior.experiment + ", fingerprint " +
                                      prior.fingerprint
                                : "unreadable: " + perr) +
                  "); use a fresh directory";
            return false;
        }
        return true;
    }

    if (!atomicWriteFile(paths.specFile(), spec.toJson().dump(2) + "\n",
                         err))
        return false;
    JournalEvent ev;
    ev.unixTime = clock.nowUnix();
    ev.event = "init";
    ev.worker = "init";
    ev.detail = spec.experiment + " " +
        std::to_string(spec.cellTotal) + " cells";
    journalAppend(paths.journalFile(), ev);
    return true;
}

bool
Farm::open(const std::string &dir, FarmClock &clock, Farm &out,
           std::string &err)
{
    FarmPaths paths(dir);
    Json doc;
    if (!loadJsonFile(paths.specFile(), doc)) {
        err = paths.specFile() + ": not a farm directory (missing or "
              "unreadable farm.json)";
        return false;
    }
    if (!FarmSpec::fromJson(doc, out.spec_, err))
        return false;
    out.paths_ = paths;
    out.clock_ = &clock;
    // A restarted coordinator may open a farm whose subdirectories were
    // partially created; recreate them so every later claim just works.
    std::error_code ec;
    for (const std::string &d :
         {paths.leaseDir(), paths.doneDir(), paths.verifyDir(),
          paths.failDir(), paths.poisonDir(), paths.workerDir(),
          paths.faultDir()})
        fs::create_directories(d, ec);
    return true;
}

bool
Farm::verifySelected(std::uint64_t cell) const
{
    if (spec_.policy.verifyEvery == 0)
        return false;
    std::uint64_t h = fnv1a64(spec_.fingerprint + ":" +
                              std::to_string(cell));
    return h % spec_.policy.verifyEvery == 0;
}

void
Farm::heartbeat(const std::string &worker)
{
    Json doc = Json::object();
    doc["worker"] = worker;
    doc["t"] = clock_->nowUnix();
    std::string err;
    if (!atomicWriteFile(paths_.heartbeatFile(worker), doc.dump(), err))
        warn("farm heartbeat failed: %s", err.c_str());
}

void
Farm::journal(const std::string &event, std::uint64_t cell,
              const std::string &worker, unsigned attempt,
              const std::string &detail)
{
    JournalEvent ev;
    ev.unixTime = clock_->nowUnix();
    ev.event = event;
    ev.cell = cell;
    ev.worker = worker;
    ev.attempt = attempt;
    ev.detail = detail;
    journalAppend(paths_.journalFile(), ev);
}

bool
Farm::leaseStale(const LeaseInfo &lease, double now) const
{
    const FarmPolicy &pol = spec_.policy;
    // Dead worker: its heartbeat file stopped advancing (or never
    // appeared — a worker beats once before claiming anything).
    Json hb;
    double hb_t = lease.claimUnix;
    if (loadJsonFile(paths_.heartbeatFile(lease.worker), hb))
        hb_t = std::max(hb_t, numField(hb, "t"));
    if (now - hb_t > pol.staleAfterS)
        return true;
    // Abandoned or wedged lease of a live worker: the watchdog should
    // have failed the cell by cellBudgetS; give it staleAfterS of grace.
    if (pol.cellBudgetS > 0.0 &&
        now - lease.claimUnix > pol.cellBudgetS + pol.staleAfterS)
        return true;
    return false;
}

void
Farm::stealLease(const std::string &worker, const LeaseInfo &lease,
                 bool verify)
{
    // rename() is the steal arbiter: of N workers that all decide this
    // lease is stale, exactly one wins the rename and records the
    // failure; the rest see ENOENT and move on.
    std::string from = paths_.leaseFile(lease.cell, verify);
    std::string to = from + ".stolen." + worker;
    if (::rename(from.c_str(), to.c_str()) != 0)
        return;
    ::remove(to.c_str());
    journal("steal", lease.cell, worker, lease.attempt,
            strfmt("stale %slease of worker %s", verify ? "verify-" : "",
                   lease.worker.c_str()));
    recordFailure(worker, lease.cell,
                  strfmt("stale %slease (worker %s, attempt %u)",
                         verify ? "verify-" : "", lease.worker.c_str(),
                         lease.attempt));
}

void
Farm::recordFailure(const std::string &worker, std::uint64_t cell,
                    const std::string &reason)
{
    const FarmPolicy &pol = spec_.policy;
    FailInfo info;
    info.cell = cell;
    Json prior;
    if (loadJsonFile(paths_.failFile(cell), prior)) {
        info.attempts = static_cast<unsigned>(numField(prior, "attempts"));
        const Json *reasons = prior.find("reasons");
        if (reasons && reasons->type() == Json::Type::Array)
            for (std::size_t i = 0; i < reasons->size(); ++i)
                info.reasons.push_back(reasons->at(i).asString());
    }
    ++info.attempts;
    info.lastFailUnix = clock_->nowUnix();
    double backoff = std::min(
        pol.backoffBaseS * std::pow(2.0, static_cast<double>(
                                             info.attempts - 1)),
        pol.backoffCapS);
    info.nextRetryUnix = info.lastFailUnix + backoff;
    info.reasons.push_back(reason);

    Json doc = Json::object();
    doc["cell"] = cell;
    doc["attempts"] = info.attempts;
    doc["last_fail_unix"] = info.lastFailUnix;
    doc["next_retry_unix"] = info.nextRetryUnix;
    Json reasons = Json::array();
    for (const std::string &r : info.reasons)
        reasons.push(r);
    doc["reasons"] = std::move(reasons);
    std::string err;
    if (!atomicWriteFile(paths_.failFile(cell), doc.dump(2) + "\n", err))
        warn("farm fail record: %s", err.c_str());
    journal("fail", cell, worker, info.attempts, reason);

    if (info.attempts >= pol.maxAttempts) {
        // Poison instead of retrying forever. The record keeps the
        // whole reason history so `bh_farm status` can show why.
        doc["poisoned_unix"] = clock_->nowUnix();
        if (!atomicWriteFile(paths_.poisonFile(cell), doc.dump(2) + "\n",
                             err))
            warn("farm poison record: %s", err.c_str());
        journal("poison", cell, worker, info.attempts,
                strfmt("%u failed attempts", info.attempts));
    }
}

std::map<std::uint64_t, Farm::CellView>
Farm::scan(const std::string &worker)
{
    std::map<std::uint64_t, CellView> cells;
    double now = clock_->nowUnix();

    auto listDir = [](const std::string &dir) {
        std::vector<std::string> names;
        std::error_code ec;
        for (fs::directory_iterator it(dir, ec), end; it != end && !ec;
             it.increment(ec)) {
            std::error_code type_ec;
            if (it->is_regular_file(type_ec) && !type_ec)
                names.push_back(it->path().filename().string());
        }
        std::sort(names.begin(), names.end());
        return names;
    };

    // Committed results: validate record + digest; anything torn or
    // mangled is quarantined to *.corrupt and its cell re-opened. Only
    // the worker whose rename wins records the failure, so concurrent
    // scanners cannot double-count an attempt.
    for (const std::string &name : listDir(paths_.doneDir())) {
        std::uint64_t cell = 0;
        if (!cellOfName(name, "cell_", cell) || cell >= spec_.cellTotal)
            continue;
        std::string path = paths_.doneDir() + "/" + name;
        Json rec;
        std::string digest;
        bool valid = loadJsonFile(path, rec);
        if (valid) {
            const Json *payload = rec.find("payload");
            digest = strField(rec, "digest");
            valid = payload && !payload->isNull() && !digest.empty() &&
                cellDigest(*payload) == digest;
        }
        if (!valid) {
            std::string moved = quarantineCorrupt(path);
            if (!moved.empty()) {
                warn("farm: corrupt result for cell %llu quarantined "
                     "to %s",
                     static_cast<unsigned long long>(cell), moved.c_str());
                journal("corrupt", cell, worker, 0, moved);
                recordFailure(worker, cell, "corrupt committed result");
            }
            continue;
        }
        CellView &view = cells[cell];
        view.done = true;
        view.doneDigest = digest;
    }

    for (const std::string &name : listDir(paths_.verifyDir())) {
        std::uint64_t cell = 0;
        if (cellOfName(name, "cell_", cell))
            cells[cell].verified = true;
    }

    for (const std::string &name : listDir(paths_.poisonDir())) {
        std::uint64_t cell = 0;
        if (cellOfName(name, "cell_", cell))
            cells[cell].poisoned = true;
    }

    for (const std::string &name : listDir(paths_.failDir())) {
        std::uint64_t cell = 0;
        if (!cellOfName(name, "cell_", cell))
            continue;
        Json doc;
        if (!loadJsonFile(paths_.failDir() + "/" + name, doc))
            continue;   // torn fail record: claimable immediately
        CellView &view = cells[cell];
        view.hasFail = true;
        view.fail.cell = cell;
        view.fail.attempts =
            static_cast<unsigned>(numField(doc, "attempts"));
        view.fail.lastFailUnix = numField(doc, "last_fail_unix");
        view.fail.nextRetryUnix = numField(doc, "next_retry_unix");
    }

    for (const std::string &name : listDir(paths_.leaseDir())) {
        bool verify = name.rfind("vcell_", 0) == 0;
        std::uint64_t cell = 0;
        if (!cellOfName(name, verify ? "vcell_" : "cell_", cell))
            continue;   // .stolen.* remnants and temp files
        Json doc;
        LeaseInfo lease;
        lease.cell = cell;
        lease.verify = verify;
        if (loadJsonFile(paths_.leaseDir() + "/" + name, doc)) {
            lease.worker = strField(doc, "worker");
            lease.attempt =
                static_cast<unsigned>(numField(doc, "attempt", 1));
            lease.claimUnix = numField(doc, "claim_unix", now);
        } else {
            // Unreadable lease (should not happen: claims are created
            // with content in place). Treat as freshly claimed by an
            // unknown worker; the wall-clock backstop will reap it.
            lease.worker = "?";
            lease.claimUnix = now;
        }
        CellView &view = cells[cell];
        if (verify) {
            view.hasVerifyLease = true;
            view.verifyLease = lease;
        } else {
            view.hasLease = true;
            view.lease = lease;
        }
    }

    return cells;
}

Farm::Pick
Farm::pickWork(const std::string &worker, const FaultPlan &faults,
               Claim &claim, double *wait_hint_s)
{
    auto cells = scan(worker);
    double now = clock_->nowUnix();

    // Double-claim fault: run the cell as if our exclusive claim
    // spuriously succeeded alongside the legitimate one — no lease
    // file, straight to execution. Fires once per (dup, cell).
    for (const FaultPlan::Fault &f : faults.faults) {
        if (f.kind != FaultKind::kDoubleClaim)
            continue;
        const CellView &view = cells[f.cell];
        if (view.poisoned)
            continue;
        if (!consumeFault(paths_.faultDir(), f.kind, f.cell))
            continue;
        claim = Claim();
        claim.cell = f.cell;
        claim.attempt = view.hasFail ? view.fail.attempts + 1 : 1;
        claim.ghost = true;
        journal("fault-dup", f.cell, worker, claim.attempt,
                "double-claim race injected");
        return Pick::kClaimed;
    }

    bool any_active = false;
    bool any_backoff = false;
    bool any_poisoned = false;
    bool all_complete = true;
    double hint = 60.0;

    for (std::uint64_t cell = 0; cell < spec_.cellTotal; ++cell) {
        const CellView &view = cells[cell];

        if (view.poisoned) {
            any_poisoned = true;
            all_complete = false;
            continue;
        }

        const bool needs_verify =
            verifySelected(cell) && !view.verified;

        if (view.done && !needs_verify)
            continue;   // fully settled
        all_complete = false;

        // Backoff after a recorded failure applies to both the rerun
        // and the verify re-execution.
        if (view.hasFail && now < view.fail.nextRetryUnix) {
            any_backoff = true;
            hint = std::min(hint, view.fail.nextRetryUnix - now);
            continue;
        }

        if (view.done) {
            // Needs its digest-agreement run.
            if (view.hasVerifyLease) {
                if (leaseStale(view.verifyLease, now))
                    stealLease(worker, view.verifyLease, true);
                else
                    any_active = true;
                continue;
            }
        } else {
            if (view.hasLease) {
                if (leaseStale(view.lease, now))
                    stealLease(worker, view.lease, false);
                else
                    any_active = true;
                continue;
            }
        }

        // Claimable: take the exclusive lease.
        Claim attempt_claim;
        attempt_claim.cell = cell;
        attempt_claim.attempt =
            view.hasFail ? view.fail.attempts + 1 : 1;
        attempt_claim.verify = view.done;

        Json lease = Json::object();
        lease["cell"] = cell;
        lease["worker"] = worker;
        lease["attempt"] = attempt_claim.attempt;
        lease["claim_unix"] = now;
        lease["verify"] = attempt_claim.verify;
        std::string err;
        if (!createExclusive(
                paths_.leaseFile(cell, attempt_claim.verify),
                lease.dump(), err)) {
            if (!err.empty())
                warn("farm claim: %s", err.c_str());
            any_active = true;  // lost the race: someone else has it
            continue;
        }

        // Stale-lease fault: claim, then silently walk away. The lease
        // sits there until the wall-clock backstop reaps it.
        if (faults.armed(FaultKind::kStaleLease, cell) &&
            consumeFault(paths_.faultDir(), FaultKind::kStaleLease,
                         cell)) {
            journal("fault-stale", cell, worker, attempt_claim.attempt,
                    "lease abandoned without release");
            any_active = true;
            continue;
        }

        journal(attempt_claim.verify ? "claim-verify" : "claim", cell,
                worker, attempt_claim.attempt);
        claim = attempt_claim;
        return Pick::kClaimed;
    }

    if (all_complete)
        return Pick::kComplete;
    if (!any_active && !any_backoff && any_poisoned)
        return Pick::kStuck;
    if (wait_hint_s)
        *wait_hint_s = any_backoff ? std::max(0.05, hint) : 1.0;
    return Pick::kWait;
}

bool
Farm::runWithWatchdog(const std::string &worker,
                      const std::function<Json(std::uint64_t)> &runner,
                      std::uint64_t cell, Json &payload,
                      std::string &detail)
{
    const double budget = spec_.policy.cellBudgetS;
    const double slice = std::max(1e-3, spec_.policy.watchdogSliceS);

    // Heap-held shared state: when the watchdog fires, this frame
    // returns while the runner thread is still blocked inside fn() —
    // the stray thread must keep valid state to land its result in.
    struct Shared
    {
        std::mutex m;
        std::condition_variable cv;
        bool finished = false;
        Json result;
        std::exception_ptr error;
    };
    auto shared = std::make_shared<Shared>();

    std::thread work([shared, runner, cell]() {
        Json local;
        std::exception_ptr eptr;
        try {
            local = runner(cell);
        } catch (...) {
            eptr = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(shared->m);
        shared->result = std::move(local);
        shared->error = eptr;
        shared->finished = true;
        shared->cv.notify_all();
    });

    double start = clock_->nowUnix();
    std::unique_lock<std::mutex> lock(shared->m);
    while (!shared->finished) {
        shared->cv.wait_for(lock, std::chrono::duration<double>(slice));
        if (shared->finished)
            break;
        // The waiting thread doubles as the heartbeat: a long cell
        // keeps the lease alive slice by slice.
        lock.unlock();
        heartbeat(worker);
        lock.lock();
        double elapsed = clock_->nowUnix() - start;
        if (budget > 0.0 && elapsed > budget && !shared->finished) {
            // Watchdog: the runner thread is wedged (or just over
            // budget). Record the failure and hand the thread back to
            // the caller — the CLI _Exits, tests unblock and join.
            lock.unlock();
            detail = strfmt("watchdog: cell exceeded its %.3g s "
                            "wall-clock budget", budget);
            stray_ = std::move(work);
            return false;
        }
    }
    lock.unlock();
    work.join();
    if (shared->error) {
        try {
            std::rethrow_exception(shared->error);
        } catch (const std::exception &e) {
            detail = strfmt("runner: %s", e.what());
        } catch (...) {
            detail = "runner: unknown exception";
        }
        return false;
    }
    payload = std::move(shared->result);
    detail.clear();
    return true;
}

Farm::RunOutcome
Farm::runClaim(const std::string &worker, const Claim &claim,
               const std::function<Json(std::uint64_t)> &runner,
               const FaultPlan &faults, std::string &detail)
{
    detail.clear();
    Json payload;
    if (!runWithWatchdog(worker, runner, claim.cell, payload, detail)) {
        bool watchdog = stray_.joinable();
        recordFailure(worker, claim.cell, detail);
        if (!claim.ghost)
            ::remove(paths_.leaseFile(claim.cell, claim.verify).c_str());
        journal(watchdog ? "watchdog" : "runner-fail", claim.cell, worker,
                claim.attempt, detail);
        return watchdog ? RunOutcome::kWatchdog : RunOutcome::kFailed;
    }

    if (claim.verify)
        return verifyCell(worker, claim, payload, detail);

    // Kill fault: die between computing and committing, like a SIGKILL
    // at the worst instruction — no release, no journal, nothing.
    if (faults.armed(FaultKind::kKillMidCell, claim.cell) &&
        consumeFault(paths_.faultDir(), FaultKind::kKillMidCell,
                     claim.cell)) {
        detail = "kill fault fired; caller must exit without cleanup";
        return RunOutcome::kKilled;
    }

    return commitCell(worker, claim, payload, faults, detail);
}

Farm::RunOutcome
Farm::commitCell(const std::string &worker, const Claim &claim,
                 const Json &payload, const FaultPlan &faults,
                 std::string &detail)
{
    std::string digest = cellDigest(payload);
    std::string done_path = paths_.doneFile(claim.cell);

    // Another commit may already be in place (duplicate execution after
    // a steal, or an injected double claim): the digest-agreement
    // check. Matching digests mean the duplicate is harmless; a
    // mismatch flags the cell, quarantines the evidence, and re-runs.
    Json existing;
    if (loadJsonFile(done_path, existing)) {
        const Json *prior_payload = existing.find("payload");
        std::string prior_digest = strField(existing, "digest");
        if (prior_payload && !prior_digest.empty() &&
            cellDigest(*prior_payload) == prior_digest) {
            if (!claim.ghost)
                ::remove(
                    paths_.leaseFile(claim.cell, false).c_str());
            if (prior_digest == digest) {
                journal("dup-agree", claim.cell, worker, claim.attempt,
                        digest);
                return RunOutcome::kDupAgree;
            }
            std::string moved = quarantineCorrupt(done_path);
            detail = strfmt(
                "digest disagreement: committed %s vs recomputed %s%s%s",
                prior_digest.c_str(), digest.c_str(),
                moved.empty() ? "" : "; quarantined to ",
                moved.c_str());
            journal("dup-mismatch", claim.cell, worker, claim.attempt,
                    detail);
            recordFailure(worker, claim.cell, detail);
            return RunOutcome::kDupMismatch;
        }
        // Existing record is itself corrupt; fall through and let the
        // atomic rename replace it with a valid one.
    }

    Json record = Json::object();
    record["cell"] = claim.cell;
    record["attempt"] = claim.attempt;
    record["worker"] = worker;
    record["digest"] = digest;
    record["payload"] = payload;
    std::string bytes = record.dump(2) + "\n";

    std::string err;
    if (faults.armed(FaultKind::kTruncateWrite, claim.cell) &&
        consumeFault(paths_.faultDir(), FaultKind::kTruncateWrite,
                     claim.cell)) {
        // Torn write: the first half of the record lands without the
        // atomic-rename protocol, exactly what a crash mid-write inside
        // a naive writer would leave.
        if (!atomicWriteFile(done_path, bytes.substr(0, bytes.size() / 2),
                             err))
            warn("farm truncate fault: %s", err.c_str());
        journal("fault-truncate", claim.cell, worker, claim.attempt);
    } else if (faults.armed(FaultKind::kCorruptJson, claim.cell) &&
               consumeFault(paths_.faultDir(), FaultKind::kCorruptJson,
                            claim.cell)) {
        std::string mangled = bytes;
        for (std::size_t i = mangled.size() / 2;
             i < mangled.size() && i < mangled.size() / 2 + 16; ++i)
            mangled[i] = '#';
        if (!atomicWriteFile(done_path, mangled, err))
            warn("farm corrupt fault: %s", err.c_str());
        journal("fault-corrupt", claim.cell, worker, claim.attempt);
    } else {
        if (!atomicWriteFile(done_path, bytes, err)) {
            recordFailure(worker, claim.cell, "commit: " + err);
            if (!claim.ghost)
                ::remove(paths_.leaseFile(claim.cell, false).c_str());
            journal("commit-fail", claim.cell, worker, claim.attempt,
                    err);
            detail = err;
            return RunOutcome::kFailed;
        }
    }

    if (!claim.ghost)
        ::remove(paths_.leaseFile(claim.cell, false).c_str());
    journal("done", claim.cell, worker, claim.attempt, digest);
    return RunOutcome::kCommitted;
}

Farm::RunOutcome
Farm::verifyCell(const std::string &worker, const Claim &claim,
                 const Json &payload, std::string &detail)
{
    std::string digest = cellDigest(payload);
    std::string done_path = paths_.doneFile(claim.cell);
    std::string vlease = paths_.leaseFile(claim.cell, true);

    Json existing;
    if (!loadJsonFile(done_path, existing)) {
        // The committed result vanished (quarantined by another scan)
        // between claim and compare; the cell will be re-run anyway.
        ::remove(vlease.c_str());
        journal("verify-moot", claim.cell, worker, claim.attempt);
        return RunOutcome::kVerifyMoot;
    }
    std::string prior_digest = strField(existing, "digest");
    if (prior_digest == digest) {
        Json marker = Json::object();
        marker["cell"] = claim.cell;
        marker["digest"] = digest;
        marker["worker"] = worker;
        std::string err;
        if (!atomicWriteFile(paths_.verifyFile(claim.cell),
                             marker.dump() + "\n", err))
            warn("farm verify marker: %s", err.c_str());
        ::remove(vlease.c_str());
        journal("verify-ok", claim.cell, worker, claim.attempt, digest);
        return RunOutcome::kVerifyOk;
    }

    // Double execution disagreed: the committed result cannot be
    // trusted. Quarantine it, flag the cell, and let it re-run from
    // scratch (both the run and its verification).
    std::string moved = quarantineCorrupt(done_path);
    detail = strfmt("verify disagreement: committed %s vs re-executed "
                    "%s%s%s",
                    prior_digest.c_str(), digest.c_str(),
                    moved.empty() ? "" : "; quarantined to ",
                    moved.c_str());
    ::remove(paths_.verifyFile(claim.cell).c_str());
    ::remove(vlease.c_str());
    journal("verify-mismatch", claim.cell, worker, claim.attempt, detail);
    recordFailure(worker, claim.cell, detail);
    return RunOutcome::kVerifyMismatch;
}

FarmStatus
Farm::status(const std::string &worker)
{
    auto cells = scan(worker);
    double now = clock_->nowUnix();

    FarmStatus st;
    st.cellTotal = spec_.cellTotal;
    st.complete = true;
    for (std::uint64_t cell = 0; cell < spec_.cellTotal; ++cell) {
        const CellView &view = cells[cell];
        bool needs_verify = verifySelected(cell);
        if (needs_verify)
            ++st.verifyWanted;
        if (view.poisoned) {
            st.poisoned.push_back(cell);
            st.complete = false;
            continue;
        }
        if (view.done)
            ++st.doneCells;
        if (view.done && view.verified)
            ++st.verifiedCells;
        if (view.done && (!needs_verify || view.verified))
            continue;
        st.complete = false;
        if (view.hasLease || view.hasVerifyLease) {
            const LeaseInfo &lease =
                view.hasLease ? view.lease : view.verifyLease;
            if (leaseStale(lease, now))
                ++st.staleLeases;
            else
                ++st.activeLeases;
        } else if (view.hasFail && now < view.fail.nextRetryUnix) {
            ++st.backoffCells;
        } else {
            ++st.pendingCells;
        }
    }
    for (const JournalEvent &ev : journalRead(paths_.journalFile()))
        if (ev.event == "corrupt")
            ++st.journalCorruptEvents;
    return st;
}

bool
Farm::collectCells(Json &cells, std::string &err)
{
    FarmStatus st = status("collect");
    if (!st.complete) {
        std::string poisoned;
        for (std::uint64_t cell : st.poisoned)
            poisoned += (poisoned.empty() ? "" : " ") +
                std::to_string(cell);
        err = strfmt("farm incomplete: %llu/%llu cells done",
                     static_cast<unsigned long long>(st.doneCells),
                     static_cast<unsigned long long>(st.cellTotal));
        if (!poisoned.empty())
            err += "; poisoned: " + poisoned;
        return false;
    }

    cells = Json::object();
    for (std::uint64_t cell = 0; cell < spec_.cellTotal; ++cell) {
        Json rec;
        if (!loadJsonFile(paths_.doneFile(cell), rec)) {
            err = paths_.doneFile(cell) + ": vanished during collect";
            return false;
        }
        const Json *payload = rec.find("payload");
        std::string digest = strField(rec, "digest");
        if (!payload || digest.empty() ||
            cellDigest(*payload) != digest) {
            err = paths_.doneFile(cell) + ": digest mismatch during "
                  "collect";
            return false;
        }
        cells[std::to_string(cell)] = *payload;
    }
    return true;
}

} // namespace bh
