#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace bh
{

Histogram::Histogram(std::size_t max_samples) : maxSamples(max_samples)
{
}

void
Histogram::add(std::int64_t value)
{
    if (total == 0) {
        minVal = maxVal = value;
    } else {
        minVal = std::min(minVal, value);
        maxVal = std::max(maxVal, value);
    }
    ++total;
    sum += static_cast<double>(value);
    if (maxSamples == 0 || samples.size() < maxSamples) {
        samples.push_back(value);
        sorted = false;
    } else {
        // Reservoir sampling keeps a uniform subset without growing memory.
        std::uint64_t slot = (total * 2654435761u) % total;
        if (slot < samples.size()) {
            samples[slot] = value;
            sorted = false;
        }
    }
}

double
Histogram::mean() const
{
    return total ? sum / static_cast<double>(total) : 0.0;
}

std::int64_t
Histogram::percentile(double p) const
{
    if (samples.empty())
        return 0;
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
    double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
    auto idx = static_cast<std::size_t>(std::llround(rank));
    idx = std::min(idx, samples.size() - 1);
    return samples[idx];
}

void
Histogram::clear()
{
    total = 0;
    sum = 0.0;
    minVal = maxVal = 0;
    samples.clear();
    sorted = true;
}

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    counterMap[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    scalarMap[name] = value;
}

void
StatSet::sample(const std::string &name, std::int64_t value)
{
    histMap[name].add(value);
}

std::uint64_t
StatSet::counter(const std::string &name) const
{
    auto it = counterMap.find(name);
    return it == counterMap.end() ? 0 : it->second;
}

double
StatSet::scalar(const std::string &name) const
{
    auto it = scalarMap.find(name);
    return it == scalarMap.end() ? 0.0 : it->second;
}

Histogram &
StatSet::hist(const std::string &name)
{
    return histMap[name];
}

const Histogram *
StatSet::findHist(const std::string &name) const
{
    auto it = histMap.find(name);
    return it == histMap.end() ? nullptr : &it->second;
}

void
StatSet::clear()
{
    counterMap.clear();
    scalarMap.clear();
    histMap.clear();
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counterMap)
        os << name << " " << value << "\n";
    for (const auto &[name, value] : scalarMap)
        os << name << " " << value << "\n";
    for (const auto &[name, h] : histMap) {
        os << name << ".count " << h.count()
           << " mean " << h.mean()
           << " p50 " << h.percentile(50)
           << " p90 " << h.percentile(90)
           << " max " << h.max() << "\n";
    }
    return os.str();
}

} // namespace bh
