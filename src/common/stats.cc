#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace bh
{

Histogram::Histogram(std::size_t max_samples, std::uint64_t seed)
    : maxSamples(max_samples), rng(seed)
{
}

void
Histogram::add(std::int64_t value)
{
    if (total == 0) {
        minVal = maxVal = value;
    } else {
        minVal = std::min(minVal, value);
        maxVal = std::max(maxVal, value);
    }
    ++total;
    sum += static_cast<double>(value);
    if (maxSamples == 0 || samples.size() < maxSamples) {
        samples.push_back(value);
        sorted = false;
    } else {
        // Algorithm R: replace a random slot with probability k/total.
        // The seeded stream keeps the retained subset deterministic.
        std::uint64_t slot = rng.below(total);
        if (slot < samples.size()) {
            samples[slot] = value;
            sorted = false;
        }
    }
}

double
Histogram::mean() const
{
    return total ? sum / static_cast<double>(total) : 0.0;
}

std::int64_t
Histogram::percentile(double p) const
{
    if (samples.empty())
        return 0;
    // The tracked extremes are exact even when the reservoir dropped
    // them; a negative p must not wrap through size_t below.
    if (p <= 0.0)
        return min();
    if (p >= 100.0)
        return max();
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
    double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
    auto idx = static_cast<std::size_t>(std::llround(rank));
    idx = std::min(idx, samples.size() - 1);
    return samples[idx];
}

void
Histogram::clear()
{
    total = 0;
    sum = 0.0;
    minVal = maxVal = 0;
    samples.clear();
    sorted = true;
}

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    counterMap[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    scalarMap[name] = value;
}

void
StatSet::sample(const std::string &name, std::int64_t value)
{
    histMap[name].add(value);
}

std::uint64_t
StatSet::counter(const std::string &name) const
{
    auto it = counterMap.find(name);
    return it == counterMap.end() ? 0 : it->second;
}

double
StatSet::scalar(const std::string &name) const
{
    auto it = scalarMap.find(name);
    return it == scalarMap.end() ? 0.0 : it->second;
}

Histogram &
StatSet::hist(const std::string &name)
{
    return histMap[name];
}

Histogram &
StatSet::hist(const std::string &name, std::size_t max_samples,
              std::uint64_t seed)
{
    auto it = histMap.find(name);
    if (it == histMap.end())
        it = histMap.emplace(name, Histogram(max_samples, seed)).first;
    return it->second;
}

const Histogram *
StatSet::findHist(const std::string &name) const
{
    auto it = histMap.find(name);
    return it == histMap.end() ? nullptr : &it->second;
}

void
StatSet::clear()
{
    counterMap.clear();
    scalarMap.clear();
    histMap.clear();
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counterMap)
        os << name << " " << value << "\n";
    for (const auto &[name, value] : scalarMap)
        os << name << " " << value << "\n";
    // histMap is an ordered map, so histogram lines come out in
    // lexicographic name order with a fixed field order: stable bytes.
    for (const auto &[name, h] : histMap) {
        os << name << ".count " << h.count()
           << " mean " << h.mean()
           << " min " << h.min()
           << " p50 " << h.percentile(50)
           << " p90 " << h.percentile(90)
           << " p99 " << h.percentile(99)
           << " max " << h.max() << "\n";
    }
    return os.str();
}

Json
Histogram::summaryJson() const
{
    Json j = Json::object();
    j["count"] = total;
    j["mean"] = mean();
    j["min"] = min();
    j["p50"] = percentile(50);
    j["p90"] = percentile(90);
    j["p99"] = percentile(99);
    j["max"] = max();
    return j;
}

Json
StatSet::toJson() const
{
    Json out = Json::object();
    if (!counterMap.empty()) {
        Json c = Json::object();
        for (const auto &[name, value] : counterMap)
            c[name] = value;
        out["counters"] = c;
    }
    if (!scalarMap.empty()) {
        Json s = Json::object();
        for (const auto &[name, value] : scalarMap)
            s[name] = value;
        out["scalars"] = s;
    }
    if (!histMap.empty()) {
        Json h = Json::object();
        for (const auto &[name, hist] : histMap)
            h[name] = hist.summaryJson();
        out["hists"] = h;
    }
    return out;
}

} // namespace bh
