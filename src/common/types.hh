/**
 * @file
 * Fundamental scalar types and constants shared across the simulator.
 */

#ifndef BH_COMMON_TYPES_HH
#define BH_COMMON_TYPES_HH

#include <cstdint>

namespace bh
{

/** Simulation time in CPU cycles (3.2 GHz unless reconfigured). */
using Cycle = std::int64_t;

/** Physical byte address. */
using Addr = std::uint64_t;

/** Hardware thread / core identifier. */
using ThreadId = std::int32_t;

/** DRAM row index within a bank. */
using RowId = std::uint32_t;

/** Flat bank index within a channel (bank group folded in). */
using BankId = std::int32_t;

/** CPU clock frequency used to convert between wall time and cycles. */
constexpr double kCpuFreqGhz = 3.2;

/** Number of CPU cycles per nanosecond. */
constexpr double kCyclesPerNs = kCpuFreqGhz;

/** Convert nanoseconds to CPU cycles, rounding up (conservative timing). */
constexpr Cycle
nsToCycles(double ns)
{
    double c = ns * kCyclesPerNs;
    Cycle whole = static_cast<Cycle>(c);
    return (static_cast<double>(whole) < c) ? whole + 1 : whole;
}

/** Convert CPU cycles back to nanoseconds. */
constexpr double
cyclesToNs(Cycle cycles)
{
    return static_cast<double>(cycles) / kCyclesPerNs;
}

/** Sentinel for "no thread" (e.g., controller-generated traffic). */
constexpr ThreadId kNoThread = -1;

/**
 * Sentinel for "no scheduled event" in nextEventAt()-style queries (far
 * enough in the future that min() folds treat it as +infinity).
 */
constexpr Cycle kNoEventCycle = INT64_MAX;

/** Cache line size in bytes for the entire hierarchy. */
constexpr unsigned kLineBytes = 64;

} // namespace bh

#endif // BH_COMMON_TYPES_HH
