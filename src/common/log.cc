#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace bh
{

namespace
{

bool verboseEnabled = true;

// Non-verbose warn() rate limit: print the first kWarnLimit warnings,
// count the rest. Atomics because channel-lane workers warn too.
constexpr std::uint64_t kWarnLimit = 10;
std::atomic<std::uint64_t> warnPrinted{0};
std::atomic<std::uint64_t> warnSuppressed{0};

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (!verboseEnabled) {
        std::uint64_t seen =
            warnPrinted.fetch_add(1, std::memory_order_relaxed);
        if (seen >= kWarnLimit) {
            warnSuppressed.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (seen == kWarnLimit - 1) {
            va_list ap;
            va_start(ap, fmt);
            vreport("warn", fmt, ap);
            va_end(ap);
            std::fprintf(stderr,
                         "warn: (further warnings suppressed; summary "
                         "at exit)\n");
            return;
        }
    }
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "info: ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

std::uint64_t
warnSuppressedCount()
{
    return warnSuppressed.load(std::memory_order_relaxed);
}

void
resetWarnLimit()
{
    warnPrinted.store(0, std::memory_order_relaxed);
    warnSuppressed.store(0, std::memory_order_relaxed);
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

} // namespace bh
