/**
 * @file
 * Sorted-emission helpers for unordered containers.
 *
 * std::unordered_map / std::unordered_set iterate in an order that
 * depends on the standard library's bucket layout — stable within one
 * build, but not across stdlib versions or platforms. Any code path
 * that feeds JSON, stat, or trace emission (or makes simulation
 * decisions, like picking an eviction victim) must therefore never walk
 * an unordered container directly; it copies the items out and sorts
 * them by key first. bh_lint rule R2 (unordered-iter) enforces exactly
 * this: iteration over an unordered container is a finding unless the
 * range expression goes through sortedItems()/sortedKeys().
 *
 * The copy is deliberate: these helpers run on emission and
 * housekeeping paths, not in the per-cycle hot loop.
 */

#ifndef BH_COMMON_ORDERED_HH
#define BH_COMMON_ORDERED_HH

#include <algorithm>
#include <utility>
#include <vector>

namespace bh
{

/**
 * Key-sorted copy of a map-like container's items. Works for any
 * container of pair<const K, V> (unordered_map, unordered_multimap);
 * multimap duplicates are additionally ordered by value so the result
 * is fully deterministic.
 */
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
sortedItems(const Map &m)
{
    std::vector<std::pair<typename Map::key_type,
                          typename Map::mapped_type>> items;
    items.reserve(m.size());
    // The one sanctioned walk: order does not matter here because the
    // sort below erases it before anything observes the sequence.
    for (const auto &kv : m)
        items.emplace_back(kv.first, kv.second);
    std::sort(items.begin(), items.end());
    return items;
}

/**
 * Key-sorted copy of a map-like container's keys only. For walks that
 * mutate or erase entries in place (find the live entry per key), or
 * when the mapped type has no operator< for sortedItems' pair sort.
 */
template <typename Map>
std::vector<typename Map::key_type>
sortedMapKeys(const Map &m)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(m.size());
    for (const auto &kv : m)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

/** Sorted copy of a set-like container's keys. */
template <typename Set>
std::vector<typename Set::key_type>
sortedKeys(const Set &s)
{
    std::vector<typename Set::key_type> keys(s.begin(), s.end());
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace bh

#endif // BH_COMMON_ORDERED_HH
