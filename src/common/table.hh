/**
 * @file
 * ASCII table renderer for bench output. Benches print paper tables and
 * figure series as aligned text tables so results are easy to diff.
 */

#ifndef BH_COMMON_TABLE_HH
#define BH_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace bh
{

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with fixed precision. */
    static std::string num(double v, int precision = 3);

    /** Render the table with column padding and a separator rule. */
    std::string render() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace bh

#endif // BH_COMMON_TABLE_HH
