#include "common/table.hh"

#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace bh
{

TextTable::TextTable(std::vector<std::string> header) : head(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != head.size())
        panic("TextTable row width %zu != header width %zu",
              row.size(), head.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        widths[c] = head[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };
    emit(head);
    std::size_t rule = 0;
    for (auto w : widths)
        rule += w + 2;
    os << std::string(rule, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

} // namespace bh
