/**
 * @file
 * Lightweight statistics: named counters, scalar gauges, and histograms
 * with percentile queries. Used by every simulator component.
 */

#ifndef BH_COMMON_STATS_HH
#define BH_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/rng.hh"

namespace bh
{

/**
 * Streaming histogram over int64 samples with exact percentiles.
 * Stores raw samples (simulation scale keeps these small); callers that
 * need bounded memory can enable reservoir sampling.
 */
class Histogram
{
  public:
    /**
     * @param max_samples 0 = keep everything; else reservoir-sample.
     * @param seed seeds the reservoir's replacement stream, so a given
     *        sample sequence always retains the same subset (runs are
     *        reproducible bit-for-bit regardless of wall clock or ASLR).
     */
    explicit Histogram(std::size_t max_samples = 0,
                       std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Record one sample. */
    void add(std::int64_t value);

    /** Number of samples recorded (including reservoir-dropped ones). */
    std::uint64_t count() const { return total; }

    /** Arithmetic mean of all recorded samples. */
    double mean() const;

    /** Minimum recorded sample (0 if empty). */
    std::int64_t min() const { return total ? minVal : 0; }

    /** Maximum recorded sample (0 if empty). */
    std::int64_t max() const { return total ? maxVal : 0; }

    /**
     * Value at percentile p. Exact over retained samples; p <= 0 is the
     * true minimum and p >= 100 the true maximum (exact even when the
     * reservoir dropped them). Returns 0 when empty.
     */
    std::int64_t percentile(double p) const;

    /** Drop all samples. */
    void clear();

    /**
     * Five-number-ish JSON summary: count, mean, min, p50, p90, p99,
     * max. Keys are emitted in that fixed order.
     */
    Json summaryJson() const;

  private:
    std::size_t maxSamples = 0;
    Rng rng;
    std::uint64_t total = 0;
    double sum = 0.0;
    std::int64_t minVal = 0;
    std::int64_t maxVal = 0;
    mutable bool sorted = true;
    mutable std::vector<std::int64_t> samples;
};

/**
 * A named bag of counters and histograms. Components register their stats
 * here so benches/tests can read them by dotted name.
 */
class StatSet
{
  public:
    /** Add delta to counter `name` (created on first use). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Overwrite scalar `name`. */
    void set(const std::string &name, double value);

    /** Record a histogram sample under `name`. */
    void sample(const std::string &name, std::int64_t value);

    /** Counter value (0 if never touched). */
    std::uint64_t counter(const std::string &name) const;

    /** Scalar value (0.0 if never set). */
    double scalar(const std::string &name) const;

    /** Histogram access; creates an empty one if absent. */
    Histogram &hist(const std::string &name);

    /**
     * Histogram access, creating a bounded reservoir histogram if
     * absent (an existing histogram keeps its original bounds). Use for
     * per-request series that would otherwise grow with run length.
     */
    Histogram &hist(const std::string &name, std::size_t max_samples,
                    std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    const Histogram *findHist(const std::string &name) const;

    /** All counters, for dumping. */
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counterMap;
    }

    /** All scalars, for dumping. */
    const std::map<std::string, double> &scalars() const
    {
        return scalarMap;
    }

    /** Reset everything to zero/empty. */
    void clear();

    /**
     * Render all stats as "name value" lines: counters, then scalars,
     * then histograms, each section in lexicographic name order and
     * histogram fields in the fixed summaryJson() order — the output is
     * stable across runs and platforms.
     */
    std::string dump() const;

    /**
     * Snapshot as JSON: {"counters": {...}, "scalars": {...},
     * "hists": {name: summaryJson(), ...}}. Sections with no entries
     * are omitted; all orderings are lexicographic, so two equal
     * StatSets serialize to identical bytes.
     */
    Json toJson() const;

  private:
    std::map<std::string, std::uint64_t> counterMap;
    std::map<std::string, double> scalarMap;
    std::map<std::string, Histogram> histMap;
};

} // namespace bh

#endif // BH_COMMON_STATS_HH
