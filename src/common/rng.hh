/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behavior in the simulator (hash seeds, probabilistic
 * mitigations, workload generation, mix selection) draws from explicitly
 * seeded streams so every experiment is reproducible bit-for-bit.
 */

#ifndef BH_COMMON_RNG_HH
#define BH_COMMON_RNG_HH

#include <cstdint>

namespace bh
{

/**
 * SplitMix64 generator. Tiny state, good statistical quality for
 * simulation purposes, and trivially seedable.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(below(
            static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Fork an independent stream (e.g., one per component). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ull);
    }

  private:
    std::uint64_t state = 0;
};

} // namespace bh

#endif // BH_COMMON_RNG_HH
