/**
 * @file
 * Global simulation trace sink emitting Chrome trace_event JSON
 * (chrome://tracing / Perfetto "JSON array format").
 *
 * Observation only, by construction: every emitter is gated on on(), no
 * emitter returns a value, and no simulator component may branch on the
 * sink's state beyond that gate — so a traced run executes exactly the
 * same simulation as an untraced one and BENCH_*.json outputs stay
 * byte-identical with tracing on, off, or filtered (enforced by
 * tests/test_trace.cc).
 *
 * Conventions (see DESIGN.md "Observability"):
 *  - one trace "process" (pid) per simulated System instance (i.e. per
 *    sweep cell; pids are assigned in creation order and carry no
 *    cross-run meaning when cells run on a worker pool);
 *  - one trace "thread" (tid) per channel lane; tid == channel count is
 *    the system driver row (chunk spans, skip jumps);
 *  - timestamps are simulated CPU cycles, written as integer "ts"
 *    microseconds (1 trace us == 1 simulated cycle — exact, and
 *    Perfetto's timeline math needs no configuration);
 *  - categories: "mem" (DRAM commands), "queue" (admission rejects),
 *    "mitig" (mitigation verdicts/triggers), "lane" (chunk spans),
 *    "skip" (event-skip jumps).
 *
 * The sink is process-global and mutex-serialized on the emit path;
 * open()/close() must only be called while no simulation is running.
 * When disabled (the default) every emitter is a single predictable
 * branch; compiling with -DBH_NO_TRACING folds on() to a constant false
 * and dead-codes the emit calls out entirely.
 */

#ifndef BH_COMMON_TRACE_SINK_HH
#define BH_COMMON_TRACE_SINK_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>

#include "common/types.hh"

namespace bh
{

/** Emitter identity: which simulated system and channel an event is from. */
struct TraceMeta
{
    std::uint32_t pid = 0;      ///< simulated System instance
    std::uint32_t tid = 0;      ///< channel lane (channels == driver row)
};

class TraceSink
{
  public:
    /** One "args" entry: a name literal and an integer value. */
    using Arg = std::pair<const char *, std::int64_t>;

    /** True when a trace file is open (the gate for every emit call). */
    static bool
    on()
    {
#ifdef BH_NO_TRACING
        return false;
#else
        return enabledFlag;
#endif
    }

    /**
     * Open `path` and start a trace. `filter` is a comma-separated list
     * of category substrings ("" = everything): an event is written when
     * any token is a substring of its category. Returns false (with a
     * message in `err`) when the file cannot be created.
     */
    static bool open(const std::string &path, const std::string &filter,
                     std::string &err);

    /** Finish the JSON array and close the file (no-op when not open). */
    static void close();

    /** Category filter check (true when unfiltered). */
    static bool wants(const char *category);

    /**
     * Allocate a fresh trace pid for one simulated System. Monotonic and
     * race-free; meaningful only while a trace is open.
     */
    static std::uint32_t newPid();

    /** Instant event (ph "i"): a point occurrence at `ts`. */
    static void instant(const char *category, const char *name,
                        const TraceMeta &meta, Cycle ts,
                        std::initializer_list<Arg> args = {});

    /** Complete event (ph "X"): a span of `dur` cycles starting at `ts`. */
    static void complete(const char *category, const char *name,
                         const TraceMeta &meta, Cycle ts, Cycle dur,
                         std::initializer_list<Arg> args = {});

    /** Counter event (ph "C"): sampled series values at `ts`. */
    static void counter(const char *category, const char *name,
                        const TraceMeta &meta, Cycle ts,
                        std::initializer_list<Arg> args);

    /** Events written to the current (or last) trace. */
    static std::uint64_t eventsEmitted();

  private:
    static void emit(char ph, const char *category, const char *name,
                     const TraceMeta &meta, Cycle ts, Cycle dur,
                     std::initializer_list<Arg> args);

    static bool enabledFlag;
};

} // namespace bh

#endif // BH_COMMON_TRACE_SINK_HH
