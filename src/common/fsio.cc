#include "common/fsio.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/log.hh"

namespace bh
{

namespace
{

/** Write all of `data` to `fd`, retrying short writes and EINTR. */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Write `content` to a pid-tagged sibling temp of `path` and fsync it.
 * Returns the temp path, or empty with `err` set. `tag` keeps temps of
 * different callers (atomic-replace vs exclusive-create) distinct.
 */
std::string
writeTemp(const std::string &path, const std::string &content,
          const char *tag, std::string &err)
{
    std::string tmp =
        path + "." + tag + "." + std::to_string(::getpid()) + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        err = tmp + ": open: " + std::strerror(errno);
        return "";
    }
    if (!writeAll(fd, content)) {
        err = tmp + ": write: " + std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return "";
    }
    if (::fsync(fd) != 0) {
        err = tmp + ": fsync: " + std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return "";
    }
    if (::close(fd) != 0) {
        err = tmp + ": close: " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return "";
    }
    return tmp;
}

} // namespace

bool
atomicWriteFile(const std::string &path, const std::string &content,
                std::string &err)
{
    std::string tmp = writeTemp(path, content, "aw", err);
    if (tmp.empty())
        return false;
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        err = path + ": rename: " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

void
atomicWriteFileOrDie(const std::string &path, const std::string &content)
{
    std::string err;
    if (!atomicWriteFile(path, content, err))
        fatal("cannot write %s: %s", path.c_str(), err.c_str());
}

bool
createExclusive(const std::string &path, const std::string &content,
                std::string &err)
{
    std::string tmp = writeTemp(path, content, "cx", err);
    if (tmp.empty())
        return false;
    // link() is the atomic create-with-content: it fails with EEXIST
    // when another claimant already holds the path, and a winner's file
    // is fully written and fsynced before it becomes visible.
    int rc = ::link(tmp.c_str(), path.c_str());
    int saved = errno;
    ::unlink(tmp.c_str());
    if (rc == 0)
        return true;
    if (saved == EEXIST) {
        err.clear();
        return false;
    }
    err = path + ": link: " + std::strerror(saved);
    return false;
}

bool
appendLine(const std::string &path, const std::string &line,
           std::string &err)
{
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        err = path + ": open: " + std::strerror(errno);
        return false;
    }
    bool ok = writeAll(fd, line + "\n");
    if (!ok)
        err = path + ": write: " + std::strerror(errno);
    if (::close(fd) != 0 && ok) {
        err = path + ": close: " + std::strerror(errno);
        ok = false;
    }
    return ok;
}

bool
readFile(const std::string &path, std::string &out, std::string &err)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        err = path + ": open: " + std::strerror(errno);
        return false;
    }
    out.clear();
    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            err = path + ": read: " + std::strerror(errno);
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return true;
}

std::string
quarantineCorrupt(const std::string &path)
{
    for (unsigned k = 1; k <= 1000; ++k) {
        std::string dest = path + ".corrupt" +
            (k == 1 ? std::string() : std::to_string(k));
        // O_EXCL probe keeps concurrent quarantines from clobbering
        // each other's evidence; renameat2(RENAME_NOREPLACE) would be
        // ideal but is Linux-specific — the probe window is benign
        // (worst case two corrupt copies of the same bytes).
        struct stat st;
        if (::stat(dest.c_str(), &st) == 0)
            continue;
        if (::rename(path.c_str(), dest.c_str()) == 0)
            return dest;
        return "";   // vanished: someone else quarantined it first
    }
    return "";
}

} // namespace bh
