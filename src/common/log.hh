/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() flags a simulator bug (aborts); fatal() flags a user/configuration
 * error (exits cleanly with an error code); warn()/inform() report status
 * without stopping the simulation.
 */

#ifndef BH_COMMON_LOG_HH
#define BH_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace bh
{

/** Abort with a message; use for conditions that indicate simulator bugs. */
[[noreturn]] void panic(const char *fmt, ...);

/** Exit(1) with a message; use for user configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...);

/** Print a warning about questionable-but-survivable conditions. */
void warn(const char *fmt, ...);

/** Print an informational status message. */
void inform(const char *fmt, ...);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...);

} // namespace bh

#endif // BH_COMMON_LOG_HH
