/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() flags a simulator bug (aborts); fatal() flags a user/configuration
 * error (exits cleanly with an error code); warn()/inform() report status
 * without stopping the simulation.
 */

#ifndef BH_COMMON_LOG_HH
#define BH_COMMON_LOG_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace bh
{

/** Abort with a message; use for conditions that indicate simulator bugs. */
[[noreturn]] void panic(const char *fmt, ...);

/** Exit(1) with a message; use for user configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...);

/**
 * Print a warning about questionable-but-survivable conditions.
 *
 * When verbose output is off (setVerbose(false), as benches do), only
 * the first few warnings print; the rest are counted instead of
 * flooding stderr, and warnSuppressedCount() reports how many were
 * dropped so callers can print one summary line at exit.
 */
void warn(const char *fmt, ...);

/** Print an informational status message. */
void inform(const char *fmt, ...);

/** Enable/disable inform() output and warn() rate limiting. */
void setVerbose(bool verbose);

/** Warnings suppressed by the non-verbose rate limit since last reset. */
std::uint64_t warnSuppressedCount();

/** Reset the warn rate limiter (printed + suppressed counts). */
void resetWarnLimit();

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...);

} // namespace bh

#endif // BH_COMMON_LOG_HH
