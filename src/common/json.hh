/**
 * @file
 * Minimal JSON value with deterministic serialization and a parser that
 * round-trips it, used for the machine-readable BENCH_*.json experiment
 * outputs and the bh_collect aggregation subsystem.
 *
 * Object keys keep insertion order and doubles print as the shortest
 * round-trip decimal, so two runs that compute identical values serialize
 * to byte-identical files regardless of thread count or platform locale.
 * The parser preserves those properties in reverse: for every value this
 * module can dump, dump(parse(dump(x))) == dump(x) byte for byte, and
 * parsed doubles are bit-identical to the ones that were serialized.
 */

#ifndef BH_COMMON_JSON_HH
#define BH_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bh
{

/** Ordered JSON value (null, bool, int, double, string, array, object). */
class Json
{
  public:
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    Json() = default;
    Json(bool v) : type_(Type::Bool), boolVal(v) {}
    Json(int v) : type_(Type::Int), intVal(v) {}
    Json(unsigned v) : type_(Type::Int), intVal(v) {}
    Json(std::int64_t v) : type_(Type::Int), intVal(v) {}
    Json(std::uint64_t v) : type_(Type::Int), intVal(static_cast<std::int64_t>(v)) {}
    Json(double v) : type_(Type::Double), dblVal(v) {}
    Json(const char *v) : type_(Type::String), strVal(v) {}
    Json(std::string v) : type_(Type::String), strVal(std::move(v)) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    /** Object access: inserts a null member on first use (insertion order). */
    Json &operator[](const std::string &key);

    /** Object lookup without insertion; nullptr when absent. */
    const Json *find(const std::string &key) const;

    /** Object members in insertion order (empty for non-objects). */
    const std::vector<std::pair<std::string, Json>> &
    objectItems() const
    {
        return members;
    }

    /** Array append; returns the array for chaining. */
    Json &push(Json value);

    /** Array element access (must be an array). */
    const Json &at(std::size_t index) const;
    std::size_t size() const;

    bool asBool() const { return boolVal; }
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const { return strVal; }

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** Shortest decimal that round-trips to exactly `v`. */
    static std::string formatDouble(double v);

    /**
     * Parse JSON text into `out`. Returns false on malformed input and,
     * when `err` is non-null, stores a message naming the byte offset.
     * Accepts exactly the grammar dump() emits plus standard JSON
     * (any whitespace, \uXXXX escapes with surrogate pairs, numbers in
     * scientific notation; "1e999" overflows to infinity, matching the
     * serializer's encoding of non-finite values).
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *err = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool boolVal = false;
    std::int64_t intVal = 0;
    double dblVal = 0.0;
    std::string strVal;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> members;
};

} // namespace bh

#endif // BH_COMMON_JSON_HH
