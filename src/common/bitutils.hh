/**
 * @file
 * Bit-field extraction helpers used by address mapping and hashing.
 */

#ifndef BH_COMMON_BITUTILS_HH
#define BH_COMMON_BITUTILS_HH

#include <cstdint>

namespace bh
{

/** Extract bits [lo, lo+width) of value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned width)
{
    if (width == 0)
        return 0;
    if (width >= 64)
        return value >> lo;
    return (value >> lo) & ((1ull << width) - 1);
}

/** Insert `field` into bits [lo, lo+width) of a zeroed destination. */
constexpr std::uint64_t
placeBits(std::uint64_t field, unsigned lo, unsigned width)
{
    if (width == 0)
        return 0;
    std::uint64_t mask = (width >= 64) ? ~0ull : ((1ull << width) - 1);
    return (field & mask) << lo;
}

/** Integer ceil(log2(x)) for x >= 1. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    unsigned n = 0;
    std::uint64_t v = 1;
    while (v < x) {
        v <<= 1;
        ++n;
    }
    return n;
}

/** True if x is a power of two (x > 0). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Integer ceiling division. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

} // namespace bh

#endif // BH_COMMON_BITUTILS_HH
