/**
 * @file
 * Crash-safe filesystem primitives shared by every report/state emitter.
 *
 * The invariant all writers need: a reader never observes a torn file.
 * atomicWriteFile() provides it via the classic temp + fsync + rename
 * protocol — after a crash at any instruction, the destination path
 * either holds its previous content or the complete new content, never
 * a prefix. bh_bench report emission, bh_collect merge output, and the
 * bh_farm lease/state machinery all write through these helpers.
 */

#ifndef BH_COMMON_FSIO_HH
#define BH_COMMON_FSIO_HH

#include <string>

namespace bh
{

/**
 * Atomically replace `path` with `content`: write to a sibling temp
 * file, fsync it, rename over `path`. Returns false (with a diagnostic
 * in `err`) on any IO failure; the destination is untouched in that
 * case. The temp file name embeds the pid, so concurrent writers of the
 * same path never collide on the temp — the last rename wins whole.
 */
bool atomicWriteFile(const std::string &path, const std::string &content,
                     std::string &err);

/** atomicWriteFile that fatal()s on failure, for CLI emit paths. */
void atomicWriteFileOrDie(const std::string &path,
                          const std::string &content);

/**
 * Create `path` exclusively with `content` already in place: the
 * content is written to a temp file, fsynced, then link()ed to `path`.
 * Exactly one of N concurrent callers wins; losers return false with
 * empty `err`. IO failures return false with a diagnostic in `err`.
 * A reader that can open `path` therefore always sees full content —
 * this is the lease-claim primitive.
 */
bool createExclusive(const std::string &path, const std::string &content,
                     std::string &err);

/**
 * Append `line` (a '\n' is added) to `path` with a single O_APPEND
 * write, creating the file if needed. Concurrent appenders from
 * different processes do not interleave within a line on POSIX local
 * filesystems. Best-effort durability: the line is flushed but not
 * fsynced — journals built on this are audit logs, not state of record.
 */
bool appendLine(const std::string &path, const std::string &line,
                std::string &err);

/**
 * Read a whole file into `out`. Returns false (diagnostic in `err`)
 * when the file cannot be opened or read.
 */
bool readFile(const std::string &path, std::string &out, std::string &err);

/**
 * Quarantine a corrupt file by renaming it to `path + ".corrupt"`
 * (first free of ".corrupt", ".corrupt2", ...). Returns the quarantine
 * path, or an empty string when the rename failed (e.g. the file
 * vanished — another process quarantined it first).
 */
std::string quarantineCorrupt(const std::string &path);

} // namespace bh

#endif // BH_COMMON_FSIO_HH
