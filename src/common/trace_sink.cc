#include "common/trace_sink.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

namespace bh
{

bool TraceSink::enabledFlag = false;

namespace
{

std::FILE *traceFile = nullptr;
std::mutex traceMutex;
std::vector<std::string> traceFilter;
bool firstEvent = true;
std::atomic<std::uint32_t> nextPid{1};
std::atomic<std::uint64_t> numEmitted{0};

} // namespace

bool
TraceSink::open(const std::string &path, const std::string &filter,
                std::string &err)
{
    std::lock_guard<std::mutex> lock(traceMutex);
    if (traceFile) {
        err = "trace already open";
        return false;
    }
    traceFile = std::fopen(path.c_str(), "wb");
    if (!traceFile) {
        err = "cannot create trace file: " + path;
        return false;
    }
    traceFilter.clear();
    std::size_t start = 0;
    while (start <= filter.size()) {
        std::size_t comma = filter.find(',', start);
        if (comma == std::string::npos)
            comma = filter.size();
        if (comma > start)
            traceFilter.push_back(filter.substr(start, comma - start));
        start = comma + 1;
    }
    firstEvent = true;
    nextPid.store(1, std::memory_order_relaxed);
    numEmitted.store(0, std::memory_order_relaxed);
    // Process-name metadata event so viewers label the timeline; pid 0
    // is reserved for it (simulated systems start at pid 1).
    std::fputs("[\n{\"ph\":\"M\",\"pid\":0,\"tid\":0,"
               "\"name\":\"process_name\","
               "\"args\":{\"name\":\"bh_bench\"}}",
               traceFile);
    firstEvent = false;
    enabledFlag = true;
    return true;
}

void
TraceSink::close()
{
    std::lock_guard<std::mutex> lock(traceMutex);
    if (!traceFile)
        return;
    enabledFlag = false;
    std::fputs("\n]\n", traceFile);
    std::fclose(traceFile);
    traceFile = nullptr;
    traceFilter.clear();
}

bool
TraceSink::wants(const char *category)
{
    if (traceFilter.empty())
        return true;
    std::string cat(category);
    for (const std::string &token : traceFilter) {
        if (cat.find(token) != std::string::npos)
            return true;
    }
    return false;
}

std::uint32_t
TraceSink::newPid()
{
    return nextPid.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
TraceSink::eventsEmitted()
{
    return numEmitted.load(std::memory_order_relaxed);
}

void
TraceSink::instant(const char *category, const char *name,
                   const TraceMeta &meta, Cycle ts,
                   std::initializer_list<Arg> args)
{
    emit('i', category, name, meta, ts, 0, args);
}

void
TraceSink::complete(const char *category, const char *name,
                    const TraceMeta &meta, Cycle ts, Cycle dur,
                    std::initializer_list<Arg> args)
{
    emit('X', category, name, meta, ts, dur, args);
}

void
TraceSink::counter(const char *category, const char *name,
                   const TraceMeta &meta, Cycle ts,
                   std::initializer_list<Arg> args)
{
    emit('C', category, name, meta, ts, 0, args);
}

void
TraceSink::emit(char ph, const char *category, const char *name,
                const TraceMeta &meta, Cycle ts, Cycle dur,
                std::initializer_list<Arg> args)
{
    if (!on() || !wants(category))
        return;
    // Categories, names, and arg keys are compile-time identifiers at
    // every call site, so no JSON string escaping is needed here.
    char buf[512];
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"ph\":\"%c\",\"cat\":\"%s\",\"name\":\"%s\","
        "\"pid\":%u,\"tid\":%u,\"ts\":%llu",
        ph, category, name, meta.pid, meta.tid,
        static_cast<unsigned long long>(ts));
    std::string line(buf, static_cast<std::size_t>(n));
    if (ph == 'X') {
        n = std::snprintf(buf, sizeof(buf), ",\"dur\":%llu",
                          static_cast<unsigned long long>(dur));
        line.append(buf, static_cast<std::size_t>(n));
    }
    if (ph == 'i')
        line += ",\"s\":\"t\"";
    if (args.size() > 0 || ph == 'C') {
        line += ",\"args\":{";
        bool first = true;
        for (const Arg &arg : args) {
            n = std::snprintf(buf, sizeof(buf), "%s\"%s\":%lld",
                              first ? "" : ",", arg.first,
                              static_cast<long long>(arg.second));
            line.append(buf, static_cast<std::size_t>(n));
            first = false;
        }
        line += "}";
    }
    line += "}";

    std::lock_guard<std::mutex> lock(traceMutex);
    if (!traceFile)
        return;
    std::fputs(firstEvent ? "" : ",\n", traceFile);
    firstEvent = false;
    std::fputs(line.c_str(), traceFile);
    numEmitted.fetch_add(1, std::memory_order_relaxed);
}

} // namespace bh
