#include "common/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace bh
{

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        panic("Json::operator[] on non-object");
    for (auto &kv : members)
        if (kv.first == key)
            return kv.second;
    members.emplace_back(key, Json());
    return members.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &kv : members)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

Json &
Json::push(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        panic("Json::push on non-array");
    arr.push_back(std::move(value));
    return *this;
}

const Json &
Json::at(std::size_t index) const
{
    if (type_ != Type::Array || index >= arr.size())
        panic("Json::at out of range");
    return arr[index];
}

std::size_t
Json::size() const
{
    return type_ == Type::Array ? arr.size() : members.size();
}

std::int64_t
Json::asInt() const
{
    if (type_ == Type::Double)
        return static_cast<std::int64_t>(dblVal);
    return intVal;
}

double
Json::asDouble() const
{
    if (type_ == Type::Int)
        return static_cast<double>(intVal);
    return dblVal;
}

std::string
Json::formatDouble(double v)
{
    if (std::isnan(v))
        return "null";
    if (std::isinf(v))
        return v > 0 ? "1e999" : "-1e999";
    char buf[40];
    // Shortest representation that parses back to the same bits.
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

namespace
{

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
        case Type::Null:
            out += "null";
            break;
        case Type::Bool:
            out += boolVal ? "true" : "false";
            break;
        case Type::Int:
            out += std::to_string(intVal);
            break;
        case Type::Double:
            out += formatDouble(dblVal);
            break;
        case Type::String:
            escapeString(out, strVal);
            break;
        case Type::Array:
            out += '[';
            for (std::size_t i = 0; i < arr.size(); ++i) {
                if (i)
                    out += ',';
                newlineIndent(out, indent, depth + 1);
                arr[i].dumpTo(out, indent, depth + 1);
            }
            if (!arr.empty())
                newlineIndent(out, indent, depth);
            out += ']';
            break;
        case Type::Object:
            out += '{';
            for (std::size_t i = 0; i < members.size(); ++i) {
                if (i)
                    out += ',';
                newlineIndent(out, indent, depth + 1);
                escapeString(out, members[i].first);
                out += indent > 0 ? ": " : ":";
                members[i].second.dumpTo(out, indent, depth + 1);
            }
            if (!members.empty())
                newlineIndent(out, indent, depth);
            out += '}';
            break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent JSON parser over a fixed text buffer. */
class Parser
{
  public:
    Parser(const std::string &text) : s(text) {}

    bool
    run(Json &out, std::string *err)
    {
        bool ok = parseValue(out, 0) && (skipWs(), pos == s.size());
        if (!ok && pos == s.size() && error.empty())
            error = "unexpected end of input";
        if (!ok && error.empty())
            error = "trailing content";
        if (!ok && err)
            *err = strfmt("%s at offset %zu", error.c_str(), pos);
        return ok;
    }

  private:
    // Deep nesting is legal JSON but would overflow the C++ stack long
    // before it exhausts memory; bound recursion explicitly.
    static constexpr int kMaxDepth = 256;

    const std::string &s;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg;
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                                  s[pos] == '\n' || s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::strlen(word);
        if (s.compare(pos, len, word) != 0)
            return fail(strfmt("invalid literal (expected '%s')", word));
        pos += len;
        return true;
    }

    bool
    parseValue(Json &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
            case 'n': out = Json(); return literal("null");
            case 't': out = Json(true); return literal("true");
            case 'f': out = Json(false); return literal("false");
            case '"': return parseString(out);
            case '[': return parseArray(out, depth);
            case '{': return parseObject(out, depth);
            default: return parseNumber(out);
        }
    }

    bool
    parseArray(Json &out, int depth)
    {
        ++pos;      // consume '['
        out = Json::array();
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            Json elem;
            if (!parseValue(elem, depth + 1))
                return false;
            out.push(std::move(elem));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated array");
            if (s[pos] == ',') {
                ++pos;
            } else if (s[pos] == ']') {
                ++pos;
                return true;
            } else {
                return fail("expected ',' or ']' in array");
            }
        }
    }

    bool
    parseObject(Json &out, int depth)
    {
        ++pos;      // consume '{'
        out = Json::object();
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key string");
            Json key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':' after object key");
            ++pos;
            // operator[] keeps insertion order; duplicate keys collapse
            // to the last occurrence, as in most JSON implementations.
            if (!parseValue(out[key.asString()], depth + 1))
                return false;
            skipWs();
            if (pos >= s.size())
                return fail("unterminated object");
            if (s[pos] == ',') {
                ++pos;
            } else if (s[pos] == '}') {
                ++pos;
                return true;
            } else {
                return fail("expected ',' or '}' in object");
            }
        }
    }

    /** Append one Unicode code point as UTF-8. */
    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    hex4(unsigned &out)
    {
        if (pos + 4 > s.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = s[pos + i];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = 10 + (c - 'a');
            else if (c >= 'A' && c <= 'F')
                digit = 10 + (c - 'A');
            else
                return fail("invalid \\u escape digit");
            out = (out << 4) | digit;
        }
        pos += 4;
        return true;
    }

    bool
    parseString(Json &out)
    {
        ++pos;      // consume '"'
        std::string str;
        for (;;) {
            if (pos >= s.size())
                return fail("unterminated string");
            char c = s[pos];
            if (c == '"') {
                ++pos;
                out = Json(std::move(str));
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                str += c;
                ++pos;
                continue;
            }
            if (++pos >= s.size())
                return fail("unterminated escape");
            switch (s[pos++]) {
                case '"': str += '"'; break;
                case '\\': str += '\\'; break;
                case '/': str += '/'; break;
                case 'b': str += '\b'; break;
                case 'f': str += '\f'; break;
                case 'n': str += '\n'; break;
                case 'r': str += '\r'; break;
                case 't': str += '\t'; break;
                case 'u': {
                    unsigned cp;
                    if (!hex4(cp))
                        return false;
                    if (cp >= 0xd800 && cp < 0xdc00) {
                        // High surrogate: the low half must follow.
                        unsigned lo;
                        if (s.compare(pos, 2, "\\u") != 0)
                            return fail("unpaired surrogate");
                        pos += 2;
                        if (!hex4(lo))
                            return false;
                        if (lo < 0xdc00 || lo > 0xdfff)
                            return fail("invalid low surrogate");
                        cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                    } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                        return fail("unpaired surrogate");
                    }
                    appendUtf8(str, cp);
                    break;
                }
                default:
                    return fail("invalid escape character");
            }
        }
    }

    /**
     * Strict JSON number grammar: '-'? ('0' | [1-9][0-9]*)
     * ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?. strtod alone would also
     * accept "012", ".5", or "5.", which neither standard JSON nor
     * dump() produces.
     */
    static bool
    validNumberToken(const std::string &t)
    {
        std::size_t i = 0;
        auto digit = [&](std::size_t k) {
            return k < t.size() && t[k] >= '0' && t[k] <= '9';
        };
        if (i < t.size() && t[i] == '-')
            ++i;
        if (!digit(i))
            return false;
        if (t[i] == '0')
            ++i;                    // no leading zeros
        else
            while (digit(i))
                ++i;
        if (i < t.size() && t[i] == '.') {
            ++i;
            if (!digit(i))
                return false;
            while (digit(i))
                ++i;
        }
        if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
            ++i;
            if (i < t.size() && (t[i] == '+' || t[i] == '-'))
                ++i;
            if (!digit(i))
                return false;
            while (digit(i))
                ++i;
        }
        return i == t.size();
    }

    bool
    parseNumber(Json &out)
    {
        std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        bool integral = true;
        bool digits = false;
        char prev = '\0';
        while (pos < s.size()) {
            char c = s[pos];
            if (c >= '0' && c <= '9') {
                digits = true;
            } else if (c == '.' || c == 'e' || c == 'E') {
                integral = false;
            } else if ((c == '+' || c == '-') &&
                       (prev == 'e' || prev == 'E')) {
                // Exponent sign; strtod validates the rest.
            } else {
                break;
            }
            prev = c;
            ++pos;
        }
        if (!digits)
            return fail("invalid value");
        std::string token = s.substr(start, pos - start);
        if (!validNumberToken(token))
            return fail("invalid number");

        // Integer classification must preserve serialized bytes:
        // re-dumping a parsed Int prints std::to_string(v), so only
        // tokens that round-trip through it stay integers ("-0" and
        // out-of-range magnitudes fall back to double).
        if (integral) {
            errno = 0;
            char *end = nullptr;
            long long v = std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0' &&
                std::to_string(v) == token) {
                out = Json(static_cast<std::int64_t>(v));
                return true;
            }
        }
        errno = 0;
        char *end = nullptr;
        double d = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0' || end == token.c_str())
            return fail("invalid number");
        // Overflow to infinity is accepted: the serializer encodes
        // non-finite values as +/-1e999.
        out = Json(d);
        return true;
    }
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string *err)
{
    Parser p(text);
    Json result;
    if (!p.run(result, err)) {
        out = Json();
        return false;
    }
    out = std::move(result);
    return true;
}

} // namespace bh
