#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace bh
{

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        panic("Json::operator[] on non-object");
    for (auto &kv : members)
        if (kv.first == key)
            return kv.second;
    members.emplace_back(key, Json());
    return members.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &kv : members)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

Json &
Json::push(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        panic("Json::push on non-array");
    arr.push_back(std::move(value));
    return *this;
}

const Json &
Json::at(std::size_t index) const
{
    if (type_ != Type::Array || index >= arr.size())
        panic("Json::at out of range");
    return arr[index];
}

std::size_t
Json::size() const
{
    return type_ == Type::Array ? arr.size() : members.size();
}

std::int64_t
Json::asInt() const
{
    if (type_ == Type::Double)
        return static_cast<std::int64_t>(dblVal);
    return intVal;
}

double
Json::asDouble() const
{
    if (type_ == Type::Int)
        return static_cast<double>(intVal);
    return dblVal;
}

std::string
Json::formatDouble(double v)
{
    if (std::isnan(v))
        return "null";
    if (std::isinf(v))
        return v > 0 ? "1e999" : "-1e999";
    char buf[40];
    // Shortest representation that parses back to the same bits.
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

namespace
{

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
        case Type::Null:
            out += "null";
            break;
        case Type::Bool:
            out += boolVal ? "true" : "false";
            break;
        case Type::Int:
            out += std::to_string(intVal);
            break;
        case Type::Double:
            out += formatDouble(dblVal);
            break;
        case Type::String:
            escapeString(out, strVal);
            break;
        case Type::Array:
            out += '[';
            for (std::size_t i = 0; i < arr.size(); ++i) {
                if (i)
                    out += ',';
                newlineIndent(out, indent, depth + 1);
                arr[i].dumpTo(out, indent, depth + 1);
            }
            if (!arr.empty())
                newlineIndent(out, indent, depth);
            out += ']';
            break;
        case Type::Object:
            out += '{';
            for (std::size_t i = 0; i < members.size(); ++i) {
                if (i)
                    out += ',';
                newlineIndent(out, indent, depth + 1);
                escapeString(out, members[i].first);
                out += indent > 0 ? ": " : ":";
                members[i].second.dumpTo(out, indent, depth + 1);
            }
            if (!members.empty())
                newlineIndent(out, indent, depth);
            out += '}';
            break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

} // namespace bh
