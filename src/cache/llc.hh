/**
 * @file
 * Shared last-level cache: 16 MB, 8-way, 64 B lines, LRU, write-back,
 * write-allocate, with MSHR-based miss merging and writeback retry
 * (Table 5 of the paper).
 */

#ifndef BH_CACHE_LLC_HH
#define BH_CACHE_LLC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/mem_system.hh"

namespace bh
{

/** LLC configuration. */
struct LlcConfig
{
    std::uint64_t capacityBytes = 16ull << 20;
    unsigned ways = 8;
    Cycle hitLatency = 20;      ///< CPU cycles, L1-to-LLC traversal included
    Cycle fillLatency = 4;      ///< extra cycles after memory completion
    unsigned mshrs = 64;
};

/**
 * Outcome of an LLC access attempt. The two reject flavors tell the
 * chunked multi-channel driver what has to happen before a retry can
 * succeed: kReject clears only when a memory completion is delivered
 * (MSHRs free at fill delivery), kRejectQueueFull clears when a channel
 * lane drains its queues — which can happen on any lane tick, so a core
 * in that state must keep retrying every cycle.
 */
enum class LlcResult
{
    kHit,               ///< on_done already invoked with completion cycle
    kMiss,              ///< on_done will fire when the fill completes
    kReject,            ///< MSHR pressure; a completion delivery must land
    kRejectQueueFull,   ///< queue/writeback backpressure; retry every cycle
};

/**
 * Per-thread LLC statistics (drives Table 8's MPKI column). `accesses`
 * counts accepted accesses only (hits + misses); rejected attempts that
 * the core retries are not accesses, so the counters are independent of
 * how often a stalled core re-polls.
 */
struct ThreadLlcStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/** Shared set-associative write-back LLC. */
class Llc
{
  public:
    Llc(const LlcConfig &config, MemSystem &mem);

    /**
     * Access the cache. For hits, `on_done` is invoked synchronously with
     * the completion cycle; for misses it fires when the memory fill
     * returns.
     */
    LlcResult access(Addr addr, bool is_write, ThreadId thread, Cycle now,
                     std::function<void(Cycle)> on_done);

    /** Retry stalled writebacks. Call every cycle. */
    void tick(Cycle now);

    /**
     * True when tick() is a provable no-op (no stalled writebacks to
     * retry): the chunked multi-channel driver skips LLC ticks only
     * while this holds.
     */
    bool quiet() const { return wbRetry.empty(); }

    const ThreadLlcStats &threadStats(ThreadId thread) const;
    std::uint64_t hits() const { return numHits; }
    std::uint64_t misses() const { return numMisses; }
    std::uint64_t writebacks() const { return numWritebacks; }
    std::size_t mshrsInUse() const { return mshr.size(); }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    struct MshrEntry
    {
        std::vector<std::function<void(Cycle)>> waiters;
        bool writeIntent = false;
        ThreadId thread = kNoThread;
    };

    Addr lineAddr(Addr addr) const { return addr / kLineBytes; }
    std::size_t setIndex(Addr line) const { return line % numSets; }
    Line *findLine(Addr line);
    void installLine(Addr line, bool dirty, Cycle now);
    bool issueWriteback(Addr line, Cycle now);

    LlcConfig cfg;
    MemSystem &mem;
    std::size_t numSets = 0;
    std::vector<Line> lines;            ///< numSets * ways
    std::uint64_t useCounter = 0;
    std::unordered_map<Addr, MshrEntry> mshr;
    std::deque<Addr> wbRetry;

    std::uint64_t numHits = 0;
    std::uint64_t numMisses = 0;
    std::uint64_t numWritebacks = 0;
    mutable std::vector<ThreadLlcStats> perThread;
    ThreadLlcStats &threadStatsMutable(ThreadId thread);
};

} // namespace bh

#endif // BH_CACHE_LLC_HH
