#include "cache/llc.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace bh
{

Llc::Llc(const LlcConfig &config, MemSystem &mem_system)
    : cfg(config), mem(mem_system)
{
    numSets = cfg.capacityBytes / (static_cast<std::uint64_t>(cfg.ways) *
                                   kLineBytes);
    if (numSets == 0)
        fatal("LLC capacity too small");
    lines.assign(numSets * cfg.ways, Line{});
}

Llc::Line *
Llc::findLine(Addr line)
{
    std::size_t base = setIndex(line) * cfg.ways;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.tag == line)
            return &l;
    }
    return nullptr;
}

LlcResult
Llc::access(Addr addr, bool is_write, ThreadId thread, Cycle now,
            std::function<void(Cycle)> on_done)
{
    // Stalled writebacks gate new allocations to bound buffering.
    if (!wbRetry.empty()) {
        tick(now);
        if (wbRetry.size() > 4)
            return LlcResult::kRejectQueueFull;
    }

    Addr line = lineAddr(addr);
    auto &tstats = threadStatsMutable(thread);

    if (Line *l = findLine(line)) {
        l->lastUse = ++useCounter;
        if (is_write)
            l->dirty = true;
        ++numHits;
        ++tstats.accesses;
        if (on_done)
            on_done(now + cfg.hitLatency);
        return LlcResult::kHit;
    }

    // Miss: merge into an existing MSHR if the fill is already in flight.
    if (auto it = mshr.find(line); it != mshr.end()) {
        if (on_done)
            it->second.waiters.push_back(std::move(on_done));
        it->second.writeIntent |= is_write;
        ++numMisses;
        ++tstats.accesses;
        ++tstats.misses;
        return LlcResult::kMiss;
    }

    if (mshr.size() >= cfg.mshrs)
        return LlcResult::kReject;
    if (mem.queueFull(ReqType::kRead, line * kLineBytes))
        return LlcResult::kRejectQueueFull;  // the submit would bounce

    Request req;
    req.addr = line * kLineBytes;
    req.type = ReqType::kRead;      // write-allocate fetches the line
    req.thread = thread;
    req.arrival = now;
    req.id = Request::nextId();
    req.onComplete = [this, line](Cycle done) {
        auto it = mshr.find(line);
        if (it == mshr.end())
            panic("LLC fill completion without MSHR entry");
        MshrEntry entry = std::move(it->second);
        mshr.erase(it);
        Cycle ready = done + cfg.fillLatency;
        installLine(line, entry.writeIntent, ready);
        for (auto &w : entry.waiters)
            w(ready);
    };

    if (mem.submit(std::move(req)) != SubmitResult::kAccepted)
        return LlcResult::kRejectQueueFull;

    MshrEntry entry;
    if (on_done)
        entry.waiters.push_back(std::move(on_done));
    entry.writeIntent = is_write;
    entry.thread = thread;
    mshr.emplace(line, std::move(entry));
    ++numMisses;
    ++tstats.accesses;
    ++tstats.misses;
    return LlcResult::kMiss;
}

void
Llc::installLine(Addr line, bool dirty, Cycle now)
{
    std::size_t base = setIndex(line) * cfg.ways;
    Line *victim = &lines[base];
    for (unsigned w = 0; w < cfg.ways; ++w) {
        Line &l = lines[base + w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lastUse < victim->lastUse)
            victim = &l;
    }
    if (victim->valid && victim->dirty) {
        if (!issueWriteback(victim->tag, now))
            wbRetry.push_back(victim->tag);
    }
    victim->tag = line;
    victim->valid = true;
    victim->dirty = dirty;
    victim->lastUse = ++useCounter;
}

bool
Llc::issueWriteback(Addr line, Cycle now)
{
    if (mem.queueFull(ReqType::kWrite, line * kLineBytes))
        return false;
    Request wb;
    wb.addr = line * kLineBytes;
    wb.type = ReqType::kWrite;
    wb.thread = kNoThread;      // writebacks are not attributable
    wb.arrival = now;
    wb.id = Request::nextId();
    bool ok = mem.submit(std::move(wb)) == SubmitResult::kAccepted;
    if (ok)
        ++numWritebacks;
    return ok;
}

void
Llc::tick(Cycle now)
{
    while (!wbRetry.empty()) {
        if (!issueWriteback(wbRetry.front(), now))
            break;
        wbRetry.pop_front();
    }
}

const ThreadLlcStats &
Llc::threadStats(ThreadId thread) const
{
    static const ThreadLlcStats empty;
    if (thread < 0 || static_cast<std::size_t>(thread) >= perThread.size())
        return empty;
    return perThread[static_cast<std::size_t>(thread)];
}

ThreadLlcStats &
Llc::threadStatsMutable(ThreadId thread)
{
    if (thread < 0) {
        static ThreadLlcStats scratch;
        return scratch;
    }
    auto i = static_cast<std::size_t>(thread);
    if (i >= perThread.size())
        perThread.resize(i + 1);
    return perThread[i];
}

} // namespace bh
