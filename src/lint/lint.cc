#include "lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>

#include "lint/rules.hh"

namespace bh::lint
{

namespace
{

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Squeeze runs of whitespace to single spaces (baseline-hash input). */
std::string
normalizeLine(const std::string &s)
{
    std::string out;
    bool space = false;
    for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            space = !out.empty();
            continue;
        }
        if (space) {
            out += ' ';
            space = false;
        }
        out += c;
    }
    return out;
}

std::uint64_t
fnv1a64(const std::string &s, std::uint64_t h = 0xcbf29ce484222325ull)
{
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** A parsed `bh-lint: allow(...)` annotation. */
struct Allow
{
    int line = 0;               ///< line the annotation is on
    bool ownLine = false;       ///< annotation is the whole line
    std::vector<std::string> rules;
    bool hasReason = false;
    bool malformed = false;
    std::string error;
};

/**
 * Parse one comment for a suppression annotation. Grammar:
 *   bh-lint: allow(<rule>[, <rule>...]) <reason>
 * Returns false when the comment contains no bh-lint marker at all.
 */
bool
parseAllow(const Comment &comment, Allow &out)
{
    const std::string marker = "bh-lint:";
    auto pos = comment.text.find(marker);
    if (pos == std::string::npos)
        return false;
    out.line = comment.line;
    out.ownLine = comment.ownLine;

    std::string rest = trim(comment.text.substr(pos + marker.size()));
    const std::string verb = "allow";
    if (rest.compare(0, verb.size(), verb) != 0) {
        out.malformed = true;
        out.error = "unknown bh-lint directive (expected allow(...))";
        return true;
    }
    rest = trim(rest.substr(verb.size()));
    if (rest.empty() || rest[0] != '(') {
        out.malformed = true;
        out.error = "allow requires a parenthesized rule list";
        return true;
    }
    auto close = rest.find(')');
    if (close == std::string::npos) {
        out.malformed = true;
        out.error = "unterminated allow(...) rule list";
        return true;
    }
    std::string list = rest.substr(1, close - 1);
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        item = trim(item);
        if (!item.empty())
            out.rules.push_back(item);
    }
    if (out.rules.empty()) {
        out.malformed = true;
        out.error = "allow(...) names no rules";
        return true;
    }
    for (const auto &r : out.rules) {
        // Documentation showing the annotation grammar, not a real
        // suppression ("allow(...)", "allow(<rule>, ...)").
        if (r == "..." || r.find('<') != std::string::npos)
            return false;
    }
    for (const auto &r : out.rules) {
        if (r != "all" && ruleDescription(r).empty()) {
            out.malformed = true;
            out.error = "allow(...) names unknown rule '" + r + "'";
            return true;
        }
    }
    out.hasReason = !trim(rest.substr(close + 1)).empty();
    if (!out.hasReason) {
        out.malformed = true;
        out.error = "allow(...) requires a reason after the rule list";
    }
    return true;
}

bool
allowCovers(const Allow &allow, const Finding &finding)
{
    // Same line, or an own-line annotation directly above.
    bool positioned = allow.line == finding.line
        || (allow.ownLine && allow.line == finding.line - 1);
    if (!positioned)
        return false;
    for (const auto &r : allow.rules)
        if (r == "all" || r == finding.rule)
            return true;
    return false;
}

} // namespace

std::vector<Finding>
lintFile(const LexedFile &file)
{
    return lintFile(file, UnorderedNames{});
}

std::vector<Finding>
lintFile(const LexedFile &file, const UnorderedNames &extra)
{
    std::vector<Finding> raw = runRules(file, extra);

    std::vector<Allow> allows;
    for (const auto &comment : file.comments) {
        Allow a;
        if (!parseAllow(comment, a))
            continue;
        if (a.malformed) {
            Finding f;
            f.rule = "bad-suppression";
            f.path = file.path;
            f.line = a.line;
            f.message = a.error;
            raw.push_back(f);
            continue;
        }
        allows.push_back(a);
    }

    std::vector<Finding> out;
    for (auto &f : raw) {
        bool suppressed = false;
        if (f.rule != "bad-suppression") {
            for (const auto &a : allows) {
                if (allowCovers(a, f)) {
                    suppressed = true;
                    break;
                }
            }
        }
        if (suppressed)
            continue;
        if (f.line >= 1 && f.line <= static_cast<int>(file.lines.size()))
            f.lineText = file.lines[f.line - 1];
        out.push_back(std::move(f));
    }
    std::sort(out.begin(), out.end(), [](const Finding &a, const Finding &b) {
        if (a.line != b.line)
            return a.line < b.line;
        if (a.rule != b.rule)
            return a.rule < b.rule;
        return a.message < b.message;
    });
    return out;
}

std::vector<std::string>
collectSources(const std::string &root, const std::vector<std::string> &dirs)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    for (const auto &dir : dirs) {
        fs::path base = fs::path(root) / dir;
        std::error_code ec;
        if (!fs::is_directory(base, ec))
            continue;
        for (fs::recursive_directory_iterator it(base, ec), end;
             it != end && !ec; it.increment(ec)) {
            if (!it->is_regular_file())
                continue;
            fs::path p = it->path();
            std::string ext = p.extension().string();
            if (ext != ".cc" && ext != ".hh" && ext != ".cpp"
                && ext != ".h")
                continue;
            std::string rel =
                fs::relative(p, fs::path(root), ec).generic_string();
            if (ec)
                rel = p.generic_string();
            // Intentional rule violations exercised by test_lint.cc.
            if (rel.find("lint_fixtures") != std::string::npos)
                continue;
            out.push_back(rel);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::vector<Finding>
runLint(const std::string &root, const std::vector<std::string> &files,
        std::vector<std::string> *ioErrors)
{
    namespace fs = std::filesystem;
    // Pass 1: lex everything and collect per-file unordered-container
    // names, so an .cc iterating a member declared in its .hh is seen.
    std::vector<LexedFile> lexed;
    std::map<std::string, UnorderedNames> namesByStem;
    for (const auto &rel : files) {
        LexedFile lf;
        std::string err;
        if (!lexFile((fs::path(root) / rel).string(), lf, err)) {
            if (ioErrors)
                ioErrors->push_back(err);
            continue;
        }
        lf.path = rel;      // rules scope on repo-relative paths
        namesByStem[rel] = unorderedNames(lf);
        lexed.push_back(std::move(lf));
    }
    // Pass 2: lint, feeding each file its paired header's names.
    std::vector<Finding> out;
    for (const auto &lf : lexed) {
        auto dot = lf.path.rfind('.');
        UnorderedNames extra;
        if (dot != std::string::npos && lf.path.substr(dot) != ".hh") {
            auto it = namesByStem.find(lf.path.substr(0, dot) + ".hh");
            if (it != namesByStem.end())
                extra = it->second;
        }
        auto findings = lintFile(lf, extra);
        out.insert(out.end(), findings.begin(), findings.end());
    }
    return out;
}

std::uint64_t
findingHash(const Finding &finding)
{
    std::uint64_t h = fnv1a64(finding.rule);
    h = fnv1a64("|", h);
    return fnv1a64(normalizeLine(finding.lineText), h);
}

std::string
formatBaseline(const std::vector<Finding> &findings)
{
    std::vector<std::string> lines;
    for (const auto &f : findings) {
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(findingHash(f)));
        lines.push_back(f.rule + " " + f.path + " " + hex);
    }
    std::sort(lines.begin(), lines.end());
    std::string out =
        "# bh_lint baseline v1 — regenerate with: bh_lint --fix-baseline\n"
        "# <rule> <path> <fnv1a64 of rule|normalized source line>\n";
    for (const auto &l : lines)
        out += l + "\n";
    return out;
}

bool
parseBaseline(const std::string &text, std::vector<BaselineEntry> &out,
              std::string &err)
{
    std::stringstream ss(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(ss, line)) {
        ++lineNo;
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        std::stringstream ls(line);
        BaselineEntry e;
        std::string hex;
        if (!(ls >> e.rule >> e.path >> hex) || hex.size() != 16) {
            err = "baseline line " + std::to_string(lineNo)
                + ": expected '<rule> <path> <hash16>'";
            return false;
        }
        char *end = nullptr;
        e.hash = std::strtoull(hex.c_str(), &end, 16);
        if (end != hex.c_str() + 16) {
            err = "baseline line " + std::to_string(lineNo)
                + ": bad hash '" + hex + "'";
            return false;
        }
        out.push_back(e);
    }
    return true;
}

std::vector<Finding>
filterBaseline(const std::vector<Finding> &findings,
               const std::vector<BaselineEntry> &baseline,
               std::vector<Finding> *baselined)
{
    // Multiset of unconsumed baseline entries.
    std::map<std::string, int> pool;
    for (const auto &e : baseline) {
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(e.hash));
        pool[e.rule + " " + e.path + " " + hex]++;
    }
    std::vector<Finding> fresh;
    for (const auto &f : findings) {
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(findingHash(f)));
        auto it = pool.find(f.rule + " " + f.path + " " + hex);
        if (it != pool.end() && it->second > 0) {
            --it->second;
            if (baselined)
                baselined->push_back(f);
        } else {
            fresh.push_back(f);
        }
    }
    return fresh;
}

} // namespace bh::lint
