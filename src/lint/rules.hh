/**
 * @file
 * Internal interface between the bh_lint driver (lint.cc) and the rule
 * implementations (rules.cc). Findings returned here are raw: the
 * driver applies suppression annotations and the baseline on top.
 */

#ifndef BH_LINT_RULES_HH
#define BH_LINT_RULES_HH

#include <set>
#include <string>
#include <vector>

#include "lint/lint.hh"

namespace bh::lint
{

/** Run every rule applicable to `file.path` and return raw findings.
 *  `extra` extends rule R2's sets of known unordered-container variable
 *  names (members declared in the paired header). */
std::vector<Finding> runRules(const LexedFile &file,
                              const UnorderedNames &extra);

} // namespace bh::lint

#endif // BH_LINT_RULES_HH
