#include "lint/rules.hh"

#include <algorithm>
#include <set>
#include <string>

namespace bh::lint
{

namespace
{

using Kind = Token::Kind;

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size()
        && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** True when `path` is inside top-level directory `dir` ("src", ...).
 *  Fixture files mimic the tree (lint_fixtures/src/...), so a substring
 *  match keeps rule scoping identical for them. */
bool
inDir(const std::string &path, const std::string &dir)
{
    if (path.compare(0, dir.size() + 1, dir + "/") == 0)
        return true;
    return path.find("/" + dir + "/") != std::string::npos;
}

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == Kind::kIdent && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == Kind::kPunct && t.text == text;
}

/**
 * Skip a balanced template argument list. `i` indexes the opening `<`;
 * returns the index just past the matching `>`, or npos when the `<`
 * turns out not to open a template list (statement punctuation hit).
 * `overshot`, when non-null, is set when a `>>` token also closed an
 * enclosing template list — i.e. this list was nested inside another
 * template (vector<unordered_map<...>>).
 */
std::size_t
skipTemplateArgs(const std::vector<Token> &toks, std::size_t i,
                 bool *overshot = nullptr)
{
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
        const Token &t = toks[j];
        if (t.kind != Kind::kPunct)
            continue;
        if (t.text == "<") {
            ++depth;
        } else if (t.text == ">") {
            if (--depth == 0)
                return j + 1;
        } else if (t.text == ">>") {
            depth -= 2;
            if (depth <= 0) {
                if (overshot)
                    *overshot = depth < 0;
                return j + 1;
            }
        } else if (t.text == ";" || t.text == "{" || t.text == "}") {
            return std::string::npos;
        }
    }
    return std::string::npos;
}

/** Index of the `)` matching the `(` at `i` (npos when unbalanced). */
std::size_t
matchParen(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
        if (isPunct(toks[j], "("))
            ++depth;
        else if (isPunct(toks[j], ")") && --depth == 0)
            return j;
    }
    return std::string::npos;
}

void
add(std::vector<Finding> &out, const LexedFile &f, const char *rule,
    int line, std::string message)
{
    Finding finding;
    finding.rule = rule;
    finding.path = f.path;
    finding.line = line;
    finding.message = std::move(message);
    out.push_back(std::move(finding));
}

// --------------------------------------------------------------------
// R1 nondet: banned nondeterminism sources in simulation code.
// --------------------------------------------------------------------

const std::set<std::string> kBannedCalls = {
    "rand", "srand", "random", "rand_r", "drand48", "lrand48", "mrand48",
    "erand48", "nrand48", "jrand48", "srand48", "time", "clock",
    "gettimeofday", "clock_gettime", "timespec_get", "localtime", "gmtime",
    "mktime", "ftime",
};

const std::set<std::string> kOrderedContainers = {
    "map", "set", "multimap", "multiset",
    "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset",
};

void
ruleNondet(const LexedFile &f, std::vector<Finding> &out)
{
    // Timing sidecars measure wall clock by design.
    if (endsWith(f.path, "report/perf.cc") || endsWith(f.path, "bench/main.cc"))
        return;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != Kind::kIdent)
            continue;

        // Banned libc call: `name(` not reached through a member or a
        // non-std namespace (std::time( is still banned).
        if (kBannedCalls.count(t.text) && i + 1 < toks.size()
            && isPunct(toks[i + 1], "(")) {
            bool member = i > 0
                && (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->"));
            bool otherNs = i >= 2 && isPunct(toks[i - 1], "::")
                && !isIdent(toks[i - 2], "std");
            if (!member && !otherNs) {
                add(out, f, "nondet", t.line,
                    "call to '" + t.text
                    + "' — nondeterministic; simulation code must derive "
                      "all values from the seeded Rng and simulated time");
            }
            continue;
        }

        // Wall-clock reads: `*_clock::now(`.
        if (endsWith(t.text, "_clock") && i + 2 < toks.size()
            && isPunct(toks[i + 1], "::") && isIdent(toks[i + 2], "now")) {
            add(out, f, "nondet", t.line,
                "wall-clock read '" + t.text
                + "::now' — simulation code must use simulated cycles");
            continue;
        }

        // Pointer-valued ordering/hash keys: std::map<T *, ...> etc.
        // Pointer values vary run to run (ASLR), so any container
        // ordered or hashed by them iterates nondeterministically.
        if (kOrderedContainers.count(t.text) && i >= 2
            && isPunct(toks[i - 1], "::") && isIdent(toks[i - 2], "std")
            && i + 1 < toks.size() && isPunct(toks[i + 1], "<")) {
            int depth = 0;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                const Token &u = toks[j];
                if (u.kind != Kind::kPunct) {
                    continue;
                } else if (u.text == "<") {
                    ++depth;
                } else if (u.text == ">" || u.text == ">>") {
                    depth -= u.text == ">>" ? 2 : 1;
                    if (depth <= 0)
                        break;
                } else if (u.text == "," && depth == 1) {
                    break;      // end of the key type argument
                } else if (u.text == "*" && depth >= 1) {
                    add(out, f, "nondet", t.line,
                        "pointer-valued key in std::" + t.text
                        + " — pointer order/hashes vary per run; key on a "
                          "stable id instead");
                    break;
                } else if (u.text == ";" || u.text == "{") {
                    break;
                }
            }
        }
    }
}

// --------------------------------------------------------------------
// R2 unordered-iter: no iteration over unordered containers.
// --------------------------------------------------------------------

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset",
};

/**
 * Names of variables/members declared (in this token stream) with an
 * unordered container type, plus alias type names. Heuristic but
 * deliberate: this linter knows the repo, not the language.
 */
void
collectUnorderedNames(const std::vector<Token> &toks,
                      std::set<std::string> &typeNames,
                      std::set<std::string> &varNames,
                      std::set<std::string> *containerVarNames)
{
    // Pass 1: using NAME = std::unordered_map<...>; / typedef ... NAME;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (isIdent(toks[i], "using") && toks[i + 1].kind == Kind::kIdent
            && isPunct(toks[i + 2], "=")) {
            for (std::size_t j = i + 3;
                 j < toks.size() && !isPunct(toks[j], ";"); ++j) {
                if (toks[j].kind == Kind::kIdent
                    && kUnorderedTypes.count(toks[j].text)) {
                    typeNames.insert(toks[i + 1].text);
                    break;
                }
            }
        }
    }

    // Pass 2: declarations `unordered_map<...> name`. When the skip
    // overshoots (a `>>` closed an enclosing list too), the container is
    // nested inside an outer template — vector<unordered_map<...>> — so
    // iterating the declarator itself is order-safe, but its *elements*
    // are unordered: record it separately so range-for loop variables
    // over it get tainted.
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != Kind::kIdent)
            continue;
        std::size_t after = std::string::npos;
        bool nested = false;
        if (kUnorderedTypes.count(t.text) && i + 1 < toks.size()
            && isPunct(toks[i + 1], "<")) {
            after = skipTemplateArgs(toks, i + 1, &nested);
        } else if (typeNames.count(t.text)) {
            after = i + 1;
        }
        if (after == std::string::npos || after >= toks.size())
            continue;
        // Optional declarator decorations.
        while (after < toks.size()
               && (isPunct(toks[after], "&") || isPunct(toks[after], "*")
                   || isIdent(toks[after], "const")))
            ++after;
        if (after + 1 >= toks.size() || toks[after].kind != Kind::kIdent)
            continue;
        const Token &name = toks[after];
        const Token &next = toks[after + 1];
        if (isPunct(next, ";") || isPunct(next, "=") || isPunct(next, "{")
            || isPunct(next, ",") || isPunct(next, ")")
            || isPunct(next, "[")) {
            if (!nested)
                varNames.insert(name.text);
            else if (containerVarNames)
                containerVarNames->insert(name.text);
        }
    }
}

void
ruleUnorderedIter(const LexedFile &f, std::vector<Finding> &out,
                  const UnorderedNames &extra)
{
    if (!inDir(f.path, "src") && !inDir(f.path, "bench"))
        return;
    const auto &toks = f.tokens;
    std::set<std::string> typeNames, varNames(extra.direct),
        containerVars(extra.containers);
    collectUnorderedNames(toks, typeNames, varNames, &containerVars);

    auto isUnorderedExpr = [&](std::size_t b, std::size_t e) {
        bool sorted = false, unordered = false;
        for (std::size_t j = b; j < e; ++j) {
            if (toks[j].kind != Kind::kIdent)
                continue;
            if (toks[j].text == "sortedItems" || toks[j].text == "sortedKeys"
                || toks[j].text == "sortedMapKeys")
                sorted = true;
            if (varNames.count(toks[j].text)
                || kUnorderedTypes.count(toks[j].text)
                || typeNames.count(toks[j].text))
                unordered = true;
        }
        return unordered && !sorted;
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        // Range-for over an unordered container.
        if (isIdent(toks[i], "for") && i + 1 < toks.size()
            && isPunct(toks[i + 1], "(")) {
            std::size_t close = matchParen(toks, i + 1);
            if (close == std::string::npos)
                continue;
            // The range-for `:` sits at paren depth 1 (`::` is its own
            // token, so plain `:` is unambiguous).
            std::size_t colon = std::string::npos;
            int depth = 0;
            for (std::size_t j = i + 1; j < close; ++j) {
                if (isPunct(toks[j], "("))
                    ++depth;
                else if (isPunct(toks[j], ")"))
                    --depth;
                else if (isPunct(toks[j], ":") && depth == 1) {
                    colon = j;
                    break;
                }
            }
            if (colon != std::string::npos) {
                if (isUnorderedExpr(colon + 1, close)) {
                    add(out, f, "unordered-iter", toks[i].line,
                        "range-for over an unordered container — "
                        "iteration order is stdlib-specific; use "
                        "sortedItems()/sortedKeys() from "
                        "common/ordered.hh");
                } else {
                    // Range-for over an ordered container *of* unordered
                    // containers (vector<unordered_map<...>>): the walk
                    // itself is fine, but the loop variable now names an
                    // unordered container — taint it.
                    bool overContainer = false;
                    for (std::size_t j = colon + 1; j < close; ++j)
                        if (toks[j].kind == Kind::kIdent
                            && containerVars.count(toks[j].text))
                            overContainer = true;
                    if (overContainer && colon >= 1
                        && toks[colon - 1].kind == Kind::kIdent)
                        varNames.insert(toks[colon - 1].text);
                }
            }
            continue;
        }
        // Explicit iterator walk: name.begin() / name->cbegin() ...
        if (toks[i].kind == Kind::kIdent
            && (toks[i].text == "begin" || toks[i].text == "cbegin"
                || toks[i].text == "rbegin")
            && i >= 2 && i + 1 < toks.size() && isPunct(toks[i + 1], "(")
            && (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->"))
            && toks[i - 2].kind == Kind::kIdent
            && varNames.count(toks[i - 2].text)) {
            add(out, f, "unordered-iter", toks[i].line,
                "iterator walk over unordered container '"
                + toks[i - 2].text
                + "' — iteration order is stdlib-specific; use "
                  "sortedItems()/sortedKeys() from common/ordered.hh");
        }
    }
}

// --------------------------------------------------------------------
// R3a trace-gate: TraceSink emit calls lexically gated on on().
// --------------------------------------------------------------------

void
ruleTraceGate(const LexedFile &f, std::vector<Finding> &out)
{
    if (!inDir(f.path, "src") && !inDir(f.path, "bench"))
        return;
    // The sink's own implementation necessarily "emits" ungated.
    if (endsWith(f.path, "common/trace_sink.cc"))
        return;
    const auto &toks = f.tokens;

    int braceDepth = 0;
    std::vector<int> gateDepths;    // depths of gated `{` scopes
    bool pendingBraceGate = false;  // gate condition just closed, `{` next
    bool stmtGate = false;          // braceless gated single statement

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (isPunct(t, "{")) {
            ++braceDepth;
            if (pendingBraceGate) {
                gateDepths.push_back(braceDepth);
                pendingBraceGate = false;
                stmtGate = false;
            }
            continue;
        }
        if (isPunct(t, "}")) {
            --braceDepth;
            while (!gateDepths.empty() && gateDepths.back() > braceDepth)
                gateDepths.pop_back();
            continue;
        }
        if (isPunct(t, ";")) {
            stmtGate = false;
            pendingBraceGate = false;
            continue;
        }
        if (isIdent(t, "if") && i + 1 < toks.size()
            && isPunct(toks[i + 1], "(")) {
            std::size_t close = matchParen(toks, i + 1);
            if (close == std::string::npos)
                continue;
            bool gated = false;
            for (std::size_t j = i + 2; j + 2 < close; ++j) {
                if (isIdent(toks[j], "TraceSink")
                    && isPunct(toks[j + 1], "::")
                    && isIdent(toks[j + 2], "on")
                    && !(j > 0 && isPunct(toks[j - 1], "!"))) {
                    gated = true;
                    break;
                }
            }
            if (gated) {
                if (close + 1 < toks.size()
                    && isPunct(toks[close + 1], "{")) {
                    pendingBraceGate = true;
                } else {
                    stmtGate = true;
                }
                i = close;
            }
            continue;
        }
        if (isIdent(t, "TraceSink") && i + 2 < toks.size()
            && isPunct(toks[i + 1], "::")
            && (isIdent(toks[i + 2], "instant")
                || isIdent(toks[i + 2], "complete")
                || isIdent(toks[i + 2], "counter"))
            && i + 3 < toks.size() && isPunct(toks[i + 3], "(")) {
            if (gateDepths.empty() && !stmtGate) {
                add(out, f, "trace-gate", t.line,
                    "TraceSink::" + toks[i + 2].text
                    + " not lexically gated on TraceSink::on() — the "
                      "observation-only contract requires the single-"
                      "branch gate at every emit site");
            }
        }
    }
}

// --------------------------------------------------------------------
// R3b observer-const: observer hook headers take only const state.
// --------------------------------------------------------------------

void
ruleObserverConst(const LexedFile &f, std::vector<Finding> &out)
{
    if (!endsWith(f.path, "analysis/security_oracle.hh")
        && !endsWith(f.path, "dram/hammer_observer.hh"))
        return;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        // Parameter lists: ident directly followed by `(`.
        if (toks[i].kind != Kind::kIdent || i + 1 >= toks.size()
            || !isPunct(toks[i + 1], "("))
            continue;
        std::size_t close = matchParen(toks, i + 1);
        if (close == std::string::npos)
            continue;
        std::size_t paramStart = i + 2;
        int depth = 0;
        for (std::size_t j = i + 1; j <= close; ++j) {
            bool paramEnd = false;
            if (isPunct(toks[j], "(")) {
                ++depth;
            } else if (isPunct(toks[j], ")")) {
                paramEnd = --depth == 0;
            } else if (isPunct(toks[j], ",") && depth == 1) {
                paramEnd = true;
            }
            if (!paramEnd)
                continue;
            bool hasConst = false, hasRefPtr = false;
            for (std::size_t k = paramStart; k < j; ++k) {
                if (isIdent(toks[k], "const"))
                    hasConst = true;
                if (isPunct(toks[k], "&") || isPunct(toks[k], "*"))
                    hasRefPtr = true;
            }
            if (hasRefPtr && !hasConst) {
                add(out, f, "observer-const", toks[paramStart].line,
                    "observer hook parameter of '" + toks[i].text
                    + "' is a mutable reference/pointer — observers must "
                      "take only const simulation state");
            }
            paramStart = j + 1;
        }
        i = close;
    }
}

// --------------------------------------------------------------------
// R4 rng-discipline: all randomness flows through a seeded bh::Rng.
// --------------------------------------------------------------------

const std::set<std::string> kStdEngines = {
    "random_device", "mt19937", "mt19937_64", "minstd_rand",
    "minstd_rand0", "default_random_engine", "ranlux24", "ranlux48",
    "knuth_b",
};

void
ruleRngDiscipline(const LexedFile &f, std::vector<Finding> &out)
{
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind == Kind::kPreproc) {
            if (t.text.find("include") != std::string::npos
                && t.text.find("<random>") != std::string::npos) {
                add(out, f, "rng-discipline", t.line,
                    "#include <random> — all randomness must flow "
                    "through bh::Rng (common/rng.hh) so streams are "
                    "explicitly seeded and forkable");
            }
            continue;
        }
        if (t.kind == Kind::kIdent && kStdEngines.count(t.text)) {
            add(out, f, "rng-discipline", t.line,
                "std::" + t.text
                + " — use the explicitly seeded bh::Rng instead");
            continue;
        }
        // Rng constructed from a nondeterministic or address-derived
        // expression: the seed must be a pure value.
        if (isIdent(t, "Rng") && i + 1 < toks.size()
            && isPunct(toks[i + 1], "(")) {
            std::size_t close = matchParen(toks, i + 1);
            if (close == std::string::npos)
                continue;
            for (std::size_t j = i + 2; j < close; ++j) {
                const Token &u = toks[j];
                bool bad = (u.kind == Kind::kIdent
                            && (kBannedCalls.count(u.text)
                                || kStdEngines.count(u.text)
                                || endsWith(u.text, "_clock")
                                || u.text == "uintptr_t"))
                    || isIdent(u, "this");
                if (bad) {
                    add(out, f, "rng-discipline", t.line,
                        "Rng seeded from '" + u.text
                        + "' — seeds must be pure values derived from "
                          "the experiment's master seed");
                    break;
                }
            }
        }
    }
}

// --------------------------------------------------------------------
// R5 member-init: POD data members carry in-class initializers.
// --------------------------------------------------------------------

const std::set<std::string> kPodBase = {
    "bool", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed",
    "wchar_t", "char16_t", "char32_t", "size_t", "ptrdiff_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "intptr_t", "uintptr_t",
    // Repo-local integral aliases (common/types.hh).
    "Cycle", "RowId", "Addr", "ThreadId",
};

const std::set<std::string> kTypeModifiers = {
    "std", "const", "volatile", "unsigned", "signed", "mutable", "long",
    "short",
};

/** Skip to the `}` matching the `{` at `i`; returns index past it. */
std::size_t
skipBraces(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
        if (isPunct(toks[j], "{"))
            ++depth;
        else if (isPunct(toks[j], "}") && --depth == 0)
            return j + 1;
    }
    return toks.size();
}

/** One declarator group of a member statement. */
void
checkMemberGroup(const LexedFile &f, const std::vector<Token> &type,
                 const std::vector<Token> &decl, std::vector<Finding> &out)
{
    if (decl.empty())
        return;
    // Initialized (`= ...` or `{...}` marked by lint as `=`)?
    for (const auto &t : decl)
        if (isPunct(t, "=") || isPunct(t, "{"))
            return;
    // Declarator name: first ident in the group (the rest is [] or :).
    const Token *name = nullptr;
    std::size_t nameIdx = 0;
    for (std::size_t i = 0; i < decl.size(); ++i) {
        if (decl[i].kind == Kind::kIdent
            && !isIdent(decl[i], "const") && !isIdent(decl[i], "mutable")) {
            name = &decl[i];
            nameIdx = i;
            break;
        }
    }
    if (!name)
        return;
    // Bitfields cannot take default member initializers before C++20.
    if (nameIdx + 1 < decl.size() && isPunct(decl[nameIdx + 1], ":"))
        return;

    bool pointer = false, reference = false, podName = false, other = false;
    auto classify = [&](const std::vector<Token> &ts, std::size_t from,
                        std::size_t to) {
        for (std::size_t i = from; i < to; ++i) {
            const Token &t = ts[i];
            if (isPunct(t, "*")) {
                pointer = true;
            } else if (isPunct(t, "&") || isPunct(t, "&&")) {
                reference = true;
            } else if (t.kind == Kind::kIdent) {
                if (kPodBase.count(t.text))
                    podName = true;
                else if (!kTypeModifiers.count(t.text))
                    other = true;
            }
        }
    };
    classify(type, 0, type.size());
    classify(decl, 0, nameIdx);     // group-local decorations (*, &)
    if (reference || other)
        return;
    if (!pointer && !podName)
        return;
    add(out, f, "member-init", name->line,
        std::string(pointer ? "pointer" : "POD") + " member '" + name->text
        + "' has no in-class initializer — uninitialized members read "
          "indeterminate values and silently break run-to-run "
          "determinism; default it here");
}

void
checkMemberStatement(const LexedFile &f, const std::vector<Token> &stmt,
                     std::vector<Finding> &out)
{
    if (stmt.empty())
        return;
    static const std::set<std::string> kSkipLead = {
        "using", "typedef", "friend", "static", "template", "operator",
        "public", "private", "protected", "enum", "struct", "class",
        "union", "virtual", "explicit", "inline", "constexpr", "extern",
        "namespace",
    };
    if (stmt[0].kind == Kind::kIdent && kSkipLead.count(stmt[0].text))
        return;
    for (const auto &t : stmt) {
        if (isPunct(t, "("))
            return;     // function declaration / pointer-to-function
        if (t.kind == Kind::kPreproc)
            return;
        if (t.kind == Kind::kIdent && kSkipLead.count(t.text)
            && t.text != "struct" && t.text != "class")
            return;
    }
    // Split into type + comma-separated declarator groups, tracking
    // template depth so `map<K, V>` commas don't split.
    int angle = 0;
    std::vector<std::vector<Token>> groups(1);
    for (const auto &t : stmt) {
        if (isPunct(t, "<"))
            ++angle;
        else if (isPunct(t, ">"))
            angle = std::max(0, angle - 1);
        else if (isPunct(t, ">>"))
            angle = std::max(0, angle - 2);
        if (isPunct(t, ",") && angle == 0) {
            groups.emplace_back();
            continue;
        }
        groups.back().push_back(t);
    }
    // The first group carries the type: everything before the last
    // ident that starts the declarator. Find the declarator of group 0:
    // the last ident whose successor is not `::`/ident (i.e. the name).
    auto &first = groups[0];
    std::size_t split = first.size();
    for (std::size_t i = first.size(); i > 0; --i) {
        const Token &t = first[i - 1];
        if (t.kind == Kind::kIdent && !kTypeModifiers.count(t.text)) {
            bool qualified = i >= 2 && isPunct(first[i - 2], "::");
            if (!qualified) {
                split = i - 1;
                break;
            }
            i -= 1;     // skip the qualifier chain
        }
        if (isPunct(t, "=") || isPunct(t, "{"))
            return;     // initialized — nothing to check
    }
    if (split == first.size() || split == 0)
        return;     // no separable type/declarator (e.g. lone ident)
    std::vector<Token> type(first.begin(), first.begin() + split);
    std::vector<Token> decl0(first.begin() + split, first.end());
    checkMemberGroup(f, type, decl0, out);
    for (std::size_t g = 1; g < groups.size(); ++g)
        checkMemberGroup(f, type, groups[g], out);
}

void
ruleMemberInit(const LexedFile &f, std::vector<Finding> &out)
{
    if (!inDir(f.path, "src"))
        return;
    const auto &toks = f.tokens;

    // Scope stack: what each open `{` is.
    enum class Scope { kClass, kOther };
    std::vector<Scope> scopes;
    std::vector<Token> stmt;    // current statement at class level

    auto atClassLevel = [&]() {
        return !scopes.empty() && scopes.back() == Scope::kClass;
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind == Kind::kPreproc)
            continue;

        if (isPunct(t, "{")) {
            // Classify this scope from the statement head before it.
            std::size_t b = i;
            bool sawParen = false;
            std::vector<const Token *> head;
            while (b > 0) {
                const Token &p = toks[b - 1];
                if (isPunct(p, ";") || isPunct(p, "{") || isPunct(p, "}"))
                    break;
                if (isPunct(p, ")"))
                    sawParen = true;
                head.push_back(&p);
                --b;
            }
            std::reverse(head.begin(), head.end());
            bool classHead = false, enumHead = false, aggInit = false;
            for (const auto *h : head) {
                if (isIdent(*h, "enum")) {
                    enumHead = true;
                    break;
                }
                if (isIdent(*h, "union")) {
                    enumHead = true;    // opaque, like enums
                    break;
                }
                if ((isIdent(*h, "struct") || isIdent(*h, "class"))
                    && !sawParen) {
                    classHead = true;
                }
                if (isPunct(*h, "="))
                    aggInit = true;
            }
            // `= { ... }` initializer at class level: mark the current
            // statement initialized and consume the braces inline.
            if (atClassLevel() && (aggInit || (!head.empty()
                    && isPunct(*head.back(), "=")))) {
                stmt.push_back(t);      // records `{` => initialized
                i = skipBraces(toks, i) - 1;
                continue;
            }
            if (enumHead) {
                i = skipBraces(toks, i) - 1;
                if (atClassLevel()) {
                    // `enum X { ... };` inside a class: swallow through
                    // the trailing `;` by clearing the statement.
                    stmt.clear();
                }
                continue;
            }
            if (atClassLevel() && !classHead) {
                // Inline function body (or similar) inside the class:
                // opaque; the statement before it was a function head.
                stmt.clear();
                i = skipBraces(toks, i) - 1;
                continue;
            }
            scopes.push_back(classHead ? Scope::kClass : Scope::kOther);
            stmt.clear();
            continue;
        }
        if (isPunct(t, "}")) {
            if (!scopes.empty())
                scopes.pop_back();
            stmt.clear();
            continue;
        }
        if (!atClassLevel())
            continue;
        if (isPunct(t, ";")) {
            checkMemberStatement(f, stmt, out);
            stmt.clear();
            continue;
        }
        // Access specifiers end with `:` — treat as separators. A plain
        // `:` directly after public/private/protected only.
        if (isPunct(t, ":") && !stmt.empty()
            && stmt.size() == 1 && stmt[0].kind == Kind::kIdent
            && (stmt[0].text == "public" || stmt[0].text == "private"
                || stmt[0].text == "protected")) {
            stmt.clear();
            continue;
        }
        stmt.push_back(t);
    }
}

} // namespace

std::vector<std::string>
ruleIds()
{
    return {"nondet", "unordered-iter", "trace-gate", "observer-const",
            "rng-discipline", "member-init"};
}

std::string
ruleDescription(const std::string &rule)
{
    if (rule == "nondet")
        return "banned nondeterminism source in simulation code (R1)";
    if (rule == "unordered-iter")
        return "iteration over an unordered container (R2)";
    if (rule == "trace-gate")
        return "TraceSink emit not gated on TraceSink::on() (R3)";
    if (rule == "observer-const")
        return "observer hook takes mutable simulation state (R3)";
    if (rule == "rng-discipline")
        return "randomness outside the seeded bh::Rng discipline (R4)";
    if (rule == "member-init")
        return "POD member without in-class initializer (R5)";
    if (rule == "bad-suppression")
        return "malformed bh-lint: allow(...) annotation";
    return "";
}

UnorderedNames
unorderedNames(const LexedFile &file)
{
    UnorderedNames names;
    std::set<std::string> typeNames;
    collectUnorderedNames(file.tokens, typeNames, names.direct,
                          &names.containers);
    return names;
}

std::vector<Finding>
runRules(const LexedFile &file, const UnorderedNames &extra)
{
    std::vector<Finding> out;
    if (!inDir(file.path, "src") && !inDir(file.path, "bench")
        && !inDir(file.path, "tests"))
        return out;
    ruleNondet(file, out);
    ruleUnorderedIter(file, out, extra);
    ruleTraceGate(file, out);
    ruleObserverConst(file, out);
    ruleRngDiscipline(file, out);
    ruleMemberInit(file, out);
    return out;
}

} // namespace bh::lint
