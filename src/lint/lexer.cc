#include "lint/lexer.hh"

#include <cctype>
#include <fstream>
#include <sstream>

namespace bh::lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators the rules care about, longest first. */
const char *const kPuncts[] = {
    "->*", "...", "::", "->", "<<=", ">>=", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "++", "--",
};

} // namespace

LexedFile
lex(const std::string &path, const std::string &content)
{
    LexedFile out;
    out.path = path;

    {
        std::string cur;
        for (char c : content) {
            if (c == '\n') {
                out.lines.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        if (!cur.empty())
            out.lines.push_back(cur);
    }

    const std::size_t n = content.size();
    std::size_t i = 0;
    int line = 1;
    bool lineHasCode = false;

    auto advance = [&](std::size_t count) {
        for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
            if (content[i] == '\n') {
                ++line;
                lineHasCode = false;
            }
        }
    };

    while (i < n) {
        char c = content[i];

        if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\f'
            || c == '\v') {
            advance(1);
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
            Comment cm;
            cm.line = line;
            cm.ownLine = !lineHasCode;
            std::size_t j = i + 2;
            while (j < n && content[j] != '\n')
                ++j;
            cm.text = content.substr(i + 2, j - (i + 2));
            out.comments.push_back(cm);
            advance(j - i);
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
            Comment cm;
            cm.line = line;
            cm.ownLine = !lineHasCode;
            std::size_t j = i + 2;
            while (j + 1 < n && !(content[j] == '*' && content[j + 1] == '/'))
                ++j;
            cm.text = content.substr(i + 2, j - (i + 2));
            out.comments.push_back(cm);
            advance(std::min(n, j + 2) - i);
            continue;
        }

        // Preprocessor line: capture as one token, joining continuations.
        if (c == '#' && !lineHasCode) {
            Token t;
            t.kind = Token::Kind::kPreproc;
            t.line = line;
            std::size_t j = i;
            std::string text;
            while (j < n) {
                if (content[j] == '\\' && j + 1 < n
                    && content[j + 1] == '\n') {
                    text += ' ';
                    j += 2;
                    continue;
                }
                if (content[j] == '\n')
                    break;
                text += content[j];
                ++j;
            }
            t.text = text;
            out.tokens.push_back(t);
            advance(j - i);
            lineHasCode = true;
            continue;
        }

        lineHasCode = true;

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && content[j] != '(')
                delim += content[j++];
            std::string closer = ")" + delim + "\"";
            std::size_t end = content.find(closer, j);
            if (end == std::string::npos)
                end = n;
            Token t;
            t.kind = Token::Kind::kString;
            t.line = line;
            t.text = content.substr(j + 1, end - j - 1);
            out.tokens.push_back(t);
            advance(std::min(n, end + closer.size()) - i);
            continue;
        }

        // String / char literal (possibly with a short prefix like u8).
        if (c == '"' || c == '\'') {
            char quote = c;
            Token t;
            t.kind = quote == '"' ? Token::Kind::kString : Token::Kind::kChar;
            t.line = line;
            std::size_t j = i + 1;
            std::string text;
            while (j < n && content[j] != quote) {
                if (content[j] == '\\' && j + 1 < n) {
                    text += content[j];
                    text += content[j + 1];
                    j += 2;
                    continue;
                }
                text += content[j];
                ++j;
            }
            t.text = text;
            out.tokens.push_back(t);
            advance(std::min(n, j + 1) - i);
            continue;
        }

        // Identifier / keyword.
        if (isIdentStart(c)) {
            std::size_t j = i;
            while (j < n && isIdentChar(content[j]))
                ++j;
            std::string word = content.substr(i, j - i);
            // A string prefix directly before a quote (L"...", u8"...").
            if (j < n && (content[j] == '"' || content[j] == '\'')
                && (word == "L" || word == "u" || word == "U"
                    || word == "u8")) {
                advance(j - i);
                continue;
            }
            Token t;
            t.kind = Token::Kind::kIdent;
            t.line = line;
            t.text = word;
            out.tokens.push_back(t);
            advance(j - i);
            continue;
        }

        // Number (incl. hex, digit separators, suffixes, exponents).
        if (std::isdigit(static_cast<unsigned char>(c))
            || (c == '.' && i + 1 < n
                && std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
            std::size_t j = i;
            while (j < n
                   && (isIdentChar(content[j]) || content[j] == '.'
                       || content[j] == '\''
                       || ((content[j] == '+' || content[j] == '-') && j > i
                           && (content[j - 1] == 'e' || content[j - 1] == 'E'
                               || content[j - 1] == 'p'
                               || content[j - 1] == 'P'))))
                ++j;
            Token t;
            t.kind = Token::Kind::kNumber;
            t.line = line;
            t.text = content.substr(i, j - i);
            out.tokens.push_back(t);
            advance(j - i);
            continue;
        }

        // Punctuator: longest match from the table, else one char.
        {
            std::string match(1, c);
            for (const char *p : kPuncts) {
                std::size_t len = std::char_traits<char>::length(p);
                if (i + len <= n && content.compare(i, len, p) == 0) {
                    match.assign(p, len);
                    break;
                }
            }
            Token t;
            t.kind = Token::Kind::kPunct;
            t.line = line;
            t.text = match;
            out.tokens.push_back(t);
            advance(match.size());
        }
    }

    return out;
}

bool
lexFile(const std::string &path, LexedFile &out, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = lex(path, ss.str());
    return true;
}

} // namespace bh::lint
