/**
 * @file
 * bh_lint: the repo's in-tree static analyzer.
 *
 * Every correctness claim this repo makes — byte-identical BENCH_*.json
 * for any --jobs/--shard/--channel-threads/--skip combination,
 * observation-only TraceSink and SecurityOracle hooks — is enforced
 * dynamically by differential tests that re-run the simulator. bh_lint
 * enforces the *source patterns* behind those claims statically, so a
 * new Mitigation or experiment that would break them fails at CI time
 * instead of one grid cell at a time. Rules (see rules.cc):
 *
 *   R1 nondet          banned nondeterminism sources in simulation code:
 *                      rand/srand/time()/wall-clock now(), and
 *                      pointer-valued map/set ordering keys.
 *   R2 unordered-iter  no iteration over std::unordered_{map,set}
 *                      (iteration order is stdlib-specific); go through
 *                      sortedItems()/sortedKeys() from common/ordered.hh.
 *   R3 trace-gate      every TraceSink emit call lexically gated on
 *                      TraceSink::on(); observer hook headers take only
 *                      const simulation state.
 *   R4 rng-discipline  all randomness flows through bh::Rng seeded from
 *                      pure seed expressions; no <random>, random_device,
 *                      mt19937, or nondeterministically-seeded Rng.
 *   R5 member-init     POD-typed data members in src/ carry in-class
 *                      initializers (uninitialized members are UB bait
 *                      and a determinism hazard when structs are copied
 *                      into reports before every field is assigned).
 *
 * A finding is suppressed by an annotation on its line or the line
 * directly above:
 *
 *     // bh-lint: allow(<rule>[, <rule>...]) <reason>
 *
 * The reason is mandatory; an allow() without one is itself a finding
 * (rule "bad-suppression"). A checked-in baseline file
 * (.bh_lint_baseline) makes adoption incremental: baselined findings
 * are reported only with --show-baselined and do not fail the run;
 * `bh_lint --fix-baseline` regenerates the file. Baseline entries key
 * on (rule, path, hash of the normalized source line), so findings
 * survive unrelated line-number drift but go stale when the offending
 * line itself changes — exactly when a human should re-look.
 */

#ifndef BH_LINT_LINT_HH
#define BH_LINT_LINT_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hh"

namespace bh::lint
{

/** One rule violation at a source location. */
struct Finding
{
    std::string rule;       ///< rule id, e.g. "nondet"
    std::string path;       ///< repo-relative path as scanned
    int line = 0;           ///< 1-based
    std::string message;
    std::string lineText;   ///< raw source line (for baseline hashing)
};

/** Rule ids in catalog order (bad-suppression is implicit). */
std::vector<std::string> ruleIds();

/** One-line description of a rule id ("" for unknown ids). */
std::string ruleDescription(const std::string &rule);

/**
 * Run every rule over one tokenized file. `path` should be the
 * repo-relative path (rule scoping and allowlists match on it).
 * Suppression annotations are applied; malformed ones are reported.
 * `extra` names additional unordered-container variables declared
 * outside this file (runLint feeds the paired header's members in, so
 * an .cc iterating a member declared in its .hh is still caught by
 * rule R2).
 */
struct UnorderedNames
{
    /// Variables whose own type is an unordered container.
    std::set<std::string> direct;
    /// Variables of ordered-container-of-unordered type
    /// (vector<unordered_map<...>>): iterating them is safe, but their
    /// elements are unordered, so range-for loop variables get tainted.
    std::set<std::string> containers;
};
std::vector<Finding> lintFile(const LexedFile &file,
                              const UnorderedNames &extra);
std::vector<Finding> lintFile(const LexedFile &file);

/** Unordered-container variables/members declared in `file` (R2
 *  bookkeeping; exposed so runLint can pair headers with sources). */
UnorderedNames unorderedNames(const LexedFile &file);

/**
 * Recursively collect the .cc/.hh/.cpp files under `root`/`dirs`,
 * skipping tests/lint_fixtures (intentional violations used by
 * tests/test_lint.cc). Returned paths are repo-relative and sorted.
 */
std::vector<std::string> collectSources(const std::string &root,
                                        const std::vector<std::string> &dirs);

/** Lint a set of repo-relative files under `root`. */
std::vector<Finding> runLint(const std::string &root,
                             const std::vector<std::string> &files,
                             std::vector<std::string> *ioErrors = nullptr);

/** Stable 64-bit hash of a finding's identity line (FNV-1a over the
 *  rule and the whitespace-normalized source line). */
std::uint64_t findingHash(const Finding &finding);

/** Serialize findings to baseline-file text (sorted, deterministic). */
std::string formatBaseline(const std::vector<Finding> &findings);

/**
 * Parse baseline text. Returns false on a malformed line (message in
 * `err`). Entries are (rule, path, hash) triples with multiplicity.
 */
struct BaselineEntry
{
    std::string rule;
    std::string path;
    std::uint64_t hash = 0;
};
bool parseBaseline(const std::string &text,
                   std::vector<BaselineEntry> &out, std::string &err);

/**
 * Split `findings` into new findings (returned) and baselined ones
 * (appended to `baselined` when non-null). Each baseline entry absorbs
 * at most one finding.
 */
std::vector<Finding>
filterBaseline(const std::vector<Finding> &findings,
               const std::vector<BaselineEntry> &baseline,
               std::vector<Finding> *baselined = nullptr);

} // namespace bh::lint

#endif // BH_LINT_LINT_HH
