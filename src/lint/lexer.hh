/**
 * @file
 * A focused C++ tokenizer for bh_lint (see lint.hh).
 *
 * This is not a conforming C++ lexer; it is exactly strong enough to
 * support the repo-specific rules in rules.cc: identifiers, numbers,
 * string/char literals (including raw strings), multi-character
 * punctuators that matter for matching qualified names and template
 * argument lists (`::`, `->`, `<<`, `>>`), whole preprocessor lines
 * (with continuations) as single tokens, and comments captured
 * separately so suppression annotations survive tokenization.
 *
 * No libclang: the linter must build everywhere the simulator builds,
 * with zero dependencies beyond the standard library.
 */

#ifndef BH_LINT_LEXER_HH
#define BH_LINT_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bh::lint
{

/** One lexical token with its 1-based source line. */
struct Token
{
    enum class Kind
    {
        kIdent,     ///< identifier or keyword
        kNumber,    ///< integer / floating literal
        kString,    ///< string literal (text excludes quotes)
        kChar,      ///< character literal
        kPunct,     ///< operator / punctuator
        kPreproc,   ///< one full preprocessor line (continuations joined)
    };

    Kind kind = Kind::kPunct;
    std::string text;
    int line = 0;
};

/** A comment with its 1-based line and whether code precedes it. */
struct Comment
{
    std::string text;           ///< body without the // or slash-star
    int line = 0;               ///< line the comment starts on
    bool ownLine = false;       ///< nothing but whitespace before it
};

/** Tokenized translation unit. */
struct LexedFile
{
    std::string path;                   ///< as given to lex()
    std::vector<std::string> lines;     ///< raw source, split at newlines
    std::vector<Token> tokens;          ///< comment-free token stream
    std::vector<Comment> comments;      ///< comments, in source order
};

/** Tokenize `content`; `path` is carried through for diagnostics. */
LexedFile lex(const std::string &path, const std::string &content);

/** Read a file and lex it. Returns false when the file cannot be read. */
bool lexFile(const std::string &path, LexedFile &out, std::string &err);

} // namespace bh::lint

#endif // BH_LINT_LEXER_HH
