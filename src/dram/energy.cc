#include "dram/energy.hh"

namespace bh
{

DramEnergyModel::DramEnergyModel(const DramTimings &timings,
                                 const DramPowerParams &params)
    : t(timings), p(params)
{
    double scale = rankCurrentScale();
    double ns = 1e-9;
    // Energy of one ACT+PRE pair above active-standby background over tRC.
    perAct = (p.idd0 - p.idd3n) * p.vdd * cyclesToNs(t.tRC) * ns * scale;
    // Column burst energies above active standby over the burst time.
    perRead = (p.idd4r - p.idd3n) * p.vdd * cyclesToNs(t.tBL) * ns * scale;
    perWrite = (p.idd4w - p.idd3n) * p.vdd * cyclesToNs(t.tBL) * ns * scale;
    // Refresh above precharge standby over tRFC.
    perRef = (p.idd5b - p.idd2n) * p.vdd * cyclesToNs(t.tRFC) * ns * scale;
    pActStandby = p.idd3n * p.vdd * scale;
    pPreStandby = p.idd2n * p.vdd * scale;
}

void
DramEnergyModel::onCommand(DramCommand cmd, Cycle)
{
    switch (cmd) {
      case DramCommand::kAct:
        // PRE energy is folded into the ACT+PRE pair cost.
        eActPre += perAct;
        break;
      case DramCommand::kRd:
        eRead += perRead;
        break;
      case DramCommand::kWr:
        eWrite += perWrite;
        break;
      case DramCommand::kRef:
        eRefresh += perRef;
        break;
      default:
        break;
    }
}

void
DramEnergyModel::onOpenBankCount(unsigned open_banks, Cycle now)
{
    integrateBackground(now);
    openBanks = open_banks;
}

void
DramEnergyModel::integrateBackground(Cycle now)
{
    if (now <= lastTransition)
        return;
    double dt = cyclesToNs(now - lastTransition) * 1e-9;
    eBackground += (openBanks > 0 ? pActStandby : pPreStandby) * dt;
    lastTransition = now;
}

double
DramEnergyModel::totalEnergy(Cycle now)
{
    integrateBackground(now);
    return eActPre + eRead + eWrite + eRefresh + eBackground;
}

} // namespace bh
