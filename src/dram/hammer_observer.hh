/**
 * @file
 * RowHammer failure model (Section 2.2 and Section 4 of the paper).
 *
 * Every row accumulates disturbance from activations of rows within the
 * blast radius: hammering a row N times disturbs a victim k rows away by
 * N * c_k, with c_k = blastImpactBase^(k-1) (paper worst case 0.5^(k-1)).
 * A victim whose accumulated disturbance reaches N_RH between two of its
 * own refreshes suffers a bit-flip. Refreshing a row (auto refresh or a
 * mitigation's victim refresh) resets its accumulator.
 *
 * This is the ground-truth oracle the simulator uses to decide whether a
 * mitigation mechanism actually prevented all bit-flips.
 */

#ifndef BH_DRAM_HAMMER_OBSERVER_HH
#define BH_DRAM_HAMMER_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/org.hh"

namespace bh
{

/** A detected RowHammer bit-flip event. */
struct BitFlipEvent
{
    unsigned bank = 0;
    RowId victimRow = 0;
    Cycle cycle = 0;
};

/** Configuration of the failure model. */
struct HammerConfig
{
    std::uint32_t nRH = 32768;      ///< RowHammer threshold N_RH
    unsigned blastRadius = 1;       ///< r_blast (1 = adjacent only)
    double blastImpactBase = 0.5;   ///< c_k = base^(k-1)
};

/** Tracks per-row disturbance and detects bit-flips. */
class HammerObserver
{
  public:
    HammerObserver(const DramOrg &org, const HammerConfig &config);

    /** Record an activation of (bank, row) at `now`. */
    void onActivate(unsigned bank, RowId row, Cycle now);

    /** Record that (bank, row) was refreshed (disturbance resets). */
    void onRowRefresh(unsigned bank, RowId row);

    /** Record an auto-refresh of a row range in every bank. */
    void onAutoRefresh(RowId first_row, unsigned num_rows);

    /** All bit-flips detected so far. */
    const std::vector<BitFlipEvent> &bitFlips() const { return flips; }

    /** Total activations observed. */
    std::uint64_t activationCount() const { return acts; }

    /** Maximum disturbance any row has ever accumulated. */
    double maxDisturbance() const { return maxDist; }

    /**
     * Maximum activation count any single row has received between its own
     * refreshes (the quantity BlockHammer's proof bounds).
     */
    std::uint64_t maxRowActivations() const { return maxRowActs; }

    /** Current per-row activation count since the row's last refresh. */
    std::uint32_t
    rowActivations(unsigned bank, RowId row) const
    {
        return actCount[index(bank, row)];
    }

    const HammerConfig &config() const { return cfg; }

  private:
    std::size_t
    index(unsigned bank, RowId row) const
    {
        return static_cast<std::size_t>(bank) * rows + row;
    }

    DramOrg org;
    HammerConfig cfg;
    unsigned rows = 0;
    unsigned banks = 0;
    std::vector<double> disturbance;    ///< per (bank,row)
    std::vector<std::uint32_t> actCount;///< acts since own refresh
    std::vector<bool> flipped;          ///< flip already reported
    std::vector<double> impact;         ///< c_k per distance
    std::vector<BitFlipEvent> flips;
    std::uint64_t acts = 0;
    std::uint64_t maxRowActs = 0;
    double maxDist = 0.0;
};

} // namespace bh

#endif // BH_DRAM_HAMMER_OBSERVER_HH
