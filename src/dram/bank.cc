#include "dram/bank.hh"

#include <algorithm>

#include "common/log.hh"

namespace bh
{

Bank::Bank(const DramTimings &timings) : t(timings)
{
}

Cycle
Bank::earliest(DramCommand cmd) const
{
    switch (cmd) {
      case DramCommand::kAct:
        return nextAct;
      case DramCommand::kPre:
        return nextPre;
      case DramCommand::kRd:
        return nextRd;
      case DramCommand::kWr:
        return nextWr;
      default:
        panic("Bank::earliest: unsupported command %s", commandName(cmd));
    }
}

void
Bank::issue(DramCommand cmd, RowId target_row, Cycle now)
{
    switch (cmd) {
      case DramCommand::kAct:
        if (open)
            panic("ACT to open bank");
        open = true;
        row = target_row;
        nextRd = std::max(nextRd, now + t.tRCD);
        nextWr = std::max(nextWr, now + t.tRCD);
        nextPre = std::max(nextPre, now + t.tRAS);
        nextAct = std::max(nextAct, now + t.tRC);
        break;
      case DramCommand::kPre:
        if (!open)
            panic("PRE to closed bank");
        open = false;
        nextAct = std::max(nextAct, now + t.tRP);
        break;
      case DramCommand::kRd:
        if (!open || row != target_row)
            panic("RD to wrong/closed row");
        // Read-to-precharge.
        nextPre = std::max(nextPre, now + t.tRTP);
        break;
      case DramCommand::kWr:
        if (!open || row != target_row)
            panic("WR to wrong/closed row");
        // Last write data + write recovery before PRE.
        nextPre = std::max(nextPre, now + t.tCWL + t.tBL + t.tWR);
        break;
      default:
        panic("Bank::issue: unsupported command %s", commandName(cmd));
    }
}

void
Bank::blockUntil(Cycle cycle)
{
    nextAct = std::max(nextAct, cycle);
}

} // namespace bh
