/**
 * @file
 * Channel-level DRAM device model: banks plus rank-level constraints
 * (tRRD, tFAW, data-bus turnaround) and all-bank auto refresh.
 *
 * The device enforces timing legality: issue() panics if the controller
 * violates a constraint, so the controller logic is continuously validated
 * during every simulation and test run.
 */

#ifndef BH_DRAM_DEVICE_HH
#define BH_DRAM_DEVICE_HH

#include <array>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "dram/bank.hh"
#include "dram/org.hh"
#include "dram/timing.hh"

namespace bh
{

/**
 * One DRAM channel (with its ranks/banks) as seen by a memory controller.
 */
class DramDevice
{
  public:
    /** Observer invoked on every command issue (energy, hammer tracking). */
    using CommandListener = std::function<void(DramCommand, unsigned flat_bank,
                                               RowId row, Cycle now)>;

    DramDevice(const DramOrg &org, const DramTimings &timings);

    /** Earliest legal issue cycle of `cmd` to `flat_bank`. */
    Cycle earliest(DramCommand cmd, unsigned flat_bank) const;

    /** True if `cmd` to `flat_bank` is legal at `now`. */
    bool
    canIssue(DramCommand cmd, unsigned flat_bank, Cycle now) const
    {
        return earliest(cmd, flat_bank) <= now;
    }

    /**
     * Rank-level earliest issue cycle of a column command (tCCD spacing
     * and data-bus turnaround), before per-bank constraints. The full
     * earliest() for a column command is the max of this and the bank's
     * own earliest — exposing the split lets the scheduler reject a whole
     * tick in O(1) when the shared column gate is closed.
     */
    Cycle
    columnEarliest(DramCommand cmd) const
    {
        return cmd == DramCommand::kRd ? nextRd : nextWr;
    }

    /** Issue a command; panics on a timing violation. */
    void issue(DramCommand cmd, unsigned flat_bank, RowId row, Cycle now);

    /** Earliest cycle an all-bank REF may be issued (all banks closed). */
    Cycle earliestRefresh() const;

    /** True if any bank is currently open (REF requires all closed). */
    bool anyBankOpen() const;

    /** Issue all-bank refresh; returns the set of row ranges refreshed. */
    struct RefreshedRange
    {
        RowId firstRow = 0;
        unsigned numRows = 0;
    };
    RefreshedRange issueRefresh(Cycle now);

    /** Bank accessors. */
    const Bank &bank(unsigned flat_bank) const { return banks[flat_bank]; }
    unsigned numBanks() const { return static_cast<unsigned>(banks.size()); }

    /** Rows refreshed by each REF command (rowsPerBank / refreshes per tREFW). */
    unsigned rowsPerRefresh() const { return rowsPerRef; }

    /** Register a command listener. */
    void addListener(CommandListener listener);

    /** Cycles the data bus has been occupied (utilization accounting). */
    std::uint64_t busBusyCycles() const { return busCycles; }

    /** Number of banks currently open. */
    unsigned openBankCount() const { return openBanks; }

    const DramOrg &organization() const { return org; }
    const DramTimings &timings() const { return t; }

    StatSet stats;

  private:
    DramOrg org;
    DramTimings t;
    std::vector<Bank> banks;

    // Rank-level constraints (single rank per channel in the paper config;
    // modeled per channel for simplicity).
    Cycle nextActRank = 0;          ///< tRRD
    Cycle nextRd = 0;               ///< column cmd spacing + turnaround
    Cycle nextWr = 0;
    std::array<Cycle, 4> actWindow{{-1, -1, -1, -1}};   ///< tFAW ring
    unsigned actWindowPos = 0;

    RowId refreshRowPtr = 0;        ///< next row block to auto-refresh
    unsigned rowsPerRef = 0;
    unsigned openBanks = 0;
    std::uint64_t busCycles = 0;

    std::vector<CommandListener> listeners;

    void notify(DramCommand cmd, unsigned flat_bank, RowId row, Cycle now);
};

} // namespace bh

#endif // BH_DRAM_DEVICE_HH
