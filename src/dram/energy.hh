/**
 * @file
 * DRAM energy model in the style of DRAMPower: per-command incremental
 * energies from datasheet IDD currents plus state-dependent background
 * power (active vs. precharged standby).
 *
 * The paper reports *normalized* DRAM energy, so the model's job is to get
 * the relative contributions of activation, read/write, refresh, and
 * standby energy right, which the IDD formulation does.
 */

#ifndef BH_DRAM_ENERGY_HH
#define BH_DRAM_ENERGY_HH

#include "common/types.hh"
#include "dram/command.hh"
#include "dram/timing.hh"

namespace bh
{

/** Datasheet current/voltage parameters (per device, x8 DDR4-2400). */
struct DramPowerParams
{
    double vdd = 1.2;       ///< supply voltage (V)
    double idd0 = 55e-3;    ///< ACT-PRE cycling current (A)
    double idd2n = 34e-3;   ///< precharge standby
    double idd3n = 44e-3;   ///< active standby
    double idd4r = 140e-3;  ///< burst read
    double idd4w = 130e-3;  ///< burst write
    double idd5b = 190e-3;  ///< burst refresh
    unsigned devicesPerRank = 8;
};

/**
 * Accumulates energy (Joules) for one channel. Background energy is
 * integrated lazily on open-bank-count transitions.
 */
class DramEnergyModel
{
  public:
    DramEnergyModel(const DramTimings &timings,
                    const DramPowerParams &params = DramPowerParams{});

    /** Record a command's incremental (non-background) energy. */
    void onCommand(DramCommand cmd, Cycle now);

    /** Track bank-open transitions for background power. */
    void onOpenBankCount(unsigned open_banks, Cycle now);

    /** Finalize background integration up to `now` and return total J. */
    double totalEnergy(Cycle now);

    /** Component breakdown (valid after totalEnergy()). */
    double actPreEnergy() const { return eActPre; }
    double readEnergy() const { return eRead; }
    double writeEnergy() const { return eWrite; }
    double refreshEnergy() const { return eRefresh; }
    double backgroundEnergy() const { return eBackground; }

  private:
    double rankCurrentScale() const
    {
        return static_cast<double>(p.devicesPerRank);
    }

    void integrateBackground(Cycle now);

    DramTimings t;
    DramPowerParams p;

    double eActPre = 0.0;
    double eRead = 0.0;
    double eWrite = 0.0;
    double eRefresh = 0.0;
    double eBackground = 0.0;

    unsigned openBanks = 0;
    Cycle lastTransition = 0;

    // Precomputed per-event energies (J).
    double perAct = 0.0, perRead = 0.0, perWrite = 0.0, perRef = 0.0;
    // Background powers (W).
    double pActStandby = 0.0, pPreStandby = 0.0;
};

} // namespace bh

#endif // BH_DRAM_ENERGY_HH
