/**
 * @file
 * DRAM bus commands modeled by the simulator.
 */

#ifndef BH_DRAM_COMMAND_HH
#define BH_DRAM_COMMAND_HH

namespace bh
{

/** Commands a memory controller can issue to the device. */
enum class DramCommand
{
    kAct,   ///< activate (open) a row
    kPre,   ///< precharge (close) the bank's open row
    kRd,    ///< column read burst
    kWr,    ///< column write burst
    kRef,   ///< all-bank auto refresh
};

/** Human-readable command name. */
inline const char *
commandName(DramCommand cmd)
{
    switch (cmd) {
      case DramCommand::kAct: return "ACT";
      case DramCommand::kPre: return "PRE";
      case DramCommand::kRd: return "RD";
      case DramCommand::kWr: return "WR";
      case DramCommand::kRef: return "REF";
    }
    return "?";
}

} // namespace bh

#endif // BH_DRAM_COMMAND_HH
