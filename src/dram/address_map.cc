#include "dram/address_map.hh"

#include "common/log.hh"

namespace bh
{

AddressMapper::AddressMapper(const DramOrg &o, MapScheme scheme,
                             unsigned mop_width)
    : org(o)
{
    org.validated();

    unsigned ch_bits = ceilLog2(org.channels);
    unsigned rk_bits = ceilLog2(org.ranks);
    unsigned bg_bits = ceilLog2(org.bankGroups);
    unsigned bk_bits = ceilLog2(org.banksPerGroup);
    unsigned row_bits = ceilLog2(org.rowsPerBank);
    unsigned col_bits = ceilLog2(org.linesPerRow);

    switch (scheme) {
      case MapScheme::kRowBankCol:
        // LSB -> MSB: col, channel, bank, bankgroup, rank, row.
        addField(Field::kCol, col_bits, 0);
        addField(Field::kChannel, ch_bits, 0);
        addField(Field::kBank, bk_bits, 0);
        addField(Field::kBankGroup, bg_bits, 0);
        addField(Field::kRank, rk_bits, 0);
        addField(Field::kRow, row_bits, 0);
        break;
      case MapScheme::kMop: {
        // LSB -> MSB: colLow (MOP block), channel, bankgroup, bank, rank,
        // colHigh, row. Consecutive MOP blocks hit different bank groups
        // first (maximizing ACT parallelism) while colHigh keeps many
        // blocks of one row adjacent in the address space.
        if (!isPow2(mop_width) || mop_width > org.linesPerRow)
            fatal("MOP width must be a power of two <= linesPerRow");
        unsigned low_bits = ceilLog2(mop_width);
        addField(Field::kCol, low_bits, 0);
        addField(Field::kChannel, ch_bits, 0);
        addField(Field::kBankGroup, bg_bits, 0);
        addField(Field::kBank, bk_bits, 0);
        addField(Field::kRank, rk_bits, 0);
        addField(Field::kCol, col_bits - low_bits, low_bits);
        addField(Field::kRow, row_bits, 0);
        break;
      }
      default:
        panic("unknown mapping scheme");
    }
}

void
AddressMapper::addField(Field::Kind kind, unsigned width, unsigned sub_lo)
{
    if (width == 0)
        return;
    fields.push_back(Field{kind, totalBits, width, sub_lo});
    if (kind == Field::kChannel) {
        // Both schemes emit one contiguous channel field; channelOf()
        // extracts it without a full decode.
        channelLo = totalBits;
        channelWidth = width;
    }
    totalBits += width;
}

DramCoord
AddressMapper::decode(Addr byte_addr) const
{
    Addr line = byte_addr / kLineBytes;
    DramCoord c;
    for (const auto &f : fields) {
        auto v = static_cast<unsigned>(bits(line, f.lo, f.width)) << f.subLo;
        switch (f.kind) {
          case Field::kChannel: c.channel |= v; break;
          case Field::kRank: c.rank |= v; break;
          case Field::kBankGroup: c.bankGroup |= v; break;
          case Field::kBank: c.bank |= v; break;
          case Field::kRow: c.row |= v; break;
          case Field::kCol: c.col |= v; break;
        }
    }
    return c;
}

Addr
AddressMapper::encode(const DramCoord &coord) const
{
    Addr line = 0;
    for (const auto &f : fields) {
        std::uint64_t v = 0;
        switch (f.kind) {
          case Field::kChannel: v = coord.channel; break;
          case Field::kRank: v = coord.rank; break;
          case Field::kBankGroup: v = coord.bankGroup; break;
          case Field::kBank: v = coord.bank; break;
          case Field::kRow: v = coord.row; break;
          case Field::kCol: v = coord.col; break;
        }
        line |= placeBits(v >> f.subLo, f.lo, f.width);
    }
    return line * kLineBytes;
}

} // namespace bh
