/**
 * @file
 * Physical-address to DRAM-coordinate mapping.
 *
 * Two schemes are provided:
 *  - kRowBankCol: naive row:bank:column mapping (for tests);
 *  - kMop: "Minimalist Open-Page" (Kaseridis et al., MICRO'11), the paper's
 *    mapping (Table 5): small blocks of consecutive lines stay in one row
 *    while successive blocks interleave across banks, balancing row-buffer
 *    locality and bank-level parallelism.
 */

#ifndef BH_DRAM_ADDRESS_MAP_HH
#define BH_DRAM_ADDRESS_MAP_HH

#include <vector>

#include "dram/org.hh"

namespace bh
{

/** Supported address-mapping schemes. */
enum class MapScheme
{
    kRowBankCol,
    kMop,
};

/**
 * Bijective mapping between line-granularity physical addresses and DRAM
 * coordinates. Field layout is derived from the organization at build time.
 */
class AddressMapper
{
  public:
    AddressMapper(const DramOrg &org, MapScheme scheme,
                  unsigned mop_width = 4);

    /** Decode a byte address into DRAM coordinates. */
    DramCoord decode(Addr byte_addr) const;

    /**
     * Channel bits of a byte address only (cheap steering query for
     * per-channel admission checks; equals decode(addr).channel).
     */
    unsigned
    channelOf(Addr byte_addr) const
    {
        if (org.channels == 1)
            return 0;
        Addr line = byte_addr / kLineBytes;
        return static_cast<unsigned>(
            bits(line, channelLo, channelWidth));
    }

    /** Inverse of decode (returns the base byte address of the line). */
    Addr encode(const DramCoord &coord) const;

    /** Number of address bits consumed above the line offset. */
    unsigned lineBits() const { return totalBits; }

    const DramOrg &organization() const { return org; }

  private:
    /** One bit-field of the line address. */
    struct Field
    {
        enum Kind { kChannel, kRank, kBankGroup, kBank, kRow, kCol } kind;
        unsigned lo = 0;    ///< low bit position in the line address
        unsigned width = 0;
        unsigned subLo = 0; ///< low bit position within the coordinate value
    };

    void addField(Field::Kind kind, unsigned width, unsigned sub_lo);

    DramOrg org;
    std::vector<Field> fields;
    unsigned totalBits = 0;
    unsigned channelLo = 0;         ///< channel field position (channelOf)
    unsigned channelWidth = 0;
};

} // namespace bh

#endif // BH_DRAM_ADDRESS_MAP_HH
