/**
 * @file
 * DRAM timing parameters. Values are specified in nanoseconds (as found in
 * datasheets) and converted once to CPU cycles for the simulator core.
 *
 * The DDR4 preset matches the values the paper uses (Table 1): tRC=46.25 ns,
 * tFAW=35 ns, tREFW=64 ms; remaining parameters follow the JEDEC DDR4-2400
 * speed bin.
 */

#ifndef BH_DRAM_TIMING_HH
#define BH_DRAM_TIMING_HH

#include "common/types.hh"

namespace bh
{

/** Raw datasheet timing values in nanoseconds. */
struct DramTimingNs
{
    double tRCD = 14.16;    ///< ACT to internal RD/WR
    double tCL = 14.16;     ///< RD to first data beat
    double tCWL = 10.0;     ///< WR to first data beat
    double tRP = 14.16;     ///< PRE to ACT
    double tRAS = 32.0;     ///< ACT to PRE (same bank)
    double tRC = 46.25;     ///< ACT to ACT (same bank)
    double tBL = 3.33;      ///< burst duration (8 beats)
    double tCCD = 5.0;      ///< column command to column command (same type)
    double tRRD = 4.9;      ///< ACT to ACT (different banks, same rank)
    double tFAW = 35.0;     ///< four-activation window
    double tWR = 15.0;      ///< write recovery (last data to PRE)
    double tWTR = 7.5;      ///< write-to-read turnaround
    double tRTP = 7.5;      ///< read-to-precharge
    double tREFI = 7812.5;  ///< average refresh command interval
    double tRFC = 350.0;    ///< refresh cycle time (all-bank)
    double tREFW = 64.0e6;  ///< refresh window (64 ms)
};

/** Timing parameters converted to integer CPU cycles (rounded up). */
struct DramTimings
{
    Cycle tRCD = 0, tCL = 0, tCWL = 0, tRP = 0, tRAS = 0, tRC = 0,
          tBL = 0, tCCD = 0, tRRD = 0, tFAW = 0;
    Cycle tWR = 0, tWTR = 0, tRTP = 0, tREFI = 0, tRFC = 0, tREFW = 0;

    /** Construct from datasheet nanosecond values. */
    static DramTimings fromNs(const DramTimingNs &ns);

    /** Paper configuration: DDR4, tRC=46.25 ns, tFAW=35 ns, tREFW=64 ms. */
    static DramTimings ddr4();

    /** LPDDR4-style variant: halved refresh window (Section 3.1.3). */
    static DramTimings lpddr4();
};

} // namespace bh

#endif // BH_DRAM_TIMING_HH
