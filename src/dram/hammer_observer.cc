#include "dram/hammer_observer.hh"

#include <algorithm>

#include "common/log.hh"

namespace bh
{

HammerObserver::HammerObserver(const DramOrg &o, const HammerConfig &config)
    : org(o), cfg(config), rows(o.rowsPerBank), banks(o.banksPerChannel())
{
    std::size_t n = static_cast<std::size_t>(banks) * rows;
    disturbance.assign(n, 0.0);
    actCount.assign(n, 0);
    flipped.assign(n, false);
    impact.resize(cfg.blastRadius + 1, 0.0);
    for (unsigned k = 1; k <= cfg.blastRadius; ++k) {
        impact[k] = 1.0;
        for (unsigned i = 1; i < k; ++i)
            impact[k] *= cfg.blastImpactBase;
    }
}

void
HammerObserver::onActivate(unsigned bank, RowId row, Cycle now)
{
    ++acts;
    auto &count = actCount[index(bank, row)];
    ++count;
    maxRowActs = std::max<std::uint64_t>(maxRowActs, count);

    for (unsigned k = 1; k <= cfg.blastRadius; ++k) {
        for (int dir : {-1, 1}) {
            std::int64_t victim =
                static_cast<std::int64_t>(row) + dir * static_cast<int>(k);
            if (victim < 0 || victim >= static_cast<std::int64_t>(rows))
                continue;
            std::size_t vi = index(bank, static_cast<RowId>(victim));
            disturbance[vi] += impact[k];
            maxDist = std::max(maxDist, disturbance[vi]);
            if (!flipped[vi] && disturbance[vi] >= cfg.nRH) {
                flipped[vi] = true;
                flips.push_back(
                    BitFlipEvent{bank, static_cast<RowId>(victim), now});
            }
        }
    }
}

void
HammerObserver::onRowRefresh(unsigned bank, RowId row)
{
    std::size_t i = index(bank, row);
    disturbance[i] = 0.0;
    actCount[i] = 0;
    flipped[i] = false;
}

void
HammerObserver::onAutoRefresh(RowId first_row, unsigned num_rows)
{
    for (unsigned b = 0; b < banks; ++b) {
        for (unsigned r = 0; r < num_rows; ++r) {
            RowId row = static_cast<RowId>((first_row + r) % rows);
            onRowRefresh(b, row);
        }
    }
}

} // namespace bh
