#include "dram/timing.hh"

namespace bh
{

DramTimings
DramTimings::fromNs(const DramTimingNs &ns)
{
    DramTimings t;
    t.tRCD = nsToCycles(ns.tRCD);
    t.tCL = nsToCycles(ns.tCL);
    t.tCWL = nsToCycles(ns.tCWL);
    t.tRP = nsToCycles(ns.tRP);
    t.tRAS = nsToCycles(ns.tRAS);
    t.tRC = nsToCycles(ns.tRC);
    t.tBL = nsToCycles(ns.tBL);
    t.tCCD = nsToCycles(ns.tCCD);
    t.tRRD = nsToCycles(ns.tRRD);
    t.tFAW = nsToCycles(ns.tFAW);
    t.tWR = nsToCycles(ns.tWR);
    t.tWTR = nsToCycles(ns.tWTR);
    t.tRTP = nsToCycles(ns.tRTP);
    t.tREFI = nsToCycles(ns.tREFI);
    t.tRFC = nsToCycles(ns.tRFC);
    t.tREFW = nsToCycles(ns.tREFW);
    return t;
}

DramTimings
DramTimings::ddr4()
{
    return fromNs(DramTimingNs{});
}

DramTimings
DramTimings::lpddr4()
{
    DramTimingNs ns;
    ns.tREFW = 32.0e6;
    ns.tREFI = 3906.25;
    return fromNs(ns);
}

} // namespace bh
