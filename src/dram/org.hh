/**
 * @file
 * DRAM organization: the geometry of the simulated memory (Table 5 of the
 * paper: 1 channel, 1 rank, 4 bank groups x 4 banks, 64K rows per bank).
 */

#ifndef BH_DRAM_ORG_HH
#define BH_DRAM_ORG_HH

#include <cstdint>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace bh
{

/** Geometry of the DRAM system. All counts must be powers of two. */
struct DramOrg
{
    unsigned channels = 1;
    unsigned ranks = 1;
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rowsPerBank = 65536;
    unsigned linesPerRow = 128;     ///< 8 KB row / 64 B lines

    /** Total banks per rank. */
    unsigned banksPerRank() const { return bankGroups * banksPerGroup; }

    /** Total banks per channel. */
    unsigned banksPerChannel() const { return ranks * banksPerRank(); }

    /** Total addressable cache lines. */
    std::uint64_t
    totalLines() const
    {
        return static_cast<std::uint64_t>(channels) * ranks *
            banksPerRank() * rowsPerBank * linesPerRow;
    }

    /** Total bytes of DRAM. */
    std::uint64_t totalBytes() const { return totalLines() * kLineBytes; }

    /** Paper configuration (Table 5). */
    static DramOrg
    paperConfig()
    {
        return DramOrg{};
    }

    /** Tiny geometry for fast unit tests. */
    static DramOrg
    tinyConfig()
    {
        DramOrg o;
        o.bankGroups = 2;
        o.banksPerGroup = 2;
        o.rowsPerBank = 256;
        o.linesPerRow = 16;
        return o;
    }
};

/** Decoded DRAM coordinates of a physical address. */
struct DramCoord
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bankGroup = 0;
    unsigned bank = 0;          ///< bank within group
    RowId row = 0;
    unsigned col = 0;           ///< cache-line-granularity column

    /** Flat bank index within the channel. */
    unsigned
    flatBank(const DramOrg &org) const
    {
        return (rank * org.bankGroups + bankGroup) * org.banksPerGroup + bank;
    }

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && rank == o.rank &&
            bankGroup == o.bankGroup && bank == o.bank &&
            row == o.row && col == o.col;
    }
};

} // namespace bh

#endif // BH_DRAM_ORG_HH
