/**
 * @file
 * DRAM organization: the geometry of the simulated memory (Table 5 of the
 * paper: 1 channel, 1 rank, 4 bank groups x 4 banks, 64K rows per bank).
 */

#ifndef BH_DRAM_ORG_HH
#define BH_DRAM_ORG_HH

#include <cstdint>

#include "common/bitutils.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace bh
{

/** Geometry of the DRAM system. All counts must be powers of two. */
struct DramOrg
{
    unsigned channels = 1;
    unsigned ranks = 1;
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rowsPerBank = 65536;
    unsigned linesPerRow = 128;     ///< 8 KB row / 64 B lines

    /**
     * True when every dimension honors the power-of-two invariant the
     * address mapper's bit-field layout depends on.
     */
    bool
    feasible() const
    {
        return channels > 0 && isPow2(channels) && isPow2(ranks) &&
            isPow2(bankGroups) && isPow2(banksPerGroup) &&
            isPow2(rowsPerBank) && isPow2(linesPerRow);
    }

    /** Fail loudly on a non-power-of-two geometry (e.g. --channels 3). */
    const DramOrg &
    validated() const
    {
        if (!feasible())
            fatal("DramOrg dimensions must be powers of two "
                  "(channels=%u ranks=%u bankGroups=%u banksPerGroup=%u "
                  "rowsPerBank=%u linesPerRow=%u)",
                  channels, ranks, bankGroups, banksPerGroup, rowsPerBank,
                  linesPerRow);
        return *this;
    }

    /** Total banks per rank. */
    unsigned banksPerRank() const { return bankGroups * banksPerGroup; }

    /** Total banks per channel. */
    unsigned banksPerChannel() const { return ranks * banksPerRank(); }

    /** Total addressable cache lines. */
    std::uint64_t
    totalLines() const
    {
        return static_cast<std::uint64_t>(channels) * ranks *
            banksPerRank() * rowsPerBank * linesPerRow;
    }

    /** Total bytes of DRAM. */
    std::uint64_t totalBytes() const { return totalLines() * kLineBytes; }

    /** Paper configuration (Table 5), optionally widened to N channels. */
    static DramOrg
    paperConfig(unsigned num_channels = 1)
    {
        DramOrg o;
        o.channels = num_channels;
        return o.validated();
    }

    /** Tiny geometry for fast unit tests. */
    static DramOrg
    tinyConfig(unsigned num_channels = 1)
    {
        DramOrg o;
        o.channels = num_channels;
        o.bankGroups = 2;
        o.banksPerGroup = 2;
        o.rowsPerBank = 256;
        o.linesPerRow = 16;
        return o.validated();
    }
};

/** Decoded DRAM coordinates of a physical address. */
struct DramCoord
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bankGroup = 0;
    unsigned bank = 0;          ///< bank within group
    RowId row = 0;
    unsigned col = 0;           ///< cache-line-granularity column

    /** Flat bank index within the channel. */
    unsigned
    flatBank(const DramOrg &org) const
    {
        return (rank * org.bankGroups + bankGroup) * org.banksPerGroup + bank;
    }

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && rank == o.rank &&
            bankGroup == o.bankGroup && bank == o.bank &&
            row == o.row && col == o.col;
    }
};

/**
 * Inverse of DramCoord::flatBank: coordinates (rank, bank group, bank)
 * of a flat bank index within one channel; row/col/channel stay 0.
 */
inline DramCoord
coordForFlatBank(const DramOrg &org, unsigned flat_bank)
{
    DramCoord c;
    c.rank = flat_bank / org.banksPerRank();
    unsigned in_rank = flat_bank % org.banksPerRank();
    c.bankGroup = in_rank / org.banksPerGroup;
    c.bank = in_rank % org.banksPerGroup;
    return c;
}

} // namespace bh

#endif // BH_DRAM_ORG_HH
