/**
 * @file
 * Per-bank timing state machine.
 *
 * Each bank tracks its open row and the earliest cycle at which each command
 * class may legally be issued to it. The device layer adds rank-level
 * constraints (tRRD, tFAW, data bus, refresh).
 */

#ifndef BH_DRAM_BANK_HH
#define BH_DRAM_BANK_HH

#include "common/types.hh"
#include "dram/command.hh"
#include "dram/timing.hh"

namespace bh
{

/** Timing/state model of one DRAM bank. */
class Bank
{
  public:
    explicit Bank(const DramTimings &timings);

    /** True if a row is currently open. */
    bool isOpen() const { return open; }

    /** The open row (valid only when isOpen()). */
    RowId openRow() const { return row; }

    /** Earliest cycle the given command may be issued to this bank. */
    Cycle earliest(DramCommand cmd) const;

    /**
     * Apply a command's timing effects at cycle `now`.
     * The caller is responsible for having checked legality.
     */
    void issue(DramCommand cmd, RowId target_row, Cycle now);

    /** Force-block ACT until `cycle` (used by all-bank refresh). */
    void blockUntil(Cycle cycle);

  private:
    const DramTimings &t;
    bool open = false;
    RowId row = 0;
    Cycle nextAct = 0;
    Cycle nextPre = 0;
    Cycle nextRd = 0;
    Cycle nextWr = 0;
};

} // namespace bh

#endif // BH_DRAM_BANK_HH
