#include "dram/device.hh"

#include <algorithm>

#include "common/log.hh"

namespace bh
{

DramDevice::DramDevice(const DramOrg &o, const DramTimings &timings)
    : org(o), t(timings)
{
    banks.reserve(org.banksPerChannel());
    for (unsigned i = 0; i < org.banksPerChannel(); ++i)
        banks.emplace_back(t);

    // Auto refresh sweeps the whole bank once per tREFW; each REF covers an
    // equal slice of rows (8 for the paper's 64K rows / 8192 REFs).
    auto refs_per_window =
        static_cast<unsigned>(t.tREFW / t.tREFI);
    rowsPerRef = std::max(1u, org.rowsPerBank / refs_per_window);
}

Cycle
DramDevice::earliest(DramCommand cmd, unsigned flat_bank) const
{
    if (flat_bank >= banks.size())
        panic("bank index %u out of range", flat_bank);
    Cycle e = banks[flat_bank].earliest(cmd);
    switch (cmd) {
      case DramCommand::kAct: {
        e = std::max(e, nextActRank);
        // tFAW: the 4th-most-recent ACT bounds the next one.
        Cycle oldest = actWindow[actWindowPos];
        if (oldest >= 0)
            e = std::max(e, oldest + t.tFAW);
        break;
      }
      case DramCommand::kRd:
        e = std::max(e, nextRd);
        break;
      case DramCommand::kWr:
        e = std::max(e, nextWr);
        break;
      default:
        break;
    }
    return e;
}

void
DramDevice::issue(DramCommand cmd, unsigned flat_bank, RowId row, Cycle now)
{
    Cycle e = earliest(cmd, flat_bank);
    if (now < e) {
        panic("timing violation: %s bank %u at cycle %lld (earliest %lld)",
              commandName(cmd), flat_bank,
              static_cast<long long>(now), static_cast<long long>(e));
    }
    switch (cmd) {
      case DramCommand::kAct:
        banks[flat_bank].issue(cmd, row, now);
        nextActRank = now + t.tRRD;
        actWindow[actWindowPos] = now;
        actWindowPos = (actWindowPos + 1) % actWindow.size();
        ++openBanks;
        stats.inc("dram.act");
        break;
      case DramCommand::kPre:
        banks[flat_bank].issue(cmd, row, now);
        --openBanks;
        stats.inc("dram.pre");
        break;
      case DramCommand::kRd:
        banks[flat_bank].issue(cmd, row, now);
        nextRd = now + t.tCCD;
        // Read-to-write turnaround: write burst must not collide with the
        // in-flight read burst on the shared data bus.
        nextWr = std::max(nextWr, now + t.tCL + t.tBL - t.tCWL + 1);
        busCycles += static_cast<std::uint64_t>(t.tBL);
        stats.inc("dram.rd");
        break;
      case DramCommand::kWr:
        banks[flat_bank].issue(cmd, row, now);
        nextWr = now + t.tCCD;
        nextRd = std::max(nextRd, now + t.tCWL + t.tBL + t.tWTR);
        busCycles += static_cast<std::uint64_t>(t.tBL);
        stats.inc("dram.wr");
        break;
      default:
        panic("DramDevice::issue: use issueRefresh for REF");
    }
    notify(cmd, flat_bank, row, now);
}

Cycle
DramDevice::earliestRefresh() const
{
    // REF requires every bank precharged with tRP elapsed; each bank's
    // nextAct already embeds its post-PRE tRP point.
    Cycle e = 0;
    for (const auto &b : banks) {
        if (b.isOpen())
            return -1;  // caller must precharge first
        e = std::max(e, b.earliest(DramCommand::kAct));
    }
    return e;
}

bool
DramDevice::anyBankOpen() const
{
    return openBanks != 0;
}

DramDevice::RefreshedRange
DramDevice::issueRefresh(Cycle now)
{
    Cycle e = earliestRefresh();
    if (e < 0)
        panic("REF issued with open banks");
    if (now < e)
        panic("REF timing violation at %lld (earliest %lld)",
              static_cast<long long>(now), static_cast<long long>(e));
    for (auto &b : banks)
        b.blockUntil(now + t.tRFC);
    RefreshedRange range{refreshRowPtr, rowsPerRef};
    refreshRowPtr = static_cast<RowId>(
        (refreshRowPtr + rowsPerRef) % org.rowsPerBank);
    stats.inc("dram.ref");
    notify(DramCommand::kRef, 0, range.firstRow, now);
    return range;
}

void
DramDevice::addListener(CommandListener listener)
{
    listeners.push_back(std::move(listener));
}

void
DramDevice::notify(DramCommand cmd, unsigned flat_bank, RowId row, Cycle now)
{
    for (auto &l : listeners)
        l(cmd, flat_bank, row, now);
}

} // namespace bh
