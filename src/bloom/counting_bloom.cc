#include "bloom/counting_bloom.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace bh
{

CountingBloomFilter::CountingBloomFilter(const CbfConfig &config,
                                         std::uint64_t seed)
    : cfg(config)
{
    if (!isPow2(cfg.numCounters))
        fatal("CBF size must be a power of two (got %u)", cfg.numCounters);
    if (cfg.numHashes == 0)
        fatal("CBF needs at least one hash function");
    counters.assign(cfg.numCounters, 0);
    unsigned bits = ceilLog2(cfg.numCounters);
    for (unsigned h = 0; h < cfg.numHashes; ++h)
        hashes.emplace_back(bits, seed * 0x9e3779b97f4a7c15ull + h + 1);
}

void
CountingBloomFilter::insert(std::uint64_t key)
{
    for (const auto &h : hashes) {
        std::uint32_t &c = counters[h.hash(key)];
        if (c < cfg.counterMax)
            ++c;
    }
    ++numInsertions;
}

std::uint32_t
CountingBloomFilter::count(std::uint64_t key) const
{
    std::uint32_t min_count = cfg.counterMax;
    for (const auto &h : hashes)
        min_count = std::min(min_count, counters[h.hash(key)]);
    return min_count;
}

void
CountingBloomFilter::clearAndReseed(std::uint64_t new_seed)
{
    std::fill(counters.begin(), counters.end(), 0);
    for (unsigned h = 0; h < hashes.size(); ++h)
        hashes[h].reseed(new_seed * 0x9e3779b97f4a7c15ull + h + 1);
    numInsertions = 0;
}

double
CountingBloomFilter::occupancy() const
{
    std::size_t nonzero = 0;
    for (auto c : counters)
        if (c != 0)
            ++nonzero;
    return static_cast<double>(nonzero) /
        static_cast<double>(counters.size());
}

} // namespace bh
