/**
 * @file
 * Dual counting Bloom filter (D-CBF, Section 3.1.1 + Figure 3).
 *
 * Two CBFs are maintained in the time-interleaved manner of unified Bloom
 * filters: every insertion goes into both; only the *active* filter
 * answers queries. Every epoch (tCBF/2), the active filter is cleared and
 * reseeded, and the roles swap. Each filter therefore observes a rolling
 * window of up to two epochs, so a row that exceeded the blacklisting
 * threshold in the recent past can never be prematurely forgotten — the
 * blacklist is always fresh and has no false negatives.
 */

#ifndef BH_BLOOM_DUAL_CBF_HH
#define BH_BLOOM_DUAL_CBF_HH

#include "bloom/counting_bloom.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace bh
{

/** Time-interleaved pair of counting Bloom filters. */
class DualCbf
{
  public:
    /**
     * @param config geometry of each underlying CBF
     * @param t_cbf filter lifetime (epoch length = t_cbf / 2)
     * @param seed seed for hash randomization
     */
    DualCbf(const CbfConfig &config, Cycle t_cbf, std::uint64_t seed);

    /** Insert a key into both filters. */
    void insert(std::uint64_t key);

    /** Number of insertions so far (cache-invalidation stamp). */
    std::uint64_t insertCount() const { return inserts; }

    /** Query the active filter's count for the key. */
    std::uint32_t activeCount(std::uint64_t key) const;

    /** True if the active filter's count has reached `threshold`. */
    bool
    isBlacklisted(std::uint64_t key, std::uint32_t threshold) const
    {
        return activeCount(key) >= threshold;
    }

    /**
     * Advance the epoch clock; clears + reseeds and swaps at boundaries.
     * Returns true if an epoch boundary was crossed at this call.
     */
    bool clockTick(Cycle now);

    /** Epoch length in cycles (tCBF / 2). */
    Cycle epochLength() const { return epochLen; }

    /** Number of epoch boundaries crossed so far. */
    std::uint64_t epochIndex() const { return epoch; }

    const CountingBloomFilter &activeFilter() const
    {
        return filters[active];
    }
    const CountingBloomFilter &passiveFilter() const
    {
        return filters[1 - active];
    }

  private:
    Cycle epochLen = 0;
    std::uint64_t epoch = 0;
    std::uint64_t inserts = 0;
    unsigned active = 0;
    Rng seeder;
    CountingBloomFilter filters[2];
};

} // namespace bh

#endif // BH_BLOOM_DUAL_CBF_HH
