/**
 * @file
 * Counting Bloom filter (Fan et al., TON 2000) with saturating counters.
 *
 * insert() increments every counter the key hashes to; count() returns the
 * minimum of those counters — an upper bound on the true insertion count
 * (aliasing can inflate it, never deflate it: false positives possible,
 * false negatives impossible). This no-false-negative property is what
 * lets BlockHammer guarantee that a RowHammer attack can never evade
 * blacklisting (Section 3.1.1).
 */

#ifndef BH_BLOOM_COUNTING_BLOOM_HH
#define BH_BLOOM_COUNTING_BLOOM_HH

#include <cstdint>
#include <vector>

#include "bloom/h3_hash.hh"

namespace bh
{

/** Counting Bloom filter geometry. */
struct CbfConfig
{
    unsigned numCounters = 1024;    ///< must be a power of two
    unsigned numHashes = 4;
    std::uint32_t counterMax = 8192;///< saturation value (>= N_BL)
};

/** One counting Bloom filter. */
class CountingBloomFilter
{
  public:
    CountingBloomFilter(const CbfConfig &config, std::uint64_t seed);

    /** Increment all counters the key maps to (saturating). */
    void insert(std::uint64_t key);

    /** Upper bound on the key's insertion count since the last clear. */
    std::uint32_t count(std::uint64_t key) const;

    /** True if count(key) >= threshold. */
    bool
    testAtLeast(std::uint64_t key, std::uint32_t threshold) const
    {
        return count(key) >= threshold;
    }

    /** Zero all counters and re-randomize the hash functions. */
    void clearAndReseed(std::uint64_t new_seed);

    /** Total insertions since the last clear. */
    std::uint64_t insertions() const { return numInsertions; }

    /** Fraction of counters that are non-zero (occupancy diagnostics). */
    double occupancy() const;

    const CbfConfig &config() const { return cfg; }

  private:
    CbfConfig cfg;
    std::vector<std::uint32_t> counters;
    std::vector<H3Hash> hashes;
    std::uint64_t numInsertions = 0;
};

} // namespace bh

#endif // BH_BLOOM_COUNTING_BLOOM_HH
