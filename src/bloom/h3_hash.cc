#include "bloom/h3_hash.hh"

#include "common/rng.hh"

namespace bh
{

H3Hash::H3Hash(unsigned output_bits, std::uint64_t seed)
    : bitsOut(output_bits)
{
    mask = (output_bits >= 32) ? 0xffffffffu : ((1u << output_bits) - 1);
    reseed(seed);
}

void
H3Hash::reseed(std::uint64_t seed)
{
    Rng rng(seed);
    for (auto &word : matrix)
        word = static_cast<std::uint32_t>(rng.next()) & mask;
}

} // namespace bh
