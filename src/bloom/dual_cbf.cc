#include "bloom/dual_cbf.hh"

#include "common/log.hh"

namespace bh
{

DualCbf::DualCbf(const CbfConfig &config, Cycle t_cbf, std::uint64_t seed)
    : epochLen(t_cbf / 2), seeder(seed),
      filters{CountingBloomFilter(config, seed + 17),
              CountingBloomFilter(config, seed + 31)}
{
    if (epochLen <= 0)
        fatal("D-CBF lifetime must be at least 2 cycles");
}

void
DualCbf::insert(std::uint64_t key)
{
    filters[0].insert(key);
    filters[1].insert(key);
    ++inserts;
}

std::uint32_t
DualCbf::activeCount(std::uint64_t key) const
{
    return filters[active].count(key);
}

bool
DualCbf::clockTick(Cycle now)
{
    auto target = static_cast<std::uint64_t>(now / epochLen);
    if (target == epoch)
        return false;
    // Normally one boundary per call; catch up if the caller skipped time.
    while (epoch < target) {
        // Clear signal: clear the *active* filter, reseed it, and swap so
        // the other filter (which kept accumulating) takes over.
        filters[active].clearAndReseed(seeder.next());
        active = 1 - active;
        ++epoch;
    }
    return true;
}

} // namespace bh
