/**
 * @file
 * H3-class universal hash functions (Carter & Wegman, JCSS 1979).
 *
 * The paper indexes its counting Bloom filters with four H3-class hash
 * functions and rotates each filter's seed whenever the filter is cleared
 * so an aggressor row aliases with a different set of rows in every epoch
 * (Section 3.1.1). An H3 hash XORs together a random word per set input
 * bit; reseeding draws a fresh random matrix.
 */

#ifndef BH_BLOOM_H3_HASH_HH
#define BH_BLOOM_H3_HASH_HH

#include <array>
#include <cstdint>

namespace bh
{

/** One H3 hash over 64-bit keys producing `outputBits`-wide indices. */
class H3Hash
{
  public:
    H3Hash(unsigned output_bits, std::uint64_t seed);

    /** Replace the random matrix (called when the owning CBF clears). */
    void reseed(std::uint64_t seed);

    /** Hash a key into [0, 2^outputBits). */
    std::uint32_t
    hash(std::uint64_t key) const
    {
        std::uint32_t acc = 0;
        while (key != 0) {
            unsigned bit = static_cast<unsigned>(__builtin_ctzll(key));
            acc ^= matrix[bit];
            key &= key - 1;
        }
        return acc & mask;
    }

    unsigned outputBits() const { return bitsOut; }

  private:
    std::array<std::uint32_t, 64> matrix{};
    std::uint32_t mask = 0;
    unsigned bitsOut = 0;
};

} // namespace bh

#endif // BH_BLOOM_H3_HASH_HH
