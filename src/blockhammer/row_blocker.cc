#include "blockhammer/row_blocker.hh"

namespace bh
{

RowBlocker::RowBlocker(const BlockHammerConfig &config)
    : cfg(config), delay(config.tDelay()),
      // +4 slack over the paper's ceil(4*tDelay/tFAW): a tFAW window
      // admits one full 4-ACT burst at each edge of the tDelay window.
      hb(config.historyEntries() + 4, config.tDelay())
{
    for (unsigned b = 0; b < cfg.banks; ++b) {
        filters.push_back(std::make_unique<DualCbf>(
            cfg.cbf, cfg.tCBF, cfg.seed * 1315423911ull + b + 1));
    }
    nextBoundary = filters[0]->epochLength();
    bcache.resize(cfg.banks);
}

bool
RowBlocker::isSafe(unsigned bank, RowId row, Cycle now)
{
    // The blacklist verdict is a pure function of the bank filter's state,
    // which only changes on insertions and epoch swaps — while a request
    // sits blocked in the queue, the controller re-asks every tick. A tiny
    // per-bank memo answers those repeats without re-hashing the CBF.
    BlacklistCache &c = bcache[bank];
    std::uint64_t inserts = filters[bank]->insertCount();
    std::uint64_t epoch = filters[bank]->epochIndex();
    if (c.inserts != inserts || c.epoch != epoch) {
        c.inserts = inserts;
        c.epoch = epoch;
        c.used = 0;
    }
    bool blacklisted = false;
    bool found = false;
    for (unsigned i = 0; i < c.used; ++i) {
        if (c.rows[i] == row) {
            blacklisted = c.verdicts[i];
            found = true;
            break;
        }
    }
    if (!found) {
        blacklisted = filters[bank]->isBlacklisted(row, cfg.nBL);
        unsigned slot = (c.used < BlacklistCache::kSlots)
            ? c.used++ : (c.next++ % BlacklistCache::kSlots);
        c.rows[slot] = row;
        c.verdicts[slot] = blacklisted;
    }
    if (!blacklisted)
        return true;
    // Blacklisted: safe only if the row has not been activated within the
    // last tDelay window.
    return !hb.recentlyActivated(rankRowKey(bank, row), now);
}

void
RowBlocker::onActivate(unsigned bank, RowId row, Cycle now)
{
    filters[bank]->insert(row);
    hb.insert(rankRowKey(bank, row), now);
}

bool
RowBlocker::clockTick(Cycle now)
{
    // All bank filters share one epoch length, so one cached boundary
    // gates the whole sweep — the common case is a single compare instead
    // of a division per bank per controller tick.
    if (now < nextBoundary)
        return false;
    for (auto &f : filters)
        f->clockTick(now);
    nextBoundary = filters[0]->epochLength() *
        static_cast<Cycle>(filters[0]->epochIndex() + 1);
    return true;
}

Cycle
RowBlocker::nextBoundaryAt() const
{
    return nextBoundary;
}

bool
RowBlocker::isBlacklisted(unsigned bank, RowId row) const
{
    return filters[bank]->isBlacklisted(row, cfg.nBL);
}

std::uint32_t
RowBlocker::activationEstimate(unsigned bank, RowId row) const
{
    return filters[bank]->activeCount(row);
}

} // namespace bh
