#include "blockhammer/row_blocker.hh"

namespace bh
{

RowBlocker::RowBlocker(const BlockHammerConfig &config)
    : cfg(config), delay(config.tDelay()),
      // +4 slack over the paper's ceil(4*tDelay/tFAW): a tFAW window
      // admits one full 4-ACT burst at each edge of the tDelay window.
      hb(config.historyEntries() + 4, config.tDelay())
{
    for (unsigned b = 0; b < cfg.banks; ++b) {
        filters.push_back(std::make_unique<DualCbf>(
            cfg.cbf, cfg.tCBF, cfg.seed * 1315423911ull + b + 1));
    }
}

bool
RowBlocker::isSafe(unsigned bank, RowId row, Cycle now)
{
    if (!filters[bank]->isBlacklisted(row, cfg.nBL))
        return true;
    // Blacklisted: safe only if the row has not been activated within the
    // last tDelay window.
    return !hb.recentlyActivated(rankRowKey(bank, row), now);
}

void
RowBlocker::onActivate(unsigned bank, RowId row, Cycle now)
{
    filters[bank]->insert(row);
    hb.insert(rankRowKey(bank, row), now);
}

bool
RowBlocker::clockTick(Cycle now)
{
    bool crossed = false;
    for (auto &f : filters)
        crossed |= f->clockTick(now);
    return crossed;
}

bool
RowBlocker::isBlacklisted(unsigned bank, RowId row) const
{
    return filters[bank]->isBlacklisted(row, cfg.nBL);
}

std::uint32_t
RowBlocker::activationEstimate(unsigned bank, RowId row) const
{
    return filters[bank]->activeCount(row);
}

} // namespace bh
