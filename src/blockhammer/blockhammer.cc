#include "blockhammer/blockhammer.hh"

#include <algorithm>

namespace bh
{

BlockHammer::BlockHammer(const BlockHammerConfig &config)
    : cfg(config), blocker(config), throttler(config)
{
}

bool
BlockHammer::isActSafe(unsigned bank, RowId row, ThreadId thread, Cycle now)
{
    (void)thread;
    bool safe = blocker.isSafe(bank, row, now);
    if (!safe) {
        ++numUnsafe;
        firstBlocked.try_emplace(key(bank, row), now);
    }
    // Observe-only mode computes everything but never interferes
    // (Section 3.2.1).
    return cfg.observeOnly ? true : safe;
}

void
BlockHammer::onActivate(unsigned bank, RowId row, ThreadId thread, Cycle now)
{
    ++numActs;
    std::uint64_t k = key(bank, row);

    // An activation of an already-blacklisted row feeds the thread's RHLI.
    bool blacklisted = blocker.isBlacklisted(bank, row);
    if (blacklisted) {
        ++numBlacklistedActs;
        throttler.onBlacklistedActivate(thread, bank);
    }

    // Delay accounting: if this row was previously refused, the elapsed
    // time is the penalty RowBlocker imposed on this activation.
    if (auto it = firstBlocked.find(k); it != firstBlocked.end()) {
        Cycle delay = now - it->second;
        firstBlocked.erase(it);
        ++numDelayedActs;
        delayHist.add(delay);
        // Ground truth: a delayed activation whose exact two-epoch count
        // never reached N_BL was delayed only because of Bloom-filter
        // aliasing — a false positive.
        if (shadow.count(k) < cfg.nBL) {
            ++numFalsePos;
            fpHist.add(delay);
        }
    }

    blocker.onActivate(bank, row, now);
    shadow.insert(k);
}

void
BlockHammer::tick(Cycle now)
{
    unsafeAtTickStart = numUnsafe;
    unsafeDeltaLatched = false;
    if (blocker.clockTick(now)) {
        throttler.onEpochBoundary();
        shadow.onEpochBoundary();
    }
}

Cycle
BlockHammer::nextHousekeepingAt(Cycle) const
{
    return blocker.nextBoundaryAt();
}

Cycle
BlockHammer::nextVerdictChangeAt(Cycle) const
{
    // A refused row can only become safe again when its history entry
    // ages out or the epoch clear empties the blacklist. The buffer's
    // earliest expiry is a conservative lower bound for any entry's.
    return std::min(blocker.nextBoundaryAt(),
                    blocker.historyBuffer().nextExpiryAt());
}

void
BlockHammer::noteSkippedTicks(std::uint64_t n)
{
    // Each eliminated idle tick would have re-issued the same safety
    // queries as the last executed tick and gotten the same verdicts
    // (delay bookkeeping is first-refusal-only, so only the counter
    // needs replaying). The per-tick delta is latched at the first
    // replay so repeated replays of one executed tick stay linear.
    if (!unsafeDeltaLatched) {
        unsafeTickDelta = numUnsafe - unsafeAtTickStart;
        unsafeDeltaLatched = true;
    }
    numUnsafe += unsafeTickDelta * n;
}

int
BlockHammer::quota(ThreadId thread, unsigned bank) const
{
    if (cfg.observeOnly)
        return -1;
    return throttler.quota(thread, bank);
}

} // namespace bh
