#include "blockhammer/blockhammer.hh"

#include <algorithm>

namespace bh
{

BlockHammer::BlockHammer(const BlockHammerConfig &config)
    : cfg(config), blocker(config), throttler(config)
{
}

bool
BlockHammer::isActSafe(unsigned bank, RowId row, ThreadId thread, Cycle now)
{
    (void)thread;
    bool safe = blocker.isSafe(bank, row, now);
    if (!safe) {
        ++numUnsafe;
        // Trace only the first refusal of a delay episode: the
        // controller re-queries every tick, and the episode (not the
        // per-tick verdict) is the interesting observable.
        bool first =
            firstBlocked.try_emplace(key(bank, row), now).second;
        if (first && TraceSink::on()) {
            TraceSink::instant(
                "mitig", "blacklist_block", tmeta, now,
                {{"bank", static_cast<std::int64_t>(bank)},
                 {"row", static_cast<std::int64_t>(row)},
                 {"thread", static_cast<std::int64_t>(thread)}});
        }
    }
    // Observe-only mode computes everything but never interferes
    // (Section 3.2.1).
    return cfg.observeOnly ? true : safe;
}

void
BlockHammer::onActivate(unsigned bank, RowId row, ThreadId thread, Cycle now)
{
    ++numActs;
    std::uint64_t k = key(bank, row);

    // An activation of an already-blacklisted row feeds the thread's RHLI.
    bool blacklisted = blocker.isBlacklisted(bank, row);
    if (blacklisted) {
        ++numBlacklistedActs;
        throttler.onBlacklistedActivate(thread, bank);
        if (TraceSink::on()) {
            TraceSink::instant(
                "mitig", "blacklisted_act", tmeta, now,
                {{"bank", static_cast<std::int64_t>(bank)},
                 {"row", static_cast<std::int64_t>(row)},
                 {"thread", static_cast<std::int64_t>(thread)},
                 {"quota",
                  static_cast<std::int64_t>(quota(thread, bank))}});
        }
    }

    // Delay accounting: if this row was previously refused, the elapsed
    // time is the penalty RowBlocker imposed on this activation.
    if (auto it = firstBlocked.find(k); it != firstBlocked.end()) {
        Cycle delay = now - it->second;
        firstBlocked.erase(it);
        ++numDelayedActs;
        delayHist.add(delay);
        // Ground truth: a delayed activation whose exact two-epoch count
        // never reached N_BL was delayed only because of Bloom-filter
        // aliasing — a false positive.
        if (shadow.count(k) < cfg.nBL) {
            ++numFalsePos;
            fpHist.add(delay);
        }
    }

    blocker.onActivate(bank, row, now);
    shadow.insert(k);
}

void
BlockHammer::tick(Cycle now)
{
    unsafeAtTickStart = numUnsafe;
    unsafeDeltaLatched = false;
    if (blocker.clockTick(now)) {
        throttler.onEpochBoundary();
        shadow.onEpochBoundary();
    }
}

Cycle
BlockHammer::nextHousekeepingAt(Cycle) const
{
    return blocker.nextBoundaryAt();
}

Cycle
BlockHammer::nextVerdictChangeAt(Cycle) const
{
    // A refused row can only become safe again when its history entry
    // ages out or the epoch clear empties the blacklist. The buffer's
    // earliest expiry is a conservative lower bound for any entry's.
    return std::min(blocker.nextBoundaryAt(),
                    blocker.historyBuffer().nextExpiryAt());
}

void
BlockHammer::noteSkippedTicks(std::uint64_t n)
{
    // Each eliminated idle tick would have re-issued the same safety
    // queries as the last executed tick and gotten the same verdicts
    // (delay bookkeeping is first-refusal-only, so only the counter
    // needs replaying). The per-tick delta is latched at the first
    // replay so repeated replays of one executed tick stay linear.
    if (!unsafeDeltaLatched) {
        unsafeTickDelta = numUnsafe - unsafeAtTickStart;
        unsafeDeltaLatched = true;
    }
    numUnsafe += unsafeTickDelta * n;
}

int
BlockHammer::quota(ThreadId thread, unsigned bank) const
{
    if (cfg.observeOnly)
        return -1;
    return throttler.quota(thread, bank);
}

void
BlockHammer::syncStats()
{
    stats.inc("bh.acts", numActs);
    stats.inc("bh.blacklisted_acts", numBlacklistedActs);
    stats.inc("bh.delayed_acts", numDelayedActs);
    stats.inc("bh.false_positive_acts", numFalsePos);
    stats.inc("bh.unsafe_verdicts", numUnsafe);
    stats.set("bh.blacklist_rate",
              numActs ? static_cast<double>(numBlacklistedActs) /
                      static_cast<double>(numActs)
                      : 0.0);
    // Active-CBF occupancy averaged over banks: the saturation measure
    // behind Section 8.4's false-positive analysis.
    double occ = 0.0;
    for (unsigned b = 0; b < cfg.banks; ++b)
        occ += blocker.bankFilter(b).activeFilter().occupancy();
    stats.set("bh.cbf_occupancy",
              cfg.banks ? occ / static_cast<double>(cfg.banks) : 0.0);
    Histogram &delays = stats.hist("bh.delay_cycles");
    if (delays.count() == 0) {
        delays = delayHist;
        stats.hist("bh.fp_delay_cycles") = fpHist;
    }
}

} // namespace bh
