/**
 * @file
 * RowBlocker-HB: per-rank row-activation history buffer (Section 3.1.2).
 *
 * A circular queue of (row key, timestamp) records covering the last
 * tDelay window. Modeled after the hardware CAM: lookups compare the
 * queried key against every live entry; the oldest entry is dropped
 * once it ages past tDelay. The buffer is sized for the worst case
 * ceil(4 * tDelay / tFAW) activations a rank can perform in a tDelay
 * window, and the implementation panics on overflow — continuously
 * validating the paper's sizing argument during simulation.
 */

#ifndef BH_BLOCKHAMMER_HISTORY_BUFFER_HH
#define BH_BLOCKHAMMER_HISTORY_BUFFER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace bh
{

/** Circular activation-history CAM. */
class HistoryBuffer
{
  public:
    /**
     * @param entries capacity (ceil(4 * tDelay / tFAW))
     * @param t_delay window length in cycles
     */
    HistoryBuffer(unsigned entries, Cycle t_delay);

    /** Record an activation of `row_key` at `now`. */
    void insert(std::uint64_t row_key, Cycle now);

    /** Expire entries older than tDelay. Called before queries. */
    void expire(Cycle now);

    /**
     * Cycle at which the oldest live entry ages out of the window (the
     * earliest future point any recentlyActivated() answer can flip to
     * false), or kNoEventCycle when the buffer is empty.
     */
    Cycle nextExpiryAt() const;

    /** Was `row_key` activated within the last tDelay window? */
    bool recentlyActivated(std::uint64_t row_key, Cycle now);

    unsigned capacity() const { return static_cast<unsigned>(slots.size()); }
    unsigned validCount() const { return numValid; }
    Cycle delayWindow() const { return tDelay; }

  private:
    /**
     * One CAM record. Validity is positional — `numValid` entries
     * starting at `head` are live — so no per-slot flag is needed (the
     * hardware's valid bit maps to the occupancy bookkeeping here).
     */
    struct Slot
    {
        std::uint64_t key = 0;
        Cycle timestamp = 0;
    };

    std::vector<Slot> slots;
    Cycle tDelay = 0;
    unsigned head = 0;      ///< oldest entry
    unsigned tail = 0;      ///< next insertion point
    unsigned numValid = 0;

    /**
     * Membership index over the valid slots. The hardware searches all CAM
     * entries in parallel; the map reproduces that single-cycle lookup in
     * O(1) instead of a linear scan.
     */
    std::unordered_map<std::uint64_t, unsigned> members;
};

} // namespace bh

#endif // BH_BLOCKHAMMER_HISTORY_BUFFER_HH
