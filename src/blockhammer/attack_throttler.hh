/**
 * @file
 * AttackThrottler (Section 3.2): per-<thread, bank> RowHammer likelihood
 * index (RHLI) tracking and in-flight request quotas.
 *
 * RHLI (Equation 2) is the number of blacklisted-row activations a thread
 * performed in a bank, normalized to the maximum number of times any
 * blacklisted row can be activated under RowBlocker's protection. Two
 * saturating counters per pair are kept in the same time-interleaved
 * manner as the D-CBFs; the quota shrinks as RHLI grows and reaches zero
 * at RHLI >= 1.
 */

#ifndef BH_BLOCKHAMMER_ATTACK_THROTTLER_HH
#define BH_BLOCKHAMMER_ATTACK_THROTTLER_HH

#include <cstdint>
#include <vector>

#include "blockhammer/config.hh"

namespace bh
{

/** RHLI tracker + quota engine. */
class AttackThrottler
{
  public:
    explicit AttackThrottler(const BlockHammerConfig &config);

    /** Record an activation of an already-blacklisted row. */
    void onBlacklistedActivate(ThreadId thread, unsigned bank);

    /** RHLI of <thread, bank> (Equation 2). */
    double rhli(ThreadId thread, unsigned bank) const;

    /** Largest RHLI of `thread` across banks (OS-facing indicator). */
    double maxRhli(ThreadId thread) const;

    /**
     * In-flight request quota for <thread, bank>: unlimited (-1) at
     * RHLI == 0, shrinking to 0 at RHLI >= 1.
     */
    int quota(ThreadId thread, unsigned bank) const;

    /** Swap + clear active counters (synchronized with D-CBF clears). */
    void onEpochBoundary();

    const BlockHammerConfig &config() const { return cfg; }

  private:
    std::size_t
    index(ThreadId thread, unsigned bank) const
    {
        return static_cast<std::size_t>(thread) * cfg.banks + bank;
    }

    BlockHammerConfig cfg;
    double denom = 1.0;
    std::uint32_t counterMax = 0;
    unsigned active = 0;
    std::vector<std::uint32_t> counters[2];     ///< per <thread, bank>
};

} // namespace bh

#endif // BH_BLOCKHAMMER_ATTACK_THROTTLER_HH
