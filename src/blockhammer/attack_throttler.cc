#include "blockhammer/attack_throttler.hh"

#include <algorithm>
#include <cmath>

namespace bh
{

AttackThrottler::AttackThrottler(const BlockHammerConfig &config)
    : cfg(config), denom(config.rhliDenominator()),
      counterMax(config.throttlerCounterMax())
{
    // In a protected system RHLI cannot exceed 1 (the zero quota stops
    // the activations), so saturating counters suffice (Section 3.2.1).
    // Observe-only mode interferes with nothing and counts exactly, so
    // the measured RHLI can reach the paper's >>1 values.
    if (cfg.observeOnly)
        counterMax = 0xffffffffu;
    counters[0].assign(static_cast<std::size_t>(cfg.threads) * cfg.banks, 0);
    counters[1].assign(static_cast<std::size_t>(cfg.threads) * cfg.banks, 0);
}

void
AttackThrottler::onBlacklistedActivate(ThreadId thread, unsigned bank)
{
    if (thread < 0 || static_cast<unsigned>(thread) >= cfg.threads)
        return;
    std::size_t i = index(thread, bank);
    for (auto &side : counters)
        if (side[i] < counterMax)
            ++side[i];
}

double
AttackThrottler::rhli(ThreadId thread, unsigned bank) const
{
    if (thread < 0 || static_cast<unsigned>(thread) >= cfg.threads)
        return 0.0;
    if (denom <= 0.0)
        return 0.0;
    return static_cast<double>(counters[active][index(thread, bank)]) / denom;
}

double
AttackThrottler::maxRhli(ThreadId thread) const
{
    double m = 0.0;
    for (unsigned b = 0; b < cfg.banks; ++b)
        m = std::max(m, rhli(thread, b));
    return m;
}

int
AttackThrottler::quota(ThreadId thread, unsigned bank) const
{
    double r = rhli(thread, bank);
    if (r <= 0.0)
        return -1;      // benign: unlimited
    if (r >= 1.0)
        return 0;       // certain attacker: block entirely
    double q = static_cast<double>(cfg.baseQuota) * (1.0 - r);
    return std::max(0, static_cast<int>(std::floor(q)));
}

void
AttackThrottler::onEpochBoundary()
{
    // Clear the active side and swap: the passive side (which kept
    // accumulating) becomes authoritative, mirroring the D-CBF swap.
    std::fill(counters[active].begin(), counters[active].end(), 0);
    active = 1 - active;
}

} // namespace bh
