#include "blockhammer/history_buffer.hh"

#include "common/log.hh"

namespace bh
{

HistoryBuffer::HistoryBuffer(unsigned entries, Cycle t_delay)
    : slots(entries), tDelay(t_delay)
{
    if (entries == 0)
        fatal("history buffer needs at least one entry");
}

void
HistoryBuffer::insert(std::uint64_t row_key, Cycle now)
{
    expire(now);
    if (numValid == slots.size()) {
        // tFAW bounds the activation rate, so a correctly-sized buffer can
        // never overflow; reaching this is a configuration/sizing bug.
        panic("history buffer overflow: %u entries cannot hold tDelay=%lld "
              "window", capacity(), static_cast<long long>(tDelay));
    }
    slots[tail] = Slot{row_key, now};
    if (++tail == slots.size())
        tail = 0;
    ++numValid;
    ++members[row_key];
}

void
HistoryBuffer::expire(Cycle now)
{
    while (numValid > 0) {
        Slot &oldest = slots[head];
        if (now - oldest.timestamp < tDelay)
            break;
        auto it = members.find(oldest.key);
        if (it != members.end() && --it->second == 0)
            members.erase(it);
        if (++head == slots.size())
            head = 0;
        --numValid;
    }
}

Cycle
HistoryBuffer::nextExpiryAt() const
{
    if (numValid == 0)
        return kNoEventCycle;
    return slots[head].timestamp + tDelay;
}

bool
HistoryBuffer::recentlyActivated(std::uint64_t row_key, Cycle now)
{
    expire(now);
    // Equivalent to the hardware's parallel CAM compare across all valid
    // entries.
    return members.find(row_key) != members.end();
}

} // namespace bh
