/**
 * @file
 * The complete BlockHammer mechanism (Section 3): RowBlocker +
 * AttackThrottler behind the memory controller's Mitigation interface.
 *
 * Also carries a simulation-only exact "shadow" tracker that replays the
 * D-CBF's rolling window without aliasing, giving ground truth for the
 * false-positive analyses of Section 8.4 (the hardware mechanism itself
 * never needs it).
 */

#ifndef BH_BLOCKHAMMER_BLOCKHAMMER_HH
#define BH_BLOCKHAMMER_BLOCKHAMMER_HH

#include <unordered_map>

#include "blockhammer/attack_throttler.hh"
#include "blockhammer/row_blocker.hh"
#include "mem/mitigation.hh"

namespace bh
{

/** BlockHammer: proactive throttling via Bloom-filter blacklists. */
class BlockHammer : public Mitigation
{
  public:
    explicit BlockHammer(const BlockHammerConfig &config);

    std::string name() const override { return "BlockHammer"; }

    bool isActSafe(unsigned bank, RowId row, ThreadId thread,
                   Cycle now) override;
    void onActivate(unsigned bank, RowId row, ThreadId thread,
                    Cycle now) override;
    void tick(Cycle now) override;
    Cycle nextHousekeepingAt(Cycle now) const override;
    Cycle nextVerdictChangeAt(Cycle now) const override;
    void noteSkippedTicks(std::uint64_t n) override;
    int quota(ThreadId thread, unsigned bank) const override;
    void syncStats() override;

    /** RHLI of <thread, bank> — the OS-facing interface (Section 3.2.3). */
    double rhli(ThreadId thread, unsigned bank) const
    {
        return throttler.rhli(thread, bank);
    }

    /** Largest RHLI of a thread across banks. */
    double maxRhli(ThreadId thread) const { return throttler.maxRhli(thread); }

    const RowBlocker &rowBlocker() const { return blocker; }
    const AttackThrottler &attackThrottler() const { return throttler; }
    const BlockHammerConfig &config() const { return cfg; }

    /** Activations issued to already-blacklisted rows. */
    std::uint64_t blacklistedActivations() const { return numBlacklistedActs; }

    /** Activations that were delayed at least one safety rejection. */
    std::uint64_t delayedActivations() const { return numDelayedActs; }

    /** Delayed activations whose exact count was below N_BL (aliasing). */
    std::uint64_t falsePositiveActivations() const { return numFalsePos; }

    /** Total activations observed. */
    std::uint64_t totalActivations() const { return numActs; }

    /** Safety queries answered unsafe. */
    std::uint64_t unsafeVerdicts() const { return numUnsafe; }

    /** Distribution of per-activation delays (cycles). */
    const Histogram &delayHistogram() const { return delayHist; }

    /** Distribution of delays of false-positive activations only. */
    const Histogram &falsePositiveDelayHistogram() const { return fpHist; }

  private:
    /** Exact two-epoch rolling activation counts (simulation oracle). */
    struct ExactShadow
    {
        std::unordered_map<std::uint64_t, std::uint32_t> side[2];
        unsigned active = 0;

        void
        insert(std::uint64_t key)
        {
            ++side[0][key];
            ++side[1][key];
        }
        std::uint32_t
        count(std::uint64_t key) const
        {
            auto it = side[active].find(key);
            return it == side[active].end() ? 0 : it->second;
        }
        void
        onEpochBoundary()
        {
            side[active].clear();
            active = 1 - active;
        }
    };

    std::uint64_t
    key(unsigned bank, RowId row) const
    {
        return (static_cast<std::uint64_t>(bank) << 32) | row;
    }

    BlockHammerConfig cfg;
    RowBlocker blocker;
    AttackThrottler throttler;
    ExactShadow shadow;

    /** First-blocked timestamps of rows currently being delayed. */
    std::unordered_map<std::uint64_t, Cycle> firstBlocked;

    std::uint64_t numActs = 0;
    std::uint64_t numBlacklistedActs = 0;
    std::uint64_t numDelayedActs = 0;
    std::uint64_t numFalsePos = 0;
    std::uint64_t numUnsafe = 0;
    std::uint64_t unsafeAtTickStart = 0;    ///< snapshot for skip replay
    std::uint64_t unsafeTickDelta = 0;      ///< latched per-tick query count
    bool unsafeDeltaLatched = false;
    Histogram delayHist;
    Histogram fpHist;
};

} // namespace bh

#endif // BH_BLOCKHAMMER_BLOCKHAMMER_HH
