#include "blockhammer/config.hh"

#include <algorithm>
#include <cmath>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace bh
{

std::uint32_t
BlockHammerConfig::nRHStar() const
{
    // Equation 3: N_RH* = N_RH / (2 * sum_{k=1..r_blast} c_k).
    double sum = 0.0;
    double ck = 1.0;
    for (unsigned k = 1; k <= blast.radius; ++k) {
        sum += ck;
        ck *= blast.impactBase;
    }
    return static_cast<std::uint32_t>(
        std::floor(static_cast<double>(nRH) / (2.0 * sum)));
}

namespace
{

/**
 * The two terms of Equation 1, shared by feasible() and tDelay():
 * tDelay = budget / allowed with
 * budget = tCBF - N_BL * tRC, allowed = (tCBF/tREFW) * N_RH* - N_BL.
 */
void
eq1Terms(const BlockHammerConfig &cfg, double &budget, double &allowed)
{
    budget = static_cast<double>(cfg.tCBF) -
        static_cast<double>(cfg.nBL) * static_cast<double>(cfg.tRC);
    allowed = (static_cast<double>(cfg.tCBF) /
               static_cast<double>(cfg.tREFW)) *
        static_cast<double>(cfg.nRHStar()) - static_cast<double>(cfg.nBL);
}

} // namespace

bool
BlockHammerConfig::feasible() const
{
    double budget, allowed;
    eq1Terms(*this, budget, allowed);
    return allowed > 0.0 && budget > 0.0;
}

Cycle
BlockHammerConfig::tDelay() const
{
    double budget, allowed;
    eq1Terms(*this, budget, allowed);
    if (allowed <= 0.0)
        fatal("BlockHammer config invalid: N_BL >= window activation budget");
    if (budget <= 0.0)
        fatal("BlockHammer config invalid: N_BL*tRC exceeds tCBF");
    return static_cast<Cycle>(std::ceil(budget / allowed));
}

unsigned
BlockHammerConfig::historyEntries() const
{
    // tFAW admits at most 4 activations per rolling tFAW window, so at
    // most ceil(4 * tDelay / tFAW) activations can fall inside a tDelay
    // window (Section 3.1.2).
    return static_cast<unsigned>(ceilDiv(4 * tDelay(), tFAW));
}

double
BlockHammerConfig::rhliDenominator() const
{
    double windowed = static_cast<double>(nRHStar()) *
        (static_cast<double>(tCBF) / static_cast<double>(tREFW));
    return windowed - static_cast<double>(nBL);
}

std::uint32_t
BlockHammerConfig::throttlerCounterMax() const
{
    double windowed = static_cast<double>(nRHStar()) *
        (static_cast<double>(tCBF) / static_cast<double>(tREFW));
    return static_cast<std::uint32_t>(std::ceil(windowed));
}

BlockHammerConfig
BlockHammerConfig::forThreshold(std::uint32_t n_rh,
                                const DramTimings &timings,
                                unsigned banks, unsigned threads,
                                BlastModel blast)
{
    BlockHammerConfig cfg;
    cfg.nRH = n_rh;
    cfg.blast = blast;
    cfg.tREFW = timings.tREFW;
    cfg.tCBF = timings.tREFW;       // Section 3.1.3: tCBF = tREFW
    cfg.tRC = timings.tRC;
    cfg.tFAW = timings.tFAW;
    cfg.banks = banks;
    cfg.threads = threads;

    // Table 7: N_BL = N_RH / 4 (equivalently N_RH* / 2 for double-sided).
    cfg.nBL = std::max<std::uint32_t>(1, n_rh / 4);

    // Table 7 CBF sizing: 1K counters down to N_BL = 2K, then doubling the
    // filter as N_BL halves to hold the false-positive rate: 2^21 / N_BL.
    std::uint32_t size = (1u << 21) / std::max<std::uint32_t>(cfg.nBL, 1);
    cfg.cbf.numCounters = std::max<std::uint32_t>(1024, size);
    cfg.cbf.numHashes = 4;
    cfg.cbf.counterMax = cfg.nBL;   // counters only need to reach N_BL

    return cfg;
}

} // namespace bh
