/**
 * @file
 * RowBlocker (Section 3.1): per-bank D-CBF blacklisting (RowBlocker-BL)
 * plus the per-rank activation history buffer (RowBlocker-HB).
 *
 * An activation is RowHammer-unsafe exactly when its target row is both
 * blacklisted (activation count reached N_BL in the active CBF) and
 * recently activated (appears in the last-tDelay history), which limits a
 * blacklisted row's long-run activation rate to one per tDelay.
 */

#ifndef BH_BLOCKHAMMER_ROW_BLOCKER_HH
#define BH_BLOCKHAMMER_ROW_BLOCKER_HH

#include <memory>
#include <vector>

#include "blockhammer/config.hh"
#include "blockhammer/history_buffer.hh"
#include "bloom/dual_cbf.hh"

namespace bh
{

/** The proactive-throttling front end of BlockHammer. */
class RowBlocker
{
  public:
    explicit RowBlocker(const BlockHammerConfig &config);

    /** Is activating (bank, row) RowHammer-safe at `now`? */
    bool isSafe(unsigned bank, RowId row, Cycle now);

    /** Record an issued activation (updates both BL and HB). */
    void onActivate(unsigned bank, RowId row, Cycle now);

    /** Epoch clock; returns true when an epoch boundary was crossed. */
    bool clockTick(Cycle now);

    /** Cycle of the next epoch boundary (event-skipping bound). */
    Cycle nextBoundaryAt() const;

    /** Is (bank, row) currently blacklisted? */
    bool isBlacklisted(unsigned bank, RowId row) const;

    /** Active-CBF activation-count estimate for (bank, row). */
    std::uint32_t activationEstimate(unsigned bank, RowId row) const;

    const BlockHammerConfig &config() const { return cfg; }
    Cycle tDelay() const { return delay; }
    const HistoryBuffer &historyBuffer() const { return hb; }
    const DualCbf &bankFilter(unsigned bank) const { return *filters[bank]; }

  private:
    std::uint64_t
    rankRowKey(unsigned bank, RowId row) const
    {
        return (static_cast<std::uint64_t>(bank) << 32) | row;
    }

    /**
     * Per-bank memo of recent blacklist verdicts, invalidated whenever
     * the bank's filter state changes (insertion or epoch swap). Sized
     * for the handful of rows a bank's queued requests revisit; eviction
     * merely costs a recompute.
     */
    struct BlacklistCache
    {
        static constexpr unsigned kSlots = 8;
        std::uint64_t inserts = ~0ull;
        std::uint64_t epoch = ~0ull;
        RowId rows[kSlots] = {};
        bool verdicts[kSlots] = {};
        unsigned used = 0;
        unsigned next = 0;      ///< round-robin eviction cursor
    };

    BlockHammerConfig cfg;
    Cycle delay = 0;
    std::vector<std::unique_ptr<DualCbf>> filters;  ///< one per bank
    HistoryBuffer hb;                               ///< per rank
    Cycle nextBoundary = 0;     ///< shared epoch boundary of all filters
    std::vector<BlacklistCache> bcache;             ///< one per bank
};

} // namespace bh

#endif // BH_BLOCKHAMMER_ROW_BLOCKER_HH
