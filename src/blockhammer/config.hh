/**
 * @file
 * BlockHammer configuration and derived-parameter math.
 *
 * Implements Equation 1 (tDelay), Equation 3 (many-sided threshold
 * scaling N_RH*), the RowBlocker-HB sizing rule, and the Table 7
 * parameter-scaling methodology for different RowHammer thresholds.
 */

#ifndef BH_BLOCKHAMMER_CONFIG_HH
#define BH_BLOCKHAMMER_CONFIG_HH

#include <cstdint>

#include "bloom/counting_bloom.hh"
#include "common/types.hh"
#include "dram/timing.hh"

namespace bh
{

/** Blast-radius model used to derate N_RH for multi-aggressor attacks. */
struct BlastModel
{
    unsigned radius = 1;        ///< r_blast
    double impactBase = 0.5;    ///< c_k = impactBase^(k-1)

    /** The paper's standard double-sided attack model. */
    static BlastModel doubleSided() { return BlastModel{1, 0.5}; }

    /** Worst case observed in >1500 chips (Section 4): r=6, c_k=0.5^(k-1). */
    static BlastModel worstCase() { return BlastModel{6, 0.5}; }
};

/** Full BlockHammer parameter set. */
struct BlockHammerConfig
{
    std::uint32_t nRH = 32768;      ///< single-aggressor RowHammer threshold
    BlastModel blast = BlastModel::doubleSided();
    std::uint32_t nBL = 8192;       ///< blacklisting threshold N_BL
    Cycle tREFW = 0;                ///< refresh window (cycles)
    Cycle tCBF = 0;                 ///< CBF lifetime (cycles), == tREFW
    Cycle tRC = 0;
    Cycle tFAW = 0;
    CbfConfig cbf;                  ///< per-bank CBF geometry
    unsigned banks = 16;
    unsigned threads = 8;
    int baseQuota = 4;              ///< per <thread,bank> in-flight quota
    bool observeOnly = false;       ///< Section 3.2.1 observe-only mode
    std::uint64_t seed = 1;

    /** Equation 3: derated threshold N_RH* under the blast model. */
    std::uint32_t nRHStar() const;

    /**
     * Whether Equation 1 admits a finite positive tDelay: N_BL must stay
     * below the window activation budget. Infeasible geometries (e.g.
     * N_BL = N_RH* with tCBF = tREFW) make tDelay() fatal; sweeps probe
     * this first and report the point as infeasible instead.
     */
    bool feasible() const;

    /** Equation 1: delay enforced on blacklisted rows (cycles). */
    Cycle tDelay() const;

    /** RowBlocker-HB size: ceil(4 * tDelay / tFAW) entries per rank. */
    unsigned historyEntries() const;

    /**
     * RHLI denominator (Equation 2):
     * N_RH* x (tCBF / tREFW) - N_BL blacklisted activations.
     */
    double rhliDenominator() const;

    /** Saturation value for AttackThrottler counters. */
    std::uint32_t throttlerCounterMax() const;

    /**
     * Table 7 methodology: derive all parameters for a RowHammer threshold
     * using the given DRAM timings. N_BL = N_RH / 4; CBF size grows as
     * N_BL shrinks to keep the false-positive rate low; tCBF = tREFW.
     */
    static BlockHammerConfig forThreshold(
        std::uint32_t n_rh, const DramTimings &timings,
        unsigned banks = 16, unsigned threads = 8,
        BlastModel blast = BlastModel::doubleSided());
};

} // namespace bh

#endif // BH_BLOCKHAMMER_CONFIG_HH
