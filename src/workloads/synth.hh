/**
 * @file
 * Parameterized synthetic application trace generator.
 *
 * Stands in for the paper's SPEC CPU2006 / YCSB / network-accelerator
 * traces (Table 8). Each application is reduced to the properties that
 * drive RowHammer mitigation behavior: memory intensity (instructions per
 * memory op), working-set size (LLC hit rate and thus MPKI), row-run
 * length (row-buffer locality and thus RBCPKI), write fraction, and
 * whether accesses bypass the cache (disk/network I/O and non-temporal
 * copies in Table 8 access memory directly).
 */

#ifndef BH_WORKLOADS_SYNTH_HH
#define BH_WORKLOADS_SYNTH_HH

#include <string>

#include "common/rng.hh"
#include "core/trace.hh"

namespace bh
{

/** Tuning knobs of one synthetic application. */
struct SynthParams
{
    std::string name;
    double memSpacing = 50.0;       ///< mean instructions per memory op
    std::uint64_t workingSetBytes = 16ull << 20;
    unsigned rowRunLines = 8;       ///< consecutive lines before a jump
    double writeFrac = 0.25;
    bool bypassCache = false;       ///< direct-to-memory traffic
};

/** Deterministic trace stream for one synthetic application instance. */
class SynthTrace : public TraceSource
{
  public:
    /**
     * @param params application parameters
     * @param seed stream seed (determinism)
     * @param addr_base start of this thread's private address slice
     */
    SynthTrace(const SynthParams &params, std::uint64_t seed, Addr addr_base);

    bool next(TraceEntry &entry) override;
    void reset() override;

    const SynthParams &params() const { return cfg; }

  private:
    SynthParams cfg;
    std::uint64_t seed = 0;
    Addr addrBase = 0;
    Rng rng;
    Addr current = 0;
    unsigned runLeft = 0;
};

} // namespace bh

#endif // BH_WORKLOADS_SYNTH_HH
