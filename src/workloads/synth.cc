#include "workloads/synth.hh"

#include <algorithm>
#include <cmath>

namespace bh
{

SynthTrace::SynthTrace(const SynthParams &params, std::uint64_t seed_val,
                       Addr addr_base)
    : cfg(params), seed(seed_val), addrBase(addr_base), rng(seed_val)
{
}

void
SynthTrace::reset()
{
    rng = Rng(seed);
    current = 0;
    runLeft = 0;
}

bool
SynthTrace::next(TraceEntry &entry)
{
    if (runLeft == 0) {
        // Jump to a random line inside the working set; the following
        // rowRunLines accesses stream sequentially from there.
        std::uint64_t lines = std::max<std::uint64_t>(
            1, cfg.workingSetBytes / kLineBytes);
        current = addrBase + rng.below(lines) * kLineBytes;
        runLeft = cfg.rowRunLines;
    }

    // Uniform jitter in [0.5, 1.5] x mean keeps the long-run intensity at
    // the configured mean without lockstep behavior across threads.
    double spacing = cfg.memSpacing * (0.5 + rng.uniform());
    auto bubbles = static_cast<std::uint32_t>(
        std::max(0.0, std::round(spacing) - 1.0));

    entry.bubbles = bubbles;
    entry.isMem = true;
    entry.isWrite = rng.chance(cfg.writeFrac);
    entry.bypassCache = cfg.bypassCache;
    entry.addr = current;
    current += kLineBytes;
    --runLeft;
    return true;
}

} // namespace bh
