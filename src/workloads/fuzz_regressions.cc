/**
 * @file
 * Fuzzer-found patterns promoted to permanent secsweep regression cells.
 *
 * Promotion protocol (see DESIGN.md "Security verification"): when a
 * `bh_bench fuzz` run finds a pattern whose disturbance margin against
 * some mechanism strictly exceeds the worst hand-written catalog pattern,
 * its serialized form is appended here together with the oracle verdict
 * measured when it was found. attackPatternCatalog() picks these up, so
 * every entry automatically becomes a secsweep grid cell, is held to its
 * declared envelope by tests/test_attacks.cc, and is replayed bit-exactly
 * by tests/test_fuzz.cc against the recorded margin.
 */

#include "workloads/fuzz_patterns.hh"

#include "common/log.hh"

namespace bh
{

const std::vector<FuzzRegressionCell> &
fuzzRegressionCells()
{
    // Found by `bh_bench fuzz --scale 1` (name-derived island seeds;
    // see bench/fuzz_redteam.cc). foundMaxWindowActs / foundMargin are
    // the scale-1 security-config oracle verdicts at the recorded
    // channel count (N_RH = 128), reproduced exactly by
    // tests/test_fuzz.cc.
    static const std::vector<FuzzRegressionCell> cells = {
        {"fuzz-prohit-1",
         "fuzzer-found single-pair burst beating PRoHIT (margin 7.14 vs "
         "4.76 for the static catalog)",
         "fz1:s902ece7bc1e6af1a:b0+2:r1425:p20:g0:a-1/8/16/2",
         "PRoHIT", 1, 914, 914.0 / 128.0},
        {"fuzz-para-1",
         "fuzzer-found four-pair chord beating PARA (margin 3.06 vs "
         "2.63 for the static catalog)",
         "fz1:s2e247d93a0cef730:b0+2:r1679:p22:g0:"
         "a41/10/19/1,53/2/1/2,-87/15/20/2,-78/5/9/2",
         "PARA", 1, 392, 392.0 / 128.0},
    };
    return cells;
}

const std::vector<AttackPatternSpec> &
fuzzRegressionSpecs()
{
    static const std::vector<AttackPatternSpec> specs = [] {
        std::vector<AttackPatternSpec> v;
        for (const FuzzRegressionCell &cell : fuzzRegressionCells()) {
            FuzzPatternParams params;
            std::string err;
            if (!parseFuzzPattern(cell.serialized, params, &err))
                fatal("fuzz regression cell '%s' does not parse: %s",
                      cell.name, err.c_str());
            v.push_back(fuzzPatternSpec(params, cell.name, cell.summary));
        }
        return v;
    }();
    return specs;
}

} // namespace bh
