/**
 * @file
 * RowHammer attack trace generators (Section 7 of the paper).
 *
 * The paper's synthetic attack "activates two rows in each bank as
 * frequently as possible by alternating between them at every row
 * activation (RA, RB, RA, RB, ...)". The generator interleaves banks so
 * bank-level parallelism maximizes the aggregate activation rate, exactly
 * like a real attacker saturating tFAW. Single-sided and many-sided
 * variants are provided for the threat-model tests.
 */

#ifndef BH_WORKLOADS_ATTACK_HH
#define BH_WORKLOADS_ATTACK_HH

#include <vector>

#include "core/trace.hh"
#include "dram/address_map.hh"

namespace bh
{

/** Attack shape parameters. */
struct AttackParams
{
    enum class Kind
    {
        kSingleSided,   ///< hammer one row per bank
        kDoubleSided,   ///< alternate the two neighbors of a victim
        kManySided,     ///< cycle `sides` aggressors around the victim
    };

    Kind kind = Kind::kDoubleSided;
    unsigned numBanks = 16;     ///< banks hammered concurrently
    unsigned firstBank = 0;
    unsigned sides = 2;         ///< aggressor rows per bank (many-sided)
    RowId victimRow = 4096;     ///< victim row index in every bank
};

/** Cache-bypassing attacker access stream. */
class AttackTrace : public TraceSource
{
  public:
    AttackTrace(const AttackParams &params, const AddressMapper &mapper);

    bool next(TraceEntry &entry) override;
    void reset() override { position = 0; }

    /** Aggressor rows hammered in each attacked bank. */
    const std::vector<RowId> &aggressorRows() const { return rows; }

    const AttackParams &params() const { return cfg; }

  private:
    AttackParams cfg;
    std::vector<Addr> addrs;    ///< [bank-slot * rows.size() + row-slot]
    std::vector<RowId> rows;
    std::uint64_t position = 0;
};

} // namespace bh

#endif // BH_WORKLOADS_ATTACK_HH
