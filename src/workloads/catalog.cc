#include "workloads/catalog.hh"

namespace bh
{

namespace
{

constexpr std::uint64_t MB = 1ull << 20;

/** Build the catalog once. Parameters approximate Table 8 behavior. */
std::vector<AppSpec>
buildCatalog()
{
    std::vector<AppSpec> apps;
    auto add = [&](const char *name, char cat, double mpki, double rbcpki,
                   double spacing, std::uint64_t ws, unsigned run,
                   double wf, bool bypass) {
        SynthParams p;
        p.name = name;
        p.memSpacing = spacing;
        p.workingSetBytes = ws;
        p.rowRunLines = run;
        p.writeFrac = wf;
        p.bypassCache = bypass;
        apps.push_back(AppSpec{p, cat, mpki, rbcpki});
    };

    // --- L: RBCPKI < 1 -------------------------------------------------
    // Cache-resident SPEC codes: small working sets, nearly all LLC hits.
    // Working sets are kept small enough to warm within the simulation's
    // warmup window (the real codes touch more memory but at the same
    // near-zero LLC miss rates).
    constexpr std::uint64_t KB = 1024;
    add("444.namd",       'L', 0.1, 0.0, 40, 256 * KB, 16, 0.20, false);
    add("481.wrf",        'L', 0.1, 0.0, 50, 384 * KB, 32, 0.25, false);
    add("435.gromacs",    'L', 0.2, 0.0, 35, 256 * KB, 8, 0.20, false);
    add("456.hmmer",      'L', 0.1, 0.0, 30, 128 * KB, 64, 0.30, false);
    add("464.h264ref",    'L', 0.1, 0.0, 45, 512 * KB, 32, 0.30, false);
    add("447.dealII",     'L', 0.1, 0.0, 40, 384 * KB, 16, 0.25, false);
    add("403.gcc",        'L', 0.2, 0.1, 25, 512 * KB, 16, 0.30, false);
    add("401.bzip2",      'L', 0.3, 0.1, 20, 640 * KB, 64, 0.30, false);
    add("445.gobmk",      'L', 0.4, 0.1, 25, 512 * KB, 8, 0.25, false);
    add("458.sjeng",      'L', 0.3, 0.2, 22, 768 * KB, 8, 0.20, false);
    // Row-major non-temporal copy: a fully sequential stream opens each
    // row once per bank (long runs keep conflicts per kilo-instr tiny).
    add("movnti.rowmaj",  'L', -1, 0.2, 12, 64 * MB, 4096, 1.00, true);
    // Disk I/O: large sequential DMA-style transfers.
    add("ycsb.A",         'L', -1, 0.4, 30, 128 * MB, 2048, 0.50, true);

    // --- M: 1 <= RBCPKI < 5 --------------------------------------------
    add("ycsb.F",         'M', -1, 1.0, 25, 128 * MB, 768, 0.50, true);
    add("ycsb.C",         'M', -1, 1.0, 25, 128 * MB, 768, 0.00, true);
    add("ycsb.B",         'M', -1, 1.1, 22, 128 * MB, 512, 0.10, true);
    add("471.omnetpp",    'M', 1.3, 1.2, 300, 48 * MB, 4, 0.30, false);
    add("483.xalancbmk",  'M', 8.5, 2.4, 80, 64 * MB, 8, 0.30, false);
    add("482.sphinx3",    'M', 9.6, 3.7, 70, 64 * MB, 8, 0.15, false);
    add("436.cactusADM",  'M', 16.5, 3.7, 62, 96 * MB, 16, 0.35, false);
    add("437.leslie3d",   'M', 9.9, 4.6, 78, 64 * MB, 6, 0.35, false);
    add("473.astar",      'M', 5.6, 4.8, 125, 32 * MB, 2, 0.25, false);

    // --- H: RBCPKI >= 5 -------------------------------------------------
    add("450.soplex",     'H', 10.2, 7.1, 55, 64 * MB, 3, 0.20, false);
    add("462.libquantum", 'H', 26.9, 7.7, 37, 32 * MB, 64, 0.25, false);
    add("433.milc",       'H', 13.6, 10.9, 45, 64 * MB, 2, 0.30, false);
    add("459.GemsFDTD",   'H', 20.6, 15.3, 35, 96 * MB, 3, 0.35, false);
    add("470.lbm",        'H', 36.5, 24.7, 22, 128 * MB, 4, 0.40, false);
    add("429.mcf",        'H', 201.7, 62.3, 5, 256 * MB, 2, 0.20, false);
    // Column-major copy: every access opens a new row.
    add("movnti.colmaj",  'H', -1, 30.9, 32, 256 * MB, 1, 1.00, true);
    // Network accelerators: extremely high direct-to-memory access rates.
    add("freescale1",     'H', -1, 336.8, 3.0, 512 * MB, 1, 0.30, true);
    add("freescale2",     'H', -1, 370.4, 2.7, 512 * MB, 1, 0.30, true);

    return apps;
}

} // namespace

const std::vector<AppSpec> &
appCatalog()
{
    static const std::vector<AppSpec> catalog = buildCatalog();
    return catalog;
}

std::optional<AppSpec>
findApp(const std::string &name)
{
    for (const auto &app : appCatalog())
        if (app.params.name == name)
            return app;
    return std::nullopt;
}

std::vector<std::string>
appsInCategory(char category)
{
    std::vector<std::string> names;
    for (const auto &app : appCatalog())
        if (app.category == category)
            names.push_back(app.params.name);
    return names;
}

} // namespace bh
