#include "workloads/mixes.hh"

#include "common/log.hh"
#include "common/rng.hh"
#include "workloads/fuzz_patterns.hh"

namespace bh
{

bool
isAttackApp(const std::string &app)
{
    return app == kAttackAppName ||
        app.rfind(kAttackPatternPrefix, 0) == 0 ||
        app.rfind(kFuzzPatternPrefix, 0) == 0;
}

bool
MixSpec::hasAttack() const
{
    return attackSlot() >= 0;
}

int
MixSpec::attackSlot() const
{
    for (std::size_t i = 0; i < apps.size(); ++i)
        if (isAttackApp(apps[i]))
            return static_cast<int>(i);
    return -1;
}

std::vector<MixSpec>
makeBenignMixes(unsigned count, std::uint64_t seed, unsigned threads)
{
    const auto &catalog = appCatalog();
    Rng rng(seed);
    std::vector<MixSpec> mixes;
    for (unsigned m = 0; m < count; ++m) {
        MixSpec mix;
        mix.name = strfmt("benign-%02u", m);
        for (unsigned t = 0; t < threads; ++t)
            mix.apps.push_back(
                catalog[rng.below(catalog.size())].params.name);
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

std::vector<MixSpec>
makeAttackMixes(unsigned count, std::uint64_t seed, unsigned threads)
{
    auto mixes = makeBenignMixes(count, seed ^ 0xa77ac4, threads);
    Rng rng(seed + 1);
    for (unsigned m = 0; m < count; ++m) {
        mixes[m].name = strfmt("attack-%02u", m);
        // Paper: one RowHammer attack + seven benign threads.
        auto slot = rng.below(threads);
        mixes[m].apps[slot] = kAttackAppName;
    }
    return mixes;
}

std::unique_ptr<TraceSource>
makeTrace(const std::string &app, unsigned slot, unsigned threads,
          const AddressMapper &mapper, std::uint64_t seed,
          const AttackParams &attack, const AttackEnv *env)
{
    if (app == kAttackAppName)
        return std::make_unique<AttackTrace>(attack, mapper);

    if (app.rfind(kFuzzPatternPrefix, 0) == 0) {
        // Inline fuzz pattern: the app string *is* the serialized
        // parameter vector, so any found pattern runs without a catalog
        // entry — the property the red-team search and regression
        // replay depend on.
        AttackPatternSpec spec;
        std::string err;
        if (!fuzzSpecForApp(app, spec, &err))
            fatal("bad fuzz pattern app '%s': %s", app.c_str(),
                  err.c_str());
        if (!env)
            fatal("fuzz pattern '%s' needs an AttackEnv", app.c_str());
        AttackEnv slot_env = *env;
        slot_env.seed =
            seed * 0x9e3779b9ull + slot * 0x85ebca6bull + 0xc2b2ae35ull;
        return makeAttackPatternTrace(spec, mapper, slot_env);
    }

    if (app.rfind(kAttackPatternPrefix, 0) == 0) {
        std::string pattern = app.substr(kAttackPatternPrefix.size());
        const AttackPatternSpec *spec = findAttackPattern(pattern);
        if (!spec)
            fatal("unknown attack pattern '%s'", pattern.c_str());
        if (!env)
            fatal("attack pattern '%s' needs an AttackEnv (thresholds and "
                  "window for pacing)", pattern.c_str());
        AttackEnv slot_env = *env;
        slot_env.seed =
            seed * 0x9e3779b9ull + slot * 0x85ebca6bull + 0xc2b2ae35ull;
        return makeAttackPatternTrace(*spec, mapper, slot_env);
    }

    auto spec = findApp(app);
    if (!spec)
        fatal("unknown application '%s'", app.c_str());

    // Give each slot a private slice of the physical address space so
    // threads do not unintentionally share rows or cache lines.
    Addr total = mapper.organization().totalBytes();
    Addr slice = total / threads;
    Addr base = slice * slot;
    if (spec->params.workingSetBytes > slice)
        spec->params.workingSetBytes = slice;

    std::uint64_t slot_seed = seed * 0x9e3779b9ull + slot * 0x85ebca6bull + 1;
    return std::make_unique<SynthTrace>(spec->params, slot_seed, base);
}

} // namespace bh
