/**
 * @file
 * The 30-application benchmark catalog mirroring Table 8 of the paper.
 *
 * Applications are grouped by row-buffer conflicts per kilo-instruction
 * (RBCPKI) into L (<1), M (1-5), and H (>5). Parameters are calibrated so
 * the measured MPKI/RBCPKI of each synthetic app lands in its paper
 * category (validated by the table8_workloads bench).
 */

#ifndef BH_WORKLOADS_CATALOG_HH
#define BH_WORKLOADS_CATALOG_HH

#include <optional>
#include <vector>

#include "workloads/synth.hh"

namespace bh
{

/** Table 8 row: an application and its expected category. */
struct AppSpec
{
    SynthParams params;
    char category = '?';    ///< 'L', 'M', or 'H'
    double paperMpki = 0.0; ///< -1 when the paper lists none (I/O apps)
    double paperRbcpki = 0.0;
};

/** All 30 applications of Table 8. */
const std::vector<AppSpec> &appCatalog();

/** Look up an application by name. */
std::optional<AppSpec> findApp(const std::string &name);

/** Names of all applications in a category ('L', 'M', 'H'). */
std::vector<std::string> appsInCategory(char category);

} // namespace bh

#endif // BH_WORKLOADS_CATALOG_HH
