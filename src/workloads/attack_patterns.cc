#include "workloads/attack_patterns.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/rng.hh"
#include "workloads/fuzz_patterns.hh"

namespace bh
{

namespace
{

/** Aggressor row for 1-based side index s around `victim` (-1, +1, ...). */
RowId
aggressorRow(RowId victim, unsigned s)
{
    unsigned k = (s + 1) / 2;
    return s % 2 ? victim - k : victim + k;
}

/** Physical address of (flat bank, row, col 0) like AttackTrace. */
Addr
bankRowAddr(const AddressMapper &mapper, unsigned flat_bank, RowId row)
{
    DramCoord c = coordForFlatBank(mapper.organization(), flat_bank);
    c.row = row;
    return mapper.encode(c);
}

TraceEntry
attackEntry(Addr addr, std::uint32_t bubbles = 0)
{
    TraceEntry e;
    e.bubbles = bubbles;
    e.isMem = true;
    e.isWrite = false;
    e.bypassCache = true;
    e.addr = addr;
    return e;
}

/** Per-bank ACT capacity of one tREFW window (the full-rate ceiling). */
std::uint64_t
bankWindowCapacity(const AttackEnv &env)
{
    return static_cast<std::uint64_t>(env.windowCycles /
                                      std::max<Cycle>(1, env.tRC)) + 1;
}

/**
 * Capacity-share bound with slack: a row receiving at most `share` of
 * its bank's request stream cannot be activated more often than that
 * share of the bank's ACT capacity; 25% + 16 covers queue-residency
 * jitter and window-boundary effects.
 */
std::uint64_t
shareBound(double share, const AttackEnv &env)
{
    double cap = static_cast<double>(bankWindowCapacity(env));
    return static_cast<std::uint64_t>(std::ceil(share * cap * 1.25)) + 16;
}

/** Evader per-row activation budget per window (just under N_BL). */
std::uint64_t
evaderBudget(const AttackPatternSpec &spec, const AttackEnv &env)
{
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(spec.budgetFracNBL * env.nBL));
}

} // namespace

std::uint64_t
AttackPatternSpec::maxRowActsPerWindow(const AttackEnv &env) const
{
    switch (family) {
      case Family::kNSided:
      case Family::kBankParallel:
        return shareBound(1.0 / sides, env);
      case Family::kHalfDouble:
        // The far pair takes heavyRatio of every heavyRatio+1 passes;
        // each pass touches 2 far and (1/heavyRatio) * 2 near rows.
        return shareBound(static_cast<double>(heavyRatio) /
                          (2.0 * heavyRatio + 2.0), env);
      case Family::kEvader:
        // Declared ceiling: the blacklist threshold itself. The lap is
        // paced for budgetFracNBL * N_BL, so the headroom to N_BL
        // absorbs scheduling jitter.
        return env.nBL;
      case Family::kWave: {
        // A row belongs to one site, visited once per lap of `sites`
        // visits. One visit gives it dwell / (banks * sides)
        // activations and lasts at least (dwell / banks) * tRC (the
        // bank ACT pipeline) plus the quiet gap's issue time.
        double per_visit = static_cast<double>(dwell) / (numBanks * sides);
        double min_period =
            (static_cast<double>(dwell) / numBanks) *
                static_cast<double>(env.tRC) +
            static_cast<double>(gapInstrs) / env.issueWidth;
        double lap_time = std::max(1.0, min_period * sites);
        double visits = static_cast<double>(env.windowCycles) / lap_time
            + 1.0;
        auto bound = static_cast<std::uint64_t>(
            std::ceil(visits * per_visit * 1.25)) + 16;
        return std::min(bound, shareBound(1.0 / sides, env));
      }
      case Family::kFuzz:
        return fuzzMaxRowActsPerWindow(*this, env);
    }
    return bankWindowCapacity(env);
}

std::string
AttackPatternSpec::envelopeDescr() const
{
    switch (family) {
      case Family::kNSided:
      case Family::kBankParallel:
        return strfmt("(tREFW/tRC)/%u per row", sides);
      case Family::kHalfDouble:
        return strfmt("%u/%u of tREFW/tRC per row", heavyRatio,
                      2 * heavyRatio + 2);
      case Family::kEvader:
        return strfmt("< N_BL per row (paced for %.3g x N_BL)",
                      budgetFracNBL);
      case Family::kWave:
        return strfmt("burst-duty bounded, %u-entry dwell x %u sites",
                      dwell, sites);
      case Family::kFuzz:
        return fuzzEnvelopeDescr(*this);
    }
    return "?";
}

PatternTrace::PatternTrace(const AttackPatternSpec &spec,
                           const AddressMapper &mapper, const AttackEnv &env)
    : cfg(spec)
{
    const DramOrg &org = mapper.organization();
    if (cfg.numBanks == 0 ||
        cfg.firstBank + cfg.numBanks > org.banksPerChannel())
        fatal("attack pattern '%s': bank range out of bounds",
              cfg.name.c_str());
    if (cfg.sides == 0 || cfg.sites == 0)
        fatal("attack pattern '%s': sides and sites must be positive",
              cfg.name.c_str());

    const unsigned B = cfg.numBanks;
    auto bank = [&](unsigned slot) { return cfg.firstBank + slot % B; };
    Rng rng(env.seed);

    switch (cfg.family) {
      case AttackPatternSpec::Family::kNSided:
        // Bank-inner interleave, `sides` aggressors cycling per bank.
        for (unsigned i = 0; i < B * cfg.sides; ++i) {
            unsigned s = (i / B) % cfg.sides + 1;
            entries.push_back(attackEntry(bankRowAddr(
                mapper, bank(i), aggressorRow(cfg.victimRow, s))));
        }
        break;

      case AttackPatternSpec::Family::kBankParallel:
        // Every bank hammers its own victim site concurrently.
        for (unsigned i = 0; i < B * cfg.sides; ++i) {
            unsigned b = i % B;
            unsigned s = (i / B) % cfg.sides + 1;
            RowId site = cfg.victimRow +
                static_cast<RowId>(b) * cfg.siteStride;
            entries.push_back(attackEntry(
                bankRowAddr(mapper, bank(i), aggressorRow(site, s))));
        }
        break;

      case AttackPatternSpec::Family::kHalfDouble: {
        // Per bank: heavyRatio far passes (v-2, v+2) per near pass
        // (v-1, v+1); the far rows carry the bulk of the activations
        // while the near rows get the occasional "assist" access.
        unsigned lap = 2 * cfg.heavyRatio + 2;
        for (unsigned i = 0; i < B * lap; ++i) {
            unsigned j = (i / B) % lap;
            RowId row = j < 2 * cfg.heavyRatio
                ? (j % 2 ? cfg.victimRow + 2 : cfg.victimRow - 2)
                : (j % 2 ? cfg.victimRow + 1 : cfg.victimRow - 1);
            entries.push_back(
                attackEntry(bankRowAddr(mapper, bank(i), row)));
        }
        break;
      }

      case AttackPatternSpec::Family::kEvader: {
        // sites * sides rows per bank, visited round-robin; bubbles
        // stretch one full lap to at least the per-row spacing the
        // window budget demands (the core cannot exceed issueWidth
        // instructions per cycle, so the pacing is a hard floor).
        unsigned rows_per_bank = cfg.sites * cfg.sides;
        std::uint64_t lap_len =
            static_cast<std::uint64_t>(B) * rows_per_bank;
        std::uint64_t budget = evaderBudget(cfg, env);
        std::uint64_t spacing = static_cast<std::uint64_t>(
            env.windowCycles) / budget;
        std::uint64_t lap_instrs = spacing * env.issueWidth;
        auto per_entry = static_cast<std::uint32_t>(
            std::min<std::uint64_t>((lap_instrs + lap_len - 1) / lap_len,
                                    1u << 30));
        std::uint32_t bubbles = per_entry > 0 ? per_entry - 1 : 0;
        for (std::uint64_t i = 0; i < lap_len; ++i) {
            unsigned slot = static_cast<unsigned>(i / B) % rows_per_bank;
            unsigned site = slot / cfg.sides;
            unsigned s = slot % cfg.sides + 1;
            RowId base = cfg.victimRow +
                static_cast<RowId>(site) * cfg.siteStride;
            entries.push_back(attackEntry(
                bankRowAddr(mapper, bank(static_cast<unsigned>(i)),
                            aggressorRow(base, s)),
                bubbles));
        }
        // Seed-derived phase: rotate the lap so concurrent evader
        // instances do not march in lockstep.
        std::rotate(entries.begin(),
                    entries.begin() + rng.below(entries.size()),
                    entries.end());
        break;
      }

      case AttackPatternSpec::Family::kFuzz:
        // Frequency-domain parameter vector; compiled by the fuzzer
        // module (pure function of spec + env, no RNG — serialized
        // patterns must replay bit-exactly).
        compileFuzzLap(cfg, mapper, env, entries);
        break;

      case AttackPatternSpec::Family::kWave: {
        // Visit the sites in a seed-shuffled order; each visit is a
        // full-rate double-sided burst of `dwell` entries, optionally
        // followed by a quiet gap (throttling-probe shape).
        std::vector<unsigned> order(cfg.sites);
        for (unsigned t = 0; t < cfg.sites; ++t)
            order[t] = t;
        for (unsigned t = cfg.sites; t > 1; --t)
            std::swap(order[t - 1],
                      order[static_cast<std::size_t>(rng.below(t))]);
        for (unsigned v = 0; v < cfg.sites; ++v) {
            RowId base = cfg.victimRow +
                static_cast<RowId>(order[v]) * cfg.siteStride;
            for (unsigned j = 0; j < cfg.dwell; ++j) {
                unsigned s = (j / B) % cfg.sides + 1;
                entries.push_back(attackEntry(
                    bankRowAddr(mapper, bank(j), aggressorRow(base, s))));
            }
            if (cfg.gapInstrs > 0) {
                TraceEntry gap;
                gap.bubbles = cfg.gapInstrs;
                gap.isMem = false;
                entries.push_back(gap);
            }
        }
        break;
      }
    }

    if (entries.empty())
        fatal("attack pattern '%s' compiled to an empty lap",
              cfg.name.c_str());
}

bool
PatternTrace::next(TraceEntry &entry)
{
    entry = entries[position % entries.size()];
    ++position;
    return true;
}

std::unique_ptr<TraceSource>
makeAttackPatternTrace(const AttackPatternSpec &spec,
                       const AddressMapper &mapper, const AttackEnv &env)
{
    return std::make_unique<PatternTrace>(spec, mapper, env);
}

const std::vector<AttackPatternSpec> &
attackPatternCatalog()
{
    static const std::vector<AttackPatternSpec> catalog = [] {
        std::vector<AttackPatternSpec> v;
        auto add = [&](AttackPatternSpec s) { v.push_back(std::move(s)); };

        AttackPatternSpec p;
        p.name = "double-sided";
        p.summary = "classic double-sided hammer (reference point)";
        p.family = AttackPatternSpec::Family::kNSided;
        p.sides = 2;
        add(p);

        p = AttackPatternSpec{};
        p.name = "nsided-8";
        p.summary = "TRRespass-style 8-sided hammer around one victim";
        p.family = AttackPatternSpec::Family::kNSided;
        p.sides = 8;
        add(p);

        p = AttackPatternSpec{};
        p.name = "bankpar-4";
        p.summary = "bank-parallel many-sided: a distinct 4-sided site "
                    "per bank";
        p.family = AttackPatternSpec::Family::kBankParallel;
        p.sides = 4;
        p.siteStride = 128;
        add(p);

        p = AttackPatternSpec{};
        p.name = "halfdouble";
        p.summary = "Half-Double escalation: far rows hammered 7:1 over "
                    "near rows";
        p.family = AttackPatternSpec::Family::kHalfDouble;
        p.heavyRatio = 7;
        add(p);

        p = AttackPatternSpec{};
        p.name = "evader-nbl";
        p.summary = "distributed low-rate evader paced just under N_BL "
                    "per row";
        p.family = AttackPatternSpec::Family::kEvader;
        p.sides = 2;
        p.sites = 4;
        p.siteStride = 64;
        p.budgetFracNBL = 0.875;
        add(p);

        p = AttackPatternSpec{};
        p.name = "wave-8";
        p.summary = "rotating-victim wave: full-rate bursts over 8 sites";
        p.family = AttackPatternSpec::Family::kWave;
        p.sides = 2;
        p.sites = 8;
        p.siteStride = 64;
        p.dwell = 512;
        add(p);

        p = AttackPatternSpec{};
        p.name = "probe-burst";
        p.summary = "BreakHammer-style throttling probe: bursts with "
                    "quiet gaps";
        p.family = AttackPatternSpec::Family::kWave;
        p.sides = 2;
        p.sites = 1;
        p.dwell = 512;
        p.gapInstrs = 32768;
        add(p);

        // Fuzzer-found regression cells: every pattern the red-team
        // search promoted becomes a permanent catalog (and therefore
        // secsweep) entry. See src/workloads/fuzz_regressions.cc.
        for (const auto &spec : fuzzRegressionSpecs())
            add(spec);

        return v;
    }();
    return catalog;
}

const AttackPatternSpec *
findAttackPattern(const std::string &name)
{
    for (const auto &spec : attackPatternCatalog())
        if (spec.name == name)
            return &spec;
    return nullptr;
}

} // namespace bh
