/**
 * @file
 * Composable adversarial RowHammer attack-pattern catalog.
 *
 * The classic generator in attack.hh models the paper's Section 7
 * synthetic attack (alternating aggressors at full speed). Deployed
 * mitigations, however, were broken by patterns that look nothing like
 * it: TRRespass-style many-sided bank-parallel hammering, Half-Double
 * neighbor escalation, below-threshold distributed "wave" attacks, and
 * throttling probes (see PAPERS.md: TRRespass, BreakHammer, the
 * RowHammer SoK). This catalog turns those evasion strategies into
 * first-class, seed-deterministic workloads.
 *
 * Every pattern family is compiled at construction into a fixed cyclic
 * "lap" of trace entries (addresses plus pacing bubbles), so a pattern
 * is bit-deterministic per seed and its issue behavior can be reasoned
 * about statically. Each spec also *declares its ACT-rate envelope*:
 * the per-row activation ceiling the pattern intends to stay under
 * within any refresh window (tREFW). The envelope is part of the attack
 * taxonomy — evaders promise to stay below the blacklist threshold
 * N_BL, full-rate hammers are bounded only by DRAM timing shares — and
 * tests/test_attacks.cc holds every catalog pattern to its declaration
 * against the SecurityOracle's measured sliding-window counts.
 */

#ifndef BH_WORKLOADS_ATTACK_PATTERNS_HH
#define BH_WORKLOADS_ATTACK_PATTERNS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/trace.hh"
#include "dram/address_map.hh"

namespace bh
{

/**
 * The threshold/timing environment a pattern instance is resolved
 * against. Patterns pace themselves relative to the run's blacklist
 * threshold and refresh window, so the same catalog entry adapts to
 * compressed and paper-scale configurations alike.
 */
struct AttackEnv
{
    /** RowHammer threshold of the run: the ACT count (per row, per
     *  tREFW window) at which disturbance flips bits. Unitless count. */
    std::uint32_t nRH = 2048;
    /** BlockHammer blacklist threshold, N_BL = N_RH / 4 per the paper.
     *  Evader-family patterns pace themselves just under it. */
    std::uint32_t nBL = 512;
    /** Refresh-window length tREFW, in CPU cycles (3.2 GHz clock). All
     *  declared envelopes are per-window ceilings over this span. */
    Cycle windowCycles = 1'600'000;
    /** Same-bank ACT-to-ACT spacing (tRC), in CPU cycles: the bank
     *  pipeline floor every full-rate envelope divides the window by. */
    Cycle tRC = 148;
    /** Max instructions the attacking core can issue per cycle; pacing
     *  bubbles convert to time at this rate (a hard issue floor). */
    unsigned issueWidth = 4;
    /** Stream seed: catalog families draw lap-compile randomness
     *  (phases, shuffles) from it; kFuzz laps ignore it (their layout
     *  is fully fixed by the parameter vector). */
    std::uint64_t seed = 1;
};

/**
 * One aggressor element of a frequency-domain fuzz pattern: a
 * double-sided pair around the victim site `baseRow + rowOffset`,
 * described Blacksmith-style by how often it fires within the pattern
 * period, at which phase, and with what amplitude.
 */
struct FuzzAggressor
{
    /** Victim-site offset from FuzzPatternParams::baseRow, in rows
     *  (signed). The pair hammers rows site-1 and site+1. */
    std::int32_t rowOffset = 0;
    /** Firings per period: the pair fires in every slot s with
     *  (s + phase) % max(1, period / freq) == 0. 1 <= freq <= period. */
    std::uint32_t freq = 1;
    /** Phase offset in slots, 0 <= phase < period: shifts which slots
     *  this pair fires in relative to the others. */
    std::uint32_t phase = 0;
    /** Amplitude: consecutive (site-1, site+1) pair accesses emitted
     *  per firing — intensity in the time domain. >= 1. */
    std::uint32_t amp = 1;

    bool
    operator==(const FuzzAggressor &o) const
    {
        return rowOffset == o.rowOffset && freq == o.freq &&
            phase == o.phase && amp == o.amp;
    }
};

/**
 * Full parameter vector of one generated frequency-domain pattern (see
 * workloads/fuzz_patterns.hh for sampling, mutation, and the compact
 * serialized form). Together with the AttackEnv it resolves against,
 * this vector fully determines the compiled lap — no RNG involved — so
 * a serialized pattern replays bit-exactly anywhere.
 */
struct FuzzPatternParams
{
    /** Seed of the search stream that produced this vector. Provenance
     *  only: the lap never draws from it, but it is serialized so a
     *  found pattern names the lineage it came from. */
    std::uint64_t seed = 0;
    unsigned numBanks = 16;     ///< banks hammered concurrently
    unsigned firstBank = 0;     ///< first bank of the hammered range
    RowId baseRow = 4096;       ///< victim-site anchor row
    /** Period of the pattern in slots: the frequency domain's time
     *  base. One lap spans exactly one period. */
    std::uint32_t period = 8;
    /** Pacing bubbles (non-memory instructions) appended after each
     *  slot's accesses; 0 = full rate. Converts to time at
     *  AttackEnv::issueWidth instructions per cycle. */
    std::uint32_t slotGap = 0;
    /** The aggressor set; at least one entry. */
    std::vector<FuzzAggressor> aggressors;

    bool
    operator==(const FuzzPatternParams &o) const
    {
        return seed == o.seed && numBanks == o.numBanks &&
            firstBank == o.firstBank && baseRow == o.baseRow &&
            period == o.period && slotGap == o.slotGap &&
            aggressors == o.aggressors;
    }
};

/** One catalog entry: a declarative attack-pattern shape. */
struct AttackPatternSpec
{
    enum class Family
    {
        /** `sides` aggressors around one victim, bank-interleaved. */
        kNSided,
        /** A *distinct* victim site per bank, `sides` aggressors each
         *  (TRRespass-style bank-parallel many-sided hammering). */
        kBankParallel,
        /** Half-Double escalation: far aggressors (victim +/- 2)
         *  hammered `heavyRatio` times per near (victim +/- 1) pass. */
        kHalfDouble,
        /** Low-rate distributed evader: many victim sites, per-row
         *  pacing tuned to stay just under N_BL per tREFW window. */
        kEvader,
        /** Rotating-victim wave: full-rate double-sided bursts that
         *  dwell on one site, then move on; optional quiet gap per
         *  visit turns it into a BreakHammer-style throttling probe. */
        kWave,
        /** Blacksmith-style frequency-domain pattern from the fuzzer:
         *  the `fuzz` parameter vector (per-pair frequency, phase,
         *  amplitude over a slot period) is compiled directly — see
         *  workloads/fuzz_patterns.hh. */
        kFuzz,
    };

    std::string name;           ///< catalog / CLI identifier
    std::string summary;        ///< one-line description (--list)
    Family family = Family::kNSided;

    /** Banks hammered concurrently; [firstBank, firstBank + numBanks)
     *  must stay inside the channel's flat bank range. */
    unsigned numBanks = 16;
    unsigned firstBank = 0;     ///< first flat bank of the hammered range
    RowId victimRow = 4096;     ///< first (or only) victim site (row id)
    /** Aggressors per victim site; each gets a 1/sides share of the
     *  site's access stream. >= 1. */
    unsigned sides = 2;
    unsigned sites = 1;         ///< victim sites (bankpar/evader/wave)
    RowId siteStride = 64;      ///< row distance between victim sites
    unsigned heavyRatio = 7;    ///< half-double far:near hammer ratio
    /** Evader budget as a fraction of N_BL: its lap is bubble-paced so
     *  no row exceeds budgetFracNBL x N_BL ACTs per window. (0, 1]. */
    double budgetFracNBL = 0.875;
    unsigned dwell = 512;       ///< wave: trace entries per site visit
    /** Wave: quiet (non-memory) instructions after each site visit;
     *  > 0 turns the wave into a throttling probe. */
    std::uint32_t gapInstrs = 0;
    /** kFuzz only: the frequency-domain parameter vector the lap is
     *  compiled from (ignored by every other family). */
    FuzzPatternParams fuzz;

    /**
     * Declared envelope: the ceiling on activations any single row may
     * receive within one tREFW-length window under this pattern,
     * resolved against `env`. Derived per family from the row's share
     * of its bank's ACT capacity (window / tRC) or, for evaders, from
     * the blacklist threshold, with slack for queueing jitter.
     */
    std::uint64_t maxRowActsPerWindow(const AttackEnv &env) const;

    /** Human-readable envelope formula (for --list / docs). */
    std::string envelopeDescr() const;

    /**
     * Outstanding-request budget an attacking core needs to keep every
     * hammered bank's ACT pipeline busy (see buildSystem).
     */
    unsigned maxOutstanding() const { return 2 * numBanks; }
};

/** All cataloged attack patterns, in canonical order. */
const std::vector<AttackPatternSpec> &attackPatternCatalog();

/** Look up a catalog pattern by name; nullptr when unknown. */
const AttackPatternSpec *findAttackPattern(const std::string &name);

/** Mix-app prefix denoting a catalog pattern ("attack:<name>"). */
inline const std::string kAttackPatternPrefix = "attack:";

/** "attack:<name>" for a catalog pattern (the mix-app spelling). */
inline std::string
attackPatternApp(const std::string &pattern_name)
{
    return kAttackPatternPrefix + pattern_name;
}

/**
 * Cache-bypassing trace stream for one pattern instance: cycles through
 * the lap compiled from (spec, env) at construction. Bit-deterministic
 * per (spec, env) including the seed; reset() replays the identical
 * stream.
 */
class PatternTrace : public TraceSource
{
  public:
    PatternTrace(const AttackPatternSpec &spec, const AddressMapper &mapper,
                 const AttackEnv &env);

    bool next(TraceEntry &entry) override;
    void reset() override { position = 0; }

    const AttackPatternSpec &spec() const { return cfg; }

    /** The compiled lap (tests inspect pacing and address layout). */
    const std::vector<TraceEntry> &lap() const { return entries; }

  private:
    AttackPatternSpec cfg;
    std::vector<TraceEntry> entries;
    std::uint64_t position = 0;
};

/** Instantiate the trace for one catalog pattern. */
std::unique_ptr<TraceSource>
makeAttackPatternTrace(const AttackPatternSpec &spec,
                       const AddressMapper &mapper, const AttackEnv &env);

} // namespace bh

#endif // BH_WORKLOADS_ATTACK_PATTERNS_HH
