/**
 * @file
 * Composable adversarial RowHammer attack-pattern catalog.
 *
 * The classic generator in attack.hh models the paper's Section 7
 * synthetic attack (alternating aggressors at full speed). Deployed
 * mitigations, however, were broken by patterns that look nothing like
 * it: TRRespass-style many-sided bank-parallel hammering, Half-Double
 * neighbor escalation, below-threshold distributed "wave" attacks, and
 * throttling probes (see PAPERS.md: TRRespass, BreakHammer, the
 * RowHammer SoK). This catalog turns those evasion strategies into
 * first-class, seed-deterministic workloads.
 *
 * Every pattern family is compiled at construction into a fixed cyclic
 * "lap" of trace entries (addresses plus pacing bubbles), so a pattern
 * is bit-deterministic per seed and its issue behavior can be reasoned
 * about statically. Each spec also *declares its ACT-rate envelope*:
 * the per-row activation ceiling the pattern intends to stay under
 * within any refresh window (tREFW). The envelope is part of the attack
 * taxonomy — evaders promise to stay below the blacklist threshold
 * N_BL, full-rate hammers are bounded only by DRAM timing shares — and
 * tests/test_attacks.cc holds every catalog pattern to its declaration
 * against the SecurityOracle's measured sliding-window counts.
 */

#ifndef BH_WORKLOADS_ATTACK_PATTERNS_HH
#define BH_WORKLOADS_ATTACK_PATTERNS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/trace.hh"
#include "dram/address_map.hh"

namespace bh
{

/**
 * The threshold/timing environment a pattern instance is resolved
 * against. Patterns pace themselves relative to the run's blacklist
 * threshold and refresh window, so the same catalog entry adapts to
 * compressed and paper-scale configurations alike.
 */
struct AttackEnv
{
    std::uint32_t nRH = 2048;       ///< RowHammer threshold of the run
    std::uint32_t nBL = 512;        ///< blacklist threshold (N_RH / 4)
    Cycle windowCycles = 1'600'000; ///< tREFW in CPU cycles
    Cycle tRC = 148;                ///< ACT-to-ACT (same bank), CPU cycles
    unsigned issueWidth = 4;        ///< max core instructions per cycle
    std::uint64_t seed = 1;         ///< stream seed (determinism)
};

/** One catalog entry: a declarative attack-pattern shape. */
struct AttackPatternSpec
{
    enum class Family
    {
        /** `sides` aggressors around one victim, bank-interleaved. */
        kNSided,
        /** A *distinct* victim site per bank, `sides` aggressors each
         *  (TRRespass-style bank-parallel many-sided hammering). */
        kBankParallel,
        /** Half-Double escalation: far aggressors (victim +/- 2)
         *  hammered `heavyRatio` times per near (victim +/- 1) pass. */
        kHalfDouble,
        /** Low-rate distributed evader: many victim sites, per-row
         *  pacing tuned to stay just under N_BL per tREFW window. */
        kEvader,
        /** Rotating-victim wave: full-rate double-sided bursts that
         *  dwell on one site, then move on; optional quiet gap per
         *  visit turns it into a BreakHammer-style throttling probe. */
        kWave,
    };

    std::string name;           ///< catalog / CLI identifier
    std::string summary;        ///< one-line description (--list)
    Family family = Family::kNSided;

    unsigned numBanks = 16;     ///< banks hammered concurrently
    unsigned firstBank = 0;
    RowId victimRow = 4096;     ///< first (or only) victim site
    unsigned sides = 2;         ///< aggressors per victim site
    unsigned sites = 1;         ///< victim sites (bankpar/evader/wave)
    RowId siteStride = 64;      ///< row distance between victim sites
    unsigned heavyRatio = 7;    ///< half-double far:near hammer ratio
    double budgetFracNBL = 0.875;   ///< evader per-row window budget /N_BL
    unsigned dwell = 512;       ///< wave: trace entries per site visit
    std::uint32_t gapInstrs = 0;    ///< wave: quiet instrs after a visit

    /**
     * Declared envelope: the ceiling on activations any single row may
     * receive within one tREFW-length window under this pattern,
     * resolved against `env`. Derived per family from the row's share
     * of its bank's ACT capacity (window / tRC) or, for evaders, from
     * the blacklist threshold, with slack for queueing jitter.
     */
    std::uint64_t maxRowActsPerWindow(const AttackEnv &env) const;

    /** Human-readable envelope formula (for --list / docs). */
    std::string envelopeDescr() const;

    /**
     * Outstanding-request budget an attacking core needs to keep every
     * hammered bank's ACT pipeline busy (see buildSystem).
     */
    unsigned maxOutstanding() const { return 2 * numBanks; }
};

/** All cataloged attack patterns, in canonical order. */
const std::vector<AttackPatternSpec> &attackPatternCatalog();

/** Look up a catalog pattern by name; nullptr when unknown. */
const AttackPatternSpec *findAttackPattern(const std::string &name);

/** Mix-app prefix denoting a catalog pattern ("attack:<name>"). */
inline const std::string kAttackPatternPrefix = "attack:";

/** "attack:<name>" for a catalog pattern (the mix-app spelling). */
inline std::string
attackPatternApp(const std::string &pattern_name)
{
    return kAttackPatternPrefix + pattern_name;
}

/**
 * Cache-bypassing trace stream for one pattern instance: cycles through
 * the lap compiled from (spec, env) at construction. Bit-deterministic
 * per (spec, env) including the seed; reset() replays the identical
 * stream.
 */
class PatternTrace : public TraceSource
{
  public:
    PatternTrace(const AttackPatternSpec &spec, const AddressMapper &mapper,
                 const AttackEnv &env);

    bool next(TraceEntry &entry) override;
    void reset() override { position = 0; }

    const AttackPatternSpec &spec() const { return cfg; }

    /** The compiled lap (tests inspect pacing and address layout). */
    const std::vector<TraceEntry> &lap() const { return entries; }

  private:
    AttackPatternSpec cfg;
    std::vector<TraceEntry> entries;
    std::uint64_t position = 0;
};

/** Instantiate the trace for one catalog pattern. */
std::unique_ptr<TraceSource>
makeAttackPatternTrace(const AttackPatternSpec &spec,
                       const AddressMapper &mapper, const AttackEnv &env);

} // namespace bh

#endif // BH_WORKLOADS_ATTACK_PATTERNS_HH
