#include "workloads/fuzz_patterns.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/log.hh"

namespace bh
{

namespace
{

/** Slot stride of a pair: it fires when (slot + phase) % stride == 0. */
std::uint32_t
firingStride(const FuzzAggressor &a, std::uint32_t period)
{
    return std::max<std::uint32_t>(1, period / std::max<std::uint32_t>(
                                              1, a.freq));
}

/**
 * The time-domain skeleton of a fuzz lap: the per-bank row sequence of
 * every slot (each row is later replicated across the bank range), in
 * emission order. Pure function of (params) — shared by the lap
 * compiler and the envelope derivation so they can never disagree.
 */
std::vector<std::vector<RowId>>
slotRowSeqs(const FuzzPatternParams &p)
{
    std::vector<std::vector<RowId>> slots(p.period);
    for (std::uint32_t s = 0; s < p.period; ++s) {
        for (const FuzzAggressor &a : p.aggressors) {
            if ((s + a.phase) % firingStride(a, p.period) != 0)
                continue;
            RowId site = p.baseRow + a.rowOffset;
            for (std::uint32_t rep = 0; rep < std::max<std::uint32_t>(
                                                 1, a.amp); ++rep) {
                slots[s].push_back(site - 1);
                slots[s].push_back(site + 1);
            }
        }
    }
    return slots;
}

std::uint64_t
bankWindowCapacity(const AttackEnv &env)
{
    return static_cast<std::uint64_t>(env.windowCycles /
                                      std::max<Cycle>(1, env.tRC)) + 1;
}

void
validateFuzzParams(const FuzzPatternParams &p, const char *what)
{
    if (p.aggressors.empty())
        fatal("%s: fuzz pattern needs at least one aggressor pair", what);
    if (p.period == 0)
        fatal("%s: fuzz pattern period must be positive", what);
    if (p.numBanks == 0)
        fatal("%s: fuzz pattern needs at least one bank", what);
    for (const FuzzAggressor &a : p.aggressors) {
        if (a.freq == 0 || a.freq > p.period)
            fatal("%s: aggressor freq %u outside [1, period=%u]", what,
                  a.freq, p.period);
        if (a.phase >= p.period)
            fatal("%s: aggressor phase %u >= period %u", what, a.phase,
                  p.period);
        if (a.amp == 0)
            fatal("%s: aggressor amplitude must be positive", what);
        std::int64_t site = static_cast<std::int64_t>(p.baseRow) +
            a.rowOffset;
        if (site < 1)
            fatal("%s: aggressor site %lld leaves the row range", what,
                  static_cast<long long>(site));
    }
}

} // namespace

std::string
FuzzSpace::describe() const
{
    return strfmt("banks %u..%u, pairs %u..%u, period %u..%u slots, "
                  "freq 1..period, phase 0..period-1, amp 1..%u, "
                  "|site offset| <= %d rows, base row %u..%u, "
                  "slot gap 0..%u instrs",
                  minBanks, maxBanks, minPairs, maxPairs, minPeriod,
                  maxPeriod, maxAmp, maxRowOffset,
                  static_cast<unsigned>(minBaseRow),
                  static_cast<unsigned>(maxBaseRow), maxSlotGap);
}

const FuzzSpace &
defaultFuzzSpace()
{
    static const FuzzSpace space;
    return space;
}

namespace
{

std::uint32_t
uniformIn(Rng &rng, std::uint32_t lo, std::uint32_t hi)
{
    return lo + static_cast<std::uint32_t>(rng.below(hi - lo + 1));
}

/** Log-uniform slot gap: half the draws full rate, the rest 2^k paced. */
std::uint32_t
sampleSlotGap(const FuzzSpace &space, Rng &rng)
{
    if (space.maxSlotGap == 0 || rng.chance(0.5))
        return 0;
    unsigned bits = 0;
    while ((1u << (bits + 1)) <= space.maxSlotGap)
        ++bits;
    return std::min<std::uint32_t>(1u << rng.below(bits + 1),
                                   space.maxSlotGap);
}

FuzzAggressor
samplePair(const FuzzSpace &space, std::uint32_t period, Rng &rng)
{
    FuzzAggressor a;
    a.rowOffset = static_cast<std::int32_t>(
        rng.range(-space.maxRowOffset, space.maxRowOffset));
    a.freq = uniformIn(rng, 1, period);
    a.phase = uniformIn(rng, 0, period - 1);
    a.amp = uniformIn(rng, 1, space.maxAmp);
    return a;
}

/** Re-fit every pair after a period change (freq/phase invariants). */
void
clampToPeriod(FuzzPatternParams &p)
{
    for (FuzzAggressor &a : p.aggressors) {
        a.freq = std::min(std::max<std::uint32_t>(1, a.freq), p.period);
        a.phase = a.phase % p.period;
    }
}

} // namespace

FuzzPatternParams
sampleFuzzPattern(const FuzzSpace &space, Rng &rng)
{
    FuzzPatternParams p;
    p.numBanks = uniformIn(rng, space.minBanks, space.maxBanks);
    p.firstBank = 0;
    p.period = uniformIn(rng, space.minPeriod, space.maxPeriod);
    p.baseRow = uniformIn(rng, static_cast<std::uint32_t>(space.minBaseRow),
                          static_cast<std::uint32_t>(space.maxBaseRow));
    p.slotGap = sampleSlotGap(space, rng);
    unsigned pairs = uniformIn(rng, space.minPairs, space.maxPairs);
    for (unsigned i = 0; i < pairs; ++i)
        p.aggressors.push_back(samplePair(space, p.period, rng));
    return p;
}

FuzzPatternParams
mutateFuzzPattern(const FuzzPatternParams &params, const FuzzSpace &space,
                  Rng &rng)
{
    FuzzPatternParams p = params;
    unsigned moves = 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned m = 0; m < moves; ++m) {
        auto pair_at = [&]() -> FuzzAggressor & {
            return p.aggressors[rng.below(p.aggressors.size())];
        };
        switch (rng.below(9)) {
          case 0:
            pair_at().freq = uniformIn(rng, 1, p.period);
            break;
          case 1:
            pair_at().phase = uniformIn(rng, 0, p.period - 1);
            break;
          case 2:
            pair_at().amp = uniformIn(rng, 1, space.maxAmp);
            break;
          case 3:
            pair_at().rowOffset = static_cast<std::int32_t>(
                rng.range(-space.maxRowOffset, space.maxRowOffset));
            break;
          case 4:
            p.baseRow = uniformIn(
                rng, static_cast<std::uint32_t>(space.minBaseRow),
                static_cast<std::uint32_t>(space.maxBaseRow));
            break;
          case 5:
            p.period = uniformIn(rng, space.minPeriod, space.maxPeriod);
            clampToPeriod(p);
            break;
          case 6:
            p.numBanks = uniformIn(rng, space.minBanks, space.maxBanks);
            break;
          case 7:
            if (p.aggressors.size() < space.maxPairs)
                p.aggressors.push_back(samplePair(space, p.period, rng));
            else if (p.aggressors.size() > space.minPairs)
                p.aggressors.erase(p.aggressors.begin() +
                                   rng.below(p.aggressors.size()));
            else
                pair_at().freq = uniformIn(rng, 1, p.period);
            break;
          case 8:
            p.slotGap = sampleSlotGap(space, rng);
            break;
        }
    }
    return p;
}

std::string
serializeFuzzPattern(const FuzzPatternParams &params)
{
    std::string out = strfmt(
        "fz1:s%016" PRIx64 ":b%u+%u:r%u:p%u:g%u:a", params.seed,
        params.firstBank, params.numBanks,
        static_cast<unsigned>(params.baseRow), params.period,
        params.slotGap);
    for (std::size_t i = 0; i < params.aggressors.size(); ++i) {
        const FuzzAggressor &a = params.aggressors[i];
        out += strfmt("%s%d/%u/%u/%u", i ? "," : "", a.rowOffset, a.freq,
                      a.phase, a.amp);
    }
    return out;
}

bool
parseFuzzPattern(const std::string &text, FuzzPatternParams &out,
                 std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    FuzzPatternParams p;
    const char *s = text.c_str();
    int consumed = 0;
    unsigned base_row = 0;
    if (std::sscanf(s,
                    "fz1:s%16" SCNx64 ":b%u+%u:r%u:p%u:g%u:a%n",
                    &p.seed, &p.firstBank, &p.numBanks, &base_row,
                    &p.period, &p.slotGap, &consumed) != 6 ||
        consumed <= 0)
        return fail("not a fz1 pattern header");
    p.baseRow = base_row;
    if (p.period == 0 || p.numBanks == 0)
        return fail("period and banks must be positive");
    s += consumed;
    while (*s) {
        FuzzAggressor a;
        consumed = 0;
        if (std::sscanf(s, "%d/%u/%u/%u%n", &a.rowOffset, &a.freq,
                        &a.phase, &a.amp, &consumed) != 4 || consumed <= 0)
            return fail(strfmt("bad aggressor tuple at '%s'", s));
        if (a.freq == 0 || a.freq > p.period || a.phase >= p.period ||
            a.amp == 0)
            return fail(strfmt("aggressor out of range at '%s'", s));
        p.aggressors.push_back(a);
        s += consumed;
        if (*s == ',')
            ++s;
        else if (*s)
            return fail(strfmt("trailing garbage at '%s'", s));
    }
    if (p.aggressors.empty())
        return fail("pattern has no aggressor pairs");
    out = std::move(p);
    return true;
}

AttackPatternSpec
fuzzPatternSpec(const FuzzPatternParams &params, const std::string &name,
                const std::string &summary)
{
    validateFuzzParams(params, "fuzzPatternSpec");
    AttackPatternSpec spec;
    spec.name = name.empty() ? serializeFuzzPattern(params) : name;
    spec.summary = summary.empty()
        ? strfmt("frequency-domain fuzz pattern (%zu pairs, period %u)",
                 params.aggressors.size(), params.period)
        : summary;
    spec.family = AttackPatternSpec::Family::kFuzz;
    spec.numBanks = params.numBanks;
    spec.firstBank = params.firstBank;
    spec.victimRow = params.baseRow;
    spec.fuzz = params;
    return spec;
}

bool
fuzzSpecForApp(const std::string &app, AttackPatternSpec &out,
               std::string *err)
{
    if (app.rfind(kFuzzPatternPrefix, 0) != 0) {
        if (err)
            *err = "not a fuzz: app";
        return false;
    }
    FuzzPatternParams params;
    if (!parseFuzzPattern(app.substr(kFuzzPatternPrefix.size()), params,
                          err))
        return false;
    out = fuzzPatternSpec(params);
    return true;
}

void
compileFuzzLap(const AttackPatternSpec &spec, const AddressMapper &mapper,
               const AttackEnv &env, std::vector<TraceEntry> &entries)
{
    (void)env;      // fuzz laps are env-independent: pure parameter replay
    const FuzzPatternParams &p = spec.fuzz;
    validateFuzzParams(p, spec.name.c_str());

    const DramOrg &org = mapper.organization();
    const unsigned B = p.numBanks;
    auto slots = slotRowSeqs(p);
    for (std::uint32_t s = 0; s < p.period; ++s) {
        for (RowId row : slots[s]) {
            if (row + 1 >= org.rowsPerBank)
                fatal("fuzz pattern '%s': row %u outside the bank",
                      spec.name.c_str(), static_cast<unsigned>(row));
            for (unsigned b = 0; b < B; ++b) {
                DramCoord c = coordForFlatBank(org, p.firstBank + b);
                c.row = row;
                TraceEntry e;
                e.isMem = true;
                e.isWrite = false;
                e.bypassCache = true;
                e.addr = mapper.encode(c);
                entries.push_back(e);
            }
        }
        if (p.slotGap > 0) {
            TraceEntry gap;
            gap.isMem = false;
            gap.bubbles = p.slotGap;
            entries.push_back(gap);
        }
    }
    if (entries.empty())
        fatal("fuzz pattern '%s' compiled to an empty lap",
              spec.name.c_str());
}

std::uint64_t
fuzzMaxRowActsPerWindow(const AttackPatternSpec &spec, const AttackEnv &env)
{
    const FuzzPatternParams &p = spec.fuzz;
    validateFuzzParams(p, spec.name.c_str());
    auto slots = slotRowSeqs(p);

    // Per-bank view of one lap (every bank replays the same sequence):
    // the hottest row's count bounds what any row can collect per lap;
    // row *transitions* lower-bound the bank's ACT pipeline time (a
    // repeated row is a row hit, which only removes activations).
    std::map<RowId, std::uint64_t> per_row;
    std::uint64_t transitions = 0;
    std::uint64_t lap_rows = 0;
    bool have_last = false;
    RowId last = 0;
    for (const auto &slot : slots) {
        for (RowId row : slot) {
            per_row[row] += 1;
            ++lap_rows;
            if (!have_last || row != last)
                ++transitions;
            last = row;
            have_last = true;
        }
    }
    std::uint64_t hottest = 0;
    for (const auto &kv : per_row)
        hottest = std::max(hottest, kv.second);

    // Minimum lap duration: the bank ACT pipeline (transitions x tRC,
    // banks run in parallel) or the core issue floor over the lap's
    // instructions (every access entry is one instruction per bank
    // copy; each slot gap adds 1 + slotGap instructions), whichever
    // binds. Underestimating the lap time overestimates windows per
    // lap, keeping the bound sound.
    std::uint64_t instrs = lap_rows * p.numBanks;
    if (p.slotGap > 0)
        instrs += static_cast<std::uint64_t>(p.period) * (1 + p.slotGap);
    double min_lap = std::max<double>(
        {1.0, static_cast<double>(transitions) *
                  static_cast<double>(env.tRC),
         static_cast<double>(instrs) / env.issueWidth});
    double laps = static_cast<double>(env.windowCycles) / min_lap + 1.0;
    auto bound = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(hottest) * laps * 1.25)) + 16;
    // Nothing can beat the bank's raw ACT capacity (plus the same
    // jitter slack every full-rate family carries).
    auto cap = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(bankWindowCapacity(env)) * 1.25)) +
        16;
    return std::min(bound, cap);
}

std::string
fuzzEnvelopeDescr(const AttackPatternSpec &spec)
{
    const FuzzPatternParams &p = spec.fuzz;
    std::uint64_t firings = 0;
    for (const FuzzAggressor &a : p.aggressors)
        firings += p.period / firingStride(a, p.period);
    return strfmt("lap-derived: %zu pairs, %" PRIu64
                  " firings / %u slots%s",
                  p.aggressors.size(), firings, p.period,
                  p.slotGap ? strfmt(", %u-instr slot gap",
                                     p.slotGap).c_str()
                            : "");
}

} // namespace bh
