/**
 * @file
 * Multiprogrammed workload composition (Section 7 of the paper):
 * randomly-selected 8-thread mixes of benign applications, optionally
 * with one slot replaced by a RowHammer attack thread.
 */

#ifndef BH_WORKLOADS_MIXES_HH
#define BH_WORKLOADS_MIXES_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/attack.hh"
#include "workloads/attack_patterns.hh"
#include "workloads/catalog.hh"

namespace bh
{

/** Reserved app name denoting the RowHammer attack thread. */
inline const std::string kAttackAppName = "rowhammer.double";

/**
 * True for any attacking mix slot: the legacy "rowhammer.double" thread
 * or an "attack:<pattern>" slot naming a catalog pattern (see
 * workloads/attack_patterns.hh).
 */
bool isAttackApp(const std::string &app);

/** One multiprogrammed workload: an ordered list of app names. */
struct MixSpec
{
    std::string name;
    std::vector<std::string> apps;

    /** True if any slot runs the attack. */
    bool hasAttack() const;

    /** Slot index of the attack thread, or -1. */
    int attackSlot() const;
};

/** Build `count` random all-benign 8-thread mixes. */
std::vector<MixSpec> makeBenignMixes(unsigned count, std::uint64_t seed,
                                     unsigned threads = 8);

/**
 * Build `count` random mixes with one RowHammer attack thread and
 * threads-1 benign threads (the paper's "RowHammer Attack Present" set).
 */
std::vector<MixSpec> makeAttackMixes(unsigned count, std::uint64_t seed,
                                     unsigned threads = 8);

/**
 * Instantiate the trace for one mix slot.
 *
 * @param app app name from the catalog, kAttackAppName, or
 *        "attack:<pattern>" for a catalog attack pattern
 * @param slot thread slot (selects the private address slice and seed)
 * @param threads total thread count (address slicing)
 * @param mapper address mapper (attack needs bank/row-level addressing)
 * @param seed base seed; each slot derives its own stream
 * @param attack attack shape for legacy (kAttackAppName) attack slots
 * @param env threshold/timing environment for "attack:<pattern>" slots
 *        (required for those; the env seed is re-derived per slot)
 */
std::unique_ptr<TraceSource>
makeTrace(const std::string &app, unsigned slot, unsigned threads,
          const AddressMapper &mapper, std::uint64_t seed,
          const AttackParams &attack = AttackParams{},
          const AttackEnv *env = nullptr);

} // namespace bh

#endif // BH_WORKLOADS_MIXES_HH
