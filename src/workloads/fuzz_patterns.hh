/**
 * @file
 * Blacksmith-style frequency-domain attack-pattern generator.
 *
 * The static catalog in attack_patterns.hh encodes *hand-written*
 * evasion strategies. The strongest known RowHammer patterns, however,
 * are *searched*, not written: Blacksmith/ZenHammer describe an
 * aggressor set in the frequency domain — per aggressor pair, how often
 * it fires within a base period, at which phase offset, and with what
 * amplitude — and fuzz that space against the deployed mitigation. This
 * module is the simulator-side equivalent: a parameter vector
 * (FuzzPatternParams) that compiles, through the existing AttackPattern
 * interface, into a cyclic trace lap with a declared ACT-rate envelope,
 * plus the sampling/mutation operators and the compact serialization
 * the red-team search driver (analysis/red_team.hh) and the secsweep
 * regression catalog build on.
 *
 * Determinism contract: a fuzz pattern's lap is a pure function of its
 * parameter vector and the AttackEnv it is resolved against — unlike
 * the seeded catalog families it draws no RNG at compile time, so the
 * serialized form (seed + parameter vector) replays bit-exactly on any
 * machine, in any shard, at any thread count.
 */

#ifndef BH_WORKLOADS_FUZZ_PATTERNS_HH
#define BH_WORKLOADS_FUZZ_PATTERNS_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "workloads/attack_patterns.hh"

namespace bh
{

/**
 * Bounds of the fuzzer's search space. sampleFuzzPattern draws every
 * parameter uniformly (slot gaps log-uniformly) from these ranges and
 * mutateFuzzPattern clamps back into them, so one FuzzSpace value fully
 * describes what the search can ever emit. `bh_bench --list` prints
 * describe() next to the static catalog envelopes.
 */
struct FuzzSpace
{
    unsigned minBanks = 1;          ///< banks hammered concurrently
    unsigned maxBanks = 16;
    unsigned minPairs = 1;          ///< double-sided aggressor pairs
    unsigned maxPairs = 8;
    std::uint32_t minPeriod = 4;    ///< lap length in slots
    std::uint32_t maxPeriod = 64;
    std::uint32_t maxAmp = 4;       ///< consecutive pair repeats per firing
    std::int32_t maxRowOffset = 256;    ///< |victim-site offset| from baseRow
    RowId minBaseRow = 1024;        ///< victim-anchor row range
    RowId maxBaseRow = 8192;
    std::uint32_t maxSlotGap = 16384;   ///< pacing bubbles after each slot

    /** One-line human-readable bounds summary (for --list / docs). */
    std::string describe() const;
};

/** Default search space shared by the fuzz experiment and tests. */
const FuzzSpace &defaultFuzzSpace();

/**
 * Sample a fresh parameter vector uniformly from `space`. Every draw
 * comes from `rng` in a fixed order, so a seed reproduces the pattern.
 */
FuzzPatternParams sampleFuzzPattern(const FuzzSpace &space, Rng &rng);

/**
 * Mutate one parameter vector: 1-3 moves, each tweaking a pair's
 * frequency/phase/amplitude/site, re-anchoring the victim base row,
 * resizing the period or bank spread, adding/dropping a pair, or
 * re-pacing the slot gap — all clamped back into `space`.
 */
FuzzPatternParams mutateFuzzPattern(const FuzzPatternParams &params,
                                    const FuzzSpace &space, Rng &rng);

/**
 * Compact replayable form: "fz1:s<seed-hex>:b<first>+<banks>:r<base>:
 * p<period>:g<gap>:a<off>/<freq>/<phase>/<amp>[,...]". This string is
 * the permanent identity of a found pattern — regression cells store it
 * verbatim and parseFuzzPattern round-trips it bit-exactly.
 */
std::string serializeFuzzPattern(const FuzzPatternParams &params);

/**
 * Parse a serialized pattern. Returns false (and fills `err` when
 * non-null) on malformed input; accepts only the "fz1" format emitted
 * by serializeFuzzPattern.
 */
bool parseFuzzPattern(const std::string &text, FuzzPatternParams &out,
                      std::string *err = nullptr);

/**
 * Wrap a parameter vector in an AttackPatternSpec (Family::kFuzz) so it
 * flows through the normal pattern machinery: PatternTrace compiles it,
 * maxRowActsPerWindow declares its envelope, mixes can run it. `name`
 * defaults to the serialized form.
 */
AttackPatternSpec fuzzPatternSpec(const FuzzPatternParams &params,
                                  const std::string &name = "",
                                  const std::string &summary = "");

/** Mix-app prefix for an inline fuzz pattern ("fuzz:<serialized>"). */
inline const std::string kFuzzPatternPrefix = "fuzz:";

/** "fuzz:<serialized>" — the mix-app spelling of a fuzz pattern. */
inline std::string
fuzzPatternApp(const FuzzPatternParams &params)
{
    return kFuzzPatternPrefix + serializeFuzzPattern(params);
}

/**
 * Resolve a "fuzz:<serialized>" mix app to its spec. Returns false on
 * anything that is not a parseable fuzz app.
 */
bool fuzzSpecForApp(const std::string &app, AttackPatternSpec &out,
                    std::string *err = nullptr);

// --- internals shared with attack_patterns.cc -------------------------

/**
 * Compile the cyclic lap of a kFuzz spec (called by PatternTrace).
 * Layout mirrors the catalog families: each slot's row sequence is
 * emitted bank-outer across the declared bank range, followed by the
 * slot's pacing gap (a non-memory entry of `slotGap` bubbles).
 */
void compileFuzzLap(const AttackPatternSpec &spec,
                    const AddressMapper &mapper, const AttackEnv &env,
                    std::vector<TraceEntry> &entries);

/**
 * Declared envelope of a kFuzz spec: an upper bound on the activations
 * any single row can receive within one tREFW window, derived from the
 * lap itself — the hottest row's count per lap times the number of laps
 * a window can contain, where the minimum lap duration is the larger of
 * the per-bank ACT pipeline time and the issue time of the lap's
 * instructions (accesses plus pacing bubbles), with the catalog's
 * standard 25% + 16 slack for queueing jitter. See DESIGN.md.
 */
std::uint64_t fuzzMaxRowActsPerWindow(const AttackPatternSpec &spec,
                                      const AttackEnv &env);

/** Human-readable envelope formula of a kFuzz spec (--list / docs). */
std::string fuzzEnvelopeDescr(const AttackPatternSpec &spec);

// --- permanent regression cells ---------------------------------------

/**
 * One fuzzer-found pattern promoted to a permanent secsweep regression
 * cell: the serialized parameter vector plus the oracle verdict
 * measured when it was found (scale-1 security configuration, the
 * recorded mechanism and channel count). tests/test_fuzz.cc replays
 * every cell and asserts the margin reproduces exactly.
 */
struct FuzzRegressionCell
{
    const char *name = nullptr;       ///< catalog name ("fuzz-<mech>-<k>")
    const char *summary = nullptr;    ///< one-line description (--list)
    const char *serialized = nullptr; ///< the replayable parameter vector
    const char *mechanism = nullptr;  ///< mechanism it was found against
    unsigned channels = 0;            ///< channel count of the finding run
    std::uint64_t foundMaxWindowActs = 0;   ///< oracle peak when found
    double foundMargin = 0.0;   ///< foundMaxWindowActs / N_RH
};

/** All promoted regression cells (see src/workloads/fuzz_regressions.cc). */
const std::vector<FuzzRegressionCell> &fuzzRegressionCells();

/**
 * The regression cells as catalog-ready specs; attackPatternCatalog
 * appends these, which is what makes every promoted pattern a permanent
 * secsweep cell (and subject to the envelope property tests).
 */
const std::vector<AttackPatternSpec> &fuzzRegressionSpecs();

} // namespace bh

#endif // BH_WORKLOADS_FUZZ_PATTERNS_HH
