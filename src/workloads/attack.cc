#include "workloads/attack.hh"

#include "common/log.hh"

namespace bh
{

AttackTrace::AttackTrace(const AttackParams &params,
                         const AddressMapper &mapper)
    : cfg(params)
{
    const DramOrg &org = mapper.organization();
    if (cfg.numBanks == 0 ||
        cfg.firstBank + cfg.numBanks > org.banksPerChannel()) {
        fatal("attack bank range out of bounds");
    }

    // Aggressor rows around the victim.
    switch (cfg.kind) {
      case AttackParams::Kind::kSingleSided:
        rows = {cfg.victimRow + 1};
        break;
      case AttackParams::Kind::kDoubleSided:
        rows = {cfg.victimRow - 1, cfg.victimRow + 1};
        break;
      case AttackParams::Kind::kManySided:
        for (unsigned s = 1; s <= cfg.sides; ++s) {
            unsigned k = (s + 1) / 2;
            rows.push_back(s % 2 ? cfg.victimRow - k : cfg.victimRow + k);
        }
        break;
    }

    // Precompute the physical address of (bank, aggressor row, col 0).
    for (unsigned b = 0; b < cfg.numBanks; ++b) {
        DramCoord c = coordForFlatBank(org, cfg.firstBank + b);
        for (RowId row : rows) {
            c.row = row;
            addrs.push_back(mapper.encode(c));
        }
    }
}

bool
AttackTrace::next(TraceEntry &entry)
{
    // Interleave banks in the inner dimension so per-bank alternation
    // (RA, RB, RA, RB, ...) rides on top of bank-level parallelism.
    std::uint64_t n_rows = rows.size();
    std::uint64_t bank_slot = position % cfg.numBanks;
    std::uint64_t row_slot = (position / cfg.numBanks) % n_rows;
    ++position;

    entry.bubbles = 0;
    entry.isMem = true;
    entry.isWrite = false;
    entry.bypassCache = true;
    entry.addr = addrs[bank_slot * n_rows + row_slot];
    return true;
}

} // namespace bh
