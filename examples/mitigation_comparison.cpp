/**
 * @file
 * Mitigation comparison: runs one benign and one attack-bearing workload
 * across all seven evaluated mechanisms and prints the three paper
 * metrics plus energy — a miniature of Figure 5 that finishes in under a
 * minute.
 *
 * Usage: example_mitigation_comparison
 */

#include <cstdio>

#include "common/log.hh"
#include "common/table.hh"
#include "sim/experiment.hh"

using namespace bh;

namespace
{

void
runMix(const MixSpec &mix)
{
    std::printf("--- workload %s: ", mix.name.c_str());
    for (const auto &app : mix.apps)
        std::printf("%s ", app.c_str());
    std::printf("---\n");

    ExperimentConfig cfg;
    cfg.nRH = 1024;
    cfg.refwMs = 0.5;
    cfg.warmupCycles = 400'000;
    cfg.runCycles = 1'000'000;

    cfg.mechanism = "Baseline";
    RunResult base = runExperiment(cfg, mix);
    MultiProgMetrics base_m = metricsAgainstAlone(cfg, mix, base);

    TextTable t({"mechanism", "weighted speedup", "harmonic speedup",
                 "max slowdown", "DRAM energy", "bit-flips"});
    t.addRow({"Baseline", "1.000", "1.000", "1.000", "1.000",
              strfmt("%llu", static_cast<unsigned long long>(base.bitFlips))});
    for (const auto &mech : paperMechanisms()) {
        cfg.mechanism = mech;
        RunResult res = runExperiment(cfg, mix);
        MultiProgMetrics m = metricsAgainstAlone(cfg, mix, res);
        t.addRow({mech,
                  TextTable::num(m.weightedSpeedup / base_m.weightedSpeedup, 3),
                  TextTable::num(m.harmonicSpeedup / base_m.harmonicSpeedup, 3),
                  TextTable::num(m.maxSlowdown / base_m.maxSlowdown, 3),
                  TextTable::num(res.energyJ / base.energyJ, 3),
                  strfmt("%llu",
                         static_cast<unsigned long long>(res.bitFlips))});
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Seven RowHammer mitigation mechanisms on one benign and "
                "one attack workload\n(normalized to the unprotected "
                "baseline; compressed configuration)\n\n");
    runMix(makeBenignMixes(1, 3)[0]);
    runMix(makeAttackMixes(1, 3)[0]);
    return 0;
}
