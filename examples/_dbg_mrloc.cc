#include <cstdio>
#include "common/log.hh"
#include "sim/experiment.hh"
using namespace bh;
int main() {
    setVerbose(false);
    ExperimentConfig cfg;
    cfg.mechanism = "MRLoc"; cfg.threads = 4; cfg.nRH = 512; cfg.refwMs = 0.25;
    cfg.warmupCycles = 100000; cfg.runCycles = 700000; cfg.attack.numBanks = 4;
    MixSpec mix; mix.name = "am";
    mix.apps = {kAttackAppName, "444.namd", "435.gromacs", "456.hmmer"};
    auto sys = buildSystem(cfg, mix);
    sys->run(800000);
    auto* h = sys->mem().hammerObserver();
    std::printf("flips=%zu maxActs=%llu acts=%llu vrefDone=%llu vrefPend=%zu\n",
        h->bitFlips().size(), (unsigned long long)h->maxRowActivations(),
        (unsigned long long)h->activationCount(),
        (unsigned long long)sys->mem().controller().victimRefreshesDone(),
        sys->mem().controller().pendingVictimRefreshes());
    for (auto& f : h->bitFlips())
        std::printf("  flip bank=%u victim=%u cycle=%lld\n", f.bank, f.victimRow, (long long)f.cycle);
    return 0;
}
