/**
 * @file
 * Attack study: exercises BlockHammer against the full threat-model
 * space — single-sided, double-sided, and many-sided RowHammer attacks
 * (Section 4 of the paper) — and shows that the activation-rate bound
 * holds for each, while the unprotected baseline suffers bit-flips.
 *
 * Usage: example_attack_study
 */

#include <cstdio>

#include "common/log.hh"
#include "sim/experiment.hh"

using namespace bh;

namespace
{

void
runKind(const char *label, AttackParams::Kind kind, unsigned sides)
{
    ExperimentConfig cfg;
    cfg.threads = 4;
    cfg.nRH = 512;
    cfg.refwMs = 0.25;
    cfg.warmupCycles = 100'000;
    cfg.runCycles = 700'000;
    cfg.attack.kind = kind;
    cfg.attack.sides = sides;
    cfg.attack.numBanks = 4;

    MixSpec mix;
    mix.name = label;
    mix.apps = {kAttackAppName, "444.namd", "456.hmmer", "435.gromacs"};

    std::printf("%-14s", label);
    for (const char *mech : {"Baseline", "BlockHammer"}) {
        cfg.mechanism = mech;
        RunResult res = runExperiment(cfg, mix);
        std::printf("  | %-11s flips=%-3llu maxActs=%-5llu", mech,
                    static_cast<unsigned long long>(res.bitFlips),
                    static_cast<unsigned long long>(res.maxRowActs));
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("RowHammer attack study: N_RH=512 (compressed), "
                "4 banks hammered\n\n");
    runKind("single-sided", AttackParams::Kind::kSingleSided, 1);
    runKind("double-sided", AttackParams::Kind::kDoubleSided, 2);
    runKind("4-sided", AttackParams::Kind::kManySided, 4);
    runKind("8-sided", AttackParams::Kind::kManySided, 8);
    std::printf("\nBlockHammer caps every aggressor's activation rate "
                "regardless of attack\nshape: the Bloom filters track rows, "
                "not patterns (Section 4).\n");
    return 0;
}
