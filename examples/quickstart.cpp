/**
 * @file
 * Quickstart: build a BlockHammer-protected system, run a benign
 * application next to a double-sided RowHammer attacker, and show that
 * (1) no bit-flips occur and (2) the attacker gets throttled while the
 * benign thread keeps its performance.
 *
 * Usage: example_quickstart
 */

#include <cstdio>

#include "common/log.hh"
#include "sim/experiment.hh"

using namespace bh;

int
main()
{
    setVerbose(false);

    // A 4-thread mix: three benign apps and one double-sided attacker.
    MixSpec mix;
    mix.name = "quickstart";
    mix.apps = {"429.mcf", kAttackAppName, "462.libquantum", "444.namd"};

    ExperimentConfig cfg;
    cfg.threads = 4;
    cfg.nRH = 1024;             // compressed threshold (see DESIGN.md)
    cfg.refwMs = 0.5;           // compressed 0.5 ms refresh window
    cfg.runCycles = 1'600'000;  // 0.5 ms at 3.2 GHz

    std::printf("BlockHammer quickstart: 4 threads, one double-sided "
                "RowHammer attacker\n\n");
    std::printf("%-12s %10s %10s %12s %10s\n",
                "mechanism", "bitflips", "maxActs", "benign-IPC", "energy(mJ)");
    for (const char *mech : {"Baseline", "BlockHammer"}) {
        cfg.mechanism = mech;
        RunResult res = runExperiment(cfg, mix);
        double benign_ipc = 0.0;
        int benign = 0;
        for (std::size_t t = 0; t < res.ipc.size(); ++t) {
            if (!res.isAttack[t]) {
                benign_ipc += res.ipc[t];
                ++benign;
            }
        }
        std::printf("%-12s %10llu %10llu %12.3f %10.3f\n",
                    mech,
                    static_cast<unsigned long long>(res.bitFlips),
                    static_cast<unsigned long long>(res.maxRowActs),
                    benign_ipc / benign,
                    res.energyJ * 1e3);
    }
    std::printf("\nBaseline lets the attacker exceed N_RH=%u activations "
                "(bit-flips!);\nBlockHammer caps every row below the "
                "threshold and frees bandwidth for benign threads.\n",
                cfg.nRH);
    return 0;
}
