/**
 * @file
 * RHLI monitor: demonstrates the OS-facing interface of Section 3.2.3.
 * BlockHammer runs in observe-only mode while a mixed workload executes;
 * the "operating system" polls each thread's per-bank RowHammer
 * likelihood index and flags likely attackers — exactly the usage model
 * the paper proposes for software-level scheduling decisions.
 *
 * Usage: example_rhli_monitor
 */

#include <cstdio>

#include "blockhammer/blockhammer.hh"
#include "common/log.hh"
#include "sim/experiment.hh"

using namespace bh;

int
main()
{
    setVerbose(false);

    ExperimentConfig cfg;
    cfg.mechanism = "BlockHammer-Observe";
    cfg.threads = 4;
    cfg.nRH = 1024;
    cfg.refwMs = 0.5;

    MixSpec mix;
    mix.name = "monitored";
    mix.apps = {"429.mcf", kAttackAppName, "462.libquantum", "450.soplex"};

    auto system = buildSystem(cfg, mix);
    auto *bh = dynamic_cast<BlockHammer *>(&system->mem().mitigation());

    std::printf("OS-level RHLI monitor (observe-only BlockHammer, "
                "Section 3.2.3)\n");
    std::printf("polling every 200 us of simulated time:\n\n");
    std::printf("%-10s", "time(us)");
    for (unsigned t = 0; t < cfg.threads; ++t)
        std::printf("  thread%u(%-12s)", t,
                    mix.apps[t].substr(0, 12).c_str());
    std::printf("\n");

    const Cycle poll = 640'000;     // 200 us at 3.2 GHz
    for (int sample = 1; sample <= 6; ++sample) {
        system->run(poll);
        std::printf("%-10.0f", cyclesToNs(system->now()) / 1000.0);
        for (unsigned t = 0; t < cfg.threads; ++t)
            std::printf("  %-21.3f", bh->maxRhli(static_cast<ThreadId>(t)));
        std::printf("\n");
    }

    std::printf("\nOS verdict:\n");
    for (unsigned t = 0; t < cfg.threads; ++t) {
        double rhli = bh->maxRhli(static_cast<ThreadId>(t));
        std::printf("  thread %u (%s): RHLI=%.3f -> %s\n", t,
                    mix.apps[t].c_str(), rhli,
                    rhli >= 1.0 ? "LIKELY ROWHAMMER ATTACK (deschedule/kill)"
                                : "benign");
    }
    return 0;
}
