/**
 * @file
 * Unit tests for the SecurityOracle's sliding-tREFW-window counting —
 * exact window arithmetic at the boundaries, the straddle case (a row
 * refreshed mid-window must NOT lose its sliding count), auto-refresh
 * row-index wraparound, multi-channel row aliasing — plus the
 * end-to-end assertion behind bench/secsweep: BlockHammer keeps the
 * disturbance margin below 1.0 where an unmitigated run exceeds it.
 */

#include <gtest/gtest.h>

#include "analysis/security_oracle.hh"
#include "sim/experiment.hh"

namespace bh
{
namespace
{

SecurityOracle
makeOracle(std::uint32_t n_rh = 100, Cycle window = 1000)
{
    SecurityOracleConfig cfg;
    cfg.nRH = n_rh;
    cfg.windowCycles = window;
    return SecurityOracle(DramOrg::tinyConfig(), cfg);
}

TEST(SecurityOracle, CountsActsInsideOneWindowExactly)
{
    SecurityOracle o = makeOracle(100, 1000);
    // 100 activations, 10 cycles apart: all inside the window at the
    // 100th act (cycle 990 - cycle 0 = 990 < 1000).
    for (Cycle t = 0; t < 1000; t += 10)
        o.onActivate(0, 7, t);
    EXPECT_EQ(o.maxWindowActs(), 100u);
    EXPECT_DOUBLE_EQ(o.margin(), 1.0);
    EXPECT_EQ(o.firstViolationCycle(), 990);
    EXPECT_EQ(o.violatingRows(), 1u);
    EXPECT_EQ(o.activationCount(), 100u);
    EXPECT_EQ(o.peak().row, 7u);
    EXPECT_EQ(o.peak().bank, 0u);
}

TEST(SecurityOracle, WindowBoundaryIsHalfOpen)
{
    SecurityOracle o = makeOracle(100, 1000);
    o.onActivate(2, 5, 0);
    // Exactly tREFW later: the first act has just left the window.
    o.onActivate(2, 5, 1000);
    EXPECT_EQ(o.currentWindowActs(2, 5, 1000), 1u);
    // One cycle inside: both acts count.
    o.onActivate(2, 6, 0);
    o.onActivate(2, 6, 999);
    EXPECT_EQ(o.currentWindowActs(2, 6, 999), 2u);
    EXPECT_EQ(o.maxWindowActs(), 2u);
}

TEST(SecurityOracle, OldActivationsExpire)
{
    SecurityOracle o = makeOracle(100, 1000);
    for (Cycle t = 0; t < 100; t += 10)
        o.onActivate(1, 3, t);
    EXPECT_EQ(o.currentWindowActs(1, 3, 90), 10u);
    o.onActivate(1, 3, 5000);
    EXPECT_EQ(o.currentWindowActs(1, 3, 5000), 1u);
    EXPECT_EQ(o.maxWindowActs(), 10u);      // the peak is remembered
}

TEST(SecurityOracle, RowRefreshMidWindowKeepsTheSlidingCount)
{
    // The straddle attack: hammer before the row's own refresh, then
    // after it, all inside one tREFW-length interval. Refresh-aligned
    // counters see 60 + 60; the sliding window must see 120 — that is
    // precisely why a sliding oracle is needed at tREFW boundaries.
    SecurityOracle o = makeOracle(100, 1000);
    for (Cycle t = 0; t < 300; t += 5)
        o.onActivate(0, 42, t);             // 60 acts in [0, 295]
    o.onRowRefresh(0, 42);
    EXPECT_EQ(o.actsSinceRefresh(0, 42), 0u);
    for (Cycle t = 500; t < 800; t += 5)
        o.onActivate(0, 42, t);             // 60 acts in [500, 795]
    EXPECT_EQ(o.maxWindowActs(), 120u);     // straddles the refresh
    EXPECT_EQ(o.maxActsBetweenRefreshes(), 60u);
    EXPECT_GE(o.margin(), 1.0);
    EXPECT_NE(o.firstViolationCycle(), kNoEventCycle);
}

TEST(SecurityOracle, AutoRefreshWrapsAroundTheRowIndexSpace)
{
    // tinyConfig has 256 rows per bank; a sweep starting at 250 covers
    // rows 250..255 and wraps to 0..3.
    SecurityOracle o = makeOracle(100, 1000);
    o.onActivate(3, 250, 10);
    o.onActivate(3, 2, 10);
    o.onActivate(3, 5, 10);
    o.onAutoRefresh(250, 10);
    EXPECT_EQ(o.actsSinceRefresh(3, 250), 0u);  // directly swept
    EXPECT_EQ(o.actsSinceRefresh(3, 2), 0u);    // wrapped sweep
    EXPECT_EQ(o.actsSinceRefresh(3, 5), 1u);    // outside the sweep
    // Sliding counts survive the refresh (straddle semantics).
    EXPECT_EQ(o.currentWindowActs(3, 250, 20), 1u);
}

TEST(SecurityOracle, ViolatingRowsAreCountedDistinctly)
{
    SecurityOracle o = makeOracle(10, 1000);
    for (Cycle t = 0; t < 200; t += 10) {
        o.onActivate(0, 1, t);
        o.onActivate(0, 2, t + 1);
    }
    EXPECT_EQ(o.violatingRows(), 2u);
    EXPECT_EQ(o.firstViolationCycle(), 90);     // row 1 reaches 10 first
}

TEST(SecurityOracleDeath, RejectsDegenerateConfigs)
{
    SecurityOracleConfig cfg;
    cfg.nRH = 100;
    cfg.windowCycles = 0;
    EXPECT_DEATH(SecurityOracle(DramOrg::tinyConfig(), cfg), "window");
}

// ---- end-to-end: the secsweep claim in miniature ----------------------

ExperimentConfig
e2eConfig(const std::string &mechanism, unsigned channels = 1)
{
    ExperimentConfig cfg;
    cfg.mechanism = mechanism;
    cfg.threads = 4;
    cfg.nRH = 256;
    cfg.refwMs = 0.25;
    cfg.warmupCycles = 100'000;
    cfg.runCycles = 1'000'000;
    cfg.channels = channels;
    cfg.securityOracle = true;
    return cfg;
}

MixSpec
e2eMix(const std::string &pattern)
{
    MixSpec mix;
    mix.name = "sec-" + pattern;
    mix.apps = {attackPatternApp(pattern), "429.mcf", "462.libquantum",
                "473.astar"};
    return mix;
}

TEST(SecurityOracleEndToEnd, BlockHammerHoldsWhereBaselineViolates)
{
    RunResult base = runExperiment(e2eConfig("Baseline"),
                                   e2eMix("double-sided"));
    EXPECT_GE(base.secMargin, 1.0);
    EXPECT_NE(base.secFirstViolation, kNoEventCycle);
    EXPECT_GT(base.secViolatingRows, 0u);

    RunResult bh = runExperiment(e2eConfig("BlockHammer"),
                                 e2eMix("double-sided"));
    EXPECT_LT(bh.secMargin, 1.0);
    EXPECT_TRUE(bh.secSafe());
    EXPECT_EQ(bh.secFirstViolation, kNoEventCycle);
    EXPECT_EQ(bh.secViolatingRows, 0u);
    EXPECT_GT(bh.secMaxWindowActs, 0u);
}

TEST(SecurityOracleEndToEnd, OracleIsObservationOnly)
{
    // Attaching the oracle must not change any simulation result.
    ExperimentConfig with = e2eConfig("BlockHammer");
    ExperimentConfig without = e2eConfig("BlockHammer");
    without.securityOracle = false;
    RunResult a = runExperiment(with, e2eMix("bankpar-4"));
    RunResult b = runExperiment(without, e2eMix("bankpar-4"));
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_DOUBLE_EQ(a.ipc[i], b.ipc[i]);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.bitFlips, b.bitFlips);
    EXPECT_EQ(a.demandActs, b.demandActs);
    EXPECT_EQ(a.blockedActs, b.blockedActs);
    EXPECT_EQ(a.victimRefreshes, b.victimRefreshes);
    // ... and the oracle-less run reports the neutral verdict.
    EXPECT_DOUBLE_EQ(b.secMargin, 0.0);
    EXPECT_EQ(b.secFirstViolation, kNoEventCycle);
}

TEST(SecurityOracleEndToEnd, MultiChannelAliasesStayPerLane)
{
    // The attack addresses channel 0 only: identical (bank, row)
    // coordinates on the other lane are different physical rows and
    // must not inherit (or dilute) its counts. The merged verdict is
    // the worst lane's, not a sum over aliases.
    ExperimentConfig cfg = e2eConfig("Baseline", 2);
    MixSpec mix = e2eMix("double-sided");
    auto system = buildSystem(cfg, mix);
    system->run(cfg.warmupCycles + cfg.runCycles);
    MemSystem &mem = system->mem();
    auto *lane0 = mem.securityOracle(0);
    auto *lane1 = mem.securityOracle(1);
    ASSERT_NE(lane0, nullptr);
    ASSERT_NE(lane1, nullptr);
    EXPECT_GT(lane0->maxWindowActs(), 0u);
    EXPECT_LT(lane1->maxWindowActs(), lane0->maxWindowActs());

    RunResult res = runExperiment(cfg, mix);
    EXPECT_EQ(res.secMaxWindowActs,
              std::max(lane0->maxWindowActs(), lane1->maxWindowActs()));
    EXPECT_DOUBLE_EQ(res.secMargin,
                     std::max(lane0->margin(), lane1->margin()));
}

} // namespace
} // namespace bh
