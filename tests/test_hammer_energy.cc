/**
 * @file
 * Tests for the RowHammer failure oracle (disturbance accumulation, blast
 * radius, refresh resets) and the DRAM energy model.
 */

#include <gtest/gtest.h>

#include "dram/energy.hh"
#include "dram/hammer_observer.hh"

namespace bh
{
namespace
{

HammerConfig
smallConfig(std::uint32_t n_rh = 100, unsigned radius = 1)
{
    HammerConfig cfg;
    cfg.nRH = n_rh;
    cfg.blastRadius = radius;
    cfg.blastImpactBase = 0.5;
    return cfg;
}

TEST(HammerObserver, AdjacentDisturbanceTriggersFlipAtThreshold)
{
    HammerObserver obs(DramOrg::tinyConfig(), smallConfig(100));
    for (int i = 0; i < 99; ++i)
        obs.onActivate(0, 10, i);
    EXPECT_TRUE(obs.bitFlips().empty());
    obs.onActivate(0, 10, 99);
    ASSERT_EQ(obs.bitFlips().size(), 2u);    // rows 9 and 11
    EXPECT_EQ(obs.bitFlips()[0].victimRow, 9u);
    EXPECT_EQ(obs.bitFlips()[1].victimRow, 11u);
}

TEST(HammerObserver, DoubleSidedHalvesRequiredActs)
{
    HammerObserver obs(DramOrg::tinyConfig(), smallConfig(100));
    // Aggressors 9 and 11 around victim 10: each act adds 1 to the victim.
    for (int i = 0; i < 25; ++i) {
        obs.onActivate(0, 9, 2 * i);
        obs.onActivate(0, 11, 2 * i + 1);
    }
    EXPECT_TRUE(obs.bitFlips().empty());
    for (int i = 25; i < 50; ++i) {
        obs.onActivate(0, 9, 2 * i);
        obs.onActivate(0, 11, 2 * i + 1);
    }
    bool victim_flipped = false;
    for (const auto &f : obs.bitFlips())
        victim_flipped |= (f.victimRow == 10);
    EXPECT_TRUE(victim_flipped);
}

TEST(HammerObserver, RefreshResetsDisturbance)
{
    HammerObserver obs(DramOrg::tinyConfig(), smallConfig(100));
    for (int i = 0; i < 80; ++i)
        obs.onActivate(0, 10, i);
    obs.onRowRefresh(0, 9);
    obs.onRowRefresh(0, 11);
    for (int i = 0; i < 80; ++i)
        obs.onActivate(0, 10, 100 + i);
    EXPECT_TRUE(obs.bitFlips().empty());
}

TEST(HammerObserver, BlastRadiusDecay)
{
    HammerObserver obs(DramOrg::tinyConfig(), smallConfig(100, 3));
    // Hammer row 20: victims at distance 1 (impact 1), 2 (0.5), 3 (0.25).
    for (int i = 0; i < 100; ++i)
        obs.onActivate(0, 20, i);
    // Only the distance-1 victims reach 100 disturbance.
    std::set<RowId> flipped;
    for (const auto &f : obs.bitFlips())
        flipped.insert(f.victimRow);
    EXPECT_TRUE(flipped.count(19));
    EXPECT_TRUE(flipped.count(21));
    EXPECT_FALSE(flipped.count(22));
    EXPECT_FALSE(flipped.count(23));
    // 100 more acts push the distance-2 victims (0.5 each) to 100.
    for (int i = 0; i < 100; ++i)
        obs.onActivate(0, 20, 100 + i);
    flipped.clear();
    for (const auto &f : obs.bitFlips())
        flipped.insert(f.victimRow);
    EXPECT_TRUE(flipped.count(18));
    EXPECT_TRUE(flipped.count(22));
}

TEST(HammerObserver, AutoRefreshSweepResetsRange)
{
    HammerObserver obs(DramOrg::tinyConfig(), smallConfig(100));
    for (int i = 0; i < 90; ++i)
        obs.onActivate(0, 10, i);
    obs.onAutoRefresh(8, 8);    // rows 8..15 in all banks
    for (int i = 0; i < 90; ++i)
        obs.onActivate(0, 10, 200 + i);
    EXPECT_TRUE(obs.bitFlips().empty());
}

TEST(HammerObserver, MaxRowActivationsTracksPeak)
{
    HammerObserver obs(DramOrg::tinyConfig(), smallConfig(1000));
    for (int i = 0; i < 42; ++i)
        obs.onActivate(1, 5, i);
    EXPECT_EQ(obs.maxRowActivations(), 42u);
    obs.onRowRefresh(1, 5);
    EXPECT_EQ(obs.rowActivations(1, 5), 0u);
    EXPECT_EQ(obs.maxRowActivations(), 42u);    // historical peak persists
}

TEST(HammerObserver, BanksAreIndependent)
{
    HammerObserver obs(DramOrg::tinyConfig(), smallConfig(100));
    for (int i = 0; i < 99; ++i) {
        obs.onActivate(0, 10, i);
        obs.onActivate(1, 10, i);
    }
    EXPECT_TRUE(obs.bitFlips().empty());
    obs.onActivate(0, 10, 1000);
    EXPECT_EQ(obs.bitFlips().size(), 2u);   // only bank 0's victims
    for (const auto &f : obs.bitFlips())
        EXPECT_EQ(f.bank, 0u);
}

TEST(HammerObserver, EdgeRowsDoNotCrash)
{
    DramOrg org = DramOrg::tinyConfig();
    HammerObserver obs(org, smallConfig(10, 6));
    for (int i = 0; i < 100; ++i) {
        obs.onActivate(0, 0, i);
        obs.onActivate(0, org.rowsPerBank - 1, i);
    }
    EXPECT_FALSE(obs.bitFlips().empty());
}

TEST(HammerObserver, ActivationCountAggregates)
{
    HammerObserver obs(DramOrg::tinyConfig(), smallConfig(1000));
    for (int i = 0; i < 7; ++i)
        obs.onActivate(0, 3, i);
    EXPECT_EQ(obs.activationCount(), 7u);
}

TEST(EnergyModel, CommandsAddEnergy)
{
    DramTimings t = DramTimings::ddr4();
    DramEnergyModel e(t);
    double base = e.totalEnergy(0);
    e.onCommand(DramCommand::kAct, 0);
    double with_act = e.totalEnergy(0);
    EXPECT_GT(with_act, base);
    e.onCommand(DramCommand::kRd, 0);
    EXPECT_GT(e.totalEnergy(0), with_act);
}

TEST(EnergyModel, RefreshCostsMoreThanRead)
{
    DramTimings t = DramTimings::ddr4();
    DramEnergyModel e1(t), e2(t);
    e1.onCommand(DramCommand::kRef, 0);
    e2.onCommand(DramCommand::kRd, 0);
    EXPECT_GT(e1.totalEnergy(0), e2.totalEnergy(0));
}

TEST(EnergyModel, ActiveStandbyCostsMoreThanIdle)
{
    DramTimings t = DramTimings::ddr4();
    DramEnergyModel active(t), idle(t);
    active.onOpenBankCount(1, 0);
    idle.onOpenBankCount(0, 0);
    Cycle window = 1'000'000;
    EXPECT_GT(active.totalEnergy(window), idle.totalEnergy(window));
}

TEST(EnergyModel, BackgroundGrowsWithTime)
{
    DramTimings t = DramTimings::ddr4();
    DramEnergyModel e(t);
    double e1 = e.totalEnergy(1'000'000);
    double e2 = e.totalEnergy(2'000'000);
    EXPECT_GT(e2, e1);
    EXPECT_NEAR(e2, 2 * e1, 1e-9);
}

TEST(EnergyModel, BreakdownSumsToTotal)
{
    DramTimings t = DramTimings::ddr4();
    DramEnergyModel e(t);
    e.onCommand(DramCommand::kAct, 0);
    e.onCommand(DramCommand::kRd, 10);
    e.onCommand(DramCommand::kWr, 20);
    e.onCommand(DramCommand::kRef, 30);
    double total = e.totalEnergy(1000);
    double sum = e.actPreEnergy() + e.readEnergy() + e.writeEnergy() +
        e.refreshEnergy() + e.backgroundEnergy();
    EXPECT_NEAR(total, sum, 1e-12);
}

} // namespace
} // namespace bh
