/**
 * @file
 * Tests for the JSON parser: everything Json::dump() can emit must
 * round-trip — parse(dump(x)) == x structurally and, crucially for the
 * sharded-merge subsystem, dump(parse(dump(x))) == dump(x) byte for
 * byte (including bit-exact doubles). Plus malformed-input rejection.
 */

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/rng.hh"

namespace bh
{
namespace
{

Json
parseOk(const std::string &text)
{
    Json out;
    std::string err;
    EXPECT_TRUE(Json::parse(text, out, &err)) << text << ": " << err;
    return out;
}

void
expectRoundTrip(const Json &j)
{
    std::string compact = j.dump();
    Json reparsed = parseOk(compact);
    EXPECT_EQ(reparsed.dump(), compact);
    // Pretty-printed output parses back to the same compact form.
    Json pretty = parseOk(j.dump(2));
    EXPECT_EQ(pretty.dump(), compact);
}

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_EQ(parseOk("true").asBool(), true);
    EXPECT_EQ(parseOk("false").asBool(), false);
    EXPECT_EQ(parseOk("42").asInt(), 42);
    EXPECT_EQ(parseOk("-17").asInt(), -17);
    EXPECT_EQ(parseOk("0.5").asDouble(), 0.5);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
    EXPECT_EQ(parseOk("  42  ").asInt(), 42);
}

TEST(JsonParse, IntegerClassificationPreservesBytes)
{
    // Tokens that round-trip through std::to_string stay integers...
    EXPECT_EQ(parseOk("7").type(), Json::Type::Int);
    EXPECT_EQ(parseOk("-9223372036854775808").asInt(),
              std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(parseOk("9223372036854775807").asInt(),
              std::numeric_limits<std::int64_t>::max());
    // ...while "-0" and out-of-int64 magnitudes become doubles so that
    // re-dumping reproduces the original bytes.
    Json neg_zero = parseOk("-0");
    EXPECT_EQ(neg_zero.type(), Json::Type::Double);
    EXPECT_EQ(neg_zero.dump(), "-0");
    Json big = parseOk("18446744073709551615");
    EXPECT_EQ(big.type(), Json::Type::Double);
    EXPECT_EQ(parseOk("2.0").type(), Json::Type::Double);
    EXPECT_EQ(parseOk("1e3").type(), Json::Type::Double);
}

TEST(JsonParse, DoubleBitExactness)
{
    for (double v : {0.1, 1.0 / 3.0, 2.5e-300, 1.7976931348623157e308,
                     5e-324, 0.30000000000000004, -123.456e-7}) {
        Json j = parseOk(Json::formatDouble(v));
        EXPECT_EQ(j.asDouble(), v);     // bit-identical value
        EXPECT_EQ(j.dump(), Json::formatDouble(v));
    }
    // Non-finite encoding: the serializer writes +/-1e999, which parses
    // back to infinity and re-dumps identically.
    EXPECT_TRUE(std::isinf(parseOk("1e999").asDouble()));
    EXPECT_EQ(parseOk("1e999").dump(), "1e999");
    EXPECT_EQ(parseOk("-1e999").dump(), "-1e999");
    // NaN serializes as null; parsing keeps the dump bytes stable.
    EXPECT_EQ(parseOk(Json::formatDouble(
        std::numeric_limits<double>::quiet_NaN())).dump(), "null");
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(parseOk("\"a\\\"b\\\\c\"").asString(), "a\"b\\c");
    EXPECT_EQ(parseOk("\"\\n\\t\\r\\b\\f\\/\"").asString(),
              "\n\t\r\b\f/");
    EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9");
    EXPECT_EQ(parseOk("\"\\u20ac\"").asString(), "\xe2\x82\xac");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
    // Control characters dump as \u00XX and round-trip.
    Json j(std::string("\x01\x02nul\x1f"));
    expectRoundTrip(j);
}

TEST(JsonParse, NestedDocumentsRoundTrip)
{
    Json doc = Json::object();
    doc["ints"] = Json::array();
    doc["ints"].push(1).push(-2).push(std::int64_t{1} << 62);
    doc["nested"] = Json::object();
    doc["nested"]["deep"] = Json::array();
    doc["nested"]["deep"].push(Json::object());
    doc["nested"]["empty_arr"] = Json::array();
    doc["nested"]["empty_obj"] = Json::object();
    doc["pi"] = 3.141592653589793;
    doc["s"] = "tab\there \"and\" unicode \xc3\xa9";
    doc["flag"] = false;
    doc["nothing"] = Json();
    expectRoundTrip(doc);
}

TEST(JsonParse, DuplicateKeysCollapseToLast)
{
    Json j = parseOk("{\"a\":1,\"a\":2}");
    EXPECT_EQ(j.size(), 1u);
    EXPECT_EQ(j.find("a")->asInt(), 2);
}

TEST(JsonParse, RejectsMalformedInput)
{
    Json out;
    for (const char *bad :
         {"", "{", "[1,", "[1 2]", "{\"a\":}", "{\"a\" 1}", "{a:1}",
          "\"unterminated", "\"bad\\q\"", "\"\\u12g4\"", "tru", "nul",
          "1.2.3", "--4", "+1", "[1]]", "{}{}", "\"\\ud83d\"",
          "\"raw\ncontrol\"", "01a", "012", ".5", "5.", "-.5", "1e",
          "1e+", "0x10"}) {
        std::string err;
        EXPECT_FALSE(Json::parse(bad, out, &err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(JsonParse, RejectsPathologicalNesting)
{
    std::string deep(1000, '[');
    deep += std::string(1000, ']');
    Json out;
    EXPECT_FALSE(Json::parse(deep, out));
    // A depth comfortably under the limit parses fine.
    std::string ok(100, '[');
    ok += "7";
    ok += std::string(100, ']');
    EXPECT_TRUE(Json::parse(ok, out));
}

/** Random document generator for the fuzz-ish round-trip sweep. */
Json
randomJson(Rng &rng, int depth)
{
    // Leaves only below a depth cap; containers get rarer with depth.
    std::uint64_t pick = rng.below(depth >= 5 ? 5 : 7);
    switch (pick) {
        case 0:
            return Json();
        case 1:
            return Json(rng.chance(0.5));
        case 2: {
            switch (rng.below(4)) {
                case 0: return Json(static_cast<std::int64_t>(rng.next()));
                case 1: return Json(std::numeric_limits<std::int64_t>::min());
                case 2: return Json(std::numeric_limits<std::int64_t>::max());
                default: return Json(rng.range(-1000, 1000));
            }
        }
        case 3: {
            switch (rng.below(4)) {
                case 0: return Json(rng.uniform());
                case 1: return Json(rng.uniform() * 1e300);
                case 2: return Json(rng.uniform() * 1e-300);
                default: return Json(-rng.uniform() * 12345.678);
            }
        }
        case 4: {
            std::string s;
            std::uint64_t len = rng.below(12);
            for (std::uint64_t i = 0; i < len; ++i) {
                switch (rng.below(5)) {
                    case 0: s += static_cast<char>(rng.range(0, 0x1f)); break;
                    case 1: s += '"'; break;
                    case 2: s += '\\'; break;
                    case 3: s += "\xc3\xa9"; break;   // é as raw UTF-8
                    default:
                        s += static_cast<char>(rng.range(' ', '~'));
                }
            }
            return Json(std::move(s));
        }
        case 5: {
            Json arr = Json::array();
            std::uint64_t n = rng.below(4);
            for (std::uint64_t i = 0; i < n; ++i)
                arr.push(randomJson(rng, depth + 1));
            return arr;
        }
        default: {
            Json obj = Json::object();
            std::uint64_t n = rng.below(4);
            for (std::uint64_t i = 0; i < n; ++i)
                obj["k" + std::to_string(rng.below(1000)) +
                    std::string(rng.below(2), '"')] =
                    randomJson(rng, depth + 1);
            return obj;
        }
    }
}

TEST(JsonParse, FuzzRoundTripRandomDocuments)
{
    Rng rng(20260728);
    for (int iter = 0; iter < 300; ++iter) {
        Json doc = randomJson(rng, 0);
        std::string compact = doc.dump();
        Json reparsed;
        std::string err;
        ASSERT_TRUE(Json::parse(compact, reparsed, &err))
            << compact << ": " << err;
        EXPECT_EQ(reparsed.dump(), compact);
        Json pretty;
        ASSERT_TRUE(Json::parse(doc.dump(3), pretty, &err)) << err;
        EXPECT_EQ(pretty.dump(), compact);
    }
}

} // namespace
} // namespace bh
