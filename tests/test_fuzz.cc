/**
 * @file
 * Fuzzer determinism and regression-replay tests (see DESIGN.md
 * "Security verification"):
 *
 *  - the serialized pattern form round-trips bit-exactly and rejects
 *    malformed input;
 *  - sampling and mutation stay inside the declared FuzzSpace bounds;
 *  - one master seed reproduces the entire search lineage (patterns,
 *    scores, evaluation counts), and the registered fuzz experiment
 *    emits byte-identical JSON at any worker count;
 *  - sampled and mutated patterns honor their lap-derived ACT-rate
 *    envelopes at the compressed and the 8x-widened window;
 *  - every promoted regression cell replays to exactly the oracle
 *    verdict recorded when it was found.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/red_team.hh"
#include "bench/registry.hh"
#include "sim/experiment.hh"
#include "workloads/fuzz_patterns.hh"

namespace bh
{
namespace
{

/** Deterministic sampled + mutated pattern set shared by the tests. */
std::vector<FuzzPatternParams>
testPatterns(unsigned sampled, unsigned mutated, std::uint64_t seed)
{
    const FuzzSpace &space = defaultFuzzSpace();
    Rng rng(seed);
    std::vector<FuzzPatternParams> out;
    for (unsigned i = 0; i < sampled; ++i)
        out.push_back(sampleFuzzPattern(space, rng));
    for (unsigned i = 0; i < mutated; ++i)
        out.push_back(mutateFuzzPattern(out[i % sampled], space, rng));
    return out;
}

void
expectInSpace(const FuzzPatternParams &p, const FuzzSpace &space)
{
    EXPECT_GE(p.numBanks, space.minBanks);
    EXPECT_LE(p.numBanks, space.maxBanks);
    EXPECT_GE(p.aggressors.size(), space.minPairs);
    EXPECT_LE(p.aggressors.size(), space.maxPairs);
    EXPECT_GE(p.period, space.minPeriod);
    EXPECT_LE(p.period, space.maxPeriod);
    EXPECT_GE(p.baseRow, space.minBaseRow);
    EXPECT_LE(p.baseRow, space.maxBaseRow);
    EXPECT_LE(p.slotGap, space.maxSlotGap);
    for (const FuzzAggressor &a : p.aggressors) {
        EXPECT_LE(std::abs(a.rowOffset), space.maxRowOffset);
        EXPECT_GE(a.freq, 1u);
        EXPECT_LE(a.freq, p.period);
        EXPECT_LT(a.phase, p.period);
        EXPECT_GE(a.amp, 1u);
        EXPECT_LE(a.amp, space.maxAmp);
    }
}

TEST(FuzzSerialization, RoundTripsBitExactly)
{
    for (const auto &p : testPatterns(8, 8, 0xf00d)) {
        std::string ser = serializeFuzzPattern(p);
        FuzzPatternParams back;
        std::string err;
        ASSERT_TRUE(parseFuzzPattern(ser, back, &err)) << ser << ": " << err;
        EXPECT_TRUE(p == back) << ser;
        EXPECT_EQ(serializeFuzzPattern(back), ser);
    }
}

TEST(FuzzSerialization, RejectsMalformed)
{
    FuzzPatternParams out;
    for (const char *bad : {
             "",                                         // empty
             "fz2:s0:b0+1:r64:p4:g0:a0/1/0/1",           // wrong version
             "fz1:s0:b0+1:r64:p4:g0:a",                  // no aggressors
             "fz1:s0:b0+1:r64:p4:g0:a0/9/0/1",           // freq > period
             "fz1:s0:b0+1:r64:p4:g0:a0/1/7/1",           // phase >= period
             "fz1:s0:b0+1:r64:p4:g0:a0/1/0/0",           // zero amplitude
             "fz1:s0:b0+1:r64:p0:g0:a0/1/0/1",           // zero period
             "fz1:s0:b0+1:r64:p4:g0:a0/1/0/1junk",       // trailing junk
         })
        EXPECT_FALSE(parseFuzzPattern(bad, out)) << bad;
}

TEST(FuzzSampling, SampledAndMutatedPatternsStayInBounds)
{
    const FuzzSpace &space = defaultFuzzSpace();
    Rng rng(42);
    FuzzPatternParams p = sampleFuzzPattern(space, rng);
    expectInSpace(p, space);
    // Long mutation chains must never drift out of the space (the
    // search applies them generation after generation).
    for (int i = 0; i < 200; ++i) {
        p = mutateFuzzPattern(p, space, rng);
        expectInSpace(p, space);
    }
}

TEST(FuzzSampling, SameSeedSamplesIdenticalPatterns)
{
    const FuzzSpace &space = defaultFuzzSpace();
    Rng a(7), b(7);
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(sampleFuzzPattern(space, a) ==
                    sampleFuzzPattern(space, b));
}

/** Tiny attacker-alone search config so lineage tests run fast. */
RedTeamConfig
tinySearchConfig(std::uint64_t seed)
{
    RedTeamConfig rc;
    rc.base.mechanism = "Baseline";
    rc.base.threads = 1;
    rc.base.nRH = 128;
    rc.base.refwMs = 0.25;
    rc.base.warmupCycles = 0;
    rc.base.runCycles = 200'000;
    rc.base.hammerObserver = false;
    rc.base.securityOracle = true;
    rc.benignApps = {};
    rc.population = 3;
    rc.generations = 2;
    rc.survivors = 1;
    rc.seed = seed;
    return rc;
}

TEST(RedTeam, MasterSeedReproducesTheEntireLineage)
{
    RedTeamResult a = redTeamSearch(tinySearchConfig(77));
    RedTeamResult b = redTeamSearch(tinySearchConfig(77));
    EXPECT_EQ(a.best.serialized, b.best.serialized);
    EXPECT_EQ(a.best.margin, b.best.margin);
    EXPECT_EQ(a.best.maxWindowActs, b.best.maxWindowActs);
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.memoHits, b.memoHits);
    ASSERT_EQ(a.generationBest.size(), b.generationBest.size());
    for (std::size_t g = 0; g < a.generationBest.size(); ++g) {
        EXPECT_EQ(a.generationBest[g].serialized,
                  b.generationBest[g].serialized);
        EXPECT_EQ(a.generationBest[g].margin, b.generationBest[g].margin);
    }
    // The chain seed is stamped into every emitted pattern as
    // provenance, and a different seed explores a different lineage.
    EXPECT_EQ(a.best.params.seed, 77u);
    RedTeamResult c = redTeamSearch(tinySearchConfig(78));
    EXPECT_NE(a.best.serialized, c.best.serialized);
}

TEST(FuzzExperiment, JsonIsIdenticalAcrossWorkerCounts)
{
    const BenchInfo *info = findBench("fuzz");
    ASSERT_NE(info, nullptr);
    auto run = [&](unsigned jobs) {
        Runner pool(jobs);
        BenchContext ctx;
        ctx.scale = 0.1;
        ctx.runner = &pool;
        testing::internal::CaptureStdout();
        runBench(*info, ctx);
        testing::internal::GetCapturedStdout();
        return ctx.result;
    };
    EXPECT_EQ(run(1).dump(2), run(4).dump(2));
}

/** Attack-alone experiment measuring a pattern's issued ACT rate. */
RunResult
runAlone(const FuzzPatternParams &params, double window_mult)
{
    ExperimentConfig cfg;
    cfg.mechanism = "Baseline";     // nothing throttles: worst-case rate
    cfg.threads = 1;
    cfg.nRH = static_cast<std::uint32_t>(512 * window_mult);
    cfg.refwMs = 0.25 * window_mult;
    cfg.warmupCycles = 0;
    cfg.runCycles = static_cast<Cycle>(1'000'000 * window_mult / 2);
    cfg.hammerObserver = false;
    cfg.securityOracle = true;
    MixSpec mix;
    mix.name = "alone-fuzz";
    mix.apps = {fuzzPatternApp(params)};
    return runExperiment(cfg, mix);
}

TEST(FuzzEnvelope, HoldsForSampledAndMutatedPatterns)
{
    // Two sampled + one mutated pattern, at the compressed scale-1
    // window and the 8x-widened one (windowMultiplier(4), like
    // test_attacks does for the static catalog).
    for (const auto &p : testPatterns(2, 1, 0xbeef)) {
        AttackPatternSpec spec = fuzzPatternSpec(p);
        for (double mult : {1.0, 8.0}) {
            ExperimentConfig probe;
            probe.nRH = static_cast<std::uint32_t>(512 * mult);
            probe.refwMs = 0.25 * mult;
            RunResult res = runAlone(p, mult);
            std::uint64_t envelope =
                spec.maxRowActsPerWindow(probe.attackEnv());
            EXPECT_GT(res.secMaxWindowActs, 0u)
                << spec.name << ": pattern never activated a row";
            EXPECT_LE(res.secMaxWindowActs, envelope)
                << spec.name << " exceeded its envelope at window x"
                << mult;
        }
    }
}

TEST(FuzzRegressions, CellsAreCatalogedSecsweepEntries)
{
    ASSERT_FALSE(fuzzRegressionCells().empty())
        << "the fuzzer's found-pattern table must not regress to empty";
    for (const auto &cell : fuzzRegressionCells()) {
        const AttackPatternSpec *spec = findAttackPattern(cell.name);
        ASSERT_NE(spec, nullptr) << cell.name;
        EXPECT_EQ(spec->family, AttackPatternSpec::Family::kFuzz);
        EXPECT_EQ(serializeFuzzPattern(spec->fuzz), cell.serialized);
        EXPECT_GE(cell.foundMargin, 1.0)
            << cell.name << ": a promoted pattern must have violated "
            << "the ACT bound of the mechanism it was found against";
    }
}

TEST(FuzzRegressions, ReplayExactlyAsFound)
{
    // Bit-exact replay: rebuilding the finding conditions from the
    // serialized form alone must reproduce the recorded oracle verdict
    // to the last activation. securityConfig/securityMix are the same
    // helpers the secsweep and fuzz experiments build their cells from.
    BenchContext ctx;
    ctx.scale = 1.0;
    for (const auto &cell : fuzzRegressionCells()) {
        FuzzPatternParams params;
        ASSERT_TRUE(parseFuzzPattern(cell.serialized, params));
        ExperimentConfig cfg =
            securityConfig(ctx, cell.mechanism, cell.channels);
        RunResult res = runExperiment(
            cfg, securityMix(fuzzPatternApp(params), "redteam"));
        EXPECT_EQ(res.secMaxWindowActs, cell.foundMaxWindowActs)
            << cell.name;
        EXPECT_DOUBLE_EQ(res.secMargin, cell.foundMargin) << cell.name;
    }
}

} // namespace
} // namespace bh
