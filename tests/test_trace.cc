/**
 * @file
 * Observability differential tests: the TraceSink is observation-only.
 *
 *  - The hard invariant of the tracing subsystem: every registered
 *    experiment produces byte-identical JSON with tracing off, on, and
 *    filtered, at any --jobs/--channel-threads/--skip combination
 *    (sharded down so the whole registry stays fast).
 *  - The emitted trace is valid Chrome trace_event JSON: it parses via
 *    src/common/json as an array of objects carrying ph/pid/tid/ts,
 *    with only known phase letters and categories.
 *  - Category filtering drops events without touching results.
 *  - Stats snapshots ride inside cell payloads but are excluded from
 *    manifest cell digests (old goldens and stats-free shards keep
 *    validating), and the structural diff's "*" ignore wildcard skips
 *    them by path.
 */

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "bench/registry.hh"
#include "common/trace_sink.hh"
#include "report/report.hh"
#include "sim/runner.hh"

namespace bh
{
namespace
{

struct RunOpts
{
    double scale = 0.1;
    unsigned jobs = 1;
    unsigned channels = 1;
    unsigned channelThreads = 1;
    SkipMode skip = SkipMode::kEventSkip;
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    std::string tracePath;      ///< empty = tracing off
    std::string traceFilter;
};

/** Run one registered experiment under `opts`, returning its JSON. */
Json
runTraced(const char *name, const RunOpts &opts)
{
    const BenchInfo *info = findBench(name);
    EXPECT_NE(info, nullptr) << name;
    if (opts.tracePath.size()) {
        std::string err;
        EXPECT_TRUE(TraceSink::open(opts.tracePath, opts.traceFilter, err))
            << err;
    }
    Runner pool(opts.jobs);
    BenchContext ctx;
    ctx.scale = opts.scale;
    ctx.runner = &pool;
    ctx.channels = opts.channels;
    ctx.channelThreads = opts.channelThreads;
    ctx.skip = opts.skip;
    ctx.shard.index = opts.shardIndex;
    ctx.shard.count = opts.shardCount;
    testing::internal::CaptureStdout();
    runBench(*info, ctx);
    testing::internal::GetCapturedStdout();
    if (opts.tracePath.size())
        TraceSink::close();
    return ctx.result;
}

std::string
tracePath(const char *tag)
{
    return testing::TempDir() + "bh_trace_" + tag + ".json";
}

Json
parseFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good()) << path;
    std::ostringstream text;
    text << f.rdbuf();
    Json doc;
    std::string err;
    EXPECT_TRUE(Json::parse(text.str(), doc, &err)) << err;
    return doc;
}

/**
 * The tentpole invariant over the whole registry: tracing (unfiltered
 * and filtered) never changes a single output byte. Sharded to a slice
 * of each experiment's cell grid so the full registry stays fast;
 * analytic experiments run whole in every shard and are covered too.
 */
TEST(TraceDifferential, AllExperimentsByteIdenticalWithTracingOnOffFiltered)
{
    for (const auto &info : benchRegistry()) {
        RunOpts off;
        off.shardIndex = 0;
        off.shardCount = 7;
        RunOpts on = off;
        on.tracePath = tracePath("all");
        RunOpts filtered = off;
        filtered.tracePath = tracePath("all");
        filtered.traceFilter = "mitig,skip";

        std::string base = runTraced(info.name, off).dump(2);
        EXPECT_EQ(base, runTraced(info.name, on).dump(2))
            << info.name << ": tracing on changed the output";
        EXPECT_EQ(base, runTraced(info.name, filtered).dump(2))
            << info.name << ": filtered tracing changed the output";
    }
    std::remove(tracePath("all").c_str());
}

/**
 * Tracing composed with every execution-shape knob: worker count,
 * channel count, lane threads, and skip mode must all agree with the
 * serial untraced reference byte-for-byte.
 */
TEST(TraceDifferential, TracingIsInvariantAcrossJobsThreadsAndSkip)
{
    RunOpts ref;
    ref.channels = 2;
    ref.shardIndex = 0;
    ref.shardCount = 8;
    std::string base = runTraced("fig4", ref).dump(2);

    struct Variant
    {
        const char *tag;
        unsigned jobs;
        unsigned channelThreads;
        SkipMode skip;
    };
    const Variant variants[] = {
        {"jobs4", 4, 1, SkipMode::kEventSkip},
        {"lanes2", 1, 2, SkipMode::kEventSkip},
        {"noskip", 1, 1, SkipMode::kCycleByCycle},
        {"verify", 2, 2, SkipMode::kVerify},
    };
    for (const Variant &v : variants) {
        RunOpts opts = ref;
        opts.jobs = v.jobs;
        opts.channelThreads = v.channelThreads;
        opts.skip = v.skip;
        opts.tracePath = tracePath(v.tag);
        EXPECT_EQ(base, runTraced("fig4", opts).dump(2)) << v.tag;
        std::remove(opts.tracePath.c_str());
    }
}

TEST(TraceFormat, EmittedTraceParsesAsChromeTraceEvents)
{
    std::string path = tracePath("format");
    RunOpts opts;
    opts.channels = 2;      // driver lane spans only exist multi-channel
    opts.shardIndex = 0;
    opts.shardCount = 12;
    opts.tracePath = path;
    runTraced("fig4", opts);

    Json doc = parseFile(path);
    ASSERT_EQ(doc.type(), Json::Type::Array);
    ASSERT_GT(doc.size(), 1u);     // metadata + real events

    const std::set<std::string> known_ph = {"M", "i", "X", "C"};
    const std::set<std::string> known_cat = {"mem", "queue", "mitig",
                                             "lane", "skip"};
    std::set<std::string> seen_cat;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const Json &e = doc.at(i);
        ASSERT_EQ(e.type(), Json::Type::Object) << "event " << i;
        const Json *ph = e.find("ph");
        ASSERT_NE(ph, nullptr) << "event " << i;
        EXPECT_TRUE(known_ph.count(ph->asString()))
            << "event " << i << ": ph " << ph->asString();
        ASSERT_NE(e.find("pid"), nullptr) << "event " << i;
        ASSERT_NE(e.find("tid"), nullptr) << "event " << i;
        if (ph->asString() == "M")
            continue;   // process_name metadata row
        ASSERT_NE(e.find("ts"), nullptr) << "event " << i;
        EXPECT_GE(e.find("ts")->asInt(), 0) << "event " << i;
        if (ph->asString() == "X") {
            ASSERT_NE(e.find("dur"), nullptr) << "event " << i;
            EXPECT_GE(e.find("dur")->asInt(), 0) << "event " << i;
        }
        const Json *cat = e.find("cat");
        ASSERT_NE(cat, nullptr) << "event " << i;
        EXPECT_TRUE(known_cat.count(cat->asString()))
            << "event " << i << ": cat " << cat->asString();
        seen_cat.insert(cat->asString());
    }
    // A fig4 slice must at least produce DRAM commands, queue-depth
    // counters, and driver lane spans.
    EXPECT_TRUE(seen_cat.count("mem"));
    EXPECT_TRUE(seen_cat.count("queue"));
    EXPECT_TRUE(seen_cat.count("lane"));
    std::remove(path.c_str());
}

TEST(TraceFormat, CategoryFilterDropsOtherCategories)
{
    std::string path = tracePath("filter");
    RunOpts opts;
    opts.shardIndex = 0;
    opts.shardCount = 12;
    opts.tracePath = path;
    opts.traceFilter = "mem";
    runTraced("fig4", opts);

    Json doc = parseFile(path);
    ASSERT_EQ(doc.type(), Json::Type::Array);
    bool saw_mem = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const Json *cat = doc.at(i).find("cat");
        if (!cat)
            continue;   // metadata
        EXPECT_EQ(cat->asString(), "mem") << "event " << i;
        saw_mem = true;
    }
    EXPECT_TRUE(saw_mem);
    std::remove(path.c_str());
}

/**
 * Cell payloads carry a "stats" snapshot, but manifest digests must
 * exclude it: a payload with stats and the same payload stripped of
 * them digest identically (old goldens and stats-free shard files from
 * earlier binaries keep validating).
 */
TEST(StatsExport, CellDigestExcludesStatsKey)
{
    Json with = Json::object();
    with["ipc"] = 1.5;
    with["energy"] = 2.25;
    Json stats = Json::object();
    stats["ch0"] = Json::object();
    with["stats"] = stats;

    Json without = Json::object();
    without["ipc"] = 1.5;
    without["energy"] = 2.25;

    EXPECT_EQ(cellDigest(with), cellDigest(without));
    EXPECT_NE(cellDigest(with), hex64(fnv1a64(with.dump())));
    // Non-stats fields still matter.
    Json changed = without;
    changed["ipc"] = 9.0;
    EXPECT_NE(cellDigest(with), cellDigest(changed));
    // Non-object payloads hash their plain serialization.
    Json scalar(3.0);
    EXPECT_EQ(cellDigest(scalar), hex64(fnv1a64(scalar.dump())));
}

TEST(StatsExport, CellPayloadsCarryPerLaneStatSnapshots)
{
    RunOpts opts;
    opts.channels = 2;
    opts.shardIndex = 0;
    opts.shardCount = 24;   // one cell is enough
    Json result = runTraced("fig4", opts);
    const Json *cells = result.find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_GT(cells->objectItems().size(), 0u);
    const Json &cell = cells->objectItems().begin()->second;
    const Json *stats = cell.find("stats");
    ASSERT_NE(stats, nullptr);
    // One lane snapshot per channel, each with controller counters and
    // the derived row-hit-rate scalar.
    for (const char *lane : {"ch0", "ch1"}) {
        const Json *ch = stats->find(lane);
        ASSERT_NE(ch, nullptr) << lane;
        const Json *counters = ch->find("counters");
        ASSERT_NE(counters, nullptr) << lane;
        EXPECT_NE(counters->find("mc.reads"), nullptr) << lane;
        EXPECT_NE(counters->find("mc.act_demand"), nullptr) << lane;
        const Json *scalars = ch->find("scalars");
        ASSERT_NE(scalars, nullptr) << lane;
        EXPECT_NE(scalars->find("mc.row_hit_rate"), nullptr) << lane;
    }
}

TEST(StatsExport, DiffWildcardIgnoresStatsSubtrees)
{
    Json a = Json::object();
    Json b = Json::object();
    for (const char *idx : {"0", "7"}) {
        Json ca = Json::object();
        ca["ipc"] = 1.0;
        ca["stats"] = Json::object();
        ca["stats"]["x"] = 1;
        Json cb = ca;
        cb["stats"]["x"] = 2;   // differs only under stats
        a["cells"] = a["cells"].isNull() ? Json::object() : a["cells"];
        b["cells"] = b["cells"].isNull() ? Json::object() : b["cells"];
        a["cells"][idx] = ca;
        b["cells"][idx] = cb;
    }
    DiffOptions opts;
    EXPECT_FALSE(structuralDiff(a, b, opts).empty());
    opts.ignorePaths.push_back("cells.*.stats");
    EXPECT_TRUE(structuralDiff(a, b, opts).empty());
    // The wildcard spans exactly one segment: a deeper difference
    // outside stats still reports.
    b["cells"]["0"]["ipc"] = 2.0;
    EXPECT_FALSE(structuralDiff(a, b, opts).empty());
}

} // namespace
} // namespace bh
