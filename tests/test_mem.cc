/**
 * @file
 * Tests for the memory controller: queueing, FR-FCFS behavior, refresh
 * cadence, victim refreshes, mitigation blocking, and quota enforcement.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mem/mem_system.hh"

namespace bh
{
namespace
{

/** Scripted mitigation used to probe the controller hooks. */
class ScriptedMitigation : public Mitigation
{
  public:
    std::string name() const override { return "Scripted"; }

    bool
    isActSafe(unsigned bank, RowId row, ThreadId, Cycle) override
    {
        auto key = (static_cast<std::uint64_t>(bank) << 32) | row;
        return blockedRows.count(key) == 0;
    }

    void
    onActivate(unsigned bank, RowId row, ThreadId, Cycle) override
    {
        activations.push_back({bank, row});
    }

    void
    onAutoRefresh(RowId, unsigned, Cycle) override
    {
        ++refreshCount;
    }

    int
    quota(ThreadId thread, unsigned) const override
    {
        auto it = quotas.find(thread);
        return it == quotas.end() ? -1 : it->second;
    }

    Cycle
    nextVerdictChangeAt(Cycle now) const override
    {
        // Tests mutate blockedRows from outside the simulation, so a
        // verdict may flip at any cycle: the controller must not cache
        // idle-tick analyses across even a single cycle.
        return now + 1;
    }

    void
    blockRow(unsigned bank, RowId row)
    {
        blockedRows.insert((static_cast<std::uint64_t>(bank) << 32) | row);
    }

    std::set<std::uint64_t> blockedRows;
    std::map<ThreadId, int> quotas;
    std::vector<std::pair<unsigned, RowId>> activations;
    unsigned refreshCount = 0;
};

/** Harness wiring a MemSystem with the scripted mechanism. */
class MemTest : public ::testing::Test
{
  protected:
    MemTest()
    {
        MemSystemConfig cfg;
        cfg.enableEnergy = false;
        cfg.enableHammerObserver = false;
        auto mit = std::make_unique<ScriptedMitigation>();
        mitig = mit.get();
        mem = std::make_unique<MemSystem>(cfg, std::move(mit));
    }

    /** Submit a read to (bank, row, col); returns completion flag. */
    std::shared_ptr<Cycle>
    read(unsigned bank, RowId row, unsigned col = 0, ThreadId thread = 0)
    {
        DramCoord c;
        const DramOrg &org = mem->mapper().organization();
        c.rank = bank / org.banksPerRank();
        unsigned in_rank = bank % org.banksPerRank();
        c.bankGroup = in_rank / org.banksPerGroup;
        c.bank = in_rank % org.banksPerGroup;
        c.row = row;
        c.col = col;
        Request req;
        req.addr = mem->mapper().encode(c);
        req.type = ReqType::kRead;
        req.thread = thread;
        req.arrival = now;
        auto done = std::make_shared<Cycle>(-1);
        req.onComplete = [done](Cycle c2) { *done = c2; };
        lastResult = mem->submit(std::move(req));
        return done;
    }

    void
    runFor(Cycle cycles)
    {
        for (Cycle end = now + cycles; now < end; ++now)
            mem->tick(now);
    }

    std::unique_ptr<MemSystem> mem;
    ScriptedMitigation *mitig = nullptr;
    SubmitResult lastResult = SubmitResult::kAccepted;
    Cycle now = 0;
};

TEST_F(MemTest, ReadCompletesWithActLatency)
{
    auto done = read(0, 100);
    EXPECT_EQ(lastResult, SubmitResult::kAccepted);
    runFor(200);
    const auto &t = mem->device().timings();
    ASSERT_GE(*done, 0);
    // ACT at ~0, RD at tRCD, data at +tCL+tBL.
    EXPECT_NEAR(static_cast<double>(*done),
                static_cast<double>(t.tRCD + t.tCL + t.tBL), 8.0);
}

TEST_F(MemTest, RowHitFasterThanConflict)
{
    auto first = read(0, 100);
    runFor(200);
    Cycle hit_start = now;
    auto hit = read(0, 100, 5);
    runFor(200);
    Cycle hit_latency = *hit - hit_start;

    Cycle conf_start = now;
    auto conf = read(0, 200);
    runFor(400);
    Cycle conf_latency = *conf - conf_start;
    EXPECT_LT(hit_latency, conf_latency);
    EXPECT_GE(*first, 0);
    EXPECT_EQ(mem->controller().rowHits(), 1u);
    EXPECT_EQ(mem->controller().rowConflicts(), 1u);
    EXPECT_EQ(mem->controller().rowMisses(), 1u);
}

TEST_F(MemTest, FrFcfsPrefersRowHit)
{
    // Open row 100 in bank 0, then enqueue an older conflict (row 200)
    // and a younger hit (row 100). The hit's column command should issue
    // while the conflict waits for tRAS.
    auto warm = read(0, 100);
    runFor(200);
    auto conflict = read(0, 200);
    auto hit = read(0, 100, 9);
    runFor(400);
    EXPECT_GE(*warm, 0);
    EXPECT_LT(*hit, *conflict);
}

TEST_F(MemTest, QueueFullRejects)
{
    for (unsigned i = 0; i < 64; ++i) {
        read(0, 1000 + i);
        EXPECT_EQ(lastResult, SubmitResult::kAccepted) << i;
    }
    read(0, 5000);
    EXPECT_EQ(lastResult, SubmitResult::kQueueFull);
}

TEST_F(MemTest, QuotaRejectsAtLimit)
{
    mitig->quotas[0] = 2;
    read(0, 100, 0, 0);
    EXPECT_EQ(lastResult, SubmitResult::kAccepted);
    read(0, 101, 0, 0);
    EXPECT_EQ(lastResult, SubmitResult::kAccepted);
    read(0, 102, 0, 0);
    EXPECT_EQ(lastResult, SubmitResult::kQuotaExceeded);
    // Another thread is unaffected.
    read(0, 103, 0, 1);
    EXPECT_EQ(lastResult, SubmitResult::kAccepted);
    // A different bank of the same thread is unaffected.
    read(1, 104, 0, 0);
    EXPECT_EQ(lastResult, SubmitResult::kAccepted);
    EXPECT_EQ(mem->quotaRejects(), 1u);
}

TEST_F(MemTest, QuotaZeroBlocksEverything)
{
    mitig->quotas[3] = 0;
    read(0, 100, 0, 3);
    EXPECT_EQ(lastResult, SubmitResult::kQuotaExceeded);
}

TEST_F(MemTest, BlockedActIsDeferredUntilUnblocked)
{
    mitig->blockRow(0, 100);
    auto done = read(0, 100);
    runFor(500);
    EXPECT_EQ(*done, -1);   // still blocked
    EXPECT_GT(mem->controller().blockedActQueries(), 0u);
    mitig->blockedRows.clear();
    runFor(300);
    EXPECT_GE(*done, 0);
}

TEST_F(MemTest, BlockedRowDoesNotStallOtherRequests)
{
    mitig->blockRow(0, 100);
    auto blocked = read(0, 100);
    auto free1 = read(0, 200);      // same bank, younger, safe
    auto free2 = read(1, 300);      // other bank
    runFor(600);
    EXPECT_EQ(*blocked, -1);
    EXPECT_GE(*free1, 0);
    EXPECT_GE(*free2, 0);
}

TEST_F(MemTest, MitigationSeesDemandActivations)
{
    read(0, 100);
    read(1, 200);
    runFor(300);
    ASSERT_EQ(mitig->activations.size(), 2u);
    EXPECT_EQ(mitig->activations[0].second, 100u);
    EXPECT_EQ(mitig->activations[1].second, 200u);
}

TEST_F(MemTest, RefreshHappensEveryTrefi)
{
    const auto &t = mem->device().timings();
    runFor(t.tREFI * 4 + 100);
    EXPECT_NEAR(static_cast<double>(mem->controller().refreshes()), 4.0, 1.0);
    EXPECT_EQ(mitig->refreshCount, mem->controller().refreshes());
}

TEST_F(MemTest, VictimRefreshOccupiesBank)
{
    mem->controller().scheduleVictimRefresh(0, 500);
    EXPECT_EQ(mem->controller().pendingVictimRefreshes(), 1u);
    runFor(200);
    EXPECT_EQ(mem->controller().pendingVictimRefreshes(), 0u);
    EXPECT_EQ(mem->controller().victimRefreshesDone(), 1u);
}

TEST_F(MemTest, VictimRefreshPrioritizedOverDemand)
{
    // Victim refresh to bank 0 scheduled before a demand read arrives:
    // the demand ACT must wait for the refresh ACT+PRE cycle.
    mem->controller().scheduleVictimRefresh(0, 500);
    auto done = read(0, 100);
    runFor(400);
    EXPECT_GE(*done, 0);
    EXPECT_EQ(mem->controller().victimRefreshesDone(), 1u);
    const auto &t = mem->device().timings();
    // Demand completion must come after a full refresh tRAS+tRP at least.
    EXPECT_GT(*done, t.tRAS + t.tRP);
}

TEST_F(MemTest, WritesAreServedWhenReadsIdle)
{
    DramCoord c;
    c.row = 42;
    Request req;
    req.addr = mem->mapper().encode(c);
    req.type = ReqType::kWrite;
    req.thread = 0;
    ASSERT_EQ(mem->submit(std::move(req)), SubmitResult::kAccepted);
    runFor(300);
    EXPECT_EQ(mem->controller().writeQueueDepth(), 0u);
    EXPECT_EQ(mem->controller().device().stats.counter("dram.wr"), 1u);
}

TEST_F(MemTest, InflightTracksAcceptedReads)
{
    read(0, 100, 0, 2);
    read(0, 101, 0, 2);
    EXPECT_EQ(mem->controller().inflight(2, 0), 2);
    runFor(500);
    EXPECT_EQ(mem->controller().inflight(2, 0), 0);
}

TEST_F(MemTest, PerThreadStatsAttributed)
{
    read(0, 100, 0, 1);
    runFor(200);
    read(0, 100, 3, 1);     // row hit for thread 1
    runFor(200);
    const auto &ts = mem->controller().threadStats(1);
    EXPECT_EQ(ts.reads, 2u);
    EXPECT_EQ(ts.rowHits, 1u);
    EXPECT_EQ(ts.rowMisses, 1u);
    EXPECT_EQ(ts.activates, 1u);
}

TEST_F(MemTest, ThreadStatsConstForUnknownThreads)
{
    // Out-of-range and negative thread ids return the shared empty stats
    // without growing any internal table; inflight() is bounds-checked
    // the same way.
    const MemController &mc = mem->controller();
    EXPECT_EQ(mc.threadStats(1234).reads, 0u);
    EXPECT_EQ(mc.threadStats(-1).reads, 0u);
    EXPECT_EQ(mc.inflight(1234, 0), 0);
    EXPECT_EQ(mc.inflight(-1, 0), 0);

    // A real request still lands in the right slot afterwards.
    read(0, 100, 0, 2);
    EXPECT_EQ(mc.threadStats(2).reads, 1u);
    EXPECT_EQ(mc.threadStats(1234).reads, 0u);
    EXPECT_EQ(mc.inflight(2, 0), 1);
}

TEST_F(MemTest, SyncStatsPublishesCounters)
{
    read(0, 100);
    runFor(200);
    mem->controller().syncStats();
    EXPECT_EQ(mem->controller().stats.counter("mc.reads"), 1u);
    EXPECT_EQ(mem->controller().stats.counter("mc.act_demand"), 1u);
}

} // namespace
} // namespace bh
