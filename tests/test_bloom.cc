/**
 * @file
 * Tests for the Bloom filter stack: H3 hashing, counting Bloom filter
 * properties (the no-false-negative guarantee BlockHammer's security rests
 * on), and the time-interleaved dual CBF.
 */

#include <gtest/gtest.h>

#include <map>

#include "bloom/counting_bloom.hh"
#include "bloom/dual_cbf.hh"
#include "common/rng.hh"

namespace bh
{
namespace
{

TEST(H3Hash, DeterministicForKey)
{
    H3Hash h(10, 7);
    EXPECT_EQ(h.hash(12345), h.hash(12345));
}

TEST(H3Hash, OutputWithinRange)
{
    H3Hash h(10, 3);
    Rng rng(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(h.hash(rng.next()), 1024u);
}

TEST(H3Hash, ReseedChangesMapping)
{
    H3Hash h(12, 5);
    std::vector<std::uint32_t> before;
    for (std::uint64_t k = 1; k <= 64; ++k)
        before.push_back(h.hash(k));
    h.reseed(999);
    int same = 0;
    for (std::uint64_t k = 1; k <= 64; ++k)
        same += (h.hash(k) == before[k - 1]);
    EXPECT_LT(same, 8);
}

TEST(H3Hash, ZeroKeyHashesToZero)
{
    // H3 is linear over GF(2): h(0) = 0 by construction.
    H3Hash h(10, 11);
    EXPECT_EQ(h.hash(0), 0u);
}

TEST(H3Hash, Linearity)
{
    // H3's defining property: h(a ^ b) == h(a) ^ h(b).
    H3Hash h(16, 77);
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        std::uint64_t a = rng.next(), b = rng.next();
        EXPECT_EQ(h.hash(a ^ b), h.hash(a) ^ h.hash(b));
    }
}

TEST(H3Hash, SpreadsUniformly)
{
    H3Hash h(8, 13);
    std::map<std::uint32_t, int> buckets;
    for (std::uint64_t k = 0; k < 25600; ++k)
        ++buckets[h.hash(k * 0x9e3779b97f4a7c15ull + 1)];
    for (const auto &[idx, count] : buckets)
        EXPECT_LT(count, 400) << "bucket " << idx;
}

CbfConfig
smallCbf(unsigned counters = 256, std::uint32_t max = 4096)
{
    CbfConfig cfg;
    cfg.numCounters = counters;
    cfg.numHashes = 4;
    cfg.counterMax = max;
    return cfg;
}

TEST(CountingBloom, CountNeverUnderestimates)
{
    // The property BlockHammer's safety depends on: for any insertion
    // pattern, count(k) >= true insertion count of k.
    CountingBloomFilter cbf(smallCbf(), 42);
    Rng rng(3);
    std::map<std::uint64_t, std::uint32_t> truth;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t key = rng.below(600);
        cbf.insert(key);
        ++truth[key];
    }
    for (const auto &[key, count] : truth)
        EXPECT_GE(cbf.count(key), count) << "key " << key;
}

TEST(CountingBloom, ExactWhenSparse)
{
    CountingBloomFilter cbf(smallCbf(4096), 1);
    for (int i = 0; i < 10; ++i)
        cbf.insert(7);
    EXPECT_EQ(cbf.count(7), 10u);
}

TEST(CountingBloom, TestAtLeastMatchesCount)
{
    CountingBloomFilter cbf(smallCbf(), 5);
    for (int i = 0; i < 20; ++i)
        cbf.insert(1);
    EXPECT_TRUE(cbf.testAtLeast(1, 20));
    EXPECT_FALSE(cbf.testAtLeast(1, cbf.count(1) + 1));
}

TEST(CountingBloom, SaturatesAtCounterMax)
{
    CountingBloomFilter cbf(smallCbf(256, 100), 9);
    for (int i = 0; i < 500; ++i)
        cbf.insert(3);
    EXPECT_EQ(cbf.count(3), 100u);
}

TEST(CountingBloom, ClearZeroesAndReseeds)
{
    CountingBloomFilter cbf(smallCbf(), 11);
    for (int i = 0; i < 50; ++i)
        cbf.insert(i);
    EXPECT_GT(cbf.occupancy(), 0.0);
    cbf.clearAndReseed(999);
    EXPECT_EQ(cbf.occupancy(), 0.0);
    EXPECT_EQ(cbf.count(1), 0u);
    EXPECT_EQ(cbf.insertions(), 0u);
}

TEST(CountingBloom, InsertionsCounted)
{
    CountingBloomFilter cbf(smallCbf(), 1);
    for (int i = 0; i < 33; ++i)
        cbf.insert(i);
    EXPECT_EQ(cbf.insertions(), 33u);
}

/** Parameterized no-false-negative sweep across filter geometries. */
class CbfPropertyTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CbfPropertyTest, NoFalseNegativesUnderLoad)
{
    auto [counters, distinct_keys] = GetParam();
    CbfConfig cfg;
    cfg.numCounters = counters;
    cfg.numHashes = 4;
    cfg.counterMax = 1 << 20;
    CountingBloomFilter cbf(cfg, counters * 7 + distinct_keys);
    Rng rng(counters);
    std::map<std::uint64_t, std::uint32_t> truth;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t key = rng.below(distinct_keys);
        cbf.insert(key);
        ++truth[key];
    }
    for (const auto &[key, count] : truth)
        ASSERT_GE(cbf.count(key), count);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CbfPropertyTest,
    ::testing::Combine(::testing::Values(64u, 256u, 1024u, 8192u),
                       ::testing::Values(32u, 512u, 4096u)));

TEST(DualCbf, InsertVisibleImmediately)
{
    DualCbf d(smallCbf(), 1000, 1);
    for (int i = 0; i < 5; ++i)
        d.insert(77);
    EXPECT_GE(d.activeCount(77), 5u);
}

TEST(DualCbf, EpochLengthIsHalfLifetime)
{
    DualCbf d(smallCbf(), 1000, 1);
    EXPECT_EQ(d.epochLength(), 500);
}

TEST(DualCbf, BlacklistPersistsAcrossOneSwap)
{
    // Figure 3: a row that exceeded N_BL in epoch k is still blacklisted
    // in epoch k+1 because the newly-active filter kept accumulating.
    DualCbf d(smallCbf(), 1000, 1);
    for (int i = 0; i < 100; ++i)
        d.insert(5);
    EXPECT_TRUE(d.isBlacklisted(5, 100));
    EXPECT_TRUE(d.clockTick(500));      // epoch boundary
    EXPECT_TRUE(d.isBlacklisted(5, 100));
}

TEST(DualCbf, BlacklistExpiresAfterTwoQuietEpochs)
{
    DualCbf d(smallCbf(), 1000, 1);
    for (int i = 0; i < 100; ++i)
        d.insert(5);
    d.clockTick(500);
    d.clockTick(1000);
    // Both filters have been cleared since the insertions stopped.
    EXPECT_FALSE(d.isBlacklisted(5, 100));
    EXPECT_EQ(d.activeCount(5), 0u);
}

TEST(DualCbf, ClockTickReportsBoundaries)
{
    DualCbf d(smallCbf(), 1000, 1);
    EXPECT_FALSE(d.clockTick(0));
    EXPECT_FALSE(d.clockTick(499));
    EXPECT_TRUE(d.clockTick(500));
    EXPECT_FALSE(d.clockTick(501));
    EXPECT_TRUE(d.clockTick(1000));
}

TEST(DualCbf, CatchesUpSkippedEpochs)
{
    DualCbf d(smallCbf(), 1000, 1);
    for (int i = 0; i < 50; ++i)
        d.insert(9);
    EXPECT_TRUE(d.clockTick(5000));     // many epochs at once
    EXPECT_EQ(d.activeCount(9), 0u);
    EXPECT_EQ(d.epochIndex(), 10u);
}

TEST(DualCbf, RollingWindowNeverMissesHotRow)
{
    // Property: a key inserted >= threshold times within any single epoch
    // is blacklisted at the end of that epoch, regardless of alignment.
    DualCbf d(smallCbf(1024), 2000, 3);
    Cycle now = 0;
    for (int epoch = 0; epoch < 6; ++epoch) {
        for (int i = 0; i < 200; ++i) {
            d.clockTick(now);
            d.insert(123);
            now += 5;   // 200 inserts spread across the 1000-cycle epoch
        }
        d.clockTick(now);
        EXPECT_TRUE(d.isBlacklisted(123, 200))
            << "epoch " << epoch << " now " << now;
    }
}

TEST(DualCbf, ReseedingChangesAliases)
{
    // After a clear, the reseeded filter should alias the victim key with
    // a different set of rows (Section 3.1.1's repeated-false-positive
    // countermeasure). Statistically: a key colliding with a hot key
    // before the swap should usually stop colliding after two swaps.
    CbfConfig cfg = smallCbf(64);
    int collisions_before = 0, collisions_after = 0;
    for (std::uint64_t trial = 0; trial < 20; ++trial) {
        DualCbf d(cfg, 1000, trial);
        for (int i = 0; i < 50; ++i)
            d.insert(1000 + trial);
        // Find a colliding cold key.
        std::uint64_t cold = 0;
        for (std::uint64_t k = 1; k < 64; ++k) {
            if (d.activeCount(k) >= 50) {
                cold = k;
                break;
            }
        }
        if (cold == 0)
            continue;
        ++collisions_before;
        d.clockTick(500);
        d.clockTick(1000);
        for (int i = 0; i < 50; ++i)
            d.insert(1000 + trial);
        collisions_after += (d.activeCount(cold) >= 50);
    }
    if (collisions_before > 0) {
        EXPECT_LT(collisions_after, collisions_before);
    }
}

} // namespace
} // namespace bh
