/**
 * @file
 * Tests for the post-paper mitigation zoo: ABACuS shared-counter
 * semantics, DAPPER's budgeted preventive-refresh drain, the
 * BreakHammer throttler composition (including the byte-identity of
 * BreakHammer+Baseline with plain Baseline), and the thread-quota
 * admission gate's accounting (a rejected submit must never leak an
 * in-flight quota slot).
 */

#include <gtest/gtest.h>

#include <map>

#include "bench/bench_util.hh"
#include "mem/controller.hh"
#include "mem/mem_system.hh"
#include "mitigations/abacus.hh"
#include "mitigations/breakhammer.hh"
#include "mitigations/dapper.hh"
#include "mitigations/factory.hh"
#include "sim/experiment.hh"
#include "workloads/attack_patterns.hh"

namespace bh
{
namespace
{

/** Records victim refreshes that mechanisms schedule. */
class RecordingController
{
  public:
    RecordingController()
        : timings(DramTimings::ddr4()),
          dev(DramOrg::paperConfig(), timings), nullMitig(),
          ctrl(dev, ControllerConfig{}, nullMitig, nullptr, nullptr)
    {
    }

    DramTimings timings;
    DramDevice dev;
    NullMitigation nullMitig;
    MemController ctrl;
};

MitigationSettings
tinySettings(std::uint32_t n_rh = 1024)
{
    MitigationSettings s;
    s.nRH = n_rh;
    s.blastRadius = 1;
    s.timings = DramTimings::ddr4();
    s.banks = 16;
    s.rowsPerBank = 65536;
    s.threads = 8;
    s.seed = 7;
    return s;
}

// --- ABACuS ------------------------------------------------------------

TEST(Abacus, SavSharesOneCounterAcrossBanks)
{
    RecordingController rc;
    Abacus ab(tinySettings());
    ab.setController(&rc.ctrl);
    // First activation in each of four banks only accumulates SAV bits.
    for (unsigned bank = 0; bank < 4; ++bank)
        ab.onActivate(bank, 500, 0, bank);
    EXPECT_EQ(ab.rac(500), 0u);
    EXPECT_EQ(ab.sav(500), 0xFull);
    // Re-activating a bank whose SAV bit is already set starts a new
    // round: RAC bumps, SAV collapses to that bank alone.
    ab.onActivate(2, 500, 0, 10);
    EXPECT_EQ(ab.rac(500), 1u);
    EXPECT_EQ(ab.sav(500), 1ull << 2);
}

TEST(Abacus, RacTracksMaxPerBankCount)
{
    RecordingController rc;
    Abacus ab(tinySettings());
    ab.setController(&rc.ctrl);
    // Hammering one bank alone is the worst case the RAC must track:
    // every activation after the first re-sets its own SAV bit.
    for (int i = 0; i < 10; ++i)
        ab.onActivate(0, 700, 0, i);
    EXPECT_EQ(ab.rac(700), 9u);
}

TEST(Abacus, TriggerRefreshesNeighborsInEveryBank)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(8);     // thT = 8/2/2 = 2
    Abacus ab(s);
    ab.setController(&rc.ctrl);
    ASSERT_EQ(ab.threshold(), 2u);
    // RAC reaches 2 on the third same-bank activation.
    for (int i = 0; i < 3; ++i)
        ab.onActivate(0, 1000, 0, i);
    EXPECT_EQ(ab.triggerEvents(), 1u);
    // The shared counter cannot name the attacked bank, so the fan-out
    // covers all banks: 2 * blastRadius victims in each.
    EXPECT_EQ(ab.refreshesIssued(), 2ull * s.blastRadius * s.banks);
    EXPECT_GT(rc.ctrl.pendingVictimRefreshes(), 0u);
}

TEST(Abacus, TriggerRepeatsEveryThresholdMultiple)
{
    RecordingController rc;
    Abacus ab(tinySettings(8));
    ab.setController(&rc.ctrl);
    for (int i = 0; i < 9; ++i)     // RAC reaches 8 -> 4 multiples of 2
        ab.onActivate(0, 1000, 0, i);
    EXPECT_EQ(ab.triggerEvents(), 4u);
}

TEST(Abacus, WindowResetClearsTable)
{
    RecordingController rc;
    Abacus ab(tinySettings());
    ab.setController(&rc.ctrl);
    for (int i = 0; i < 5; ++i)
        ab.onActivate(0, 900, 0, i);
    EXPECT_GT(ab.rac(900), 0u);
    Cycle refw = DramTimings::ddr4().tREFW;
    EXPECT_EQ(ab.nextHousekeepingAt(0), refw);
    ab.tick(refw);
    EXPECT_EQ(ab.rac(900), 0u);
    EXPECT_EQ(ab.sav(900), 0u);
    // The reset boundary advances a full window.
    EXPECT_EQ(ab.nextHousekeepingAt(refw), 2 * refw);
}

TEST(Abacus, SpilloverDisplacesColdestRow)
{
    RecordingController rc;
    Abacus ab(tinySettings());
    ab.setController(&rc.ctrl);
    // Fill the shared table with distinct once-activated rows (RAC 0).
    for (unsigned i = 0; i < ab.tableSize(); ++i)
        ab.onActivate(0, 10000 + i, 0, i);
    EXPECT_EQ(ab.rac(10000), 0u);
    EXPECT_EQ(ab.sav(10000), 1ull);
    // A miss on the full table displaces the minimum-RAC entry with the
    // lowest row address (deterministic tie-break) and installs the new
    // row at spillover + 1.
    ab.onActivate(3, 99, 0, 777);
    EXPECT_EQ(ab.sav(10000), 0u);   // coldest (lowest) row displaced
    EXPECT_EQ(ab.rac(99), 2u);
    EXPECT_EQ(ab.sav(99), 1ull << 3);
}

// --- DAPPER ------------------------------------------------------------

TEST(Dapper, TriggersAreDeferredUntilDrainGrid)
{
    RecordingController rc;
    Dapper dp(tinySettings(8));     // thT = 8/2/4 = 1: every hit triggers
    dp.setController(&rc.ctrl);
    ASSERT_EQ(dp.threshold(), 1u);
    for (int i = 0; i < 4; ++i)
        dp.onActivate(0, 1000, 0, i);
    // Three hits after the insert -> three owed triggers, zero refreshes
    // issued yet: preventive work waits for the budget grid.
    EXPECT_EQ(dp.triggerEvents(), 3u);
    EXPECT_EQ(dp.pendingTriggers(), 3u);
    EXPECT_EQ(dp.refreshesIssued(), 0u);
    EXPECT_EQ(rc.ctrl.pendingVictimRefreshes(), 0u);
    // With a backlog, the next housekeeping boundary is the drain grid.
    EXPECT_EQ(dp.nextHousekeepingAt(0), dp.drainInterval());
    dp.tick(dp.drainInterval());
    EXPECT_EQ(dp.pendingTriggers(), 0u);
    EXPECT_EQ(dp.refreshesIssued(), 3u * 2u);   // 2 victims per trigger
    EXPECT_GT(rc.ctrl.pendingVictimRefreshes(), 0u);
}

TEST(Dapper, DrainBudgetIsBoundedPerInterval)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(8);
    Dapper dp(s);
    dp.setController(&rc.ctrl);
    ASSERT_EQ(dp.drainBatch(), s.banks / 4);
    // Queue ten triggers across banks (insert + hits at thT = 1).
    for (unsigned bank = 0; bank < 10; ++bank) {
        dp.onActivate(bank, 2000, 0, bank);
        dp.onActivate(bank, 2000, 0, bank + 100);
    }
    ASSERT_EQ(dp.pendingTriggers(), 10u);
    // Each grid step serves at most one batch, regardless of backlog.
    dp.tick(dp.drainInterval());
    EXPECT_EQ(dp.pendingTriggers(), 10u - dp.drainBatch());
    dp.tick(2 * dp.drainInterval());
    EXPECT_EQ(dp.pendingTriggers(), 10u - 2u * dp.drainBatch());
    // Deferral was observed: later triggers found a backlog.
    EXPECT_GT(dp.deferredTriggers(), 0u);
}

TEST(Dapper, IdleGridCatchUpMatchesStepByStep)
{
    // Jumping the clock far ahead with an empty queue just catches the
    // grid up — the state a cycle-stepped run reaches is identical,
    // which is what lets the event-skipping runner bypass idle spans.
    RecordingController rc;
    Dapper dp(tinySettings(8));
    dp.setController(&rc.ctrl);
    dp.tick(10 * dp.drainInterval());
    dp.onActivate(0, 3000, 0, 0);
    dp.onActivate(0, 3000, 0, 1);
    ASSERT_EQ(dp.pendingTriggers(), 1u);
    // The next grid point after the jump is 11 intervals in.
    EXPECT_EQ(dp.nextHousekeepingAt(10 * dp.drainInterval()),
              11 * dp.drainInterval());
    dp.tick(11 * dp.drainInterval());
    EXPECT_EQ(dp.pendingTriggers(), 0u);
}

// --- BreakHammer composition -------------------------------------------

TEST(BreakHammer, NamesAndForwardsBase)
{
    MitigationSettings s = tinySettings();
    auto mech = makeMitigation("BreakHammer+Graphene", s);
    auto *bkh = dynamic_cast<BreakHammer *>(mech.get());
    ASSERT_NE(bkh, nullptr);
    EXPECT_EQ(mech->name(), "BreakHammer+Graphene");
    EXPECT_EQ(bkh->baseMechanism().name(), "Graphene");
    // Observation-only before any blame: every thread unlimited.
    for (ThreadId t = 0; t < 8; ++t)
        EXPECT_EQ(mech->threadQuota(t), -1);
}

TEST(BreakHammer, BlamesThreadWhoseActivationsTrigger)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(8);
    auto mech = makeMitigation("BreakHammer+Graphene", s);
    auto *bkh = dynamic_cast<BreakHammer *>(mech.get());
    ASSERT_NE(bkh, nullptr);
    mech->setController(&rc.ctrl);
    // Thread 2 hammers one row hard enough for Graphene to trigger
    // preventive refreshes from inside onActivate.
    for (int i = 0; i < 400; ++i)
        mech->onActivate(0, 4000, 2, i);
    EXPECT_GT(bkh->totalBlamed(), 0u);
    EXPECT_GT(bkh->score(2), 0.0);
    EXPECT_GT(bkh->blamedTriggers(2), 0u);
    // Only the hammering thread is throttled.
    EXPECT_LT(mech->threadQuota(2), 4);
    EXPECT_EQ(mech->threadQuota(0), -1);
    EXPECT_DOUBLE_EQ(bkh->score(0), 0.0);
}

TEST(BreakHammer, SaturatedScoreStarvesThread)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(8);
    // Shrink the refresh window so the blame normalizer (half a bank's
    // worst-case trigger rate, ~W / 2T) is reachable in a unit test.
    s.timings.tREFW = s.timings.tRC * 256;
    auto mech = makeMitigation("BreakHammer+Graphene", s);
    auto *bkh = dynamic_cast<BreakHammer *>(mech.get());
    ASSERT_NE(bkh, nullptr);
    mech->setController(&rc.ctrl);
    // Hammer until blame saturates; the score caps near 2, and the
    // thread-quota ladder hits zero at score >= 1.
    for (int i = 0; i < 200000 && bkh->score(5) < 1.0; ++i)
        mech->onActivate(0, 5000, 5, i);
    ASSERT_GE(bkh->score(5), 1.0);
    EXPECT_EQ(mech->threadQuota(5), 0);
    EXPECT_LE(bkh->score(5), 2.5);  // saturating counters bound the score
}

TEST(BreakHammer, EpochSwapForgetsStaleBlame)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(8);
    auto mech = makeMitigation("BreakHammer+Graphene", s);
    auto *bkh = dynamic_cast<BreakHammer *>(mech.get());
    ASSERT_NE(bkh, nullptr);
    mech->setController(&rc.ctrl);
    for (int i = 0; i < 400; ++i)
        mech->onActivate(0, 6000, 1, i);
    ASSERT_GT(bkh->score(1), 0.0);
    // Two epoch boundaries (a full tREFW) clear both counter sides for
    // a thread that stopped hammering: the suspect verdict expires.
    mech->tick(s.timings.tREFW);
    EXPECT_DOUBLE_EQ(bkh->score(1), 0.0);
    EXPECT_EQ(mech->threadQuota(1), -1);
}

TEST(BreakHammer, InertWrapperPublishesNoStats)
{
    MitigationSettings s = tinySettings();
    auto mech = makeMitigation("BreakHammer+Baseline", s);
    mech->syncStats();
    // Never-blamed wrapper over a stat-less base: the report bytes a
    // run emits must be indistinguishable from the base alone.
    EXPECT_TRUE(mech->stats.counters().empty());
    EXPECT_TRUE(mech->stats.scalars().empty());
}

// --- run-level identity and security behavior --------------------------

RunResult
runSecurity(const std::string &mechanism, const std::string &pattern)
{
    BenchContext ctx;
    ctx.scale = 0.1;
    ExperimentConfig cfg = securityConfig(ctx, mechanism, 1);
    return runExperiment(cfg, securityMix(attackPatternApp(pattern),
                                          "zoo-" + pattern));
}

TEST(ZooRuns, BreakHammerOverBaselineIsByteIdenticalToBaseline)
{
    RunResult base = runSecurity("Baseline", "double-sided");
    RunResult wrapped = runSecurity("BreakHammer+Baseline", "double-sided");
    // The wrapper never blames under a stat-less base that schedules no
    // preventive refreshes, so the whole simulation — timing, energy,
    // security verdict, and the serialized stats — is identical.
    ASSERT_EQ(wrapped.ipc.size(), base.ipc.size());
    for (std::size_t i = 0; i < base.ipc.size(); ++i)
        EXPECT_DOUBLE_EQ(wrapped.ipc[i], base.ipc[i]) << i;
    EXPECT_DOUBLE_EQ(wrapped.energyJ, base.energyJ);
    EXPECT_EQ(wrapped.bitFlips, base.bitFlips);
    EXPECT_EQ(wrapped.demandActs, base.demandActs);
    EXPECT_EQ(wrapped.blockedActs, base.blockedActs);
    EXPECT_EQ(wrapped.victimRefreshes, base.victimRefreshes);
    EXPECT_DOUBLE_EQ(wrapped.secMargin, base.secMargin);
    EXPECT_EQ(wrapped.secMaxWindowActs, base.secMaxWindowActs);
    EXPECT_EQ(wrapped.stats.dump(2), base.stats.dump(2));
}

TEST(ZooRuns, DapperBoundsRefreshBandwidthUnderPerformanceAttack)
{
    // bankpar-4 hammers a distinct multi-sided site in every bank at
    // once — the pattern shape that forces the most simultaneous
    // trigger events, i.e. a performance attack on the mitigation
    // itself. DAPPER must absorb it through the FIFO (deferrals), not
    // by unbounded preventive-refresh bursts.
    RunResult res = runSecurity("DAPPER", "bankpar-4");
    const Json *lane = res.stats.find("ch0");
    ASSERT_NE(lane, nullptr);
    const Json *mitig = lane->find("mitigation");
    ASSERT_NE(mitig, nullptr);
    const Json *counters = mitig->find("counters");
    ASSERT_NE(counters, nullptr);
    auto stat = [&](const char *key) {
        const Json *v = counters->find(key);
        return v == nullptr ? 0 : v->asInt();
    };
    EXPECT_GT(stat("dapper.triggers"), 0);
    // Served refreshes never exceed the owed fan-out (2 victims per
    // trigger at blastRadius 1): the budget defers, it never invents.
    EXPECT_LE(stat("dapper.victim_refreshes"), 2 * stat("dapper.triggers"));
    EXPECT_EQ(stat("dapper.victim_refreshes") +
                  2 * stat("dapper.pending_at_end"),
              2 * stat("dapper.triggers"));
    // The bank-parallel burst overruns the per-interval batch: real
    // deferral happened.
    EXPECT_GT(stat("dapper.deferred"), 0);
}

TEST(ZooRuns, AbacusRefreshesVictimsUnderAttack)
{
    RunResult res = runSecurity("ABACuS", "double-sided");
    EXPECT_GT(res.victimRefreshes, 0u);
    const Json *lane = res.stats.find("ch0");
    ASSERT_NE(lane, nullptr);
    const Json *mitig = lane->find("mitigation");
    ASSERT_NE(mitig, nullptr);
    const Json *counters = mitig->find("counters");
    ASSERT_NE(counters, nullptr);
    const Json *triggers = counters->find("abacus.triggers");
    ASSERT_NE(triggers, nullptr);
    EXPECT_GT(triggers->asInt(), 0);
}

// --- thread-quota admission gate ---------------------------------------

/** Stub with a scriptable channel-wide thread quota. */
class ThreadQuotaMitigation : public Mitigation
{
  public:
    std::string name() const override { return "ThreadQuotaStub"; }
    void onActivate(unsigned, RowId, ThreadId, Cycle) override {}

    int
    threadQuota(ThreadId thread) const override
    {
        auto it = quotas.find(thread);
        return it == quotas.end() ? -1 : it->second;
    }

    std::map<ThreadId, int> quotas;
};

class ThreadQuotaTest : public ::testing::Test
{
  protected:
    ThreadQuotaTest()
    {
        MemSystemConfig cfg;
        cfg.enableEnergy = false;
        cfg.enableHammerObserver = false;
        auto mit = std::make_unique<ThreadQuotaMitigation>();
        mitig = mit.get();
        mem = std::make_unique<MemSystem>(cfg, std::move(mit));
    }

    SubmitResult
    read(unsigned bank, RowId row, ThreadId thread)
    {
        DramCoord c;
        const DramOrg &org = mem->mapper().organization();
        c.rank = bank / org.banksPerRank();
        unsigned in_rank = bank % org.banksPerRank();
        c.bankGroup = in_rank / org.banksPerGroup;
        c.bank = in_rank % org.banksPerGroup;
        c.row = row;
        c.col = 0;
        Request req;
        req.addr = mem->mapper().encode(c);
        req.type = ReqType::kRead;
        req.thread = thread;
        req.arrival = now;
        return mem->submit(std::move(req));
    }

    void
    runFor(Cycle cycles)
    {
        for (Cycle end = now + cycles; now < end; ++now)
            mem->tick(now);
    }

    std::unique_ptr<MemSystem> mem;
    ThreadQuotaMitigation *mitig = nullptr;
    Cycle now = 0;
};

TEST_F(ThreadQuotaTest, RejectsAtChannelWideLimit)
{
    mitig->quotas[0] = 2;
    EXPECT_EQ(read(0, 100, 0), SubmitResult::kAccepted);
    // Unlike the per-bank quota(), the thread quota spans banks.
    EXPECT_EQ(read(1, 101, 0), SubmitResult::kAccepted);
    EXPECT_EQ(read(2, 102, 0), SubmitResult::kQuotaExceeded);
    // Other threads are unaffected.
    EXPECT_EQ(read(2, 103, 1), SubmitResult::kAccepted);
    EXPECT_EQ(mem->quotaRejects(), 1u);
}

TEST_F(ThreadQuotaTest, ZeroQuotaStarvesThread)
{
    mitig->quotas[3] = 0;
    EXPECT_EQ(read(0, 100, 3), SubmitResult::kQuotaExceeded);
    EXPECT_EQ(read(0, 100, 2), SubmitResult::kAccepted);
}

TEST_F(ThreadQuotaTest, ServiceReleasesSlots)
{
    mitig->quotas[0] = 2;
    EXPECT_EQ(read(0, 100, 0), SubmitResult::kAccepted);
    EXPECT_EQ(read(0, 101, 0), SubmitResult::kAccepted);
    EXPECT_EQ(read(0, 102, 0), SubmitResult::kQuotaExceeded);
    runFor(2000);
    EXPECT_EQ(mem->controller().inflightThread(0), 0);
    EXPECT_EQ(read(0, 103, 0), SubmitResult::kAccepted);
}

TEST_F(ThreadQuotaTest, RejectionsNeverLeakQuotaSlots)
{
    // Regression: in-flight accounting must move only on a successful
    // enqueue. A submit rejected *after* the quota check passes (queue
    // full) — or rejected by the quota itself — must leave the
    // thread's slot count untouched, or rejected requests would
    // permanently eat the quota and wedge the thread.
    // Quota rejections bump no in-flight count.
    mitig->quotas[7] = 0;
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(read(1, 6000 + i, 7), SubmitResult::kQuotaExceeded);
    EXPECT_EQ(mem->controller().inflightThread(7), 0);
    mitig->quotas[0] = 1000;    // throttled, but above queue capacity
    int accepted = 0;
    while (read(0, 1000 + accepted, 0) == SubmitResult::kAccepted)
        ++accepted;
    ASSERT_GT(accepted, 0);
    EXPECT_EQ(mem->controller().inflightThread(0), accepted);
    // Hammer the full queue with doomed submits: every one returns
    // kQueueFull (the pre-gate fires before the quota checks) and none
    // of them may bump the in-flight count.
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(read(0, 5000 + i, 0), SubmitResult::kQueueFull);
    EXPECT_EQ(mem->controller().inflightThread(0), accepted);
    // Draining the queue returns every slot: the thread is not wedged.
    runFor(200000);
    EXPECT_EQ(mem->controller().inflightThread(0), 0);
    EXPECT_EQ(read(0, 9000, 0), SubmitResult::kAccepted);
}

} // namespace
} // namespace bh
