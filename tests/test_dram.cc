/**
 * @file
 * Unit tests for the DRAM device model: timing conversion, bank state
 * machine legality, rank-level constraints (tRRD/tFAW/turnaround), and
 * refresh behavior.
 */

#include <gtest/gtest.h>

#include "dram/device.hh"
#include "dram/timing.hh"

namespace bh
{
namespace
{

DramTimings
paperTimings()
{
    return DramTimings::ddr4();
}

TEST(Timing, PaperValuesConvert)
{
    DramTimings t = paperTimings();
    EXPECT_EQ(t.tRC, nsToCycles(46.25));
    EXPECT_EQ(t.tFAW, nsToCycles(35.0));
    EXPECT_EQ(t.tREFW, nsToCycles(64e6));
    EXPECT_EQ(t.tREFI, nsToCycles(7812.5));
    EXPECT_GT(t.tRAS, 0);
    EXPECT_GT(t.tRP, 0);
    // tRC should be at least tRAS + tRP-ish.
    EXPECT_GE(t.tRC, t.tRAS);
}

TEST(Timing, Lpddr4HalvesRefreshWindow)
{
    DramTimings d = DramTimings::ddr4();
    DramTimings l = DramTimings::lpddr4();
    EXPECT_EQ(l.tREFW * 2, d.tREFW);
}

TEST(Org, PaperGeometry)
{
    DramOrg org = DramOrg::paperConfig();
    EXPECT_EQ(org.banksPerRank(), 16u);
    EXPECT_EQ(org.banksPerChannel(), 16u);
    EXPECT_EQ(org.rowsPerBank, 65536u);
    EXPECT_EQ(org.totalBytes(), 8ull << 30);
}

TEST(Bank, ActThenReadRespectsTrcd)
{
    DramTimings t = paperTimings();
    Bank b(t);
    EXPECT_FALSE(b.isOpen());
    b.issue(DramCommand::kAct, 7, 100);
    EXPECT_TRUE(b.isOpen());
    EXPECT_EQ(b.openRow(), 7u);
    EXPECT_EQ(b.earliest(DramCommand::kRd), 100 + t.tRCD);
    EXPECT_EQ(b.earliest(DramCommand::kWr), 100 + t.tRCD);
}

TEST(Bank, ActToActIsTrc)
{
    DramTimings t = paperTimings();
    Bank b(t);
    b.issue(DramCommand::kAct, 1, 0);
    EXPECT_EQ(b.earliest(DramCommand::kAct), t.tRC);
}

TEST(Bank, ActToPreIsTras)
{
    DramTimings t = paperTimings();
    Bank b(t);
    b.issue(DramCommand::kAct, 1, 50);
    EXPECT_EQ(b.earliest(DramCommand::kPre), 50 + t.tRAS);
}

TEST(Bank, PreToActIsTrp)
{
    DramTimings t = paperTimings();
    Bank b(t);
    b.issue(DramCommand::kAct, 1, 0);
    Cycle pre_time = b.earliest(DramCommand::kPre);
    b.issue(DramCommand::kPre, 0, pre_time);
    EXPECT_FALSE(b.isOpen());
    EXPECT_GE(b.earliest(DramCommand::kAct), pre_time + t.tRP);
}

TEST(Bank, ReadExtendsPrecharge)
{
    DramTimings t = paperTimings();
    Bank b(t);
    b.issue(DramCommand::kAct, 1, 0);
    Cycle rd_time = b.earliest(DramCommand::kRd);
    b.issue(DramCommand::kRd, 1, rd_time);
    EXPECT_GE(b.earliest(DramCommand::kPre), rd_time + t.tRTP);
}

TEST(Bank, WriteRecoveryBeforePrecharge)
{
    DramTimings t = paperTimings();
    Bank b(t);
    b.issue(DramCommand::kAct, 1, 0);
    Cycle wr_time = b.earliest(DramCommand::kWr);
    b.issue(DramCommand::kWr, 1, wr_time);
    EXPECT_GE(b.earliest(DramCommand::kPre),
              wr_time + t.tCWL + t.tBL + t.tWR);
}

TEST(BankDeath, ActToOpenBankPanics)
{
    DramTimings t = paperTimings();
    Bank b(t);
    b.issue(DramCommand::kAct, 1, 0);
    EXPECT_DEATH(b.issue(DramCommand::kAct, 2, t.tRC * 2), "ACT to open");
}

TEST(BankDeath, ReadWrongRowPanics)
{
    DramTimings t = paperTimings();
    Bank b(t);
    b.issue(DramCommand::kAct, 1, 0);
    EXPECT_DEATH(b.issue(DramCommand::kRd, 2, t.tRCD + 10), "wrong");
}

class DeviceTest : public ::testing::Test
{
  protected:
    DeviceTest()
        : timings(paperTimings()),
          dev(DramOrg::paperConfig(), timings)
    {
    }

    DramTimings timings;
    DramDevice dev;
};

TEST_F(DeviceTest, TrrdBetweenBanks)
{
    dev.issue(DramCommand::kAct, 0, 1, 0);
    EXPECT_GE(dev.earliest(DramCommand::kAct, 1), timings.tRRD);
}

TEST_F(DeviceTest, TfawLimitsBurstOfActs)
{
    // Four ACTs as fast as tRRD allows; the fifth must wait for tFAW.
    Cycle now = 0;
    for (unsigned i = 0; i < 4; ++i) {
        now = std::max(now, dev.earliest(DramCommand::kAct, i));
        dev.issue(DramCommand::kAct, i, 1, now);
    }
    EXPECT_GE(dev.earliest(DramCommand::kAct, 4), timings.tFAW);
}

TEST_F(DeviceTest, TimingViolationPanics)
{
    dev.issue(DramCommand::kAct, 0, 1, 0);
    EXPECT_DEATH(dev.issue(DramCommand::kAct, 1, 1, 1), "timing violation");
}

TEST_F(DeviceTest, ReadToWriteTurnaround)
{
    dev.issue(DramCommand::kAct, 0, 1, 0);
    Cycle rd = dev.earliest(DramCommand::kRd, 0);
    dev.issue(DramCommand::kRd, 0, 1, rd);
    EXPECT_GT(dev.earliest(DramCommand::kWr, 0), rd);
}

TEST_F(DeviceTest, WriteToReadTurnaround)
{
    dev.issue(DramCommand::kAct, 0, 1, 0);
    Cycle wr = dev.earliest(DramCommand::kWr, 0);
    dev.issue(DramCommand::kWr, 0, 1, wr);
    EXPECT_GE(dev.earliest(DramCommand::kRd, 0),
              wr + timings.tCWL + timings.tBL + timings.tWTR);
}

TEST_F(DeviceTest, RefreshRequiresAllBanksClosed)
{
    dev.issue(DramCommand::kAct, 3, 1, 0);
    EXPECT_EQ(dev.earliestRefresh(), -1);
    EXPECT_TRUE(dev.anyBankOpen());
}

TEST_F(DeviceTest, RefreshBlocksActivationsForTrfc)
{
    Cycle e = dev.earliestRefresh();
    ASSERT_GE(e, 0);
    dev.issueRefresh(e);
    EXPECT_GE(dev.earliest(DramCommand::kAct, 0), e + timings.tRFC);
}

TEST_F(DeviceTest, RefreshSweepsRowsInOrder)
{
    unsigned per_ref = dev.rowsPerRefresh();
    EXPECT_GT(per_ref, 0u);
    auto r1 = dev.issueRefresh(dev.earliestRefresh());
    EXPECT_EQ(r1.firstRow, 0u);
    EXPECT_EQ(r1.numRows, per_ref);
    Cycle next = dev.earliest(DramCommand::kAct, 0);
    auto r2 = dev.issueRefresh(next);
    EXPECT_EQ(r2.firstRow, per_ref);
}

TEST_F(DeviceTest, RowsPerRefreshCoversBankPerWindow)
{
    // rowsPerRefresh * (tREFW / tREFI) must cover all rows.
    auto refs_per_window = timings.tREFW / timings.tREFI;
    EXPECT_GE(dev.rowsPerRefresh() * refs_per_window,
              DramOrg::paperConfig().rowsPerBank);
}

TEST_F(DeviceTest, ListenerSeesCommands)
{
    int acts = 0;
    dev.addListener([&](DramCommand cmd, unsigned, RowId, Cycle) {
        if (cmd == DramCommand::kAct)
            ++acts;
    });
    dev.issue(DramCommand::kAct, 0, 5, 0);
    EXPECT_EQ(acts, 1);
}

TEST_F(DeviceTest, OpenBankCountTracksState)
{
    EXPECT_EQ(dev.openBankCount(), 0u);
    dev.issue(DramCommand::kAct, 0, 1, 0);
    dev.issue(DramCommand::kAct, 1, 1, timings.tRRD);
    EXPECT_EQ(dev.openBankCount(), 2u);
    Cycle pre = dev.earliest(DramCommand::kPre, 0);
    dev.issue(DramCommand::kPre, 0, 0, pre);
    EXPECT_EQ(dev.openBankCount(), 1u);
}

TEST_F(DeviceTest, StatsCountCommands)
{
    dev.issue(DramCommand::kAct, 0, 1, 0);
    Cycle rd = dev.earliest(DramCommand::kRd, 0);
    dev.issue(DramCommand::kRd, 0, 1, rd);
    EXPECT_EQ(dev.stats.counter("dram.act"), 1u);
    EXPECT_EQ(dev.stats.counter("dram.rd"), 1u);
}

TEST_F(DeviceTest, BusBusyCyclesAccumulate)
{
    dev.issue(DramCommand::kAct, 0, 1, 0);
    Cycle rd = dev.earliest(DramCommand::kRd, 0);
    dev.issue(DramCommand::kRd, 0, 1, rd);
    EXPECT_EQ(dev.busBusyCycles(),
              static_cast<std::uint64_t>(timings.tBL));
}

} // namespace
} // namespace bh
