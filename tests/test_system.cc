/**
 * @file
 * Integration tests: full-system runs combining cores, LLC, controller,
 * and mitigation mechanisms. Verifies the end-to-end security guarantee
 * (no bit-flips under every mechanism, flips on the unprotected baseline)
 * and the performance metrics pipeline.
 */

#include <gtest/gtest.h>

#include "blockhammer/blockhammer.hh"
#include "sim/experiment.hh"

namespace bh
{
namespace
{

/** Compressed configuration that keeps each run under ~1 s. */
ExperimentConfig
fastConfig(const std::string &mechanism)
{
    ExperimentConfig cfg;
    cfg.mechanism = mechanism;
    cfg.threads = 4;
    cfg.nRH = 512;
    cfg.refwMs = 0.25;
    cfg.warmupCycles = 100'000;
    cfg.runCycles = 700'000;
    cfg.attack.numBanks = 4;
    return cfg;
}

/** Attack-dominated mix: light benign neighbors give the attacker room. */
MixSpec
attackMix()
{
    MixSpec mix;
    mix.name = "attack-heavy";
    mix.apps = {kAttackAppName, "444.namd", "435.gromacs", "456.hmmer"};
    return mix;
}

MixSpec
benignMix()
{
    MixSpec mix;
    mix.name = "benign";
    mix.apps = {"429.mcf", "462.libquantum", "444.namd", "473.astar"};
    return mix;
}

TEST(SystemIntegration, BenignRunMakesProgress)
{
    RunResult res = runExperiment(fastConfig("Baseline"), benignMix());
    for (double ipc : res.ipc)
        EXPECT_GT(ipc, 0.0);
    EXPECT_EQ(res.bitFlips, 0u);
    EXPECT_GT(res.demandActs, 0u);
    EXPECT_GT(res.energyJ, 0.0);
}

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    RunResult a = runExperiment(fastConfig("BlockHammer"), attackMix());
    RunResult b = runExperiment(fastConfig("BlockHammer"), attackMix());
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_DOUBLE_EQ(a.ipc[i], b.ipc[i]);
    EXPECT_EQ(a.demandActs, b.demandActs);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
}

TEST(SystemIntegration, UnprotectedBaselineSuffersBitFlips)
{
    RunResult res = runExperiment(fastConfig("Baseline"), attackMix());
    EXPECT_GT(res.bitFlips, 0u);
    EXPECT_GT(res.maxRowActs, 512u);
}

/**
 * The security guarantee, once per mechanism. The paper's Table 6
 * distinguishes deterministic mechanisms (CBT, TWiCe, Graphene,
 * BlockHammer: zero failure probability) from probabilistic ones (PARA,
 * PRoHIT, MRLoc: small but non-zero failure probability) — the assertions
 * encode exactly that split.
 */
struct MechanismGuarantee
{
    const char *name;
    bool deterministic;
};

class MechanismSecurityTest
    : public ::testing::TestWithParam<MechanismGuarantee>
{
};

TEST_P(MechanismSecurityTest, PreventsBitFlips)
{
    RunResult base = runExperiment(fastConfig("Baseline"), attackMix());
    RunResult res = runExperiment(fastConfig(GetParam().name), attackMix());
    if (GetParam().deterministic) {
        EXPECT_EQ(res.bitFlips, 0u) << GetParam().name;
    } else {
        // Probabilistic: rare failures possible at compressed thresholds,
        // but the mechanism must eliminate nearly all baseline flips.
        ASSERT_GT(base.bitFlips, 2u);
        EXPECT_LE(res.bitFlips, 2u) << GetParam().name;
        EXPECT_LT(res.bitFlips, base.bitFlips / 2) << GetParam().name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, MechanismSecurityTest,
    ::testing::Values(MechanismGuarantee{"PARA", false},
                      MechanismGuarantee{"PRoHIT", false},
                      MechanismGuarantee{"MRLoc", false},
                      MechanismGuarantee{"CBT", true},
                      MechanismGuarantee{"TWiCe", true},
                      MechanismGuarantee{"Graphene", true},
                      MechanismGuarantee{"BlockHammer", true}),
    [](const auto &info) {
        std::string n = info.param.name;
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(SystemIntegration, BlockHammerCapsRowActivationRate)
{
    ExperimentConfig cfg = fastConfig("BlockHammer");
    RunResult res = runExperiment(cfg, attackMix());
    // RowBlocker's bound: no row may collect N_RH* activations within a
    // window; N_RH* = N_RH / 2 for the double-sided model.
    EXPECT_LE(res.maxRowActs, cfg.nRH / 2);
    EXPECT_GT(res.blockedActs, 0u);
}

TEST(SystemIntegration, BlockHammerImprovesBenignIpcUnderAttack)
{
    RunResult base = runExperiment(fastConfig("Baseline"), attackMix());
    RunResult bh = runExperiment(fastConfig("BlockHammer"), attackMix());
    double base_sum = 0, bh_sum = 0;
    for (std::size_t t = 0; t < base.ipc.size(); ++t) {
        if (!base.isAttack[t]) {
            base_sum += base.ipc[t];
            bh_sum += bh.ipc[t];
        }
    }
    EXPECT_GT(bh_sum, base_sum);
}

TEST(SystemIntegration, BlockHammerNearZeroOverheadWithoutAttack)
{
    RunResult base = runExperiment(fastConfig("Baseline"), benignMix());
    RunResult bh = runExperiment(fastConfig("BlockHammer"), benignMix());
    for (std::size_t t = 0; t < base.ipc.size(); ++t)
        EXPECT_NEAR(bh.ipc[t], base.ipc[t], 0.02 * base.ipc[t] + 1e-3);
    EXPECT_EQ(bh.blockedActs, 0u);      // no benign row gets blacklisted
}

TEST(SystemIntegration, ObserveOnlyDoesNotInterfere)
{
    RunResult base = runExperiment(fastConfig("Baseline"), attackMix());
    RunResult obs = runExperiment(fastConfig("BlockHammer-Observe"),
                                  attackMix());
    // Observe-only never blocks: activity matches the baseline closely.
    EXPECT_EQ(obs.blockedActs, 0u);
    EXPECT_NEAR(static_cast<double>(obs.demandActs),
                static_cast<double>(base.demandActs),
                0.02 * static_cast<double>(base.demandActs));
}

TEST(SystemIntegration, RhliSeparatesAttackerFromBenign)
{
    ExperimentConfig cfg = fastConfig("BlockHammer-Observe");
    MixSpec mix = attackMix();
    auto system = buildSystem(cfg, mix);
    system->run(cfg.warmupCycles + cfg.runCycles);
    auto *bh = dynamic_cast<BlockHammer *>(&system->mem().mitigation());
    ASSERT_NE(bh, nullptr);
    // Section 3.2.1: attacks show RHLI >> benign threads' ~0.
    EXPECT_GT(bh->maxRhli(0), 1.0);     // slot 0 is the attacker
    for (ThreadId t = 1; t < 4; ++t)
        EXPECT_LT(bh->maxRhli(t), 0.05) << "thread " << t;
}

TEST(SystemIntegration, FullModeSuppressesAttackRhli)
{
    ExperimentConfig cfg = fastConfig("BlockHammer");
    MixSpec mix = attackMix();
    auto system = buildSystem(cfg, mix);
    system->run(cfg.warmupCycles + cfg.runCycles);
    auto *bh = dynamic_cast<BlockHammer *>(&system->mem().mitigation());
    ASSERT_NE(bh, nullptr);
    // Section 3.2.1: full-functional mode reduces the attack's RHLI
    // below 1 (throttling caps blacklisted activations).
    EXPECT_LE(bh->maxRhli(0), 1.0);
    EXPECT_GT(system->mem().quotaRejects(), 0u);
}

TEST(SystemIntegration, ReactiveMechanismsIssueVictimRefreshes)
{
    for (const char *mech : {"PARA", "TWiCe", "Graphene"}) {
        RunResult res = runExperiment(fastConfig(mech), attackMix());
        EXPECT_GT(res.victimRefreshes, 0u) << mech;
    }
}

TEST(SystemIntegration, AloneIpcIsCachedAndPositive)
{
    ExperimentConfig cfg = fastConfig("Baseline");
    double a = aloneIpc(cfg, "444.namd");
    double b = aloneIpc(cfg, "444.namd");
    EXPECT_GT(a, 0.0);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(SystemIntegration, MetricsAgainstAloneExcludeAttacker)
{
    ExperimentConfig cfg = fastConfig("BlockHammer");
    MixSpec mix = attackMix();
    RunResult res = runExperiment(cfg, mix);
    MultiProgMetrics m = metricsAgainstAlone(cfg, mix, res);
    EXPECT_GT(m.weightedSpeedup, 0.0);
    EXPECT_LE(m.weightedSpeedup, 3.0 + 1e-9);   // 3 benign threads
    EXPECT_GT(m.harmonicSpeedup, 0.0);
    EXPECT_GE(m.maxSlowdown, 1.0 - 0.05);
}

TEST(Metrics, WeightedHarmonicMaxSlowdown)
{
    std::vector<double> shared{0.5, 1.0};
    std::vector<double> alone{1.0, 1.0};
    MultiProgMetrics m = computeMetrics(shared, alone);
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 1.5);
    EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 2.0);
}

TEST(Metrics, IdenticalRunsGiveUnitMetrics)
{
    std::vector<double> v{0.7, 1.3, 2.1};
    MultiProgMetrics m = computeMetrics(v, v);
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 3.0);
    EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 1.0);
    EXPECT_DOUBLE_EQ(m.maxSlowdown, 1.0);
}

TEST(Metrics, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Metrics, BenignIpcFiltersAttackSlots)
{
    RunResult res;
    res.ipc = {0.1, 0.2, 0.3};
    res.isAttack = {false, true, false};
    auto benign = res.benignIpc();
    ASSERT_EQ(benign.size(), 2u);
    EXPECT_DOUBLE_EQ(benign[0], 0.1);
    EXPECT_DOUBLE_EQ(benign[1], 0.3);
}

} // namespace
} // namespace bh
