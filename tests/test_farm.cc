/**
 * @file
 * Tests for the bh_farm fault-tolerant sweep coordinator:
 *
 *  - fsio primitives: atomic replace, exclusive create (one winner),
 *    append, quarantine naming;
 *  - FaultPlan parsing, canonicalization, and seeded deterministic
 *    expansion;
 *  - journal append/read round-trip with torn-line tolerance;
 *  - the lease protocol end to end on a FakeFarmClock (zero real
 *    sleeping): claim/commit happy path, two interleaved workers,
 *    every FaultPlan kind recovered from, stale-lease stealing with
 *    capped exponential backoff, poisoning after K failed attempts,
 *    the per-cell wall-clock watchdog, planned double execution
 *    (digest agreement), and coordinator-restart resume — with the
 *    collected cell payloads identical to an undisturbed run in every
 *    scenario.
 */

#include <gtest/gtest.h>

#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/fsio.hh"
#include "farm/farm.hh"
#include "farm/journal.hh"
#include "report/report.hh"

namespace bh
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory per test (wiped on entry, not on exit). */
std::string
scratchDir(const std::string &tag)
{
    std::string dir = testing::TempDir() + "bh_farm_" + tag;
    fs::remove_all(dir);
    return dir;
}

std::string
readAll(const std::string &path)
{
    std::string text, err;
    EXPECT_TRUE(readFile(path, text, err)) << err;
    return text;
}

TEST(Fsio, AtomicWriteReplacesWhole)
{
    std::string dir = scratchDir("fsio");
    fs::create_directories(dir);
    std::string path = dir + "/file.json";
    std::string err;
    ASSERT_TRUE(atomicWriteFile(path, "first", err)) << err;
    EXPECT_EQ(readAll(path), "first");
    ASSERT_TRUE(atomicWriteFile(path, "second, longer content", err));
    EXPECT_EQ(readAll(path), "second, longer content");
    // No temp litter left behind.
    std::size_t entries = 0;
    for (auto it = fs::directory_iterator(dir);
         it != fs::directory_iterator(); ++it)
        ++entries;
    EXPECT_EQ(entries, 1u);
    // Missing parent directory is an error, not a crash.
    EXPECT_FALSE(atomicWriteFile(dir + "/no/such/dir/x", "x", err));
    EXPECT_FALSE(err.empty());
}

TEST(Fsio, CreateExclusiveHasOneWinner)
{
    std::string dir = scratchDir("fsio_excl");
    fs::create_directories(dir);
    std::string path = dir + "/lease.json";
    std::string err1, err2;
    EXPECT_TRUE(createExclusive(path, "winner", err1)) << err1;
    EXPECT_FALSE(createExclusive(path, "loser", err2));
    EXPECT_TRUE(err2.empty()) << "lost race is not an IO error: " << err2;
    EXPECT_EQ(readAll(path), "winner");
}

TEST(Fsio, AppendLineAndQuarantine)
{
    std::string dir = scratchDir("fsio_append");
    fs::create_directories(dir);
    std::string path = dir + "/log.jsonl";
    std::string err;
    ASSERT_TRUE(appendLine(path, "one", err)) << err;
    ASSERT_TRUE(appendLine(path, "two", err)) << err;
    EXPECT_EQ(readAll(path), "one\ntwo\n");

    std::string bad = dir + "/bad.json";
    ASSERT_TRUE(atomicWriteFile(bad, "{torn", err));
    std::string moved = quarantineCorrupt(bad);
    EXPECT_EQ(moved, bad + ".corrupt");
    EXPECT_FALSE(fs::exists(bad));
    EXPECT_EQ(readAll(moved), "{torn");
    // Second quarantine of the same name picks the next free suffix.
    ASSERT_TRUE(atomicWriteFile(bad, "{torn again", err));
    EXPECT_EQ(quarantineCorrupt(bad), bad + ".corrupt2");
    // A vanished file cannot be quarantined: empty result, no throw.
    EXPECT_TRUE(quarantineCorrupt(dir + "/never_existed").empty());
}

TEST(FaultPlan, ParseAndCanonicalize)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("corrupt@5,kill@3,kill@3,stale@0", 10,
                                 plan, err)) << err;
    EXPECT_EQ(plan.serialize(), "stale@0,kill@3,corrupt@5");
    EXPECT_TRUE(plan.armed(FaultKind::kKillMidCell, 3));
    EXPECT_FALSE(plan.armed(FaultKind::kKillMidCell, 5));

    EXPECT_TRUE(FaultPlan::parse("", 10, plan, err));
    EXPECT_TRUE(plan.empty());

    EXPECT_FALSE(FaultPlan::parse("explode@1", 10, plan, err));
    EXPECT_NE(err.find("unknown fault kind"), std::string::npos);
    EXPECT_FALSE(FaultPlan::parse("kill@12", 10, plan, err));
    EXPECT_NE(err.find("outside"), std::string::npos);
    EXPECT_FALSE(FaultPlan::parse("kill", 10, plan, err));
}

TEST(FaultPlan, SeededRandomExpansionIsDeterministic)
{
    FaultPlan a, b, c;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("random:42:8", 20, a, err)) << err;
    ASSERT_TRUE(FaultPlan::parse("random:42:8", 20, b, err));
    ASSERT_TRUE(FaultPlan::parse("random:43:8", 20, c, err));
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a.serialize(), b.serialize());
    EXPECT_NE(a.serialize(), c.serialize());
    for (const auto &f : a.faults)
        EXPECT_LT(f.cell, 20u);
    EXPECT_FALSE(FaultPlan::parse("random:1:0", 20, a, err));
    EXPECT_FALSE(FaultPlan::parse("random:1:4", 0, a, err));
}

TEST(FaultPlan, ConsumeFiresExactlyOnce)
{
    std::string dir = scratchDir("faults");
    fs::create_directories(dir);
    EXPECT_TRUE(consumeFault(dir, FaultKind::kKillMidCell, 3));
    EXPECT_FALSE(consumeFault(dir, FaultKind::kKillMidCell, 3));
    EXPECT_TRUE(consumeFault(dir, FaultKind::kTruncateWrite, 3));
    EXPECT_TRUE(consumeFault(dir, FaultKind::kKillMidCell, 4));
}

TEST(Journal, RoundTripSkipsTornLines)
{
    std::string dir = scratchDir("journal");
    fs::create_directories(dir);
    std::string path = dir + "/journal.jsonl";
    JournalEvent ev;
    ev.unixTime = 123.5;
    ev.event = "claim";
    ev.cell = 7;
    ev.worker = "w0";
    ev.attempt = 2;
    ev.detail = "detail text";
    journalAppend(path, ev);
    ev.event = "done";
    ev.attempt = 0;
    ev.detail.clear();
    journalAppend(path, ev);
    // A killed writer's torn last line must not poison the reader.
    std::string err;
    ASSERT_TRUE(appendLine(path, "{\"t\": 124.0, \"ev\": \"trunc", err));

    std::size_t skipped = 0;
    auto events = journalRead(path, &skipped);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(skipped, 1u);
    EXPECT_EQ(events[0].event, "claim");
    EXPECT_EQ(events[0].cell, 7u);
    EXPECT_EQ(events[0].worker, "w0");
    EXPECT_EQ(events[0].attempt, 2u);
    EXPECT_EQ(events[0].detail, "detail text");
    EXPECT_EQ(events[1].event, "done");
    EXPECT_EQ(events[1].attempt, 0u);

    EXPECT_TRUE(journalRead(dir + "/missing.jsonl").empty());
}

// ---------------------------------------------------------------------
// Farm protocol tests. All on a FakeFarmClock; the runner is synthetic
// (deterministic payload per cell) so the suite stays fast and the
// "collected payloads identical to an undisturbed run" assertion is
// exact.

constexpr std::uint64_t kGridCells = 5;

FarmSpec
testSpec()
{
    FarmSpec spec;
    spec.experiment = "synthetic";
    spec.fingerprint = "f00ff00ff00ff00f";
    spec.cellTotal = kGridCells;
    spec.policy.maxAttempts = 3;
    spec.policy.cellBudgetS = 100.0;
    spec.policy.staleAfterS = 10.0;
    spec.policy.backoffBaseS = 0.5;
    spec.policy.backoffCapS = 4.0;
    spec.policy.watchdogSliceS = 0.001;
    return spec;
}

Json
cellPayload(std::uint64_t cell)
{
    Json payload = Json::object();
    payload["cell"] = cell;
    payload["value"] = static_cast<std::int64_t>(cell * cell + 7);
    return payload;
}

std::function<Json(std::uint64_t)>
goodRunner()
{
    return [](std::uint64_t cell) { return cellPayload(cell); };
}

/** The payloads an undisturbed farm of the test grid collects. */
Json
expectedCells()
{
    Json cells = Json::object();
    for (std::uint64_t c = 0; c < kGridCells; ++c)
        cells[std::to_string(c)] = cellPayload(c);
    return cells;
}

/**
 * Drive `farm` with one worker until it completes or `max_steps` picks
 * elapse, advancing the fake clock past any backoff/stale wait. Returns
 * the number of cells this worker committed.
 */
unsigned
driveToCompletion(Farm &farm, FakeFarmClock &clock,
                  const std::string &worker, const FaultPlan &faults,
                  const std::function<Json(std::uint64_t)> &runner,
                  unsigned max_steps = 200)
{
    unsigned committed = 0;
    for (unsigned step = 0; step < max_steps; ++step) {
        Farm::Claim claim;
        double hint = 0.0;
        Farm::Pick pick = farm.pickWork(worker, faults, claim, &hint);
        if (pick == Farm::Pick::kComplete)
            return committed;
        if (pick == Farm::Pick::kStuck)
            ADD_FAILURE() << "farm stuck (poisoned cells)";
        if (pick == Farm::Pick::kWait) {
            clock.advance(hint + 0.01);
            continue;
        }
        std::string detail;
        Farm::RunOutcome outcome =
            farm.runClaim(worker, claim, runner, faults, detail);
        if (outcome == Farm::RunOutcome::kCommitted ||
            outcome == Farm::RunOutcome::kVerifyOk)
            ++committed;
        if (outcome == Farm::RunOutcome::kKilled) {
            // Simulated SIGKILL: this "process" stops touching the farm
            // for a while; the lease it left is reaped via staleness.
            clock.advance(farm.spec().policy.cellBudgetS +
                          farm.spec().policy.staleAfterS + 1.0);
        }
    }
    ADD_FAILURE() << "farm did not complete in " << max_steps << " steps";
    return committed;
}

Json
collectedCells(Farm &farm)
{
    Json cells;
    std::string err;
    EXPECT_TRUE(farm.collectCells(cells, err)) << err;
    return cells;
}

TEST(Farm, InitOpenAndReinit)
{
    std::string dir = scratchDir("init");
    FakeFarmClock clock;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;
    EXPECT_TRUE(fs::is_directory(FarmPaths(dir).leaseDir()));

    // Idempotent re-init of the identical grid.
    EXPECT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;

    // A different grid must be refused, not silently mixed in.
    FarmSpec other = testSpec();
    other.fingerprint = "deadbeefdeadbeef";
    EXPECT_FALSE(Farm::init(dir, other, clock, err));
    EXPECT_NE(err.find("different farm"), std::string::npos);

    Farm farm;
    ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;
    EXPECT_EQ(farm.spec().fingerprint, testSpec().fingerprint);
    EXPECT_EQ(farm.spec().cellTotal, kGridCells);
    EXPECT_EQ(farm.spec().policy.maxAttempts, 3u);

    Farm missing;
    EXPECT_FALSE(Farm::open(scratchDir("init_missing"), clock, missing,
                            err));
}

TEST(Farm, SingleWorkerHappyPath)
{
    std::string dir = scratchDir("happy");
    FakeFarmClock clock;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;
    Farm farm;
    ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;

    EXPECT_EQ(driveToCompletion(farm, clock, "w0", FaultPlan(),
                                goodRunner()), kGridCells);
    EXPECT_EQ(collectedCells(farm).dump(), expectedCells().dump());

    FarmStatus st = farm.status();
    EXPECT_TRUE(st.complete);
    EXPECT_EQ(st.doneCells, kGridCells);
    EXPECT_EQ(st.activeLeases, 0u);
    EXPECT_TRUE(st.poisoned.empty());

    // The journal recorded one claim and one commit per cell.
    unsigned claims = 0, dones = 0;
    for (const auto &ev : journalRead(FarmPaths(dir).journalFile())) {
        claims += ev.event == "claim";
        dones += ev.event == "done";
    }
    EXPECT_EQ(claims, kGridCells);
    EXPECT_EQ(dones, kGridCells);
}

TEST(Farm, TwoWorkersSplitTheGridWithoutOverlap)
{
    std::string dir = scratchDir("two_workers");
    FakeFarmClock clock;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;
    Farm a, b;
    ASSERT_TRUE(Farm::open(dir, clock, a, err)) << err;
    ASSERT_TRUE(Farm::open(dir, clock, b, err)) << err;

    // Interleave picks: each claim is exclusive, so the committed-cell
    // counts partition the grid exactly.
    unsigned committed_a = 0, committed_b = 0;
    auto stepWorker = [](Farm &farm, const char *name,
                         unsigned &committed) {
        Farm::Claim claim;
        if (farm.pickWork(name, FaultPlan(), claim) !=
            Farm::Pick::kClaimed)
            return false;
        std::string detail;
        if (farm.runClaim(name, claim, goodRunner(), FaultPlan(),
                          detail) == Farm::RunOutcome::kCommitted)
            ++committed;
        return true;
    };
    for (unsigned step = 0; step < 50; ++step) {
        bool progressed = stepWorker(a, "wa", committed_a);
        progressed = stepWorker(b, "wb", committed_b) || progressed;
        if (!progressed)
            break;
    }
    EXPECT_EQ(committed_a + committed_b, kGridCells);
    EXPECT_EQ(collectedCells(a).dump(), expectedCells().dump());
}

TEST(Farm, KillFaultRecoversThroughStaleLease)
{
    std::string dir = scratchDir("fault_kill");
    FakeFarmClock clock;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;
    Farm farm;
    ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;
    FaultPlan faults;
    ASSERT_TRUE(FaultPlan::parse("kill@2", kGridCells, faults, err));

    driveToCompletion(farm, clock, "w0", faults, goodRunner());
    EXPECT_EQ(collectedCells(farm).dump(), expectedCells().dump());

    // The kill left a lease that had to be stolen: the journal shows
    // the fault, the steal, and the successful second attempt.
    bool stole = false, second_attempt = false;
    for (const auto &ev : journalRead(FarmPaths(dir).journalFile())) {
        stole |= ev.event == "steal" && ev.cell == 2;
        second_attempt |= ev.event == "done" && ev.cell == 2 &&
            ev.attempt == 2;
    }
    EXPECT_TRUE(stole);
    EXPECT_TRUE(second_attempt);
}

TEST(Farm, TruncateAndCorruptFaultsAreQuarantinedAndRerun)
{
    for (const char *spec_text : {"truncate@1", "corrupt@3"}) {
        std::string dir = scratchDir(std::string("fault_") +
                                     (spec_text[0] == 't' ? "trunc"
                                                          : "corr"));
        FakeFarmClock clock;
        std::string err;
        ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;
        Farm farm;
        ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;
        FaultPlan faults;
        ASSERT_TRUE(FaultPlan::parse(spec_text, kGridCells, faults, err));

        driveToCompletion(farm, clock, "w0", faults, goodRunner());
        EXPECT_EQ(collectedCells(farm).dump(), expectedCells().dump())
            << spec_text;

        // The mangled result was quarantined aside, not deleted.
        std::uint64_t cell = spec_text[0] == 't' ? 1 : 3;
        EXPECT_TRUE(fs::exists(FarmPaths(dir).doneFile(cell) + ".corrupt"))
            << spec_text;
        bool journaled = false;
        for (const auto &ev : journalRead(FarmPaths(dir).journalFile()))
            journaled |= ev.event == "corrupt" && ev.cell == cell;
        EXPECT_TRUE(journaled) << spec_text;
    }
}

TEST(Farm, StaleLeaseFaultIsReapedAfterTimeout)
{
    std::string dir = scratchDir("fault_stale");
    FakeFarmClock clock;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;
    Farm farm;
    ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;
    FaultPlan faults;
    ASSERT_TRUE(FaultPlan::parse("stale@0", kGridCells, faults, err));

    driveToCompletion(farm, clock, "w0", faults, goodRunner());
    EXPECT_EQ(collectedCells(farm).dump(), expectedCells().dump());
    bool abandoned = false, stolen = false;
    for (const auto &ev : journalRead(FarmPaths(dir).journalFile())) {
        abandoned |= ev.event == "fault-stale" && ev.cell == 0;
        stolen |= ev.event == "steal" && ev.cell == 0;
    }
    EXPECT_TRUE(abandoned);
    EXPECT_TRUE(stolen);
}

TEST(Farm, DoubleClaimRaceEndsInDigestAgreement)
{
    std::string dir = scratchDir("fault_dup");
    FakeFarmClock clock;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;
    Farm legit, racer;
    ASSERT_TRUE(Farm::open(dir, clock, legit, err)) << err;
    ASSERT_TRUE(Farm::open(dir, clock, racer, err)) << err;

    // The legitimate worker claims cell 0 first.
    Farm::Claim legit_claim;
    ASSERT_EQ(legit.pickWork("legit", FaultPlan(), legit_claim),
              Farm::Pick::kClaimed);
    ASSERT_EQ(legit_claim.cell, 0u);

    // The racer's dup fault hands it the same cell without a lease.
    FaultPlan faults;
    ASSERT_TRUE(FaultPlan::parse("dup@0", kGridCells, faults, err));
    Farm::Claim ghost;
    ASSERT_EQ(racer.pickWork("racer", faults, ghost),
              Farm::Pick::kClaimed);
    EXPECT_EQ(ghost.cell, 0u);
    EXPECT_TRUE(ghost.ghost);

    // Racer commits first; the legitimate commit detects the duplicate
    // and the digests agree — no flag, no rerun, lease released.
    std::string detail;
    EXPECT_EQ(racer.runClaim("racer", ghost, goodRunner(), faults,
                             detail),
              Farm::RunOutcome::kCommitted);
    EXPECT_EQ(legit.runClaim("legit", legit_claim, goodRunner(),
                             FaultPlan(), detail),
              Farm::RunOutcome::kDupAgree);
    EXPECT_FALSE(fs::exists(FarmPaths(dir).leaseFile(0, false)));

    driveToCompletion(legit, clock, "legit", FaultPlan(), goodRunner());
    EXPECT_EQ(collectedCells(legit).dump(), expectedCells().dump());
}

TEST(Farm, DuplicateCommitWithDifferentBytesResetsTheCell)
{
    std::string dir = scratchDir("dup_mismatch");
    FakeFarmClock clock;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;
    Farm legit, racer;
    ASSERT_TRUE(Farm::open(dir, clock, legit, err)) << err;
    ASSERT_TRUE(Farm::open(dir, clock, racer, err)) << err;

    Farm::Claim legit_claim;
    ASSERT_EQ(legit.pickWork("legit", FaultPlan(), legit_claim),
              Farm::Pick::kClaimed);
    FaultPlan faults;
    ASSERT_TRUE(FaultPlan::parse("dup@0", kGridCells, faults, err));
    Farm::Claim ghost;
    ASSERT_EQ(racer.pickWork("racer", faults, ghost),
              Farm::Pick::kClaimed);

    // The racer is a nondeterministic machine: its payload differs.
    auto bad_runner = [](std::uint64_t cell) {
        Json payload = cellPayload(cell);
        payload["value"] = static_cast<std::int64_t>(999);
        return payload;
    };
    std::string detail;
    EXPECT_EQ(racer.runClaim("racer", ghost, bad_runner, faults, detail),
              Farm::RunOutcome::kCommitted);
    EXPECT_EQ(legit.runClaim("legit", legit_claim, goodRunner(),
                             FaultPlan(), detail),
              Farm::RunOutcome::kDupMismatch);
    EXPECT_NE(detail.find("disagreement"), std::string::npos);
    EXPECT_TRUE(fs::exists(FarmPaths(dir).doneFile(0) + ".corrupt"));

    // The cell reruns (after backoff) and the farm still converges on
    // the correct bytes.
    driveToCompletion(legit, clock, "legit", FaultPlan(), goodRunner());
    EXPECT_EQ(collectedCells(legit).dump(), expectedCells().dump());
}

TEST(Farm, BackoffIsExponentialAndCapped)
{
    std::string dir = scratchDir("backoff");
    FakeFarmClock clock;
    FarmSpec spec = testSpec();
    spec.policy.maxAttempts = 10;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, spec, clock, err)) << err;
    Farm farm;
    ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;

    auto failing = [](std::uint64_t) -> Json {
        throw std::runtime_error("injected failure");
    };
    // base 0.5, cap 4: expected backoffs 0.5, 1, 2, 4, 4, ...
    const double expected[] = {0.5, 1.0, 2.0, 4.0, 4.0};
    for (unsigned attempt = 0; attempt < 5; ++attempt) {
        Farm::Claim claim;
        double hint = 0.0;
        // Claim specifically cell 0 by failing it repeatedly: cell 0 is
        // always the lowest claimable index once its backoff expires.
        Farm::Pick pick = farm.pickWork("w0", FaultPlan(), claim, &hint);
        ASSERT_EQ(pick, Farm::Pick::kClaimed);
        std::string detail;
        if (claim.cell != 0) {
            // Other cells complete normally; only cell 0 fails.
            farm.runClaim("w0", claim, goodRunner(), FaultPlan(), detail);
            continue;
        }
        double before = clock.nowUnix();
        EXPECT_EQ(farm.runClaim("w0", claim, failing, FaultPlan(), detail),
                  Farm::RunOutcome::kFailed);
        EXPECT_NE(detail.find("injected failure"), std::string::npos);

        // The recorded deadline follows base * 2^(n-1), capped.
        Json fail_doc;
        std::string text;
        ASSERT_TRUE(readFile(FarmPaths(dir).failFile(0), text, err));
        ASSERT_TRUE(Json::parse(text, fail_doc));
        EXPECT_EQ(static_cast<unsigned>(
                      fail_doc.find("attempts")->asInt()),
                  attempt + 1);
        EXPECT_NEAR(fail_doc.find("next_retry_unix")->asDouble(),
                    before + expected[attempt], 1e-9);

        // Until the deadline, the cell is not claimable again.
        while (farm.pickWork("w0", FaultPlan(), claim, &hint) ==
               Farm::Pick::kClaimed) {
            farm.runClaim("w0", claim, goodRunner(), FaultPlan(), detail);
        }
        clock.advance(expected[attempt] + 0.01);
    }
}

TEST(Farm, PoisonAfterMaxAttemptsAndStuckReporting)
{
    std::string dir = scratchDir("poison");
    FakeFarmClock clock;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;
    Farm farm;
    ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;

    auto runner = [](std::uint64_t cell) -> Json {
        if (cell == 3)
            throw std::runtime_error("cell 3 is cursed");
        return cellPayload(cell);
    };

    // Drive until nothing is claimable anymore; cell 3 burns through
    // its 3 attempts, everything else completes.
    for (unsigned step = 0; step < 100; ++step) {
        Farm::Claim claim;
        double hint = 0.0;
        Farm::Pick pick = farm.pickWork("w0", FaultPlan(), claim, &hint);
        if (pick == Farm::Pick::kStuck)
            break;
        ASSERT_NE(pick, Farm::Pick::kComplete)
            << "farm must not report completion with a poisoned cell";
        if (pick == Farm::Pick::kWait) {
            clock.advance(hint + 0.01);
            continue;
        }
        std::string detail;
        farm.runClaim("w0", claim, runner, FaultPlan(), detail);
    }

    EXPECT_TRUE(fs::exists(FarmPaths(dir).poisonFile(3)));
    FarmStatus st = farm.status();
    EXPECT_FALSE(st.complete);
    ASSERT_EQ(st.poisoned.size(), 1u);
    EXPECT_EQ(st.poisoned[0], 3u);
    EXPECT_EQ(st.doneCells, kGridCells - 1);

    // The poison record keeps the attempt history.
    std::string text;
    ASSERT_TRUE(readFile(FarmPaths(dir).poisonFile(3), text, err));
    Json doc;
    ASSERT_TRUE(Json::parse(text, doc));
    EXPECT_EQ(doc.find("attempts")->asInt(), 3);
    EXPECT_EQ(doc.find("reasons")->size(), 3u);

    // collectCells refuses and names the poisoned cell.
    Json cells;
    EXPECT_FALSE(farm.collectCells(cells, err));
    EXPECT_NE(err.find("poisoned: 3"), std::string::npos);
}

TEST(Farm, WatchdogFailsACellOverItsWallClockBudget)
{
    std::string dir = scratchDir("watchdog");
    FakeFarmClock clock;
    FarmSpec spec = testSpec();
    spec.policy.cellBudgetS = 5.0;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, spec, clock, err)) << err;
    Farm farm;
    ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;

    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    // The hung cell advances fake time past the budget, then blocks
    // until the test releases it (after the watchdog fired).
    auto hung = [&](std::uint64_t cell) -> Json {
        if (cell == 1) {
            clock.advance(6.0);
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [&] { return release; });
        }
        return cellPayload(cell);
    };

    Farm::Claim claim;
    for (;;) {
        ASSERT_EQ(farm.pickWork("w0", FaultPlan(), claim),
                  Farm::Pick::kClaimed);
        if (claim.cell == 1)
            break;
        std::string detail;
        farm.runClaim("w0", claim, goodRunner(), FaultPlan(), detail);
    }
    std::string detail;
    EXPECT_EQ(farm.runClaim("w0", claim, hung, FaultPlan(), detail),
              Farm::RunOutcome::kWatchdog);
    EXPECT_NE(detail.find("watchdog"), std::string::npos);
    EXPECT_TRUE(fs::exists(FarmPaths(dir).failFile(1)));

    // Unblock and join the stray runner thread (the CLI would _Exit
    // instead); then the cell retries and the farm completes.
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    ASSERT_TRUE(farm.strayThread().joinable());
    farm.strayThread().join();

    driveToCompletion(farm, clock, "w0", FaultPlan(), goodRunner());
    EXPECT_EQ(collectedCells(farm).dump(), expectedCells().dump());
}

TEST(Farm, PlannedDoubleExecutionVerifiesDigests)
{
    std::string dir = scratchDir("verify");
    FakeFarmClock clock;
    FarmSpec spec = testSpec();
    spec.policy.verifyEvery = 1;    // verify every cell
    std::string err;
    ASSERT_TRUE(Farm::init(dir, spec, clock, err)) << err;
    Farm farm;
    ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;

    for (std::uint64_t c = 0; c < kGridCells; ++c)
        EXPECT_TRUE(farm.verifySelected(c));

    driveToCompletion(farm, clock, "w0", FaultPlan(), goodRunner());
    FarmStatus st = farm.status();
    EXPECT_TRUE(st.complete);
    EXPECT_EQ(st.verifiedCells, kGridCells);
    EXPECT_EQ(collectedCells(farm).dump(), expectedCells().dump());

    unsigned verify_ok = 0;
    for (const auto &ev : journalRead(FarmPaths(dir).journalFile()))
        verify_ok += ev.event == "verify-ok";
    EXPECT_EQ(verify_ok, kGridCells);
}

TEST(Farm, VerifyMismatchQuarantinesAndReruns)
{
    std::string dir = scratchDir("verify_mismatch");
    FakeFarmClock clock;
    FarmSpec spec = testSpec();
    spec.policy.verifyEvery = 1;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, spec, clock, err)) << err;
    Farm farm;
    ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;

    // First execution of cell 2 returns wrong (but internally
    // consistent) bytes — a silently corrupting host. The committed
    // record passes the digest check; only re-execution can catch it.
    bool first = true;
    auto flaky = [&](std::uint64_t cell) -> Json {
        if (cell == 2 && first) {
            first = false;
            Json payload = cellPayload(cell);
            payload["value"] = static_cast<std::int64_t>(-1);
            return payload;
        }
        return cellPayload(cell);
    };

    driveToCompletion(farm, clock, "w0", FaultPlan(), flaky);
    EXPECT_EQ(collectedCells(farm).dump(), expectedCells().dump());

    bool mismatch = false;
    for (const auto &ev : journalRead(FarmPaths(dir).journalFile()))
        mismatch |= ev.event == "verify-mismatch" && ev.cell == 2;
    EXPECT_TRUE(mismatch);
    EXPECT_TRUE(fs::exists(FarmPaths(dir).doneFile(2) + ".corrupt"));
}

TEST(Farm, CoordinatorRestartResumesFromDisk)
{
    std::string dir = scratchDir("restart");
    FakeFarmClock clock;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;

    // First "process": commit two cells, then vanish (object dropped,
    // one lease left claimed-but-unrun).
    {
        Farm farm;
        ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;
        for (int i = 0; i < 2; ++i) {
            Farm::Claim claim;
            ASSERT_EQ(farm.pickWork("w_dead", FaultPlan(), claim),
                      Farm::Pick::kClaimed);
            std::string detail;
            ASSERT_EQ(farm.runClaim("w_dead", claim, goodRunner(),
                                    FaultPlan(), detail),
                      Farm::RunOutcome::kCommitted);
        }
        Farm::Claim abandoned;
        ASSERT_EQ(farm.pickWork("w_dead", FaultPlan(), abandoned),
                  Farm::Pick::kClaimed);
        // ... SIGKILL here: the lease file stays behind.
    }

    // Restarted coordinator: same directory, fresh handle. The dead
    // worker's lease is reaped once stale, and the grid completes.
    Farm farm;
    ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;
    FarmStatus st = farm.status("w_new");
    EXPECT_EQ(st.doneCells, 2u);
    EXPECT_FALSE(st.complete);

    clock.advance(testSpec().policy.staleAfterS + 1.0);
    driveToCompletion(farm, clock, "w_new", FaultPlan(), goodRunner());
    EXPECT_EQ(collectedCells(farm).dump(), expectedCells().dump());
}

TEST(Farm, RandomFaultPlanStillConvergesByteIdentical)
{
    // The headline robustness property, fuzz-style: a seeded random
    // fault plan (several kinds, deterministic from the seed) must not
    // change the collected payloads by a single byte.
    for (unsigned seed : {7u, 11u}) {
        std::string dir = scratchDir("random_" + std::to_string(seed));
        FakeFarmClock clock;
        std::string err;
        ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;
        Farm farm;
        ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;
        FaultPlan faults;
        ASSERT_TRUE(FaultPlan::parse("random:" + std::to_string(seed) +
                                         ":6",
                                     kGridCells, faults, err)) << err;

        driveToCompletion(farm, clock, "w0", faults, goodRunner(), 400);
        EXPECT_EQ(collectedCells(farm).dump(), expectedCells().dump())
            << "seed " << seed << " plan " << faults.serialize();
    }
}

TEST(Farm, StatusCountsLeasesBackoffAndPending)
{
    std::string dir = scratchDir("status");
    FakeFarmClock clock;
    std::string err;
    ASSERT_TRUE(Farm::init(dir, testSpec(), clock, err)) << err;
    Farm farm;
    ASSERT_TRUE(Farm::open(dir, clock, farm, err)) << err;

    // One committed, one actively leased, one failed-and-backing-off.
    Farm::Claim claim;
    ASSERT_EQ(farm.pickWork("w0", FaultPlan(), claim),
              Farm::Pick::kClaimed);
    std::string detail;
    farm.runClaim("w0", claim, goodRunner(), FaultPlan(), detail);
    ASSERT_EQ(farm.pickWork("w0", FaultPlan(), claim),
              Farm::Pick::kClaimed);
    farm.heartbeat("w0");   // keep the open lease fresh
    Farm other;
    ASSERT_TRUE(Farm::open(dir, clock, other, err)) << err;
    Farm::Claim failing_claim;
    ASSERT_EQ(other.pickWork("w1", FaultPlan(), failing_claim),
              Farm::Pick::kClaimed);
    auto failing = [](std::uint64_t) -> Json {
        throw std::runtime_error("fail");
    };
    other.runClaim("w1", failing_claim, failing, FaultPlan(), detail);

    FarmStatus st = farm.status();
    EXPECT_EQ(st.cellTotal, kGridCells);
    EXPECT_EQ(st.doneCells, 1u);
    EXPECT_EQ(st.activeLeases, 1u);
    EXPECT_EQ(st.backoffCells, 1u);
    EXPECT_EQ(st.pendingCells, kGridCells - 3);
    EXPECT_FALSE(st.complete);
}

} // namespace
} // namespace bh
