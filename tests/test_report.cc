/**
 * @file
 * Tests for the sharded-run aggregation subsystem:
 *
 *  - shard partition: every global cell index is owned by exactly one
 *    shard for any shard count;
 *  - run manifests round-trip through serialization and validate;
 *  - merging k shards of a cell experiment and replaying its
 *    aggregation reproduces the unsharded report byte for byte;
 *  - a corrupted (hand-edited) cell fails the merge with a conflict
 *    naming the cell, as do overlapping cells that disagree, missing
 *    shards, and mismatched grids;
 *  - complete (cell-free) shard outputs pass through with a
 *    determinism cross-check;
 *  - the structural diff honors absolute/relative tolerance and
 *    ignored subtrees.
 */

#include <gtest/gtest.h>

#include "bench/registry.hh"
#include "report/report.hh"
#include "sim/runner.hh"

namespace bh
{
namespace
{

TEST(Shard, EveryCellOwnedExactlyOnce)
{
    for (unsigned count : {1u, 2u, 3u, 7u, 16u}) {
        for (std::uint64_t cell = 0; cell < 200; ++cell) {
            unsigned owners = 0;
            for (unsigned i = 0; i < count; ++i)
                owners += shardOwns(ShardSpec{i, count}, cell);
            EXPECT_EQ(owners, 1u) << "cell " << cell << " of " << count;
        }
    }
}

/** Run one experiment in the given mode/shard, stdout suppressed. */
Json
runMode(const char *name, double scale, BenchContext::CellMode mode,
        ShardSpec shard = {}, const Json *replay = nullptr)
{
    const BenchInfo *info = findBench(name);
    EXPECT_NE(info, nullptr) << name;
    Runner pool(2);
    BenchContext ctx;
    ctx.scale = scale;
    ctx.runner = &pool;
    ctx.mode = mode;
    ctx.shard = shard;
    ctx.replayCells = replay;
    testing::internal::CaptureStdout();
    runBench(*info, ctx);
    testing::internal::GetCapturedStdout();
    return ctx.result;
}

/** Serialize a result and load it back as a report (exercise parsing). */
LoadedReport
asReport(const Json &doc, const std::string &label)
{
    LoadedReport report;
    std::string err;
    EXPECT_TRUE(loadReportText(doc.dump(2) + "\n", label, report, err))
        << err;
    return report;
}

TEST(Manifest, StampedAndRoundTrips)
{
    Json doc = runMode("sec321", 0.1, BenchContext::CellMode::Run);
    LoadedReport report = asReport(doc, "unsharded");
    const RunManifest &m = report.manifest;
    EXPECT_EQ(m.experiment, "sec321");
    EXPECT_EQ(m.scale, 0.1);
    EXPECT_EQ(m.shardIndex, 0u);
    EXPECT_EQ(m.shardCount, 1u);
    EXPECT_FALSE(m.partial);
    EXPECT_EQ(m.cellTotal, 2u);     // 1 mix x {observe, full} at 0.1x
    EXPECT_EQ(m.cellsRun, 2u);
    EXPECT_EQ(m.phases.size(), 2u);
    EXPECT_EQ(m.phases[0].label, "observe");
    EXPECT_EQ(m.phases[1].label, "full");
    EXPECT_EQ(m.phaseOf(0), "observe");
    EXPECT_EQ(m.phaseOf(1), "full");
    EXPECT_EQ(m.fingerprint.size(), 16u);
}

TEST(Manifest, EnumerateCountsWithoutSimulating)
{
    const BenchInfo *info = findBench("fig5");
    ASSERT_NE(info, nullptr);
    BenchContext ctx;
    ctx.scale = 1.0;
    ctx.mode = BenchContext::CellMode::Enumerate;
    Runner pool(1);
    ctx.runner = &pool;
    runBench(*info, ctx);
    // 3 mixes x (1 baseline + the comparison set) x 2 scenarios at
    // scale 1 — derived, so the count tracks the factory's zoo.
    EXPECT_EQ(ctx.nextCell,
              2 * 3 * (1 + comparisonMechanisms().size()));
    EXPECT_EQ(ctx.cellsRun, 0u);
    EXPECT_EQ(ctx.phases.size(), 2u);
}

TEST(Merge, ThreeShardsReplayByteIdenticalToUnsharded)
{
    const double scale = 0.1;
    Json unsharded = runMode("sec321", scale, BenchContext::CellMode::Run);

    std::vector<LoadedReport> shards;
    for (unsigned i = 0; i < 3; ++i) {
        Json doc = runMode("sec321", scale, BenchContext::CellMode::Run,
                           ShardSpec{i, 3});
        const Json *partial = doc.find("manifest")->find("partial");
        ASSERT_NE(partial, nullptr);
        EXPECT_TRUE(partial->asBool());
        // Sharded partial outputs must not contain aggregate fields.
        EXPECT_EQ(doc.find("observe_only"), nullptr);
        shards.push_back(asReport(doc, "shard" + std::to_string(i)));
    }

    MergeResult merge;
    std::string err;
    ASSERT_TRUE(mergeReports(shards, merge, err)) << err;
    ASSERT_TRUE(merge.needsReplay);

    Json replayed = runMode("sec321", scale, BenchContext::CellMode::Replay,
                            ShardSpec{}, &merge.cells);
    EXPECT_EQ(replayed.dump(2), unsharded.dump(2));
}

TEST(Merge, DuplicateShardsAreDeduplicatedDeterministically)
{
    const double scale = 0.1;
    // The same shard run "on two machines" plus the rest of the grid.
    std::vector<LoadedReport> shards;
    for (unsigned i : {0u, 0u, 1u, 2u}) {
        Json doc = runMode("sec321", scale, BenchContext::CellMode::Run,
                           ShardSpec{i, 3});
        shards.push_back(asReport(doc, "dup" + std::to_string(i)));
    }
    MergeResult merge;
    std::string err;
    EXPECT_TRUE(mergeReports(shards, merge, err)) << err;
}

TEST(Merge, CorruptedCellFailsNamingTheCell)
{
    const double scale = 0.1;
    std::vector<LoadedReport> shards;
    for (unsigned i = 0; i < 3; ++i) {
        Json doc = runMode("sec321", scale, BenchContext::CellMode::Run,
                           ShardSpec{i, 3});
        if (i == 1) {
            // Hand-edit the payload of cell 1 (owned by shard 1) without
            // touching its digest.
            doc["cells"]["1"]["attack"] = Json::array().push(99.0);
        }
        shards.push_back(asReport(doc, "shard" + std::to_string(i)));
    }
    MergeResult merge;
    std::string err;
    EXPECT_FALSE(mergeReports(shards, merge, err));
    EXPECT_NE(err.find("cell 1"), std::string::npos) << err;
    EXPECT_NE(err.find("shard1"), std::string::npos) << err;
}

TEST(Merge, OverlappingCellsMustBeByteIdentical)
{
    const double scale = 0.1;
    Json a = runMode("sec321", scale, BenchContext::CellMode::Run,
                     ShardSpec{1, 3});
    Json b = runMode("sec321", scale, BenchContext::CellMode::Run,
                     ShardSpec{1, 3});
    // Simulate cross-machine nondeterminism: edit the overlapping cell
    // AND fix its digest so only the overlap comparison can catch it.
    b["cells"]["1"]["attack"] = Json::array().push(99.0);
    b["manifest"]["cell_digests"]["1"] =
        hex64(fnv1a64(b["cells"]["1"].dump()));

    Json rest0 = runMode("sec321", scale, BenchContext::CellMode::Run,
                         ShardSpec{0, 3});
    Json rest2 = runMode("sec321", scale, BenchContext::CellMode::Run,
                         ShardSpec{2, 3});
    std::vector<LoadedReport> shards;
    shards.push_back(asReport(a, "machineA"));
    shards.push_back(asReport(b, "machineB"));
    shards.push_back(asReport(rest0, "shard0"));
    shards.push_back(asReport(rest2, "shard2"));
    MergeResult merge;
    std::string err;
    EXPECT_FALSE(mergeReports(shards, merge, err));
    EXPECT_NE(err.find("cell 1"), std::string::npos) << err;
    EXPECT_NE(err.find("machineA"), std::string::npos) << err;
    EXPECT_NE(err.find("machineB"), std::string::npos) << err;
}

TEST(Merge, MissingShardFailsWithCoverageError)
{
    Json doc = runMode("sec321", 0.1, BenchContext::CellMode::Run,
                       ShardSpec{0, 3});
    std::vector<LoadedReport> shards{asReport(doc, "shard0")};
    MergeResult merge;
    std::string err;
    EXPECT_FALSE(mergeReports(shards, merge, err));
    EXPECT_NE(err.find("missing"), std::string::npos) << err;
}

TEST(Merge, MismatchedGridsRefuseToMerge)
{
    Json a = runMode("sec321", 0.1, BenchContext::CellMode::Run,
                     ShardSpec{0, 2});
    Json b = runMode("sec321", 0.1, BenchContext::CellMode::Run,
                     ShardSpec{1, 2});
    b["manifest"]["fingerprint"] = "0000000000000000";
    std::vector<LoadedReport> shards{asReport(a, "a"), asReport(b, "b")};
    MergeResult merge;
    std::string err;
    EXPECT_FALSE(mergeReports(shards, merge, err));
    EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
}

TEST(Merge, CompleteCellFreeShardsPassThrough)
{
    // table1 is analytic: every shard computes the complete report, and
    // the merge is a determinism cross-check plus normalization.
    Json unsharded = runMode("table1", 1.0, BenchContext::CellMode::Run);
    Json s0 = runMode("table1", 1.0, BenchContext::CellMode::Run,
                      ShardSpec{0, 2});
    Json s1 = runMode("table1", 1.0, BenchContext::CellMode::Run,
                      ShardSpec{1, 2});
    EXPECT_FALSE(s0.find("manifest")->find("partial")->asBool());

    std::vector<LoadedReport> shards{asReport(s0, "s0"), asReport(s1, "s1")};
    MergeResult merge;
    std::string err;
    ASSERT_TRUE(mergeReports(shards, merge, err)) << err;
    EXPECT_FALSE(merge.needsReplay);
    EXPECT_EQ(merge.merged.dump(2), unsharded.dump(2));

    // A diverging complete report is a determinism failure.
    Json tampered = s1;
    tampered["params"]["N_RH"] = 12345;
    std::vector<LoadedReport> bad{asReport(s0, "s0"),
                                  asReport(tampered, "s1-tampered")};
    EXPECT_FALSE(mergeReports(bad, merge, err));
    EXPECT_NE(err.find("deterministic"), std::string::npos) << err;
}

TEST(Status, ReportsShardCoverageAndMissingCells)
{
    const double scale = 0.1;
    // Two of three shards present: coverage must be partial with the
    // unowned shard's cells listed as missing.
    std::vector<LoadedReport> inputs;
    for (unsigned i : {0u, 2u}) {
        Json doc = runMode("sec321", scale, BenchContext::CellMode::Run,
                           ShardSpec{i, 3});
        LoadedReport report;
        std::string err;
        ASSERT_TRUE(loadReportText(doc.dump(2), strfmt("shard%u", i),
                                   report, err)) << err;
        inputs.push_back(std::move(report));
    }

    auto grids = gridStatus(inputs);
    ASSERT_EQ(grids.size(), 1u);
    const GridStatus &g = grids[0];
    EXPECT_EQ(g.experiment, "sec321");
    EXPECT_FALSE(g.complete());
    ASSERT_EQ(g.shards.size(), 2u);
    EXPECT_EQ(g.shards[0], "0/3");
    EXPECT_EQ(g.shards[1], "2/3");
    EXPECT_EQ(g.cellTotal, 2u);     // sec321 at 0.1x has 2 cells
    EXPECT_EQ(g.cellsCovered, 1u);  // shard 1 of 3 owns cell 1
    ASSERT_EQ(g.missingCells.size(), 1u);
    EXPECT_EQ(g.missingCells[0], 1u);

    // Adding the missing shard completes the grid.
    Json doc = runMode("sec321", scale, BenchContext::CellMode::Run,
                       ShardSpec{1, 3});
    LoadedReport report;
    std::string err;
    ASSERT_TRUE(loadReportText(doc.dump(2), "shard1", report, err)) << err;
    inputs.push_back(std::move(report));
    grids = gridStatus(inputs);
    ASSERT_EQ(grids.size(), 1u);
    EXPECT_TRUE(grids[0].complete());
    EXPECT_EQ(grids[0].shards.size(), 3u);
}

TEST(Status, SeparatesDifferentGrids)
{
    // The same experiment at two scales forms two distinct grids.
    std::vector<LoadedReport> inputs;
    for (double scale : {0.1, 0.2}) {
        Json doc = runMode("sec321", scale, BenchContext::CellMode::Run);
        LoadedReport report;
        std::string err;
        ASSERT_TRUE(loadReportText(doc.dump(2), "full", report, err)) << err;
        inputs.push_back(std::move(report));
    }
    auto grids = gridStatus(inputs);
    ASSERT_EQ(grids.size(), 2u);
    EXPECT_TRUE(grids[0].complete());
    EXPECT_TRUE(grids[1].complete());
    EXPECT_NE(grids[0].fingerprint, grids[1].fingerprint);
}

TEST(Diff, NumericToleranceAndIgnores)
{
    Json a = Json::object();
    a["x"] = 1.0;
    a["arr"] = Json::array().push(1).push(2.0);
    a["s"] = "same";
    a["skip"] = Json::object();
    a["skip"]["noise"] = 1.0;
    Json b = Json::object();
    b["x"] = 1.0 + 1e-9;
    b["arr"] = Json::array().push(1).push(2.0);
    b["s"] = "same";
    b["skip"] = Json::object();
    b["skip"]["noise"] = 2.0;

    DiffOptions exact;
    std::vector<std::string> diffs = structuralDiff(a, b, exact);
    EXPECT_EQ(diffs.size(), 2u);    // x drift + skip.noise

    DiffOptions tol;
    tol.relTol = 1e-6;
    tol.ignorePaths = {"skip"};
    EXPECT_TRUE(structuralDiff(a, b, tol).empty());

    DiffOptions abs_only;
    abs_only.absTol = 1e-6;
    abs_only.ignorePaths = {"skip.noise"};
    EXPECT_TRUE(structuralDiff(a, b, abs_only).empty());
}

TEST(Diff, StructuralMismatchesAreReported)
{
    Json a = Json::object();
    a["only_a"] = 1;
    a["t"] = "str";
    a["arr"] = Json::array().push(1).push(2);
    Json b = Json::object();
    b["t"] = 5;
    b["arr"] = Json::array().push(1);
    b["only_b"] = true;

    std::vector<std::string> diffs = structuralDiff(a, b, DiffOptions{});
    ASSERT_EQ(diffs.size(), 4u);
    EXPECT_NE(diffs[0].find("only in first"), std::string::npos);
    EXPECT_NE(diffs[1].find("type mismatch"), std::string::npos);
    EXPECT_NE(diffs[2].find("array length"), std::string::npos);
    EXPECT_NE(diffs[3].find("only in second"), std::string::npos);

    // Int vs Double of equal value is not a difference.
    Json c = Json::object();
    c["v"] = 2;
    Json d = Json::object();
    d["v"] = 2.0;
    EXPECT_TRUE(structuralDiff(c, d, DiffOptions{}).empty());
}

} // namespace
} // namespace bh
