/**
 * @file
 * bh_lint unit tests: lexer behavior, each rule against its fixtures
 * under tests/lint_fixtures/ (a failing fixture and a passing one with
 * suppressions per rule), suppression-grammar errors, and the baseline
 * round trip. Fixture files are never compiled — collectSources skips
 * them and the build globs only test_*.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lexer.hh"
#include "lint/lint.hh"

using namespace bh::lint;

namespace
{

std::string
fixturePath(const std::string &rel)
{
    return std::string(BH_LINT_FIXTURES) + "/" + rel;
}

LexedFile
lexFixture(const std::string &rel)
{
    LexedFile lf;
    std::string err;
    EXPECT_TRUE(lexFile(fixturePath(rel), lf, err)) << err;
    return lf;
}

std::vector<Finding>
lintFixture(const std::string &rel)
{
    return lintFile(lexFixture(rel));
}

int
countRule(const std::vector<Finding> &findings, const std::string &rule)
{
    return static_cast<int>(std::count_if(
        findings.begin(), findings.end(),
        [&](const Finding &f) { return f.rule == rule; }));
}

bool
hasFindingAt(const std::vector<Finding> &findings, const std::string &rule,
             int line)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding &f) {
                           return f.rule == rule && f.line == line;
                       });
}

} // namespace

// ---------------------------------------------------------------- lexer

TEST(LintLexer, TokenizesIdentifiersPunctuatorsAndScopes)
{
    auto lf = lex("t.cc", "std::vector<std::pair<int, int>> v;\n");
    // `::` and `>>` must each be single tokens; `<` separate.
    std::vector<std::string> texts;
    for (const auto &t : lf.tokens)
        texts.push_back(t.text);
    EXPECT_NE(std::find(texts.begin(), texts.end(), "::"), texts.end());
    EXPECT_NE(std::find(texts.begin(), texts.end(), ">>"), texts.end());
    EXPECT_NE(std::find(texts.begin(), texts.end(), "<"), texts.end());
}

TEST(LintLexer, CapturesCommentsWithOwnLineFlag)
{
    auto lf = lex("t.cc", "int a; // trailing\n  // own line\nint b;\n");
    ASSERT_EQ(lf.comments.size(), 2u);
    EXPECT_FALSE(lf.comments[0].ownLine);
    EXPECT_EQ(lf.comments[0].line, 1);
    EXPECT_TRUE(lf.comments[1].ownLine);
    EXPECT_EQ(lf.comments[1].line, 2);
}

TEST(LintLexer, JoinsPreprocessorContinuations)
{
    auto lf = lex("t.cc", "#define X \\\n  1\nint y;\n");
    ASSERT_FALSE(lf.tokens.empty());
    EXPECT_EQ(lf.tokens[0].kind, Token::Kind::kPreproc);
    EXPECT_NE(lf.tokens[0].text.find("define"), std::string::npos);
    // The joined line must not swallow the following code.
    EXPECT_GE(lf.tokens.size(), 4u);    // preproc + int + y + ;
}

TEST(LintLexer, RawStringsDoNotConfuseTokenization)
{
    auto lf = lex("t.cc", "auto s = R\"(rand() \"quoted\")\";\nint z;\n");
    int idents = 0;
    for (const auto &t : lf.tokens)
        if (t.kind == Token::Kind::kIdent && t.text == "rand")
            ++idents;
    EXPECT_EQ(idents, 0) << "rand inside a raw string must stay a string";
}

// ---------------------------------------------------------------- rules

TEST(LintRules, NondetBadFixtureFlagsEachSource)
{
    auto findings = lintFixture("src/nondet_bad.cc");
    EXPECT_TRUE(hasFindingAt(findings, "nondet", 10));   // rand()
    EXPECT_TRUE(hasFindingAt(findings, "nondet", 16));   // time()
    EXPECT_TRUE(hasFindingAt(findings, "nondet", 22));   // steady_clock::now
    EXPECT_TRUE(hasFindingAt(findings, "nondet", 26));   // pointer map key
    EXPECT_EQ(countRule(findings, "nondet"), 4);
}

TEST(LintRules, NondetOkFixtureIsCleanViaSuppressions)
{
    EXPECT_TRUE(lintFixture("src/nondet_ok.cc").empty());
}

TEST(LintRules, UnorderedBadFixtureFlagsDirectAndNestedWalks)
{
    auto findings = lintFixture("src/unordered_bad.cc");
    EXPECT_TRUE(hasFindingAt(findings, "unordered-iter", 11));  // range-for
    EXPECT_TRUE(hasFindingAt(findings, "unordered-iter", 13));  // .begin()
    // The vector-of-maps outer walk must NOT be flagged...
    EXPECT_FALSE(hasFindingAt(findings, "unordered-iter", 23));
    // ...but the tainted loop variable's inner walk must be.
    EXPECT_TRUE(hasFindingAt(findings, "unordered-iter", 25));
    EXPECT_EQ(countRule(findings, "unordered-iter"), 3);
}

TEST(LintRules, UnorderedOkFixtureIsCleanViaSortedHelpers)
{
    EXPECT_TRUE(lintFixture("src/unordered_ok.cc").empty());
}

TEST(LintRules, TraceGateBadFixtureFlagsUngatedAndNegatedGate)
{
    auto findings = lintFixture("src/trace_gate_bad.cc");
    EXPECT_TRUE(hasFindingAt(findings, "trace-gate", 7));
    EXPECT_TRUE(hasFindingAt(findings, "trace-gate", 15));
    EXPECT_EQ(countRule(findings, "trace-gate"), 2);
}

TEST(LintRules, TraceGateOkFixtureIsClean)
{
    EXPECT_TRUE(lintFixture("src/trace_gate_ok.cc").empty());
}

TEST(LintRules, ObserverConstBadFixtureFlagsMutableParam)
{
    auto findings = lintFixture("src/dram/hammer_observer.hh");
    EXPECT_EQ(countRule(findings, "observer-const"), 1);
    EXPECT_TRUE(hasFindingAt(findings, "observer-const", 6));
}

TEST(LintRules, ObserverConstOkFixtureIsCleanViaSuppression)
{
    EXPECT_TRUE(lintFixture("src/analysis/security_oracle.hh").empty());
}

TEST(LintRules, RngBadFixtureFlagsEngineIncludeAndImpureSeed)
{
    auto findings = lintFixture("src/rng_bad.cc");
    EXPECT_TRUE(hasFindingAt(findings, "rng-discipline", 3));   // <random>
    EXPECT_TRUE(hasFindingAt(findings, "rng-discipline", 10));  // mt19937
    EXPECT_TRUE(hasFindingAt(findings, "rng-discipline", 17));  // Rng(time())
}

TEST(LintRules, RngOkFixtureIsClean)
{
    EXPECT_TRUE(lintFixture("src/rng_ok.cc").empty());
}

TEST(LintRules, MemberInitBadFixtureFlagsOnlyUninitialized)
{
    auto findings = lintFixture("src/member_bad.hh");
    EXPECT_TRUE(hasFindingAt(findings, "member-init", 5));  // acts
    EXPECT_TRUE(hasFindingAt(findings, "member-init", 6));  // rate
    EXPECT_TRUE(hasFindingAt(findings, "member-init", 7));  // scratch
    EXPECT_EQ(countRule(findings, "member-init"), 3);
}

TEST(LintRules, MemberInitOkFixtureIsClean)
{
    EXPECT_TRUE(lintFixture("src/member_ok.hh").empty());
}

// --------------------------------------------------------- suppressions

TEST(LintSuppressions, MalformedAnnotationsAreFindings)
{
    auto findings = lintFixture("src/bad_suppression.cc");
    EXPECT_EQ(countRule(findings, "bad-suppression"), 3);
    EXPECT_TRUE(hasFindingAt(findings, "bad-suppression", 2)); // no reason
    EXPECT_TRUE(hasFindingAt(findings, "bad-suppression", 5)); // bad rule
    EXPECT_TRUE(hasFindingAt(findings, "bad-suppression", 8)); // bad verb
}

TEST(LintSuppressions, SuppressionOnWrongLineDoesNotCover)
{
    // The annotation sits two lines above the finding: not covered.
    auto lf = lex("src/t.cc",
                  "// bh-lint: allow(nondet) too far away\n"
                  "\n"
                  "long f() { return time(nullptr); }\n");
    auto findings = lintFile(lf);
    EXPECT_EQ(countRule(findings, "nondet"), 1);
}

TEST(LintSuppressions, TrailingAnnotationMustBeOnTheFindingLine)
{
    auto lf = lex("src/t.cc",
                  "long f() { return time(nullptr); } "
                  "// bh-lint: allow(nondet) same line\n");
    EXPECT_TRUE(lintFile(lf).empty());
}

// ------------------------------------------------------------- pairing

TEST(LintPairing, HeaderMembersTaintThePairedSource)
{
    std::vector<std::string> files = {"src/header_pair.hh",
                                      "src/header_pair.cc"};
    std::vector<std::string> ioErrors;
    auto findings = runLint(BH_LINT_FIXTURES, files, &ioErrors);
    EXPECT_TRUE(ioErrors.empty());
    bool inCc = std::any_of(findings.begin(), findings.end(),
                            [](const Finding &f) {
                                return f.rule == "unordered-iter"
                                    && f.path == "src/header_pair.cc";
                            });
    EXPECT_TRUE(inCc)
        << "iteration over a member declared in the paired header";
}

// ------------------------------------------------------------ baseline

TEST(LintBaseline, RoundTripAbsorbsExactlyTheBaselinedFindings)
{
    auto findings = lintFixture("src/member_bad.hh");
    ASSERT_EQ(findings.size(), 3u);

    std::string text = formatBaseline(findings);
    std::vector<BaselineEntry> entries;
    std::string err;
    ASSERT_TRUE(parseBaseline(text, entries, err)) << err;
    EXPECT_EQ(entries.size(), 3u);

    std::vector<Finding> baselined;
    auto fresh = filterBaseline(findings, entries, &baselined);
    EXPECT_TRUE(fresh.empty());
    EXPECT_EQ(baselined.size(), 3u);
}

TEST(LintBaseline, ChangedLineInvalidatesTheBaselineEntry)
{
    auto findings = lintFixture("src/member_bad.hh");
    ASSERT_FALSE(findings.empty());
    std::string text = formatBaseline(findings);
    std::vector<BaselineEntry> entries;
    std::string err;
    ASSERT_TRUE(parseBaseline(text, entries, err)) << err;

    // Simulate the offending line changing: the hash no longer matches,
    // so the finding resurfaces as fresh.
    findings[0].lineText += " /* edited */";
    auto fresh = filterBaseline(findings, entries);
    EXPECT_EQ(fresh.size(), 1u);
}

TEST(LintBaseline, EachEntryAbsorbsAtMostOneFinding)
{
    auto findings = lintFixture("src/member_bad.hh");
    ASSERT_GE(findings.size(), 2u);
    // Duplicate the first finding; a single baseline entry must absorb
    // only one copy.
    std::vector<Finding> doubled = findings;
    doubled.push_back(findings[0]);
    std::string text = formatBaseline(findings);
    std::vector<BaselineEntry> entries;
    std::string err;
    ASSERT_TRUE(parseBaseline(text, entries, err)) << err;
    auto fresh = filterBaseline(doubled, entries);
    EXPECT_EQ(fresh.size(), 1u);
}

TEST(LintBaseline, MalformedBaselineLinesAreRejected)
{
    std::vector<BaselineEntry> entries;
    std::string err;
    EXPECT_FALSE(parseBaseline("nondet only-two-fields\n", entries, err));
    EXPECT_FALSE(parseBaseline("nondet a.cc nothex\n", entries, err));
    EXPECT_TRUE(parseBaseline("# comment only\n\n", entries, err));
    EXPECT_TRUE(entries.empty());
}

// ----------------------------------------------------------- collection

TEST(LintCollection, FixtureTreeIsSkippedBySourceCollection)
{
    // Collecting with the fixtures dir in the relative path must yield
    // nothing: intentional violations never leak into a real scan.
    auto parent = std::string(BH_LINT_FIXTURES) + "/..";
    auto files = collectSources(parent, {"lint_fixtures"});
    EXPECT_TRUE(files.empty());
}

TEST(LintCollection, RuleCatalogDescribesEveryRule)
{
    for (const auto &id : ruleIds())
        EXPECT_FALSE(ruleDescription(id).empty()) << id;
    EXPECT_FALSE(ruleDescription("bad-suppression").empty());
    EXPECT_TRUE(ruleDescription("no-such-rule").empty());
}
