/**
 * @file
 * Unit tests for the common utilities: bit manipulation, RNG, statistics,
 * table rendering, and time conversion.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitutils.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace bh
{
namespace
{

TEST(BitUtils, BitsExtractsRanges)
{
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
    EXPECT_EQ(bits(0xff00, 0, 8), 0x00u);
    EXPECT_EQ(bits(0xdeadbeef, 4, 4), 0xeu);
    EXPECT_EQ(bits(0xffffffffffffffffull, 0, 64), 0xffffffffffffffffull);
    EXPECT_EQ(bits(0x1234, 0, 0), 0u);
}

TEST(BitUtils, PlaceBitsInvertsBits)
{
    for (unsigned lo : {0u, 3u, 17u, 40u}) {
        for (unsigned w : {1u, 4u, 9u}) {
            std::uint64_t v = 0x15 & ((1ull << w) - 1);
            EXPECT_EQ(bits(placeBits(v, lo, w), lo, w), v)
                << "lo=" << lo << " w=" << w;
        }
    }
}

TEST(BitUtils, PlaceBitsMasksOverflow)
{
    EXPECT_EQ(placeBits(0xff, 0, 4), 0xfull);
}

TEST(BitUtils, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtils, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(65536));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(65537));
}

TEST(BitUtils, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(1, 100), 1);
    EXPECT_EQ(ceilDiv(0, 7), 0);
}

TEST(Types, NsToCyclesRoundsUp)
{
    // 3.2 GHz: 1 ns = 3.2 cycles -> 4.
    EXPECT_EQ(nsToCycles(1.0), 4);
    EXPECT_EQ(nsToCycles(10.0), 32);
    EXPECT_EQ(nsToCycles(46.25), 148);
    EXPECT_EQ(nsToCycles(0.0), 0);
}

TEST(Types, CyclesToNsRoundTrips)
{
    EXPECT_DOUBLE_EQ(cyclesToNs(320), 100.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ForkIndependent)
{
    Rng a(5);
    Rng b = a.fork();
    EXPECT_NE(a.next(), b.next());
}

TEST(Histogram, BasicStats)
{
    Histogram h;
    for (std::int64_t v : {5, 1, 9, 3, 7})
        h.add(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 1);
    EXPECT_EQ(h.max(), 9);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_EQ(h.percentile(0), 1);
    EXPECT_EQ(h.percentile(100), 100);
    EXPECT_NEAR(static_cast<double>(h.percentile(50)), 50.0, 1.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(90)), 90.0, 1.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ClearResets)
{
    Histogram h;
    h.add(4);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ReservoirKeepsMinMaxExact)
{
    Histogram h(64);
    for (int i = 0; i < 10000; ++i)
        h.add(i);
    EXPECT_EQ(h.count(), 10000u);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 9999);
    EXPECT_DOUBLE_EQ(h.mean(), 4999.5);
}

TEST(StatSet, CountersAccumulate)
{
    StatSet s;
    s.inc("a");
    s.inc("a", 4);
    EXPECT_EQ(s.counter("a"), 5u);
    EXPECT_EQ(s.counter("missing"), 0u);
}

TEST(StatSet, Scalars)
{
    StatSet s;
    s.set("x", 2.5);
    EXPECT_DOUBLE_EQ(s.scalar("x"), 2.5);
    s.set("x", 3.0);
    EXPECT_DOUBLE_EQ(s.scalar("x"), 3.0);
}

TEST(StatSet, Histograms)
{
    StatSet s;
    s.sample("lat", 10);
    s.sample("lat", 20);
    EXPECT_EQ(s.hist("lat").count(), 2u);
    EXPECT_NE(s.findHist("lat"), nullptr);
    EXPECT_EQ(s.findHist("nope"), nullptr);
}

TEST(StatSet, ClearAndDump)
{
    StatSet s;
    s.inc("n", 3);
    s.set("v", 1.5);
    s.sample("h", 7);
    std::string dump = s.dump();
    EXPECT_NE(dump.find("n 3"), std::string::npos);
    s.clear();
    EXPECT_EQ(s.counter("n"), 0u);
}

TEST(TextTable, RendersAligned)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "2"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, NumFormats)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Log, StrfmtFormats)
{
    EXPECT_EQ(strfmt("a=%d b=%s", 3, "x"), "a=3 b=x");
    EXPECT_EQ(strfmt("%05.1f", 2.25), "002.2");
}

} // namespace
} // namespace bh
