/**
 * @file
 * Property tests for the address mapper: bijectivity, field ranges, and
 * the MOP scheme's bank-interleaving behavior.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/address_map.hh"

namespace bh
{
namespace
{

class MapperParamTest : public ::testing::TestWithParam<MapScheme>
{
};

TEST_P(MapperParamTest, DecodeEncodeRoundTrips)
{
    AddressMapper m(DramOrg::paperConfig(), GetParam());
    Rng rng(101);
    for (int i = 0; i < 5000; ++i) {
        Addr line = rng.below(DramOrg::paperConfig().totalLines());
        Addr addr = line * kLineBytes;
        DramCoord c = m.decode(addr);
        EXPECT_EQ(m.encode(c), addr);
    }
}

TEST_P(MapperParamTest, FieldsInRange)
{
    DramOrg org = DramOrg::paperConfig();
    AddressMapper m(org, GetParam());
    Rng rng(202);
    for (int i = 0; i < 5000; ++i) {
        Addr addr = rng.below(org.totalLines()) * kLineBytes;
        DramCoord c = m.decode(addr);
        EXPECT_LT(c.channel, org.channels);
        EXPECT_LT(c.rank, org.ranks);
        EXPECT_LT(c.bankGroup, org.bankGroups);
        EXPECT_LT(c.bank, org.banksPerGroup);
        EXPECT_LT(c.row, org.rowsPerBank);
        EXPECT_LT(c.col, org.linesPerRow);
        EXPECT_LT(c.flatBank(org), org.banksPerChannel());
    }
}

TEST_P(MapperParamTest, EncodeDecodeRoundTripsCoords)
{
    DramOrg org = DramOrg::tinyConfig();
    AddressMapper m(org, GetParam());
    for (unsigned bg = 0; bg < org.bankGroups; ++bg) {
        for (unsigned bk = 0; bk < org.banksPerGroup; ++bk) {
            for (RowId row : {0u, 1u, 255u}) {
                for (unsigned col : {0u, 15u}) {
                    DramCoord c;
                    c.bankGroup = bg;
                    c.bank = bk;
                    c.row = row;
                    c.col = col;
                    DramCoord back = m.decode(m.encode(c));
                    EXPECT_TRUE(back == c);
                }
            }
        }
    }
}

TEST_P(MapperParamTest, DistinctAddressesDistinctCoords)
{
    DramOrg org = DramOrg::tinyConfig();
    AddressMapper m(org, GetParam());
    // Exhaustive bijectivity over the tiny geometry.
    std::vector<bool> seen(org.totalLines(), false);
    for (Addr line = 0; line < org.totalLines(); ++line) {
        DramCoord c = m.decode(line * kLineBytes);
        Addr back = m.encode(c) / kLineBytes;
        EXPECT_EQ(back, line);
        EXPECT_FALSE(seen[line]);
        seen[line] = true;
    }
}

TEST_P(MapperParamTest, MultiChannelRoundTripsAndChannelOf)
{
    for (unsigned channels : {1u, 2u, 4u}) {
        DramOrg org = DramOrg::tinyConfig(channels);
        AddressMapper m(org, GetParam());
        Rng rng(303 + channels);
        for (int i = 0; i < 2000; ++i) {
            Addr addr = rng.below(org.totalLines()) * kLineBytes;
            DramCoord c = m.decode(addr);
            EXPECT_LT(c.channel, channels);
            EXPECT_EQ(m.encode(c), addr);
            EXPECT_EQ(m.channelOf(addr), c.channel)
                << "channels=" << channels;
        }
    }
}

TEST_P(MapperParamTest, MultiChannelCoordRoundTrip)
{
    DramOrg org = DramOrg::tinyConfig(4);
    AddressMapper m(org, GetParam());
    for (unsigned ch = 0; ch < org.channels; ++ch) {
        for (unsigned bg = 0; bg < org.bankGroups; ++bg) {
            for (unsigned bk = 0; bk < org.banksPerGroup; ++bk) {
                for (RowId row : {0u, 255u}) {
                    DramCoord c;
                    c.channel = ch;
                    c.bankGroup = bg;
                    c.bank = bk;
                    c.row = row;
                    c.col = 3;
                    DramCoord back = m.decode(m.encode(c));
                    EXPECT_TRUE(back == c);
                }
            }
        }
    }
}

TEST_P(MapperParamTest, ChannelsPartitionTheAddressSpace)
{
    // Per-channel request streams must split the address space exactly:
    // every line belongs to one channel, and each channel owns an equal
    // 1/N share (no overlap, no gap).
    for (unsigned channels : {2u, 4u}) {
        DramOrg org = DramOrg::tinyConfig(channels);
        AddressMapper m(org, GetParam());
        std::vector<std::uint64_t> per_channel(channels, 0);
        for (Addr line = 0; line < org.totalLines(); ++line) {
            unsigned ch = m.channelOf(line * kLineBytes);
            ASSERT_LT(ch, channels);
            ++per_channel[ch];
        }
        for (unsigned ch = 0; ch < channels; ++ch)
            EXPECT_EQ(per_channel[ch], org.totalLines() / channels)
                << "channel " << ch << " of " << channels;
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, MapperParamTest,
                         ::testing::Values(MapScheme::kRowBankCol,
                                           MapScheme::kMop),
                         [](const auto &info) {
                             return info.param == MapScheme::kMop
                                 ? "Mop" : "RowBankCol";
                         });

TEST(MopMapping, ConsecutiveBlocksInterleaveBankGroups)
{
    DramOrg org = DramOrg::paperConfig();
    AddressMapper m(org, MapScheme::kMop, 4);
    // Lines 0-3 share a bank (one MOP block); lines 4-7 land in a
    // different bank group.
    DramCoord a = m.decode(0);
    DramCoord b = m.decode(3 * kLineBytes);
    DramCoord c = m.decode(4 * kLineBytes);
    EXPECT_EQ(a.flatBank(org), b.flatBank(org));
    EXPECT_NE(a.bankGroup, c.bankGroup);
    EXPECT_EQ(a.row, c.row);
}

TEST(MopMapping, SequentialStreamTouchesAllBanksBeforeNewRow)
{
    DramOrg org = DramOrg::paperConfig();
    AddressMapper m(org, MapScheme::kMop, 4);
    std::set<unsigned> banks_seen;
    RowId first_row = m.decode(0).row;
    // One row's worth of MOP blocks per bank: 16 banks x 4-line blocks.
    for (unsigned line = 0; line < 16 * 4; ++line) {
        DramCoord c = m.decode(static_cast<Addr>(line) * kLineBytes);
        EXPECT_EQ(c.row, first_row);
        banks_seen.insert(c.flatBank(org));
    }
    EXPECT_EQ(banks_seen.size(), 16u);
}

TEST(RowBankColMapping, LowBitsAreColumns)
{
    DramOrg org = DramOrg::paperConfig();
    AddressMapper m(org, MapScheme::kRowBankCol);
    DramCoord a = m.decode(0);
    DramCoord b = m.decode((org.linesPerRow - 1) * kLineBytes);
    EXPECT_EQ(a.flatBank(org), b.flatBank(org));
    EXPECT_EQ(a.row, b.row);
    EXPECT_NE(a.col, b.col);
}

TEST(Mapper, LineBitsMatchGeometry)
{
    DramOrg org = DramOrg::paperConfig();
    AddressMapper m(org, MapScheme::kMop);
    EXPECT_EQ(m.lineBits(), ceilLog2(org.totalLines()));
}

} // namespace
} // namespace bh
