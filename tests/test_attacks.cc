/**
 * @file
 * Property tests for the adversarial attack-pattern catalog
 * (workloads/attack_patterns.hh): every cataloged pattern must be
 * bit-deterministic per seed, and the activation rate it actually
 * achieves in a real system must stay within the ACT-rate envelope the
 * spec declares — at the compressed scale-1 window and at the widened
 * `--scale 4` window (windowMultiplier(4) = 8x thresholds and tREFW).
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/experiment.hh"

namespace bh
{
namespace
{

/** Attack-alone experiment used to measure a pattern's issued ACT rate. */
ExperimentConfig
envelopeConfig(double window_mult)
{
    ExperimentConfig cfg;
    cfg.mechanism = "Baseline";     // nothing throttles: worst case rate
    cfg.threads = 1;
    cfg.nRH = static_cast<std::uint32_t>(512 * window_mult);
    cfg.refwMs = 0.25 * window_mult;
    cfg.warmupCycles = 0;
    cfg.runCycles = static_cast<Cycle>(1'000'000 * window_mult / 2);
    cfg.hammerObserver = false;     // speed: only the oracle matters here
    cfg.securityOracle = true;
    return cfg;
}

MixSpec
aloneMix(const std::string &pattern_name)
{
    MixSpec mix;
    mix.name = "alone-" + pattern_name;
    mix.apps = {attackPatternApp(pattern_name)};
    return mix;
}

void
expectEnvelopeHolds(const AttackPatternSpec &spec, double window_mult)
{
    ExperimentConfig cfg = envelopeConfig(window_mult);
    RunResult res = runExperiment(cfg, aloneMix(spec.name));
    std::uint64_t envelope = spec.maxRowActsPerWindow(cfg.attackEnv());
    EXPECT_GT(res.secMaxWindowActs, 0u)
        << spec.name << ": pattern never activated a row";
    EXPECT_LE(res.secMaxWindowActs, envelope)
        << spec.name << " exceeded its declared envelope at window x"
        << window_mult;
}

TEST(AttackCatalog, NamesUniqueAndLookupWorks)
{
    std::set<std::string> names;
    for (const auto &spec : attackPatternCatalog()) {
        EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
        EXPECT_EQ(findAttackPattern(spec.name), &spec);
        EXPECT_FALSE(spec.summary.empty()) << spec.name;
    }
    EXPECT_GE(names.size(), 5u);
    EXPECT_EQ(findAttackPattern("no-such-pattern"), nullptr);
}

TEST(AttackCatalog, CoversEveryFamily)
{
    std::set<AttackPatternSpec::Family> families;
    for (const auto &spec : attackPatternCatalog())
        families.insert(spec.family);
    // Five hand-written families plus kFuzz (the promoted fuzzer
    // regression cells in src/workloads/fuzz_regressions.cc).
    EXPECT_EQ(families.size(), 6u);
}

TEST(AttackPatterns, BitDeterministicPerSeed)
{
    AddressMapper mapper(DramOrg::paperConfig(), MapScheme::kMop);
    AttackEnv env;
    env.seed = 1234;
    for (const auto &spec : attackPatternCatalog()) {
        PatternTrace a(spec, mapper, env);
        PatternTrace b(spec, mapper, env);
        for (int i = 0; i < 5000; ++i) {
            TraceEntry ea, eb;
            ASSERT_TRUE(a.next(ea));
            ASSERT_TRUE(b.next(eb));
            ASSERT_EQ(ea.addr, eb.addr) << spec.name << " entry " << i;
            ASSERT_EQ(ea.bubbles, eb.bubbles) << spec.name;
            ASSERT_EQ(ea.isMem, eb.isMem) << spec.name;
        }
        // reset() replays the identical stream from the start.
        TraceEntry first;
        a.reset();
        ASSERT_TRUE(a.next(first));
        PatternTrace c(spec, mapper, env);
        TraceEntry ec;
        ASSERT_TRUE(c.next(ec));
        EXPECT_EQ(first.addr, ec.addr) << spec.name;
        EXPECT_EQ(first.bubbles, ec.bubbles) << spec.name;
    }
}

TEST(AttackPatterns, AddressesStayInDeclaredBankRange)
{
    AddressMapper mapper(DramOrg::paperConfig(), MapScheme::kMop);
    AttackEnv env;
    for (const auto &spec : attackPatternCatalog()) {
        PatternTrace t(spec, mapper, env);
        const DramOrg &org = mapper.organization();
        for (std::size_t i = 0; i < 2 * t.lap().size(); ++i) {
            TraceEntry e;
            t.next(e);
            if (!e.isMem)
                continue;
            EXPECT_TRUE(e.bypassCache) << spec.name;
            DramCoord c = mapper.decode(e.addr);
            unsigned fb = c.flatBank(org);
            EXPECT_GE(fb, spec.firstBank) << spec.name;
            EXPECT_LT(fb, spec.firstBank + spec.numBanks) << spec.name;
        }
    }
}

TEST(AttackPatterns, ConsecutiveSameBankAccessesConflict)
{
    // Every family must alternate rows within a bank, or the open-page
    // policy would turn the "hammer" into activation-free row hits.
    AddressMapper mapper(DramOrg::paperConfig(), MapScheme::kMop);
    AttackEnv env;
    for (const auto &spec : attackPatternCatalog()) {
        PatternTrace t(spec, mapper, env);
        std::map<unsigned, RowId> last_row;
        for (std::size_t i = 0; i < 2 * t.lap().size(); ++i) {
            TraceEntry e;
            t.next(e);
            if (!e.isMem)
                continue;
            DramCoord c = mapper.decode(e.addr);
            unsigned fb = c.flatBank(mapper.organization());
            auto it = last_row.find(fb);
            if (it != last_row.end()) {
                EXPECT_NE(it->second, c.row)
                    << spec.name << ": same-bank repeat of row " << c.row;
            }
            last_row[fb] = c.row;
        }
    }
}

TEST(AttackPatterns, ProbeBurstCarriesQuietGaps)
{
    const AttackPatternSpec *probe = findAttackPattern("probe-burst");
    ASSERT_NE(probe, nullptr);
    ASSERT_GT(probe->gapInstrs, 0u);
    AddressMapper mapper(DramOrg::paperConfig(), MapScheme::kMop);
    PatternTrace t(*probe, mapper, AttackEnv{});
    bool saw_gap = false;
    for (const TraceEntry &e : t.lap())
        if (!e.isMem) {
            saw_gap = true;
            EXPECT_EQ(e.bubbles, probe->gapInstrs);
        }
    EXPECT_TRUE(saw_gap);
}

TEST(AttackPatterns, EvaderPacesItsLap)
{
    const AttackPatternSpec *evader = findAttackPattern("evader-nbl");
    ASSERT_NE(evader, nullptr);
    AddressMapper mapper(DramOrg::paperConfig(), MapScheme::kMop);
    AttackEnv env;        // nBL = 512 -> budget 448 acts per 1.6M window
    PatternTrace t(*evader, mapper, env);
    // One lap must take at least windowCycles / budget core cycles per
    // row it revisits: sum of (bubbles + 1) / issueWidth >= spacing.
    std::uint64_t instrs = 0;
    for (const TraceEntry &e : t.lap())
        instrs += e.bubbles + 1;
    std::uint64_t budget = static_cast<std::uint64_t>(
        evader->budgetFracNBL * env.nBL);
    EXPECT_GE(instrs / env.issueWidth,
              static_cast<std::uint64_t>(env.windowCycles) / budget);
}

TEST(AttackPatterns, MakeTraceRoundTripsPatternApps)
{
    AddressMapper mapper(DramOrg::paperConfig(), MapScheme::kMop);
    AttackEnv env;
    auto t = makeTrace(attackPatternApp("nsided-8"), 0, 8, mapper, 1,
                       AttackParams{}, &env);
    TraceEntry e;
    ASSERT_TRUE(t->next(e));
    EXPECT_TRUE(e.bypassCache);
    EXPECT_TRUE(isAttackApp(attackPatternApp("nsided-8")));
    EXPECT_TRUE(isAttackApp(kAttackAppName));
    EXPECT_FALSE(isAttackApp("429.mcf"));
}

TEST(AttackPatternsDeath, UnknownPatternAndMissingEnvFailLoudly)
{
    AddressMapper mapper(DramOrg::paperConfig(), MapScheme::kMop);
    AttackEnv env;
    EXPECT_DEATH((void)makeTrace("attack:no-such", 0, 8, mapper, 1,
                                 AttackParams{}, &env),
                 "unknown attack pattern");
    EXPECT_DEATH((void)makeTrace(attackPatternApp("nsided-8"), 0, 8,
                                 mapper, 1, AttackParams{}, nullptr),
                 "AttackEnv");
}

TEST(AttackEnvelope, HoldsAtScaleOneWindow)
{
    for (const auto &spec : attackPatternCatalog())
        expectEnvelopeHolds(spec, 1.0);
}

TEST(AttackEnvelope, HoldsAtScaleFourWindow)
{
    // --scale 4 widens the window by windowMultiplier(4) = 8 and the
    // thresholds with it (see bench_util.hh); patterns re-pace
    // themselves against the bigger window.
    for (const auto &spec : attackPatternCatalog())
        expectEnvelopeHolds(spec, 8.0);
}

} // namespace
} // namespace bh
