/**
 * @file
 * Event-skipping equivalence and large-organization regression tests.
 *
 * Event skipping must be bit-compatible with cycle-by-cycle simulation:
 * every RunResult field of a skipping run equals the reference run, and
 * SkipMode::kVerify (cycle-by-cycle execution that asserts every skip
 * claim) must complete without tripping. The scheduler must also handle
 * organizations with more than 64 flat banks, which used to hit a
 * stack-array panic.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace bh
{
namespace
{

ExperimentConfig
shortConfig(const std::string &mechanism)
{
    ExperimentConfig cfg;
    cfg.mechanism = mechanism;
    cfg.nRH = 512;
    cfg.refwMs = 0.25;
    cfg.warmupCycles = 60'000;
    cfg.runCycles = 160'000;
    cfg.threads = 4;
    cfg.attack.numBanks = 8;
    return cfg;
}

MixSpec
attackMix()
{
    MixSpec mix;
    mix.name = "attack";
    mix.apps = {kAttackAppName, "429.mcf", "450.soplex", "462.libquantum"};
    return mix;
}

MixSpec
benignMix()
{
    MixSpec mix;
    mix.name = "benign";
    mix.apps = {"429.mcf", "462.libquantum", "444.namd", "473.astar"};
    return mix;
}

void
expectEqualResults(const RunResult &a, const RunResult &b)
{
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_DOUBLE_EQ(a.ipc[i], b.ipc[i]) << "thread " << i;
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.bitFlips, b.bitFlips);
    EXPECT_EQ(a.maxRowActs, b.maxRowActs);
    EXPECT_EQ(a.demandActs, b.demandActs);
    EXPECT_EQ(a.blockedActs, b.blockedActs);
    EXPECT_EQ(a.victimRefreshes, b.victimRefreshes);
    EXPECT_EQ(a.rowHits, b.rowHits);
    EXPECT_EQ(a.rowMisses, b.rowMisses);
    EXPECT_EQ(a.rowConflicts, b.rowConflicts);
}

void
expectSkipEquivalence(const std::string &mechanism, const MixSpec &mix)
{
    ExperimentConfig ref = shortConfig(mechanism);
    ref.skip = SkipMode::kCycleByCycle;
    ExperimentConfig fast = shortConfig(mechanism);
    fast.skip = SkipMode::kEventSkip;
    RunResult a = runExperiment(ref, mix);
    RunResult b = runExperiment(fast, mix);
    expectEqualResults(a, b);
}

TEST(EventSkip, BitCompatibleOnAttackBlockHammer)
{
    expectSkipEquivalence("BlockHammer", attackMix());
}

TEST(EventSkip, BitCompatibleOnAttackBaseline)
{
    expectSkipEquivalence("Baseline", attackMix());
}

TEST(EventSkip, BitCompatibleOnBenignGraphene)
{
    expectSkipEquivalence("Graphene", benignMix());
}

TEST(EventSkip, BitCompatibleOnAttackPara)
{
    expectSkipEquivalence("PARA", attackMix());
}

TEST(EventSkip, VerifyModeAssertsEveryClaim)
{
    // kVerify panics (aborting the test) on any wrong skip claim.
    ExperimentConfig cfg = shortConfig("BlockHammer");
    cfg.skip = SkipMode::kVerify;
    RunResult res = runExperiment(cfg, attackMix());
    EXPECT_GT(res.demandActs, 0u);
}

TEST(EventSkip, ActuallySkipsOnThrottledAttack)
{
    ExperimentConfig cfg = shortConfig("BlockHammer");
    auto system = buildSystem(cfg, attackMix());
    system->run(cfg.warmupCycles + cfg.runCycles);
    EXPECT_GT(system->skippedCycles(), 0u);
}

TEST(LargeOrg, EightRankDdr4RunsWithoutPanic)
{
    // 8 ranks x 16 banks = 128 flat banks: over the old kMaxBanks=64
    // stack-array limit that panicked. The scheduler now sizes its state
    // from the device.
    SystemConfig sys_cfg;
    sys_cfg.threads = 2;
    sys_cfg.mem.org.ranks = 8;
    ASSERT_GT(sys_cfg.mem.org.banksPerChannel(), 64u);
    sys_cfg.mem.enableHammerObserver = false;

    auto system = std::make_unique<System>(
        sys_cfg, std::make_unique<NullMitigation>());
    for (unsigned t = 0; t < sys_cfg.threads; ++t) {
        auto trace = makeTrace("429.mcf", t, sys_cfg.threads,
                               system->mem().mapper(), 7, AttackParams{});
        system->setTrace(t, std::move(trace));
    }
    system->run(100'000);
    EXPECT_GT(system->core(0).retired(), 0u);
    EXPECT_GT(system->mem().controller().demandActivations(), 0u);
}

} // namespace
} // namespace bh
