/**
 * @file
 * Tests for the workload layer: synthetic traces, the Table 8 catalog,
 * attack generators, and mix composition.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/mixes.hh"

namespace bh
{
namespace
{

TEST(Catalog, HasThirtyApps)
{
    EXPECT_EQ(appCatalog().size(), 30u);
}

TEST(Catalog, CategoryCountsMatchPaper)
{
    // Table 8: 12 L, 9 M, 9 H applications.
    EXPECT_EQ(appsInCategory('L').size(), 12u);
    EXPECT_EQ(appsInCategory('M').size(), 9u);
    EXPECT_EQ(appsInCategory('H').size(), 9u);
}

TEST(Catalog, LookupByName)
{
    auto mcf = findApp("429.mcf");
    ASSERT_TRUE(mcf.has_value());
    EXPECT_EQ(mcf->category, 'H');
    EXPECT_NEAR(mcf->paperRbcpki, 62.3, 0.01);
    EXPECT_FALSE(findApp("no-such-app").has_value());
}

TEST(Catalog, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &app : appCatalog())
        EXPECT_TRUE(names.insert(app.params.name).second)
            << app.params.name;
}

TEST(Catalog, IoAppsBypassCache)
{
    for (const char *name : {"ycsb.A", "movnti.colmaj", "freescale1"}) {
        auto app = findApp(name);
        ASSERT_TRUE(app.has_value()) << name;
        EXPECT_TRUE(app->params.bypassCache) << name;
    }
    EXPECT_FALSE(findApp("429.mcf")->params.bypassCache);
}

TEST(SynthTrace, DeterministicAndResettable)
{
    SynthParams p = findApp("450.soplex")->params;
    SynthTrace a(p, 99, 0), b(p, 99, 0);
    for (int i = 0; i < 100; ++i) {
        TraceEntry ea, eb;
        ASSERT_TRUE(a.next(ea));
        ASSERT_TRUE(b.next(eb));
        EXPECT_EQ(ea.addr, eb.addr);
        EXPECT_EQ(ea.bubbles, eb.bubbles);
    }
    TraceEntry first;
    a.reset();
    ASSERT_TRUE(a.next(first));
    SynthTrace c(p, 99, 0);
    TraceEntry ec;
    c.next(ec);
    EXPECT_EQ(first.addr, ec.addr);
}

TEST(SynthTrace, AddressesStayInWorkingSetSlice)
{
    SynthParams p = findApp("444.namd")->params;
    const Addr base = 1ull << 30;
    SynthTrace t(p, 3, base);
    for (int i = 0; i < 2000; ++i) {
        TraceEntry e;
        t.next(e);
        EXPECT_GE(e.addr, base);
        EXPECT_LT(e.addr, base + p.workingSetBytes + kLineBytes);
    }
}

TEST(SynthTrace, MeanBubblesTrackSpacing)
{
    SynthParams p;
    p.memSpacing = 50.0;
    p.workingSetBytes = 1 << 20;
    p.rowRunLines = 4;
    SynthTrace t(p, 5, 0);
    double total = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        TraceEntry e;
        t.next(e);
        total += e.bubbles + 1;     // +1 for the memory op itself
    }
    EXPECT_NEAR(total / n, 50.0, 2.5);
}

TEST(SynthTrace, RowRunsAreSequential)
{
    SynthParams p;
    p.memSpacing = 10;
    p.workingSetBytes = 1 << 24;
    p.rowRunLines = 8;
    SynthTrace t(p, 7, 0);
    TraceEntry prev;
    t.next(prev);
    int sequential = 0;
    for (int i = 1; i < 800; ++i) {
        TraceEntry e;
        t.next(e);
        if (e.addr == prev.addr + kLineBytes)
            ++sequential;
        prev = e;
    }
    // 7 of every 8 steps are sequential within a run.
    EXPECT_NEAR(sequential / 800.0, 7.0 / 8.0, 0.05);
}

TEST(SynthTrace, WriteFractionRespected)
{
    SynthParams p;
    p.memSpacing = 5;
    p.writeFrac = 0.3;
    p.workingSetBytes = 1 << 20;
    SynthTrace t(p, 9, 0);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        TraceEntry e;
        t.next(e);
        writes += e.isWrite;
    }
    EXPECT_NEAR(writes / static_cast<double>(n), 0.3, 0.02);
}

class AttackTraceTest : public ::testing::Test
{
  protected:
    AttackTraceTest()
        : mapper(DramOrg::paperConfig(), MapScheme::kMop)
    {
    }

    AddressMapper mapper;
};

TEST_F(AttackTraceTest, DoubleSidedAlternatesAggressors)
{
    AttackParams p;
    p.kind = AttackParams::Kind::kDoubleSided;
    p.numBanks = 4;
    p.victimRow = 1000;
    AttackTrace t(p, mapper);
    ASSERT_EQ(t.aggressorRows().size(), 2u);
    EXPECT_EQ(t.aggressorRows()[0], 999u);
    EXPECT_EQ(t.aggressorRows()[1], 1001u);

    // Per bank, the row sequence must strictly alternate 999/1001.
    std::map<unsigned, std::vector<RowId>> per_bank;
    for (int i = 0; i < 64; ++i) {
        TraceEntry e;
        t.next(e);
        EXPECT_TRUE(e.bypassCache);
        EXPECT_EQ(e.bubbles, 0u);
        DramCoord c = mapper.decode(e.addr);
        per_bank[c.flatBank(mapper.organization())].push_back(c.row);
    }
    EXPECT_EQ(per_bank.size(), 4u);
    for (const auto &[bank, rows] : per_bank) {
        for (std::size_t i = 1; i < rows.size(); ++i)
            EXPECT_NE(rows[i], rows[i - 1]) << "bank " << bank;
    }
}

TEST_F(AttackTraceTest, SingleSidedUsesOneRow)
{
    AttackParams p;
    p.kind = AttackParams::Kind::kSingleSided;
    p.numBanks = 2;
    AttackTrace t(p, mapper);
    EXPECT_EQ(t.aggressorRows().size(), 1u);
    std::set<RowId> rows;
    for (int i = 0; i < 16; ++i) {
        TraceEntry e;
        t.next(e);
        rows.insert(mapper.decode(e.addr).row);
    }
    EXPECT_EQ(rows.size(), 1u);
}

TEST_F(AttackTraceTest, ManySidedSurroundsVictim)
{
    AttackParams p;
    p.kind = AttackParams::Kind::kManySided;
    p.sides = 4;
    p.victimRow = 2000;
    p.numBanks = 1;
    AttackTrace t(p, mapper);
    std::set<RowId> rows(t.aggressorRows().begin(),
                         t.aggressorRows().end());
    EXPECT_EQ(rows.size(), 4u);
    EXPECT_TRUE(rows.count(1999) && rows.count(2001));
    EXPECT_TRUE(rows.count(1998) && rows.count(2002));
}

TEST_F(AttackTraceTest, TargetsRequestedBanks)
{
    AttackParams p;
    p.numBanks = 3;
    p.firstBank = 5;
    AttackTrace t(p, mapper);
    std::set<unsigned> banks;
    for (int i = 0; i < 30; ++i) {
        TraceEntry e;
        t.next(e);
        banks.insert(mapper.decode(e.addr).flatBank(mapper.organization()));
    }
    EXPECT_EQ(banks, (std::set<unsigned>{5, 6, 7}));
}

TEST(Mixes, BenignMixesHaveNoAttack)
{
    auto mixes = makeBenignMixes(10, 1);
    EXPECT_EQ(mixes.size(), 10u);
    for (const auto &mix : mixes) {
        EXPECT_EQ(mix.apps.size(), 8u);
        EXPECT_FALSE(mix.hasAttack());
        for (const auto &app : mix.apps)
            EXPECT_TRUE(findApp(app).has_value()) << app;
    }
}

TEST(Mixes, AttackMixesHaveExactlyOneAttack)
{
    auto mixes = makeAttackMixes(10, 1);
    for (const auto &mix : mixes) {
        int attacks = 0;
        for (const auto &app : mix.apps)
            attacks += (app == kAttackAppName);
        EXPECT_EQ(attacks, 1);
        EXPECT_TRUE(mix.hasAttack());
        EXPECT_EQ(mix.apps[mix.attackSlot()], kAttackAppName);
    }
}

TEST(Mixes, SeededReproducibly)
{
    auto a = makeBenignMixes(5, 77);
    auto b = makeBenignMixes(5, 77);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(a[i].apps, b[i].apps);
    auto c = makeBenignMixes(5, 78);
    bool any_diff = false;
    for (unsigned i = 0; i < 5; ++i)
        any_diff |= (a[i].apps != c[i].apps);
    EXPECT_TRUE(any_diff);
}

TEST(Mixes, MakeTraceSlicesAddressSpace)
{
    AddressMapper mapper(DramOrg::paperConfig(), MapScheme::kMop);
    auto t0 = makeTrace("429.mcf", 0, 8, mapper, 1);
    auto t7 = makeTrace("429.mcf", 7, 8, mapper, 1);
    Addr slice = DramOrg::paperConfig().totalBytes() / 8;
    for (int i = 0; i < 200; ++i) {
        TraceEntry e0, e7;
        t0->next(e0);
        t7->next(e7);
        EXPECT_LT(e0.addr, slice);
        EXPECT_GE(e7.addr, 7 * slice);
    }
}

TEST(Mixes, MakeTraceBuildsAttack)
{
    AddressMapper mapper(DramOrg::paperConfig(), MapScheme::kMop);
    auto t = makeTrace(kAttackAppName, 0, 8, mapper, 1);
    TraceEntry e;
    ASSERT_TRUE(t->next(e));
    EXPECT_TRUE(e.bypassCache);
}

} // namespace
} // namespace bh
