/**
 * @file
 * Unit tests for the six baseline mitigation mechanisms, driven through a
 * recording stub controller.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/log.hh"
#include "mem/controller.hh"
#include "mitigations/cbt.hh"
#include "mitigations/graphene.hh"
#include "mitigations/mrloc.hh"
#include "mitigations/para.hh"
#include "mitigations/prohit.hh"
#include "mitigations/twice.hh"
#include "sim/experiment.hh"

namespace bh
{
namespace
{

/** Records victim refreshes that mechanisms schedule. */
class RecordingController
{
  public:
    RecordingController()
        : timings(DramTimings::ddr4()),
          dev(DramOrg::paperConfig(), timings), nullMitig(),
          ctrl(dev, ControllerConfig{}, nullMitig, nullptr, nullptr)
    {
    }

    DramTimings timings;
    DramDevice dev;
    NullMitigation nullMitig;
    MemController ctrl;
};

MitigationSettings
tinySettings(std::uint32_t n_rh = 1024)
{
    MitigationSettings s;
    s.nRH = n_rh;
    s.blastRadius = 1;
    s.timings = DramTimings::ddr4();
    s.banks = 16;
    s.rowsPerBank = 65536;
    s.threads = 8;
    s.seed = 7;
    return s;
}

TEST(Para, ProbabilityForPaperThreshold)
{
    // (1 - p/2)^16384 <= 1e-15  =>  p ~ 0.0042 for N_RH* = 16K.
    double p = Para::solveProbability(16384);
    EXPECT_NEAR(p, 0.0042, 0.0004);
    EXPECT_NEAR(std::pow(1.0 - p / 2.0, 16384), 1e-15, 1e-16);
}

TEST(Para, ProbabilityGrowsAsThresholdShrinks)
{
    EXPECT_GT(Para::solveProbability(512), Para::solveProbability(16384));
    EXPECT_LE(Para::solveProbability(2), 1.0);
}

TEST(Para, RefreshRateMatchesProbability)
{
    RecordingController rc;
    Para para(tinySettings(4096));
    para.setController(&rc.ctrl);
    const int acts = 50000;
    for (int i = 0; i < acts; ++i)
        para.onActivate(i % 16, 1000 + (i % 7), 0, i);
    double rate = static_cast<double>(para.refreshesIssued()) / acts;
    EXPECT_NEAR(rate, para.probability(), 0.15 * para.probability());
}

TEST(Para, RefreshTargetsNeighbors)
{
    RecordingController rc;
    Para para(tinySettings(64));    // high probability
    para.setController(&rc.ctrl);
    for (int i = 0; i < 100; ++i)
        para.onActivate(3, 500, 0, i);
    EXPECT_GT(rc.ctrl.pendingVictimRefreshes(), 0u);
}

TEST(Prohit, InsertionIsProbabilistic)
{
    RecordingController rc;
    Prohit ph(tinySettings());
    ph.setController(&rc.ctrl);
    // One activation rarely inserts (p = 1/16); hammering inserts surely.
    for (int i = 0; i < 200; ++i)
        ph.onActivate(0, 42, 0, i);
    ph.onAutoRefresh(0, 8, 1000);
    // Row 42 should have reached the hot queue and its neighbors been
    // refreshed.
    EXPECT_GE(ph.refreshesIssued(), 2u);
}

TEST(Prohit, HotQueueServedOnRefresh)
{
    RecordingController rc;
    Prohit ph(tinySettings());
    ph.setController(&rc.ctrl);
    for (int i = 0; i < 500; ++i)
        ph.onActivate(1, 77, 0, i);
    auto before = rc.ctrl.pendingVictimRefreshes();
    ph.onAutoRefresh(0, 8, 1000);
    EXPECT_GT(rc.ctrl.pendingVictimRefreshes(), before);
}

TEST(MrLoc, LocalityRaisesProbability)
{
    // A hammered victim (high locality) should be refreshed much more
    // often than PARA's base rate.
    RecordingController rc;
    MrLoc ml(tinySettings(8192));
    ml.setController(&rc.ctrl);
    const int acts = 20000;
    for (int i = 0; i < acts; ++i)
        ml.onActivate(0, 1000, 0, i);   // always the same aggressor
    double rate = static_cast<double>(ml.refreshesIssued()) / acts;
    EXPECT_GT(rate, ml.baseProbability());
}

TEST(MrLoc, ColdVictimsGetBaseRate)
{
    RecordingController rc;
    MrLoc ml(tinySettings(8192));
    ml.setController(&rc.ctrl);
    const int acts = 40000;
    for (int i = 0; i < acts; ++i)
        ml.onActivate(i % 16, (i * 37) % 60000, 0, i);  // no locality
    double rate = static_cast<double>(ml.refreshesIssued()) / acts;
    EXPECT_NEAR(rate, ml.baseProbability(), 0.4 * ml.baseProbability());
}

TEST(Cbt, ThresholdLadderDoublesPerLevel)
{
    Cbt cbt(tinySettings(32768));
    const auto &thr = cbt.thresholds();
    ASSERT_EQ(thr.size(), 6u);
    for (std::size_t l = 1; l < thr.size(); ++l)
        EXPECT_EQ(thr[l], thr[l - 1] * 2);
    // Leaf threshold = effective budget / 2 = 32768/2/2.
    EXPECT_EQ(thr.back(), 8192u);
}

TEST(Cbt, AutoDepthGrowsAtLowerThresholds)
{
    Cbt big(tinySettings(32768));
    Cbt small(tinySettings(1024));
    EXPECT_GT(small.thresholds().size(), big.thresholds().size());
}

TEST(Cbt, HammeredRegionGetsRefreshed)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(1024);
    Cbt cbt(s);
    cbt.setController(&rc.ctrl);
    for (int i = 0; i < 20000; ++i)
        cbt.onActivate(0, 4096, 0, i);
    EXPECT_GT(cbt.regionRefreshes(), 0u);
    EXPECT_GT(cbt.rowsRefreshed(), 0u);
}

TEST(Cbt, SpreadAccessesDoNotTriggerRefreshes)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(32768);
    Cbt cbt(s);
    cbt.setController(&rc.ctrl);
    // Benign-like: 100K activations spread across the whole bank.
    Rng rng(5);
    for (int i = 0; i < 100000; ++i)
        cbt.onActivate(0, static_cast<RowId>(rng.below(65536)), 0, i);
    EXPECT_EQ(cbt.regionRefreshes(), 0u);
}

TEST(Cbt, WindowResetCollapsesTree)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(1024);
    Cbt cbt(s);
    cbt.setController(&rc.ctrl);
    for (int i = 0; i < 5000; ++i)
        cbt.onActivate(0, 4096, 0, i);
    auto before = cbt.regionRefreshes();
    cbt.tick(s.timings.tREFW + 1);
    // After the reset the same row must climb the ladder again from zero.
    for (int i = 0; i < 100; ++i)
        cbt.onActivate(0, 4096, 0, i);
    EXPECT_EQ(cbt.regionRefreshes(), before);
}

TEST(Twice, RefreshesNeighborsAtThreshold)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(1024);
    Twice tw(s);
    tw.setController(&rc.ctrl);
    EXPECT_EQ(tw.refreshThreshold(), 256u);     // effN/2 = 512/2
    for (unsigned i = 0; i < tw.refreshThreshold(); ++i)
        tw.onActivate(0, 100, 0, i);
    EXPECT_EQ(tw.refreshesIssued(), 2u);        // rows 99 and 101
    EXPECT_EQ(rc.ctrl.pendingVictimRefreshes(), 2u);
}

TEST(Twice, PruningDropsSlowRows)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(1024);
    Twice tw(s);
    tw.setController(&rc.ctrl);
    // One activation, then many pruning intervals: entry must go.
    tw.onActivate(0, 100, 0, 0);
    EXPECT_EQ(tw.tableEntries(), 1u);
    for (int i = 0; i < 50; ++i)
        tw.onAutoRefresh(0, 8, i);
    EXPECT_EQ(tw.tableEntries(), 0u);
    EXPECT_GT(tw.pruned(), 0u);
}

TEST(Twice, FastRowSurvivesPruning)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(1024);
    Twice tw(s);
    tw.setController(&rc.ctrl);
    // Activate at a pace well above the pruning threshold.
    for (int interval = 0; interval < 10; ++interval) {
        for (int i = 0; i < 20; ++i)
            tw.onActivate(0, 100, 0, interval * 100 + i);
        tw.onAutoRefresh(0, 8, interval);
        if (tw.refreshesIssued() > 0)
            break;  // reached the refresh threshold already
        EXPECT_EQ(tw.tableEntries(), 1u) << "interval " << interval;
    }
}

TEST(Twice, PeakOccupancyTracked)
{
    RecordingController rc;
    Twice tw(tinySettings(32768));
    tw.setController(&rc.ctrl);
    for (int r = 0; r < 100; ++r)
        tw.onActivate(0, static_cast<RowId>(r), 0, r);
    EXPECT_GE(tw.peakTableEntries(), 100u);
}

TEST(Graphene, TableSizeFollowsMisraGries)
{
    MitigationSettings s = tinySettings(32768);
    Graphene g(s);
    // W = tREFW / tRC, T = effN/2 = 8K: N = ceil(W/T) + 1.
    auto w = static_cast<double>(s.timings.tREFW) / s.timings.tRC;
    EXPECT_NEAR(g.tableSize(), w / 8192.0 + 1.5, 2.0);
    EXPECT_EQ(g.threshold(), 8192u);
}

TEST(Graphene, HotRowTriggersPeriodicRefreshes)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(1024);
    Graphene g(s);
    g.setController(&rc.ctrl);
    // T = 256: 1024 activations => 4 trigger points x 2 neighbors.
    for (int i = 0; i < 1024; ++i)
        g.onActivate(0, 500, 0, i);
    EXPECT_EQ(g.refreshesIssued(), 8u);
}

TEST(Graphene, MisraGriesNeverMissesFrequentRow)
{
    // Core Misra-Gries guarantee: any row activated more than T times in
    // the window triggers at least one refresh, regardless of how much
    // other traffic floods the table.
    RecordingController rc;
    MitigationSettings s = tinySettings(1024);
    Graphene g(s);
    g.setController(&rc.ctrl);
    Rng rng(11);
    unsigned hot_acts = 0;
    for (int i = 0; i < 200000; ++i) {
        if (i % 100 == 0) {
            g.onActivate(0, 777, 0, i);     // hot row, 1% of traffic
            ++hot_acts;
        } else {
            g.onActivate(0, static_cast<RowId>(rng.below(60000)), 0, i);
        }
    }
    ASSERT_GT(hot_acts, g.threshold());
    EXPECT_GT(g.refreshesIssued(), 0u);
}

TEST(Graphene, WindowResetClearsCounts)
{
    RecordingController rc;
    MitigationSettings s = tinySettings(1024);
    Graphene g(s);
    g.setController(&rc.ctrl);
    for (int i = 0; i < 200; ++i)
        g.onActivate(0, 500, 0, i);
    g.tick(s.timings.tREFW + 1);
    auto before = g.refreshesIssued();
    for (int i = 0; i < 200; ++i)
        g.onActivate(0, 500, 0, i);
    // 200 + 200 < 2T after reset: no new trigger from stale counts.
    EXPECT_EQ(g.refreshesIssued(), before);
}

/**
 * End-to-end MRLoc run under an active RowHammer attack (folded in from
 * the examples/_dbg_mrloc.cc debug scratch): the full system must keep
 * the victim-refresh pipeline draining and the hammer observer clean.
 */
TEST(MrLoc, FullSystemAttackRunDrainsVictimRefreshes)
{
    setVerbose(false);
    ExperimentConfig cfg;
    cfg.mechanism = "MRLoc";
    cfg.threads = 4;
    cfg.nRH = 512;
    cfg.refwMs = 0.25;
    cfg.warmupCycles = 100000;
    cfg.runCycles = 700000;
    cfg.attack.numBanks = 4;

    MixSpec mix;
    mix.name = "am";
    mix.apps = {kAttackAppName, "444.namd", "435.gromacs", "456.hmmer"};
    auto sys = buildSystem(cfg, mix);
    sys->run(cfg.warmupCycles + cfg.runCycles);

    auto *observer = sys->mem().hammerObserver();
    ASSERT_NE(observer, nullptr);
    // The attack thread must actually hammer...
    EXPECT_GT(observer->activationCount(), 1000u);
    EXPECT_GT(observer->maxRowActivations(), cfg.nRH / 2);
    // ...and MRLoc must respond with victim refreshes that keep the
    // pending queue bounded (the erase path drains what it schedules).
    EXPECT_GT(sys->mem().controller().victimRefreshesDone(), 0u);
    EXPECT_LT(sys->mem().controller().pendingVictimRefreshes(), 100u);
    // No bit flip may slip through at this threshold.
    EXPECT_EQ(observer->bitFlips().size(), 0u);
}

} // namespace
} // namespace bh
