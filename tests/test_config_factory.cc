/**
 * @file
 * Tests for the configuration surfaces: the mitigation factory, experiment
 * configuration derivation, the LPDDR4 timing variant (Section 3.1.3's
 * "tuning for different DRAM standards"), and configuration validation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/hwcost.hh"
#include "blockhammer/blockhammer.hh"
#include "mitigations/abacus.hh"
#include "mitigations/breakhammer.hh"
#include "mitigations/dapper.hh"
#include "mitigations/factory.hh"
#include "mitigations/prohit.hh"
#include "sim/experiment.hh"

namespace bh
{
namespace
{

TEST(Factory, ConstructsEveryListedMechanism)
{
    MitigationSettings s;
    for (const auto &name : mitigationNames()) {
        auto mech = makeMitigation(name, s);
        ASSERT_NE(mech, nullptr) << name;
        EXPECT_FALSE(mech->name().empty()) << name;
    }
}

TEST(Factory, PaperMechanismsAreSevenInFigureOrder)
{
    const auto &mechs = paperMechanisms();
    ASSERT_EQ(mechs.size(), 7u);
    EXPECT_EQ(mechs.front(), "PARA");
    EXPECT_EQ(mechs.back(), "BlockHammer");
}

TEST(Factory, ObserveVariantIsObserveOnly)
{
    MitigationSettings s;
    auto mech = makeMitigation("BlockHammer-Observe", s);
    auto *bh = dynamic_cast<BlockHammer *>(mech.get());
    ASSERT_NE(bh, nullptr);
    EXPECT_TRUE(bh->config().observeOnly);

    auto full = makeMitigation("BlockHammer", s);
    auto *bh_full = dynamic_cast<BlockHammer *>(full.get());
    ASSERT_NE(bh_full, nullptr);
    EXPECT_FALSE(bh_full->config().observeOnly);
}

TEST(Factory, SettingsPropagateToBlockHammer)
{
    MitigationSettings s;
    s.nRH = 4096;
    s.threads = 4;
    s.seed = 99;
    auto mech = makeMitigation("BlockHammer", s);
    auto *bh = dynamic_cast<BlockHammer *>(mech.get());
    ASSERT_NE(bh, nullptr);
    EXPECT_EQ(bh->config().nRH, 4096u);
    EXPECT_EQ(bh->config().threads, 4u);
    EXPECT_EQ(bh->config().seed, 99u);
}

TEST(Factory, ZooMechanismsAppendAfterFrozenPaperSet)
{
    // The zoo list is the factory-derived source of truth for sweep
    // grids; its order is pinned because cell indices derive from it.
    const auto &zoo = zooMechanisms();
    ASSERT_EQ(zoo.size(), 3u);
    EXPECT_EQ(zoo[0], "ABACuS");
    EXPECT_EQ(zoo[1], "DAPPER");
    EXPECT_EQ(zoo[2], "BreakHammer+Graphene");
    // Every zoo name is constructible and listed in mitigationNames().
    const auto &all = mitigationNames();
    for (const auto &name : zoo)
        EXPECT_NE(std::find(all.begin(), all.end(), name), all.end())
            << name;
}

TEST(Factory, ConstructsZooWithExpectedTypes)
{
    MitigationSettings s;
    EXPECT_NE(dynamic_cast<Abacus *>(makeMitigation("ABACuS", s).get()),
              nullptr);
    EXPECT_NE(dynamic_cast<Dapper *>(makeMitigation("DAPPER", s).get()),
              nullptr);
    auto bkh = makeMitigation("BreakHammer+Graphene", s);
    auto *w = dynamic_cast<BreakHammer *>(bkh.get());
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->baseMechanism().name(), "Graphene");
    // Composition recurses: any constructible mechanism can be a base.
    auto nested = makeMitigation("BreakHammer+ABACuS", s);
    auto *wn = dynamic_cast<BreakHammer *>(nested.get());
    ASSERT_NE(wn, nullptr);
    EXPECT_EQ(wn->baseMechanism().name(), "ABACuS");
}

TEST(FactoryDeath, UnknownNameIsFatal)
{
    MitigationSettings s;
    EXPECT_EXIT(makeMitigation("NoSuchMechanism", s),
                ::testing::ExitedWithCode(1), "unknown mitigation");
}

TEST(FactoryDeath, UnknownNameListsValidMechanisms)
{
    // The fatal must name the valid set: a typo'd config should tell
    // the user what would have worked.
    MitigationSettings s;
    EXPECT_EXIT(makeMitigation("NoSuchMechanism", s),
                ::testing::ExitedWithCode(1),
                "valid:.*Graphene.*BreakHammer");
}

TEST(FactoryDeath, UnknownBreakHammerBaseIsFatal)
{
    MitigationSettings s;
    EXPECT_EXIT(makeMitigation("BreakHammer+NoSuch", s),
                ::testing::ExitedWithCode(1), "unknown mitigation");
}

TEST(HwCostDeath, UnknownMechanismIsFatal)
{
    // A factory-registered mechanism missing from the cost model must
    // fail loudly, not produce a zero-cost Table 4 row.
    HwCostModel model;
    EXPECT_EXIT(model.costFor("NoSuchMechanism", 32768,
                              DramTimings::ddr4()),
                ::testing::ExitedWithCode(1), "no hardware cost model");
}

TEST(HwCost, ZooMechanismsHaveCostRows)
{
    HwCostModel model;
    auto t = DramTimings::ddr4();
    for (const auto &name : zooMechanisms()) {
        auto cost = model.costFor(name, 32768, t);
        ASSERT_TRUE(cost.has_value()) << name;
        EXPECT_GT(cost->areaMm2, 0.0) << name;
    }
    // The composition prices as base + throttler counters: strictly
    // more storage than the base alone, but only marginally.
    auto base = model.costFor("Graphene", 1024, t);
    auto composed = model.costFor("BreakHammer+Graphene", 1024, t);
    ASSERT_TRUE(base && composed);
    EXPECT_GT(composed->sramKiB, base->sramKiB);
    EXPECT_EQ(composed->camKiB, base->camKiB);
    // A composition over a fixed design point inherits its gap.
    EXPECT_FALSE(model.costFor("BreakHammer+PRoHIT", 1024, t).has_value());
}

TEST(NullMitigation, PermitsEverything)
{
    NullMitigation null;
    EXPECT_TRUE(null.isActSafe(0, 0, 0, 0));
    EXPECT_EQ(null.quota(0, 0), -1);
    EXPECT_EQ(null.name(), "Baseline");
}

TEST(ExperimentConfig, CompressedTimingsKeepPhysicalRefresh)
{
    ExperimentConfig cfg;
    cfg.refwMs = 0.5;
    DramTimings t = cfg.timings();
    DramTimings full = DramTimings::ddr4();
    // Window compressed; tREFI / tRFC stay physical (DESIGN.md).
    EXPECT_EQ(t.tREFW, nsToCycles(0.5e6));
    EXPECT_EQ(t.tREFI, full.tREFI);
    EXPECT_EQ(t.tRFC, full.tRFC);
    EXPECT_EQ(t.tRC, full.tRC);
}

TEST(ExperimentConfig, MitigationSettingsConsistent)
{
    ExperimentConfig cfg;
    cfg.nRH = 2048;
    cfg.threads = 4;
    MitigationSettings s = cfg.mitigationSettings();
    EXPECT_EQ(s.nRH, 2048u);
    EXPECT_EQ(s.threads, 4u);
    EXPECT_EQ(s.effectiveNRH(), 1024u);
    EXPECT_EQ(s.timings.tREFW, cfg.timings().tREFW);
}

TEST(ExperimentConfig, PaperScaleIsUncompressed)
{
    ExperimentConfig cfg = ExperimentConfig::paperScale();
    EXPECT_EQ(cfg.nRH, 32768u);
    EXPECT_EQ(cfg.timings().tREFW, DramTimings::ddr4().tREFW);
}

TEST(Lpddr4, HalvedWindowHalvesTdelay)
{
    // Section 3.1.3: "In LPDDR4, tREFW is halved, which allows a
    // reduction in tDelay".
    auto ddr4 = BlockHammerConfig::forThreshold(32768, DramTimings::ddr4());
    auto lp = BlockHammerConfig::forThreshold(32768, DramTimings::lpddr4());
    EXPECT_LT(lp.tDelay(), ddr4.tDelay());
    EXPECT_NEAR(static_cast<double>(lp.tDelay()),
                static_cast<double>(ddr4.tDelay()) / 2.0,
                static_cast<double>(ddr4.tDelay()) * 0.02);
    // And the history buffer shrinks with it.
    EXPECT_LT(lp.historyEntries(), ddr4.historyEntries());
}

TEST(ConfigDeath, OverlargeNblIsFatal)
{
    BlockHammerConfig cfg = BlockHammerConfig::forThreshold(
        32768, DramTimings::ddr4());
    cfg.nBL = cfg.nRHStar() + 1;    // no activation budget left
    EXPECT_EXIT(cfg.tDelay(), ::testing::ExitedWithCode(1), "invalid");
}

TEST(Config, BlastModelPresets)
{
    BlastModel ds = BlastModel::doubleSided();
    EXPECT_EQ(ds.radius, 1u);
    BlastModel wc = BlastModel::worstCase();
    EXPECT_EQ(wc.radius, 6u);
    EXPECT_DOUBLE_EQ(wc.impactBase, 0.5);
}

TEST(Config, ThrottlerMaxCoversWindowBudget)
{
    auto cfg = BlockHammerConfig::forThreshold(32768, DramTimings::ddr4());
    // Counter must be able to reach N_RH* x (tCBF / tREFW).
    EXPECT_EQ(cfg.throttlerCounterMax(), cfg.nRHStar());
}

TEST(Request, IdsAreUnique)
{
    std::uint64_t a = Request::nextId();
    std::uint64_t b = Request::nextId();
    EXPECT_NE(a, b);
}

TEST(MixSpec, AttackSlotReporting)
{
    MixSpec mix;
    mix.apps = {"444.namd", "429.mcf"};
    EXPECT_EQ(mix.attackSlot(), -1);
    EXPECT_FALSE(mix.hasAttack());
    mix.apps.push_back(kAttackAppName);
    EXPECT_EQ(mix.attackSlot(), 2);
}

TEST(ExperimentRun, ThreadCountMismatchIsFatal)
{
    ExperimentConfig cfg;
    cfg.threads = 4;
    MixSpec mix;
    mix.name = "short";
    mix.apps = {"444.namd"};
    EXPECT_EXIT(buildSystem(cfg, mix), ::testing::ExitedWithCode(1),
                "threads");
}

TEST(Prohit, PaperDefaultConstants)
{
    EXPECT_EQ(Prohit::kHotEntries, 4u);
    EXPECT_EQ(Prohit::kColdEntries, 4u);
    EXPECT_DOUBLE_EQ(Prohit::kInsertProb, 1.0 / 16.0);
}

TEST(Settings, EffectiveThresholdHalves)
{
    MitigationSettings s;
    s.nRH = 9999;
    EXPECT_EQ(s.effectiveNRH(), 4999u);
}

} // namespace
} // namespace bh
