/**
 * @file
 * Tests for src/common/stats: counter/scalar/histogram round-trips,
 * percentile edge cases (p <= 0, p >= 100, single sample), deterministic
 * seeded reservoir sampling, stable dump()/toJson() serialization, and
 * findHist constness.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace bh
{
namespace
{

TEST(Histogram, EmptyReturnsZeroEverywhere)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
    EXPECT_EQ(h.percentile(50), 0);
    EXPECT_EQ(h.percentile(0), 0);
    EXPECT_EQ(h.percentile(100), 0);
}

TEST(Histogram, SingleSampleIsEveryPercentile)
{
    Histogram h;
    h.add(42);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.mean(), 42.0);
    for (double p : {-10.0, 0.0, 1.0, 50.0, 99.9, 100.0, 200.0})
        EXPECT_EQ(h.percentile(p), 42) << "p=" << p;
}

TEST(Histogram, PercentileEdgesAreTrueMinAndMax)
{
    Histogram h;
    for (int v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0), 1);
    // Negative p must clamp to the minimum, not wrap through an
    // unsigned index (regression: it used to return the maximum).
    EXPECT_EQ(h.percentile(-5), 1);
    EXPECT_EQ(h.percentile(100), 100);
    EXPECT_EQ(h.percentile(1000), 100);
    // Interior percentiles are exact over the samples; the index
    // convention may land on either neighbor of the midpoint.
    EXPECT_GE(h.percentile(50), 50);
    EXPECT_LE(h.percentile(50), 51);
    EXPECT_EQ(h.min(), 1);
    EXPECT_EQ(h.max(), 100);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, ReservoirTracksExactMinMaxMeanBeyondCapacity)
{
    Histogram h(16, 7);
    for (int v = 0; v < 10000; ++v)
        h.add(v);
    // min/max/mean/count are exact even though only 16 samples are
    // retained; p <= 0 / p >= 100 report the true extremes even when
    // the reservoir dropped them.
    EXPECT_EQ(h.count(), 10000u);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 9999);
    EXPECT_DOUBLE_EQ(h.mean(), 4999.5);
    EXPECT_EQ(h.percentile(0), 0);
    EXPECT_EQ(h.percentile(100), 9999);
    // Interior percentiles are approximate but must come from retained
    // samples.
    std::int64_t p50 = h.percentile(50);
    EXPECT_GE(p50, 0);
    EXPECT_LE(p50, 9999);
}

TEST(Histogram, ReservoirIsDeterministicForEqualSeeds)
{
    Histogram a(32, 123), b(32, 123), c(32, 456);
    for (int v = 0; v < 5000; ++v) {
        a.add(v * 3);
        b.add(v * 3);
        c.add(v * 3);
    }
    // Same seed, same sample stream => identical retained subset, so
    // every percentile agrees bit-for-bit.
    bool differs_somewhere = false;
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
        EXPECT_EQ(a.percentile(p), b.percentile(p)) << "p=" << p;
        if (a.percentile(p) != c.percentile(p))
            differs_somewhere = true;
    }
    // A different seed retains a different subset (overwhelmingly
    // likely across 7 percentiles of 5000 dropped-sample candidates).
    EXPECT_TRUE(differs_somewhere);
}

TEST(Histogram, ReservoirRetainsSpreadNotJustOneSlot)
{
    // Regression: the old deterministic slot function always computed
    // slot 0, so the reservoir degenerated to samples[0] churn and
    // percentiles collapsed to the first retained values.
    Histogram h(64, 9);
    for (int v = 0; v < 100000; ++v)
        h.add(v);
    // With uniform replacement the median of retained samples must land
    // well inside the distribution, not at its very start.
    EXPECT_GT(h.percentile(50), 1000);
    EXPECT_LT(h.percentile(50), 99000);
}

TEST(Histogram, ClearResetsEverything)
{
    Histogram h(8, 1);
    for (int v = 0; v < 100; ++v)
        h.add(v);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
    EXPECT_EQ(h.percentile(50), 0);
    h.add(5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.percentile(50), 5);
}

TEST(Histogram, SummaryJsonHasFixedKeyOrder)
{
    Histogram h;
    h.add(1);
    h.add(2);
    h.add(3);
    Json j = h.summaryJson();
    std::vector<std::string> keys;
    for (const auto &kv : j.objectItems())
        keys.push_back(kv.first);
    std::vector<std::string> want = {"count", "mean", "min", "p50",
                                     "p90",   "p99",  "max"};
    EXPECT_EQ(keys, want);
    EXPECT_EQ(j["count"].asInt(), 3);
    EXPECT_EQ(j["min"].asInt(), 1);
    EXPECT_EQ(j["max"].asInt(), 3);
}

TEST(StatSet, CounterScalarHistRoundTrip)
{
    StatSet s;
    EXPECT_EQ(s.counter("untouched"), 0u);
    EXPECT_EQ(s.scalar("untouched"), 0.0);
    s.inc("a.count");
    s.inc("a.count", 9);
    s.set("b.gauge", 2.5);
    s.set("b.gauge", 3.5);   // overwrite, not accumulate
    s.sample("c.hist", 7);
    s.sample("c.hist", 9);
    EXPECT_EQ(s.counter("a.count"), 10u);
    EXPECT_EQ(s.scalar("b.gauge"), 3.5);
    EXPECT_EQ(s.hist("c.hist").count(), 2u);
    EXPECT_EQ(s.hist("c.hist").max(), 9);
}

TEST(StatSet, FindHistIsConstAndDoesNotCreate)
{
    StatSet s;
    s.sample("present", 1);
    const StatSet &cs = s;
    const Histogram *found = cs.findHist("present");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->count(), 1u);
    // Lookup of a missing name must not materialize an entry.
    EXPECT_EQ(cs.findHist("absent"), nullptr);
    EXPECT_EQ(cs.findHist("absent"), nullptr);
}

TEST(StatSet, BoundedHistOverloadKeepsFirstBounds)
{
    StatSet s;
    Histogram &h = s.hist("r", 4, 99);
    for (int v = 0; v < 100; ++v)
        h.add(v);
    EXPECT_EQ(h.count(), 100u);
    // Re-requesting with different bounds returns the existing
    // histogram unchanged.
    Histogram &again = s.hist("r", 1000, 5);
    EXPECT_EQ(&again, &h);
    EXPECT_EQ(again.count(), 100u);
}

TEST(StatSet, ClearEmptiesAllSections)
{
    StatSet s;
    s.inc("c");
    s.set("g", 1.0);
    s.sample("h", 1);
    s.clear();
    EXPECT_EQ(s.counter("c"), 0u);
    EXPECT_EQ(s.scalar("g"), 0.0);
    EXPECT_EQ(s.findHist("h"), nullptr);
    EXPECT_EQ(s.counters().size(), 0u);
    EXPECT_EQ(s.scalars().size(), 0u);
}

TEST(StatSet, DumpIsStableAndOrdered)
{
    StatSet a, b;
    // Insert in different orders; dump() must serialize identically.
    a.inc("z.second", 2);
    a.inc("a.first", 1);
    a.set("m.gauge", 0.5);
    a.sample("h.lat", 10);
    b.sample("h.lat", 10);
    b.set("m.gauge", 0.5);
    b.inc("a.first", 1);
    b.inc("z.second", 2);
    EXPECT_EQ(a.dump(), b.dump());
    // Counters come first and in lexicographic order.
    std::string d = a.dump();
    EXPECT_LT(d.find("a.first"), d.find("z.second"));
    EXPECT_LT(d.find("z.second"), d.find("m.gauge"));
    EXPECT_LT(d.find("m.gauge"), d.find("h.lat"));
}

TEST(StatSet, ToJsonRoundTripsThroughDumpAndParse)
{
    StatSet s;
    s.inc("acts", 3);
    s.set("rate", 0.25);
    s.sample("lat", 5);
    s.sample("lat", 15);
    Json j = s.toJson();
    EXPECT_EQ(j["counters"]["acts"].asInt(), 3);
    EXPECT_EQ(j["scalars"]["rate"].asDouble(), 0.25);
    EXPECT_EQ(j["hists"]["lat"]["count"].asInt(), 2);
    // Serialized bytes parse back to an equal document (the cell
    // payload round trip every stats snapshot takes).
    Json back;
    ASSERT_TRUE(Json::parse(j.dump(2), back));
    EXPECT_EQ(back.dump(2), j.dump(2));
    // Empty sections are omitted entirely.
    StatSet counters_only;
    counters_only.inc("n");
    Json co = counters_only.toJson();
    EXPECT_NE(co.find("counters"), nullptr);
    EXPECT_EQ(co.find("scalars"), nullptr);
    EXPECT_EQ(co.find("hists"), nullptr);
}

TEST(StatSet, EqualSetsSerializeToIdenticalBytes)
{
    StatSet a, b;
    for (int v = 0; v < 300; ++v) {
        a.hist("r", 16).add(v);
        b.hist("r", 16).add(v);
    }
    a.inc("k", 7);
    b.inc("k", 7);
    EXPECT_EQ(a.toJson().dump(), b.toJson().dump());
    EXPECT_EQ(a.dump(), b.dump());
}

} // namespace
} // namespace bh
