/**
 * @file
 * Tests for the shared LLC (hits, LRU, writebacks, MSHR merging) and the
 * trace-driven core model (issue/retire discipline, window limits).
 */

#include <gtest/gtest.h>

#include "core/core.hh"

namespace bh
{
namespace
{

MemSystemConfig
smallMemConfig()
{
    MemSystemConfig cfg;
    cfg.enableEnergy = false;
    cfg.enableHammerObserver = false;
    return cfg;
}

LlcConfig
tinyLlc()
{
    LlcConfig cfg;
    cfg.capacityBytes = 64 * 1024;  // 64 KB, 8-way, 128 sets
    return cfg;
}

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest()
        : mem(smallMemConfig(), std::make_unique<NullMitigation>()),
          llc(tinyLlc(), mem)
    {
    }

    void
    runFor(Cycle cycles)
    {
        for (Cycle end = now + cycles; now < end; ++now) {
            llc.tick(now);
            mem.tick(now);
        }
    }

    MemSystem mem;
    Llc llc;
    Cycle now = 0;
};

TEST_F(CacheTest, MissThenHit)
{
    auto done = std::make_shared<Cycle>(-1);
    auto res = llc.access(0x1000, false, 0, now,
                          [done](Cycle c) { *done = c; });
    EXPECT_EQ(res, LlcResult::kMiss);
    runFor(300);
    EXPECT_GE(*done, 0);

    auto hit_done = std::make_shared<Cycle>(-1);
    res = llc.access(0x1000, false, 0, now,
                     [hit_done](Cycle c) { *hit_done = c; });
    EXPECT_EQ(res, LlcResult::kHit);
    EXPECT_EQ(*hit_done, now + 20);     // default hit latency
}

TEST_F(CacheTest, MshrMergesSameLine)
{
    int completions = 0;
    auto cb = [&completions](Cycle) { ++completions; };
    EXPECT_EQ(llc.access(0x2000, false, 0, now, cb), LlcResult::kMiss);
    EXPECT_EQ(llc.access(0x2000, false, 1, now, cb), LlcResult::kMiss);
    EXPECT_EQ(llc.mshrsInUse(), 1u);    // merged
    runFor(300);
    EXPECT_EQ(completions, 2);
}

TEST_F(CacheTest, DirtyEvictionWritesBack)
{
    // Fill one set (8 ways) with dirty lines, then evict.
    // With 128 sets, addresses stride by 128*64 bytes stay in one set.
    const Addr stride = 128 * 64;
    for (int i = 0; i < 8; ++i) {
        llc.access(0x3000 + i * stride, true, 0, now, nullptr);
        runFor(300);
    }
    EXPECT_EQ(llc.writebacks(), 0u);
    llc.access(0x3000 + 8 * stride, true, 0, now, nullptr);
    runFor(300);
    EXPECT_EQ(llc.writebacks(), 1u);
}

TEST_F(CacheTest, LruEvictsOldest)
{
    const Addr stride = 128 * 64;
    for (int i = 0; i < 8; ++i) {
        llc.access(0x3000 + i * stride, false, 0, now, nullptr);
        runFor(300);
    }
    // Touch line 0 to refresh its recency, then insert a 9th line.
    llc.access(0x3000, false, 0, now, nullptr);
    llc.access(0x3000 + 8 * stride, false, 0, now, nullptr);
    runFor(300);
    // Line 0 must still hit; line 1 (LRU) must have been evicted.
    EXPECT_EQ(llc.access(0x3000, false, 0, now, nullptr), LlcResult::kHit);
    EXPECT_EQ(llc.access(0x3000 + stride, false, 0, now, nullptr),
              LlcResult::kMiss);
}

TEST_F(CacheTest, WriteMissAllocatesDirty)
{
    llc.access(0x4000, true, 0, now, nullptr);
    runFor(300);
    EXPECT_EQ(llc.misses(), 1u);
    // Evicting it later must produce a writeback (checked via set fill).
    const Addr stride = 128 * 64;
    for (int i = 1; i <= 8; ++i) {
        llc.access(0x4000 + i * stride, false, 0, now, nullptr);
        runFor(300);
    }
    EXPECT_EQ(llc.writebacks(), 1u);
}

TEST_F(CacheTest, PerThreadStats)
{
    llc.access(0x5000, false, 2, now, nullptr);
    runFor(300);
    llc.access(0x5000, false, 2, now, nullptr);
    EXPECT_EQ(llc.threadStats(2).accesses, 2u);
    EXPECT_EQ(llc.threadStats(2).misses, 1u);
    EXPECT_EQ(llc.threadStats(0).accesses, 0u);
}

TEST_F(CacheTest, MshrLimitRejects)
{
    LlcConfig cfg = tinyLlc();
    cfg.mshrs = 2;
    Llc small(cfg, mem);
    EXPECT_EQ(small.access(0x100000, false, 0, 0, nullptr), LlcResult::kMiss);
    EXPECT_EQ(small.access(0x200000, false, 0, 0, nullptr), LlcResult::kMiss);
    EXPECT_EQ(small.access(0x300000, false, 0, 0, nullptr),
              LlcResult::kReject);
}

/** Scripted trace source for core tests. */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<TraceEntry> entries)
        : list(std::move(entries))
    {
    }

    bool
    next(TraceEntry &entry) override
    {
        if (pos >= list.size())
            return false;
        entry = list[pos++];
        return true;
    }

    void reset() override { pos = 0; }

  private:
    std::vector<TraceEntry> list;
    std::size_t pos = 0;
};

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : mem(smallMemConfig(), std::make_unique<NullMitigation>())
    {
    }

    void
    runSystem(Core &core, Llc *llc, Cycle cycles)
    {
        for (Cycle c = 0; c < cycles; ++c) {
            core.tick(c);
            if (llc)
                llc->tick(c);
            mem.tick(c);
        }
    }

    MemSystem mem;
};

TEST_F(CoreTest, BubblesRetireAtIssueWidth)
{
    // 400 pure-compute instructions at 4-wide: ~100 cycles.
    VectorTrace trace({TraceEntry{400, false, false, false, 0}});
    CoreConfig cfg;
    Core core(cfg, 0, trace, nullptr, mem);
    runSystem(core, nullptr, 110);
    EXPECT_EQ(core.retired(), 400u);
    EXPECT_TRUE(core.done());
}

TEST_F(CoreTest, MemOpBlocksRetirementUntilDone)
{
    VectorTrace trace({TraceEntry{0, true, false, true, 0x100}});
    CoreConfig cfg;
    Core core(cfg, 0, trace, nullptr, mem);
    core.tick(0);
    EXPECT_EQ(core.retired(), 0u);
    runSystem(core, nullptr, 300);
    EXPECT_EQ(core.retired(), 1u);
    EXPECT_EQ(core.memOps(), 1u);
}

TEST_F(CoreTest, WindowLimitsOutstandingWork)
{
    // A trace of 1000 dependent-free bypass reads: the 128-entry window
    // and MSHR cap bound how far the core runs ahead.
    std::vector<TraceEntry> entries(
        1000, TraceEntry{0, true, false, true, 0});
    for (std::size_t i = 0; i < entries.size(); ++i)
        entries[i].addr = 0x100000 + i * kLineBytes;
    VectorTrace trace(std::move(entries));
    CoreConfig cfg;
    Core core(cfg, 0, trace, nullptr, mem);
    core.tick(0);
    core.tick(1);
    // Nothing retired yet, so issue stops at the MSHR cap.
    EXPECT_LE(core.memOps(), cfg.maxOutstandingMem);
}

TEST_F(CoreTest, PostedWritesDoNotBlock)
{
    std::vector<TraceEntry> entries(
        10, TraceEntry{0, true, true, true, 0x9000});
    VectorTrace trace(std::move(entries));
    CoreConfig cfg;
    Core core(cfg, 0, trace, nullptr, mem);
    runSystem(core, nullptr, 50);
    EXPECT_EQ(core.retired(), 10u);
}

TEST_F(CoreTest, CachedReadsGoThroughLlc)
{
    Llc llc(tinyLlc(), mem);
    std::vector<TraceEntry> entries(
        20, TraceEntry{0, true, false, false, 0x8000});
    VectorTrace trace(std::move(entries));
    CoreConfig cfg;
    Core core(cfg, 0, trace, &llc, mem);
    runSystem(core, &llc, 600);
    EXPECT_EQ(core.retired(), 20u);
    // All 20 accesses hit one line: whatever the MSHR-merge split between
    // "hit" and "merged miss", exactly one DRAM fill must be issued.
    EXPECT_EQ(llc.hits() + llc.misses(), 20u);
    EXPECT_EQ(mem.device().stats.counter("dram.rd"), 1u);
}

TEST_F(CoreTest, DoneAfterTraceEnds)
{
    VectorTrace trace({TraceEntry{4, false, false, false, 0}});
    CoreConfig cfg;
    Core core(cfg, 0, trace, nullptr, mem);
    runSystem(core, nullptr, 20);
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.retired(), 4u);
}

TEST_F(CoreTest, StallCyclesCountRejections)
{
    // Quota 0 blocks every submit: the core must record stalls.
    MemSystemConfig cfg = smallMemConfig();
    class ZeroQuota : public Mitigation
    {
      public:
        std::string name() const override { return "zero"; }
        int quota(ThreadId, unsigned) const override { return 0; }
    };
    MemSystem blocked_mem(cfg, std::make_unique<ZeroQuota>());
    VectorTrace trace({TraceEntry{0, true, false, true, 0x100}});
    CoreConfig core_cfg;
    Core core(core_cfg, 0, trace, nullptr, blocked_mem);
    for (Cycle c = 0; c < 100; ++c)
        core.tick(c);
    EXPECT_GT(core.stallCycles(), 90u);
    EXPECT_EQ(core.retired(), 0u);
}

} // namespace
} // namespace bh
