/**
 * @file
 * Randomized differential test for the incremental FR-FCFS scheduler:
 * the bucketed SchedQueue-based picks must match a reference copy of the
 * original full-queue-walk implementation — same picked request, and the
 * same sequence of mitigation safety queries (whose side effects, like
 * BlockHammer's delay accounting, are part of the simulation contract) —
 * across randomly generated DRAM states and request queues.
 */

#include <gtest/gtest.h>

#include <array>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "mem/scheduler.hh"

namespace bh
{
namespace
{

using EvalLog = std::vector<std::pair<unsigned, RowId>>;

/**
 * Reference implementation: the original stateless full-walk FR-FCFS
 * (stack arrays, O(queue) per call), kept verbatim as the oracle.
 */
class ReferenceFrFcfs
{
  public:
    static constexpr unsigned kMaxBanks = 64;

    static std::optional<std::size_t>
    pickColumnReady(const std::deque<Request> &queue, const DramDevice &dram,
                    Cycle now, const FrFcfsScheduler::StreakCapped &capped)
    {
        std::array<bool, kMaxBanks> conflict_waiting{};
        for (const auto &req : queue) {
            const Bank &bank = dram.bank(req.flatBank);
            if (bank.isOpen() && bank.openRow() != req.coord.row)
                conflict_waiting[req.flatBank] = true;
        }
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const Request &req = queue[i];
            unsigned fb = req.flatBank;
            const Bank &bank = dram.bank(fb);
            if (!bank.isOpen() || bank.openRow() != req.coord.row)
                continue;
            if (conflict_waiting[fb] && capped && capped(fb))
                continue;
            DramCommand cmd = (req.type == ReqType::kRead)
                ? DramCommand::kRd : DramCommand::kWr;
            if (dram.canIssue(cmd, fb, now))
                return i;
        }
        return std::nullopt;
    }

    static std::optional<std::size_t>
    pickRowPrep(const std::deque<Request> &queue, const DramDevice &dram,
                Cycle now, const FrFcfsScheduler::ActFilter &act_allowed,
                const FrFcfsScheduler::StreakCapped &capped)
    {
        std::array<bool, kMaxBanks> keep_open{};
        for (const auto &req : queue) {
            unsigned fb = req.flatBank;
            const Bank &bank = dram.bank(fb);
            if (bank.isOpen() && bank.openRow() == req.coord.row)
                keep_open[fb] = !(capped && capped(fb));
        }
        std::array<bool, kMaxBanks> prepared{};
        for (std::size_t i = 0; i < queue.size(); ++i) {
            const Request &req = queue[i];
            unsigned fb = req.flatBank;
            if (prepared[fb])
                continue;
            const Bank &bank = dram.bank(fb);
            if (bank.isOpen()) {
                if (bank.openRow() == req.coord.row)
                    continue;
                if (keep_open[fb])
                    continue;
                if (dram.canIssue(DramCommand::kPre, fb, now))
                    return i;
                prepared[fb] = true;
            } else {
                if (!act_allowed(req))
                    continue;
                if (dram.canIssue(DramCommand::kAct, fb, now))
                    return i;
                prepared[fb] = true;
            }
        }
        return std::nullopt;
    }
};

/** Drive a device through random legal commands to diversify its state. */
void
randomizeDevice(DramDevice &dram, Rng &rng, Cycle &now, unsigned steps)
{
    unsigned nbanks = dram.numBanks();
    for (unsigned s = 0; s < steps; ++s) {
        now += static_cast<Cycle>(rng.below(24));
        unsigned fb = static_cast<unsigned>(rng.below(nbanks));
        const Bank &bank = dram.bank(fb);
        if (bank.isOpen()) {
            switch (rng.below(3)) {
              case 0:
                if (dram.canIssue(DramCommand::kRd, fb, now))
                    dram.issue(DramCommand::kRd, fb, bank.openRow(), now);
                break;
              case 1:
                if (dram.canIssue(DramCommand::kWr, fb, now))
                    dram.issue(DramCommand::kWr, fb, bank.openRow(), now);
                break;
              default:
                if (dram.canIssue(DramCommand::kPre, fb, now))
                    dram.issue(DramCommand::kPre, fb, 0, now);
                break;
            }
        } else if (dram.canIssue(DramCommand::kAct, fb, now)) {
            dram.issue(DramCommand::kAct, fb,
                       static_cast<RowId>(rng.below(128)), now);
        }
    }
}

/** Random queue over the device's current open rows (hits + conflicts). */
std::deque<Request>
randomQueue(const DramDevice &dram, Rng &rng, ReqType type)
{
    std::deque<Request> q;
    auto len = rng.below(70);
    for (std::uint64_t i = 0; i < len; ++i) {
        Request req;
        unsigned fb = static_cast<unsigned>(rng.below(dram.numBanks()));
        const Bank &bank = dram.bank(fb);
        req.flatBank = fb;
        req.type = type;
        req.coord.row = (bank.isOpen() && rng.chance(0.5))
            ? bank.openRow() : static_cast<RowId>(rng.below(128));
        req.id = i;
        q.push_back(req);
    }
    return q;
}

void
runDifferential(unsigned nbanks, std::uint64_t seed)
{
    DramOrg org;
    org.bankGroups = 4;
    org.banksPerGroup = 4;
    org.ranks = nbanks / 16;
    ASSERT_EQ(org.banksPerChannel(), nbanks);
    DramDevice dram(org, DramTimings::ddr4());
    FrFcfsScheduler sched(nbanks);
    Rng rng(seed);
    Cycle now = 0;

    for (unsigned iter = 0; iter < 400; ++iter) {
        randomizeDevice(dram, rng, now, 12);

        ReqType type = rng.chance(0.5) ? ReqType::kRead : ReqType::kWrite;
        std::deque<Request> ref_q = randomQueue(dram, rng, type);
        SchedQueue new_q(nbanks);
        for (const Request &r : ref_q) {
            Request copy = r;
            new_q.push(std::move(copy));
        }

        // Random capped banks and a deterministic (but arbitrary-looking)
        // safety verdict per (bank, row).
        std::uint64_t cap_salt = rng.next();
        std::uint64_t act_salt = rng.next();
        auto capped = [&](unsigned bank) {
            return ((bank * 2654435761u) ^ cap_salt) % 4 == 0;
        };
        auto verdict = [&](unsigned bank, RowId row) {
            std::uint64_t h =
                (static_cast<std::uint64_t>(bank) << 32 | row) * 0x9e3779b9;
            return ((h ^ act_salt) % 3) != 0;
        };

        // Column picks must select the identical request.
        auto ref_col =
            ReferenceFrFcfs::pickColumnReady(ref_q, dram, now, capped);
        auto new_col = sched.pickColumnReady(new_q, type, dram, now, capped);
        if (ref_col.has_value()) {
            ASSERT_NE(new_col, SchedQueue::kNone) << "iter " << iter;
            EXPECT_EQ(ref_q[*ref_col].id, new_q.at(new_col).id)
                << "iter " << iter;
        } else {
            EXPECT_EQ(new_col, SchedQueue::kNone) << "iter " << iter;
        }

        // Row-prep picks must agree — including the exact sequence of
        // safety-filter evaluations (their side effects are modeled).
        EvalLog ref_log, new_log;
        auto ref_filter = [&](const Request &req) {
            ref_log.emplace_back(req.flatBank, req.coord.row);
            return verdict(req.flatBank, req.coord.row);
        };
        auto new_filter = [&](const Request &req) {
            new_log.emplace_back(req.flatBank, req.coord.row);
            return verdict(req.flatBank, req.coord.row);
        };
        auto ref_prep = ReferenceFrFcfs::pickRowPrep(ref_q, dram, now,
                                                     ref_filter, capped);
        auto new_prep = sched.pickRowPrep(new_q, dram, now, new_filter,
                                          capped);
        if (ref_prep.has_value()) {
            ASSERT_NE(new_prep, SchedQueue::kNone) << "iter " << iter;
            EXPECT_EQ(ref_q[*ref_prep].id, new_q.at(new_prep).id)
                << "iter " << iter;
        } else {
            EXPECT_EQ(new_prep, SchedQueue::kNone) << "iter " << iter;
        }
        EXPECT_EQ(ref_log, new_log) << "iter " << iter;

        // When nothing picks, the scheduler's event bound must hold: no
        // pick may become possible before it (under frozen verdicts).
        if (!ref_col && !ref_prep) {
            auto silent = [&](const Request &req) {
                return verdict(req.flatBank, req.coord.row);
            };
            Cycle bound = sched.nextDemandEventAt(new_q, type, dram, now,
                                                  capped, kNoEventCycle);
            Cycle horizon = std::min(bound, now + 200);
            for (Cycle c = now + 1; c < horizon; ++c) {
                EXPECT_EQ(sched.pickColumnReady(new_q, type, dram, c,
                                                capped),
                          SchedQueue::kNone)
                    << "iter " << iter << " cycle " << c;
                EXPECT_EQ(sched.pickRowPrep(new_q, dram, c, silent, capped),
                          SchedQueue::kNone)
                    << "iter " << iter << " cycle " << c;
            }
        }
    }
}

TEST(SchedulerDifferential, PaperOrgSixteenBanks)
{
    runDifferential(16, 0xb10c);
}

TEST(SchedulerDifferential, FourRankSixtyFourBanks)
{
    runDifferential(64, 0x4a11);
}

TEST(SchedulerDifferential, SecondSeedSweep)
{
    runDifferential(16, 0xfeed);
    runDifferential(32, 0xbeef);
}

} // namespace
} // namespace bh
