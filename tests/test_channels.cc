/**
 * @file
 * Multi-channel memory-system tests: request steering into channel
 * lanes, per-channel mitigation instantiation, and the determinism
 * contract of the chunked lane driver — byte-identical results for any
 * --channel-threads value and for chunked (kEventSkip) vs cycle-by-cycle
 * (kCycleByCycle) execution.
 */

#include <gtest/gtest.h>

#include "blockhammer/blockhammer.hh"
#include "common/rng.hh"
#include "sim/experiment.hh"

namespace bh
{
namespace
{

ExperimentConfig
channelConfig(const std::string &mechanism, unsigned channels)
{
    ExperimentConfig cfg;
    cfg.mechanism = mechanism;
    cfg.threads = 4;
    cfg.nRH = 512;
    cfg.refwMs = 0.25;
    cfg.warmupCycles = 60'000;
    cfg.runCycles = 200'000;
    cfg.attack.numBanks = 8;
    cfg.channels = channels;
    return cfg;
}

MixSpec
attackMix()
{
    MixSpec mix;
    mix.name = "attack";
    mix.apps = {kAttackAppName, "429.mcf", "450.soplex", "462.libquantum"};
    return mix;
}

MixSpec
benignMix()
{
    MixSpec mix;
    mix.name = "benign";
    mix.apps = {"429.mcf", "462.libquantum", "444.namd", "473.astar"};
    return mix;
}

void
expectEqualResults(const RunResult &a, const RunResult &b)
{
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_DOUBLE_EQ(a.ipc[i], b.ipc[i]) << "thread " << i;
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.bitFlips, b.bitFlips);
    EXPECT_EQ(a.maxRowActs, b.maxRowActs);
    EXPECT_EQ(a.demandActs, b.demandActs);
    EXPECT_EQ(a.blockedActs, b.blockedActs);
    EXPECT_EQ(a.victimRefreshes, b.victimRefreshes);
    EXPECT_EQ(a.rowHits, b.rowHits);
    EXPECT_EQ(a.rowMisses, b.rowMisses);
    EXPECT_EQ(a.rowConflicts, b.rowConflicts);
    EXPECT_DOUBLE_EQ(a.secMargin, b.secMargin);
    EXPECT_EQ(a.secMaxWindowActs, b.secMaxWindowActs);
    EXPECT_EQ(a.secFirstViolation, b.secFirstViolation);
    EXPECT_EQ(a.secViolatingRows, b.secViolatingRows);
}

std::vector<std::unique_ptr<Mitigation>>
nullMitigations(unsigned channels)
{
    std::vector<std::unique_ptr<Mitigation>> v;
    for (unsigned ch = 0; ch < channels; ++ch)
        v.push_back(std::make_unique<NullMitigation>());
    return v;
}

/** Encode (channel, bank 0, row, col 0) for a tiny 4-channel system. */
Addr
channelAddr(const AddressMapper &m, unsigned channel, RowId row)
{
    DramCoord c;
    c.channel = channel;
    c.row = row;
    return m.encode(c);
}

TEST(MultiChannel, SubmitRoutesToTheAddressedLane)
{
    MemSystemConfig cfg;
    cfg.org = DramOrg::tinyConfig(4);
    cfg.enableEnergy = false;
    cfg.enableHammerObserver = false;
    MemSystem mem(cfg, nullMitigations(4));

    for (unsigned ch = 0; ch < 4; ++ch) {
        for (RowId row = 0; row < ch + 1; ++row) {
            Request req;
            req.addr = channelAddr(mem.mapper(), ch, row);
            req.type = ReqType::kRead;
            req.thread = 0;
            ASSERT_EQ(mem.submit(std::move(req)), SubmitResult::kAccepted);
        }
    }
    // Lane ch holds exactly its ch+1 reads; nothing leaked across lanes.
    for (unsigned ch = 0; ch < 4; ++ch)
        EXPECT_EQ(mem.controller(ch).readQueueDepth(), ch + 1u);
}

TEST(MultiChannel, QueueFullIsPerLane)
{
    MemSystemConfig cfg;
    cfg.org = DramOrg::tinyConfig(2);
    cfg.ctrl.readQueueSize = 4;
    cfg.enableEnergy = false;
    cfg.enableHammerObserver = false;
    MemSystem mem(cfg, nullMitigations(2));

    Addr lane0 = channelAddr(mem.mapper(), 0, 1);
    Addr lane1 = channelAddr(mem.mapper(), 1, 1);
    for (unsigned i = 0; i < 4; ++i) {
        Request req;
        req.addr = channelAddr(mem.mapper(), 0, i);
        req.type = ReqType::kRead;
        ASSERT_EQ(mem.submit(std::move(req)), SubmitResult::kAccepted);
    }
    EXPECT_TRUE(mem.queueFull(ReqType::kRead, lane0));
    EXPECT_FALSE(mem.queueFull(ReqType::kRead, lane1));

    Request spill;
    spill.addr = lane1;
    spill.type = ReqType::kRead;
    EXPECT_EQ(mem.submit(std::move(spill)), SubmitResult::kAccepted);
}

TEST(MultiChannel, RequestsSpreadAcrossLanes)
{
    ExperimentConfig cfg = channelConfig("Baseline", 4);
    auto system = buildSystem(cfg, benignMix());
    system->run(cfg.runCycles);
    MemSystem &mem = system->mem();
    ASSERT_EQ(mem.channels(), 4u);
    for (unsigned ch = 0; ch < mem.channels(); ++ch) {
        EXPECT_GT(mem.controller(ch).demandActivations(), 0u)
            << "channel " << ch << " never activated a row";
    }
}

TEST(MultiChannel, PerChannelMitigationInstances)
{
    ExperimentConfig cfg = channelConfig("BlockHammer", 2);
    auto system = buildSystem(cfg, benignMix());
    MemSystem &mem = system->mem();
    ASSERT_EQ(mem.channels(), 2u);
    auto *bh0 = dynamic_cast<BlockHammer *>(&mem.mitigation(0));
    auto *bh1 = dynamic_cast<BlockHammer *>(&mem.mitigation(1));
    ASSERT_NE(bh0, nullptr);
    ASSERT_NE(bh1, nullptr);
    EXPECT_NE(bh0, bh1);
}

TEST(MultiChannel, SingleChannelAccessorFailsLoudlyOnMultiChannel)
{
    ExperimentConfig cfg = channelConfig("Baseline", 2);
    auto system = buildSystem(cfg, benignMix());
    EXPECT_DEATH((void)system->mem().controller(), "channel");
}

TEST(MultiChannel, ChunkedMatchesCycleByCycle)
{
    for (const char *mech : {"Baseline", "BlockHammer", "Graphene"}) {
        ExperimentConfig ref = channelConfig(mech, 2);
        ref.skip = SkipMode::kCycleByCycle;
        ExperimentConfig fast = channelConfig(mech, 2);
        fast.skip = SkipMode::kEventSkip;
        RunResult a = runExperiment(ref, attackMix());
        RunResult b = runExperiment(fast, attackMix());
        expectEqualResults(a, b);
    }
}

TEST(MultiChannel, ChunkedLaneDriverActuallyEngages)
{
    // Guard against the chunk predicate silently never holding (which
    // would leave the equivalence tests vacuous): a memory-bound attack
    // mix must spend a visible share of its cycles in lane chunks.
    ExperimentConfig cfg = channelConfig("BlockHammer", 2);
    auto system = buildSystem(cfg, attackMix());
    system->run(cfg.warmupCycles + cfg.runCycles);
    EXPECT_GT(system->chunkedCycles(), 0u);
}

TEST(MultiChannel, VerifyModeAcceptsEverySkipClaim)
{
    ExperimentConfig cfg = channelConfig("BlockHammer", 2);
    cfg.skip = SkipMode::kVerify;
    RunResult verified = runExperiment(cfg, attackMix());
    cfg.skip = SkipMode::kEventSkip;
    RunResult skipping = runExperiment(cfg, attackMix());
    expectEqualResults(verified, skipping);
}

TEST(MultiChannel, ThreadCountCannotChangeResults)
{
    for (unsigned channels : {2u, 4u}) {
        ExperimentConfig one = channelConfig("BlockHammer", channels);
        one.channelThreads = 1;
        RunResult a = runExperiment(one, attackMix());

        ExperimentConfig many = channelConfig("BlockHammer", channels);
        many.channelThreads = channels;
        RunResult b = runExperiment(many, attackMix());

        expectEqualResults(a, b);
    }
}

TEST(MultiChannel, ThreadCountCannotChangeBenignResults)
{
    ExperimentConfig one = channelConfig("PARA", 4);
    one.channelThreads = 1;
    RunResult a = runExperiment(one, benignMix());

    ExperimentConfig many = channelConfig("PARA", 4);
    many.channelThreads = 4;
    RunResult b = runExperiment(many, benignMix());

    expectEqualResults(a, b);
}

TEST(MultiChannel, AttackOnOneChannelLeavesOthersUnthrottled)
{
    // The attack trace hammers channel 0 only; BlockHammer's per-channel
    // state must blacklist there without blocking the other lane.
    ExperimentConfig cfg = channelConfig("BlockHammer", 2);
    RunResult res = runExperiment(cfg, attackMix());
    EXPECT_EQ(res.bitFlips, 0u);

    auto system = buildSystem(cfg, attackMix());
    system->run(cfg.warmupCycles + cfg.runCycles);
    MemSystem &mem = system->mem();
    EXPECT_GT(mem.controller(0).blockedActQueries(), 0u);
    EXPECT_EQ(mem.controller(1).blockedActQueries(), 0u);
}

TEST(MultiChannel, RandomAttackPatternGridDifferential)
{
    // Randomized differential grid over the adversarial attack-pattern
    // catalog: each sampled (pattern, mechanism, channels) cell must be
    // byte-identical across chunked/threaded execution, cycle-by-cycle
    // ticking, and --skip verify — including the SecurityOracle's
    // verdict, which rides along in the full RunResult comparison.
    Rng rng(20260729);
    const auto &catalog = attackPatternCatalog();
    const std::vector<std::string> mechs = {"BlockHammer", "PARA",
                                            "Graphene"};
    for (int trial = 0; trial < 4; ++trial) {
        const AttackPatternSpec &spec =
            catalog[rng.below(catalog.size())];
        const std::string &mech = mechs[rng.below(mechs.size())];
        unsigned channels = rng.chance(0.5) ? 2 : 4;
        SCOPED_TRACE(spec.name + " x " + mech + " x " +
                     std::to_string(channels) + "ch");

        MixSpec mix;
        mix.name = "rand-" + spec.name;
        mix.apps = {attackPatternApp(spec.name), "429.mcf", "450.soplex",
                    "462.libquantum"};

        ExperimentConfig ref = channelConfig(mech, channels);
        ref.securityOracle = true;
        ref.skip = SkipMode::kCycleByCycle;
        ref.channelThreads = 1;
        RunResult a = runExperiment(ref, mix);

        ExperimentConfig fast = channelConfig(mech, channels);
        fast.securityOracle = true;
        fast.skip = SkipMode::kEventSkip;
        fast.channelThreads = channels;
        RunResult b = runExperiment(fast, mix);
        expectEqualResults(a, b);

        ExperimentConfig verify = channelConfig(mech, channels);
        verify.securityOracle = true;
        verify.skip = SkipMode::kVerify;
        RunResult c = runExperiment(verify, mix);
        expectEqualResults(a, c);
    }
}

// Manual diagnostics (run with --gtest_also_run_disabled_tests): how the
// driver spends simulated time on a fig5-like cell per channel count.
TEST(MultiChannel, DISABLED_TimeAdvanceBreakdown)
{
    for (unsigned channels : {1u, 4u}) {
        ExperimentConfig cfg = channelConfig("BlockHammer", channels);
        cfg.channels = channels;
        cfg.threads = 8;
        MixSpec mix;
        mix.name = "attack8";
        mix.apps = {kAttackAppName, "429.mcf", "450.soplex",
                    "462.libquantum", "444.namd", "473.astar",
                    "429.mcf", "456.hmmer"};
        auto system = buildSystem(cfg, mix);
        Cycle total = cfg.warmupCycles + cfg.runCycles;
        system->run(total);
        std::printf("channels=%u: %llu cycles, %llu skipped (%.1f%%), "
                    "%llu chunked (%.1f%%)\n", channels,
                    static_cast<unsigned long long>(total),
                    static_cast<unsigned long long>(system->skippedCycles()),
                    100.0 * system->skippedCycles() / total,
                    static_cast<unsigned long long>(system->chunkedCycles()),
                    100.0 * system->chunkedCycles() / total);
    }
}

TEST(MultiChannel, NonPowerOfTwoChannelCountFailsLoudly)
{
    EXPECT_DEATH(DramOrg::paperConfig(3), "powers of two");
    EXPECT_DEATH(DramOrg::tinyConfig(6), "powers of two");
}

} // namespace
} // namespace bh
