/**
 * @file
 * Tests for BlockHammer: configuration math (Equations 1 and 3, Table 1,
 * Table 7), the history buffer, RowBlocker, AttackThrottler, and the
 * integrated mechanism.
 */

#include <gtest/gtest.h>

#include "analysis/security.hh"
#include "blockhammer/blockhammer.hh"

namespace bh
{
namespace
{

BlockHammerConfig
paperConfig()
{
    return BlockHammerConfig::forThreshold(32768, DramTimings::ddr4());
}

/** Small config for fast dynamic tests. */
BlockHammerConfig
tinyConfig()
{
    BlockHammerConfig cfg;
    cfg.nRH = 512;
    cfg.nBL = 128;
    cfg.tREFW = 100000;
    cfg.tCBF = 100000;
    cfg.tRC = 148;
    cfg.tFAW = 112;
    cfg.banks = 4;
    cfg.threads = 4;
    cfg.cbf.numCounters = 1024;
    cfg.cbf.counterMax = 128;
    return cfg;
}

TEST(BlockHammerConfig, Table1Values)
{
    BlockHammerConfig cfg = paperConfig();
    // Table 1: N_RH=32K, N_RH*=16K, N_BL=8K, 1K-counter CBFs.
    EXPECT_EQ(cfg.nRH, 32768u);
    EXPECT_EQ(cfg.nRHStar(), 16384u);
    EXPECT_EQ(cfg.nBL, 8192u);
    EXPECT_EQ(cfg.cbf.numCounters, 1024u);
    // tDelay = 7.7 us (paper); at 3.2 GHz that is ~24.6K cycles.
    double tdelay_us = cyclesToNs(cfg.tDelay()) / 1000.0;
    EXPECT_NEAR(tdelay_us, 7.7, 0.15);
    // History buffer: 887 entries per rank (paper, +- formula rounding).
    EXPECT_NEAR(cfg.historyEntries(), 887, 5);
}

TEST(BlockHammerConfig, Equation3WorstCase)
{
    // Section 4: r_blast=6, c_k=0.5^(k-1) gives N_RH* = 0.2539 N_RH.
    BlockHammerConfig cfg = paperConfig();
    cfg.blast = BlastModel::worstCase();
    EXPECT_NEAR(static_cast<double>(cfg.nRHStar()) / cfg.nRH, 0.2539, 0.001);
}

TEST(BlockHammerConfig, Equation3DoubleSided)
{
    BlockHammerConfig cfg = paperConfig();
    cfg.blast = BlastModel::doubleSided();
    EXPECT_EQ(cfg.nRHStar(), cfg.nRH / 2);
}

TEST(BlockHammerConfig, Table7Scaling)
{
    // Table 7: (N_RH, N_BL, CBF size).
    struct Row { std::uint32_t nrh, nbl, cbf; };
    const Row rows[] = {
        {32768, 8192, 1024}, {16384, 4096, 1024}, {8192, 2048, 1024},
        {4096, 1024, 2048}, {2048, 512, 4096}, {1024, 256, 8192},
    };
    for (const Row &r : rows) {
        auto cfg = BlockHammerConfig::forThreshold(r.nrh,
                                                   DramTimings::ddr4());
        EXPECT_EQ(cfg.nBL, r.nbl) << "nRH " << r.nrh;
        EXPECT_EQ(cfg.cbf.numCounters, r.cbf) << "nRH " << r.nrh;
        EXPECT_EQ(cfg.tCBF, cfg.tREFW);
    }
}

TEST(BlockHammerConfig, TdelayGrowsAsThresholdShrinks)
{
    Cycle prev = 0;
    for (std::uint32_t nrh : {32768u, 8192u, 2048u, 1024u}) {
        auto cfg = BlockHammerConfig::forThreshold(nrh, DramTimings::ddr4());
        EXPECT_GT(cfg.tDelay(), prev);
        prev = cfg.tDelay();
    }
}

TEST(BlockHammerConfig, HistoryGrowsAsThresholdShrinks)
{
    auto big = BlockHammerConfig::forThreshold(32768, DramTimings::ddr4());
    auto small = BlockHammerConfig::forThreshold(1024, DramTimings::ddr4());
    // Paper: 887 entries at 32K -> 27.8K entries at 1K (formula rounding
    // lands ours at ~28.5K).
    EXPECT_NEAR(small.historyEntries(), 28500, 900);
    EXPECT_GT(small.historyEntries(), 20 * big.historyEntries());
}

TEST(BlockHammerConfig, RhliDenominator)
{
    BlockHammerConfig cfg = paperConfig();
    // tCBF == tREFW: denominator = N_RH* - N_BL = 8192.
    EXPECT_DOUBLE_EQ(cfg.rhliDenominator(), 8192.0);
    EXPECT_EQ(cfg.throttlerCounterMax(), 16384u);
}

TEST(HistoryBuffer, RecentlyActivatedWithinWindow)
{
    HistoryBuffer hb(16, 100);
    hb.insert(42, 1000);
    EXPECT_TRUE(hb.recentlyActivated(42, 1050));
    EXPECT_FALSE(hb.recentlyActivated(43, 1050));
}

TEST(HistoryBuffer, ExpiresAfterDelayWindow)
{
    HistoryBuffer hb(16, 100);
    hb.insert(42, 1000);
    EXPECT_TRUE(hb.recentlyActivated(42, 1099));
    EXPECT_FALSE(hb.recentlyActivated(42, 1100));
}

TEST(HistoryBuffer, TracksMultipleEntriesOfSameRow)
{
    HistoryBuffer hb(16, 100);
    hb.insert(42, 1000);
    hb.insert(42, 1050);
    // First record expires; the second still covers the row.
    EXPECT_TRUE(hb.recentlyActivated(42, 1120));
    EXPECT_FALSE(hb.recentlyActivated(42, 1150));
}

TEST(HistoryBuffer, CapacityAndValidCount)
{
    HistoryBuffer hb(8, 1000);
    for (int i = 0; i < 8; ++i)
        hb.insert(i, i);
    EXPECT_EQ(hb.validCount(), 8u);
    EXPECT_EQ(hb.capacity(), 8u);
}

TEST(HistoryBuffer, ExpiryExactlyAtDelayBoundary)
{
    // An entry covers [t, t + tDelay): the delta == tDelay query is the
    // first one that no longer sees it.
    HistoryBuffer hb(4, 100);
    hb.insert(7, 500);
    EXPECT_TRUE(hb.recentlyActivated(7, 500));
    EXPECT_TRUE(hb.recentlyActivated(7, 599));
    hb.expire(600);
    EXPECT_EQ(hb.validCount(), 0u);
    EXPECT_FALSE(hb.recentlyActivated(7, 600));
}

TEST(HistoryBuffer, TimestampDeltasNearWindowEdge)
{
    HistoryBuffer hb(8, 100);
    hb.insert(1, 1000);
    hb.insert(2, 1001);
    // One cycle inside the edge for key 1, exactly at it for nothing yet.
    EXPECT_TRUE(hb.recentlyActivated(1, 1099));
    EXPECT_TRUE(hb.recentlyActivated(2, 1099));
    // Key 1 ages out exactly one cycle before key 2.
    EXPECT_FALSE(hb.recentlyActivated(1, 1100));
    EXPECT_TRUE(hb.recentlyActivated(2, 1100));
    EXPECT_FALSE(hb.recentlyActivated(2, 1101));
    EXPECT_EQ(hb.validCount(), 0u);
}

TEST(HistoryBuffer, NextExpiryTracksOldestLiveEntry)
{
    HistoryBuffer hb(8, 100);
    EXPECT_EQ(hb.nextExpiryAt(), kNoEventCycle);
    hb.insert(1, 1000);
    hb.insert(2, 1040);
    EXPECT_EQ(hb.nextExpiryAt(), 1100);
    hb.expire(1100);    // drops the first entry only
    EXPECT_EQ(hb.validCount(), 1u);
    EXPECT_EQ(hb.nextExpiryAt(), 1140);
    hb.expire(1140);
    EXPECT_EQ(hb.nextExpiryAt(), kNoEventCycle);
}

TEST(HistoryBuffer, WrapsAroundWithoutStaleEntries)
{
    // Exercise head/tail wrap-around (the positional-validity bookkeeping
    // that replaced the per-slot valid flag).
    HistoryBuffer hb(4, 10);
    for (Cycle t = 0; t < 100; t += 3) {
        hb.insert(static_cast<std::uint64_t>(t), t);
        EXPECT_TRUE(hb.recentlyActivated(static_cast<std::uint64_t>(t), t));
        EXPECT_LE(hb.validCount(), 4u);
    }
    hb.expire(200);
    EXPECT_EQ(hb.validCount(), 0u);
}

TEST(HistoryBufferDeath, OverflowPanics)
{
    HistoryBuffer hb(4, 1000);
    for (int i = 0; i < 4; ++i)
        hb.insert(i, i);
    EXPECT_DEATH(hb.insert(99, 10), "overflow");
}

TEST(HistoryBuffer, ReusesSlotsAfterExpiry)
{
    HistoryBuffer hb(4, 10);
    for (int round = 0; round < 20; ++round)
        hb.insert(round, round * 20);   // every insert expires the last
    EXPECT_EQ(hb.validCount(), 1u);
}

TEST(RowBlocker, SafeUntilBlacklisted)
{
    RowBlocker rb(tinyConfig());
    Cycle now = 0;
    for (int i = 0; i < 127; ++i) {
        EXPECT_TRUE(rb.isSafe(0, 5, now));
        rb.onActivate(0, 5, now);
        now += 200;
    }
    EXPECT_FALSE(rb.isBlacklisted(0, 5));
    rb.onActivate(0, 5, now);
    EXPECT_TRUE(rb.isBlacklisted(0, 5));
    // Blacklisted + just activated => unsafe.
    EXPECT_FALSE(rb.isSafe(0, 5, now + 1));
}

TEST(RowBlocker, SafeAgainAfterDelay)
{
    BlockHammerConfig cfg = tinyConfig();
    RowBlocker rb(cfg);
    Cycle now = 0;
    for (int i = 0; i < 128; ++i) {
        rb.onActivate(0, 5, now);
        now += 200;
    }
    ASSERT_TRUE(rb.isBlacklisted(0, 5));
    EXPECT_FALSE(rb.isSafe(0, 5, now));
    EXPECT_TRUE(rb.isSafe(0, 5, now - 200 + rb.tDelay()));
}

TEST(RowBlocker, OtherRowsUnaffected)
{
    RowBlocker rb(tinyConfig());
    Cycle now = 0;
    for (int i = 0; i < 128; ++i) {
        rb.onActivate(0, 5, now);
        now += 200;
    }
    EXPECT_TRUE(rb.isSafe(0, 9999, now));
    EXPECT_TRUE(rb.isSafe(1, 5, now));      // same row id, different bank
}

TEST(RowBlocker, ActivationEstimateUpperBoundsTruth)
{
    RowBlocker rb(tinyConfig());
    for (int i = 0; i < 50; ++i)
        rb.onActivate(2, 77, i * 200);
    EXPECT_GE(rb.activationEstimate(2, 77), 50u);
}

TEST(AttackThrottler, BenignThreadsUnlimited)
{
    AttackThrottler at(tinyConfig());
    EXPECT_DOUBLE_EQ(at.rhli(0, 0), 0.0);
    EXPECT_EQ(at.quota(0, 0), -1);
}

TEST(AttackThrottler, RhliGrowsWithBlacklistedActs)
{
    BlockHammerConfig cfg = tinyConfig();
    AttackThrottler at(cfg);
    for (int i = 0; i < 10; ++i)
        at.onBlacklistedActivate(1, 2);
    EXPECT_NEAR(at.rhli(1, 2), 10.0 / cfg.rhliDenominator(), 1e-9);
    EXPECT_DOUBLE_EQ(at.rhli(1, 3), 0.0);   // other banks unaffected
    EXPECT_DOUBLE_EQ(at.rhli(2, 2), 0.0);   // other threads unaffected
}

TEST(AttackThrottler, QuotaShrinksAndReachesZero)
{
    BlockHammerConfig cfg = tinyConfig();
    AttackThrottler at(cfg);
    auto denom = static_cast<int>(cfg.rhliDenominator());
    for (int i = 0; i < denom / 2; ++i)
        at.onBlacklistedActivate(0, 0);
    int half_quota = at.quota(0, 0);
    EXPECT_GT(half_quota, 0);
    EXPECT_LT(half_quota, cfg.baseQuota);
    for (int i = 0; i < denom; ++i)
        at.onBlacklistedActivate(0, 0);
    // In isolation the counter keeps counting past the RHLI=1 point (in a
    // protected system the zero quota stops the activations instead).
    EXPECT_GE(at.rhli(0, 0), 1.0);
    EXPECT_EQ(at.quota(0, 0), 0);
}

TEST(AttackThrottler, MaxRhliAcrossBanks)
{
    AttackThrottler at(tinyConfig());
    at.onBlacklistedActivate(0, 3);
    EXPECT_GT(at.maxRhli(0), 0.0);
    EXPECT_DOUBLE_EQ(at.maxRhli(1), 0.0);
}

TEST(AttackThrottler, EpochSwapRetainsRecentHistory)
{
    BlockHammerConfig cfg = tinyConfig();
    AttackThrottler at(cfg);
    for (int i = 0; i < 20; ++i)
        at.onBlacklistedActivate(0, 0);
    double before = at.rhli(0, 0);
    at.onEpochBoundary();
    // The swapped-in counter accumulated the same history.
    EXPECT_DOUBLE_EQ(at.rhli(0, 0), before);
    at.onEpochBoundary();
    // Two quiet epochs: history fully expired.
    EXPECT_DOUBLE_EQ(at.rhli(0, 0), 0.0);
}

TEST(BlockHammerMech, BlocksOnlyBlacklistedRecentRows)
{
    BlockHammerConfig cfg = tinyConfig();
    BlockHammer bh(cfg);
    Cycle now = 0;
    for (int i = 0; i < 200; ++i) {
        bh.onActivate(0, 5, 0, now);
        now += 200;
    }
    EXPECT_FALSE(bh.isActSafe(0, 5, 0, now));
    EXPECT_TRUE(bh.isActSafe(0, 6, 0, now));
    EXPECT_GT(bh.unsafeVerdicts(), 0u);
}

TEST(BlockHammerMech, ObserveOnlyNeverBlocks)
{
    BlockHammerConfig cfg = tinyConfig();
    cfg.observeOnly = true;
    BlockHammer bh(cfg);
    Cycle now = 0;
    for (int i = 0; i < 200; ++i) {
        bh.onActivate(0, 5, 0, now);
        now += 200;
    }
    EXPECT_TRUE(bh.isActSafe(0, 5, 0, now));
    EXPECT_EQ(bh.quota(0, 0), -1);
    // But it still measures.
    EXPECT_GT(bh.blacklistedActivations(), 0u);
}

TEST(BlockHammerMech, DelayHistogramRecordsPenalties)
{
    BlockHammerConfig cfg = tinyConfig();
    BlockHammer bh(cfg);
    Cycle now = 0;
    for (int i = 0; i < 128; ++i) {
        bh.onActivate(0, 5, 0, now);
        now += 200;
    }
    // Refused at `now`, issued 500 cycles later.
    EXPECT_FALSE(bh.isActSafe(0, 5, 0, now));
    bh.onActivate(0, 5, 0, now + 500);
    EXPECT_EQ(bh.delayedActivations(), 1u);
    EXPECT_EQ(bh.delayHistogram().count(), 1u);
    EXPECT_EQ(bh.delayHistogram().max(), 500);
}

TEST(BlockHammerMech, TrueAggressorIsNotAFalsePositive)
{
    BlockHammerConfig cfg = tinyConfig();
    BlockHammer bh(cfg);
    Cycle now = 0;
    for (int i = 0; i < 200; ++i) {
        bh.onActivate(0, 5, 0, now);
        now += 200;
    }
    bh.isActSafe(0, 5, 0, now);
    bh.onActivate(0, 5, 0, now + 500);
    EXPECT_EQ(bh.falsePositiveActivations(), 0u);
}

TEST(BlockHammerMech, RhliExposedPerThreadBank)
{
    BlockHammerConfig cfg = tinyConfig();
    BlockHammer bh(cfg);
    Cycle now = 0;
    for (int i = 0; i < 200; ++i) {
        bh.onActivate(1, 5, /*thread=*/2, now);
        now += 200;
    }
    EXPECT_GT(bh.rhli(2, 1), 0.0);
    EXPECT_DOUBLE_EQ(bh.rhli(0, 1), 0.0);
    EXPECT_GT(bh.maxRhli(2), 0.0);
}

TEST(BlockHammerMech, EpochTickSynchronizesComponents)
{
    BlockHammerConfig cfg = tinyConfig();
    BlockHammer bh(cfg);
    Cycle now = 0;
    for (int i = 0; i < 200; ++i) {
        bh.onActivate(0, 5, 1, now);
        now += 200;
    }
    double rhli_before = bh.rhli(1, 0);
    ASSERT_GT(rhli_before, 0.0);
    // Two full epochs with no activity: blacklist and RHLI both expire.
    bh.tick(cfg.tCBF / 2);
    bh.tick(cfg.tCBF);
    EXPECT_DOUBLE_EQ(bh.rhli(1, 0), 0.0);
    EXPECT_TRUE(bh.isActSafe(0, 5, 1, cfg.tCBF + 1));
}

} // namespace
} // namespace bh
