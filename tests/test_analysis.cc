/**
 * @file
 * Tests for the analysis layer: the Section 5 security solver and the
 * Table 4 hardware cost model.
 */

#include <gtest/gtest.h>

#include "analysis/hwcost.hh"
#include "analysis/security.hh"

namespace bh
{
namespace
{

BlockHammerConfig
paperConfig()
{
    return BlockHammerConfig::forThreshold(32768, DramTimings::ddr4());
}

TEST(Security, EpochBoundsMatchTable2Structure)
{
    SecurityAnalyzer sa(paperConfig());
    auto bounds = sa.epochBounds();
    ASSERT_EQ(bounds.size(), 5u);
    // T0/T1/T3 cap below N_BL; T2 is the largest; T4 is delay-paced.
    EXPECT_EQ(bounds[0].nepMax, 8191);
    EXPECT_EQ(bounds[1].nepMax, 8191);
    EXPECT_EQ(bounds[3].nepMax, 8191);
    EXPECT_GT(bounds[2].nepMax, bounds[4].nepMax);
    EXPECT_GT(bounds[4].nepMax, 0);
}

TEST(Security, EpochCapacityBlacklistedIsDelayPaced)
{
    BlockHammerConfig cfg = paperConfig();
    SecurityAnalyzer sa(cfg);
    std::int64_t cap = sa.epochCapacity(cfg.nBL);
    EXPECT_EQ(cap, sa.epochLength() / cfg.tDelay() + 1);
}

TEST(Security, EpochCapacityFreshRowGetsFreeActs)
{
    BlockHammerConfig cfg = paperConfig();
    SecurityAnalyzer sa(cfg);
    // Starting fresh: N_BL fast activations plus delay-paced remainder.
    std::int64_t cap = sa.epochCapacity(0);
    EXPECT_GT(cap, cfg.nBL);
    // More previous-epoch acts means less headroom now.
    EXPECT_GT(cap, sa.epochCapacity(cfg.nBL / 2));
}

TEST(Security, PaperConfigIsInfeasible)
{
    // The headline security claim: no access pattern reaches N_RH within
    // a refresh window under the Table 1 configuration.
    SecurityAnalyzer sa(paperConfig());
    FeasibilityResult res = sa.analyze();
    EXPECT_FALSE(res.attackPossible);
    EXPECT_LT(res.maxActsInWindow, res.nRH);
    EXPECT_GT(res.maxActsInWindow, 0);
    EXPECT_FALSE(res.bestSequence.empty());
}

TEST(Security, AllScaledConfigsAreInfeasible)
{
    for (std::uint32_t nrh : {32768u, 16384u, 8192u, 4096u, 2048u, 1024u}) {
        auto cfg = BlockHammerConfig::forThreshold(nrh, DramTimings::ddr4());
        SecurityAnalyzer sa(cfg);
        FeasibilityResult res = sa.analyze();
        EXPECT_FALSE(res.attackPossible) << "nRH " << nrh;
        EXPECT_LT(res.maxActsInWindow, static_cast<std::int64_t>(nrh))
            << "nRH " << nrh;
    }
}

TEST(Security, BoundIsTightAgainstNrhStar)
{
    // The design pushes the per-window bound close to (but never past)
    // ~1.5x N_RH* for a window overlapping three epochs, comfortably
    // below N_RH.
    BlockHammerConfig cfg = paperConfig();
    SecurityAnalyzer sa(cfg);
    FeasibilityResult res = sa.analyze();
    EXPECT_GE(res.maxActsInWindow, res.nRHStar / 2);
    EXPECT_LT(res.maxActsInWindow, res.nRH);
}

TEST(Security, BrokenConfigIsDetected)
{
    // Sanity check of the solver itself: stretching the CBF lifetime far
    // past the refresh window loosens tDelay enough to admit an attack.
    BlockHammerConfig cfg = paperConfig();
    cfg.tCBF = 4 * cfg.tREFW;
    SecurityAnalyzer sa(cfg);
    FeasibilityResult res = sa.analyze();
    EXPECT_TRUE(res.attackPossible);
}

TEST(Security, EpochTypeNamesComplete)
{
    EXPECT_STREQ(epochTypeName(EpochType::T0), "T0");
    EXPECT_STREQ(epochTypeName(EpochType::T4), "T4");
}

TEST(HwCost, BlockHammerMatchesCalibrationPoint)
{
    HwCostModel model;
    auto cost = model.costFor("BlockHammer", 32768, DramTimings::ddr4());
    ASSERT_TRUE(cost.has_value());
    // Calibrated against Table 4: 0.14 mm^2, ~20 pJ, ~22 mW, 0.06% CPU.
    EXPECT_NEAR(cost->areaMm2, 0.14, 0.04);
    EXPECT_NEAR(cost->accessEnergyPj, 20.3, 9.0);
    EXPECT_NEAR(cost->staticPowerMw, 22.3, 7.0);
    EXPECT_NEAR(cost->cpuAreaPct, 0.06, 0.02);
}

TEST(HwCost, DcbfStorageMatchesTable4)
{
    HwCostModel model;
    Storage dcbf = model.blockHammerDcbf(32768);
    // Table 4: 48 KB of D-CBF SRAM per rank (2 x 1K x ~12b x 16 banks).
    EXPECT_NEAR(dcbf.sramBits / 8.0 / 1024.0, 48.0, 16.0);
    EXPECT_EQ(dcbf.camBits, 0.0);
}

TEST(HwCost, HistoryBufferGrowsAtLowThreshold)
{
    HwCostModel model;
    auto t = DramTimings::ddr4();
    Storage hb32k = model.blockHammerHistory(32768, t);
    Storage hb1k = model.blockHammerHistory(1024, t);
    EXPECT_GT(hb1k.camBits, 20 * hb32k.camBits);
}

TEST(HwCost, ScalingTrendsMatchTable4)
{
    HwCostModel model;
    auto t = DramTimings::ddr4();
    auto bh32 = model.costFor("BlockHammer", 32768, t);
    auto bh1 = model.costFor("BlockHammer", 1024, t);
    auto tw32 = model.costFor("TWiCe", 32768, t);
    auto tw1 = model.costFor("TWiCe", 1024, t);
    auto cbt1 = model.costFor("CBT", 1024, t);
    ASSERT_TRUE(bh32 && bh1 && tw32 && tw1 && cbt1);
    // Table 4 headline: at N_RH=1K, TWiCe and CBT cost multiples of
    // BlockHammer's area.
    EXPECT_GT(tw1->areaMm2, 2.0 * bh1->areaMm2);
    EXPECT_GT(cbt1->areaMm2, 1.5 * bh1->areaMm2);
    // And all mechanisms grow as the threshold shrinks.
    EXPECT_GT(bh1->areaMm2, bh32->areaMm2);
    EXPECT_GT(tw1->areaMm2, tw32->areaMm2);
}

TEST(HwCost, ProbabilisticMechanismsAreTiny)
{
    HwCostModel model;
    auto para = model.costFor("PARA", 32768, DramTimings::ddr4());
    ASSERT_TRUE(para.has_value());
    EXPECT_LT(para->areaMm2, 0.01);
}

TEST(HwCost, FixedDesignPointsRefuseToScale)
{
    HwCostModel model;
    auto t = DramTimings::ddr4();
    EXPECT_FALSE(model.costFor("PRoHIT", 1024, t).has_value());
    EXPECT_FALSE(model.costFor("MRLoc", 1024, t).has_value());
    auto prohit = model.costFor("PRoHIT", 2048, t);
    ASSERT_TRUE(prohit.has_value());
    EXPECT_FALSE(prohit->scalable);
}

TEST(HwCost, GrapheneIsCamOnly)
{
    HwCostModel model;
    auto g = model.costFor("Graphene", 32768, DramTimings::ddr4());
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->sramKiB, 0.0);
    EXPECT_GT(g->camKiB, 0.0);
}

TEST(HwCostDeath, UnknownMechanismIsFatal)
{
    // nullopt is reserved for known design-point gaps (PRoHIT/MRLoc
    // below their published threshold); an unknown name is a bug and
    // must fail loudly instead of producing a zero-cost Table 4 row.
    HwCostModel model;
    EXPECT_EXIT(model.costFor("Nonsense", 32768, DramTimings::ddr4()),
                ::testing::ExitedWithCode(1), "no hardware cost model");
}

} // namespace
} // namespace bh
