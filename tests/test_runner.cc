/**
 * @file
 * Tests for the parallel experiment runner and the bh_bench registry:
 *
 *  - Runner executes cells across worker counts with index-ordered,
 *    deterministic results and propagates cell exceptions.
 *  - cellSeed is a stable function of (base, cell), independent of
 *    execution order (golden values pin the algorithm).
 *  - Registered experiments produce byte-identical JSON at 1 vs N
 *    worker threads.
 *  - Regression: the bh_bench JSON fields match the values the legacy
 *    per-binary benches computed for fig4 and table1.
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "bench/registry.hh"
#include "blockhammer/config.hh"
#include "common/rng.hh"
#include "sim/runner.hh"
#include "workloads/catalog.hh"

namespace bh
{
namespace
{

TEST(Runner, JobsDefaultsToAtLeastOne)
{
    Runner r(0);
    EXPECT_GE(r.jobs(), 1u);
}

TEST(Runner, MapCollectsResultsInCellOrder)
{
    Runner pool(4);
    // Cells finish intentionally out of order: later cells sleep less.
    std::vector<int> out = pool.map<int>(16, [](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::microseconds((16 - i) * 100));
        return static_cast<int>(i * i);
    });
    ASSERT_EQ(out.size(), 16u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(Runner, OneWorkerAndManyWorkersAgree)
{
    auto work = [](std::size_t i) {
        Rng rng(Runner::cellSeed(123, i));
        std::uint64_t acc = 0;
        for (int n = 0; n < 1000; ++n)
            acc ^= rng.next();
        return acc;
    };
    Runner serial(1);
    Runner parallel(8);
    auto a = serial.map<std::uint64_t>(32, work);
    auto b = parallel.map<std::uint64_t>(32, work);
    EXPECT_EQ(a, b);
}

TEST(Runner, ForEachRunsEveryCellExactlyOnce)
{
    Runner pool(4);
    std::vector<std::atomic<int>> hits(64);
    pool.forEach(64, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Runner, PropagatesCellExceptions)
{
    Runner pool(4);
    EXPECT_THROW(pool.forEach(8,
                              [](std::size_t i) {
                                  if (i == 5)
                                      throw std::runtime_error("cell 5");
                              }),
                 std::runtime_error);
    // The pool survives a failed batch.
    std::vector<int> out = pool.map<int>(
        4, [](std::size_t i) { return static_cast<int>(i); });
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Runner, SerialPathRunsAllCellsDespiteException)
{
    // jobs == 1 must honor the same contract as the pooled path: every
    // cell executes, the first error is rethrown afterwards.
    Runner serial(1);
    std::vector<int> ran(8, 0);
    EXPECT_THROW(serial.forEach(8,
                                [&](std::size_t i) {
                                    ran[i] = 1;
                                    if (i == 2)
                                        throw std::runtime_error("cell 2");
                                }),
                 std::runtime_error);
    EXPECT_EQ(ran, (std::vector<int>(8, 1)));
}

TEST(Runner, CellSeedGoldenValues)
{
    // Pinned: experiment results depend on these streams, so the mix
    // function must never change silently.
    EXPECT_EQ(Runner::cellSeed(1, 0), 0x910a2dec89025cc1ull);
    EXPECT_EQ(Runner::cellSeed(1, 1), 0xbeeb8da1658eec67ull);
    EXPECT_EQ(Runner::cellSeed(42, 7), 0xccf635ee9e9e2fa4ull);
    // Stability: same inputs, same seed; different cells, different seed.
    EXPECT_EQ(Runner::cellSeed(9, 9), Runner::cellSeed(9, 9));
    EXPECT_NE(Runner::cellSeed(9, 9), Runner::cellSeed(9, 10));
}

TEST(Registry, AllExperimentsRegisteredAndFindable)
{
    EXPECT_EQ(benchRegistry().size(), 14u);
    for (const char *name : {"fig4", "fig5", "fig6", "table1", "table4",
                             "table7", "table8", "sec321", "sec5", "sec84",
                             "ablation_cbf", "micro", "secsweep", "fuzz"}) {
        const BenchInfo *info = findBench(name);
        ASSERT_NE(info, nullptr) << name;
        EXPECT_STREQ(info->name, name);
        EXPECT_NE(info->fn, nullptr);
    }
    EXPECT_EQ(findBench("nope"), nullptr);
}

/** Run one registered experiment at the given scale and worker count. */
Json
runAt(const char *name, double scale, unsigned jobs)
{
    const BenchInfo *info = findBench(name);
    EXPECT_NE(info, nullptr);
    Runner pool(jobs);
    BenchContext ctx;
    ctx.scale = scale;
    ctx.runner = &pool;
    testing::internal::CaptureStdout();
    runBench(*info, ctx);
    testing::internal::GetCapturedStdout();
    return ctx.result;
}

TEST(Registry, Fig4JsonIsIdenticalAcrossWorkerCounts)
{
    Json serial = runAt("fig4", 0.1, 1);
    Json parallel = runAt("fig4", 0.1, 4);
    EXPECT_EQ(serial.dump(2), parallel.dump(2));
}

TEST(Registry, Sec5JsonIsIdenticalAcrossWorkerCounts)
{
    Json serial = runAt("sec5", 0.1, 1);
    Json parallel = runAt("sec5", 0.1, 4);
    EXPECT_EQ(serial.dump(2), parallel.dump(2));
}

/**
 * Regression vs. the legacy fig4_singlecore binary: its per-app numbers
 * were ratio(baseline IPC / mechanism IPC) and ratio(mechanism energy /
 * baseline energy) from runExperiment on the single-threaded bench
 * config. The registered experiment must report exactly those values.
 */
TEST(Regression, Fig4JsonMatchesLegacyPerBinaryOutputs)
{
    const double scale = 0.1;
    Json result = runAt("fig4", scale, 4);
    const Json *per_app = result.find("per_app");
    ASSERT_NE(per_app, nullptr);
    ASSERT_GT(per_app->size(), 0u);

    BenchContext legacy_ctx;
    legacy_ctx.scale = scale;
    ExperimentConfig cfg = benchConfig(legacy_ctx, "Baseline");
    cfg.threads = 1;

    // Spot-check the first app of the sweep under two mechanisms.
    const std::string app = appsInCategory('L').front();
    const Json *app_json = per_app->find(app);
    ASSERT_NE(app_json, nullptr) << app;

    MixSpec mix;
    mix.name = app;
    mix.apps = {app};
    RunResult base = runExperiment(cfg, mix);
    for (const std::string mech : {"BlockHammer", "PARA"}) {
        ExperimentConfig mech_cfg = cfg;
        mech_cfg.mechanism = mech;
        RunResult res = runExperiment(mech_cfg, mix);
        const Json *mech_json = app_json->find(mech);
        ASSERT_NE(mech_json, nullptr) << mech;
        EXPECT_DOUBLE_EQ(mech_json->find("time_norm")->asDouble(),
                         base.ipc[0] / res.ipc[0])
            << app << "/" << mech;
        EXPECT_DOUBLE_EQ(mech_json->find("energy_norm")->asDouble(),
                         res.energyJ / base.energyJ)
            << app << "/" << mech;
    }
}

/**
 * Regression vs. the legacy table1_config binary: every parameter it
 * printed must appear in the JSON with the same analytic value.
 */
TEST(Regression, Table1JsonMatchesLegacyPerBinaryOutputs)
{
    Json result = runAt("table1", 1.0, 1);
    const Json *params = result.find("params");
    ASSERT_NE(params, nullptr);

    auto timings = DramTimings::ddr4();
    auto cfg = BlockHammerConfig::forThreshold(32768, timings);
    EXPECT_EQ(params->find("N_RH")->asInt(), cfg.nRH);
    EXPECT_EQ(params->find("N_RH_star")->asInt(), cfg.nRHStar());
    EXPECT_DOUBLE_EQ(params->find("tREFW_ms")->asDouble(),
                     cyclesToNs(cfg.tREFW) / 1e6);
    EXPECT_DOUBLE_EQ(params->find("tRC_ns")->asDouble(),
                     cyclesToNs(cfg.tRC));
    EXPECT_EQ(params->find("N_BL")->asInt(), cfg.nBL);
    EXPECT_DOUBLE_EQ(params->find("tDelay_us")->asDouble(),
                     cyclesToNs(cfg.tDelay()) / 1e3);
    EXPECT_EQ(params->find("cbf_counters")->asInt(), cfg.cbf.numCounters);
    EXPECT_EQ(params->find("cbf_hashes")->asInt(), cfg.cbf.numHashes);
    EXPECT_EQ(params->find("history_entries")->asInt(),
              cfg.historyEntries());

    auto worst = cfg;
    worst.blast = BlastModel::worstCase();
    EXPECT_DOUBLE_EQ(result.find("worst_case_nrh_star_ratio")->asDouble(),
                     static_cast<double>(worst.nRHStar()) / worst.nRH);
}

TEST(Json, DumpIsDeterministicAndOrdered)
{
    Json j = Json::object();
    j["b"] = 1;
    j["a"] = 2.5;
    j["nested"] = Json::object();
    j["nested"]["x"] = "hi\"there";
    j["arr"].push(1).push(true);
    EXPECT_EQ(j.dump(),
              "{\"b\":1,\"a\":2.5,\"nested\":{\"x\":\"hi\\\"there\"},"
              "\"arr\":[1,true]}");
    EXPECT_EQ(j.dump(), j.dump());
}

TEST(Json, DoubleRoundTripsShortest)
{
    EXPECT_EQ(Json::formatDouble(1.0), "1");
    EXPECT_EQ(Json::formatDouble(0.5), "0.5");
    EXPECT_EQ(Json::formatDouble(1.0 / 3.0), "0.3333333333333333");
}

} // namespace
} // namespace bh
