// Fixture: rule R5 (member-init) flags uninitialized POD and pointer
// members; initialized ones pass.
struct FixtureCounters
{
    unsigned acts;
    double rate;
    int *scratch;
    unsigned inited = 0;
    double ratio = 1.0;
};
