// Fixture: rule R3 (observer-const) suppression path. The path mimics
// src/analysis/security_oracle.hh so the rule's scoping applies.
struct FixtureOracle
{
    void onActivate(const FixtureState &state, long now);
    // bh-lint: allow(observer-const) fixture exercises the suppression path
    void prune(FixtureState &state, long now);
};
