// Fixture: rule R3 (observer-const) flags mutable observer parameters.
// The path mimics src/dram/hammer_observer.hh so the rule's scoping
// applies; never compiled.
struct FixtureObserver
{
    void onActivate(FixtureState &state, long now);
    void onRefresh(const FixtureState &state, long now);
};
