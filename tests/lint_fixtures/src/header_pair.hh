// Fixture: paired-header analysis — the member is declared here, the
// iteration lives in header_pair.cc.
#include <unordered_map>

struct FixtureTable
{
    std::unordered_map<int, int> counts;
    int spillover = 0;
};
