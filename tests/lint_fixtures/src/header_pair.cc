// Fixture: iterating a member declared in the paired header must still
// be caught by rule R2 (runLint feeds header names into the .cc pass).
#include "header_pair.hh"

int
sumCounts(const FixtureTable &table)
{
    int sum = 0;
    for (const auto &kv : table.counts)
        sum += kv.second;
    return sum;
}
