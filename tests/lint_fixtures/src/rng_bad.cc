// Fixture: rule R4 (rng-discipline) flags std randomness and impure
// Rng seeds.
#include <random>

#include "common/rng.hh"

unsigned
badEngine()
{
    std::mt19937 gen(12345);
    return gen();
}

unsigned long
badSeed()
{
    auto r = Rng(time(nullptr));
    return r.next();
}
