// Fixture: rule R3 (trace-gate) passes gated emit sites and honors
// suppressions.
#include "common/trace_sink.hh"

void
emitGated(long now)
{
    if (TraceSink::on()) {
        TraceSink::instant("cat", "evt", 0, now, {});
        TraceSink::counter("cat", "evt", 0, now, 1);
    }
    if (TraceSink::on())
        TraceSink::complete("cat", "evt", 0, now, 1);
    // bh-lint: allow(trace-gate) fixture exercises the suppression path
    TraceSink::instant("cat", "evt", 0, now, {});
}
