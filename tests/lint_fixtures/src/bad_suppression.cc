// Fixture: malformed bh-lint annotations are themselves findings.
// bh-lint: allow(nondet)
int lacksReason;

// bh-lint: allow(not-a-real-rule) some reason text
int unknownRule;

// bh-lint: deny(nondet) some reason text
int unknownVerb;
