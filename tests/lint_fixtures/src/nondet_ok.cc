// Fixture: rule R1 (nondet) suppressions silence each finding.
#include <cstdlib>

int
okRandOwnLine()
{
    // bh-lint: allow(nondet) fixture exercises the own-line suppression path
    return rand();
}

long
okTimeSameLine()
{
    return time(nullptr); // bh-lint: allow(nondet) fixture exercises the same-line suppression path
}
