// Fixture: rule R2 (unordered-iter) passes through the sorted-emission
// helpers and honors suppressions.
#include <unordered_map>

#include "common/ordered.hh"

int
sumValuesSorted(const std::unordered_map<int, int> &m)
{
    int sum = 0;
    for (const auto &kv : sortedItems(m))
        sum += kv.second;
    for (int key : sortedMapKeys(m))
        sum += key;
    return sum;
}

int
sumValuesSuppressed(const std::unordered_map<int, int> &m)
{
    int sum = 0;
    // bh-lint: allow(unordered-iter) fixture exercises the suppression path
    for (const auto &kv : m)
        sum += kv.second;
    return sum;
}
