// Fixture: rule R1 (nondet) flags each banned nondeterminism source.
// Never compiled — lexed by tests/test_lint.cc only.
#include <chrono>
#include <cstdlib>
#include <map>

int
badRand()
{
    return rand();
}

long
badTime()
{
    return time(nullptr);
}

double
badWallClock()
{
    auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

std::map<int *, int> badPointerKeys;
