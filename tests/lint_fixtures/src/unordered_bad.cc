// Fixture: rule R2 (unordered-iter) flags raw iteration, including
// through a nested container's range-for loop variable.
#include <unordered_map>
#include <vector>

int
sumValues(const std::unordered_map<int, int> &m)
{
    std::unordered_map<int, int> local = m;
    int sum = 0;
    for (const auto &kv : local)
        sum += kv.second;
    for (auto it = local.begin(); it != local.end(); ++it)
        sum += it->second;
    return sum;
}

int
sumBanks(const std::vector<std::unordered_map<int, int>> &banks)
{
    int sum = 0;
    // The outer vector walk is order-safe and must NOT be flagged...
    for (const auto &bank : banks) {
        // ...but the loop variable is an unordered map: this one is.
        for (const auto &kv : bank)
            sum += kv.second;
    }
    return sum;
}
