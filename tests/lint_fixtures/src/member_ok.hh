// Fixture: rule R5 (member-init) passes initialized members and honors
// suppressions.
struct FixtureCountersOk
{
    unsigned acts = 0;
    double rate = 0.0;
    int *scratch = nullptr;
    // bh-lint: allow(member-init) fixture exercises the suppression path
    unsigned lazy;
};
