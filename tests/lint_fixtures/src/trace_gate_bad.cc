// Fixture: rule R3 (trace-gate) flags emit calls outside the gate.
#include "common/trace_sink.hh"

void
emitUngated(long now)
{
    TraceSink::instant("cat", "evt", 0, now, {});
}

void
emitNegatedGate(long now)
{
    if (!TraceSink::on())
        return;
    TraceSink::counter("cat", "evt", 0, now, 1);
}
