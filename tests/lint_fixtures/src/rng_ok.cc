// Fixture: rule R4 (rng-discipline) passes pure seeds and honors
// suppressions.
#include "common/rng.hh"

unsigned long
okSeed(unsigned long masterSeed)
{
    auto r = Rng(masterSeed ^ 0x9e3779b97f4a7c15ull);
    return r.next();
}

unsigned long
suppressedSeed()
{
    // bh-lint: allow(rng-discipline, nondet) fixture exercises the multi-rule suppression path
    auto r = Rng(time(nullptr));
    return r.next();
}
