/**
 * @file
 * Reproduces Section 5 (Tables 2 and 3): the security analysis.
 *
 *  1. Table 2: the five epoch types and their maximum activation counts.
 *  2. Table 3's constraint system, solved by exhaustive maximization: the
 *     largest activation count any epoch sequence can accumulate within a
 *     refresh window, shown to be below N_RH for every configuration
 *     (the paper uses an analytical solver; the search is equivalent).
 *  3. An empirical adversary: a worst-case access pattern (N_BL fast
 *     activations, then tDelay-paced retries) simulated against the full
 *     RowBlocker implementation, confirming the analytical bound.
 */

#include "bench/experiments.hh"
#include "analysis/security.hh"
#include "blockhammer/row_blocker.hh"

namespace bh
{

namespace
{

/** Drive RowBlocker with an optimal adversary for `window` cycles. */
std::uint64_t
empiricalMaxActs(const BlockHammerConfig &cfg, Cycle window)
{
    RowBlocker rb(cfg);
    Cycle now = 0;
    std::uint64_t acts = 0;
    // Greedy adversary: activate the target row the instant RowBlocker
    // calls it safe, respecting tRC back-to-back timing.
    Cycle next_try = 0;
    while (now < window) {
        rb.clockTick(now);
        if (now >= next_try && rb.isSafe(0, 7, now)) {
            rb.onActivate(0, 7, now);
            ++acts;
            next_try = now + cfg.tRC;
        }
        // Jump to the next interesting instant instead of single-stepping.
        Cycle step = rb.isBlacklisted(0, 7) ? 16 : cfg.tRC;
        now += step;
    }
    return acts;
}

} // namespace

void
benchSec5(BenchContext &ctx)
{
    // The empirical adversary runs are this experiment's only simulation
    // cells; declare them first so sharded runs can stop right after.
    // Compressed windows keep the empirical run fast; ratios match the
    // paper configuration exactly. Independent cells, one per threshold.
    const std::vector<std::uint32_t> emp_nrh = {4096u, 2048u, 1024u};
    std::vector<Json> cells = ctx.runCells(
        "empirical", emp_nrh.size(), [&](std::size_t i) {
            DramTimingNs ns;
            ns.tREFW = 2e6;     // 2 ms window
            auto timings = DramTimings::fromNs(ns);
            auto c = BlockHammerConfig::forThreshold(emp_nrh[i], timings);
            SecurityAnalyzer s(c);
            FeasibilityResult r = s.analyze();
            Json cell = Json::object();
            cell["window_cycles"] = static_cast<std::int64_t>(c.tREFW);
            cell["adversary_acts"] = empiricalMaxActs(c, c.tREFW);
            cell["analytic_bound"] = r.maxActsInWindow;
            return cell;
        });
    if (!ctx.aggregate())
        return;

    auto cfg = BlockHammerConfig::forThreshold(32768, DramTimings::ddr4());
    SecurityAnalyzer sa(cfg);

    std::printf("--- Table 2: epoch types (N_RH=32K configuration) ---\n");
    TextTable t2({"type", "N_ep-1", "N_ep", "Nep_max"});
    Json epochs = Json::object();
    for (const auto &b : sa.epochBounds()) {
        epochs[epochTypeName(b.type)] = b.nepMax;
        t2.addRow({epochTypeName(b.type), b.descrPrev, b.descrCur,
                   strfmt("%lld", static_cast<long long>(b.nepMax))});
    }
    std::printf("%s\n", t2.render().c_str());
    ctx.result["epoch_bounds"] = epochs;

    std::printf("--- Table 3: feasibility search across thresholds ---\n");
    TextTable t3({"N_RH", "N_RH*", "max acts/window", "attack possible?",
                  "margin vs N_RH"});
    Json feasibility = Json::object();
    for (std::uint32_t nrh : {32768u, 16384u, 8192u, 4096u, 2048u, 1024u}) {
        auto c = BlockHammerConfig::forThreshold(nrh, DramTimings::ddr4());
        SecurityAnalyzer s(c);
        FeasibilityResult r = s.analyze();
        double margin = 1.0 - ratio(static_cast<double>(r.maxActsInWindow),
                                    static_cast<double>(r.nRH));
        Json row = Json::object();
        row["N_RH_star"] = r.nRHStar;
        row["max_acts_in_window"] = r.maxActsInWindow;
        row["attack_possible"] = r.attackPossible;
        row["margin"] = margin;
        feasibility[strfmt("%u", nrh)] = row;
        t3.addRow({strfmt("%u", nrh),
                   strfmt("%lld", static_cast<long long>(r.nRHStar)),
                   strfmt("%lld", static_cast<long long>(r.maxActsInWindow)),
                   r.attackPossible ? "YES (BUG)" : "no",
                   TextTable::num(margin, 3)});
    }
    std::printf("%s\n", t3.render().c_str());
    std::printf("Paper result: no n_i combination satisfies the attack "
                "constraints -> attack impossible.\n\n");
    ctx.result["feasibility"] = feasibility;

    std::printf("--- Empirical adversary vs. RowBlocker implementation ---\n");
    TextTable te({"config", "window", "adversary acts", "analytic bound",
                  "N_RH", "safe?"});
    Json empirical = Json::object();
    for (std::size_t i = 0; i < emp_nrh.size(); ++i) {
        const Json &c = cells[i];
        std::int64_t window = cellInt(c, "window_cycles");
        std::uint64_t acts =
            static_cast<std::uint64_t>(cellInt(c, "adversary_acts"));
        std::int64_t bound = cellInt(c, "analytic_bound");
        Json row = Json::object();
        row["window_cycles"] = window;
        row["adversary_acts"] = acts;
        row["analytic_bound"] = bound;
        row["safe"] = acts < emp_nrh[i];
        empirical[strfmt("%u", emp_nrh[i])] = row;
        te.addRow({strfmt("N_RH=%u/2ms", emp_nrh[i]),
                   strfmt("%lld", static_cast<long long>(window)),
                   strfmt("%llu", static_cast<unsigned long long>(acts)),
                   strfmt("%lld", static_cast<long long>(bound)),
                   strfmt("%u", emp_nrh[i]),
                   acts < emp_nrh[i] ? "yes" : "NO (BUG)"});
    }
    std::printf("%s\n", te.render().c_str());
    ctx.result["empirical"] = empirical;
}

} // namespace bh
