/**
 * @file
 * The registered bh_bench experiments, one per reproduced paper artifact.
 * Implementations live in the per-artifact bench .cc files; registry.cc
 * binds them to their CLI names (explicit registration keeps static-
 * library linking reliable — no self-registering globals to drop).
 */

#ifndef BH_BENCH_EXPERIMENTS_HH
#define BH_BENCH_EXPERIMENTS_HH

#include "bench/bench_util.hh"

namespace bh
{

void benchFig4(BenchContext &ctx);          ///< single-core time/energy
void benchFig5(BenchContext &ctx);          ///< 8-core multiprogrammed
void benchFig6(BenchContext &ctx);          ///< N_RH scaling sweep
void benchTable1(BenchContext &ctx);        ///< BlockHammer parameters
void benchTable4(BenchContext &ctx);        ///< hardware cost comparison
void benchTable7(BenchContext &ctx);        ///< config scaling across N_RH
void benchTable8(BenchContext &ctx);        ///< app characterization
void benchSec321(BenchContext &ctx);        ///< RHLI observe vs full
void benchSec5(BenchContext &ctx);          ///< security analysis
void benchSec84(BenchContext &ctx);         ///< false positives / delays
void benchAblationCbf(BenchContext &ctx);   ///< CBF size / N_BL sweep
void benchMicro(BenchContext &ctx);         ///< component microbenchmarks
void benchSecSweep(BenchContext &ctx);      ///< attack catalog x mechanisms
void benchFuzz(BenchContext &ctx);          ///< red-team evasion fuzzer

} // namespace bh

#endif // BH_BENCH_EXPERIMENTS_HH
