/**
 * @file
 * Experiment registry for the bh_bench driver: maps each reproduced
 * paper artifact (fig4, table1, ...) to its title, paper reference, and
 * entry point. Experiments share one Runner pool; the driver executes
 * experiments sequentially and each experiment fans its independent
 * sweep cells out across the pool (cells must not re-enter the pool).
 */

#ifndef BH_BENCH_REGISTRY_HH
#define BH_BENCH_REGISTRY_HH

#include <string>
#include <vector>

#include "bench/bench_util.hh"

namespace bh
{

/** One registered experiment. */
struct BenchInfo
{
    const char *name;       ///< CLI name, e.g. "fig4"
    const char *title;      ///< human-readable headline
    const char *paperRef;   ///< which paper artifact it reproduces
    void (*fn)(BenchContext &ctx);
};

/** All registered experiments, in canonical (paper) order. */
const std::vector<BenchInfo> &benchRegistry();

/** Lookup by CLI name; nullptr when unknown. */
const BenchInfo *findBench(const std::string &name);

/**
 * Run one experiment: prints its header (except in Enumerate mode),
 * executes it, and stamps the result JSON with the experiment name,
 * scale, a run manifest (shard spec, cell counts, grid fingerprint,
 * per-cell digests), and the recorded cell payloads. The caller
 * provides the context (scale, runner, cell mode/shard) and owns the
 * filled result; bh_collect merges sharded results back together.
 */
void runBench(const BenchInfo &info, BenchContext &ctx);

/**
 * Grid identity hash of an experiment at the context's scale/channels:
 * call after an Enumerate pass has filled ctx.phases/nextCell. Shards
 * (and resume runs) only combine when their fingerprints agree.
 */
std::string benchGridFingerprint(const BenchInfo &info,
                                 const BenchContext &ctx);

} // namespace bh

#endif // BH_BENCH_REGISTRY_HH
