/**
 * @file
 * Reproduces Table 8: MPKI and RBCPKI of the 30 benign applications,
 * measured by running each synthetic app alone on the baseline system.
 * The reproduction target is the L/M/H RBCPKI category of each app (the
 * property that drives mitigation behavior), not the absolute values of
 * the original SPEC/YCSB/NXP traces.
 */

#include "bench/experiments.hh"
#include "workloads/catalog.hh"

namespace bh
{

void
benchTable8(BenchContext &ctx)
{
    ExperimentConfig cfg = benchConfig(ctx, "Baseline");
    cfg.threads = 1;
    cfg.hammerObserver = false;

    const auto &catalog = appCatalog();
    // One cell per app: run it alone and characterize it.
    std::vector<Json> cells = ctx.runCells(
        "apps", catalog.size(), [&](std::size_t i) {
            const auto &app = catalog[i];
            MixSpec mix;
            mix.name = app.params.name;
            mix.apps = {app.params.name};
            auto system = buildSystem(cfg, mix);
            system->run(cfg.warmupCycles);
            system->startMeasurement();

            // Snapshot thread-level counters at measurement start,
            // summed across channel lanes.
            auto memStats = [&] {
                ThreadMemStats sum;
                MemSystem &mem = system->mem();
                for (unsigned ch = 0; ch < mem.channels(); ++ch) {
                    const auto &ts = mem.controller(ch).threadStats(0);
                    sum.rowConflicts += ts.rowConflicts;
                    sum.rowHits += ts.rowHits;
                    sum.rowMisses += ts.rowMisses;
                }
                return sum;
            };
            auto llc0 = system->llc()->threadStats(0);
            auto mem0 = memStats();
            std::uint64_t retired0 = system->core(0).retired();
            system->run(cfg.runCycles);
            auto llc1 = system->llc()->threadStats(0);
            auto mem1 = memStats();

            double kilo_instr =
                static_cast<double>(system->core(0).retired() - retired0) /
                1000.0;
            Json cell = Json::object();
            // Apps that bypass the cache have no LLC-miss-based MPKI
            // (Table 8 lists '-').
            cell["mpki"] = app.params.bypassCache
                ? -1.0
                : ratio(static_cast<double>(llc1.misses - llc0.misses),
                        kilo_instr);
            cell["rbcpki"] = ratio(
                static_cast<double>(mem1.rowConflicts - mem0.rowConflicts),
                kilo_instr);
            return cell;
        });
    if (!ctx.aggregate())
        return;

    TextTable t({"app", "class", "paper MPKI", "MPKI", "paper RBCPKI",
                 "RBCPKI", "class OK?"});
    Json apps = Json::object();
    unsigned correct = 0, total = 0;
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const auto &app = catalog[i];
        double mpki = cellNum(cells[i], "mpki");
        double rbcpki = cellNum(cells[i], "rbcpki");
        char measured_class =
            rbcpki < 1.0 ? 'L' : (rbcpki < 5.0 ? 'M' : 'H');
        bool ok = measured_class == app.category;
        correct += ok;
        ++total;
        Json row = Json::object();
        row["category"] = std::string(1, app.category);
        row["mpki"] = mpki;
        row["rbcpki"] = rbcpki;
        row["category_ok"] = ok;
        apps[app.params.name] = row;
        t.addRow({app.params.name, std::string(1, app.category),
                  app.paperMpki < 0 ? "-" : TextTable::num(app.paperMpki, 1),
                  mpki < 0 ? "-" : TextTable::num(mpki, 1),
                  TextTable::num(app.paperRbcpki, 1),
                  TextTable::num(rbcpki, 1),
                  ok ? "yes" : "NO"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("category agreement: %u / %u apps\n\n", correct, total);
    ctx.result["apps"] = apps;
    ctx.result["category_agreement"] = correct;
    ctx.result["total_apps"] = total;
}

} // namespace bh
