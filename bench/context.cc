/**
 * @file
 * BenchContext::runCells — the one entry point every experiment's sweep
 * cells go through, and the seam where sharding, cell enumeration, and
 * bh_collect replay plug into the bench layer.
 */

#include <chrono>
#include <mutex>

#include "bench/bench_util.hh"
#include "sim/system.hh"

namespace bh
{

namespace
{

/** Serializes cellPerf insertion from pool workers. */
std::mutex perfMutex;

} // namespace

std::vector<Json>
BenchContext::runCells(const std::string &label, std::size_t n,
                       const std::function<Json(std::size_t)> &fn)
{
    const std::uint64_t first = nextCell;
    nextCell += n;
    phases.push_back({label, first, n});

    std::vector<Json> out(n);
    if (mode == CellMode::Enumerate)
        return out;

    if (mode == CellMode::Replay) {
        if (!replayCells)
            panic("runCells: Replay mode without replay cells");
        for (std::size_t i = 0; i < n; ++i) {
            const Json *payload =
                replayCells->find(std::to_string(first + i));
            if (!payload || payload->isNull())
                fatal("replay: cell %llu (phase \"%s\") missing from "
                      "merged shards",
                      static_cast<unsigned long long>(first + i),
                      label.c_str());
            out[i] = *payload;
        }
    } else {
        // Block-local indices of the cells this shard owns; cells keep
        // their block-local index in `fn`, so a sharded run executes
        // exactly the same fn(i) calls an unsharded run would. A resume
        // run additionally drops cells that already exist on disk.
        std::vector<std::size_t> owned;
        owned.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (!shardOwns(shard, first + i))
                continue;
            if (resumeCovered && resumeCovered->count(first + i))
                continue;
            owned.push_back(i);
        }
        if (!runner)
            panic("runCells: no runner configured");
        runner->forEach(owned.size(), [&](std::size_t k) {
            // Self-profile every executed cell: wall-clock around fn()
            // plus the simulated cycles the worker thread covers inside
            // it (System::run accumulates a thread-local counter).
            resetSimCyclesThisThread();
            // bh-lint: allow(nondet) wall-clock self-profile sidecar; never feeds simulation state
            auto t0 = std::chrono::steady_clock::now();
            out[owned[k]] = fn(owned[k]);
            // bh-lint: allow(nondet) wall-clock self-profile sidecar; never feeds simulation state
            auto t1 = std::chrono::steady_clock::now();
            CellPerf perf;
            perf.wallS = std::chrono::duration<double>(t1 - t0).count();
            perf.simCycles = simCyclesThisThread();
            std::lock_guard<std::mutex> lock(perfMutex);
            cellPerf[first + owned[k]] = perf;
        });
        for (std::size_t i : owned)
            if (out[i].isNull())
                panic("runCells: cell %llu (phase \"%s\") produced a null "
                      "payload",
                      static_cast<unsigned long long>(first + i),
                      label.c_str());
    }

    // Record the produced payloads by global index (ascending: `out` is
    // walked in order, so shard files and replayed reports serialize
    // their cells identically).
    for (std::size_t i = 0; i < n; ++i) {
        if (out[i].isNull())
            continue;       // unowned cell of a sharded run
        cells[std::to_string(first + i)] = out[i];
        ++cellsRun;
    }
    return out;
}

} // namespace bh
