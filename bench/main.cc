/**
 * @file
 * bh_bench: the registry-driven experiment driver. Runs any subset of
 * the reproduced paper artifacts, fanning each experiment's independent
 * sweep cells across a shared thread pool, and writes one machine-
 * readable BENCH_<name>.json per experiment next to the ASCII tables.
 *
 * Determinism: for fixed --scale, the JSON output is byte-identical at
 * any --jobs value (micro's wall-clock timings go to stdout only).
 *
 * Distribution: --shard i/n runs only the sweep cells shard i owns and
 * writes partial reports (manifest + raw cell payloads); `bh_collect
 * merge` recombines n shards into a report byte-identical to an
 * unsharded run. Every output carries a run manifest with a grid
 * fingerprint and per-cell digests, so merges of mismatched or edited
 * shards fail loudly.
 */

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <ctime>

#include "bench/registry.hh"
#include "common/fsio.hh"
#include "common/trace_sink.hh"
#include "report/report.hh"
#include "sim/system.hh"
#include "workloads/fuzz_patterns.hh"

namespace
{

void
usage(std::FILE *out)
{
    std::fprintf(out,
        "usage: bh_bench [options] [experiment...]\n"
        "\n"
        "Runs the named experiments (default: all) and writes one\n"
        "BENCH_<name>.json per experiment.\n"
        "\n"
        "options:\n"
        "  --list        list experiments with their sweep-cell counts\n"
        "                at the current --scale, and exit\n"
        "  --jobs N      worker threads for sweep cells (default: all cores)\n"
        "  --scale X     fidelity multiplier >= 0.1 (default: BH_SCALE or 1)\n"
        "                scale > 1 also widens tREFW/N_RH toward paper\n"
        "                values: tREFW = min(scale, 64) ms (see DESIGN.md)\n"
        "  --fast        shorthand for --scale 0.1 (CI smoke runs)\n"
        "  --skip MODE   simulation time advance: on (event skipping,\n"
        "                default), off (cycle by cycle), or verify\n"
        "                (cycle by cycle, asserting every skip claim);\n"
        "                results are identical in all three modes\n"
        "  --channels N  DRAM channels per simulated system (power of\n"
        "                two, default 1); each channel gets its own\n"
        "                controller and mitigation instance\n"
        "  --channel-threads N\n"
        "                worker threads ticking channel lanes inside\n"
        "                each cell (default 1); results are\n"
        "                byte-identical for any value\n"
        "  --attack NAME restrict attack-catalog experiments (secsweep)\n"
        "                to patterns whose name contains NAME; part of\n"
        "                the grid identity (shards merge only with the\n"
        "                same filter). See --list for the catalog.\n"
        "  --shard I/N   run only the sweep cells shard I of N owns and\n"
        "                write partial reports for bh_collect merge\n"
        "  --resume DIR  scan DIR for existing BENCH_*.json shards of\n"
        "                the same grid and run only the cells they are\n"
        "                missing, writing BENCH_<name>.resume<k>.json\n"
        "                partials for bh_collect merge (default --out:\n"
        "                DIR itself)\n"
        "  --out DIR     directory for the JSON outputs (default: .)\n"
        "  --trace FILE[:FILTER]\n"
        "                write a Chrome trace_event JSON timeline of the\n"
        "                simulation to FILE (open in Perfetto / \n"
        "                chrome://tracing). FILTER is a comma-separated\n"
        "                list of category substrings (mem, queue, mitig,\n"
        "                lane, skip); default all. Observation only:\n"
        "                BENCH_*.json stays byte-identical with tracing\n"
        "                on, off, or filtered\n"
        "  --help        this message\n"
        "\n"
        "Every run also writes a BENCH_perf.json self-profile (wall-clock\n"
        "and simulated cycles per experiment/phase/cell) next to the\n"
        "reports; see `bh_collect perfgate`.\n");
}

/**
 * Load every BENCH_*.json under `dir` that parses cleanly. Unreadable
 * or truncated files — exactly what a crashed shard run leaves behind —
 * are quarantined to `<file>.corrupt` so they stop shadowing the real
 * output name, and their cells count as missing and get re-run.
 * `bh_collect status` reports the quarantined files.
 */
std::vector<bh::LoadedReport>
loadResumeReports(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    std::error_code ec;
    if (!fs::is_directory(dir, ec) || ec)
        bh::fatal("--resume: %s is not a directory", dir.c_str());
    auto it = fs::recursive_directory_iterator(dir, ec);
    for (; !ec && it != fs::recursive_directory_iterator();
         it.increment(ec)) {
        std::error_code type_ec;
        if (!it->is_regular_file(type_ec) || type_ec)
            continue;
        std::string name = it->path().filename().string();
        // BENCH_perf.json is the self-profile sidecar, not a report.
        if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0 &&
            name != "BENCH_perf.json")
            files.push_back(it->path().string());
    }
    if (ec)
        bh::fatal("--resume: error scanning %s: %s", dir.c_str(),
                  ec.message().c_str());
    std::sort(files.begin(), files.end());

    std::vector<bh::LoadedReport> reports;
    for (const std::string &file : files) {
        bh::LoadedReport report;
        std::string err;
        if (!loadReportFile(file, report, err)) {
            std::string moved = bh::quarantineCorrupt(file);
            if (moved.empty())
                bh::warn("--resume: skipping %s (%s); its cells count as "
                         "missing", file.c_str(), err.c_str());
            else
                bh::warn("--resume: quarantined %s -> %s (%s); its cells "
                         "count as missing", file.c_str(), moved.c_str(),
                         err.c_str());
            continue;
        }
        reports.push_back(std::move(report));
    }
    return reports;
}

/**
 * Global cell indices of `experiment` already covered by loaded shard
 * files whose grid fingerprint matches this binary's grid.
 */
std::set<std::uint64_t>
coveredCells(const std::vector<bh::LoadedReport> &reports,
             const std::string &experiment, const std::string &fingerprint)
{
    std::set<std::uint64_t> covered;
    for (const auto &report : reports) {
        if (report.manifest.experiment != experiment ||
            report.manifest.fingerprint != fingerprint)
            continue;
        const bh::Json *cells = report.doc.find("cells");
        if (!cells || cells->type() != bh::Json::Type::Object)
            continue;
        for (const auto &kv : cells->objectItems())
            covered.insert(std::strtoull(kv.first.c_str(), nullptr, 10));
    }
    return covered;
}

/** True when any scanned report is a complete run of this exact grid. */
bool
haveCompleteReport(const std::vector<bh::LoadedReport> &reports,
                   const std::string &experiment,
                   const std::string &fingerprint)
{
    for (const auto &report : reports)
        if (report.manifest.experiment == experiment &&
            report.manifest.fingerprint == fingerprint &&
            !report.manifest.partial)
            return true;
    return false;
}

/** First resume output path that does not collide with an existing file. */
std::string
resumeOutputPath(const std::string &out_dir, const std::string &experiment)
{
    for (unsigned k = 1;; ++k) {
        std::string path = out_dir + "/BENCH_" + experiment + ".resume" +
            std::to_string(k) + ".json";
        if (!std::filesystem::exists(path))
            return path;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bh;

    setVerbose(false);
    double scale = benchScale();
    unsigned jobs = 0;      // 0 = hardware concurrency
    std::string out_dir;
    std::string resume_dir;
    ShardSpec shard;
    SkipMode skip = SkipMode::kEventSkip;
    unsigned channels = 1;
    unsigned channel_threads = 1;
    std::string attack_filter;
    std::string trace_path;
    std::string trace_filter;
    bool list = false;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("option %s needs a value", arg);
            return argv[++i];
        };
        if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
            usage(stdout);
            return 0;
        } else if (!std::strcmp(arg, "--list")) {
            list = true;
        } else if (!std::strcmp(arg, "--jobs") || !std::strcmp(arg, "-j")) {
            int n = std::atoi(value());
            if (n < 0 || n > 4096)
                fatal("--jobs must be in [0, 4096] (0 = all cores)");
            jobs = static_cast<unsigned>(n);
        } else if (!std::strcmp(arg, "--scale")) {
            scale = std::atof(value());
            if (scale < 0.1)
                fatal("--scale must be >= 0.1");
        } else if (!std::strcmp(arg, "--fast")) {
            scale = 0.1;
        } else if (!std::strcmp(arg, "--skip")) {
            const char *mode = value();
            if (!std::strcmp(mode, "on"))
                skip = SkipMode::kEventSkip;
            else if (!std::strcmp(mode, "off"))
                skip = SkipMode::kCycleByCycle;
            else if (!std::strcmp(mode, "verify"))
                skip = SkipMode::kVerify;
            else
                fatal("--skip wants on, off, or verify, got '%s'", mode);
        } else if (!std::strcmp(arg, "--channels")) {
            int n = std::atoi(value());
            if (n < 1 || n > 64 || !isPow2(static_cast<unsigned>(n)))
                fatal("--channels must be a power of two in [1, 64], "
                      "got '%d'", n);
            channels = static_cast<unsigned>(n);
        } else if (!std::strcmp(arg, "--channel-threads")) {
            int n = std::atoi(value());
            if (n < 1 || n > 64)
                fatal("--channel-threads must be in [1, 64]");
            channel_threads = static_cast<unsigned>(n);
        } else if (!std::strcmp(arg, "--attack")) {
            attack_filter = value();
        } else if (!std::strcmp(arg, "--resume")) {
            resume_dir = value();
        } else if (!std::strcmp(arg, "--shard")) {
            const char *spec = value();
            unsigned idx = 0, count = 0;
            if (std::sscanf(spec, "%u/%u", &idx, &count) != 2 ||
                count < 1 || count > 4096 || idx >= count)
                fatal("--shard wants I/N with 0 <= I < N <= 4096, got '%s'",
                      spec);
            shard.index = idx;
            shard.count = count;
        } else if (!std::strcmp(arg, "--out")) {
            out_dir = value();
        } else if (!std::strcmp(arg, "--trace")) {
            trace_path = value();
            // FILE[:FILTER] — split on the last ':' so relative paths
            // with directories stay intact; an empty filter means all.
            std::size_t colon = trace_path.rfind(':');
            if (colon != std::string::npos) {
                trace_filter = trace_path.substr(colon + 1);
                trace_path = trace_path.substr(0, colon);
            }
            if (trace_path.empty())
                fatal("--trace needs a file path");
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", arg);
            usage(stderr);
            return 1;
        } else {
            names.push_back(arg);
        }
    }

    if (resume_dir.size() && shard.count > 1)
        fatal("--resume and --shard are mutually exclusive: resume "
              "derives its own cell subset from the missing set");
    if (out_dir.empty())
        out_dir = resume_dir.empty() ? "." : resume_dir;

    if (list) {
        // Enumerate the cell spaces without simulating anything, so the
        // counts guide the choice of N for --shard I/N.
        Runner runner(1);
        std::printf("%-14s %8s  %s\n", "experiment", "cells", "title");
        for (const auto &info : benchRegistry()) {
            BenchContext ctx;
            ctx.scale = scale;
            ctx.channels = channels;
            ctx.attackFilter = attack_filter;
            ctx.runner = &runner;
            ctx.mode = BenchContext::CellMode::Enumerate;
            runBench(info, ctx);
            std::printf("%-14s %8llu  %s\n", info.name,
                        static_cast<unsigned long long>(ctx.nextCell),
                        info.title);
            // Attack-catalog experiments label one cell phase per
            // pattern; name them so --attack filters are discoverable.
            for (const auto &phase : ctx.phases) {
                if (phase.label.rfind("pattern:", 0) != 0)
                    continue;
                const AttackPatternSpec *spec = findAttackPattern(
                    phase.label.substr(std::strlen("pattern:")));
                std::printf("  %-20s %4llu cells  %s\n",
                            phase.label.c_str(),
                            static_cast<unsigned long long>(phase.count),
                            spec ? spec->summary.c_str() : "");
            }
        }
        std::printf("\ncell counts are per experiment at scale %.2g; "
                    "0 = analytic (runs whole in every shard)\n", scale);
        std::printf("\nattack-pattern catalog (secsweep; filter with "
                    "--attack NAME):\n");
        for (const auto &spec : attackPatternCatalog())
            std::printf("  %-14s %-55s envelope: %s\n", spec.name.c_str(),
                        spec.summary.c_str(), spec.envelopeDescr().c_str());
        std::printf("\nfuzz search space (bh_bench fuzz explores patterns "
                    "beyond this catalog):\n  %s\n",
                    defaultFuzzSpace().describe().c_str());
        return 0;
    }

    std::vector<const BenchInfo *> selected;
    if (names.empty()) {
        for (const auto &info : benchRegistry())
            selected.push_back(&info);
    } else {
        for (const auto &name : names) {
            const BenchInfo *info = findBench(name);
            if (!info) {
                std::fprintf(stderr, "unknown experiment: %s "
                             "(see bh_bench --list)\n", name.c_str());
                return 1;
            }
            selected.push_back(info);
        }
    }

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec)
        fatal("cannot create output directory %s", out_dir.c_str());

    std::vector<LoadedReport> resume_reports;
    if (resume_dir.size())
        resume_reports = loadResumeReports(resume_dir);

    if (trace_path.size()) {
        std::string err;
        if (!TraceSink::open(trace_path, trace_filter, err))
            fatal("--trace: %s", err.c_str());
    }

    Runner runner(jobs);
    std::printf("bh_bench: %zu experiment(s), %u worker(s), scale %.2g",
                selected.size(), runner.jobs(), scale);
    if (channels > 1)
        std::printf(", %u channels (%u lane thread(s))", channels,
                    channel_threads);
    if (shard.count > 1)
        std::printf(", shard %u/%u", shard.index, shard.count);
    if (resume_dir.size())
        std::printf(", resuming from %s", resume_dir.c_str());
    if (trace_path.size())
        std::printf("tracing to %s%s%s\n", trace_path.c_str(),
                    trace_filter.empty() ? "" : ", categories: ",
                    trace_filter.c_str());
    std::printf("\n\n");

    const std::int64_t started_unix =
        static_cast<std::int64_t>(std::time(nullptr));
    Json perf_experiments = Json::object();
    double total_s = 0.0;
    for (const BenchInfo *info : selected) {
        BenchContext ctx;
        ctx.scale = scale;
        ctx.channels = channels;
        ctx.channelThreads = channel_threads;
        ctx.attackFilter = attack_filter;
        ctx.runner = &runner;
        ctx.shard = shard;
        ctx.skip = skip;

        std::set<std::uint64_t> covered;
        if (resume_dir.size()) {
            // Which cells of this binary's grid do the scanned shard
            // files already hold? Fingerprint-mismatched files (other
            // scale/channels, older binary) are simply not coverage.
            BenchContext probe;
            probe.scale = scale;
            probe.channels = channels;
            probe.attackFilter = attack_filter;
            probe.runner = &runner;
            probe.mode = BenchContext::CellMode::Enumerate;
            runBench(*info, probe);
            std::string fp = benchGridFingerprint(*info, probe);
            covered = coveredCells(resume_reports, info->name, fp);
            if (probe.nextCell > 0 && covered.size() >= probe.nextCell) {
                std::printf("[%s: all %llu cells already on disk, "
                            "skipping]\n\n", info->name,
                            static_cast<unsigned long long>(probe.nextCell));
                continue;
            }
            // Analytic experiments (no cells) are complete when any
            // matching full report exists.
            if (probe.nextCell == 0 &&
                haveCompleteReport(resume_reports, info->name, fp)) {
                std::printf("[%s: analytic report already on disk, "
                            "skipping]\n\n", info->name);
                continue;
            }
            // No usable coverage: fall through to a plain full run.
            if (!covered.empty())
                ctx.resumeCovered = &covered;
        }

        auto t0 = std::chrono::steady_clock::now();
        std::uint64_t sim0 = simCyclesTotal();
        runBench(*info, ctx);
        std::uint64_t sim_cycles = simCyclesTotal() - sim0;
        auto t1 = std::chrono::steady_clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        total_s += secs;

        // Self-profile entry (BENCH_perf.json): wall-clock and simulated
        // cycles per experiment, phase, and cell. Host-speed readings
        // live only in this sidecar — BENCH_<name>.json must stay
        // byte-identical across machines and job counts.
        Json pe = Json::object();
        pe["wall_s"] = secs;
        pe["sim_cycles"] = static_cast<std::int64_t>(sim_cycles);
        pe["cycles_per_sec"] =
            secs > 0.0 ? static_cast<double>(sim_cycles) / secs : 0.0;
        pe["cells_run"] = static_cast<std::int64_t>(ctx.cellsRun);
        pe["cell_total"] = static_cast<std::int64_t>(ctx.nextCell);
        Json pe_phases = Json::array();
        for (const auto &phase : ctx.phases) {
            double wall = 0.0;
            std::uint64_t cyc = 0;
            auto lo = ctx.cellPerf.lower_bound(phase.firstCell);
            auto hi = ctx.cellPerf.lower_bound(phase.firstCell + phase.count);
            for (auto it2 = lo; it2 != hi; ++it2) {
                wall += it2->second.wallS;
                cyc += it2->second.simCycles;
            }
            Json p = Json::object();
            p["label"] = phase.label;
            p["cells"] = static_cast<std::int64_t>(phase.count);
            p["wall_s"] = wall;
            p["sim_cycles"] = static_cast<std::int64_t>(cyc);
            pe_phases.push(std::move(p));
        }
        pe["phases"] = std::move(pe_phases);
        Json pe_cells = Json::object();
        for (const auto &kv : ctx.cellPerf) {
            Json c = Json::object();
            c["wall_ms"] = kv.second.wallS * 1e3;
            c["sim_cycles"] = static_cast<std::int64_t>(kv.second.simCycles);
            pe_cells[std::to_string(kv.first)] = std::move(c);
        }
        pe["cells"] = std::move(pe_cells);
        perf_experiments[info->name] = std::move(pe);

        std::string path = ctx.resumeCovered
            ? resumeOutputPath(out_dir, info->name)
            : out_dir + "/BENCH_" + std::string(info->name) + ".json";
        // A resume run that found no usable coverage (the scanned files
        // belong to another grid — different scale/channels or an older
        // binary) falls back to a full run; refuse to silently clobber
        // the mismatched file the user pointed us at.
        if (resume_dir.size() && !ctx.resumeCovered &&
            std::filesystem::exists(path)) {
            fatal("--resume: %s exists but matches no cell of this grid "
                  "(different --scale/--channels or binary version); "
                  "move it aside or pass --out elsewhere", path.c_str());
        }
        atomicWriteFileOrDie(path, ctx.result.dump(2) + "\n");
        if (ctx.resumeCovered)
            std::printf("[%s: resumed %llu missing of %llu cells, "
                        "%.2f s -> %s; run bh_collect merge over %s]\n\n",
                        info->name,
                        static_cast<unsigned long long>(ctx.cellsRun),
                        static_cast<unsigned long long>(ctx.nextCell),
                        secs, path.c_str(), resume_dir.c_str());
        else if (shard.count > 1)
            std::printf("[%s: shard %u/%u ran %llu of %llu cells, "
                        "%.2f s -> %s]\n\n",
                        info->name, shard.index, shard.count,
                        static_cast<unsigned long long>(ctx.cellsRun),
                        static_cast<unsigned long long>(ctx.nextCell),
                        secs, path.c_str());
        else
            std::printf("[%s: %.2f s -> %s]\n\n", info->name, secs,
                        path.c_str());
    }
    // Write the BENCH_perf.json self-profile sidecar. Merge-on-write:
    // a later invocation into the same --out directory (e.g. running
    // experiments one at a time, or a resume pass) updates its own
    // experiments' entries and keeps the rest.
    {
        std::string perf_path = out_dir + "/BENCH_perf.json";
        Json perf = Json::object();
        std::ifstream existing(perf_path, std::ios::binary);
        if (existing) {
            std::ostringstream text;
            text << existing.rdbuf();
            Json prior;
            if (Json::parse(text.str(), prior) &&
                prior.type() == Json::Type::Object) {
                const Json *prev = prior.find("experiments");
                if (prev && prev->type() == Json::Type::Object) {
                    Json merged = Json::object();
                    for (const auto &kv : prev->objectItems())
                        merged[kv.first] = kv.second;
                    for (const auto &kv : perf_experiments.objectItems())
                        merged[kv.first] = kv.second;
                    perf_experiments = std::move(merged);
                }
            }
        }
        perf["format"] = kBenchFormatVersion;
        perf["scale"] = scale;
        perf["jobs"] = static_cast<std::int64_t>(runner.jobs());
        perf["channels"] = static_cast<std::int64_t>(channels);
        perf["channel_threads"] = static_cast<std::int64_t>(channel_threads);
        perf["shard"] = strfmt("%u/%u", shard.index, shard.count);
        perf["started_unix"] = started_unix;
        perf["finished_unix"] =
            static_cast<std::int64_t>(std::time(nullptr));
        perf["total_wall_s"] = total_s;
        perf["experiments"] = std::move(perf_experiments);
        atomicWriteFileOrDie(perf_path, perf.dump(2) + "\n");
    }

    if (trace_path.size()) {
        std::uint64_t events = TraceSink::eventsEmitted();
        TraceSink::close();
        std::printf("bh_bench: trace: %llu event(s) -> %s\n",
                    static_cast<unsigned long long>(events),
                    trace_path.c_str());
    }
    if (warnSuppressedCount() > 0)
        std::fprintf(stderr,
                     "bh_bench: %llu further warning(s) were suppressed\n",
                     static_cast<unsigned long long>(warnSuppressedCount()));
    std::printf("bh_bench: done, %.2f s total\n", total_s);
    return 0;
}
