/**
 * @file
 * bh_bench: the registry-driven experiment driver. Runs any subset of
 * the reproduced paper artifacts, fanning each experiment's independent
 * sweep cells across a shared thread pool, and writes one machine-
 * readable BENCH_<name>.json per experiment next to the ASCII tables.
 *
 * Determinism: for fixed --scale, the JSON output is byte-identical at
 * any --jobs value (micro's wall-clock timings go to stdout only).
 *
 * Distribution: --shard i/n runs only the sweep cells shard i owns and
 * writes partial reports (manifest + raw cell payloads); `bh_collect
 * merge` recombines n shards into a report byte-identical to an
 * unsharded run. Every output carries a run manifest with a grid
 * fingerprint and per-cell digests, so merges of mismatched or edited
 * shards fail loudly.
 */

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "bench/registry.hh"

namespace
{

void
usage(std::FILE *out)
{
    std::fprintf(out,
        "usage: bh_bench [options] [experiment...]\n"
        "\n"
        "Runs the named experiments (default: all) and writes one\n"
        "BENCH_<name>.json per experiment.\n"
        "\n"
        "options:\n"
        "  --list        list experiments with their sweep-cell counts\n"
        "                at the current --scale, and exit\n"
        "  --jobs N      worker threads for sweep cells (default: all cores)\n"
        "  --scale X     fidelity multiplier >= 0.1 (default: BH_SCALE or 1)\n"
        "                scale > 1 also widens tREFW/N_RH toward paper\n"
        "                values: tREFW = min(scale, 64) ms (see DESIGN.md)\n"
        "  --fast        shorthand for --scale 0.1 (CI smoke runs)\n"
        "  --skip MODE   simulation time advance: on (event skipping,\n"
        "                default), off (cycle by cycle), or verify\n"
        "                (cycle by cycle, asserting every skip claim);\n"
        "                results are identical in all three modes\n"
        "  --shard I/N   run only the sweep cells shard I of N owns and\n"
        "                write partial reports for bh_collect merge\n"
        "  --out DIR     directory for the JSON outputs (default: .)\n"
        "  --help        this message\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bh;

    setVerbose(false);
    double scale = benchScale();
    unsigned jobs = 0;      // 0 = hardware concurrency
    std::string out_dir = ".";
    ShardSpec shard;
    SkipMode skip = SkipMode::kEventSkip;
    bool list = false;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("option %s needs a value", arg);
            return argv[++i];
        };
        if (!std::strcmp(arg, "--help") || !std::strcmp(arg, "-h")) {
            usage(stdout);
            return 0;
        } else if (!std::strcmp(arg, "--list")) {
            list = true;
        } else if (!std::strcmp(arg, "--jobs") || !std::strcmp(arg, "-j")) {
            int n = std::atoi(value());
            if (n < 0 || n > 4096)
                fatal("--jobs must be in [0, 4096] (0 = all cores)");
            jobs = static_cast<unsigned>(n);
        } else if (!std::strcmp(arg, "--scale")) {
            scale = std::atof(value());
            if (scale < 0.1)
                fatal("--scale must be >= 0.1");
        } else if (!std::strcmp(arg, "--fast")) {
            scale = 0.1;
        } else if (!std::strcmp(arg, "--skip")) {
            const char *mode = value();
            if (!std::strcmp(mode, "on"))
                skip = SkipMode::kEventSkip;
            else if (!std::strcmp(mode, "off"))
                skip = SkipMode::kCycleByCycle;
            else if (!std::strcmp(mode, "verify"))
                skip = SkipMode::kVerify;
            else
                fatal("--skip wants on, off, or verify, got '%s'", mode);
        } else if (!std::strcmp(arg, "--shard")) {
            const char *spec = value();
            unsigned idx = 0, count = 0;
            if (std::sscanf(spec, "%u/%u", &idx, &count) != 2 ||
                count < 1 || count > 4096 || idx >= count)
                fatal("--shard wants I/N with 0 <= I < N <= 4096, got '%s'",
                      spec);
            shard.index = idx;
            shard.count = count;
        } else if (!std::strcmp(arg, "--out")) {
            out_dir = value();
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", arg);
            usage(stderr);
            return 1;
        } else {
            names.push_back(arg);
        }
    }

    if (list) {
        // Enumerate the cell spaces without simulating anything, so the
        // counts guide the choice of N for --shard I/N.
        Runner runner(1);
        std::printf("%-14s %8s  %s\n", "experiment", "cells", "title");
        for (const auto &info : benchRegistry()) {
            BenchContext ctx;
            ctx.scale = scale;
            ctx.runner = &runner;
            ctx.mode = BenchContext::CellMode::Enumerate;
            runBench(info, ctx);
            std::printf("%-14s %8llu  %s\n", info.name,
                        static_cast<unsigned long long>(ctx.nextCell),
                        info.title);
        }
        std::printf("\ncell counts are per experiment at scale %.2g; "
                    "0 = analytic (runs whole in every shard)\n", scale);
        return 0;
    }

    std::vector<const BenchInfo *> selected;
    if (names.empty()) {
        for (const auto &info : benchRegistry())
            selected.push_back(&info);
    } else {
        for (const auto &name : names) {
            const BenchInfo *info = findBench(name);
            if (!info) {
                std::fprintf(stderr, "unknown experiment: %s "
                             "(see bh_bench --list)\n", name.c_str());
                return 1;
            }
            selected.push_back(info);
        }
    }

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec)
        fatal("cannot create output directory %s", out_dir.c_str());

    Runner runner(jobs);
    std::printf("bh_bench: %zu experiment(s), %u worker(s), scale %.2g",
                selected.size(), runner.jobs(), scale);
    if (shard.count > 1)
        std::printf(", shard %u/%u", shard.index, shard.count);
    std::printf("\n\n");

    double total_s = 0.0;
    for (const BenchInfo *info : selected) {
        BenchContext ctx;
        ctx.scale = scale;
        ctx.runner = &runner;
        ctx.shard = shard;
        ctx.skip = skip;

        auto t0 = std::chrono::steady_clock::now();
        runBench(*info, ctx);
        auto t1 = std::chrono::steady_clock::now();
        double secs = std::chrono::duration<double>(t1 - t0).count();
        total_s += secs;

        std::string path = out_dir + "/BENCH_" + info->name + ".json";
        std::ofstream f(path);
        if (!f)
            fatal("cannot write %s", path.c_str());
        f << ctx.result.dump(2) << "\n";
        if (shard.count > 1)
            std::printf("[%s: shard %u/%u ran %llu of %llu cells, "
                        "%.2f s -> %s]\n\n",
                        info->name, shard.index, shard.count,
                        static_cast<unsigned long long>(ctx.cellsRun),
                        static_cast<unsigned long long>(ctx.nextCell),
                        secs, path.c_str());
        else
            std::printf("[%s: %.2f s -> %s]\n\n", info->name, secs,
                        path.c_str());
    }
    std::printf("bh_bench: done, %.2f s total\n", total_s);
    return 0;
}
