/**
 * @file
 * Reproduces the Section 3.2.1 RHLI experiment: the RowHammer likelihood
 * index of benign threads vs. a RowHammer attack thread, in observe-only
 * and full-functional modes.
 *
 * Paper result: benign RHLI = 0 in both modes; attacks average RHLI 10.9
 * (6.9..15.5) in observe-only mode and drop well below 1 (54x reduction)
 * in full-functional mode.
 */

#include <tuple>

#include "bench/experiments.hh"
#include "blockhammer/blockhammer.hh"

namespace bh
{

namespace
{

struct RhliStats
{
    std::vector<double> attack;
    std::vector<double> benignMax;
};

RhliStats
measure(BenchContext &ctx, const std::string &label,
        const std::string &mode, const std::vector<MixSpec> &mixes)
{
    std::vector<Json> cells = ctx.runCells(
        label, mixes.size(), [&](std::size_t i) {
            const MixSpec &mix = mixes[i];
            ExperimentConfig cfg = benchConfig(ctx, mode);
            auto system = buildSystem(cfg, mix);
            system->run(cfg.warmupCycles + cfg.runCycles);
            MemSystem &mem = system->mem();
            Json attack = Json::array();
            Json benign = Json::array();
            for (unsigned t = 0; t < cfg.threads; ++t) {
                // A thread's RHLI is its worst likelihood across the
                // per-channel BlockHammer instances.
                double rhli = 0.0;
                for (unsigned ch = 0; ch < mem.channels(); ++ch) {
                    auto *bh = dynamic_cast<BlockHammer *>(
                        &mem.mitigation(ch));
                    if (bh == nullptr)
                        fatal("mechanism is not BlockHammer");
                    rhli = std::max(
                        rhli, bh->maxRhli(static_cast<ThreadId>(t)));
                }
                if (static_cast<int>(t) == mix.attackSlot())
                    attack.push(rhli);
                else
                    benign.push(rhli);
            }
            Json cell = Json::object();
            cell["attack"] = std::move(attack);
            cell["benign"] = std::move(benign);
            return cell;
        });

    RhliStats out;
    for (const Json &c : cells) {
        if (c.isNull())
            continue;   // unowned cell of a sharded partial run
        if (const Json *attack = c.find("attack"))
            for (std::size_t i = 0; i < attack->size(); ++i)
                out.attack.push_back(attack->at(i).asDouble());
        if (const Json *benign = c.find("benign"))
            for (std::size_t i = 0; i < benign->size(); ++i)
                out.benignMax.push_back(benign->at(i).asDouble());
    }
    return out;
}

std::tuple<double, double, double>
stats(const std::vector<double> &v)
{
    double lo = v.empty() ? 0 : v[0], hi = lo, sum = 0;
    for (double x : v) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
        sum += x;
    }
    return {v.empty() ? 0 : sum / static_cast<double>(v.size()), lo, hi};
}

Json
report(const char *mode, const RhliStats &s)
{
    auto [am, alo, ahi] = stats(s.attack);
    auto [bm, blo, bhi] = stats(s.benignMax);
    (void)blo;
    std::printf("  %-16s attack RHLI avg %.2f (min %.2f, max %.2f) | "
                "benign RHLI avg %.4f (max %.4f)\n",
                mode, am, alo, ahi, bm, bhi);
    Json out = Json::object();
    out["attack_avg"] = am;
    out["attack_min"] = alo;
    out["attack_max"] = ahi;
    out["benign_avg"] = bm;
    out["benign_max"] = bhi;
    return out;
}

} // namespace

void
benchSec321(BenchContext &ctx)
{
    unsigned n_mixes = ctx.scaled(3);
    auto mixes = makeAttackMixes(n_mixes, 99);

    RhliStats observe = measure(ctx, "observe", "BlockHammer-Observe",
                                mixes);
    RhliStats full = measure(ctx, "full", "BlockHammer", mixes);
    if (!ctx.aggregate())
        return;
    ctx.result["observe_only"] = report("observe-only", observe);
    ctx.result["full_functional"] = report("full-functional", full);

    double obs_avg = mean(observe.attack);
    double full_avg = mean(full.attack);
    double reduction = ratio(obs_avg, full_avg);
    std::printf("\n  attack RHLI reduction (observe -> full): %.1fx "
                "(paper: 54x)\n", reduction);
    std::printf("  paper observe-only attack RHLI: avg 10.9 "
                "(6.9..15.5); benign: 0\n\n");
    ctx.result["rhli_reduction"] = reduction;
}

} // namespace bh
