/**
 * @file
 * Reproduces the Section 3.2.1 RHLI experiment: the RowHammer likelihood
 * index of benign threads vs. a RowHammer attack thread, in observe-only
 * and full-functional modes.
 *
 * Paper result: benign RHLI = 0 in both modes; attacks average RHLI 10.9
 * (6.9..15.5) in observe-only mode and drop well below 1 (54x reduction)
 * in full-functional mode.
 */

#include "bench/bench_util.hh"
#include "blockhammer/blockhammer.hh"

using namespace bh;

namespace
{

struct RhliStats
{
    std::vector<double> attack;
    std::vector<double> benignMax;
};

RhliStats
measure(const std::string &mode, const std::vector<MixSpec> &mixes)
{
    RhliStats out;
    for (const auto &mix : mixes) {
        ExperimentConfig cfg = benchConfig(mode);
        auto system = buildSystem(cfg, mix);
        system->run(cfg.warmupCycles + cfg.runCycles);
        auto *bh = dynamic_cast<BlockHammer *>(&system->mem().mitigation());
        if (bh == nullptr)
            fatal("mechanism is not BlockHammer");
        for (unsigned t = 0; t < cfg.threads; ++t) {
            double rhli = bh->maxRhli(static_cast<ThreadId>(t));
            if (static_cast<int>(t) == mix.attackSlot())
                out.attack.push_back(rhli);
            else
                out.benignMax.push_back(rhli);
        }
    }
    return out;
}

void
report(const char *mode, const RhliStats &s)
{
    auto stats = [](const std::vector<double> &v) {
        double lo = v.empty() ? 0 : v[0], hi = lo, sum = 0;
        for (double x : v) {
            lo = std::min(lo, x);
            hi = std::max(hi, x);
            sum += x;
        }
        return std::tuple<double, double, double>{
            v.empty() ? 0 : sum / static_cast<double>(v.size()), lo, hi};
    };
    auto [am, alo, ahi] = stats(s.attack);
    auto [bm, blo, bhi] = stats(s.benignMax);
    std::printf("  %-16s attack RHLI avg %.2f (min %.2f, max %.2f) | "
                "benign RHLI avg %.4f (max %.4f)\n",
                mode, am, alo, ahi, bm, bhi);
}

} // namespace

int
main()
{
    setVerbose(false);
    benchHeader("Section 3.2.1: RowHammer likelihood index (RHLI)",
                "observe-only vs full-functional; benign ~0, attack >> 1 "
                "observed, attack < 1 when throttled");

    auto n_mixes = static_cast<unsigned>(3 * benchScale());
    auto mixes = makeAttackMixes(n_mixes, 99);

    RhliStats observe = measure("BlockHammer-Observe", mixes);
    RhliStats full = measure("BlockHammer", mixes);
    report("observe-only", observe);
    report("full-functional", full);

    double obs_avg = 0, full_avg = 0;
    for (double v : observe.attack)
        obs_avg += v;
    for (double v : full.attack)
        full_avg += v;
    obs_avg /= std::max<std::size_t>(1, observe.attack.size());
    full_avg /= std::max<std::size_t>(1, full.attack.size());
    std::printf("\n  attack RHLI reduction (observe -> full): %.1fx "
                "(paper: 54x)\n", ratio(obs_avg, full_avg));
    std::printf("  paper observe-only attack RHLI: avg 10.9 "
                "(6.9..15.5); benign: 0\n\n");
    return 0;
}
